#!/bin/sh
# Smoke-check the Section 5.2 shootdown bench: run it against a scratch
# JSON file, make sure every expected cell is present, and fail if the
# batched IPI counts regress above their recorded baselines (or the
# unbatched ones mysteriously shrink below them, which would mean the
# A/B comparison no longer measures anything).
#
# Also smoke-checks the fault-injection subsystem:
#   - the chaos bench (seeded pager failure under memory pressure) must
#     end with a dead pager, rescued pages, zero corruption, zero
#     task-visible errors, and a bounded retry count;
#   - machsim --chaos must replay the identical failure sequence twice;
#   - with injection disabled the shootdown elapsed_ms cells (fully
#     deterministic simulated time) must match the committed
#     BENCH_vm.json exactly — the injection hooks cost nothing when off.
#
# And the clustered-paging bench:
#   - every cluster cell must be present;
#   - at cluster_max=1 the clustered read path must cost *exactly* what
#     the hand-rolled pre-clustering loop costs (zero prefetch overhead
#     when clustering is off);
#   - read-ahead must flip the Table 7-1 first-read cells: Mach below
#     UNIX on both the 2.5M and the 50K cold file read.
#
# And the async disk model:
#   - every synchronous cluster elapsed_ms cell must match the committed
#     BENCH_vm.json to the digit (the submit/wait protocol is free when
#     the async model is off);
#   - async must beat sync on the sequential read once the window is
#     wide enough to overlap (w >= 8), and change nothing at w = 1
#     (no prefetch tail, nothing to overlap);
#   - machsim --chaos --async-disk must replay identically, stdout and
#     stats JSON both (injection is decided at submit time, so replay
#     cannot depend on when completions are reaped).
#
# And the multiprocessor fault bench:
#   - the private-object configuration must scale: faults/sec monotone
#     non-decreasing from 1 to 2 to 4 CPUs (per-CPU work is fixed, so
#     flat elapsed time means linear throughput);
#   - the shared-object configuration must show contention: a non-zero
#     lock-stall share at 4 CPUs;
#   - burst=1 (machinery on, demand page only) must cost exactly what
#     the legacy fault path costs, to the digit, and burst=8 must beat
#     legacy;
#   - every cell the -cpus 4 subset produces must match the committed
#     BENCH_vm.json to the digit (the run is deterministic).
#
# And the concurrent-streams bench:
#   - with 8 stream slots, 8 readers sharing one file must beat the
#     single-cursor configuration (per-reader ramp restored), with fewer
#     pager requests, non-zero slot hits and zero slot steals;
#   - at K=1 the slotted run must cost exactly what the single-cursor
#     run costs, to the digit (one reader never notices the slots);
#   - machsim --chaos must replay identically with --streams 8
#     --free-behind on, stdout and stats JSON both;
#   - every streams cell must match the committed BENCH_vm.json to the
#     digit, and the 223 cells that predate the streams experiment must
#     all still be present in the committed file.
#
# And the cycle-attribution profiler:
#   - machsim --profile must report exact conservation (every CPU's
#     per-category totals sum to its clock) and drop no events at the
#     default ring size;
#   - the stats JSON must carry the attribution object with its
#     aggregate totals, per-CPU breakdown and top spans;
#   - the cluster bench's attribution cells must be present, with the
#     async run showing a smaller disk-wait share than sync, and the
#     tracing-off timing cells above must still match BENCH_vm.json to
#     the digit (attribution is free when no tracer is installed).
set -eu

cd "$(dirname "$0")/.."
out=$(mktemp /tmp/bench_smoke.XXXXXX.json)
chaos_out=$(mktemp /tmp/bench_smoke_chaos.XXXXXX.json)
cluster_out=$(mktemp /tmp/bench_smoke_cluster.XXXXXX.json)
run_a=$(mktemp /tmp/bench_smoke_run_a.XXXXXX)
run_b=$(mktemp /tmp/bench_smoke_run_b.XXXXXX)
prof_out=$(mktemp /tmp/bench_smoke_prof.XXXXXX)
prof_stats=$(mktemp /tmp/bench_smoke_prof.XXXXXX.json)
mp_out=$(mktemp /tmp/bench_smoke_mp.XXXXXX.json)
pr_out=$(mktemp /tmp/bench_smoke_pr.XXXXXX.json)
st_out=$(mktemp /tmp/bench_smoke_st.XXXXXX.json)
trap 'rm -f "$out" "$chaos_out" "$cluster_out" "$run_a" "$run_b" "$prof_out" "$prof_stats" "$mp_out" "$pr_out" "$st_out"' EXIT

dune exec bench/main.exe -- -e shootdown -json "$out" >/dev/null

fail=0

# The bench writes compact JSON: "name":"...","measured_ms":<value>,
cell() {
    sed -n "s/.*\"name\":\"$(echo "$1" | sed 's|/|\\/|g')\",\"measured_ms\":\([0-9.e+-]*\).*/\1/p" "$out"
}

require_cell() {
    v=$(cell "$1")
    if [ -z "$v" ]; then
        echo "bench-smoke: FAIL missing cell $1" >&2
        fail=1
    fi
}

# Baselines: one IPI round per target CPU per operation (2 ops x 30
# rounds x 3 remote CPUs = 180) when batched; one per page (256 pages x
# 180 = 46080) when not.
check_max() { # name max
    v=$(cell "$1")
    if [ -z "$v" ]; then
        echo "bench-smoke: FAIL missing cell $1" >&2
        fail=1
    elif ! awk "BEGIN { exit !($v <= $2) }"; then
        echo "bench-smoke: FAIL $1 = $v regressed above baseline $2" >&2
        fail=1
    fi
}

check_min() { # name min
    v=$(cell "$1")
    if [ -z "$v" ]; then
        echo "bench-smoke: FAIL missing cell $1" >&2
        fail=1
    elif ! awk "BEGIN { exit !($v >= $2) }"; then
        echo "bench-smoke: FAIL $1 = $v below expected floor $2" >&2
        fail=1
    fi
}

for strategy in immediate deferred lazy; do
    for mode in unbatched batched; do
        for metric in ipis deferred_flushes stale_tlb_uses elapsed_ms; do
            require_cell "shootdown/$strategy/$mode/$metric"
        done
    done
done

# Batched IPI/deferred-flush counts must stay at the one-round-per-target
# baseline; unbatched ones must stay per-page.
check_max shootdown/immediate/batched/ipis 180
check_min shootdown/immediate/unbatched/ipis 46080
check_max shootdown/deferred/batched/deferred_flushes 180
check_max shootdown/lazy/batched/deferred_flushes 180

# Immediacy means no stale windows, batched or not.
check_max shootdown/immediate/batched/stale_tlb_uses 0
check_max shootdown/immediate/unbatched/stale_tlb_uses 0

# ---- zero-overhead guard -------------------------------------------------
# Injection disabled is the default; simulated elapsed time is fully
# deterministic, so the scratch run's Section 5.2 timing cells must match
# the committed BENCH_vm.json bit-for-bit.  A drift here means the fault
# hooks charge cycles even when no injector is attached.
baseline_cell() {
    sed -n "s/.*\"name\":\"$(echo "$1" | sed 's|/|\\/|g')\",\"measured_ms\":\([0-9.e+-]*\).*/\1/p" BENCH_vm.json
}

for strategy in immediate deferred lazy; do
    for mode in unbatched batched; do
        name="shootdown/$strategy/$mode/elapsed_ms"
        now=$(cell "$name")
        base=$(baseline_cell "$name")
        if [ -z "$base" ]; then
            echo "bench-smoke: FAIL no committed baseline for $name" >&2
            fail=1
        elif ! awk "BEGIN { d = $now - $base; if (d < 0) d = -d; exit !(d <= 0.005) }"; then
            echo "bench-smoke: FAIL $name = $now drifted from committed $base (fault hooks must be free when disabled)" >&2
            fail=1
        fi
    done
done

# ---- chaos smoke ---------------------------------------------------------
dune exec bench/main.exe -- -e chaos -json "$chaos_out" >/dev/null

chaos_cell() {
    sed -n "s/.*\"name\":\"chaos\\/$1\",\"measured_ms\":\([0-9.e+-]*\).*/\1/p" "$chaos_out"
}

chaos_check() { # metric test value
    v=$(chaos_cell "$1")
    if [ -z "$v" ]; then
        echo "bench-smoke: FAIL missing cell chaos/$1" >&2
        fail=1
    elif ! awk "BEGIN { exit !($v $2 $3) }"; then
        echo "bench-smoke: FAIL chaos/$1 = $v, expected $2 $3" >&2
        fail=1
    fi
}

chaos_check corrupt_pages == 0
chaos_check memory_errors == 0
chaos_check pager_deaths ">=" 1
chaos_check rescued_pages ">=" 1
chaos_check pageout_failures ">=" 1
chaos_check pager_retries ">=" 1
chaos_check pager_retries "<=" 64   # bounded, not unbounded re-requesting

# ---- clustered paging ----------------------------------------------------
dune exec bench/main.exe -- -e cluster -e table7_1_files -json "$cluster_out" >/dev/null

cluster_cell() {
    sed -n "s/.*\"name\":\"$(echo "$1" | sed 's|/|\\/|g')\",\"measured_ms\":\([0-9.e+-]*\).*/\1/p" "$cluster_out"
}

for w in 1 2 4 8 16 32 64; do
    for metric in seq_read_2M rand_read_256x4K writeback_1M; do
        name="cluster/$metric/w$w"
        if [ -z "$(cluster_cell "$name")" ]; then
            echo "bench-smoke: FAIL missing cell $name" >&2
            fail=1
        fi
    done
    for metric in seq_read_2M writeback_1M; do
        name="cluster/$metric/w${w}_async"
        if [ -z "$(cluster_cell "$name")" ]; then
            echo "bench-smoke: FAIL missing cell $name" >&2
            fail=1
        fi
    done
done

# Synchronous-mode guard: with the async model off the cluster cells are
# fully deterministic and the submit/wait protocol must be free, so the
# scratch run must match the committed BENCH_vm.json to the digit.
for w in 1 2 4 8 16 32 64; do
    for metric in seq_read_2M rand_read_256x4K writeback_1M; do
        name="cluster/$metric/w$w"
        now=$(cluster_cell "$name")
        base=$(baseline_cell "$name")
        if [ -z "$base" ]; then
            echo "bench-smoke: FAIL no committed baseline for $name" >&2
            fail=1
        elif [ "$now" != "$base" ]; then
            echo "bench-smoke: FAIL $name = $now drifted from committed $base (sync disk model must be unchanged)" >&2
            fail=1
        fi
    done
done

# Zero overhead when clustering is off: the w=1 run and the hand-rolled
# pre-clustering loop are the same deterministic charge sequence, so
# their elapsed times must be identical, not merely close.
w1=$(cluster_cell cluster/seq_read_2M/w1)
legacy=$(cluster_cell cluster/seq_read_2M/legacy)
if [ -z "$w1" ] || [ -z "$legacy" ] || [ "$w1" != "$legacy" ]; then
    echo "bench-smoke: FAIL cluster_max=1 read ($w1 ms) != legacy per-page read ($legacy ms); clustering must be free when off" >&2
    fail=1
fi

# Read-ahead must actually pay: the full window beats the single-page
# path on a cold sequential read, and the first-read Table 7-1 cells
# flip below UNIX.
w8=$(cluster_cell cluster/seq_read_2M/w8)
if ! awk "BEGIN { exit !($w8 < $w1) }"; then
    echo "bench-smoke: FAIL cluster/seq_read_2M/w8 = $w8 not below w1 = $w1" >&2
    fail=1
fi

# The async model must actually overlap: at w >= 8 the submitted
# prefetch tail hides device time behind the copy loop, so async beats
# sync; at w = 1 there is no tail and the two models are identical.
for w in 8 16 32 64; do
    sync_ms=$(cluster_cell "cluster/seq_read_2M/w$w")
    async_ms=$(cluster_cell "cluster/seq_read_2M/w${w}_async")
    if ! awk "BEGIN { exit !($async_ms < $sync_ms) }"; then
        echo "bench-smoke: FAIL cluster/seq_read_2M/w${w}_async = $async_ms not below sync $sync_ms (no overlap)" >&2
        fail=1
    fi
done
w1_async=$(cluster_cell cluster/seq_read_2M/w1_async)
if [ -z "$w1_async" ] || [ "$w1_async" != "$w1" ]; then
    echo "bench-smoke: FAIL cluster/seq_read_2M/w1_async ($w1_async ms) != w1 ($w1 ms); async must be a no-op without a prefetch tail" >&2
    fail=1
fi

flip_check() { # op
    m=$(cluster_cell "table7_1_files/$1/mach")
    u=$(cluster_cell "table7_1_files/$1/unix")
    if [ -z "$m" ] || [ -z "$u" ]; then
        echo "bench-smoke: FAIL missing table7_1_files/$1 cells" >&2
        fail=1
    elif ! awk "BEGIN { exit !($m < $u) }"; then
        echo "bench-smoke: FAIL table7_1_files/$1: mach = $m not below unix = $u" >&2
        fail=1
    fi
}
flip_check read_2.5M_1st
flip_check read_50K_1st

# ---- machsim --chaos replay identity -------------------------------------
dune exec bin/machsim.exe -- compile --chaos 42:flaky >"$run_a" 2>&1
dune exec bin/machsim.exe -- compile --chaos 42:flaky >"$run_b" 2>&1
if ! cmp -s "$run_a" "$run_b"; then
    echo "bench-smoke: FAIL machsim --chaos 42:flaky is not replay-identical" >&2
    diff "$run_a" "$run_b" >&2 || true
    fail=1
fi
if ! grep -q '^chaos: seed=42 profile=flaky' "$run_a"; then
    echo "bench-smoke: FAIL machsim --chaos did not print its chaos summary" >&2
    fail=1
fi

# Same replay guarantee with the async disk model on: stdout and the
# exported stats JSON (queue depth / completion / wait histograms
# included) must both be run-to-run identical.
dune exec bin/machsim.exe -- compile --chaos 42:flaky --async-disk --stats "$run_a.stats" 2>&1 |
    grep -v '^stats: ->' >"$run_a"
dune exec bin/machsim.exe -- compile --chaos 42:flaky --async-disk --stats "$run_b.stats" 2>&1 |
    grep -v '^stats: ->' >"$run_b"
if ! cmp -s "$run_a" "$run_b"; then
    echo "bench-smoke: FAIL machsim --chaos --async-disk is not replay-identical" >&2
    diff "$run_a" "$run_b" >&2 || true
    fail=1
fi
if ! cmp -s "$run_a.stats" "$run_b.stats"; then
    echo "bench-smoke: FAIL machsim --chaos --async-disk stats JSON differs between replays" >&2
    fail=1
fi
rm -f "$run_a.stats" "$run_b.stats"

# And with the NUMA/colored/per-CPU allocator widened: the hierarchy
# sits on the same virtual clocks, so chaos injection must still replay
# identically, stdout and stats JSON both.
dune exec bin/machsim.exe -- compile --chaos 42:flaky --numa 2 --colors 16 \
    --alloc-cache 8 --stats "$run_a.stats" 2>&1 |
    grep -v '^stats: ->' >"$run_a"
dune exec bin/machsim.exe -- compile --chaos 42:flaky --numa 2 --colors 16 \
    --alloc-cache 8 --stats "$run_b.stats" 2>&1 |
    grep -v '^stats: ->' >"$run_b"
if ! cmp -s "$run_a" "$run_b"; then
    echo "bench-smoke: FAIL machsim --chaos --numa 2 is not replay-identical" >&2
    diff "$run_a" "$run_b" >&2 || true
    fail=1
fi
if ! cmp -s "$run_a.stats" "$run_b.stats"; then
    echo "bench-smoke: FAIL machsim --chaos --numa 2 stats JSON differs between replays" >&2
    fail=1
fi
rm -f "$run_a.stats" "$run_b.stats"

# ---- profiler smoke ------------------------------------------------------
# machsim --profile must conserve cycles exactly (every CPU's category
# totals sum to its clock), keep the attribution object in the stats
# JSON, and drop nothing at the default ring size.
dune exec bin/machsim.exe -- compile --profile --stats "$prof_stats" >"$prof_out" 2>&1

if ! grep -q '^profile conservation: ok' "$prof_out"; then
    echo "bench-smoke: FAIL machsim --profile did not report 'profile conservation: ok'" >&2
    fail=1
fi
if ! grep -q '^profile: events seen=[0-9]* retained=[0-9]* dropped=0$' "$prof_out"; then
    echo "bench-smoke: FAIL machsim --profile dropped events at the default ring size" >&2
    fail=1
fi
for key in '"attribution":' '"clock_total":' '"conserved":true' '"per_cpu":' '"top_spans":' '"user_compute":' '"disk_wait":' '"events_dropped":0'; do
    if ! grep -q "$key" "$prof_stats"; then
        echo "bench-smoke: FAIL stats JSON missing $key" >&2
        fail=1
    fi
done

# The JSON must agree with itself: attribution total == sum of the CPU
# clocks the exporter saw == machine max_cycles.
attr_total=$(sed -n 's/.*"attribution":{"total":\([0-9]*\).*/\1/p' "$prof_stats")
clock_total=$(sed -n 's/.*"clock_total":\([0-9]*\).*/\1/p' "$prof_stats")
if [ -z "$attr_total" ] || [ "$attr_total" != "$clock_total" ]; then
    echo "bench-smoke: FAIL attribution total ($attr_total) != clock total ($clock_total)" >&2
    fail=1
fi

# Cluster attribution cells: present, conserved, and the async run must
# spend a strictly smaller fraction of its cycles stalled on the disk.
attr_sync=$(cluster_cell cluster/attr_disk_wait_frac/w8)
attr_async=$(cluster_cell cluster/attr_disk_wait_frac/w8_async)
attr_ok=$(cluster_cell cluster/attr_conserved/w8)
if [ -z "$attr_sync" ] || [ -z "$attr_async" ] || [ -z "$attr_ok" ]; then
    echo "bench-smoke: FAIL missing cluster attribution cells" >&2
    fail=1
else
    if ! awk "BEGIN { exit !($attr_ok == 1) }"; then
        echo "bench-smoke: FAIL cluster/attr_conserved/w8 = $attr_ok (attribution must partition the clock)" >&2
        fail=1
    fi
    if ! awk "BEGIN { exit !($attr_async < $attr_sync) }"; then
        echo "bench-smoke: FAIL async disk-wait share $attr_async not below sync $attr_sync" >&2
        fail=1
    fi
    if ! awk "BEGIN { exit !(0 < $attr_sync && $attr_sync < 1) }"; then
        echo "bench-smoke: FAIL cluster/attr_disk_wait_frac/w8 = $attr_sync out of (0,1)" >&2
        fail=1
    fi
fi

# ---- multiprocessor faults -----------------------------------------------
# The 1/2/4/8-CPU subset (8 CPUs so the free-page allocator ablation is
# exercised where contention bites); each configuration runs
# independently, so its cells must match the full committed run to the
# digit.
dune exec bench/main.exe -- -e mpfault -cpus 8 -json "$mp_out" >/dev/null

mp_cell() {
    sed -n "s/.*\"name\":\"$(echo "$1" | sed 's|/|\\/|g')\",\"measured_ms\":\([0-9.e+-]*\).*/\1/p" "$mp_out"
}

for share in private shared; do
    for c in 1 2 4; do
        for metric in faults_per_sec elapsed_ms lock_stall_share; do
            name="mpfault/$share/c$c/$metric"
            if [ -z "$(mp_cell "$name")" ]; then
                echo "bench-smoke: FAIL missing cell $name" >&2
                fail=1
            fi
        done
    done
done

# Weak scaling on private objects: fixed per-CPU work, so faults/sec
# must be monotone non-decreasing as CPUs are added.
fps1=$(mp_cell mpfault/private/c1/faults_per_sec)
fps2=$(mp_cell mpfault/private/c2/faults_per_sec)
fps4=$(mp_cell mpfault/private/c4/faults_per_sec)
if ! awk "BEGIN { exit !($fps1 <= $fps2 && $fps2 <= $fps4) }"; then
    echo "bench-smoke: FAIL private mpfault throughput not monotone: c1=$fps1 c2=$fps2 c4=$fps4" >&2
    fail=1
fi

# Sharing one object must cost something: non-zero lock-stall share at
# 4 CPUs (and exactly zero with private objects, where no two CPUs ever
# take the same object lock).
stall_shared=$(mp_cell mpfault/shared/c4/lock_stall_share)
stall_private=$(mp_cell mpfault/private/c4/lock_stall_share)
if ! awk "BEGIN { exit !($stall_shared > 0) }"; then
    echo "bench-smoke: FAIL shared-object run shows no lock stalls at 4 CPUs ($stall_shared)" >&2
    fail=1
fi
if ! awk "BEGIN { exit !($stall_private == 0) }"; then
    echo "bench-smoke: FAIL private-object run shows lock stalls ($stall_private); private locks are never contended" >&2
    fail=1
fi

# Burst faulting must be free when it maps nothing: burst=1 runs the
# collection machinery but only the demand page, so it must cost what
# the legacy path costs, to the digit.  The full window must then pay.
b_legacy=$(mp_cell mpfault/burst/legacy/elapsed_ms)
b1=$(mp_cell mpfault/burst/b1/elapsed_ms)
b8=$(mp_cell mpfault/burst/b8/elapsed_ms)
if [ -z "$b_legacy" ] || [ "$b1" != "$b_legacy" ]; then
    echo "bench-smoke: FAIL mpfault burst=1 ($b1 ms) != legacy ($b_legacy ms); bursting must be free when off" >&2
    fail=1
fi
if ! awk "BEGIN { exit !($b8 < $b_legacy) }"; then
    echo "bench-smoke: FAIL mpfault burst=8 = $b8 not below legacy = $b_legacy" >&2
    fail=1
fi

# ---- free-page allocator ablation ----------------------------------------
# Every allocator variant's cells must be present, and the hierarchy
# must actually pay off where contention bites: at 8 CPUs the colored +
# per-CPU-magazine allocator must meet or beat the single contended
# queue on throughput and never stall more.
for variant in global colored colored_pcpu numa2; do
    for c in 1 2 4 8; do
        for metric in faults_per_sec stall_share; do
            name="mpfault/alloc/$variant/c$c/$metric"
            if [ -z "$(mp_cell "$name")" ]; then
                echo "bench-smoke: FAIL missing cell $name" >&2
                fail=1
            fi
        done
    done
done

fps_global=$(mp_cell mpfault/alloc/global/c8/faults_per_sec)
fps_pcpu=$(mp_cell mpfault/alloc/colored_pcpu/c8/faults_per_sec)
if ! awk "BEGIN { exit !($fps_pcpu >= $fps_global) }"; then
    echo "bench-smoke: FAIL colored+pcpu throughput $fps_pcpu below global $fps_global at 8 CPUs" >&2
    fail=1
fi
stall_global=$(mp_cell mpfault/alloc/global/c8/stall_share)
stall_pcpu=$(mp_cell mpfault/alloc/colored_pcpu/c8/stall_share)
if ! awk "BEGIN { exit !($stall_pcpu <= $stall_global) }"; then
    echo "bench-smoke: FAIL colored+pcpu stall share $stall_pcpu above global $stall_global at 8 CPUs" >&2
    fail=1
fi

# NUMA locality: private per-CPU working sets under the 2-domain split
# must allocate almost entirely from their home domain.
local_frac=$(mp_cell mpfault/alloc/numa2/private/c8/local_frac)
if [ -z "$local_frac" ]; then
    echo "bench-smoke: FAIL missing cell mpfault/alloc/numa2/private/c8/local_frac" >&2
    fail=1
elif ! awk "BEGIN { exit !($local_frac > 0.9) }"; then
    echo "bench-smoke: FAIL numa2 private local fraction $local_frac not above 0.9" >&2
    fail=1
fi

# Determinism: every cell the subset produced must match the committed
# BENCH_vm.json to the digit.  This includes every 1-CPU allocator cell:
# the flat default and the widened hierarchy must both replay exactly.
for name in $(tr ',' '\n' <"$mp_out" | sed -n 's/.*"name":"\(mpfault\/[^"]*\)".*/\1/p'); do
    now=$(mp_cell "$name")
    base=$(baseline_cell "$name")
    if [ -z "$base" ]; then
        echo "bench-smoke: FAIL no committed baseline for $name" >&2
        fail=1
    elif [ "$now" != "$base" ]; then
        echo "bench-smoke: FAIL $name = $now drifted from committed $base (mpfault must replay to the digit)" >&2
        fail=1
    fi
done

# ---- memory pressure -----------------------------------------------------
# The overcommit sweep must complete without any uncaught exception (a
# raised Out_of_memory would kill the bench process before it writes its
# cells); at 1x demand the reserves and OOM policy must stay silent; at
# 4x the policy must have killed at least one task and left at least one
# survivor; and every pressure cell must match the committed
# BENCH_vm.json to the digit — the whole escalation (backpressure,
# swap exhaustion, victim choice) replays deterministically.
dune exec bench/main.exe -- -e pressure -json "$pr_out" >/dev/null

pr_cell() {
    sed -n "s/.*\"name\":\"$(echo "$1" | sed 's|/|\\/|g')\",\"measured_ms\":\([0-9.e+-]*\).*/\1/p" "$pr_out"
}

for x in 1 2 3 4; do
    for metric in elapsed_ms oom_kills alloc_waits pageouts survivors; do
        name="pressure/x$x/$metric"
        if [ -z "$(pr_cell "$name")" ]; then
            echo "bench-smoke: FAIL missing cell $name" >&2
            fail=1
        fi
    done
done

oom1=$(pr_cell pressure/x1/oom_kills)
oom4=$(pr_cell pressure/x4/oom_kills)
surv4=$(pr_cell pressure/x4/survivors)
if ! awk "BEGIN { exit !($oom1 == 0) }"; then
    echo "bench-smoke: FAIL pressure/x1/oom_kills = $oom1; the OOM policy must be silent when demand fits" >&2
    fail=1
fi
if ! awk "BEGIN { exit !($oom4 > 0) }"; then
    echo "bench-smoke: FAIL pressure/x4/oom_kills = $oom4; 4x overcommit past memory+swap must kill" >&2
    fail=1
fi
if ! awk "BEGIN { exit !($surv4 >= 1) }"; then
    echo "bench-smoke: FAIL pressure/x4/survivors = $surv4; the kernel must keep serving someone" >&2
    fail=1
fi

pr_attr=$(pr_cell pressure/attr_conserved/x4)
if [ -z "$pr_attr" ] || ! awk "BEGIN { exit !($pr_attr == 1) }"; then
    echo "bench-smoke: FAIL pressure/attr_conserved/x4 = $pr_attr (Mem_wait must stay inside the cycle ledger)" >&2
    fail=1
fi

for name in $(tr ',' '\n' <"$pr_out" | sed -n 's/.*"name":"\(pressure\/[^"]*\)".*/\1/p'); do
    now=$(pr_cell "$name")
    base=$(baseline_cell "$name")
    if [ -z "$base" ]; then
        echo "bench-smoke: FAIL no committed baseline for $name" >&2
        fail=1
    elif [ "$now" != "$base" ]; then
        echo "bench-smoke: FAIL $name = $now drifted from committed $base (pressure must replay to the digit)" >&2
        fail=1
    fi
done

# ---- concurrent streams --------------------------------------------------
# The K<=8 subset of the shared-file interference sweep; each (k, config)
# run boots its own machine, so its cells must match the full committed
# run to the digit.
dune exec bench/main.exe -- -e streams -cpus 8 -json "$st_out" >/dev/null

st_cell() {
    sed -n "s/.*\"name\":\"$(echo "$1" | sed 's|/|\\/|g')\",\"measured_ms\":\([0-9.e+-]*\).*/\1/p" "$st_out"
}

for k in 1 2 4 8; do
    for config in slotted unslotted fb; do
        name="streams/k$k/$config"
        if [ -z "$(st_cell "$name")" ]; then
            echo "bench-smoke: FAIL missing cell $name" >&2
            fail=1
        fi
    done
done

# Stream slots must fix the interference: 8 readers of one shared file
# beat the single-cursor configuration, with fewer pager requests,
# slot hits on re-faults, and no slot stealing (8 readers, 8 slots).
sl8=$(st_cell streams/k8/slotted)
un8=$(st_cell streams/k8/unslotted)
if ! awk "BEGIN { exit !($sl8 < $un8) }"; then
    echo "bench-smoke: FAIL streams/k8/slotted = $sl8 not below unslotted = $un8 (readers must ramp independently)" >&2
    fail=1
fi
reads_sl=$(st_cell streams/pager_reads/k8_slotted)
reads_un=$(st_cell streams/pager_reads/k8_unslotted)
if ! awk "BEGIN { exit !($reads_sl < $reads_un) }"; then
    echo "bench-smoke: FAIL slotted pager reads $reads_sl not below unslotted $reads_un at 8 readers" >&2
    fail=1
fi
hits8=$(st_cell streams/stream_hits/k8_slotted)
resets8=$(st_cell streams/stream_resets/k8_slotted)
if ! awk "BEGIN { exit !($hits8 > 0) }"; then
    echo "bench-smoke: FAIL streams/stream_hits/k8_slotted = $hits8; ramped readers must re-find their slot" >&2
    fail=1
fi
if ! awk "BEGIN { exit !($resets8 == 0) }"; then
    echo "bench-smoke: FAIL streams/stream_resets/k8_slotted = $resets8; 8 readers must fit in 8 slots" >&2
    fail=1
fi

# One reader never notices the slots: K=1 slotted must cost exactly what
# the single-cursor configuration costs, to the digit.
sl1=$(st_cell streams/k1/slotted)
un1=$(st_cell streams/k1/unslotted)
if [ -z "$sl1" ] || [ "$sl1" != "$un1" ]; then
    echo "bench-smoke: FAIL streams/k1/slotted ($sl1 ms) != unslotted ($un1 ms); slots must be free for a lone reader" >&2
    fail=1
fi

# Free-behind must not slow the sweep down (clean wake pages are
# deactivated, never unmapped, so re-reads still hit).
fb8=$(st_cell streams/k8/fb)
if ! awk "BEGIN { exit !($fb8 <= $sl8) }"; then
    echo "bench-smoke: FAIL streams/k8/fb = $fb8 above slotted = $sl8 (free-behind must be transparent here)" >&2
    fail=1
fi
fb_pages=$(st_cell streams/free_behind_pages/k8_fb)
if ! awk "BEGIN { exit !($fb_pages > 0) }"; then
    echo "bench-smoke: FAIL streams/free_behind_pages/k8_fb = $fb_pages; free-behind never fired" >&2
    fail=1
fi

# Determinism: every cell the subset produced must match the committed
# BENCH_vm.json to the digit.
for name in $(tr ',' '\n' <"$st_out" | sed -n 's/.*"name":"\(streams\/[^"]*\)".*/\1/p'); do
    now=$(st_cell "$name")
    base=$(baseline_cell "$name")
    if [ -z "$base" ]; then
        echo "bench-smoke: FAIL no committed baseline for $name" >&2
        fail=1
    elif [ "$now" != "$base" ]; then
        echo "bench-smoke: FAIL $name = $now drifted from committed $base (streams must replay to the digit)" >&2
        fail=1
    fi
done

# The streams experiment rides alongside the original 223 cells; none of
# them may be dropped or renamed.
pre_cells=$(tr ',' '\n' <BENCH_vm.json | sed -n 's/.*"name":"\([^"]*\)".*/\1/p' | grep -cv '^streams/')
if [ "$pre_cells" -ne 223 ]; then
    echo "bench-smoke: FAIL BENCH_vm.json carries $pre_cells non-stream cells, expected the original 223" >&2
    fail=1
fi

# Replay identity with stream slots and free-behind on: chaos injection
# is keyed to the virtual clocks, which the slot bookkeeping must not
# perturb, so stdout and the stats JSON must both be run-to-run
# identical.
dune exec bin/machsim.exe -- compile --chaos 42:flaky --streams 8 \
    --free-behind --stats "$run_a.stats" 2>&1 |
    grep -v '^stats: ->' >"$run_a"
dune exec bin/machsim.exe -- compile --chaos 42:flaky --streams 8 \
    --free-behind --stats "$run_b.stats" 2>&1 |
    grep -v '^stats: ->' >"$run_b"
if ! cmp -s "$run_a" "$run_b"; then
    echo "bench-smoke: FAIL machsim --chaos --streams 8 --free-behind is not replay-identical" >&2
    diff "$run_a" "$run_b" >&2 || true
    fail=1
fi
if ! cmp -s "$run_a.stats" "$run_b.stats"; then
    echo "bench-smoke: FAIL machsim --chaos --streams 8 --free-behind stats JSON differs between replays" >&2
    fail=1
fi
# The compile stats JSON carries per-kind event counts; the new stream
# events must be exported, and free-behind must actually have fired on
# the compiler's sequential source reads.
for key in '"stream_reset":' '"free_behind":'; do
    if ! grep -q "$key" "$run_a.stats"; then
        echo "bench-smoke: FAIL stats JSON missing $key" >&2
        fail=1
    fi
done
fb_events=$(sed -n 's/.*"free_behind":\([0-9]*\).*/\1/p' "$run_a.stats")
if [ -z "$fb_events" ] || [ "$fb_events" -eq 0 ]; then
    echo "bench-smoke: FAIL no free_behind events under --free-behind" >&2
    fail=1
fi
rm -f "$run_a.stats" "$run_b.stats"

if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "bench-smoke: OK (24 shootdown cells at baseline, zero-overhead guards clean, chaos run deterministic with 0 corrupt pages — also under --numa 2, clustered read-ahead beats UNIX on cold reads and is free at cluster_max=1, async disk overlaps at w>=8 and replays under chaos, profiler conserves every cycle with 0 dropped events, mpfault scales on private objects and stalls on shared ones with burst=1 free to the digit, colored+pcpu allocator meets or beats the global queue at 8 CPUs with >90% NUMA locality, pressure sweep survives 4x overcommit with deterministic OOM kills, stream slots un-interfere 8 shared-file readers and are free to the digit for one, chaos replays with --streams 8 --free-behind, all 223 pre-stream cells intact)"
