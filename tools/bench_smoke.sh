#!/bin/sh
# Smoke-check the Section 5.2 shootdown bench: run it against a scratch
# JSON file, make sure every expected cell is present, and fail if the
# batched IPI counts regress above their recorded baselines (or the
# unbatched ones mysteriously shrink below them, which would mean the
# A/B comparison no longer measures anything).
set -eu

cd "$(dirname "$0")/.."
out=$(mktemp /tmp/bench_smoke.XXXXXX.json)
trap 'rm -f "$out"' EXIT

dune exec bench/main.exe -- -e shootdown -json "$out" >/dev/null

fail=0

# The bench writes compact JSON: "name":"...","measured_ms":<value>,
cell() {
    sed -n "s/.*\"name\":\"$(echo "$1" | sed 's|/|\\/|g')\",\"measured_ms\":\([0-9.e+-]*\).*/\1/p" "$out"
}

require_cell() {
    v=$(cell "$1")
    if [ -z "$v" ]; then
        echo "bench-smoke: FAIL missing cell $1" >&2
        fail=1
    fi
}

# Baselines: one IPI round per target CPU per operation (2 ops x 30
# rounds x 3 remote CPUs = 180) when batched; one per page (256 pages x
# 180 = 46080) when not.
check_max() { # name max
    v=$(cell "$1")
    if [ -z "$v" ]; then
        echo "bench-smoke: FAIL missing cell $1" >&2
        fail=1
    elif ! awk "BEGIN { exit !($v <= $2) }"; then
        echo "bench-smoke: FAIL $1 = $v regressed above baseline $2" >&2
        fail=1
    fi
}

check_min() { # name min
    v=$(cell "$1")
    if [ -z "$v" ]; then
        echo "bench-smoke: FAIL missing cell $1" >&2
        fail=1
    elif ! awk "BEGIN { exit !($v >= $2) }"; then
        echo "bench-smoke: FAIL $1 = $v below expected floor $2" >&2
        fail=1
    fi
}

for strategy in immediate deferred lazy; do
    for mode in unbatched batched; do
        for metric in ipis deferred_flushes stale_tlb_uses elapsed_ms; do
            require_cell "shootdown/$strategy/$mode/$metric"
        done
    done
done

# Batched IPI/deferred-flush counts must stay at the one-round-per-target
# baseline; unbatched ones must stay per-page.
check_max shootdown/immediate/batched/ipis 180
check_min shootdown/immediate/unbatched/ipis 46080
check_max shootdown/deferred/batched/deferred_flushes 180
check_max shootdown/lazy/batched/deferred_flushes 180

# Immediacy means no stale windows, batched or not.
check_max shootdown/immediate/batched/stale_tlb_uses 0
check_max shootdown/immediate/unbatched/stale_tlb_uses 0

if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "bench-smoke: OK (24 shootdown cells present, IPI counts at baseline)"
