test/test_util.ml: Alcotest Array Det_rng Dlist Fun Gen List Mach_util Option QCheck2 QCheck_alcotest String Tablefmt Test
