test/test_pmap.ml: Alcotest Arch Bytes Gen Hashtbl List Mach_hw Mach_pmap Machine Phys_mem Pmap Pmap_domain Printf Prot QCheck2 QCheck_alcotest Test
