test/test_stress.ml: Alcotest Arch Char Det_rng Hashtbl Inheritance Kernel Kr List Mach_core Mach_hw Mach_util Machine Prot String Task Types Vm_debug Vm_map Vm_pageout Vm_user
