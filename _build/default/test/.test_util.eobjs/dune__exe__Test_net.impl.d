test/test_net.ml: Alcotest Arch Bytes Kernel Kr List Mach_core Mach_hw Mach_net Mach_pagers Machine Net_pager Netlink Printf Simfs String Vm_object Vm_pageout
