test/test_threads.ml: Alcotest Arch Bytes Kernel Kr Kthread List Mach_core Mach_hw Mach_ipc Machine Option Printf Sched Vm_user
