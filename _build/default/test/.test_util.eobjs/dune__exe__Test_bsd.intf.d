test/test_bsd.mli:
