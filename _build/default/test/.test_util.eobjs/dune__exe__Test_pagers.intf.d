test/test_pagers.mli:
