test/test_hw.ml: Alcotest Arch Bytes Hashtbl List Mach_hw Machine Phys_mem Prot QCheck2 QCheck_alcotest Tlb Translator
