test/test_pageout.ml: Alcotest Arch Bytes Kernel Kr Mach_core Mach_hw Mach_pmap Machine Option Printf Resident Swap_pager Task Types Vm_map Vm_object Vm_pageout Vm_sys Vm_user
