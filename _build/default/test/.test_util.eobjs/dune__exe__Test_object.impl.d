test/test_object.ml: Alcotest Arch Bytes Hashtbl Kernel Mach_core Mach_hw Machine Option Printf Resident Types Vm_object Vm_sys
