test/test_workload.ml: Alcotest Arch Bsd_os Bytes Compile_workload List Mach_bsd Mach_core Mach_hw Mach_os Mach_pagers Mach_workload Machine Os_iface Workload
