test/test_map.ml: Alcotest Arch Gen Inheritance Kernel Kr List Mach_core Mach_hw Mach_pmap Machine Pmap_domain Prot QCheck2 QCheck_alcotest Test Types Vm_fault Vm_map Vm_object Vm_sys
