test/test_ipc.ml: Alcotest Arch Bytes Ipc Kernel Kr List Mach_core Mach_hw Mach_ipc Machine Syscall_server Task Types Vm_map Vm_user
