test/test_pageout.mli:
