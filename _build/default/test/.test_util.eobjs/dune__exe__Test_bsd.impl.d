test/test_bsd.ml: Alcotest Arch Bsd_vm Buffer_cache Bytes Mach_bsd Mach_hw Mach_pagers Machine Printf Simfs
