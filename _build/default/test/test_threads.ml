(* Tests for threads and the multiprocessor scheduler: shared address
   space within a task, isolation and context switching across tasks,
   suspend/resume, and deterministic round-robin dispatch. *)

open Mach_hw
open Mach_core

let kb = 1024

let boot ?(cpus = 1) () =
  let machine =
    Machine.create ~arch:Arch.uvax2 ~memory_frames:2048 ~cpus ()
  in
  let kernel = Kernel.create ~page_multiple:8 machine in
  (machine, kernel, Kernel.sys kernel)

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.fail (Kr.to_string e)

let test_threads_share_task_memory () =
  let machine, kernel, sys = boot ~cpus:2 () in
  let task = Kernel.create_task kernel () in
  Kernel.run_task kernel ~cpu:0 task;
  let a = ok (Vm_user.allocate sys task ~size:(8 * kb) ~anywhere:true ()) in
  let sched = Sched.create kernel in
  let seen = ref "" in
  let _writer =
    Sched.spawn sched ~task ~name:"writer"
      [ (fun ~cpu ->
           Machine.write machine ~cpu ~va:a (Bytes.of_string "thread data")) ]
  in
  let _reader =
    Sched.spawn sched ~task ~name:"reader"
      [ (* first round: idle while the writer runs in parallel *)
        (fun ~cpu:_ -> ());
        (fun ~cpu ->
           seen :=
             Bytes.to_string (Machine.read machine ~cpu ~va:a ~len:11)) ]
  in
  Sched.run sched ();
  Alcotest.(check string) "reader saw writer's data" "thread data" !seen;
  Alcotest.(check int) "all terminated" 0 (Sched.alive sched)

let test_threads_different_tasks_isolated () =
  let machine, kernel, sys = boot ~cpus:1 () in
  let t1 = Kernel.create_task kernel () in
  let t2 = Kernel.create_task kernel () in
  Kernel.run_task kernel ~cpu:0 t1;
  let a1 = ok (Vm_user.allocate sys t1 ~size:(4 * kb) ~anywhere:true ()) in
  Kernel.run_task kernel ~cpu:0 t2;
  let a2 = ok (Vm_user.allocate sys t2 ~size:(4 * kb) ~anywhere:true ()) in
  Alcotest.(check int) "same va in both tasks" a1 a2;
  let sched = Sched.create kernel in
  let r1 = ref ' ' and r2 = ref ' ' in
  let _th1 =
    Sched.spawn sched ~task:t1
      [ (fun ~cpu -> Machine.write_byte machine ~cpu ~va:a1 '1');
        (fun ~cpu -> r1 := Machine.read_byte machine ~cpu ~va:a1) ]
  in
  let _th2 =
    Sched.spawn sched ~task:t2
      [ (fun ~cpu -> Machine.write_byte machine ~cpu ~va:a2 '2');
        (fun ~cpu -> r2 := Machine.read_byte machine ~cpu ~va:a2) ]
  in
  Sched.run sched ();
  (* The threads interleaved on one CPU (task switch each round), yet
     each saw only its own task's memory. *)
  Alcotest.(check char) "t1 view" '1' !r1;
  Alcotest.(check char) "t2 view" '2' !r2

let test_round_robin_order () =
  let _machine, kernel, _sys = boot ~cpus:1 () in
  let task = Kernel.create_task kernel () in
  let sched = Sched.create kernel in
  let log = ref [] in
  let mk tag =
    List.init 3 (fun i ->
        fun ~cpu:_ -> log := Printf.sprintf "%s%d" tag i :: !log)
  in
  let _a = Sched.spawn sched ~task ~name:"A" (mk "A") in
  let _b = Sched.spawn sched ~task ~name:"B" (mk "B") in
  Sched.run sched ();
  Alcotest.(check (list string)) "strict alternation"
    [ "A0"; "B0"; "A1"; "B1"; "A2"; "B2" ]
    (List.rev !log)

let test_suspend_resume () =
  let _machine, kernel, _sys = boot () in
  let task = Kernel.create_task kernel () in
  let sched = Sched.create kernel in
  let progress = ref 0 in
  let th =
    Sched.spawn sched ~task
      (List.init 4 (fun _ -> fun ~cpu:_ -> incr progress))
  in
  (* One scheduling round, then suspend. *)
  ignore (Sched.step sched);
  Kthread.suspend th;
  Sched.run sched ();
  Alcotest.(check int) "stopped after suspension" 1 !progress;
  Alcotest.(check bool) "still alive" true
    (Kthread.status th <> Kthread.Terminated);
  Kthread.resume th;
  Sched.run sched ();
  Alcotest.(check int) "finished after resume" 4 !progress;
  Alcotest.(check bool) "terminated" true
    (Kthread.status th = Kthread.Terminated)

let test_self_suspension () =
  let _machine, kernel, _sys = boot () in
  let task = Kernel.create_task kernel () in
  let sched = Sched.create kernel in
  let th_ref = ref None in
  let progress = ref 0 in
  let th =
    Sched.spawn sched ~task
      [ (fun ~cpu:_ ->
           incr progress;
           Kthread.suspend (Option.get !th_ref));
        (fun ~cpu:_ -> incr progress) ]
  in
  th_ref := Some th;
  Sched.run sched ();
  Alcotest.(check int) "suspended itself mid-program" 1 !progress;
  Kthread.resume th;
  Sched.run sched ();
  Alcotest.(check int) "completed" 2 !progress

let test_multiprocessor_parallel_faults () =
  (* Four threads of one task sweep disjoint regions on four CPUs;
     everything lands and per-CPU clocks all advanced. *)
  let machine, kernel, sys = boot ~cpus:4 () in
  let task = Kernel.create_task kernel () in
  Kernel.run_task kernel ~cpu:0 task;
  let size = 64 * kb in
  let a = ok (Vm_user.allocate sys task ~size ~anywhere:true ()) in
  let sched = Sched.create kernel in
  let quarter = size / 4 in
  for q = 0 to 3 do
    let base = a + (q * quarter) in
    ignore
      (Sched.spawn sched ~task
         ~name:(Printf.sprintf "sweep%d" q)
         (List.init (quarter / (4 * kb)) (fun i ->
              fun ~cpu ->
                Machine.write machine ~cpu ~va:(base + (i * 4 * kb))
                  (Bytes.of_string (Printf.sprintf "q%dp%02d" q i)))))
  done;
  Sched.run sched ();
  for q = 0 to 3 do
    for i = 0 to (quarter / (4 * kb)) - 1 do
      Alcotest.(check string)
        (Printf.sprintf "q%d page %d" q i)
        (Printf.sprintf "q%dp%02d" q i)
        (Bytes.to_string
           (Machine.read machine ~cpu:0 ~va:(a + (q * quarter) + (i * 4 * kb))
              ~len:5))
    done
  done;
  for cpu = 0 to 3 do
    Alcotest.(check bool)
      (Printf.sprintf "cpu %d worked" cpu)
      true
      (Machine.cycles machine ~cpu > 0)
  done

let test_suspend_by_message () =
  (* "A thread can suspend another thread by sending a suspend message
     to that thread's thread port." *)
  let _machine, kernel, sys = boot () in
  let task = Kernel.create_task kernel () in
  let sched = Sched.create kernel in
  let progress = ref 0 in
  let victim =
    Sched.spawn sched ~task (List.init 4 (fun _ -> fun ~cpu:_ -> incr progress))
  in
  let port = Mach_ipc.Syscall_server.thread_port victim in
  ignore (Sched.step sched);
  let reply =
    Mach_ipc.Syscall_server.call sys port
      (Mach_ipc.Ipc.message "thread_suspend")
  in
  (match Mach_ipc.Syscall_server.kr_of_reply reply with
   | Ok () -> ()
   | Error e -> Alcotest.fail (Kr.to_string e));
  Sched.run sched ();
  Alcotest.(check int) "suspended by message" 1 !progress;
  ignore
    (Mach_ipc.Syscall_server.call sys port
       (Mach_ipc.Ipc.message "thread_resume"));
  Sched.run sched ();
  Alcotest.(check int) "resumed by message" 4 !progress

let () =
  Alcotest.run "threads"
    [ ( "sched",
        [ Alcotest.test_case "threads share task memory" `Quick
            test_threads_share_task_memory;
          Alcotest.test_case "tasks isolated under timeslicing" `Quick
            test_threads_different_tasks_isolated;
          Alcotest.test_case "round robin order" `Quick
            test_round_robin_order;
          Alcotest.test_case "suspend/resume" `Quick test_suspend_resume;
          Alcotest.test_case "self suspension" `Quick test_self_suspension;
          Alcotest.test_case "parallel faults on 4 cpus" `Quick
            test_multiprocessor_parallel_faults;
          Alcotest.test_case "suspend via thread port" `Quick
            test_suspend_by_message ] ) ]
