(* Tests for the machine-dependent pmap layer: the Table 3-3 contract
   across all five architectures, the pmap-as-cache property, and the
   architecture-specific behaviours of Section 5.1. *)

open Mach_hw
open Mach_pmap

let archs =
  [ Arch.uvax2; Arch.rt_pc; Arch.sun3_160; Arch.ns32082; Arch.rp3_tlb ]

let setup arch =
  let machine = Machine.create ~arch ~memory_frames:256 ~cpus:2 () in
  let domain = Pmap_domain.create machine in
  (machine, domain)

let page arch = arch.Arch.hw_page_size

(* Run [f] once per architecture, as separate alcotest cases. *)
let per_arch name f =
  List.map
    (fun arch ->
       Alcotest.test_case
         (Printf.sprintf "%s [%s]" name arch.Arch.name)
         `Quick
         (fun () -> f arch))
    archs

(* ---- the common Table 3-3 contract ------------------------------------- *)

let test_enter_extract arch =
  let _m, domain = setup arch in
  let p = Pmap_domain.create_pmap domain in
  let ps = page arch in
  p.Pmap.enter ~va:(3 * ps) ~pfn:7 ~prot:Prot.read_write ~wired:false;
  Alcotest.(check (option int)) "extract" (Some 7) (p.Pmap.extract (3 * ps));
  Alcotest.(check (option int)) "extract mid-page" (Some 7)
    (p.Pmap.extract ((3 * ps) + (ps / 2)));
  Alcotest.(check (option int)) "unmapped" None (p.Pmap.extract (9 * ps));
  Alcotest.(check bool) "access_check" true (p.Pmap.access_check (3 * ps));
  Alcotest.(check int) "resident" 1 (p.Pmap.resident_count ())

let test_remove_range arch =
  let _m, domain = setup arch in
  let p = Pmap_domain.create_pmap domain in
  let ps = page arch in
  for i = 0 to 9 do
    p.Pmap.enter ~va:(i * ps) ~pfn:(10 + i) ~prot:Prot.read_write
      ~wired:false
  done;
  p.Pmap.remove ~start_va:(2 * ps) ~end_va:(5 * ps);
  Alcotest.(check (option int)) "below kept" (Some 11) (p.Pmap.extract ps);
  Alcotest.(check (option int)) "removed" None (p.Pmap.extract (3 * ps));
  Alcotest.(check (option int)) "above kept" (Some 15)
    (p.Pmap.extract (5 * ps));
  Alcotest.(check int) "resident" 7 (p.Pmap.resident_count ())

let test_replace_mapping arch =
  let _m, domain = setup arch in
  let p = Pmap_domain.create_pmap domain in
  p.Pmap.enter ~va:0 ~pfn:1 ~prot:Prot.read_write ~wired:false;
  p.Pmap.enter ~va:0 ~pfn:2 ~prot:Prot.read_only ~wired:false;
  Alcotest.(check (option int)) "replaced" (Some 2) (p.Pmap.extract 0);
  Alcotest.(check int) "one mapping" 1 (p.Pmap.resident_count ());
  (* The pv layer tracks the replacement too. *)
  Alcotest.(check int) "old frame unmapped" 0
    (Pmap_domain.mapping_count domain ~pfn:1);
  Alcotest.(check int) "new frame mapped" 1
    (Pmap_domain.mapping_count domain ~pfn:2)

let test_destroy_clears_pv arch =
  let _m, domain = setup arch in
  let p = Pmap_domain.create_pmap domain in
  let ps = page arch in
  p.Pmap.enter ~va:0 ~pfn:5 ~prot:Prot.read_write ~wired:false;
  p.Pmap.enter ~va:ps ~pfn:6 ~prot:Prot.read_write ~wired:false;
  p.Pmap.destroy ();
  Alcotest.(check int) "pv empty 5" 0 (Pmap_domain.mapping_count domain ~pfn:5);
  Alcotest.(check int) "pv empty 6" 0 (Pmap_domain.mapping_count domain ~pfn:6);
  Alcotest.(check bool) "unregistered" true
    (Pmap_domain.find_pmap domain ~asid:p.Pmap.asid = None)

let test_remove_all arch =
  let _m, domain = setup arch in
  let p1 = Pmap_domain.create_pmap domain in
  let p2 = Pmap_domain.create_pmap domain in
  let ps = page arch in
  (* On the RT PC two pmaps cannot both map frame 9 (one mapping per
     physical page), so only p1 maps there and the common contract is
     checked: remove_all empties the pv list. *)
  p1.Pmap.enter ~va:0 ~pfn:9 ~prot:Prot.read_write ~wired:false;
  if arch.Arch.kind <> Arch.Rt_pc then
    p2.Pmap.enter ~va:(4 * ps) ~pfn:9 ~prot:Prot.read_write ~wired:false;
  Alcotest.(check bool) "mapped" true
    (Pmap_domain.mapping_count domain ~pfn:9 >= 1);
  Pmap_domain.remove_all domain ~pfn:9 ~urgent:true;
  Alcotest.(check int) "all gone" 0 (Pmap_domain.mapping_count domain ~pfn:9);
  Alcotest.(check (option int)) "p1 dropped" None (p1.Pmap.extract 0);
  Alcotest.(check (option int)) "p2 dropped" None (p2.Pmap.extract (4 * ps))

let test_protect_lowers arch =
  let machine, domain = setup arch in
  let p = Pmap_domain.create_pmap domain in
  let ps = page arch in
  p.Pmap.activate ~cpu:0;
  p.Pmap.enter ~va:0 ~pfn:3 ~prot:Prot.read_write ~wired:false;
  (* The handler reloads dropped mappings at the currently intended
     protection (the fast-reload path on TLB-only machines) and records
     genuine protection faults. *)
  let cur_prot = ref Prot.read_write in
  let prot_faults = ref 0 in
  Machine.set_fault_handler machine (fun ~cpu:_ f ->
      (match f.Machine.fault_kind with
       | `Protection -> incr prot_faults
       | `Invalid -> ());
      p.Pmap.enter ~va:0 ~pfn:3 ~prot:!cur_prot ~wired:false);
  ignore (Machine.read_byte machine ~cpu:0 ~va:0);
  Machine.write_byte machine ~cpu:0 ~va:0 'x';
  Alcotest.(check int) "no protection faults before" 0 !prot_faults;
  p.Pmap.protect ~start_va:0 ~end_va:ps ~prot:Prot.read_only;
  cur_prot := Prot.read_only;
  (* Reads still work; a write now protection-faults. *)
  ignore (Machine.read_byte machine ~cpu:0 ~va:0);
  Alcotest.(check int) "read needs no protection fault" 0 !prot_faults;
  cur_prot := Prot.read_write;
  Machine.write_byte machine ~cpu:0 ~va:0 'y';
  Alcotest.(check bool) "write faulted after protect" true (!prot_faults >= 1)

let test_copy_on_write_all_maps arch =
  let machine, domain = setup arch in
  let p = Pmap_domain.create_pmap domain in
  p.Pmap.enter ~va:0 ~pfn:3 ~prot:Prot.read_write ~wired:false;
  p.Pmap.activate ~cpu:0;
  Pmap_domain.copy_on_write domain ~pfn:3;
  let faulted = ref false in
  Machine.set_fault_handler machine (fun ~cpu:_ _ ->
      faulted := true;
      p.Pmap.enter ~va:0 ~pfn:3 ~prot:Prot.read_write ~wired:false);
  Machine.write_byte machine ~cpu:0 ~va:0 'y';
  Alcotest.(check bool) "write faulted after pmap_copy_on_write" true
    !faulted

(* The central property: a pmap may drop any non-wired mapping at any
   time, because machine-independent state can rebuild it at fault time.
   Here the rebuild is simulated by a fault handler that re-enters from a
   model table; memory contents must be unaffected. *)
let test_pmap_is_a_cache arch =
  let machine, domain = setup arch in
  let p = Pmap_domain.create_pmap domain in
  let ps = page arch in
  let model = Hashtbl.create 16 in
  for i = 0 to 7 do
    Hashtbl.replace model i (20 + i);
    p.Pmap.enter ~va:(i * ps) ~pfn:(20 + i) ~prot:Prot.read_write
      ~wired:false
  done;
  p.Pmap.activate ~cpu:0;
  Machine.set_fault_handler machine (fun ~cpu:_ f ->
      let vpn = f.Machine.fault_va / ps in
      match Hashtbl.find_opt model vpn with
      | Some pfn ->
        p.Pmap.enter ~va:(vpn * ps) ~pfn ~prot:Prot.read_write ~wired:false
      | None -> Alcotest.fail "fault outside model");
  for i = 0 to 7 do
    Machine.write machine ~cpu:0 ~va:(i * ps)
      (Bytes.of_string (Printf.sprintf "page%03d" i))
  done;
  (* Drop everything, then observe identical contents. *)
  p.Pmap.collect ();
  Alcotest.(check int) "all dropped" 0 (p.Pmap.resident_count ());
  for i = 0 to 7 do
    Alcotest.(check string)
      (Printf.sprintf "contents %d" i)
      (Printf.sprintf "page%03d" i)
      (Bytes.to_string (Machine.read machine ~cpu:0 ~va:(i * ps) ~len:7))
  done;
  Alcotest.(check bool) "drops counted" true
    (p.Pmap.stats.Pmap.cache_drops >= 8)

let test_modify_reference_bits arch =
  let machine, domain = setup arch in
  let p = Pmap_domain.create_pmap domain in
  p.Pmap.activate ~cpu:0;
  p.Pmap.enter ~va:0 ~pfn:4 ~prot:Prot.read_write ~wired:false;
  Alcotest.(check bool) "initially clean" false
    (Pmap_domain.is_modified domain ~pfn:4);
  ignore (Machine.read_byte machine ~cpu:0 ~va:0);
  Alcotest.(check bool) "referenced" true
    (Pmap_domain.is_referenced domain ~pfn:4);
  Alcotest.(check bool) "not modified by read" false
    (Pmap_domain.is_modified domain ~pfn:4);
  Machine.write_byte machine ~cpu:0 ~va:0 'm';
  Alcotest.(check bool) "modified" true
    (Pmap_domain.is_modified domain ~pfn:4);
  Pmap_domain.clear_modified domain ~pfn:4;
  Pmap_domain.clear_referenced domain ~pfn:4;
  Alcotest.(check bool) "cleared" false
    (Pmap_domain.is_modified domain ~pfn:4
     || Pmap_domain.is_referenced domain ~pfn:4)

let test_activate_switches arch =
  let machine, domain = setup arch in
  let p1 = Pmap_domain.create_pmap domain in
  let p2 = Pmap_domain.create_pmap domain in
  (* Reload handler for architectures whose mappings live only in TLBs. *)
  let active = ref p1 in
  Machine.set_fault_handler machine (fun ~cpu:_ f ->
      let p = !active in
      match p.Pmap.extract f.Machine.fault_va with
      | Some pfn ->
        p.Pmap.enter ~va:f.Machine.fault_va ~pfn ~prot:Prot.read_write
          ~wired:false
      | None -> Alcotest.fail "fault on unmapped address");
  p1.Pmap.enter ~va:0 ~pfn:1 ~prot:Prot.read_write ~wired:false;
  p2.Pmap.enter ~va:0 ~pfn:2 ~prot:Prot.read_write ~wired:false;
  Phys_mem.write (Machine.phys machine) 1 ~offset:0 (Bytes.of_string "one");
  Phys_mem.write (Machine.phys machine) 2 ~offset:0 (Bytes.of_string "two");
  p1.Pmap.activate ~cpu:0;
  Alcotest.(check string) "p1 view" "one"
    (Bytes.to_string (Machine.read machine ~cpu:0 ~va:0 ~len:3));
  p1.Pmap.deactivate ~cpu:0;
  active := p2;
  p2.Pmap.activate ~cpu:0;
  Alcotest.(check string) "p2 view" "two"
    (Bytes.to_string (Machine.read machine ~cpu:0 ~va:0 ~len:3))

let test_zero_copy_page arch =
  let machine, domain = setup arch in
  let phys = Machine.phys machine in
  Phys_mem.write phys 1 ~offset:0 (Bytes.of_string "zzz");
  Pmap_domain.copy_page domain ~src:1 ~dst:2;
  Alcotest.(check bool) "copied" true (Phys_mem.frame_equal phys 1 2);
  Pmap_domain.zero_page domain ~pfn:1;
  Alcotest.(check char) "zeroed" '\000' (Phys_mem.read_byte phys 1 ~offset:0)

let test_wired_survives_collect arch =
  let _m, domain = setup arch in
  let p = Pmap_domain.create_pmap domain in
  let ps = page arch in
  p.Pmap.enter ~va:0 ~pfn:3 ~prot:Prot.read_write ~wired:true;
  p.Pmap.enter ~va:ps ~pfn:4 ~prot:Prot.read_write ~wired:false;
  p.Pmap.collect ();
  Alcotest.(check (option int)) "wired kept" (Some 3) (p.Pmap.extract 0);
  Alcotest.(check (option int)) "unwired dropped" None (p.Pmap.extract ps);
  Alcotest.(check int) "one left" 1 (p.Pmap.resident_count ())

let test_remove_empty_range arch =
  let _m, domain = setup arch in
  let p = Pmap_domain.create_pmap domain in
  let ps = page arch in
  p.Pmap.enter ~va:0 ~pfn:3 ~prot:Prot.read_write ~wired:false;
  (* Removing a range with no mappings is a harmless no-op. *)
  p.Pmap.remove ~start_va:(10 * ps) ~end_va:(20 * ps);
  Alcotest.(check int) "untouched" 1 (p.Pmap.resident_count ())

let test_double_activate_idempotent arch =
  let machine, domain = setup arch in
  let p = Pmap_domain.create_pmap domain in
  p.Pmap.enter ~va:0 ~pfn:2 ~prot:Prot.read_write ~wired:false;
  p.Pmap.activate ~cpu:0;
  p.Pmap.activate ~cpu:0;
  Machine.set_fault_handler machine (fun ~cpu:_ _ ->
      p.Pmap.enter ~va:0 ~pfn:2 ~prot:Prot.read_write ~wired:false);
  Machine.write_byte machine ~cpu:0 ~va:0 'a';
  Alcotest.(check char) "works" 'a' (Machine.read_byte machine ~cpu:0 ~va:0)

let test_reference_counting arch =
  let _m, domain = setup arch in
  let p = Pmap_domain.create_pmap domain in
  p.Pmap.enter ~va:0 ~pfn:3 ~prot:Prot.read_write ~wired:false;
  (* Two tasks share the pmap: the first destroy only drops a
     reference. *)
  p.Pmap.reference ();
  p.Pmap.destroy ();
  Alcotest.(check (option int)) "still alive" (Some 3) (p.Pmap.extract 0);
  Alcotest.(check bool) "still registered" true
    (Pmap_domain.find_pmap domain ~asid:p.Pmap.asid <> None);
  p.Pmap.destroy ();
  Alcotest.(check bool) "gone after last reference" true
    (Pmap_domain.find_pmap domain ~asid:p.Pmap.asid = None);
  Alcotest.(check int) "pv cleaned" 0 (Pmap_domain.mapping_count domain ~pfn:3)

(* ---- architecture-specific behaviours ----------------------------------- *)

let test_vax_table_gc () =
  let _m, domain = setup Arch.uvax2 in
  let p = Pmap_domain.create_pmap domain in
  let base = p.Pmap.map_bytes () in
  (* Map two pages far apart: two table pages appear; removing the
     mappings garbage collects them. *)
  p.Pmap.enter ~va:0 ~pfn:1 ~prot:Prot.read_write ~wired:false;
  p.Pmap.enter ~va:(100 * 1024 * 1024) ~pfn:2 ~prot:Prot.read_write
    ~wired:false;
  Alcotest.(check bool) "tables grew" true (p.Pmap.map_bytes () > base);
  p.Pmap.remove ~start_va:0 ~end_va:512;
  p.Pmap.remove ~start_va:(100 * 1024 * 1024)
    ~end_va:((100 * 1024 * 1024) + 512);
  Alcotest.(check int) "tables collected" base (p.Pmap.map_bytes ())

let test_rtpc_alias_eviction () =
  let _m, domain = setup Arch.rt_pc in
  let p1 = Pmap_domain.create_pmap domain in
  let p2 = Pmap_domain.create_pmap domain in
  let ps = page Arch.rt_pc in
  p1.Pmap.enter ~va:0 ~pfn:9 ~prot:Prot.read_write ~wired:false;
  (* p2 mapping the same physical page evicts p1's mapping. *)
  p2.Pmap.enter ~va:(5 * ps) ~pfn:9 ~prot:Prot.read_only ~wired:false;
  Alcotest.(check (option int)) "p1 evicted" None (p1.Pmap.extract 0);
  Alcotest.(check (option int)) "p2 mapped" (Some 9)
    (p2.Pmap.extract (5 * ps));
  Alcotest.(check int) "alias eviction counted" 1
    p2.Pmap.stats.Pmap.alias_evictions;
  Alcotest.(check int) "exactly one mapping" 1
    (Pmap_domain.mapping_count domain ~pfn:9);
  (* Bouncing back evicts p2 in turn. *)
  p1.Pmap.enter ~va:0 ~pfn:9 ~prot:Prot.read_write ~wired:false;
  Alcotest.(check (option int)) "p2 evicted back" None
    (p2.Pmap.extract (5 * ps))

let test_rtpc_map_bytes_constant () =
  let _m, domain = setup Arch.rt_pc in
  let p = Pmap_domain.create_pmap domain in
  let before = Pmap_domain.total_map_bytes domain in
  for i = 0 to 19 do
    p.Pmap.enter ~va:(i * 2048 * 1000) ~pfn:i ~prot:Prot.read_write
      ~wired:false
  done;
  (* The inverted table never grows with address-space size. *)
  Alcotest.(check int) "constant" before (Pmap_domain.total_map_bytes domain)

let test_sun3_context_steal () =
  let _m, domain = setup Arch.sun3_160 in
  let ps = page Arch.sun3_160 in
  (* 9 pmaps compete for 8 contexts. *)
  let pmaps = List.init 9 (fun _ -> Pmap_domain.create_pmap domain) in
  List.iteri
    (fun i p ->
       p.Pmap.enter ~va:0 ~pfn:i ~prot:Prot.read_write ~wired:false)
    pmaps;
  (* The 9th enter stole the least-recently-used context (the first
     pmap's); its mappings are gone and will be rebuilt by faults. *)
  let first = List.hd pmaps in
  let ninth = List.nth pmaps 8 in
  Alcotest.(check (option int)) "victim lost mappings" None
    (first.Pmap.extract 0);
  Alcotest.(check (option int)) "thief mapped" (Some 8)
    (ninth.Pmap.extract 0);
  Alcotest.(check int) "steal counted" 1 ninth.Pmap.stats.Pmap.context_steals;
  Alcotest.(check int) "victim pv cleaned" 0
    (Pmap_domain.mapping_count domain ~pfn:0);
  (* The victim coming back steals another context and can re-enter. *)
  first.Pmap.enter ~va:ps ~pfn:20 ~prot:Prot.read_write ~wired:false;
  Alcotest.(check (option int)) "victim recovered" (Some 20)
    (first.Pmap.extract ps)

let test_ns32082_limits () =
  let _m, domain = setup Arch.ns32082 in
  let p = Pmap_domain.create_pmap domain in
  Alcotest.check_raises "VA beyond 16MB"
    (Invalid_argument "pmap_enter: virtual address beyond hardware limit")
    (fun () ->
       p.Pmap.enter ~va:(17 * 1024 * 1024) ~pfn:1 ~prot:Prot.read_write
         ~wired:false);
  (* In-range addresses and frames work normally. *)
  p.Pmap.enter ~va:0 ~pfn:1 ~prot:Prot.read_write ~wired:false;
  Alcotest.(check (option int)) "in range ok" (Some 1) (p.Pmap.extract 0)

let test_ns32082_pa_limit () =
  (* Build a machine larger than 32 MB of physical memory: frames beyond
     the limit must be rejected by pmap_enter. *)
  let arch = Arch.ns32082 in
  let frames = (40 * 1024 * 1024) / arch.Arch.hw_page_size in
  let machine = Machine.create ~arch ~memory_frames:frames () in
  let domain = Pmap_domain.create machine in
  let p = Pmap_domain.create_pmap domain in
  let beyond = (33 * 1024 * 1024) / arch.Arch.hw_page_size in
  Alcotest.check_raises "PA beyond 32MB"
    (Invalid_argument "pmap_enter: physical page beyond hardware limit")
    (fun () ->
       p.Pmap.enter ~va:0 ~pfn:beyond ~prot:Prot.read_write ~wired:false)

let test_tlbonly_no_structures () =
  let machine, domain = setup Arch.rp3_tlb in
  let p = Pmap_domain.create_pmap domain in
  let ps = page Arch.rp3_tlb in
  p.Pmap.activate ~cpu:0;
  p.Pmap.enter ~va:0 ~pfn:3 ~prot:Prot.read_write ~wired:false;
  Alcotest.(check int) "map_bytes 0" 0 (p.Pmap.map_bytes ());
  (* First access hits the TLB that enter filled; no fault. *)
  Machine.set_fault_handler machine (fun ~cpu:_ _ ->
      Alcotest.fail "unexpected fault");
  Machine.write_byte machine ~cpu:0 ~va:8 'q';
  (* Evict by filling the TLB with other translations, then the next
     access must fault to software for reload. *)
  let reloads = ref 0 in
  Machine.set_fault_handler machine (fun ~cpu:_ f ->
      incr reloads;
      let vpn = f.Machine.fault_va / ps in
      match p.Pmap.extract (vpn * ps) with
      | Some pfn ->
        p.Pmap.enter ~va:(vpn * ps) ~pfn ~prot:Prot.read_write ~wired:false
      | None -> Alcotest.fail "no soft mapping");
  for i = 1 to Arch.rp3_tlb.Arch.tlb_entries + 4 do
    p.Pmap.enter ~va:(i * ps) ~pfn:(3 + i) ~prot:Prot.read_write
      ~wired:false
  done;
  Alcotest.(check char) "data survives reload" 'q'
    (Machine.read_byte machine ~cpu:0 ~va:8);
  Alcotest.(check bool) "reload happened" true (!reloads >= 1)

(* ---- qcheck: random op sequences vs a model ----------------------------- *)

(* Apply random enter/remove ops to a (non-RT) pmap and a Hashtbl model;
   extract must agree afterwards.  The RT PC is excluded because foreign
   pmaps can evict mappings; it has its own tests above. *)
let pmap_model_test arch =
  let open QCheck2 in
  Test.make
    ~name:(Printf.sprintf "pmap agrees with model [%s]" arch.Arch.name)
    ~count:60
    Gen.(list (triple (int_range 0 2) (int_range 0 19) (int_range 0 49)))
    (fun ops ->
       let _m, domain = setup arch in
       let p = Pmap_domain.create_pmap domain in
       let ps = page arch in
       let model = Hashtbl.create 16 in
       List.iter
         (fun (op, vpn, pfn) ->
            match op with
            | 0 ->
              p.Pmap.enter ~va:(vpn * ps) ~pfn ~prot:Prot.read_write
                ~wired:false;
              Hashtbl.replace model vpn pfn
            | 1 ->
              p.Pmap.remove ~start_va:(vpn * ps) ~end_va:((vpn + 1) * ps);
              Hashtbl.remove model vpn
            | _ ->
              (* range remove of three pages *)
              p.Pmap.remove ~start_va:(vpn * ps) ~end_va:((vpn + 3) * ps);
              Hashtbl.remove model vpn;
              Hashtbl.remove model (vpn + 1);
              Hashtbl.remove model (vpn + 2))
         ops;
       let ok = ref true in
       for vpn = 0 to 25 do
         let expected = Hashtbl.find_opt model vpn in
         if p.Pmap.extract (vpn * ps) <> expected then ok := false
       done;
       !ok && p.Pmap.resident_count () = Hashtbl.length model)

let model_archs = [ Arch.uvax2; Arch.sun3_160; Arch.ns32082; Arch.rp3_tlb ]

let () =
  Alcotest.run "mach_pmap"
    [ ("enter/extract", per_arch "enter/extract" test_enter_extract);
      ("remove", per_arch "remove range" test_remove_range);
      ("replace", per_arch "replace mapping" test_replace_mapping);
      ("destroy", per_arch "destroy clears pv" test_destroy_clears_pv);
      ("remove_all", per_arch "remove_all" test_remove_all);
      ("protect", per_arch "protect lowers" test_protect_lowers);
      ( "copy_on_write",
        per_arch "pmap_copy_on_write" test_copy_on_write_all_maps );
      ("cache", per_arch "pmap is a cache" test_pmap_is_a_cache);
      ("bits", per_arch "modify/reference bits" test_modify_reference_bits);
      ("activate", per_arch "activate switches" test_activate_switches);
      ("page ops", per_arch "zero/copy page" test_zero_copy_page);
      ("wired", per_arch "wired survives collect" test_wired_survives_collect);
      ("empty remove", per_arch "remove empty range" test_remove_empty_range);
      ( "reactivate",
        per_arch "double activate" test_double_activate_idempotent );
      ("refcount", per_arch "pmap_reference" test_reference_counting);
      ( "vax",
        [ Alcotest.test_case "page tables grow and collect" `Quick
            test_vax_table_gc ] );
      ( "rt_pc",
        [ Alcotest.test_case "alias eviction" `Quick test_rtpc_alias_eviction;
          Alcotest.test_case "map bytes constant" `Quick
            test_rtpc_map_bytes_constant ] );
      ( "sun3",
        [ Alcotest.test_case "context steal" `Quick test_sun3_context_steal ]
      );
      ( "ns32082",
        [ Alcotest.test_case "VA limit" `Quick test_ns32082_limits;
          Alcotest.test_case "PA limit" `Quick test_ns32082_pa_limit ] );
      ( "tlb_only",
        [ Alcotest.test_case "no hardware structures" `Quick
            test_tlbonly_no_structures ] );
      ( "model",
        List.map
          (fun arch -> QCheck_alcotest.to_alcotest (pmap_model_test arch))
          model_archs ) ]
