(* Tests for the Section 6 extension: remote memory objects over a
   simulated network — copy-on-reference transfer, local caching,
   write-back, and the cost model. *)

open Mach_hw
open Mach_core
open Mach_net
open Mach_pagers

let kb = 1024

let boot_pair () =
  let server_machine =
    Machine.create ~arch:Arch.vax8200 ~memory_frames:4096 ()
  in
  let client_machine =
    Machine.create ~arch:Arch.vax8200 ~memory_frames:4096 ()
  in
  let server_kernel = Kernel.create ~page_multiple:8 server_machine in
  let client_kernel = Kernel.create ~page_multiple:8 client_machine in
  let link = Netlink.create [ server_machine; client_machine ] in
  let server_fs = Simfs.create server_machine () in
  let server = Net_pager.serve link ~node:0 (Kernel.sys server_kernel) server_fs in
  (link, server_fs, server, client_machine, client_kernel)

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.fail (Kr.to_string e)

let test_link_charges_both_sides () =
  let a = Machine.create ~arch:Arch.vax8200 ~memory_frames:64 () in
  let b = Machine.create ~arch:Arch.uvax2 ~memory_frames:64 () in
  let link = Netlink.create [ a; b ] in
  let r =
    Netlink.rpc link ~from_node:0 ~from_cpu:0 ~to_node:1 ~to_cpu:0
      ~request_bytes:100 ~reply_bytes:5000 (fun () -> 42)
  in
  Alcotest.(check int) "result" 42 r;
  Alcotest.(check bool) "caller charged" true (Machine.max_cycles a > 0);
  Alcotest.(check bool) "server charged" true (Machine.max_cycles b > 0);
  Alcotest.(check int) "bytes" 5100 (Netlink.bytes_moved link);
  Alcotest.(check int) "messages" 2 (Netlink.messages link)

let test_rpc_mirrors_service_time () =
  let a = Machine.create ~arch:Arch.vax8200 ~memory_frames:64 () in
  let b = Machine.create ~arch:Arch.vax8200 ~memory_frames:64 () in
  let link = Netlink.create [ a; b ] in
  let small =
    Netlink.rpc link ~from_node:0 ~from_cpu:0 ~to_node:1 ~to_cpu:0
      ~request_bytes:10 ~reply_bytes:10 (fun () -> ());
    Machine.max_cycles a
  in
  Machine.reset_clocks a;
  Machine.reset_clocks b;
  Netlink.rpc link ~from_node:0 ~from_cpu:0 ~to_node:1 ~to_cpu:0
    ~request_bytes:10 ~reply_bytes:10 (fun () ->
        Machine.charge b ~cpu:0 1_000_000);
  Alcotest.(check bool) "caller waits for remote work" true
    (Machine.max_cycles a > small + 500_000)

let test_remote_map_data () =
  let link, server_fs, server, client_machine, client_kernel = boot_pair () in
  ignore link;
  Simfs.install_file server_fs ~name:"/r"
    ~data:(Bytes.of_string (String.concat "" (List.init 1000 (fun i -> Printf.sprintf "%04d" i))));
  let sys = Kernel.sys client_kernel in
  let t = Kernel.create_task client_kernel () in
  Kernel.run_task client_kernel ~cpu:0 t;
  let addr, size =
    ok (Net_pager.map_remote link ~node:1 sys t server ~name:"/r" ())
  in
  Alcotest.(check int) "size" 4000 size;
  Alcotest.(check string) "front" "0000"
    (Bytes.to_string (Machine.read client_machine ~cpu:0 ~va:addr ~len:4));
  Alcotest.(check string) "mid" "0500"
    (Bytes.to_string (Machine.read client_machine ~cpu:0 ~va:(addr + 2000) ~len:4))

let test_copy_on_reference_traffic () =
  let link, server_fs, server, client_machine, client_kernel = boot_pair () in
  Simfs.install_file server_fs ~name:"/big" ~data:(Bytes.make (64 * kb) 'B');
  let sys = Kernel.sys client_kernel in
  let t = Kernel.create_task client_kernel () in
  Kernel.run_task client_kernel ~cpu:0 t;
  let addr, _ =
    ok (Net_pager.map_remote link ~node:1 sys t server ~name:"/big" ())
  in
  Netlink.reset_counters link;
  (* Touch two of sixteen pages: traffic ~ 2 pages, not the file. *)
  ignore (Machine.read_byte client_machine ~cpu:0 ~va:addr);
  ignore (Machine.read_byte client_machine ~cpu:0 ~va:(addr + (32 * kb)));
  Alcotest.(check bool) "only touched pages moved" true
    (Netlink.bytes_moved link < 3 * 4096 + 512);
  (* Retouching is free: pages are locally resident. *)
  let m = Netlink.messages link in
  ignore (Machine.read_byte client_machine ~cpu:0 ~va:addr);
  Alcotest.(check int) "no extra traffic" m (Netlink.messages link)

let test_write_back_to_server () =
  let link, server_fs, server, client_machine, client_kernel = boot_pair () in
  Simfs.install_file server_fs ~name:"/w" ~data:(Bytes.make (4 * kb) 'w');
  let sys = Kernel.sys client_kernel in
  let t = Kernel.create_task client_kernel () in
  Kernel.run_task client_kernel ~cpu:0 t;
  let addr, _ =
    ok (Net_pager.map_remote link ~node:1 sys t server ~name:"/w" ())
  in
  Machine.write client_machine ~cpu:0 ~va:addr (Bytes.of_string "REMOTE");
  Kernel.terminate_task client_kernel ~cpu:0 t;
  Vm_pageout.deactivate_some sys ~count:1000;
  Vm_pageout.run sys ~wanted:1000;
  Vm_object.drain_cache sys;
  Alcotest.(check string) "server updated" "REMOTE"
    (Bytes.to_string (Simfs.read server_fs ~cpu:0 ~name:"/w" ~offset:0 ~len:6))

let test_private_remote_mapping () =
  let link, server_fs, server, client_machine, client_kernel = boot_pair () in
  Simfs.install_file server_fs ~name:"/p" ~data:(Bytes.make (4 * kb) 'p');
  let sys = Kernel.sys client_kernel in
  let t = Kernel.create_task client_kernel () in
  Kernel.run_task client_kernel ~cpu:0 t;
  let addr, _ =
    ok (Net_pager.map_remote link ~node:1 sys t server ~name:"/p" ~copy:true ())
  in
  Machine.write_byte client_machine ~cpu:0 ~va:addr 'X';
  Kernel.terminate_task client_kernel ~cpu:0 t;
  Vm_pageout.deactivate_some sys ~count:1000;
  Vm_pageout.run sys ~wanted:1000;
  Vm_object.drain_cache sys;
  Alcotest.(check char) "server untouched by private mapping" 'p'
    (Bytes.get (Simfs.read server_fs ~cpu:0 ~name:"/p" ~offset:0 ~len:1) 0)

let test_missing_remote_file () =
  let link, _server_fs, server, _client_machine, client_kernel = boot_pair () in
  let sys = Kernel.sys client_kernel in
  let t = Kernel.create_task client_kernel () in
  (match Net_pager.map_remote link ~node:1 sys t server ~name:"/none" () with
   | Error Kr.Invalid_argument -> ()
   | Error e -> Alcotest.fail (Kr.to_string e)
   | Ok _ -> Alcotest.fail "expected failure")

let test_fetch_whole_moves_everything () =
  let link, server_fs, server, _client_machine, client_kernel = boot_pair () in
  Simfs.install_file server_fs ~name:"/all" ~data:(Bytes.make (32 * kb) 'a');
  Netlink.reset_counters link;
  let data =
    Net_pager.fetch_whole link ~node:1 (Kernel.sys client_kernel) server
      ~name:"/all"
  in
  Alcotest.(check int) "all bytes" (32 * kb) (Bytes.length data);
  Alcotest.(check bool) "wire carried the file" true
    (Netlink.bytes_moved link >= 32 * kb)

let () =
  Alcotest.run "mach_net"
    [ ( "link",
        [ Alcotest.test_case "charges both sides" `Quick
            test_link_charges_both_sides;
          Alcotest.test_case "mirrors service time" `Quick
            test_rpc_mirrors_service_time ] );
      ( "remote objects",
        [ Alcotest.test_case "mapped data" `Quick test_remote_map_data;
          Alcotest.test_case "copy-on-reference traffic" `Quick
            test_copy_on_reference_traffic;
          Alcotest.test_case "write-back" `Quick test_write_back_to_server;
          Alcotest.test_case "private mapping" `Quick
            test_private_remote_mapping;
          Alcotest.test_case "missing file" `Quick test_missing_remote_file;
          Alcotest.test_case "fetch whole" `Quick
            test_fetch_whole_moves_everything ] ) ]
