(* Property-based tests (qcheck) across the substrate: data structures
   against reference models, and whole-system data-preservation
   properties under randomized operation sequences. *)

open Mach_hw
open Mach_core
open Mach_pagers

let kb = 1024

let boot () =
  let machine = Machine.create ~arch:Arch.vax8200 ~memory_frames:1024 () in
  let kernel = Kernel.create ~page_multiple:8 machine in
  (machine, kernel, Kernel.sys kernel)

(* ---- TLB vs a model map -------------------------------------------------- *)

(* A TLB holding at most N entries never returns a translation that was
   not inserted (and not since invalidated). *)
let tlb_soundness =
  let open QCheck2 in
  Test.make ~name:"tlb never invents translations" ~count:200
    Gen.(list (triple (int_range 0 3) (int_range 0 9) (int_range 0 30)))
    (fun ops ->
       let t = Tlb.create ~capacity:4 in
       let model = Hashtbl.create 16 in
       List.iter
         (fun (op, asid, vpn) ->
            match op with
            | 0 ->
              Tlb.insert t { Tlb.asid; vpn; pfn = vpn + 100; prot = Prot.read_write };
              Hashtbl.replace model (asid, vpn) (vpn + 100)
            | 1 ->
              Tlb.invalidate_page t ~asid ~vpn;
              Hashtbl.remove model (asid, vpn)
            | 2 ->
              Tlb.invalidate_asid t ~asid;
              Hashtbl.iter
                (fun (a, v) _ ->
                   if a = asid then Hashtbl.remove model (a, v))
                (Hashtbl.copy model)
            | _ -> (
                match Tlb.lookup t ~asid ~vpn with
                | Some e ->
                  (* a hit must agree with the model *)
                  if Hashtbl.find_opt model (asid, vpn) <> Some e.Tlb.pfn
                  then failwith "tlb invented a translation"
                | None -> ()))
         ops;
       true)

(* ---- Page_io round trips -------------------------------------------------- *)

let page_io_roundtrip =
  let open QCheck2 in
  Test.make ~name:"page_io copy_in/copy_out round trip" ~count:100
    Gen.(pair (int_range 0 4000) (string_size (int_range 1 96)))
    (fun (off, s) ->
       let _, _, sys = boot () in
       let off = min off (sys.Vm_sys.page_size - String.length s) in
       let p = Vm_sys.grab_page sys in
       Page_io.zero sys p;
       Page_io.copy_in sys p ~off (Bytes.of_string s);
       let back = Page_io.copy_out sys p ~off ~len:(String.length s) in
       Resident.free_page sys.Vm_sys.resident p;
       Bytes.to_string back = s)

let page_io_fill_pads =
  let open QCheck2 in
  Test.make ~name:"page_io fill zero-pads the tail" ~count:50
    Gen.(string_size (int_range 0 200))
    (fun s ->
       let _, _, sys = boot () in
       let p = Vm_sys.grab_page sys in
       (* dirty the frame first *)
       Page_io.copy_in sys p ~off:0 (Bytes.make sys.Vm_sys.page_size 'x');
       Page_io.fill sys p (Bytes.of_string s);
       let whole = Page_io.contents sys p in
       Resident.free_page sys.Vm_sys.resident p;
       String.length s = 0
       || (Bytes.to_string (Bytes.sub whole 0 (String.length s)) = s
           && Bytes.get whole (String.length s) = '\000'))

(* ---- Simfs vs a byte-array model ------------------------------------------ *)

let simfs_model =
  let open QCheck2 in
  Test.make ~name:"simfs agrees with a bytes model" ~count:100
    Gen.(list (pair (int_range 0 6000) (string_size (int_range 1 700))))
    (fun writes ->
       let machine = Machine.create ~arch:Arch.vax8200 ~memory_frames:64 () in
       let fs = Simfs.create machine () in
       Simfs.install_file fs ~name:"/m" ~data:(Bytes.create 0);
       let model = ref (Bytes.create 0) in
       List.iter
         (fun (offset, s) ->
            let data = Bytes.of_string s in
            Simfs.write fs ~cpu:0 ~name:"/m" ~offset ~data;
            let needed = offset + Bytes.length data in
            if Bytes.length !model < needed then begin
              let grown = Bytes.make needed '\000' in
              Bytes.blit !model 0 grown 0 (Bytes.length !model);
              model := grown
            end;
            Bytes.blit data 0 !model offset (Bytes.length data))
         writes;
       let size = Simfs.file_size fs ~name:"/m" in
       size = Bytes.length !model
       && Bytes.equal (Simfs.read fs ~cpu:0 ~name:"/m" ~offset:0 ~len:size)
            !model)

(* ---- buffer cache is transparent ------------------------------------------ *)

let buffer_cache_transparent =
  let open QCheck2 in
  Test.make ~name:"buffer cache returns exactly what simfs holds" ~count:60
    Gen.(list (pair (int_range 0 3) (int_range 0 5000)))
    (fun reads ->
       let machine = Machine.create ~arch:Arch.vax8200 ~memory_frames:64 () in
       let fs = Simfs.create machine () in
       let files =
         List.init 4 (fun i ->
             let name = Printf.sprintf "/f%d" i in
             let data =
               Bytes.init ((i + 1) * 3000) (fun j ->
                   Char.chr (((i * 37) + j) mod 256))
             in
             Simfs.install_file fs ~name ~data;
             (name, data))
       in
       let cache = Mach_bsd.Buffer_cache.create fs ~buffers:3 in
       List.for_all
         (fun (idx, offset) ->
            let name, data = List.nth files idx in
            let len = 512 in
            let expected =
              if offset >= Bytes.length data then Bytes.create 0
              else
                Bytes.sub data offset
                  (min len (Bytes.length data - offset))
            in
            Bytes.equal
              (Mach_bsd.Buffer_cache.read cache ~cpu:0 ~name ~offset ~len)
              expected)
         reads)

(* ---- whole-system data properties ------------------------------------------ *)

(* Protection cycling never changes data. *)
let protect_preserves_data =
  let open QCheck2 in
  Test.make ~name:"protect down/up cycles preserve memory contents"
    ~count:40
    Gen.(list (int_range 0 7))
    (fun pages ->
       let machine, kernel, sys = boot () in
       let t = Kernel.create_task kernel () in
       Kernel.run_task kernel ~cpu:0 t;
       let a =
         match Vm_user.allocate sys t ~size:(32 * kb) ~anywhere:true () with
         | Ok a -> a
         | Error _ -> failwith "alloc"
       in
       for i = 0 to 7 do
         Machine.write machine ~cpu:0 ~va:(a + (i * 4 * kb))
           (Bytes.of_string (Printf.sprintf "data%d" i))
       done;
       List.iter
         (fun page ->
            let addr = a + (page * 4 * kb) in
            ignore
              (Vm_user.protect sys t ~addr ~size:(4 * kb) ~set_max:false
                 ~prot:Prot.read_only);
            ignore
              (Vm_user.protect sys t ~addr ~size:(4 * kb) ~set_max:false
                 ~prot:Prot.read_write))
         pages;
       List.for_all
         (fun i ->
            Bytes.to_string
              (Machine.read machine ~cpu:0 ~va:(a + (i * 4 * kb)) ~len:5)
            = Printf.sprintf "data%d" i)
         [ 0; 1; 2; 3; 4; 5; 6; 7 ])

(* vm_copy equals vm_read/vm_write composition. *)
let vm_copy_equals_read_write =
  let open QCheck2 in
  Test.make ~name:"vm_copy equals read-then-write" ~count:40
    Gen.(string_size (int_range 1 2000))
    (fun s ->
       let _, kernel, sys = boot () in
       let t = Kernel.create_task kernel () in
       Kernel.run_task kernel ~cpu:0 t;
       let alloc () =
         match Vm_user.allocate sys t ~size:(8 * kb) ~anywhere:true () with
         | Ok a -> a
         | Error _ -> failwith "alloc"
       in
       let src = alloc () and via_copy = alloc () and via_rw = alloc () in
       (match Vm_user.write sys t ~addr:src ~data:(Bytes.of_string s) with
        | Ok () -> ()
        | Error _ -> failwith "write");
       (match Vm_user.copy sys t ~src ~dst:via_copy ~size:(8 * kb) with
        | Ok () -> ()
        | Error _ -> failwith "copy");
       (match Vm_user.read sys t ~addr:src ~size:(8 * kb) with
        | Ok data ->
          (match Vm_user.write sys t ~addr:via_rw ~data with
           | Ok () -> ()
           | Error _ -> failwith "write2")
        | Error _ -> failwith "read");
       let get addr =
         match Vm_user.read sys t ~addr ~size:(String.length s) with
         | Ok b -> Bytes.to_string b
         | Error _ -> failwith "readback"
       in
       get via_copy = s && get via_rw = s)

(* Extracted map copies carry exactly the source bytes at insertion
   time, wherever they are inserted. *)
let map_copy_roundtrip =
  let open QCheck2 in
  Test.make ~name:"extract/insert map copy preserves bytes" ~count:40
    Gen.(string_size (int_range 1 1000))
    (fun s ->
       let machine, kernel, sys = boot () in
       let src_task = Kernel.create_task kernel () in
       Kernel.run_task kernel ~cpu:0 src_task;
       let a =
         match Vm_user.allocate sys src_task ~size:(8 * kb) ~anywhere:true () with
         | Ok a -> a
         | Error _ -> failwith "alloc"
       in
       Machine.write machine ~cpu:0 ~va:a (Bytes.of_string s);
       let copy =
         match Vm_map.extract_copy sys (Task.map src_task) ~addr:a ~size:(8 * kb) with
         | Ok c -> c
         | Error _ -> failwith "extract"
       in
       let dst_task = Kernel.create_task kernel () in
       let b =
         match Vm_map.insert_copy sys (Task.map dst_task) copy () with
         | Ok b -> b
         | Error _ -> failwith "insert"
       in
       Kernel.run_task kernel ~cpu:0 dst_task;
       let got =
         Bytes.to_string
           (Machine.read machine ~cpu:0 ~va:b ~len:(String.length s))
       in
       got = s)

let () =
  Alcotest.run "properties"
    [ ( "models",
        List.map QCheck_alcotest.to_alcotest
          [ tlb_soundness; simfs_model; buffer_cache_transparent ] );
      ( "page_io",
        List.map QCheck_alcotest.to_alcotest
          [ page_io_roundtrip; page_io_fill_pads ] );
      ( "system",
        List.map QCheck_alcotest.to_alcotest
          [ protect_preserves_data; vm_copy_equals_read_write;
            map_copy_roundtrip ] ) ]
