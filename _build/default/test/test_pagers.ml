(* Tests for the pager substrate: the simulated disk, the file system,
   the vnode pager (mapped files), and the message-driven external
   pager. *)

open Mach_hw
open Mach_core
open Mach_pagers

let kb = 1024

let boot () =
  let machine = Machine.create ~arch:Arch.vax8200 ~memory_frames:8192 () in
  let kernel = Kernel.create ~page_multiple:8 machine in
  let fs = Simfs.create machine () in
  (machine, kernel, Kernel.sys kernel, fs)

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.fail (Kr.to_string e)

let new_task kernel ~cpu =
  let t = Kernel.create_task kernel () in
  Kernel.run_task kernel ~cpu t;
  t

(* ---- simdisk ------------------------------------------------------------ *)

let test_disk_rw_and_costs () =
  let machine = Machine.create ~arch:Arch.vax8200 ~memory_frames:64 () in
  let d = Simdisk.create machine ~block_size:4096 in
  Simdisk.write d ~cpu:0 ~block:5 (Bytes.of_string "disk block");
  Alcotest.(check string) "read back" "disk block"
    (Bytes.to_string (Bytes.sub (Simdisk.read d ~cpu:0 ~block:5) 0 10));
  Alcotest.(check int) "counters" 1 (Simdisk.reads d);
  Alcotest.(check int) "writes" 1 (Simdisk.writes d);
  Alcotest.(check bool) "time charged" true (Machine.max_cycles machine > 0);
  (* Unwritten blocks read as zeros. *)
  Alcotest.(check char) "zero block" '\000'
    (Bytes.get (Simdisk.read d ~cpu:0 ~block:99) 0)

let test_disk_install_uncharged () =
  let machine = Machine.create ~arch:Arch.vax8200 ~memory_frames:64 () in
  let d = Simdisk.create machine ~block_size:512 in
  Simdisk.install d ~block:1 (Bytes.of_string "setup");
  Alcotest.(check int) "no ops counted" 0 (Simdisk.writes d);
  Alcotest.(check int) "no time" 0 (Machine.max_cycles machine)

(* ---- simfs --------------------------------------------------------------- *)

let test_fs_roundtrip () =
  let _, _, _, fs = boot () in
  Simfs.install_file fs ~name:"/a" ~data:(Bytes.of_string "contents of a");
  Alcotest.(check bool) "exists" true (Simfs.exists fs ~name:"/a");
  Alcotest.(check int) "size" 13 (Simfs.file_size fs ~name:"/a");
  Alcotest.(check string) "read all" "contents of a"
    (Bytes.to_string (Simfs.read fs ~cpu:0 ~name:"/a" ~offset:0 ~len:13));
  Alcotest.(check string) "read middle" "tents"
    (Bytes.to_string (Simfs.read fs ~cpu:0 ~name:"/a" ~offset:3 ~len:5))

let test_fs_short_reads () =
  let _, _, _, fs = boot () in
  Simfs.install_file fs ~name:"/s" ~data:(Bytes.of_string "short");
  Alcotest.(check int) "clamped" 5
    (Bytes.length (Simfs.read fs ~cpu:0 ~name:"/s" ~offset:0 ~len:100));
  Alcotest.(check int) "past eof" 0
    (Bytes.length (Simfs.read fs ~cpu:0 ~name:"/s" ~offset:50 ~len:10))

let test_fs_write_extends () =
  let _, _, _, fs = boot () in
  Simfs.install_file fs ~name:"/w" ~data:(Bytes.of_string "12345");
  Simfs.write fs ~cpu:0 ~name:"/w" ~offset:3 ~data:(Bytes.of_string "ABCDEF");
  Alcotest.(check int) "extended" 9 (Simfs.file_size fs ~name:"/w");
  Alcotest.(check string) "merged" "123ABCDEF"
    (Bytes.to_string (Simfs.read fs ~cpu:0 ~name:"/w" ~offset:0 ~len:9))

let test_fs_spanning_blocks () =
  let _, _, _, fs = boot () in
  let big = Bytes.init (10 * kb) (fun i -> Char.chr (65 + (i mod 26))) in
  Simfs.install_file fs ~name:"/big" ~data:big;
  let r = Simfs.read fs ~cpu:0 ~name:"/big" ~offset:4000 ~len:1000 in
  Alcotest.(check string) "cross-block read"
    (Bytes.to_string (Bytes.sub big 4000 1000))
    (Bytes.to_string r)

let test_fs_delete () =
  let _, _, _, fs = boot () in
  Simfs.install_file fs ~name:"/d" ~data:(Bytes.of_string "x");
  Simfs.delete fs ~name:"/d";
  Alcotest.(check bool) "gone" false (Simfs.exists fs ~name:"/d")

(* ---- vnode pager ---------------------------------------------------------- *)

let test_map_file_data () =
  let machine, kernel, sys, fs = boot () in
  let data = Bytes.init (20 * kb) (fun i -> Char.chr (33 + (i mod 80))) in
  Simfs.install_file fs ~name:"/data" ~data;
  let t = new_task kernel ~cpu:0 in
  let a, size = ok (Vnode_pager.map_file sys fs t ~name:"/data" ()) in
  Alcotest.(check int) "size" (20 * kb) size;
  Alcotest.(check string) "front" (Bytes.to_string (Bytes.sub data 0 50))
    (Bytes.to_string (Machine.read machine ~cpu:0 ~va:a ~len:50));
  Alcotest.(check string) "deep"
    (Bytes.to_string (Bytes.sub data (17 * kb) 100))
    (Bytes.to_string (Machine.read machine ~cpu:0 ~va:(a + (17 * kb)) ~len:100))

let test_map_file_eof_zero_fill () =
  let machine, kernel, sys, fs = boot () in
  (* 5000-byte file: the second 4 KB page exists but its tail past EOF is
     zero filled. *)
  Simfs.install_file fs ~name:"/f" ~data:(Bytes.make 5000 'F');
  let t = new_task kernel ~cpu:0 in
  let a, _ = ok (Vnode_pager.map_file sys fs t ~name:"/f" ()) in
  Alcotest.(check char) "data" 'F' (Machine.read_byte machine ~cpu:0 ~va:(a + 4999));
  Alcotest.(check char) "tail zero" '\000'
    (Machine.read_byte machine ~cpu:0 ~va:(a + 5001))

let test_two_mappings_one_object () =
  let machine, kernel, sys, fs = boot () in
  Simfs.install_file fs ~name:"/shared" ~data:(Bytes.make (8 * kb) 'S');
  let t1 = new_task kernel ~cpu:0 in
  let a1, _ = ok (Vnode_pager.map_file sys fs t1 ~name:"/shared" ()) in
  ignore (Machine.read_byte machine ~cpu:0 ~va:a1);
  let reads = Simdisk.reads (Simfs.disk fs) in
  let t2 = new_task kernel ~cpu:0 in
  let a2, _ = ok (Vnode_pager.map_file sys fs t2 ~name:"/shared" ()) in
  ignore (Machine.read_byte machine ~cpu:0 ~va:a2);
  Alcotest.(check int) "no extra disk reads" reads
    (Simdisk.reads (Simfs.disk fs));
  (* Shared mapping: a write by t2 is seen by t1. *)
  Machine.write_byte machine ~cpu:0 ~va:a2 'W';
  Kernel.run_task kernel ~cpu:0 t1;
  Alcotest.(check char) "write visible" 'W'
    (Machine.read_byte machine ~cpu:0 ~va:a1)

let test_private_file_mapping () =
  let machine, kernel, sys, fs = boot () in
  Simfs.install_file fs ~name:"/text" ~data:(Bytes.make (4 * kb) 'T');
  let t = new_task kernel ~cpu:0 in
  let a, _ = ok (Vnode_pager.map_file sys fs t ~name:"/text" ~copy:true ()) in
  Machine.write_byte machine ~cpu:0 ~va:a 'X';
  Alcotest.(check char) "private edit" 'X'
    (Machine.read_byte machine ~cpu:0 ~va:a);
  (* The file itself is untouched. *)
  Alcotest.(check char) "file intact" 'T'
    (Bytes.get (Simfs.read fs ~cpu:0 ~name:"/text" ~offset:0 ~len:1) 0)

let test_dirty_mapping_written_back () =
  let machine, kernel, sys, fs = boot () in
  Simfs.install_file fs ~name:"/log" ~data:(Bytes.make (4 * kb) 'L');
  let t = new_task kernel ~cpu:0 in
  let a, _ = ok (Vnode_pager.map_file sys fs t ~name:"/log" ()) in
  Machine.write machine ~cpu:0 ~va:a (Bytes.of_string "UPDATED");
  Kernel.terminate_task kernel ~cpu:0 t;
  Vm_pageout.deactivate_some sys ~count:10_000;
  Vm_pageout.run sys ~wanted:10_000;
  Vm_object.drain_cache sys;
  Alcotest.(check string) "written back" "UPDATED"
    (Bytes.to_string (Simfs.read fs ~cpu:0 ~name:"/log" ~offset:0 ~len:7))

let test_writeback_never_grows_file () =
  let machine, kernel, sys, fs = boot () in
  (* 5000-byte file: its second 4 KB page is mostly past EOF. *)
  Simfs.install_file fs ~name:"/short" ~data:(Bytes.make 5000 's');
  let t = new_task kernel ~cpu:0 in
  let a, _ = ok (Vnode_pager.map_file sys fs t ~name:"/short" ()) in
  Machine.write_byte machine ~cpu:0 ~va:(a + 4999) 'E';
  Machine.write_byte machine ~cpu:0 ~va:(a + 6000) 'X'; (* past EOF *)
  Kernel.terminate_task kernel ~cpu:0 t;
  Vm_pageout.deactivate_some sys ~count:10_000;
  Vm_pageout.run sys ~wanted:10_000;
  Vm_object.drain_cache sys;
  Alcotest.(check int) "size unchanged" 5000
    (Simfs.file_size fs ~name:"/short");
  Alcotest.(check char) "in-file byte written back" 'E'
    (Bytes.get (Simfs.read fs ~cpu:0 ~name:"/short" ~offset:4999 ~len:1) 0)

let test_read_through_object_cache () =
  let _, _, sys, fs = boot () in
  Simfs.install_file fs ~name:"/r" ~data:(Bytes.make (64 * kb) 'R');
  let d = Simfs.disk fs in
  let b1 =
    Vnode_pager.read_through_object sys fs ~name:"/r" ~offset:0 ~len:(64 * kb)
  in
  let cold = Simdisk.reads d in
  let b2 =
    Vnode_pager.read_through_object sys fs ~name:"/r" ~offset:0 ~len:(64 * kb)
  in
  Alcotest.(check int) "warm read hits cache" cold (Simdisk.reads d);
  Alcotest.(check bytes) "same data" b1 b2;
  Alcotest.(check int) "correct length" (64 * kb) (Bytes.length b1)

let test_map_missing_file () =
  let _, kernel, sys, fs = boot () in
  let t = new_task kernel ~cpu:0 in
  (match Vnode_pager.map_file sys fs t ~name:"/nope" () with
   | Error Kr.Invalid_argument -> ()
   | Error e -> Alcotest.fail (Kr.to_string e)
   | Ok _ -> Alcotest.fail "expected failure")

(* ---- external pager over messages ----------------------------------------- *)

let test_external_pager_protocol () =
  let machine, kernel, sys, _fs = boot () in
  let ps = Kernel.page_size kernel in
  let pager, store = Port_pager.trivial_store sys ~name:"xp" () in
  Hashtbl.replace store 0 (Bytes.of_string "external data");
  let t = new_task kernel ~cpu:0 in
  let a =
    ok
      (Vm_user.allocate_with_pager sys t ~pager ~offset:0 ~size:(2 * ps)
         ~anywhere:true ())
  in
  Alcotest.(check string) "served" "external data"
    (Bytes.to_string (Machine.read machine ~cpu:0 ~va:a ~len:13));
  Alcotest.(check int) "one request" 1 (Port_pager.requests_served pager);
  (* Missing offsets zero fill. *)
  Alcotest.(check char) "zero" '\000'
    (Machine.read_byte machine ~cpu:0 ~va:(a + ps));
  Alcotest.(check int) "two requests" 2 (Port_pager.requests_served pager)

let test_external_pager_writeback () =
  let machine, kernel, sys, _fs = boot () in
  let ps = Kernel.page_size kernel in
  let pager, store = Port_pager.trivial_store sys ~name:"wb" () in
  let t = new_task kernel ~cpu:0 in
  let a =
    ok
      (Vm_user.allocate_with_pager sys t ~pager ~offset:0 ~size:ps
         ~anywhere:true ())
  in
  Machine.write machine ~cpu:0 ~va:a (Bytes.of_string "dirty page");
  Vm_pageout.deactivate_some sys ~count:10_000;
  Vm_pageout.run sys ~wanted:10_000;
  (match Hashtbl.find_opt store 0 with
   | Some b ->
     Alcotest.(check string) "pager_data_write delivered" "dirty page"
       (Bytes.to_string (Bytes.sub b 0 10))
   | None -> Alcotest.fail "no write message reached the pager")

(* ---- Table 3-2 pager control operations ----------------------------------- *)

let test_clean_request () =
  let machine, kernel, sys, fs = boot () in
  Simfs.install_file fs ~name:"/c" ~data:(Bytes.make (8 * kb) 'c');
  let t = new_task kernel ~cpu:0 in
  let a, _ = ok (Vnode_pager.map_file sys fs t ~name:"/c" ()) in
  Machine.write machine ~cpu:0 ~va:a (Bytes.of_string "DIRTY");
  let o =
    match Mach_core.Vm_map.resolve_object_at sys (Mach_core.Task.map t) ~va:a with
    | Some (o, _) -> o
    | None -> Alcotest.fail "no object"
  in
  let written = Pager_ops.clean_request sys o ~offset:0 ~length:(8 * kb) in
  Alcotest.(check int) "one dirty page written" 1 written;
  Alcotest.(check string) "file updated without unmapping" "DIRTY"
    (Bytes.to_string (Simfs.read fs ~cpu:0 ~name:"/c" ~offset:0 ~len:5));
  (* The page is clean now: a second clean writes nothing. *)
  Alcotest.(check int) "now clean" 0
    (Pager_ops.clean_request sys o ~offset:0 ~length:(8 * kb))

let test_flush_request_destroys () =
  let machine, kernel, sys, fs = boot () in
  Simfs.install_file fs ~name:"/f2" ~data:(Bytes.make (4 * kb) 'q');
  let t = new_task kernel ~cpu:0 in
  let a, _ = ok (Vnode_pager.map_file sys fs t ~name:"/f2" ()) in
  Machine.write machine ~cpu:0 ~va:a (Bytes.of_string "LOST");
  let o =
    match Mach_core.Vm_map.resolve_object_at sys (Mach_core.Task.map t) ~va:a with
    | Some (o, _) -> o
    | None -> Alcotest.fail "no object"
  in
  let flushed = Pager_ops.flush_request sys o ~offset:0 ~length:(4 * kb) in
  Alcotest.(check int) "one page flushed" 1 flushed;
  (* The dirty data was destroyed, not written back: re-fault reads the
     original file contents. *)
  Alcotest.(check char) "modification discarded" 'q'
    (Machine.read_byte machine ~cpu:0 ~va:a)

let test_readonly_forces_copy () =
  let machine, kernel, sys, fs = boot () in
  Simfs.install_file fs ~name:"/ro" ~data:(Bytes.make (4 * kb) 'R');
  let t = new_task kernel ~cpu:0 in
  let a, _ = ok (Vnode_pager.map_file sys fs t ~name:"/ro" ()) in
  ignore (Machine.read_byte machine ~cpu:0 ~va:a);
  let o =
    match Mach_core.Vm_map.resolve_object_at sys (Mach_core.Task.map t) ~va:a with
    | Some (o, _) -> o
    | None -> Alcotest.fail "no object"
  in
  Pager_ops.readonly sys o;
  Alcotest.(check bool) "marked" true (Pager_ops.is_readonly o);
  (* The write succeeds for the task (a shadow is interposed)... *)
  Machine.write machine ~cpu:0 ~va:a (Bytes.of_string "EDIT");
  Alcotest.(check string) "task sees its edit" "EDIT"
    (Bytes.to_string (Machine.read machine ~cpu:0 ~va:a ~len:4));
  (* ...but the object and its file never see the modification. *)
  Kernel.terminate_task kernel ~cpu:0 t;
  Vm_pageout.deactivate_some sys ~count:1000;
  Vm_pageout.run sys ~wanted:1000;
  Alcotest.(check char) "file untouched" 'R'
    (Bytes.get (Simfs.read fs ~cpu:0 ~name:"/ro" ~offset:0 ~len:1) 0)

let test_set_caching_withdraws () =
  let _, kernel, sys, fs = boot () in
  Simfs.install_file fs ~name:"/cc" ~data:(Bytes.make kb 'c');
  let t = new_task kernel ~cpu:0 in
  let _ = ok (Vnode_pager.map_file sys fs t ~name:"/cc" ()) in
  let o =
    Hashtbl.fold (fun _ o _ -> Some o) sys.Mach_core.Vm_sys.pager_objects None
    |> Option.get
  in
  Kernel.terminate_task kernel ~cpu:0 t;
  Alcotest.(check bool) "cached after unmap" true o.Mach_core.Types.obj_cached;
  Pager_ops.set_caching sys o false;
  Alcotest.(check bool) "pushed out" true o.Mach_core.Types.obj_dead;
  Alcotest.(check int) "cache empty" 0 (Mach_core.Vm_object.cached_count sys)

let test_lock_request_write () =
  let machine, kernel, sys, fs = boot () in
  Simfs.install_file fs ~name:"/lk" ~data:(Bytes.make (4 * kb) 'l');
  let t = new_task kernel ~cpu:0 in
  let a, _ = ok (Vnode_pager.map_file sys fs t ~name:"/lk" ()) in
  Machine.write_byte machine ~cpu:0 ~va:a 'w';
  let o =
    match Mach_core.Vm_map.resolve_object_at sys (Mach_core.Task.map t) ~va:a with
    | Some (o, _) -> o
    | None -> Alcotest.fail "no object"
  in
  let faults_before = (Machine.stats machine).Machine.faults in
  Pager_ops.lock_request sys o ~offset:0 ~length:(4 * kb)
    ~lock:(Prot.make ~read:false ~write:true ~execute:false);
  (* The next write must re-fault (and then succeed, since the entry
     still permits writing). *)
  Machine.write_byte machine ~cpu:0 ~va:a 'x';
  Alcotest.(check bool) "write re-faulted" true
    ((Machine.stats machine).Machine.faults > faults_before)

let test_external_pager_receives_init () =
  let _machine, _kernel, sys, _fs = boot () in
  let tags = ref [] in
  let handler (m : Mach_ipc.Ipc.message) =
    tags := m.Mach_ipc.Ipc.msg_tag :: !tags;
    match m.Mach_ipc.Ipc.msg_tag with
    | "pager_init" -> None
    | "pager_data_request" ->
      Some (Mach_ipc.Ipc.message "pager_data_unavailable")
    | _ -> None
  in
  let pager = Port_pager.make sys ~name:"init-test" ~handler () in
  ignore (pager.Mach_core.Types.pgr_request ~offset:0 ~length:4096);
  Alcotest.(check (list string)) "init arrives before data traffic"
    [ "pager_init"; "pager_data_request" ]
    (List.rev !tags)

let () =
  Alcotest.run "mach_pagers"
    [ ( "simdisk",
        [ Alcotest.test_case "rw and costs" `Quick test_disk_rw_and_costs;
          Alcotest.test_case "install uncharged" `Quick
            test_disk_install_uncharged ] );
      ( "simfs",
        [ Alcotest.test_case "roundtrip" `Quick test_fs_roundtrip;
          Alcotest.test_case "short reads" `Quick test_fs_short_reads;
          Alcotest.test_case "write extends" `Quick test_fs_write_extends;
          Alcotest.test_case "spanning blocks" `Quick
            test_fs_spanning_blocks;
          Alcotest.test_case "delete" `Quick test_fs_delete ] );
      ( "vnode",
        [ Alcotest.test_case "mapped data" `Quick test_map_file_data;
          Alcotest.test_case "eof zero fill" `Quick
            test_map_file_eof_zero_fill;
          Alcotest.test_case "two mappings one object" `Quick
            test_two_mappings_one_object;
          Alcotest.test_case "private mapping" `Quick
            test_private_file_mapping;
          Alcotest.test_case "dirty write-back" `Quick
            test_dirty_mapping_written_back;
          Alcotest.test_case "write-back never grows file" `Quick
            test_writeback_never_grows_file;
          Alcotest.test_case "read through object" `Quick
            test_read_through_object_cache;
          Alcotest.test_case "missing file" `Quick test_map_missing_file ] );
      ( "external",
        [ Alcotest.test_case "message protocol" `Quick
            test_external_pager_protocol;
          Alcotest.test_case "writeback messages" `Quick
            test_external_pager_writeback;
          Alcotest.test_case "pager_init delivered first" `Quick
            test_external_pager_receives_init ] );
      ( "pager ops (Table 3-2)",
        [ Alcotest.test_case "clean_request" `Quick test_clean_request;
          Alcotest.test_case "flush_request destroys" `Quick
            test_flush_request_destroys;
          Alcotest.test_case "readonly forces copy" `Quick
            test_readonly_forces_copy;
          Alcotest.test_case "set_caching withdraws" `Quick
            test_set_caching_withdraws;
          Alcotest.test_case "lock_request write" `Quick
            test_lock_request_write ] ) ]
