(* Tests for the benchmark workload layer: the two OS implementations
   behave identically at the data level behind the common surface, the
   compile workload is deterministic, and the headline paper comparisons
   hold as inequalities. *)

open Mach_hw
open Mach_workload

let kb = 1024
let mb = 1024 * 1024

let boot_mach ?(arch = Arch.uvax2) ?(mem = 8 * mb) () =
  let machine =
    Machine.create ~arch ~memory_frames:(mem / arch.Arch.hw_page_size) ()
  in
  let multiple = max 1 (4096 / arch.Arch.hw_page_size) in
  let kernel = Mach_core.Kernel.create ~page_multiple:multiple machine in
  let fs = Mach_pagers.Simfs.create machine () in
  Mach_os.make kernel ~fs

let boot_bsd ?(arch = Arch.uvax2) ?(mem = 8 * mb) ?(buffers = 400) () =
  let machine =
    Machine.create ~arch ~memory_frames:(mem / arch.Arch.hw_page_size) ()
  in
  let fs = Mach_pagers.Simfs.create machine () in
  let bsd = Mach_bsd.Bsd_vm.create machine ~fs ~buffers () in
  Bsd_os.make bsd ~fs

let both_oses () = [ boot_mach (); boot_bsd () ]

(* Every OS behind the surface must satisfy the same behavioural
   contract. *)
let test_surface_alloc_touch () =
  List.iter
    (fun (os : Os_iface.t) ->
       let p = os.Os_iface.proc_create ~name:"t" in
       os.Os_iface.proc_run ~cpu:0 p;
       let a = os.Os_iface.alloc ~cpu:0 p ~size:(64 * kb) in
       os.Os_iface.touch ~cpu:0 p ~addr:a ~size:(64 * kb) ~write:true;
       Alcotest.(check bool)
         (os.Os_iface.os_name ^ ": time advanced")
         true
         (os.Os_iface.elapsed_ms () > 0.0);
       os.Os_iface.proc_exit ~cpu:0 p)
    (both_oses ())

let test_surface_fork_and_files () =
  List.iter
    (fun (os : Os_iface.t) ->
       os.Os_iface.install_file ~name:"/bin/x"
         ~data:(Bytes.make (32 * kb) 'x');
       os.Os_iface.install_file ~name:"/src" ~data:(Bytes.make (8 * kb) 's');
       let p = os.Os_iface.proc_create ~name:"sh" in
       os.Os_iface.proc_run ~cpu:0 p;
       let c = os.Os_iface.proc_fork ~cpu:0 p in
       os.Os_iface.proc_run ~cpu:0 c;
       os.Os_iface.exec ~cpu:0 c ~text:"/bin/x";
       let n = os.Os_iface.read_file ~cpu:0 ~name:"/src" ~offset:0 ~len:(8 * kb) in
       Alcotest.(check int) (os.Os_iface.os_name ^ ": read len") (8 * kb) n;
       os.Os_iface.write_file ~cpu:0 ~name:"/out" ~offset:0
         ~data:(Bytes.make 100 'o');
       os.Os_iface.proc_exit ~cpu:0 c;
       os.Os_iface.proc_exit ~cpu:0 p)
    (both_oses ())

let test_reset_zeroes_clock () =
  List.iter
    (fun (os : Os_iface.t) ->
       let p = os.Os_iface.proc_create ~name:"t" in
       os.Os_iface.proc_run ~cpu:0 p;
       let a = os.Os_iface.alloc ~cpu:0 p ~size:(8 * kb) in
       os.Os_iface.touch ~cpu:0 p ~addr:a ~size:(8 * kb) ~write:true;
       os.Os_iface.reset ();
       Alcotest.(check (float 0.0001))
         (os.Os_iface.os_name ^ ": reset")
         0.0
         (os.Os_iface.elapsed_ms ()))
    (both_oses ())

let test_compile_workload_runs_on_both () =
  let cfg = Compile_workload.fork_test in
  List.iter
    (fun (os : Os_iface.t) ->
       Compile_workload.setup os cfg;
       let ms = Compile_workload.run os cfg in
       Alcotest.(check bool)
         (os.Os_iface.os_name ^ ": positive time")
         true (ms > 0.0))
    (both_oses ())

let test_compile_workload_deterministic () =
  let cfg = Compile_workload.fork_test in
  let run () =
    let os = boot_mach () in
    Compile_workload.setup os cfg;
    Compile_workload.run os cfg
  in
  let a = run () and b = run () in
  Alcotest.(check (float 0.0001)) "identical runs" a b

(* The headline inequalities of Tables 7-1/7-2: Mach never slower on
   fork, and compile at least as fast. *)
let test_mach_fork_beats_eager_unix () =
  let fork_cost (os : Os_iface.t) =
    let p = os.Os_iface.proc_create ~name:"f" in
    os.Os_iface.proc_run ~cpu:0 p;
    let a = os.Os_iface.alloc ~cpu:0 p ~size:(256 * kb) in
    os.Os_iface.touch ~cpu:0 p ~addr:a ~size:(256 * kb) ~write:true;
    os.Os_iface.reset ();
    let c = os.Os_iface.proc_fork ~cpu:0 p in
    os.Os_iface.proc_exit ~cpu:0 c;
    os.Os_iface.elapsed_ms ()
  in
  let mach = fork_cost (boot_mach ()) in
  let unix = fork_cost (boot_bsd ()) in
  Alcotest.(check bool) "mach fork cheaper" true (mach < unix)

let test_mach_rereads_beat_small_buffer_cache () =
  let reread (os : Os_iface.t) =
    os.Os_iface.install_file ~name:"/big" ~data:(Bytes.make (2 * mb) 'b');
    ignore (os.Os_iface.read_file ~cpu:0 ~name:"/big" ~offset:0 ~len:(2 * mb));
    os.Os_iface.reset ();
    ignore (os.Os_iface.read_file ~cpu:0 ~name:"/big" ~offset:0 ~len:(2 * mb));
    os.Os_iface.elapsed_ms ()
  in
  let mach = reread (boot_mach ~arch:Arch.vax8200 ()) in
  let unix = reread (boot_bsd ~arch:Arch.vax8200 ~buffers:400 ()) in
  (* 2 MB exceeds 400 x 4 KB of buffers, so UNIX re-reads from disk. *)
  Alcotest.(check bool) "mach page cache wins rereads" true
    (mach *. 3.0 < unix)

let test_trace_generation_deterministic () =
  let a = Workload.generate ~seed:5 ~ops:100 in
  let b = Workload.generate ~seed:5 ~ops:100 in
  Alcotest.(check int) "same length" (Workload.op_count a)
    (Workload.op_count b);
  Alcotest.(check bool) "same trace" true (a = b);
  let c = Workload.generate ~seed:6 ~ops:100 in
  Alcotest.(check bool) "different seed differs" true (a <> c)

let test_trace_runs_on_both_oses () =
  let trace = Workload.generate ~seed:9 ~ops:200 in
  List.iter
    (fun (os : Os_iface.t) ->
       Workload.setup os trace;
       let ms = Workload.run os trace in
       Alcotest.(check bool)
         (os.Os_iface.os_name ^ ": ran") true (ms > 0.0);
       (* Replaying the same trace on the same OS is deterministic too
          (warm caches may make it cheaper, never free). *)
       let ms2 = Workload.run os trace in
       Alcotest.(check bool)
         (os.Os_iface.os_name ^ ": replay ran") true (ms2 > 0.0))
    (both_oses ())

let () =
  Alcotest.run "mach_workload"
    [ ( "surface",
        [ Alcotest.test_case "alloc/touch" `Quick test_surface_alloc_touch;
          Alcotest.test_case "fork and files" `Quick
            test_surface_fork_and_files;
          Alcotest.test_case "reset" `Quick test_reset_zeroes_clock ] );
      ( "compile",
        [ Alcotest.test_case "runs on both" `Quick
            test_compile_workload_runs_on_both;
          Alcotest.test_case "deterministic" `Quick
            test_compile_workload_deterministic ] );
      ( "traces",
        [ Alcotest.test_case "generation deterministic" `Quick
            test_trace_generation_deterministic;
          Alcotest.test_case "runs on both OSes" `Quick
            test_trace_runs_on_both_oses ] );
      ( "paper shapes",
        [ Alcotest.test_case "fork: cow beats eager" `Quick
            test_mach_fork_beats_eager_unix;
          Alcotest.test_case "rereads: page cache beats buffers" `Quick
            test_mach_rereads_beat_small_buffer_cache ] ) ]
