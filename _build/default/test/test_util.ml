(* Tests for mach_util: doubly-linked lists, the deterministic PRNG and
   the table formatter. *)

open Mach_util

(* ---- Dlist ------------------------------------------------------------ *)

let test_dlist_empty () =
  let l : int Dlist.t = Dlist.create () in
  Alcotest.(check int) "length" 0 (Dlist.length l);
  Alcotest.(check bool) "is_empty" true (Dlist.is_empty l);
  Alcotest.(check (option int)) "pop_front" None (Dlist.pop_front l);
  Alcotest.(check (option int)) "pop_back" None (Dlist.pop_back l);
  Alcotest.(check (list int)) "to_list" [] (Dlist.to_list l)

let test_dlist_push_order () =
  let l = Dlist.create () in
  ignore (Dlist.push_back l 1);
  ignore (Dlist.push_back l 2);
  ignore (Dlist.push_front l 0);
  Alcotest.(check (list int)) "order" [ 0; 1; 2 ] (Dlist.to_list l);
  Alcotest.(check int) "length" 3 (Dlist.length l)

let test_dlist_remove_middle () =
  let l = Dlist.create () in
  let _a = Dlist.push_back l 'a' in
  let b = Dlist.push_back l 'b' in
  let _c = Dlist.push_back l 'c' in
  Dlist.remove l b;
  Alcotest.(check (list char)) "removed middle" [ 'a'; 'c' ] (Dlist.to_list l);
  Alcotest.(check bool) "unlinked" false (Dlist.linked b)

let test_dlist_remove_ends () =
  let l = Dlist.create () in
  let a = Dlist.push_back l 1 in
  let b = Dlist.push_back l 2 in
  let c = Dlist.push_back l 3 in
  Dlist.remove l a;
  Dlist.remove l c;
  Alcotest.(check (list int)) "only middle" [ 2 ] (Dlist.to_list l);
  Dlist.remove l b;
  Alcotest.(check bool) "empty" true (Dlist.is_empty l)

let test_dlist_insert_before_after () =
  let l = Dlist.create () in
  let b = Dlist.push_back l 20 in
  ignore (Dlist.insert_before l b 10);
  ignore (Dlist.insert_after l b 30);
  Alcotest.(check (list int)) "inserted" [ 10; 20; 30 ] (Dlist.to_list l)

let test_dlist_insert_before_head () =
  let l = Dlist.create () in
  let h = Dlist.push_back l 2 in
  ignore (Dlist.insert_before l h 1);
  Alcotest.(check (option int)) "new head" (Some 1)
    (Option.map Dlist.value (Dlist.first l))

let test_dlist_pop () =
  let l = Dlist.create () in
  List.iter (fun v -> ignore (Dlist.push_back l v)) [ 1; 2; 3 ];
  Alcotest.(check (option int)) "front" (Some 1) (Dlist.pop_front l);
  Alcotest.(check (option int)) "back" (Some 3) (Dlist.pop_back l);
  Alcotest.(check (list int)) "rest" [ 2 ] (Dlist.to_list l)

let test_dlist_find () =
  let l = Dlist.create () in
  List.iter (fun v -> ignore (Dlist.push_back l v)) [ 5; 6; 7 ];
  Alcotest.(check (option int)) "find" (Some 6)
    (Dlist.find (fun v -> v mod 2 = 0) l);
  Alcotest.(check (option int)) "find none" None
    (Dlist.find (fun v -> v > 10) l);
  Alcotest.(check bool) "exists" true (Dlist.exists (fun v -> v = 7) l)

let test_dlist_iter_nodes_remove () =
  (* iter_nodes must tolerate the callback removing the node it holds. *)
  let l = Dlist.create () in
  List.iter (fun v -> ignore (Dlist.push_back l v)) [ 1; 2; 3; 4 ];
  Dlist.iter_nodes
    (fun n -> if Dlist.value n mod 2 = 0 then Dlist.remove l n)
    l;
  Alcotest.(check (list int)) "odds remain" [ 1; 3 ] (Dlist.to_list l)

let test_dlist_fold () =
  let l = Dlist.create () in
  List.iter (fun v -> ignore (Dlist.push_back l v)) [ 1; 2; 3 ];
  Alcotest.(check int) "sum" 6 (Dlist.fold ( + ) 0 l)

(* Model-based qcheck: a random sequence of operations against an OCaml
   list reference. *)
let dlist_model_test =
  let open QCheck2 in
  Test.make ~name:"dlist agrees with list model" ~count:300
    Gen.(list (pair (int_range 0 3) small_int))
    (fun ops ->
       let l = Dlist.create () in
       let model = ref [] in
       List.iter
         (fun (op, v) ->
            match op with
            | 0 ->
              ignore (Dlist.push_back l v);
              model := !model @ [ v ]
            | 1 ->
              ignore (Dlist.push_front l v);
              model := v :: !model
            | 2 -> (
                match Dlist.pop_front l, !model with
                | Some x, m :: rest ->
                  assert (x = m);
                  model := rest
                | None, [] -> ()
                | _ -> assert false)
            | _ -> (
                match Dlist.pop_back l, List.rev !model with
                | Some x, m :: rest ->
                  assert (x = m);
                  model := List.rev rest
                | None, [] -> ()
                | _ -> assert false))
         ops;
       Dlist.to_list l = !model && Dlist.length l = List.length !model)

(* ---- Det_rng ----------------------------------------------------------- *)

let test_rng_deterministic () =
  let a = Det_rng.create ~seed:42 in
  let b = Det_rng.create ~seed:42 in
  for _ = 1 to 50 do
    Alcotest.(check int) "same stream" (Det_rng.int a 1000)
      (Det_rng.int b 1000)
  done

let test_rng_seed_changes_stream () =
  let a = Det_rng.create ~seed:1 in
  let b = Det_rng.create ~seed:2 in
  let sa = List.init 20 (fun _ -> Det_rng.int a 1_000_000) in
  let sb = List.init 20 (fun _ -> Det_rng.int b 1_000_000) in
  Alcotest.(check bool) "different" true (sa <> sb)

let test_rng_bounds () =
  let r = Det_rng.create ~seed:7 in
  for _ = 1 to 1000 do
    let v = Det_rng.int r 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_rng_shuffle_permutes () =
  let r = Det_rng.create ~seed:3 in
  let a = Array.init 30 Fun.id in
  Det_rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same elements" (Array.init 30 Fun.id) sorted

let test_rng_split_independent () =
  let r = Det_rng.create ~seed:9 in
  let child = Det_rng.split r in
  let s1 = List.init 10 (fun _ -> Det_rng.int child 100) in
  (* The same construction yields the same child stream. *)
  let r' = Det_rng.create ~seed:9 in
  let child' = Det_rng.split r' in
  let s2 = List.init 10 (fun _ -> Det_rng.int child' 100) in
  Alcotest.(check (list int)) "reproducible split" s1 s2

(* ---- Tablefmt ----------------------------------------------------------- *)

let test_table_alignment () =
  let t = Tablefmt.create ~title:"T" ~columns:[ "a"; "bb" ] in
  Tablefmt.row t [ "xxxx"; "y" ];
  let s = Tablefmt.to_string t in
  Alcotest.(check bool) "mentions title" true
    (String.length s > 0 && String.sub s 0 1 = "T");
  (* Header and row lines are equally padded. *)
  let lines = String.split_on_char '\n' s in
  let headers = List.filter (fun l -> String.length l > 0 && l.[0] = ' ') lines in
  (match headers with
   | h :: r :: _ ->
     Alcotest.(check int) "equal width" (String.length h) (String.length r)
   | _ -> Alcotest.fail "expected two content lines")

let test_table_pads_short_rows () =
  let t = Tablefmt.create ~title:"T" ~columns:[ "a"; "b"; "c" ] in
  Tablefmt.row t [ "1" ];
  ignore (Tablefmt.to_string t)

let test_table_rejects_long_rows () =
  let t = Tablefmt.create ~title:"T" ~columns:[ "a" ] in
  Alcotest.check_raises "too many cells"
    (Invalid_argument "Tablefmt.row: too many cells") (fun () ->
        Tablefmt.row t [ "1"; "2" ])

let () =
  Alcotest.run "mach_util"
    [ ( "dlist",
        [ Alcotest.test_case "empty" `Quick test_dlist_empty;
          Alcotest.test_case "push order" `Quick test_dlist_push_order;
          Alcotest.test_case "remove middle" `Quick test_dlist_remove_middle;
          Alcotest.test_case "remove ends" `Quick test_dlist_remove_ends;
          Alcotest.test_case "insert before/after" `Quick
            test_dlist_insert_before_after;
          Alcotest.test_case "insert before head" `Quick
            test_dlist_insert_before_head;
          Alcotest.test_case "pop both ends" `Quick test_dlist_pop;
          Alcotest.test_case "find/exists" `Quick test_dlist_find;
          Alcotest.test_case "iter_nodes with removal" `Quick
            test_dlist_iter_nodes_remove;
          Alcotest.test_case "fold" `Quick test_dlist_fold;
          QCheck_alcotest.to_alcotest dlist_model_test ] );
      ( "det_rng",
        [ Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed changes stream" `Quick
            test_rng_seed_changes_stream;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "shuffle permutes" `Quick
            test_rng_shuffle_permutes;
          Alcotest.test_case "split reproducible" `Quick
            test_rng_split_independent ] );
      ( "tablefmt",
        [ Alcotest.test_case "alignment" `Quick test_table_alignment;
          Alcotest.test_case "pads short rows" `Quick
            test_table_pads_short_rows;
          Alcotest.test_case "rejects long rows" `Quick
            test_table_rejects_long_rows ] ) ]
