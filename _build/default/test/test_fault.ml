(* End-to-end fault-path tests through the whole stack: machine accesses
   drive the kernel fault handler, which drives Vm_fault, objects, the
   resident table and the pmap.  Every test checks *data*, not just
   counters: copy-on-write must isolate exactly the right bytes. *)

open Mach_hw
open Mach_core

let kb = 1024

let boot ?(arch = Arch.uvax2) ?(page_multiple = 8) ?(frames = 2048)
    ?(cpus = 1) () =
  let machine = Machine.create ~arch ~memory_frames:frames ~cpus () in
  let kernel = Kernel.create ~page_multiple machine in
  (machine, kernel, Kernel.sys kernel)

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.fail (Kr.to_string e)

let new_task kernel ~cpu =
  let t = Kernel.create_task kernel () in
  Kernel.run_task kernel ~cpu t;
  t

let alloc sys task size =
  ok (Vm_user.allocate sys task ~size ~anywhere:true ())

let read_str machine ~cpu ~va ~len =
  Bytes.to_string (Machine.read machine ~cpu ~va ~len)

let write_str machine ~cpu ~va s =
  Machine.write machine ~cpu ~va (Bytes.of_string s)

(* ---- basic demand paging ---------------------------------------------- *)

let test_demand_zero () =
  let machine, kernel, sys = boot () in
  let t = new_task kernel ~cpu:0 in
  let a = alloc sys t (16 * kb) in
  (* Freshly allocated memory reads as zeros even if the frame was dirty
     before. *)
  for i = 0 to (16 * kb) - 1 do
    if Machine.read_byte machine ~cpu:0 ~va:(a + i) <> '\000' then
      Alcotest.fail "non-zero fill"
  done;
  Alcotest.(check int) "zero fills counted" 4
    sys.Vm_sys.stats.Vm_sys.zero_fills

let test_zero_fill_fresh_after_free () =
  let machine, kernel, sys = boot ~frames:64 () in
  (* 64 frames / multiple 8 = 8 pages; write garbage, free, reallocate:
     must read zero again. *)
  let t = new_task kernel ~cpu:0 in
  let a = alloc sys t (4 * kb) in
  write_str machine ~cpu:0 ~va:a "garbage";
  ok (Vm_user.deallocate sys t ~addr:a ~size:(4 * kb));
  let b = alloc sys t (4 * kb) in
  Alcotest.(check char) "zeroed again" '\000'
    (Machine.read_byte machine ~cpu:0 ~va:b)

let test_unallocated_faults () =
  let machine, kernel, _sys = boot () in
  let t = new_task kernel ~cpu:0 in
  ignore t;
  (try
     ignore (Machine.read_byte machine ~cpu:0 ~va:(100 * 1024 * 1024));
     Alcotest.fail "expected violation"
   with Machine.Memory_violation { reason; _ } ->
     Alcotest.(check string) "invalid address" "KERN_INVALID_ADDRESS" reason)

let test_data_spans_hw_frames () =
  (* page_multiple 8 on the VAX: one machine-independent page is eight
     512-byte frames; data written across their boundaries must
     round-trip. *)
  let machine, kernel, sys = boot ~page_multiple:8 () in
  let t = new_task kernel ~cpu:0 in
  let a = alloc sys t (8 * kb) in
  let pattern =
    String.init 3000 (fun i -> Char.chr (32 + (i mod 90)))
  in
  write_str machine ~cpu:0 ~va:(a + 400) pattern;
  Alcotest.(check string) "round trip" pattern
    (read_str machine ~cpu:0 ~va:(a + 400) ~len:3000)

let test_page_multiple_one_and_two () =
  List.iter
    (fun multiple ->
       let machine, kernel, sys = boot ~page_multiple:multiple () in
       let t = new_task kernel ~cpu:0 in
       let a = alloc sys t (4 * kb) in
       write_str machine ~cpu:0 ~va:a "multi";
       Alcotest.(check string)
         (Printf.sprintf "multiple=%d" multiple)
         "multi"
         (read_str machine ~cpu:0 ~va:a ~len:5))
    [ 1; 2; 4 ]

(* ---- copy-on-write ------------------------------------------------------ *)

let test_cow_child_isolated () =
  let machine, kernel, sys = boot () in
  let parent = new_task kernel ~cpu:0 in
  let a = alloc sys parent (8 * kb) in
  write_str machine ~cpu:0 ~va:a "parent data";
  let child = Kernel.fork_task kernel ~cpu:0 parent in
  Kernel.run_task kernel ~cpu:0 child;
  Alcotest.(check string) "child inherits" "parent data"
    (read_str machine ~cpu:0 ~va:a ~len:11);
  write_str machine ~cpu:0 ~va:a "child data!";
  Alcotest.(check string) "child sees own" "child data!"
    (read_str machine ~cpu:0 ~va:a ~len:11);
  Kernel.run_task kernel ~cpu:0 parent;
  Alcotest.(check string) "parent unchanged" "parent data"
    (read_str machine ~cpu:0 ~va:a ~len:11);
  Alcotest.(check bool) "cow copy happened" true
    (sys.Vm_sys.stats.Vm_sys.cow_copies >= 1)

let test_cow_parent_write_isolated () =
  let machine, kernel, _sys = boot () in
  let parent = new_task kernel ~cpu:0 in
  let sys = Kernel.sys kernel in
  let a = alloc sys parent (8 * kb) in
  write_str machine ~cpu:0 ~va:a "original";
  let child = Kernel.fork_task kernel ~cpu:0 parent in
  (* Parent writes first this time. *)
  write_str machine ~cpu:0 ~va:a "mutated!";
  Kernel.run_task kernel ~cpu:0 child;
  Alcotest.(check string) "child sees snapshot" "original"
    (read_str machine ~cpu:0 ~va:a ~len:8)

let test_cow_untouched_pages_share_frames () =
  let machine, kernel, sys = boot () in
  let parent = new_task kernel ~cpu:0 in
  let a = alloc sys parent (16 * kb) in
  write_str machine ~cpu:0 ~va:a "page0";
  write_str machine ~cpu:0 ~va:(a + (4 * kb)) "page1";
  let used_before =
    Resident.total_pages sys.Vm_sys.resident
    - Resident.free_count sys.Vm_sys.resident
  in
  let child = Kernel.fork_task kernel ~cpu:0 parent in
  Kernel.run_task kernel ~cpu:0 child;
  (* Reading does not copy. *)
  Alcotest.(check string) "reads shared" "page1"
    (read_str machine ~cpu:0 ~va:(a + (4 * kb)) ~len:5);
  let used_after_reads =
    Resident.total_pages sys.Vm_sys.resident
    - Resident.free_count sys.Vm_sys.resident
  in
  Alcotest.(check int) "no page copied by reads" used_before
    used_after_reads;
  (* One write copies exactly one page. *)
  write_str machine ~cpu:0 ~va:a "child";
  let used_after_write =
    Resident.total_pages sys.Vm_sys.resident
    - Resident.free_count sys.Vm_sys.resident
  in
  Alcotest.(check int) "one page copied" (used_before + 1)
    used_after_write

let test_fork_grandchildren_chain () =
  let machine, kernel, sys = boot () in
  let gen0 = new_task kernel ~cpu:0 in
  let a = alloc sys gen0 (4 * kb) in
  write_str machine ~cpu:0 ~va:a "gen0";
  let gen1 = Kernel.fork_task kernel ~cpu:0 gen0 in
  Kernel.run_task kernel ~cpu:0 gen1;
  write_str machine ~cpu:0 ~va:a "gen1";
  let gen2 = Kernel.fork_task kernel ~cpu:0 gen1 in
  Kernel.run_task kernel ~cpu:0 gen2;
  Alcotest.(check string) "grandchild inherits latest" "gen1"
    (read_str machine ~cpu:0 ~va:a ~len:4);
  write_str machine ~cpu:0 ~va:a "gen2";
  (* All three generations see their own values. *)
  Kernel.run_task kernel ~cpu:0 gen0;
  Alcotest.(check string) "gen0" "gen0" (read_str machine ~cpu:0 ~va:a ~len:4);
  Kernel.run_task kernel ~cpu:0 gen1;
  Alcotest.(check string) "gen1" "gen1" (read_str machine ~cpu:0 ~va:a ~len:4);
  Kernel.run_task kernel ~cpu:0 gen2;
  Alcotest.(check string) "gen2" "gen2" (read_str machine ~cpu:0 ~va:a ~len:4)

let test_fork_after_deallocate_hole () =
  let machine, kernel, sys = boot () in
  let parent = new_task kernel ~cpu:0 in
  let a = alloc sys parent (12 * kb) in
  write_str machine ~cpu:0 ~va:a "X";
  ok (Vm_user.deallocate sys parent ~addr:(a + (4 * kb)) ~size:(4 * kb));
  let child = Kernel.fork_task kernel ~cpu:0 parent in
  Kernel.run_task kernel ~cpu:0 child;
  (try
     ignore (Machine.read_byte machine ~cpu:0 ~va:(a + (4 * kb)));
     Alcotest.fail "hole should be unallocated in child"
   with Machine.Memory_violation _ -> ())

(* ---- sharing maps -------------------------------------------------------- *)

let test_shared_inheritance_rw () =
  let machine, kernel, sys = boot () in
  let parent = new_task kernel ~cpu:0 in
  let a = alloc sys parent (8 * kb) in
  ok (Vm_user.inherit_ sys parent ~addr:a ~size:(8 * kb) Inheritance.Shared);
  write_str machine ~cpu:0 ~va:a "before";
  let child = Kernel.fork_task kernel ~cpu:0 parent in
  Kernel.run_task kernel ~cpu:0 child;
  Alcotest.(check string) "child reads" "before"
    (read_str machine ~cpu:0 ~va:a ~len:6);
  write_str machine ~cpu:0 ~va:a "child!";
  Kernel.run_task kernel ~cpu:0 parent;
  Alcotest.(check string) "parent sees child write" "child!"
    (read_str machine ~cpu:0 ~va:a ~len:6);
  write_str machine ~cpu:0 ~va:(a + 100) "more";
  Kernel.run_task kernel ~cpu:0 child;
  Alcotest.(check string) "child sees parent write" "more"
    (read_str machine ~cpu:0 ~va:(a + 100) ~len:4)

let test_shared_inheritance_transitive () =
  (* The sharing map also covers the grandchild. *)
  let machine, kernel, sys = boot () in
  let parent = new_task kernel ~cpu:0 in
  let a = alloc sys parent (4 * kb) in
  ok (Vm_user.inherit_ sys parent ~addr:a ~size:(4 * kb) Inheritance.Shared);
  write_str machine ~cpu:0 ~va:a "v0";
  let child = Kernel.fork_task kernel ~cpu:0 parent in
  let grandchild = Kernel.fork_task kernel ~cpu:0 child in
  Kernel.run_task kernel ~cpu:0 grandchild;
  write_str machine ~cpu:0 ~va:a "v2";
  Kernel.run_task kernel ~cpu:0 parent;
  Alcotest.(check string) "grandparent sees it" "v2"
    (read_str machine ~cpu:0 ~va:a ~len:2)

let test_shared_and_cow_mixed () =
  (* A region shared read/write between parent and child can at the same
     time be copied copy-on-write to a third task via vm_copy-style
     extraction. *)
  let machine, kernel, sys = boot () in
  let parent = new_task kernel ~cpu:0 in
  let a = alloc sys parent (4 * kb) in
  ok (Vm_user.inherit_ sys parent ~addr:a ~size:(4 * kb) Inheritance.Shared);
  write_str machine ~cpu:0 ~va:a "snap";
  let child = Kernel.fork_task kernel ~cpu:0 parent in
  (* Extract a COW copy of the shared region from the parent... *)
  let copy = ok (Vm_map.extract_copy sys (Task.map parent) ~addr:a ~size:(4 * kb)) in
  let third = Kernel.create_task kernel () in
  let b = ok (Vm_map.insert_copy sys (Task.map third) copy ()) in
  (* ...then the sharers keep writing. *)
  Kernel.run_task kernel ~cpu:0 child;
  write_str machine ~cpu:0 ~va:a "live";
  Kernel.run_task kernel ~cpu:0 third;
  Alcotest.(check string) "third kept the snapshot" "snap"
    (read_str machine ~cpu:0 ~va:b ~len:4);
  Kernel.run_task kernel ~cpu:0 parent;
  Alcotest.(check string) "sharers see live data" "live"
    (read_str machine ~cpu:0 ~va:a ~len:4)

(* ---- protection ----------------------------------------------------------- *)

let test_protection_enforced () =
  let machine, kernel, sys = boot () in
  let t = new_task kernel ~cpu:0 in
  let a = alloc sys t (4 * kb) in
  write_str machine ~cpu:0 ~va:a "locked";
  ok
    (Vm_user.protect sys t ~addr:a ~size:(4 * kb) ~set_max:false
       ~prot:Prot.read_only);
  Alcotest.(check string) "read ok" "locked"
    (read_str machine ~cpu:0 ~va:a ~len:6);
  (try
     Machine.write_byte machine ~cpu:0 ~va:a 'X';
     Alcotest.fail "write should fail"
   with Machine.Memory_violation { reason; _ } ->
     Alcotest.(check string) "protection" "KERN_PROTECTION_FAILURE" reason);
  (* Restoring write access makes it work again (lazily, via fault). *)
  ok
    (Vm_user.protect sys t ~addr:a ~size:(4 * kb) ~set_max:false
       ~prot:Prot.read_write);
  Machine.write_byte machine ~cpu:0 ~va:a 'X';
  Alcotest.(check string) "writable again" "Xocked"
    (read_str machine ~cpu:0 ~va:a ~len:6)

let test_protection_none_blocks_read () =
  let machine, kernel, sys = boot () in
  let t = new_task kernel ~cpu:0 in
  let a = alloc sys t (4 * kb) in
  write_str machine ~cpu:0 ~va:a "hidden";
  ok
    (Vm_user.protect sys t ~addr:a ~size:(4 * kb) ~set_max:false
       ~prot:Prot.none);
  (try
     ignore (Machine.read_byte machine ~cpu:0 ~va:a);
     Alcotest.fail "read should fail"
   with Machine.Memory_violation _ -> ())

(* ---- wiring ---------------------------------------------------------------- *)

let test_wire_unwire () =
  let machine, kernel, sys = boot () in
  let t = new_task kernel ~cpu:0 in
  let a = alloc sys t (4 * kb) in
  ok (Vm_fault.wire sys (Task.map t) ~va:a);
  write_str machine ~cpu:0 ~va:a "pinned";
  (* Wired pages are on no paging queue, so pageout cannot touch them. *)
  Vm_pageout.deactivate_some sys ~count:10_000;
  Vm_pageout.run sys ~wanted:10_000;
  Alcotest.(check string) "survives pageout" "pinned"
    (read_str machine ~cpu:0 ~va:a ~len:6);
  Alcotest.(check int) "no disk traffic for wired page" 0
    (Machine.stats machine).Machine.disk_ops;
  ok (Vm_fault.unwire sys (Task.map t) ~va:a);
  ok (Vm_user.deallocate sys t ~addr:a ~size:(4 * kb))

(* ---- pmap dropping and reloading ------------------------------------------ *)

let test_fast_reload_after_collect () =
  let machine, kernel, sys = boot () in
  let t = new_task kernel ~cpu:0 in
  let a = alloc sys t (16 * kb) in
  write_str machine ~cpu:0 ~va:a "persistent";
  (* Simulate the pmap discarding everything (as a SUN 3 context steal
     would). *)
  (Task.pmap t).Mach_pmap.Pmap.collect ();
  let reloads_before = sys.Vm_sys.stats.Vm_sys.fast_reloads in
  Alcotest.(check string) "data intact" "persistent"
    (read_str machine ~cpu:0 ~va:a ~len:10);
  Alcotest.(check bool) "fast reload counted" true
    (sys.Vm_sys.stats.Vm_sys.fast_reloads > reloads_before)

let test_fork_prewarm_pmap_copy () =
  let machine, kernel, sys = boot () in
  sys.Vm_sys.pmap_prewarm_on_fork <- true;
  let parent = new_task kernel ~cpu:0 in
  let a = alloc sys parent (32 * kb) in
  for i = 0 to 7 do
    write_str machine ~cpu:0 ~va:(a + (i * 4 * kb)) (Printf.sprintf "pg%d" i)
  done;
  let child = Kernel.fork_task kernel ~cpu:0 parent in
  Kernel.run_task kernel ~cpu:0 child;
  (* The child's pmap was pre-loaded: reading causes no faults at all. *)
  let faults_before = (Machine.stats machine).Machine.faults in
  for i = 0 to 7 do
    Alcotest.(check string)
      (Printf.sprintf "page %d" i)
      (Printf.sprintf "pg%d" i)
      (read_str machine ~cpu:0 ~va:(a + (i * 4 * kb)) ~len:3)
  done;
  Alcotest.(check int) "no read faults after prewarm" faults_before
    (Machine.stats machine).Machine.faults;
  (* Copy-on-write still holds: the prewarmed mappings are read-only. *)
  write_str machine ~cpu:0 ~va:a "CHD";
  Kernel.run_task kernel ~cpu:0 parent;
  Alcotest.(check string) "isolation intact" "pg0"
    (read_str machine ~cpu:0 ~va:a ~len:3)

(* ---- the NS32082 r-m-w bug -------------------------------------------------- *)

let test_rmw_bug_workaround_cow () =
  (* A write to a COW page on the NS32082 arrives as a *read* protection
     fault; the kernel must recognise the bug and still copy. *)
  let machine, kernel, sys = boot ~arch:Arch.ns32082 ~page_multiple:8 () in
  let parent = new_task kernel ~cpu:0 in
  let a = alloc sys parent (4 * kb) in
  write_str machine ~cpu:0 ~va:a "original";
  let child = Kernel.fork_task kernel ~cpu:0 parent in
  Kernel.run_task kernel ~cpu:0 child;
  (* Fault the page in for read first so the write is a protection (not
     invalid) fault — the bug's trigger condition. *)
  ignore (read_str machine ~cpu:0 ~va:a ~len:8);
  write_str machine ~cpu:0 ~va:a "child-ed";
  Alcotest.(check bool) "bug upgrade counted" true
    (sys.Vm_sys.stats.Vm_sys.rmw_bug_upgrades >= 1);
  Kernel.run_task kernel ~cpu:0 parent;
  Alcotest.(check string) "isolation preserved" "original"
    (read_str machine ~cpu:0 ~va:a ~len:8)

(* ---- vm_read / vm_write / vm_copy ------------------------------------------- *)

let test_vm_read_write () =
  let machine, kernel, sys = boot () in
  let t = new_task kernel ~cpu:0 in
  let a = alloc sys t (8 * kb) in
  ok (Vm_user.write sys t ~addr:(a + 1000) ~data:(Bytes.of_string "kernel copy"));
  Alcotest.(check string) "visible via MMU" "kernel copy"
    (read_str machine ~cpu:0 ~va:(a + 1000) ~len:11);
  write_str machine ~cpu:0 ~va:(a + 5000) "user data";
  let b = ok (Vm_user.read sys t ~addr:(a + 5000) ~size:9) in
  Alcotest.(check string) "vm_read" "user data" (Bytes.to_string b)

let test_vm_copy_is_cow () =
  let machine, kernel, sys = boot () in
  let t = new_task kernel ~cpu:0 in
  let src = alloc sys t (8 * kb) in
  let dst = alloc sys t (8 * kb) in
  write_str machine ~cpu:0 ~va:src "copy me";
  ok (Vm_user.copy sys t ~src ~dst ~size:(8 * kb));
  Alcotest.(check string) "copied" "copy me"
    (read_str machine ~cpu:0 ~va:dst ~len:7);
  (* Writing the copy does not disturb the source, and vice versa. *)
  write_str machine ~cpu:0 ~va:dst "altered";
  Alcotest.(check string) "src safe" "copy me"
    (read_str machine ~cpu:0 ~va:src ~len:7);
  write_str machine ~cpu:0 ~va:src "changed";
  Alcotest.(check string) "dst safe" "altered"
    (read_str machine ~cpu:0 ~va:dst ~len:7)

let test_statistics_reporting () =
  let machine, kernel, sys = boot () in
  let t = new_task kernel ~cpu:0 in
  let a = alloc sys t (8 * kb) in
  write_str machine ~cpu:0 ~va:a "x";
  let st = Vm_user.statistics sys in
  Alcotest.(check int) "page size" 4096 st.Vm_user.vs_page_size;
  Alcotest.(check bool) "faults counted" true (st.Vm_user.vs_faults >= 1);
  Alcotest.(check bool) "zero fill counted" true
    (st.Vm_user.vs_zero_fills >= 1);
  Alcotest.(check bool) "free tracked" true
    (st.Vm_user.vs_pages_free < st.Vm_user.vs_pages_total)

(* ---- multiprocessor coherence ------------------------------------------------ *)

let test_two_cpus_share_task () =
  let machine, kernel, sys = boot ~cpus:2 () in
  let t = new_task kernel ~cpu:0 in
  Kernel.run_task kernel ~cpu:1 t;
  let a = alloc sys t (4 * kb) in
  write_str machine ~cpu:0 ~va:a "from cpu0";
  Alcotest.(check string) "cpu1 reads" "from cpu0"
    (read_str machine ~cpu:1 ~va:a ~len:9);
  write_str machine ~cpu:1 ~va:(a + 100) "from cpu1";
  Alcotest.(check string) "cpu0 reads" "from cpu1"
    (read_str machine ~cpu:0 ~va:(a + 100) ~len:9)

let test_protect_shoots_remote_tlb () =
  let machine, kernel, sys = boot ~cpus:2 () in
  Machine.set_shootdown_strategy machine Machine.Immediate_ipi;
  let t = new_task kernel ~cpu:0 in
  Kernel.run_task kernel ~cpu:1 t;
  let a = alloc sys t (4 * kb) in
  (* Warm CPU 1's TLB with a writable mapping. *)
  write_str machine ~cpu:1 ~va:a "warm";
  (* CPU 0 revokes write permission; CPU 1's next write must fault. *)
  Mach_pmap.Pmap_domain.set_current_cpu kernel.Kernel.domain 0;
  ok
    (Vm_user.protect sys t ~addr:a ~size:(4 * kb) ~set_max:false
       ~prot:Prot.read_only);
  Alcotest.(check bool) "IPIs sent" true ((Machine.stats machine).Machine.ipis >= 1);
  (try
     Machine.write_byte machine ~cpu:1 ~va:a 'X';
     Alcotest.fail "stale writable TLB entry survived"
   with Machine.Memory_violation _ -> ())

(* ---- qcheck: fork trees preserve data isolation ------------------------------- *)

let fork_isolation_qcheck =
  let open QCheck2 in
  (* A random interleaving of writes in a parent/child pair after fork;
     each task's final view must equal a sequential model of its own
     writes over the snapshot. *)
  Test.make ~name:"fork isolation under random write interleavings"
    ~count:40
    Gen.(list (pair bool (int_range 0 7)))
    (fun writes ->
       let machine, kernel, sys = boot ~frames:4096 () in
       let parent = new_task kernel ~cpu:0 in
       let a = alloc sys parent (8 * 4096) in
       for i = 0 to 7 do
         write_str machine ~cpu:0 ~va:(a + (i * 4096))
           (Printf.sprintf "base%d" i)
       done;
       let child = Kernel.fork_task kernel ~cpu:0 parent in
       let model_parent = Array.init 8 (fun i -> Printf.sprintf "base%d" i) in
       let model_child = Array.copy model_parent in
       List.iteri
         (fun n (to_child, page) ->
            let v = Printf.sprintf "wr%02d%d" (n mod 100) page in
            let task, model =
              if to_child then (child, model_child)
              else (parent, model_parent)
            in
            Kernel.run_task kernel ~cpu:0 task;
            write_str machine ~cpu:0 ~va:(a + (page * 4096)) v;
            model.(page) <- v)
         writes;
       let agrees task model =
         Kernel.run_task kernel ~cpu:0 task;
         let okv = ref true in
         for i = 0 to 7 do
           let v =
             read_str machine ~cpu:0 ~va:(a + (i * 4096))
               ~len:(String.length model.(i))
           in
           if v <> model.(i) then okv := false
         done;
         !okv
       in
       agrees parent model_parent && agrees child model_child)

let () =
  Alcotest.run "vm_fault"
    [ ( "demand paging",
        [ Alcotest.test_case "demand zero" `Quick test_demand_zero;
          Alcotest.test_case "zero after free" `Quick
            test_zero_fill_fresh_after_free;
          Alcotest.test_case "unallocated faults" `Quick
            test_unallocated_faults;
          Alcotest.test_case "data spans hw frames" `Quick
            test_data_spans_hw_frames;
          Alcotest.test_case "page multiples" `Quick
            test_page_multiple_one_and_two ] );
      ( "copy-on-write",
        [ Alcotest.test_case "child isolated" `Quick test_cow_child_isolated;
          Alcotest.test_case "parent write isolated" `Quick
            test_cow_parent_write_isolated;
          Alcotest.test_case "untouched pages share" `Quick
            test_cow_untouched_pages_share_frames;
          Alcotest.test_case "grandchildren chain" `Quick
            test_fork_grandchildren_chain;
          Alcotest.test_case "fork after deallocate" `Quick
            test_fork_after_deallocate_hole ] );
      ( "sharing maps",
        [ Alcotest.test_case "read/write sharing" `Quick
            test_shared_inheritance_rw;
          Alcotest.test_case "transitive sharing" `Quick
            test_shared_inheritance_transitive;
          Alcotest.test_case "shared and cow mixed" `Quick
            test_shared_and_cow_mixed ] );
      ( "protection",
        [ Alcotest.test_case "enforced and restored" `Quick
            test_protection_enforced;
          Alcotest.test_case "none blocks reads" `Quick
            test_protection_none_blocks_read ] );
      ( "wiring",
        [ Alcotest.test_case "wire/unwire" `Quick test_wire_unwire ] );
      ( "pmap cache",
        [ Alcotest.test_case "fast reload after collect" `Quick
            test_fast_reload_after_collect;
          Alcotest.test_case "fork prewarm via pmap_copy" `Quick
            test_fork_prewarm_pmap_copy ] );
      ( "ns32082",
        [ Alcotest.test_case "rmw bug workaround" `Quick
            test_rmw_bug_workaround_cow ] );
      ( "vm_user data ops",
        [ Alcotest.test_case "vm_read/vm_write" `Quick test_vm_read_write;
          Alcotest.test_case "vm_copy is cow" `Quick test_vm_copy_is_cow;
          Alcotest.test_case "statistics" `Quick test_statistics_reporting ]
      );
      ( "multiprocessor",
        [ Alcotest.test_case "two cpus share task" `Quick
            test_two_cpus_share_task;
          Alcotest.test_case "protect shoots remote TLB" `Quick
            test_protect_shoots_remote_tlb ] );
      ("isolation", [ QCheck_alcotest.to_alcotest fork_isolation_qcheck ]) ]
