(* Tests for the traditional-UNIX baseline: demand zero, eager and
   copy-on-write fork variants, exec text loading, buffer-cache file I/O
   and eviction to swap. *)

open Mach_hw
open Mach_bsd
open Mach_pagers

let kb = 1024

let boot ?(arch = Arch.uvax2) ?(frames = 2048) ?(buffers = 64) ?variant () =
  let machine = Machine.create ~arch ~memory_frames:frames () in
  let fs = Simfs.create machine () in
  let bsd = Bsd_vm.create machine ~fs ~buffers ?variant () in
  (machine, fs, bsd)

let test_demand_zero () =
  let machine, _, bsd = boot () in
  let p = Bsd_vm.create_proc bsd () in
  Bsd_vm.run_proc bsd ~cpu:0 p;
  let a = Bsd_vm.sbrk bsd ~cpu:0 p ~size:(4 * kb) in
  Alcotest.(check char) "zero" '\000' (Machine.read_byte machine ~cpu:0 ~va:a);
  Machine.write machine ~cpu:0 ~va:a (Bytes.of_string "bsd data");
  Alcotest.(check string) "rw" "bsd data"
    (Bytes.to_string (Machine.read machine ~cpu:0 ~va:a ~len:8))

let test_out_of_region_faults () =
  let machine, _, bsd = boot () in
  let p = Bsd_vm.create_proc bsd () in
  Bsd_vm.run_proc bsd ~cpu:0 p;
  (try
     ignore (Machine.read_byte machine ~cpu:0 ~va:(50 * 1024 * 1024));
     Alcotest.fail "expected segmentation violation"
   with Machine.Memory_violation { reason; _ } ->
     Alcotest.(check string) "segv" "segmentation violation" reason)

let test_eager_fork_copies () =
  let machine, _, bsd = boot ~variant:Bsd_vm.bsd43 () in
  let p = Bsd_vm.create_proc bsd () in
  Bsd_vm.run_proc bsd ~cpu:0 p;
  let a = Bsd_vm.sbrk bsd ~cpu:0 p ~size:(8 * kb) in
  Machine.write machine ~cpu:0 ~va:a (Bytes.of_string "parent");
  let resident_before = Bsd_vm.resident_pages p in
  let c = Bsd_vm.fork bsd ~cpu:0 p in
  (* Eager: the child has its own frames for every resident page. *)
  Alcotest.(check int) "child resident immediately" resident_before
    (Bsd_vm.resident_pages c);
  Bsd_vm.run_proc bsd ~cpu:0 c;
  Alcotest.(check string) "child inherits" "parent"
    (Bytes.to_string (Machine.read machine ~cpu:0 ~va:a ~len:6));
  Machine.write machine ~cpu:0 ~va:a (Bytes.of_string "child!");
  Bsd_vm.run_proc bsd ~cpu:0 p;
  Alcotest.(check string) "parent isolated" "parent"
    (Bytes.to_string (Machine.read machine ~cpu:0 ~va:a ~len:6))

let test_sunos_cow_fork () =
  let machine, _, bsd = boot ~arch:Arch.sun3_160 ~variant:Bsd_vm.sunos32 () in
  let p = Bsd_vm.create_proc bsd () in
  Bsd_vm.run_proc bsd ~cpu:0 p;
  let a = Bsd_vm.sbrk bsd ~cpu:0 p ~size:(16 * kb) in
  Machine.write machine ~cpu:0 ~va:a (Bytes.of_string "parent");
  let c = Bsd_vm.fork bsd ~cpu:0 p in
  Bsd_vm.run_proc bsd ~cpu:0 c;
  (* Reading shares the frame; writing copies. *)
  Alcotest.(check string) "shared read" "parent"
    (Bytes.to_string (Machine.read machine ~cpu:0 ~va:a ~len:6));
  Machine.write machine ~cpu:0 ~va:a (Bytes.of_string "child!");
  Bsd_vm.run_proc bsd ~cpu:0 p;
  Alcotest.(check string) "isolated after write" "parent"
    (Bytes.to_string (Machine.read machine ~cpu:0 ~va:a ~len:6));
  (* Parent write also isolated. *)
  Machine.write machine ~cpu:0 ~va:(a + 100) (Bytes.of_string "pp");
  Bsd_vm.run_proc bsd ~cpu:0 c;
  Alcotest.(check char) "child unaffected" '\000'
    (Machine.read_byte machine ~cpu:0 ~va:(a + 100))

let test_fork_cost_eager_vs_cow () =
  (* Hold the per-page bookkeeping constant so the comparison isolates
     the copy itself (SunOS's real overhead is higher, which is the
     point of the sunos32 variant elsewhere). *)
  let cow_cheap =
    { Bsd_vm.v_name = "cow-test"; v_cow_fork = true; v_page_overhead = 180 }
  in
  let eager_cost =
    let machine, _, bsd = boot ~variant:Bsd_vm.bsd43 () in
    let p = Bsd_vm.create_proc bsd () in
    Bsd_vm.run_proc bsd ~cpu:0 p;
    let a = Bsd_vm.sbrk bsd ~cpu:0 p ~size:(64 * kb) in
    for i = 0 to 127 do
      Machine.write_byte machine ~cpu:0 ~va:(a + (i * 512)) 'x'
    done;
    Machine.reset_clocks machine;
    ignore (Bsd_vm.fork bsd ~cpu:0 p);
    Machine.max_cycles machine
  and cow_cost =
    let machine, _, bsd = boot ~variant:cow_cheap () in
    let p = Bsd_vm.create_proc bsd () in
    Bsd_vm.run_proc bsd ~cpu:0 p;
    let a = Bsd_vm.sbrk bsd ~cpu:0 p ~size:(64 * kb) in
    for i = 0 to 127 do
      Machine.write_byte machine ~cpu:0 ~va:(a + (i * 512)) 'x'
    done;
    Machine.reset_clocks machine;
    ignore (Bsd_vm.fork bsd ~cpu:0 p);
    Machine.max_cycles machine
  in
  Alcotest.(check bool) "eager fork costs more" true (eager_cost > cow_cost)

let test_exit_frees_memory () =
  let machine, _, bsd = boot ~frames:128 () in
  (* 128 frames; each proc dirties 64; two sequential procs only fit if
     exit frees. *)
  for _ = 1 to 3 do
    let p = Bsd_vm.create_proc bsd () in
    Bsd_vm.run_proc bsd ~cpu:0 p;
    let a = Bsd_vm.sbrk bsd ~cpu:0 p ~size:(32 * kb) in
    for i = 0 to 63 do
      Machine.write_byte machine ~cpu:0 ~va:(a + (i * 512)) 'm'
    done;
    Bsd_vm.exit bsd ~cpu:0 p
  done;
  Alcotest.(check bool) "no eviction needed" true
    ((Machine.stats machine).Machine.disk_ops = 0)

let test_eviction_to_swap () =
  let machine, _, bsd = boot ~frames:64 () in
  (* 64 frames of 512B = 32 KB of memory; dirty 64 KB. *)
  let p = Bsd_vm.create_proc bsd () in
  Bsd_vm.run_proc bsd ~cpu:0 p;
  let a = Bsd_vm.sbrk bsd ~cpu:0 p ~size:(64 * kb) in
  for i = 0 to 127 do
    Machine.write machine ~cpu:0 ~va:(a + (i * 512))
      (Bytes.of_string (Printf.sprintf "pg%03d" i))
  done;
  (* Everything reads back despite eviction. *)
  for i = 0 to 127 do
    Alcotest.(check string)
      (Printf.sprintf "page %d" i)
      (Printf.sprintf "pg%03d" i)
      (Bytes.to_string (Machine.read machine ~cpu:0 ~va:(a + (i * 512)) ~len:5))
  done;
  Alcotest.(check bool) "swap used" true
    ((Machine.stats machine).Machine.disk_ops > 0)

let test_exec_loads_text () =
  let machine, fs, bsd = boot () in
  Simfs.install_file fs ~name:"/bin/prog" ~data:(Bytes.make (8 * kb) 'P');
  let p = Bsd_vm.create_proc bsd () in
  Bsd_vm.run_proc bsd ~cpu:0 p;
  let base = Bsd_vm.exec bsd ~cpu:0 p ~text:"/bin/prog" in
  Alcotest.(check char) "text loaded" 'P'
    (Machine.read_byte machine ~cpu:0 ~va:base);
  Alcotest.(check char) "text end" 'P'
    (Machine.read_byte machine ~cpu:0 ~va:(base + (8 * kb) - 1));
  Alcotest.(check bool) "resident eagerly" true
    (Bsd_vm.resident_pages p >= (8 * kb) / 512)

let test_buffer_cache_hits () =
  let _, fs, bsd = boot ~buffers:32 () in
  Simfs.install_file fs ~name:"/file" ~data:(Bytes.make (16 * kb) 'f');
  ignore (Bsd_vm.read_file bsd ~cpu:0 ~name:"/file" ~offset:0 ~len:(16 * kb));
  let misses_cold = Buffer_cache.misses (Bsd_vm.bcache bsd) in
  ignore (Bsd_vm.read_file bsd ~cpu:0 ~name:"/file" ~offset:0 ~len:(16 * kb));
  Alcotest.(check int) "warm read all hits" misses_cold
    (Buffer_cache.misses (Bsd_vm.bcache bsd));
  Alcotest.(check bool) "hits counted" true
    (Buffer_cache.hits (Bsd_vm.bcache bsd) > 0)

let test_buffer_cache_capacity_evicts () =
  let _, fs, bsd = boot ~buffers:2 () in
  (* Two 4 KB buffers; an 16 KB file cannot stay cached. *)
  Simfs.install_file fs ~name:"/big" ~data:(Bytes.make (16 * kb) 'b');
  ignore (Bsd_vm.read_file bsd ~cpu:0 ~name:"/big" ~offset:0 ~len:(16 * kb));
  let m1 = Buffer_cache.misses (Bsd_vm.bcache bsd) in
  ignore (Bsd_vm.read_file bsd ~cpu:0 ~name:"/big" ~offset:0 ~len:(16 * kb));
  Alcotest.(check bool) "second pass misses again" true
    (Buffer_cache.misses (Bsd_vm.bcache bsd) > m1)

let test_write_through () =
  let _, fs, bsd = boot () in
  Simfs.install_file fs ~name:"/w" ~data:(Bytes.make (4 * kb) 'o');
  ignore (Bsd_vm.read_file bsd ~cpu:0 ~name:"/w" ~offset:0 ~len:10);
  Bsd_vm.write_file bsd ~cpu:0 ~name:"/w" ~offset:0
    ~data:(Bytes.of_string "NEW");
  (* The cache stays coherent and the disk is updated. *)
  Alcotest.(check string) "cached read coherent" "NEW"
    (Bytes.to_string (Bsd_vm.read_file bsd ~cpu:0 ~name:"/w" ~offset:0 ~len:3));
  Alcotest.(check string) "on disk" "NEW"
    (Bytes.to_string (Simfs.read fs ~cpu:0 ~name:"/w" ~offset:0 ~len:3))

let test_rmw_bug_on_baseline_cow () =
  (* The NS32082 bug also hits the baseline when it runs copy-on-write:
     the write that should trigger the copying fault arrives reported as
     a read; Bsd_vm's fault handler must still copy. *)
  let cow =
    { Bsd_vm.v_name = "cow-on-ns"; v_cow_fork = true; v_page_overhead = 180 }
  in
  let machine, _, bsd = boot ~arch:Arch.ns32082 ~variant:cow () in
  let p = Bsd_vm.create_proc bsd () in
  Bsd_vm.run_proc bsd ~cpu:0 p;
  let a = Bsd_vm.sbrk bsd ~cpu:0 p ~size:(4 * kb) in
  Machine.write machine ~cpu:0 ~va:a (Bytes.of_string "parent");
  let c = Bsd_vm.fork bsd ~cpu:0 p in
  Bsd_vm.run_proc bsd ~cpu:0 c;
  (* Read first so the subsequent write is a protection (bug-prone)
     fault rather than an invalid one. *)
  ignore (Machine.read machine ~cpu:0 ~va:a ~len:6);
  Machine.write machine ~cpu:0 ~va:a (Bytes.of_string "child!");
  Bsd_vm.run_proc bsd ~cpu:0 p;
  Alcotest.(check string) "isolation despite the chip bug" "parent"
    (Bytes.to_string (Machine.read machine ~cpu:0 ~va:a ~len:6))

let test_variant_selection () =
  Alcotest.(check string) "sun gets SunOS" "SunOS 3.2"
    (Bsd_vm.variant_for Arch.sun3_160).Bsd_vm.v_name;
  Alcotest.(check string) "rt gets ACIS" "ACIS 4.2a"
    (Bsd_vm.variant_for Arch.rt_pc).Bsd_vm.v_name;
  Alcotest.(check string) "vax gets 4.3bsd" "4.3bsd"
    (Bsd_vm.variant_for Arch.uvax2).Bsd_vm.v_name

let () =
  Alcotest.run "mach_bsd"
    [ ( "vm",
        [ Alcotest.test_case "demand zero" `Quick test_demand_zero;
          Alcotest.test_case "segv outside regions" `Quick
            test_out_of_region_faults;
          Alcotest.test_case "exit frees" `Quick test_exit_frees_memory;
          Alcotest.test_case "eviction to swap" `Quick test_eviction_to_swap
        ] );
      ( "fork",
        [ Alcotest.test_case "eager copies" `Quick test_eager_fork_copies;
          Alcotest.test_case "sunos cow" `Quick test_sunos_cow_fork;
          Alcotest.test_case "eager dearer than cow" `Quick
            test_fork_cost_eager_vs_cow;
          Alcotest.test_case "rmw bug with baseline cow" `Quick
            test_rmw_bug_on_baseline_cow ] );
      ( "exec/files",
        [ Alcotest.test_case "exec loads text" `Quick test_exec_loads_text;
          Alcotest.test_case "buffer cache hits" `Quick
            test_buffer_cache_hits;
          Alcotest.test_case "capacity evicts" `Quick
            test_buffer_cache_capacity_evicts;
          Alcotest.test_case "write-through" `Quick test_write_through;
          Alcotest.test_case "variant selection" `Quick
            test_variant_selection ] ) ]
