(* Tests for Vm_map: entry management, clipping, allocation, protection
   and inheritance attributes, fork semantics at the map level, virtual
   copies, and the sorted-non-overlapping invariant under random ops. *)

open Mach_hw
open Mach_core
open Mach_pmap

let ps = 4096 (* uVAX II with page_multiple 8 *)

let setup () =
  let machine = Machine.create ~arch:Arch.uvax2 ~memory_frames:2048 () in
  let kernel = Kernel.create ~page_multiple:8 machine in
  (machine, kernel, Kernel.sys kernel)

let fresh_map sys =
  let pmap = Pmap_domain.create_pmap sys.Vm_sys.domain in
  Vm_map.create sys ~pmap:(Some pmap) ~low:ps ~high:(1 lsl 30)

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.fail (Kr.to_string e)

let err name expected = function
  | Ok _ -> Alcotest.fail (name ^ ": expected error")
  | Error e ->
    Alcotest.(check string) name (Kr.to_string expected) (Kr.to_string e)

(* The structural invariant: entries sorted, page aligned, non
   overlapping, within bounds. *)
let check_invariant m =
  let rec walk last = function
    | [] -> ()
    | e :: rest ->
      Alcotest.(check bool) "aligned start" true
        (e.Types.e_start mod ps = 0);
      Alcotest.(check bool) "aligned end" true (e.Types.e_end mod ps = 0);
      Alcotest.(check bool) "non-empty" true
        (e.Types.e_end > e.Types.e_start);
      Alcotest.(check bool) "sorted, no overlap" true
        (e.Types.e_start >= last);
      walk e.Types.e_end rest
  in
  walk min_int (Vm_map.entries m)

(* ---- allocation ---------------------------------------------------- *)

let test_allocate_anywhere () =
  let _, _, sys = setup () in
  let m = fresh_map sys in
  let a = ok (Vm_map.allocate sys m ~size:(3 * ps) ~anywhere:true ()) in
  let b = ok (Vm_map.allocate sys m ~size:ps ~anywhere:true ()) in
  Alcotest.(check bool) "disjoint" true (b >= a + (3 * ps) || b + ps <= a);
  Alcotest.(check int) "two entries" 2 (Vm_map.entry_count m);
  check_invariant m

let test_allocate_rounds_size () =
  let _, _, sys = setup () in
  let m = fresh_map sys in
  let a = ok (Vm_map.allocate sys m ~size:100 ~anywhere:true ()) in
  (match Vm_map.find m ~va:a with
   | Some e ->
     Alcotest.(check int) "rounded to page" ps (Types.entry_size e)
   | None -> Alcotest.fail "entry missing")

let test_allocate_at () =
  let _, _, sys = setup () in
  let m = fresh_map sys in
  let at = 16 * ps in
  let a = ok (Vm_map.allocate sys m ~at ~size:ps ~anywhere:false ()) in
  Alcotest.(check int) "exact placement" at a;
  err "overlap" Kr.No_space
    (Vm_map.allocate sys m ~at ~size:ps ~anywhere:false ());
  (* Anywhere with a taken hint still succeeds elsewhere. *)
  let b = ok (Vm_map.allocate sys m ~at ~size:ps ~anywhere:true ()) in
  Alcotest.(check bool) "moved" true (b <> at)

let test_allocate_fills_gap () =
  let _, _, sys = setup () in
  let m = fresh_map sys in
  let a = ok (Vm_map.allocate sys m ~size:(2 * ps) ~anywhere:true ()) in
  let _b = ok (Vm_map.allocate sys m ~size:(2 * ps) ~anywhere:true ()) in
  ok (Vm_map.deallocate_range sys m ~addr:a ~size:(2 * ps));
  let c = ok (Vm_map.allocate sys m ~size:ps ~anywhere:true ()) in
  Alcotest.(check int) "first fit reuses gap" a c

let test_allocate_bad_args () =
  let _, _, sys = setup () in
  let m = fresh_map sys in
  err "zero size" Kr.Invalid_argument
    (Vm_map.allocate sys m ~size:0 ~anywhere:true ());
  err "no at" Kr.Invalid_argument
    (Vm_map.allocate sys m ~size:ps ~anywhere:false ());
  err "below map" Kr.Invalid_address
    (Vm_map.allocate sys m ~at:0 ~size:ps ~anywhere:false ())

let test_allocate_no_space () =
  let _, _, sys = setup () in
  let pmap = Pmap_domain.create_pmap sys.Vm_sys.domain in
  let m = Vm_map.create sys ~pmap:(Some pmap) ~low:ps ~high:(4 * ps) in
  let _ = ok (Vm_map.allocate sys m ~size:(3 * ps) ~anywhere:true ()) in
  err "full" Kr.No_space (Vm_map.allocate sys m ~size:ps ~anywhere:true ())

(* ---- deallocate and clipping ---------------------------------------- *)

let test_deallocate_middle_clips () =
  let _, _, sys = setup () in
  let m = fresh_map sys in
  let a = ok (Vm_map.allocate sys m ~size:(5 * ps) ~anywhere:true ()) in
  ok (Vm_map.deallocate_range sys m ~addr:(a + (2 * ps)) ~size:ps);
  Alcotest.(check int) "split into two" 2 (Vm_map.entry_count m);
  Alcotest.(check bool) "hole unmapped" true
    (Vm_map.find m ~va:(a + (2 * ps)) = None);
  Alcotest.(check bool) "left present" true (Vm_map.find m ~va:a <> None);
  Alcotest.(check bool) "right present" true
    (Vm_map.find m ~va:(a + (4 * ps)) <> None);
  check_invariant m

let test_deallocate_unallocated_is_noop () =
  let _, _, sys = setup () in
  let m = fresh_map sys in
  ok (Vm_map.deallocate_range sys m ~addr:(64 * ps) ~size:(4 * ps));
  Alcotest.(check int) "still empty" 0 (Vm_map.entry_count m)

let test_deallocate_spanning_entries () =
  let _, _, sys = setup () in
  let m = fresh_map sys in
  let a = ok (Vm_map.allocate sys m ~size:(2 * ps) ~anywhere:true ()) in
  let b = ok (Vm_map.allocate sys m ~size:(2 * ps) ~anywhere:true ()) in
  Alcotest.(check int) "adjacent" (a + (2 * ps)) b;
  (* Remove the back half of the first and front half of the second. *)
  ok (Vm_map.deallocate_range sys m ~addr:(a + ps) ~size:(2 * ps));
  Alcotest.(check bool) "a kept" true (Vm_map.find m ~va:a <> None);
  Alcotest.(check bool) "a+1 gone" true (Vm_map.find m ~va:(a + ps) = None);
  Alcotest.(check bool) "b gone" true (Vm_map.find m ~va:b = None);
  Alcotest.(check bool) "b+1 kept" true (Vm_map.find m ~va:(b + ps) <> None);
  check_invariant m

(* ---- protection ------------------------------------------------------ *)

let test_protect_clips_and_sets () =
  let _, _, sys = setup () in
  let m = fresh_map sys in
  let a = ok (Vm_map.allocate sys m ~size:(4 * ps) ~anywhere:true ()) in
  ok
    (Vm_map.protect sys m ~addr:(a + ps) ~size:ps ~set_max:false
       ~prot:Prot.read_only);
  Alcotest.(check int) "three entries" 3 (Vm_map.entry_count m);
  (match Vm_map.find m ~va:(a + ps) with
   | Some e ->
     Alcotest.(check string) "ro" "r--" (Prot.to_string e.Types.e_prot)
   | None -> Alcotest.fail "entry missing");
  (match Vm_map.find m ~va:a with
   | Some e ->
     Alcotest.(check string) "rw" "rw-" (Prot.to_string e.Types.e_prot)
   | None -> Alcotest.fail "entry missing");
  check_invariant m

let test_protect_max_rules () =
  let _, _, sys = setup () in
  let m = fresh_map sys in
  let a = ok (Vm_map.allocate sys m ~size:ps ~anywhere:true ()) in
  (* Lower the maximum below current: current is dragged down. *)
  ok
    (Vm_map.protect sys m ~addr:a ~size:ps ~set_max:true
       ~prot:Prot.read_only);
  (match Vm_map.find m ~va:a with
   | Some e ->
     Alcotest.(check string) "current dragged" "r--"
       (Prot.to_string e.Types.e_prot);
     Alcotest.(check string) "max lowered" "r--"
       (Prot.to_string e.Types.e_max_prot)
   | None -> Alcotest.fail "entry missing");
  (* Raising current above the (lowered) maximum fails. *)
  err "beyond max" Kr.Protection_failure
    (Vm_map.protect sys m ~addr:a ~size:ps ~set_max:false
       ~prot:Prot.read_write)

let test_inheritance_attr () =
  let _, _, sys = setup () in
  let m = fresh_map sys in
  let a = ok (Vm_map.allocate sys m ~size:(2 * ps) ~anywhere:true ()) in
  ok (Vm_map.set_inheritance sys m ~addr:a ~size:ps Inheritance.Shared);
  let regions = Vm_map.regions m in
  Alcotest.(check int) "clipped" 2 (List.length regions);
  let r0 = List.hd regions in
  Alcotest.(check string) "shared" "shared"
    (Inheritance.to_string r0.Vm_map.ri_inherit);
  let r1 = List.nth regions 1 in
  Alcotest.(check string) "copy" "copy"
    (Inheritance.to_string r1.Vm_map.ri_inherit)

(* ---- hint behaviour --------------------------------------------------- *)

let test_find_uses_hint () =
  let _, _, sys = setup () in
  let m = fresh_map sys in
  let addrs =
    List.init 8 (fun _ -> ok (Vm_map.allocate sys m ~size:ps ~anywhere:true ()))
  in
  (* Sequential finds, then a backward find. *)
  List.iter (fun a -> ignore (Vm_map.find m ~va:a)) addrs;
  let first = List.hd addrs in
  (match Vm_map.find m ~va:first with
   | Some e -> Alcotest.(check int) "found first again" first e.Types.e_start
   | None -> Alcotest.fail "hint broke backward search")

(* ---- simplify --------------------------------------------------------- *)

let test_simplify_merges_no_backing () =
  let _, _, sys = setup () in
  let m = fresh_map sys in
  let a = ok (Vm_map.allocate sys m ~size:(2 * ps) ~anywhere:true ()) in
  (* Clip by protecting, then restore: entries become identical and
     adjacent again. *)
  ok
    (Vm_map.protect sys m ~addr:a ~size:ps ~set_max:false
       ~prot:Prot.read_only);
  Alcotest.(check int) "clipped" 2 (Vm_map.entry_count m);
  ok
    (Vm_map.protect sys m ~addr:a ~size:ps ~set_max:false
       ~prot:Prot.read_write);
  Vm_map.simplify sys m;
  Alcotest.(check int) "merged" 1 (Vm_map.entry_count m);
  check_invariant m

let test_simplify_keeps_different_attrs () =
  let _, _, sys = setup () in
  let m = fresh_map sys in
  let a = ok (Vm_map.allocate sys m ~size:(2 * ps) ~anywhere:true ()) in
  ok
    (Vm_map.protect sys m ~addr:a ~size:ps ~set_max:false
       ~prot:Prot.read_only);
  Vm_map.simplify sys m;
  Alcotest.(check int) "not merged" 2 (Vm_map.entry_count m)

(* ---- fork at the map level -------------------------------------------- *)

let child_of sys parent =
  let pmap = Pmap_domain.create_pmap sys.Vm_sys.domain in
  Vm_map.fork sys parent ~child_pmap:pmap

let test_fork_inheritance_shapes () =
  let _, _, sys = setup () in
  let m = fresh_map sys in
  let a_copy = ok (Vm_map.allocate sys m ~size:ps ~anywhere:true ()) in
  let a_share = ok (Vm_map.allocate sys m ~size:ps ~anywhere:true ()) in
  let a_none = ok (Vm_map.allocate sys m ~size:ps ~anywhere:true ()) in
  ok (Vm_map.set_inheritance sys m ~addr:a_share ~size:ps Inheritance.Shared);
  ok (Vm_map.set_inheritance sys m ~addr:a_none ~size:ps Inheritance.None_);
  let child = child_of sys m in
  Alcotest.(check bool) "copy present" true
    (Vm_map.find child ~va:a_copy <> None);
  Alcotest.(check bool) "shared present" true
    (Vm_map.find child ~va:a_share <> None);
  Alcotest.(check bool) "none absent" true
    (Vm_map.find child ~va:a_none = None);
  (* Shared entries now point at a sharing map in both parent and child. *)
  let shared_region parent_or_child =
    List.find
      (fun r -> r.Vm_map.ri_start = a_share)
      (Vm_map.regions parent_or_child)
  in
  Alcotest.(check bool) "parent shared" true
    (shared_region m).Vm_map.ri_shared;
  Alcotest.(check bool) "child shared" true
    (shared_region child).Vm_map.ri_shared;
  check_invariant child

let test_fork_untouched_region_stays_lazy () =
  let _, _, sys = setup () in
  let m = fresh_map sys in
  let a = ok (Vm_map.allocate sys m ~size:ps ~anywhere:true ()) in
  let child = child_of sys m in
  (match Vm_map.find child ~va:a with
   | Some e ->
     Alcotest.(check bool) "no backing yet" true
       (e.Types.e_backing = Types.No_backing);
     Alcotest.(check bool) "no needs_copy" false e.Types.e_needs_copy
   | None -> Alcotest.fail "child entry missing")

let test_fork_marks_both_sides_cow () =
  let machine, kernel, sys = setup () in
  ignore kernel;
  let m = fresh_map sys in
  let a = ok (Vm_map.allocate sys m ~size:ps ~anywhere:true ()) in
  (* Touch to force a backing object. *)
  ignore (ok (Vm_fault.fault sys m ~va:a ~write:true));
  let child = child_of sys m in
  let needs_copy map =
    match Vm_map.find map ~va:a with
    | Some e -> e.Types.e_needs_copy
    | None -> false
  in
  Alcotest.(check bool) "parent cow" true (needs_copy m);
  Alcotest.(check bool) "child cow" true (needs_copy child);
  (* Both reference the same object. *)
  (match
     ( Vm_map.resolve_object_at sys m ~va:a,
       Vm_map.resolve_object_at sys child ~va:a )
   with
   | Some (o1, _), Some (o2, _) ->
     Alcotest.(check bool) "same object" true (o1 == o2);
     Alcotest.(check int) "two refs" 2 o1.Types.obj_ref
   | _ -> Alcotest.fail "objects missing");
  ignore machine

(* ---- virtual copies --------------------------------------------------- *)

let test_extract_insert_copy () =
  let _, _, sys = setup () in
  let m = fresh_map sys in
  let a = ok (Vm_map.allocate sys m ~size:(2 * ps) ~anywhere:true ()) in
  ignore (ok (Vm_fault.fault sys m ~va:a ~write:true));
  let c = ok (Vm_map.extract_copy sys m ~addr:a ~size:(2 * ps)) in
  Alcotest.(check int) "copy size" (2 * ps) (Vm_map.copy_size c);
  let m2 = fresh_map sys in
  let b = ok (Vm_map.insert_copy sys m2 c ()) in
  Alcotest.(check bool) "mapped in target" true (Vm_map.find m2 ~va:b <> None);
  (* Touched part shares the object (copy-on-write). *)
  (match
     ( Vm_map.resolve_object_at sys m ~va:a,
       Vm_map.resolve_object_at sys m2 ~va:b )
   with
   | Some (o1, _), Some (o2, _) ->
     Alcotest.(check bool) "same object" true (o1 == o2)
   | _ -> Alcotest.fail "objects missing");
  check_invariant m2

let test_extract_copy_gap_fails () =
  let _, _, sys = setup () in
  let m = fresh_map sys in
  let a = ok (Vm_map.allocate sys m ~size:ps ~anywhere:true ()) in
  err "gap" Kr.Invalid_address
    (Vm_map.extract_copy sys m ~addr:a ~size:(3 * ps))

let test_discard_copy_releases () =
  let _, _, sys = setup () in
  let m = fresh_map sys in
  let a = ok (Vm_map.allocate sys m ~size:ps ~anywhere:true ()) in
  ignore (ok (Vm_fault.fault sys m ~va:a ~write:true));
  let o =
    match Vm_map.resolve_object_at sys m ~va:a with
    | Some (o, _) -> o
    | None -> Alcotest.fail "no object"
  in
  let c = ok (Vm_map.extract_copy sys m ~addr:a ~size:ps) in
  Alcotest.(check int) "ref taken" 2 o.Types.obj_ref;
  Vm_map.discard_copy sys c;
  Alcotest.(check int) "ref released" 1 o.Types.obj_ref

(* ---- map deallocate releases references ------------------------------- *)

let test_map_deallocate_releases_objects () =
  let _, _, sys = setup () in
  let m = fresh_map sys in
  let a = ok (Vm_map.allocate sys m ~size:ps ~anywhere:true ()) in
  ignore (ok (Vm_fault.fault sys m ~va:a ~write:true));
  let o =
    match Vm_map.resolve_object_at sys m ~va:a with
    | Some (o, _) -> o
    | None -> Alcotest.fail "no object"
  in
  Vm_map.deallocate sys m;
  Alcotest.(check bool) "object dead" true o.Types.obj_dead

(* ---- more edge cases ---------------------------------------------------- *)

let test_allocate_object_at_offset () =
  let _, _, sys = setup () in
  let m = fresh_map sys in
  let o = Vm_object.create_anonymous sys ~size:(8 * ps) in
  let a =
    ok
      (Vm_map.allocate_object sys m o ~offset:(2 * ps) ~size:(4 * ps)
         ~anywhere:true ())
  in
  (match Vm_map.resolve_object_at sys m ~va:(a + ps) with
   | Some (o', off) ->
     Alcotest.(check bool) "same object" true (o == o');
     Alcotest.(check int) "offset translated" (3 * ps) off
   | None -> Alcotest.fail "no object")

let test_insert_copy_at_fixed_address () =
  let _, _, sys = setup () in
  let m = fresh_map sys in
  let a = ok (Vm_map.allocate sys m ~size:ps ~anywhere:true ()) in
  ignore (ok (Vm_fault.fault sys m ~va:a ~write:true));
  let c = ok (Vm_map.extract_copy sys m ~addr:a ~size:ps) in
  let m2 = fresh_map sys in
  let at = 64 * ps in
  let b = ok (Vm_map.insert_copy sys m2 c ~at ()) in
  Alcotest.(check int) "landed at the requested address" at b;
  (* Inserting into an occupied range fails and does not corrupt. *)
  let c2 = ok (Vm_map.extract_copy sys m ~addr:a ~size:ps) in
  err "occupied" Kr.No_space (Vm_map.insert_copy sys m2 c2 ~at ());
  Vm_map.discard_copy sys c2;
  check_invariant m2

let test_regions_reflect_fork_cow () =
  let _, _, sys = setup () in
  let m = fresh_map sys in
  let a = ok (Vm_map.allocate sys m ~size:ps ~anywhere:true ()) in
  ignore (ok (Vm_fault.fault sys m ~va:a ~write:true));
  let _child = child_of sys m in
  let r = List.hd (Vm_map.regions m) in
  Alcotest.(check bool) "parent marked cow" true r.Vm_map.ri_needs_copy

let test_protect_unallocated_is_noop () =
  let _, _, sys = setup () in
  let m = fresh_map sys in
  ok
    (Vm_map.protect sys m ~addr:(100 * ps) ~size:(4 * ps) ~set_max:false
       ~prot:Prot.read_only);
  Alcotest.(check int) "no entries appeared" 0 (Vm_map.entry_count m)

let test_deallocate_then_simplify_stays_clean () =
  let _, _, sys = setup () in
  let m = fresh_map sys in
  let a = ok (Vm_map.allocate sys m ~size:(6 * ps) ~anywhere:true ()) in
  ok (Vm_map.deallocate_range sys m ~addr:(a + ps) ~size:ps);
  ok (Vm_map.deallocate_range sys m ~addr:(a + (3 * ps)) ~size:ps);
  Vm_map.simplify sys m;
  check_invariant m;
  Alcotest.(check bool) "holes preserved" true
    (Vm_map.find m ~va:(a + ps) = None
     && Vm_map.find m ~va:(a + (3 * ps)) = None)

let test_fork_twice_from_same_parent () =
  let machine, _, sys = setup () in
  ignore machine;
  let m = fresh_map sys in
  let a = ok (Vm_map.allocate sys m ~size:ps ~anywhere:true ()) in
  ignore (ok (Vm_fault.fault sys m ~va:a ~write:true));
  let c1 = child_of sys m in
  let c2 = child_of sys m in
  (match
     ( Vm_map.resolve_object_at sys c1 ~va:a,
       Vm_map.resolve_object_at sys c2 ~va:a )
   with
   | Some (o1, _), Some (o2, _) ->
     Alcotest.(check bool) "both reference the original" true (o1 == o2);
     Alcotest.(check int) "three refs" 3 o1.Types.obj_ref
   | _ -> Alcotest.fail "missing objects")

(* ---- qcheck: random allocate/deallocate keeps the invariant ------------ *)

let map_invariant_qcheck =
  let open QCheck2 in
  Test.make ~name:"random alloc/dealloc/protect keeps map invariant"
    ~count:100
    Gen.(list (triple (int_range 0 2) (int_range 0 30) (int_range 1 4)))
    (fun ops ->
       let _, _, sys = setup () in
       let m = fresh_map sys in
       List.iter
         (fun (op, slot, pages) ->
            let addr = ps + (slot * ps) in
            match op with
            | 0 ->
              ignore
                (Vm_map.allocate sys m ~at:addr ~size:(pages * ps)
                   ~anywhere:false ())
            | 1 ->
              ignore
                (Vm_map.deallocate_range sys m ~addr ~size:(pages * ps))
            | _ ->
              ignore
                (Vm_map.protect sys m ~addr ~size:(pages * ps)
                   ~set_max:false ~prot:Prot.read_only))
         ops;
       (* Re-state the structural invariant as a boolean. *)
       let rec walk last = function
         | [] -> true
         | e :: rest ->
           e.Types.e_start mod ps = 0
           && e.Types.e_end mod ps = 0
           && e.Types.e_end > e.Types.e_start
           && e.Types.e_start >= last
           && walk e.Types.e_end rest
       in
       walk min_int (Vm_map.entries m))

let () =
  Alcotest.run "vm_map"
    [ ( "allocate",
        [ Alcotest.test_case "anywhere" `Quick test_allocate_anywhere;
          Alcotest.test_case "rounds size" `Quick test_allocate_rounds_size;
          Alcotest.test_case "at fixed address" `Quick test_allocate_at;
          Alcotest.test_case "first fit reuses gaps" `Quick
            test_allocate_fills_gap;
          Alcotest.test_case "bad arguments" `Quick test_allocate_bad_args;
          Alcotest.test_case "no space" `Quick test_allocate_no_space ] );
      ( "deallocate",
        [ Alcotest.test_case "middle clips" `Quick
            test_deallocate_middle_clips;
          Alcotest.test_case "unallocated is noop" `Quick
            test_deallocate_unallocated_is_noop;
          Alcotest.test_case "spanning entries" `Quick
            test_deallocate_spanning_entries ] );
      ( "protect",
        [ Alcotest.test_case "clips and sets" `Quick
            test_protect_clips_and_sets;
          Alcotest.test_case "maximum rules" `Quick test_protect_max_rules ]
      );
      ( "attributes",
        [ Alcotest.test_case "inheritance" `Quick test_inheritance_attr;
          Alcotest.test_case "hint survives" `Quick test_find_uses_hint ] );
      ( "simplify",
        [ Alcotest.test_case "merges identical" `Quick
            test_simplify_merges_no_backing;
          Alcotest.test_case "keeps different" `Quick
            test_simplify_keeps_different_attrs ] );
      ( "fork",
        [ Alcotest.test_case "inheritance shapes" `Quick
            test_fork_inheritance_shapes;
          Alcotest.test_case "untouched stays lazy" `Quick
            test_fork_untouched_region_stays_lazy;
          Alcotest.test_case "marks both sides cow" `Quick
            test_fork_marks_both_sides_cow ] );
      ( "copies",
        [ Alcotest.test_case "extract and insert" `Quick
            test_extract_insert_copy;
          Alcotest.test_case "gap fails" `Quick test_extract_copy_gap_fails;
          Alcotest.test_case "discard releases" `Quick
            test_discard_copy_releases;
          Alcotest.test_case "deallocate releases objects" `Quick
            test_map_deallocate_releases_objects ] );
      ( "edges",
        [ Alcotest.test_case "allocate_object at offset" `Quick
            test_allocate_object_at_offset;
          Alcotest.test_case "insert copy at address" `Quick
            test_insert_copy_at_fixed_address;
          Alcotest.test_case "regions reflect cow" `Quick
            test_regions_reflect_fork_cow;
          Alcotest.test_case "protect unallocated" `Quick
            test_protect_unallocated_is_noop;
          Alcotest.test_case "dealloc + simplify" `Quick
            test_deallocate_then_simplify_stays_clean;
          Alcotest.test_case "fork twice" `Quick
            test_fork_twice_from_same_parent ] );
      ("invariant", [ QCheck_alcotest.to_alcotest map_invariant_qcheck ]) ]
