(* Multiprocessor Mach (Sections 2 and 5.2): threads of one task running
   in parallel on a 4-CPU NS32082 (Sequent Balance flavour), sharing the
   address space, with TLB consistency maintained by each of the three
   strategies the paper describes.

     dune exec examples/multiprocessor.exe *)

open Mach_hw
open Mach_core

let check = function
  | Ok v -> v
  | Error e -> failwith (Kr.to_string e)

let kb = 1024

let run_with strategy =
  let machine =
    Machine.create ~arch:Arch.ns32082 ~memory_frames:8192 ~cpus:4
      ~shootdown:strategy ()
  in
  let kernel = Kernel.create ~page_multiple:8 machine in
  let sys = Kernel.sys kernel in
  let task = Kernel.create_task kernel ~name:"workers" () in
  Kernel.run_task kernel ~cpu:0 task;
  let size = 64 * kb in
  let addr = check (Vm_user.allocate sys task ~size ~anywhere:true ()) in
  let ps = Kernel.page_size kernel in
  (* Populate the region first (single threaded). *)
  for w = 0 to 3 do
    let base = addr + (w * size / 4) in
    for i = 0 to (size / 4 / ps) - 1 do
      Machine.write machine ~cpu:0 ~va:(base + (i * ps))
        (Bytes.of_string (Printf.sprintf "w%d-%02d" w i))
    done
  done;
  Machine.reset_clocks machine;
  let sched = Sched.create kernel in
  (* Four reader threads sweep disjoint slices of the shared region in
     parallel... *)
  for w = 0 to 3 do
    let base = addr + (w * size / 4) in
    ignore
      (Sched.spawn sched ~task ~name:(Printf.sprintf "worker%d" w)
         (List.init (size / 4 / ps) (fun i ->
              fun ~cpu ->
                ignore (Machine.read machine ~cpu ~va:(base + (i * ps)) ~len:5))))
  done;
  (* ...while a fifth thread repeatedly revokes and restores write
     access, forcing TLB shootdowns under each strategy. *)
  ignore
    (Sched.spawn sched ~task ~name:"protector"
       (List.concat
          (List.init 4 (fun _ ->
               [ (fun ~cpu:_ ->
                    check
                      (Vm_user.protect sys task ~addr ~size ~set_max:false
                         ~prot:Prot.read_only));
                 (fun ~cpu:_ ->
                    check
                      (Vm_user.protect sys task ~addr ~size ~set_max:false
                         ~prot:Prot.read_write)) ]))));
  Sched.run sched ();
  (* All writes landed despite the interleaved protection changes. *)
  let ok = ref true in
  for w = 0 to 3 do
    for i = 0 to (size / 4 / ps) - 1 do
      let got =
        Bytes.to_string
          (Machine.read machine ~cpu:0
             ~va:(addr + (w * size / 4) + (i * ps))
             ~len:5)
      in
      if got <> Printf.sprintf "w%d-%02d" w i then ok := false
    done
  done;
  let s = Machine.stats machine in
  Printf.printf
    "%-28s data %s; IPIs=%3d deferred=%3d stale=%2d elapsed=%6.2f ms\n"
    (match strategy with
     | Machine.Immediate_ipi -> "interrupt all CPUs"
     | Machine.Deferred_timer -> "defer to timer tick"
     | Machine.Lazy_local -> "temporary inconsistency")
    (if !ok then "intact" else "CORRUPT")
    s.Machine.ipis s.Machine.deferred_flushes s.Machine.stale_tlb_uses
    (Machine.elapsed_ms machine)

let () =
  print_endline
    "4 worker threads + 1 protection-flipping thread on a 4-CPU NS32082:";
  List.iter run_with
    [ Machine.Immediate_ipi; Machine.Deferred_timer; Machine.Lazy_local ];
  print_endline "multiprocessor done"
