(* Read/write memory sharing between tasks via inheritance (Sections 2.1
   and 3.4): a parent marks a region [Shared], forks, and parent and child
   communicate through the sharing map — on two CPUs of a multiprocessor.
   A second region uses the default [Copy] inheritance for contrast.

     dune exec examples/shared_memory.exe *)

open Mach_hw
open Mach_core

let check = function
  | Ok v -> v
  | Error e -> failwith (Kr.to_string e)

let () =
  (* A two-processor NS32082 machine (Sequent Balance flavour). *)
  let machine =
    Machine.create ~arch:Arch.ns32082 ~memory_frames:8192 ~cpus:2 ()
  in
  let kernel = Kernel.create ~page_multiple:8 machine in
  let sys = Kernel.sys kernel in
  let parent = Kernel.create_task kernel ~name:"parent" () in
  Kernel.run_task kernel ~cpu:0 parent;

  let shared = check (Vm_user.allocate sys parent ~size:8192 ~anywhere:true ()) in
  let private_ = check (Vm_user.allocate sys parent ~size:8192 ~anywhere:true ()) in
  check (Vm_user.inherit_ sys parent ~addr:shared ~size:8192 Inheritance.Shared);
  Machine.write machine ~cpu:0 ~va:shared (Bytes.of_string "from parent");
  Machine.write machine ~cpu:0 ~va:private_ (Bytes.of_string "parent private");

  let child = Kernel.fork_task kernel ~cpu:0 parent in
  (* Child runs on CPU 1, parent stays on CPU 0. *)
  Kernel.run_task kernel ~cpu:1 child;

  Printf.printf "child (cpu 1) sees shared: %s\n"
    (Bytes.to_string (Machine.read machine ~cpu:1 ~va:shared ~len:11));
  Machine.write machine ~cpu:1 ~va:shared (Bytes.of_string "from child!");
  Printf.printf "parent (cpu 0) sees shared: %s\n"
    (Bytes.to_string (Machine.read machine ~cpu:0 ~va:shared ~len:11));

  (* The Copy region went copy-on-write: the child's edit stays private. *)
  Machine.write machine ~cpu:1 ~va:private_ (Bytes.of_string "child copy    ");
  Printf.printf "parent private region still reads: %s\n"
    (Bytes.to_string (Machine.read machine ~cpu:0 ~va:private_ ~len:14));

  (* vm_regions shows one region backed by a sharing map. *)
  List.iter
    (fun r ->
       if r.Vm_map.ri_shared then
         Printf.printf "region 0x%x-0x%x is backed by a sharing map\n"
           r.Vm_map.ri_start r.Vm_map.ri_end)
    (Vm_user.regions sys parent);

  (* Inheritance None_: the grandchild doesn't get the region at all. *)
  check (Vm_user.inherit_ sys child ~addr:private_ ~size:8192 Inheritance.None_);
  let grandchild = Kernel.fork_task kernel ~cpu:1 child in
  Kernel.run_task kernel ~cpu:1 grandchild;
  (try
     ignore (Machine.read machine ~cpu:1 ~va:private_ ~len:4);
     print_endline "BUG: grandchild read unallocated memory"
   with Machine.Memory_violation _ ->
     print_endline "grandchild's copy of the None_ region is unallocated");

  Printf.printf "simulated time: %.2f ms; machine faults: %d\n"
    (Kernel.elapsed_ms kernel) (Machine.stats machine).Machine.faults;
  Kernel.terminate_task kernel ~cpu:0 grandchild;
  Kernel.terminate_task kernel ~cpu:0 child;
  Kernel.terminate_task kernel ~cpu:0 parent;
  print_endline "shared_memory done"
