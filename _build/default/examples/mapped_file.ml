(* Memory-mapped files through the vnode pager (Section 3.3): map a file
   into two tasks, observe shared pages, dirty them, and let the pageout
   daemon write them back to the file system.  Also demonstrates the
   object cache making re-mapping cheap.

     dune exec examples/mapped_file.exe *)

open Mach_hw
open Mach_core
open Mach_pagers

let check = function
  | Ok v -> v
  | Error e -> failwith (Kr.to_string e)

let () =
  let machine = Machine.create ~arch:Arch.vax8200 ~memory_frames:8192 () in
  let kernel = Kernel.create ~page_multiple:8 machine in
  let sys = Kernel.sys kernel in
  let fs = Simfs.create machine () in
  Simfs.install_file fs ~name:"/etc/motd"
    ~data:(Bytes.of_string (String.concat "\n"
      [ "Mach is a registered trademark of nobody in this simulation.";
        String.make 8192 '-' ]));

  (* Map the file into a task and read through the mapping. *)
  let reader = Kernel.create_task kernel ~name:"reader" () in
  Kernel.run_task kernel ~cpu:0 reader;
  let addr, size = check (Vnode_pager.map_file sys fs reader ~name:"/etc/motd" ()) in
  Printf.printf "mapped /etc/motd (%d bytes) at 0x%x\n" size addr;
  let first_line = Machine.read machine ~cpu:0 ~va:addr ~len:60 in
  Printf.printf "first line: %s\n" (Bytes.to_string first_line);

  (* A second task mapping the same file reaches the same memory object:
     the page faulted in by [reader] is already resident. *)
  let other = Kernel.create_task kernel ~name:"other" () in
  Kernel.run_task kernel ~cpu:0 other;
  let addr2, _ = check (Vnode_pager.map_file sys fs other ~name:"/etc/motd" ()) in
  let disk_before = Simdisk.reads (Simfs.disk fs) in
  ignore (Machine.read machine ~cpu:0 ~va:addr2 ~len:60);
  Printf.printf "second task read the shared page with %d extra disk reads\n"
    (Simdisk.reads (Simfs.disk fs) - disk_before);

  (* Dirty the mapping and force the pageout daemon to clean it. *)
  Machine.write machine ~cpu:0 ~va:addr2 (Bytes.of_string "EDITED!");
  Kernel.terminate_task kernel ~cpu:0 other;
  Kernel.terminate_task kernel ~cpu:0 reader;
  (* With no mappings left the object sits in the cache; push it out so
     the dirty page is written back. *)
  Vm_pageout.deactivate_some sys ~count:1000;
  Vm_pageout.run sys ~wanted:1000;
  Vm_object.drain_cache sys;
  let back = Simfs.read fs ~cpu:0 ~name:"/etc/motd" ~offset:0 ~len:7 in
  Printf.printf "file now begins with: %s\n" (Bytes.to_string back);

  (* Re-mapping a cached file costs no disk I/O at all. *)
  Simfs.install_file fs ~name:"/bin/tool" ~data:(Bytes.make 65536 'T');
  let exec_once () =
    let t = Kernel.create_task kernel ~name:"exec" () in
    Kernel.run_task kernel ~cpu:0 t;
    let a, s = check (Vnode_pager.map_file sys fs t ~name:"/bin/tool" ()) in
    let ps = Kernel.page_size kernel in
    let rec sweep va =
      if va < a + s then begin
        Machine.touch machine ~cpu:0 ~va ~write:false;
        sweep (va + ps)
      end
    in
    sweep a;
    Kernel.terminate_task kernel ~cpu:0 t
  in
  let d0 = Simdisk.reads (Simfs.disk fs) in
  exec_once ();
  let cold = Simdisk.reads (Simfs.disk fs) - d0 in
  exec_once ();
  let warm = Simdisk.reads (Simfs.disk fs) - d0 - cold in
  Printf.printf
    "mapping /bin/tool: %d disk reads cold, %d warm (object cache)\n" cold
    warm;
  print_endline "mapped_file done"
