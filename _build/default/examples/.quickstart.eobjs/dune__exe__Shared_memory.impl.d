examples/shared_memory.ml: Arch Bytes Inheritance Kernel Kr List Mach_core Mach_hw Machine Printf Vm_map Vm_user
