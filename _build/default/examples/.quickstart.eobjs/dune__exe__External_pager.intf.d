examples/external_pager.mli:
