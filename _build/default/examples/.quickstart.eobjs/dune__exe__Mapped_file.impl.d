examples/mapped_file.ml: Arch Bytes Kernel Kr Mach_core Mach_hw Mach_pagers Machine Printf Simdisk Simfs String Vm_object Vm_pageout Vnode_pager
