examples/message_passing.ml: Arch Bytes Ipc Kernel Kr Mach_core Mach_hw Mach_ipc Machine Printf Vm_user
