examples/quickstart.ml: Arch Bytes Inheritance Kernel Kr List Mach_core Mach_hw Machine Printf Prot Vm_map Vm_user
