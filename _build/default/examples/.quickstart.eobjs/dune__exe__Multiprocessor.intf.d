examples/multiprocessor.mli:
