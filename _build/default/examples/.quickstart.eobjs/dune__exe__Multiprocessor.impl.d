examples/multiprocessor.ml: Arch Bytes Kernel Kr List Mach_core Mach_hw Machine Printf Prot Sched Vm_user
