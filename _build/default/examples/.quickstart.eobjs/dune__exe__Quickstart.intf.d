examples/quickstart.mli:
