examples/network_memory.mli:
