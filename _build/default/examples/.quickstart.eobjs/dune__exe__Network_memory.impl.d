examples/network_memory.ml: Arch Bytes Char Kernel Kr List Mach_core Mach_hw Mach_net Mach_pagers Machine Net_pager Netlink Printf Simfs Vm_object Vm_pageout
