examples/external_pager.ml: Arch Bytes Char Hashtbl Kernel Kr Mach_core Mach_hw Mach_pagers Machine Port_pager Printf Vm_pageout Vm_user
