(* A user-state external pager (Section 3.3, Tables 3-1/3-2): page faults
   on the mapped object become pager_data_request messages on the pager's
   port; the pager task answers with pager_data_provided /
   pager_data_unavailable; pageouts arrive as pager_data_write messages.

     dune exec examples/external_pager.exe *)

open Mach_hw
open Mach_core
open Mach_pagers

let check = function
  | Ok v -> v
  | Error e -> failwith (Kr.to_string e)

let () =
  let machine = Machine.create ~arch:Arch.rt_pc ~memory_frames:2048 () in
  let kernel = Kernel.create ~page_multiple:2 machine in
  let sys = Kernel.sys kernel in
  let ps = Kernel.page_size kernel in

  (* The "trivial read/write object mechanism" the paper mentions: a
     store indexed by offset, driven entirely by messages. *)
  let pager, store = Port_pager.trivial_store sys ~name:"demo-pager" () in
  Hashtbl.replace store 0 (Bytes.of_string "data served by a user-state pager");
  Hashtbl.replace store ps (Bytes.make ps 'B');

  let task = Kernel.create_task kernel ~name:"client" () in
  Kernel.run_task kernel ~cpu:0 task;
  let addr =
    check
      (Vm_user.allocate_with_pager sys task ~pager ~offset:0 ~size:(4 * ps)
         ~anywhere:true ())
  in
  Printf.printf "mapped external-pager object at 0x%x\n" addr;

  (* Fault in page 0: one pager_data_request/pager_data_provided round. *)
  Printf.printf "page 0 reads: %s\n"
    (Bytes.to_string (Machine.read machine ~cpu:0 ~va:addr ~len:33));
  (* Page 2 has no data: the pager answers unavailable and the kernel
     zero fills. *)
  Printf.printf "page 2 first byte: %d (zero filled)\n"
    (Char.code (Machine.read_byte machine ~cpu:0 ~va:(addr + (2 * ps))));
  Printf.printf "pager served %d data requests so far\n"
    (Port_pager.requests_served pager);

  (* Dirty page 1 and force pageout: the pager receives a
     pager_data_write message and its store is updated. *)
  Machine.write machine ~cpu:0 ~va:(addr + ps) (Bytes.of_string "MODIFIED");
  Vm_pageout.deactivate_some sys ~count:1000;
  Vm_pageout.run sys ~wanted:1000;
  let written = Hashtbl.find store ps in
  Printf.printf "pager's store for page 1 now begins: %s\n"
    (Bytes.to_string (Bytes.sub written 0 8));

  (* And the evicted page comes back from the pager on the next touch. *)
  Printf.printf "page 1 re-faulted reads: %s\n"
    (Bytes.to_string (Machine.read machine ~cpu:0 ~va:(addr + ps) ~len:8));
  Kernel.terminate_task kernel ~cpu:0 task;
  print_endline "external_pager done"
