(* Section 6 — integrating loosely-coupled systems: a task maps a memory
   object whose pager lives on another machine.  Pages cross the network
   only when referenced (copy-on-reference), writes propagate back, and a
   second mapping on the client is served from the local page cache.

     dune exec examples/network_memory.exe *)

open Mach_hw
open Mach_core
open Mach_net
open Mach_pagers

let check = function
  | Ok v -> v
  | Error e -> failwith (Kr.to_string e)

let kb = 1024

let () =
  (* Two VAX 8200s on 10 Mbit Ethernet: a file server and a client. *)
  let server_machine = Machine.create ~arch:Arch.vax8200 ~memory_frames:8192 () in
  let client_machine = Machine.create ~arch:Arch.vax8200 ~memory_frames:8192 () in
  let server_kernel = Kernel.create ~page_multiple:8 server_machine in
  let client_kernel = Kernel.create ~page_multiple:8 client_machine in
  let link = Netlink.create [ server_machine; client_machine ] in
  let server_fs = Simfs.create server_machine () in
  Simfs.install_file server_fs ~name:"/export/dataset"
    ~data:(Bytes.init (256 * kb) (fun i -> Char.chr (65 + (i / 4096 mod 26))));
  let server =
    Net_pager.serve link ~node:0 (Kernel.sys server_kernel) server_fs
  in

  (* The client maps the remote file; nothing crosses the wire yet. *)
  let sys = Kernel.sys client_kernel in
  let task = Kernel.create_task client_kernel ~name:"client" () in
  Kernel.run_task client_kernel ~cpu:0 task;
  let addr, size =
    check (Net_pager.map_remote link ~node:1 sys task server
             ~name:"/export/dataset" ())
  in
  Printf.printf "mapped remote /export/dataset (%dK) at 0x%x; %d bytes moved\n"
    (size / kb) addr (Netlink.bytes_moved link);

  (* Touch three pages: exactly three pages cross the network. *)
  let ps = Kernel.page_size client_kernel in
  List.iter
    (fun page ->
       let c = Machine.read_byte client_machine ~cpu:0 ~va:(addr + (page * ps)) in
       Printf.printf "page %2d first byte: %c\n" page c)
    [ 0; 17; 40 ];
  Printf.printf "after 3 touches: %d exchanges, %d bytes (copy-on-reference)\n"
    (Netlink.messages link) (Netlink.bytes_moved link);

  (* A second task on the client reuses the locally cached pages. *)
  let task2 = Kernel.create_task client_kernel ~name:"client2" () in
  Kernel.run_task client_kernel ~cpu:0 task2;
  let addr2, _ =
    check (Net_pager.map_remote link ~node:1 sys task2 server
             ~name:"/export/dataset" ())
  in
  let before = Netlink.messages link in
  ignore (Machine.read_byte client_machine ~cpu:0 ~va:addr2);
  Printf.printf "second client task touched page 0 with %d network messages\n"
    (Netlink.messages link - before);

  (* Dirty a page and push it back to the server. *)
  Kernel.run_task client_kernel ~cpu:0 task;
  Machine.write client_machine ~cpu:0 ~va:addr (Bytes.of_string "CLIENT-EDIT");
  Kernel.terminate_task client_kernel ~cpu:0 task;
  Kernel.terminate_task client_kernel ~cpu:0 task2;
  Vm_pageout.deactivate_some sys ~count:10_000;
  Vm_pageout.run sys ~wanted:10_000;
  Vm_object.drain_cache sys;
  Printf.printf "server file now begins: %s\n"
    (Bytes.to_string
       (Simfs.read server_fs ~cpu:0 ~name:"/export/dataset" ~offset:0 ~len:11));

  (* Contrast with eagerly fetching the whole file. *)
  Netlink.reset_counters link;
  Machine.reset_clocks client_machine;
  ignore (Net_pager.fetch_whole link ~node:1 sys server ~name:"/export/dataset");
  Printf.printf "eager whole-file fetch: %d bytes, %.2f simulated ms\n"
    (Netlink.bytes_moved link) (Machine.elapsed_ms client_machine);
  print_endline "network_memory done"
