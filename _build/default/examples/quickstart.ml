(* Quickstart: boot a simulated VAX, create a task, allocate memory,
   touch it through the MMU, fork copy-on-write, and read the paper-style
   statistics.

     dune exec examples/quickstart.exe *)

open Mach_hw
open Mach_core

let check = function
  | Ok v -> v
  | Error e -> failwith (Kr.to_string e)

let () =
  (* A MicroVAX II with 8 MB of memory and a Mach kernel using 4 KB
     machine-independent pages over the VAX's 512-byte hardware pages. *)
  let machine = Machine.create ~arch:Arch.uvax2 ~memory_frames:16384 () in
  let kernel = Kernel.create ~page_multiple:8 machine in
  let sys = Kernel.sys kernel in
  Printf.printf "booted Mach on %s: page size %d (hardware %d)\n"
    (Machine.arch machine).Arch.name (Kernel.page_size kernel)
    (Machine.arch machine).Arch.hw_page_size;

  (* vm_allocate 256 KB of zero-filled memory. *)
  let task = Kernel.create_task kernel ~name:"demo" () in
  Kernel.run_task kernel ~cpu:0 task;
  let addr = check (Vm_user.allocate sys task ~size:(256 * 1024) ~anywhere:true ()) in
  Printf.printf "vm_allocate: 256K at 0x%x\n" addr;

  (* Touch it through the simulated MMU: each page demand-zero faults. *)
  Machine.write machine ~cpu:0 ~va:addr (Bytes.of_string "hello, mach");
  Printf.printf "read back: %s\n"
    (Bytes.to_string (Machine.read machine ~cpu:0 ~va:addr ~len:11));

  (* Fork: the child is a copy-on-write copy of the parent. *)
  let child = Kernel.fork_task kernel ~cpu:0 task in
  Kernel.run_task kernel ~cpu:0 child;
  Printf.printf "child sees: %s\n"
    (Bytes.to_string (Machine.read machine ~cpu:0 ~va:addr ~len:11));
  Machine.write machine ~cpu:0 ~va:addr (Bytes.of_string "child edit!");
  Kernel.run_task kernel ~cpu:0 task;
  Printf.printf "after child wrote, parent still sees: %s\n"
    (Bytes.to_string (Machine.read machine ~cpu:0 ~va:addr ~len:11));

  (* vm_protect: make the region read-only and watch a write fail. *)
  check
    (Vm_user.protect sys task ~addr ~size:4096 ~set_max:false
       ~prot:Prot.read_only);
  (try
     Machine.write_byte machine ~cpu:0 ~va:addr 'X';
     print_endline "BUG: write succeeded"
   with Machine.Memory_violation { reason; _ } ->
     Printf.printf "write to read-only page rejected: %s\n" reason);

  (* vm_regions and vm_statistics, as in Table 2-1. *)
  List.iter
    (fun r ->
       Printf.printf "region 0x%x-0x%x %s inherit=%s%s\n"
         r.Vm_map.ri_start r.Vm_map.ri_end
         (Prot.to_string r.Vm_map.ri_prot)
         (Inheritance.to_string r.Vm_map.ri_inherit)
         (if r.Vm_map.ri_needs_copy then " (copy-on-write)" else ""))
    (Vm_user.regions sys task);
  let st = Vm_user.statistics sys in
  Printf.printf
    "faults=%d zero_fills=%d cow_copies=%d (%.2f simulated ms)\n"
    st.Vm_user.vs_faults st.Vm_user.vs_zero_fills st.Vm_user.vs_cow_copies
    (Kernel.elapsed_ms kernel);
  Kernel.terminate_task kernel ~cpu:0 child;
  Kernel.terminate_task kernel ~cpu:0 task;
  print_endline "quickstart done"
