(* The duality of memory and communication (Section 2): a 4 MB region is
   sent between tasks in a single message.  Out of line, the transfer is
   copy-on-write remapping — no data moves until someone writes; inline it
   is two full copies.  The example prints the simulated cost of both.

     dune exec examples/message_passing.exe *)

open Mach_hw
open Mach_core
open Mach_ipc

let check = function
  | Ok v -> v
  | Error e -> failwith (Kr.to_string e)

let mb = 1024 * 1024

let () =
  let machine = Machine.create ~arch:Arch.vax8650 ~memory_frames:32768 () in
  let kernel = Kernel.create ~page_multiple:8 machine in
  let sys = Kernel.sys kernel in
  let ps = Kernel.page_size kernel in
  let sender = Kernel.create_task kernel ~name:"sender" () in
  let receiver = Kernel.create_task kernel ~name:"receiver" () in
  Kernel.run_task kernel ~cpu:0 sender;

  let size = 4 * mb in
  let addr = check (Vm_user.allocate sys sender ~size ~anywhere:true ()) in
  let rec dirty va =
    if va < addr + size then begin
      Machine.write machine ~cpu:0 ~va (Bytes.of_string "payload!");
      dirty (va + ps)
    end
  in
  dirty addr;
  Printf.printf "sender dirtied %d MB\n" (size / mb);

  let port = Ipc.create_port ~name:"service" () in
  Machine.reset_clocks machine;
  check (Ipc.send_region sys sender port ~tag:"bulk-transfer" ~addr ~size ());
  let send_ms = Kernel.elapsed_ms kernel in
  let raddr, rsize = check (Ipc.receive_region sys receiver port) in
  Printf.printf
    "sent %d MB out-of-line in %.2f simulated ms (COW remap, no copy)\n"
    (size / mb) send_ms;

  (* The receiver reads the data lazily; pages materialise on touch. *)
  Kernel.run_task kernel ~cpu:0 receiver;
  Printf.printf "receiver mapped it at 0x%x (%d bytes); first page: %s\n"
    raddr rsize
    (Bytes.to_string (Machine.read machine ~cpu:0 ~va:raddr ~len:8));

  (* Writes by the receiver do not disturb the sender (copy-on-write). *)
  Machine.write machine ~cpu:0 ~va:raddr (Bytes.of_string "EDITED!!");
  Kernel.run_task kernel ~cpu:0 sender;
  Printf.printf "sender's copy still reads: %s\n"
    (Bytes.to_string (Machine.read machine ~cpu:0 ~va:addr ~len:8));

  (* Same transfer inline, for contrast. *)
  Machine.reset_clocks machine;
  let data = check (Vm_user.read sys sender ~addr ~size) in
  Ipc.send sys port (Ipc.message "bulk-inline" ~items:[ Ipc.Inline data ]);
  (match Ipc.receive sys port with
   | Some m -> Ipc.discard_message sys m
   | None -> assert false);
  Printf.printf "the same transfer inline costs %.2f simulated ms\n"
    (Kernel.elapsed_ms kernel);
  Kernel.terminate_task kernel ~cpu:0 receiver;
  Kernel.terminate_task kernel ~cpu:0 sender;
  print_endline "message_passing done"
