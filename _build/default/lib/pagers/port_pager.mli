(** External pagers speaking the message interface of Tables 3-1 and 3-2.

    A pager may be an external user-state task: the kernel sends
    [pager_data_request]/[pager_data_write] messages on the memory
    object's {e paging_object} port, and the pager answers with
    [pager_data_provided]/[pager_data_unavailable] on the request port.
    The simulation is single-threaded, so after posting a request the
    kernel runs the pager task's handler on queued messages until the
    reply arrives.

    "Simple pagers can be implemented by largely ignoring the more
    sophisticated interface calls and implementing a trivial read/write
    object mechanism" — {!trivial_store} is exactly that, and doubles as
    the example external pager. *)

type handler = Mach_ipc.Ipc.message -> Mach_ipc.Ipc.message option
(** The pager task's service routine ([pager_server] of Table 3-1): takes
    one incoming kernel message, optionally returns the reply to post on
    the message's reply port. *)

val make :
  Mach_core.Vm_sys.t -> name:string -> ?should_cache:bool ->
  handler:handler -> unit -> Mach_core.Types.pager
(** [make sys ~name ~handler ()] wraps [handler] as a kernel-usable pager:
    page faults on objects managed by it become [pager_data_request]
    messages; pageouts become [pager_data_write] messages. *)

val trivial_store :
  Mach_core.Vm_sys.t -> name:string -> unit ->
  Mach_core.Types.pager * (int, Bytes.t) Hashtbl.t
(** [trivial_store sys ~name ()] is a complete external pager backed by an
    offset-indexed table (returned alongside, so tests and examples can
    pre-load or inspect it).  Unknown offsets answer
    [pager_data_unavailable]. *)

val requests_served : Mach_core.Types.pager -> int
(** How many [pager_data_request] messages this external pager has
    answered; 0 for pagers not made by this module. *)
