lib/pagers/vnode_pager.mli: Bytes Mach_core Simfs
