lib/pagers/simdisk.mli: Bytes Mach_hw
