lib/pagers/simfs.mli: Bytes Mach_hw Simdisk
