lib/pagers/port_pager.mli: Bytes Hashtbl Mach_core Mach_ipc
