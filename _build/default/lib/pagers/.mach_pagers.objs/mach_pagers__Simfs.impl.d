lib/pagers/simfs.ml: Array Bytes Hashtbl Simdisk
