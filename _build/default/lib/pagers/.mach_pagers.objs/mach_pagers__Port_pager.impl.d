lib/pagers/port_pager.ml: Bytes Hashtbl Ipc Mach_core Mach_ipc Types
