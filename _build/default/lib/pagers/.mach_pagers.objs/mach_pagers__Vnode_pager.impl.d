lib/pagers/vnode_pager.ml: Bytes Hashtbl Kr Mach_core Page_io Printf Resident Simfs Types Vm_object Vm_sys Vm_user
