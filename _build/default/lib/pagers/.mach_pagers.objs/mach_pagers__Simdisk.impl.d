lib/pagers/simdisk.ml: Bytes Hashtbl Mach_hw Machine
