open Mach_core
open Types

(* Memoized pager per (file system, file name): the paging_name identity
   that leads all mappings of a file to the same memory object. *)
let pagers : (int * string, pager) Hashtbl.t = Hashtbl.create 64

let make (sys : Vm_sys.t) fs ~name =
  let id = fresh_pager_id () in
  let cpu () = Vm_sys.current_cpu sys in
  {
    pgr_id = id;
    pgr_name = Printf.sprintf "vnode:%s" name;
    pgr_request =
      (fun ~offset ~length ->
         match Simfs.file_size fs ~name with
         | exception Not_found -> Data_unavailable
         | size ->
           if offset >= size then Data_unavailable
           else
             Data_provided
               (Simfs.read fs ~cpu:(cpu ()) ~name ~offset
                  ~len:(min length (size - offset))));
    pgr_write =
      (fun ~offset ~data ->
         (* The inode pager never grows the file: a mapped page's tail
            beyond end of file is zero-fill memory, not file contents. *)
         match Simfs.file_size fs ~name with
         | exception Not_found -> ()
         | size ->
           if offset < size then
             let len = min (Bytes.length data) (size - offset) in
             Simfs.write fs ~cpu:(cpu ()) ~name ~offset
               ~data:(Bytes.sub data 0 len));
    pgr_should_cache = ref true;
  }

let for_file sys fs ~name =
  if not (Simfs.exists fs ~name) then raise Not_found;
  let key = (Simfs.fs_id fs, name) in
  match Hashtbl.find_opt pagers key with
  | Some p -> p
  | None ->
    let p = make sys fs ~name in
    Hashtbl.add pagers key p;
    p

let map_file sys fs task ~name ?at ?(copy = false) () =
  match for_file sys fs ~name with
  | exception Not_found -> Error Kr.Invalid_argument
  | pager ->
    let size = Simfs.file_size fs ~name in
    let anywhere = at = None in
    (match
       Vm_user.allocate_with_pager sys task ~pager ~offset:0 ?at ~size
         ~anywhere ~copy ()
     with
     | Ok addr -> Ok (addr, size)
     | Error _ as e -> e)

(* A read() through the file's memory object: hit resident pages for the
   price of a copy; fill missing pages from the pager and leave them
   resident (and the object cached), so the second read is cheap. *)
let read_through_object sys fs ~name ~offset ~len =
  let pager = for_file sys fs ~name in
  let size = Simfs.file_size fs ~name in
  let obj = Vm_object.create_with_pager sys pager ~size in
  let len = if offset >= size then 0 else min len (size - offset) in
  let ps = sys.Vm_sys.page_size in
  let buf = Bytes.create len in
  let rec loop pos =
    if pos < len then begin
      let abs = offset + pos in
      let page_off = abs - (abs mod ps) in
      let chunk = min (ps - (abs mod ps)) (len - pos) in
      let page =
        match Vm_object.lookup_resident sys obj ~offset:page_off with
        | Some p -> p
        | None ->
          let p = Vm_sys.grab_page sys in
          Resident.insert sys.Vm_sys.resident p ~obj ~offset:page_off;
          (match pager.pgr_request ~offset:page_off ~length:ps with
           | Data_provided data -> Page_io.fill sys p data
           | Data_unavailable -> Page_io.zero sys p);
          sys.Vm_sys.stats.Vm_sys.pager_reads <-
            sys.Vm_sys.stats.Vm_sys.pager_reads + 1;
          Resident.enqueue sys.Vm_sys.resident p Q_active;
          p
      in
      Bytes.blit (Page_io.copy_out sys page ~off:(abs mod ps) ~len:chunk) 0
        buf pos chunk;
      loop (pos + chunk)
    end
  in
  loop 0;
  Vm_object.deallocate sys obj;
  buf
