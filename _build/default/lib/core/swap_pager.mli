(** The default pager.

    Memory with no pager is automatically zero filled, and page-out of
    anonymous memory goes to a default pager (Section 3.3; Mach's used
    4.3bsd file systems, eliminating separate paging partitions).  Here
    the backing store is an in-memory table whose transfers are charged as
    disk I/O, so evicted anonymous pages survive and cost what swap
    costs. *)

val make : Vm_sys.t -> name:string -> Types.pager
(** [make sys ~name] is a fresh default-pager instance for one memory
    object.  Reads of never-written offsets answer [Data_unavailable]
    (zero fill). *)

val stored_bytes : Types.pager -> int
(** [stored_bytes p] is how much backing store [p] currently holds; 0 for
    pagers not made by this module.  Used by tests. *)
