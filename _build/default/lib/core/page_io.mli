(** Moving data between machine-independent pages and byte buffers.

    A machine-independent page spans several hardware frames; these
    helpers hide the frame arithmetic for the fault handler, the pageout
    daemon, pagers and file I/O paths.  All charge the architecture's
    bulk-move cost. *)

val fill : Vm_sys.t -> Types.page -> Bytes.t -> unit
(** [fill sys p data] copies [data] into the page (zero padding any
    tail). *)

val contents : Vm_sys.t -> Types.page -> Bytes.t
(** [contents sys p] is the whole page as bytes. *)

val copy_out : Vm_sys.t -> Types.page -> off:int -> len:int -> Bytes.t
(** [copy_out sys p ~off ~len] extracts a sub-range of the page.  The
    range must lie within the page. *)

val copy_in : Vm_sys.t -> Types.page -> off:int -> Bytes.t -> unit
(** [copy_in sys p ~off data] overwrites a sub-range of the page. *)

val zero : Vm_sys.t -> Types.page -> unit
(** [zero sys p] zero-fills the page ([pmap_zero_page] per frame). *)

val copy : Vm_sys.t -> src:Types.page -> dst:Types.page -> unit
(** [copy sys ~src ~dst] copies a whole page ([pmap_copy_page] per
    frame). *)
