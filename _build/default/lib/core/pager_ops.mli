(** Kernel-side implementations of the remaining pager-to-kernel calls of
    Table 3-2.

    A pager manages "virtually all aspects of a memory object including
    physical memory caching"; beyond supplying data it can force cached
    data out, destroy it, lock ranges against access, and control
    retention.  These entry points are what the kernel does when such a
    message arrives on the paging_object_request port. *)

open Types

val clean_request : Vm_sys.t -> obj -> offset:int -> length:int -> int
(** [pager_clean_request]: force modified physically cached data in
    [\[offset, offset+length)] back to the memory object via
    [pager_data_write].  Returns the number of pages written.  Pages stay
    resident and their modify bits are cleared. *)

val flush_request : Vm_sys.t -> obj -> offset:int -> length:int -> int
(** [pager_flush_request]: force physically cached data to be destroyed.
    Dirty pages are {e not} written back — the pager asked for
    destruction.  Every pmap mapping is removed first.  Returns the
    number of pages flushed. *)

val set_caching : Vm_sys.t -> obj -> bool -> unit
(** [pager_cache]: tell the kernel whether to retain knowledge about the
    memory object after all references to it are gone.  Turning caching
    off while the object is already cached pushes it out of the cache. *)

val lock_request :
  Vm_sys.t -> obj -> offset:int -> length:int -> lock:Mach_hw.Prot.t ->
  unit
(** [pager_data_lock]: prevent the listed kinds of access to the range
    until a fresh [pmap_enter] grants them again — concretely, every
    current hardware mapping of those pages is reduced by removing the
    permissions in [lock].  (A full implementation would also hold new
    faults until unlock; the simulation re-faults immediately, which
    preserves the data-visibility semantics.) *)

val readonly : Vm_sys.t -> obj -> unit
(** [pager_readonly]: the pager will never accept data writes; the kernel
    must copy on any write attempt.  Realised by write-protecting current
    mappings and marking the object so the fault path shadows instead of
    dirtying it. *)

val is_readonly : obj -> bool
(** Whether {!readonly} was applied (tests). *)
