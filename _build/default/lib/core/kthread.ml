type status = Ready | Running of int | Suspended | Terminated

type step = cpu:int -> unit

type t = {
  th_id : int;
  th_name : string;
  th_task : Task.t;
  mutable th_status : status;
  mutable th_steps : step list;
}

let next_id = ref 0

let make ~task ?name steps =
  incr next_id;
  let name =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "thread-%d" !next_id
  in
  { th_id = !next_id; th_name = name; th_task = task; th_status = Ready;
    th_steps = steps }

let id t = t.th_id
let name t = t.th_name
let task t = t.th_task
let status t = t.th_status

let steps_remaining t = List.length t.th_steps

let suspend t =
  match t.th_status with
  | Terminated -> ()
  | Ready | Running _ | Suspended -> t.th_status <- Suspended

let resume t =
  match t.th_status with
  | Suspended -> t.th_status <- Ready
  | Ready | Running _ | Terminated -> ()

let run_one_step t ~cpu =
  match t.th_steps with
  | [] -> t.th_status <- Terminated
  | step :: rest ->
    t.th_status <- Running cpu;
    step ~cpu;
    t.th_steps <- rest;
    (match t.th_status with
     | Suspended -> () (* the step suspended itself *)
     | Running _ | Ready ->
       t.th_status <- (if rest = [] then Terminated else Ready)
     | Terminated -> ())
