(** Inheritance attributes for address-space regions.

    Inheritance may be specified as shared, copy or none, on a per-page
    basis (Section 2.1): [Shared] pages are shared read/write between
    parent and child; [Copy] pages are logically copied by value (realised
    with copy-on-write); [None] pages are not passed to the child, whose
    corresponding addresses are left unallocated. *)

type t =
  | Shared  (** read/write shared with children *)
  | Copy    (** copied by value (copy-on-write) — the default *)
  | None_   (** child's range is left unallocated *)

val default : t
(** [Copy]: "by default, all inheritance values for an address space are
    set to copy", preserving UNIX fork semantics. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

val to_string : t -> string
