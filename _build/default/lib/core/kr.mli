(** Kernel return codes, in the style of Mach's [kern_return_t].

    The user-visible VM operations of Table 2-1 report failure through
    these codes rather than exceptions, mirroring the message-based kernel
    interface. *)

type t =
  | Invalid_address     (** address out of range or not page aligned *)
  | No_space            (** no room in the address map *)
  | Protection_failure  (** requested access exceeds the allowed maximum *)
  | Invalid_argument    (** malformed request (e.g. negative size) *)
  | Resource_shortage   (** out of physical memory and backing store *)
  | Memory_error        (** the pager failed to provide data *)

val to_string : t -> string

val pp : Format.formatter -> t -> unit
