(** A round-robin multiprocessor scheduler over simulated threads.

    Dispatches ready threads onto the machine's CPUs one step at a time:
    before a step runs, the thread's task becomes current on that CPU
    ([pmap_activate], fault routing), so threads of one task genuinely
    share an address space while threads of different tasks context
    switch.  The simulation is deterministic: CPUs are filled in order
    and the ready queue is FIFO. *)

type t

val create : Kernel.t -> t
(** [create kernel] is a scheduler over [kernel]'s machine. *)

val spawn : t -> task:Task.t -> ?name:string -> Kthread.step list -> Kthread.t
(** [spawn t ~task steps] creates a thread and enqueues it. *)

val alive : t -> int
(** Threads not yet terminated. *)

val step : t -> bool
(** [step t] runs one scheduling round: every CPU that can get a ready
    thread executes one of its steps.  Returns [false] when no thread
    could run (all terminated or suspended). *)

val run : t -> ?max_rounds:int -> unit -> unit
(** [run t ()] steps until nothing is runnable.  [max_rounds] (default
    100000) guards against runaway threads. *)

val threads : t -> Kthread.t list
(** All threads ever spawned, oldest first. *)
