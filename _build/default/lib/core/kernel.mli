(** Kernel glue: machine + pmap domain + machine-independent VM.

    Creating a kernel builds the pmap domain and VM state for a machine,
    installs the page-fault handler (including the NS32082
    read-modify-write workaround) and starts the paging daemon.  The
    kernel tracks which task runs on each CPU so faults find the right
    address map, and it drives [pmap_activate]/[pmap_deactivate] on task
    switches. *)

type t = {
  machine : Mach_hw.Machine.t;
  domain : Mach_pmap.Pmap_domain.t;
  sys : Vm_sys.t;
  current : Task.t option array; (* per CPU *)
}

val create :
  ?page_multiple:int -> ?object_cache_limit:int -> Mach_hw.Machine.t -> t
(** [create machine] boots a kernel on [machine].  [page_multiple] is the
    boot-time page-size parameter: the machine-independent page is that
    many hardware pages (default 1; must be a power of two). *)

val sys : t -> Vm_sys.t
val machine : t -> Mach_hw.Machine.t

val page_size : t -> int
(** The machine-independent page size. *)

val create_task : t -> ?name:string -> unit -> Task.t
(** A fresh task with an empty address space. *)

val fork_task : t -> cpu:int -> Task.t -> Task.t
(** Fork per the parent's inheritance attributes, charging the fork's
    kernel work to [cpu]. *)

val terminate_task : t -> cpu:int -> Task.t -> unit
(** Destroy the task's address space.  A terminated task is descheduled
    everywhere. *)

val run_task : t -> cpu:int -> Task.t -> unit
(** Make [task] current on [cpu]: [pmap_activate] and fault routing. *)

val idle : t -> cpu:int -> unit
(** No task on [cpu] ([pmap_deactivate]). *)

val current_task : t -> cpu:int -> Task.t option

val elapsed_ms : t -> float
(** Simulated elapsed time (max over CPU clocks). *)

val reset_clocks : t -> unit
(** Zero clocks and machine statistics between benchmark phases. *)
