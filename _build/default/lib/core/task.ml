open Mach_hw
open Mach_pmap

type t = {
  task_id : int;
  task_name : string;
  task_map : Types.vmap;
  task_pmap : Pmap.t;
  mutable task_dead : bool;
}

let next_id = ref 0

let addr_limits (sys : Vm_sys.t) =
  let arch = Machine.arch sys.Vm_sys.machine in
  (sys.Vm_sys.page_size, arch.Arch.user_va_limit)

let create sys ?(name = "task") () =
  incr next_id;
  let low, high = addr_limits sys in
  let pmap = Pmap_domain.create_pmap sys.Vm_sys.domain in
  {
    task_id = !next_id;
    task_name = name;
    task_map = Vm_map.create sys ~pmap:(Some pmap) ~low ~high;
    task_pmap = pmap;
    task_dead = false;
  }

let fork sys parent =
  assert (not parent.task_dead);
  incr next_id;
  let pmap = Pmap_domain.create_pmap sys.Vm_sys.domain in
  let map = Vm_map.fork sys parent.task_map ~child_pmap:pmap in
  {
    task_id = !next_id;
    task_name = parent.task_name ^ "-child";
    task_map = map;
    task_pmap = pmap;
    task_dead = false;
  }

let terminate sys t =
  if not t.task_dead then begin
    t.task_dead <- true;
    Vm_map.deallocate sys t.task_map
  end

let map t = t.task_map

let pmap t = t.task_pmap
