(** The resident page table (Section 3.1).

    Physical memory is treated primarily as a cache for the contents of
    virtual memory objects.  This module keeps one {!Types.page} entry per
    machine-independent page, where a page is a boot-time power-of-two
    multiple of the hardware page size; each entry may simultaneously be
    linked into a memory-object page list, an allocation queue (free,
    active or inactive/reclaimable), and the object/offset hash bucket
    used for fast fault-time lookup.

    Byte offsets key the hash so the implementation is independent of any
    particular notion of physical page size. *)

type t
(** The resident page table for one kernel. *)

val create :
  phys:Mach_hw.Phys_mem.t -> multiple:int -> ?frame_limit:int -> unit -> t
(** [create ~phys ~multiple ()] groups [phys]'s present hardware frames
    into machine-independent pages of [multiple] consecutive frames
    (aligned); incomplete or hole-straddling groups are unusable, as are
    frames at or beyond [frame_limit] (an architecture's physical address
    limit).  All usable pages start free.  [multiple] must be a power of
    two. *)

val page_size : t -> int
(** Machine-independent page size in bytes. *)

val multiple : t -> int
(** Hardware frames per machine-independent page. *)

val total_pages : t -> int
(** Usable pages, free or not. *)

val free_count : t -> int
val active_count : t -> int
val inactive_count : t -> int

val alloc : t -> Types.page option
(** [alloc t] takes a page off the free queue ([None] when memory is
    exhausted).  The page is on no queue and belongs to no object; its
    previous contents are whatever the last owner left (callers zero or
    overwrite as the fault logic dictates). *)

val lookup : t -> obj:Types.obj -> offset:int -> Types.page option
(** [lookup t ~obj ~offset] is the fault-path hash lookup by memory object
    and byte offset. *)

val insert : t -> Types.page -> obj:Types.obj -> offset:int -> unit
(** [insert t p ~obj ~offset] gives [p] its object/offset identity,
    linking it into [obj]'s page list and the hash.  [offset] must be
    page aligned and not already occupied. *)

val remove_from_object : t -> Types.page -> unit
(** [remove_from_object t p] strips [p]'s identity (hash and object list);
    the page remains allocated. *)

val free_page : t -> Types.page -> unit
(** [free_page t p] removes [p] from its object (if any) and any queue and
    returns it to the free queue. *)

val enqueue : t -> Types.page -> Types.pageq -> unit
(** [enqueue t p q] moves [p] to queue [q] (removing it from its current
    queue).  [Q_free] must be reached via {!free_page} instead. *)

val take_inactive : t -> Types.page option
(** [take_inactive t] pops the oldest inactive page for the pageout
    daemon; the page ends up on no queue. *)

val take_active : t -> Types.page option
(** [take_active t] pops the oldest active page (used by the daemon to
    refill the inactive queue). *)

val iter_free : t -> (Types.page -> unit) -> unit
(** [iter_free t f] applies [f] to every page on the free queue (without
    disturbing it); used by consistency checkers. *)

val object_pages : Types.obj -> Types.page list
(** [object_pages o] is [o]'s resident pages, in list order. *)
