open Mach_hw
open Types
open Mach_pmap

let phys (sys : Vm_sys.t) = Machine.phys sys.Vm_sys.machine

let hw_size sys = Phys_mem.page_size (phys sys)

let charge_move (sys : Vm_sys.t) len =
  Vm_sys.charge sys (((len + 15) / 16) * (Vm_sys.cost sys).Mach_hw.Arch.move_16b)

let zero (sys : Vm_sys.t) p =
  let m = Resident.multiple sys.Vm_sys.resident in
  for i = 0 to m - 1 do
    Pmap_domain.zero_page sys.Vm_sys.domain ~pfn:(p.pfn + i)
  done

let copy (sys : Vm_sys.t) ~src ~dst =
  let m = Resident.multiple sys.Vm_sys.resident in
  for i = 0 to m - 1 do
    Pmap_domain.copy_page sys.Vm_sys.domain ~src:(src.pfn + i)
      ~dst:(dst.pfn + i)
  done

let copy_in sys p ~off data =
  let hw = hw_size sys in
  let len = Bytes.length data in
  if off < 0 || off + len > sys.Vm_sys.page_size then
    invalid_arg "Page_io.copy_in";
  let rec loop pos =
    if pos < len then begin
      let abs = off + pos in
      let frame = p.pfn + (abs / hw) in
      let foff = abs mod hw in
      let chunk = min (hw - foff) (len - pos) in
      Phys_mem.write (phys sys) frame ~offset:foff (Bytes.sub data pos chunk);
      loop (pos + chunk)
    end
  in
  loop 0;
  charge_move sys len

let copy_out sys p ~off ~len =
  let hw = hw_size sys in
  if off < 0 || len < 0 || off + len > sys.Vm_sys.page_size then
    invalid_arg "Page_io.copy_out";
  let buf = Bytes.create len in
  let rec loop pos =
    if pos < len then begin
      let abs = off + pos in
      let frame = p.pfn + (abs / hw) in
      let foff = abs mod hw in
      let chunk = min (hw - foff) (len - pos) in
      Bytes.blit
        (Phys_mem.read (phys sys) frame ~offset:foff ~len:chunk)
        0 buf pos chunk;
      loop (pos + chunk)
    end
  in
  loop 0;
  charge_move sys len;
  buf

let fill sys p data =
  let ps = sys.Vm_sys.page_size in
  if Bytes.length data >= ps then copy_in sys p ~off:0 (Bytes.sub data 0 ps)
  else begin
    let b = Bytes.make ps '\000' in
    Bytes.blit data 0 b 0 (Bytes.length data);
    copy_in sys p ~off:0 b
  end

let contents sys p = copy_out sys p ~off:0 ~len:sys.Vm_sys.page_size
