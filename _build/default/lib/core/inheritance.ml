type t = Shared | Copy | None_

let default = Copy

let equal a b = a = b

let to_string = function
  | Shared -> "shared"
  | Copy -> "copy"
  | None_ -> "none"

let pp ppf t = Format.pp_print_string ppf (to_string t)
