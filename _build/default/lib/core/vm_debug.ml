open Mach_hw
open Types
open Mach_pmap

let spf = Printf.sprintf

(* Collect violations into a list ref. *)
let note errs fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt

let check_object_structure sys errs o =
  if o.obj_dead then note errs "object %d referenced but dead" o.obj_id;
  if o.obj_ref < 0 then note errs "object %d negative refcount" o.obj_id;
  if o.obj_cached && o.obj_ref <> 0 then
    note errs "object %d cached with refcount %d" o.obj_id o.obj_ref;
  (* Pages on the object's list must carry the object's identity and be
     found through the hash. *)
  List.iter
    (fun p ->
       (match p.pg_obj with
        | Some owner when owner == o -> ()
        | Some owner ->
          note errs "page pfn=%d on object %d's list but owned by %d" p.pfn
            o.obj_id owner.obj_id
        | None ->
          note errs "page pfn=%d on object %d's list but ownerless" p.pfn
            o.obj_id);
       if p.pg_offset mod sys.Vm_sys.page_size <> 0 then
         note errs "page pfn=%d at unaligned offset %d" p.pfn p.pg_offset;
       match Resident.lookup sys.Vm_sys.resident ~obj:o ~offset:p.pg_offset with
       | Some q when q == p -> ()
       | Some _ ->
         note errs "hash disagrees for object %d offset %d" o.obj_id
           p.pg_offset
       | None ->
         note errs "page pfn=%d missing from hash (object %d offset %d)"
           p.pfn o.obj_id p.pg_offset)
    (Resident.object_pages o)

(* Walk a shadow chain, checking acyclicity via a bound. *)
let check_chain errs o =
  let rec loop seen cur depth =
    if depth > 1000 then note errs "object %d: shadow chain unbounded" o.obj_id
    else if List.memq cur seen then
      note errs "object %d: shadow chain cycle" o.obj_id
    else
      match cur.obj_shadow with
      | None -> ()
      | Some next -> loop (cur :: seen) next (depth + 1)
  in
  loop [] o 0

let rec collect_objects acc o =
  if List.memq o acc then acc
  else
    match o.obj_shadow with
    | None -> o :: acc
    | Some next -> collect_objects (o :: acc) next

let check_entry sys errs ~in_submap m e =
  let ps = sys.Vm_sys.page_size in
  if e.e_start mod ps <> 0 || e.e_end mod ps <> 0 then
    note errs "map %d: entry [%x,%x) not page aligned" m.map_id e.e_start
      e.e_end;
  if e.e_end <= e.e_start then
    note errs "map %d: empty or inverted entry [%x,%x)" m.map_id e.e_start
      e.e_end;
  if e.e_start < m.map_low || e.e_end > m.map_high then
    note errs "map %d: entry [%x,%x) outside [%x,%x)" m.map_id e.e_start
      e.e_end m.map_low m.map_high;
  if not (Prot.subset e.e_prot ~of_:e.e_max_prot) then
    note errs "map %d: current protection %s exceeds maximum %s" m.map_id
      (Prot.to_string e.e_prot)
      (Prot.to_string e.e_max_prot);
  match e.e_backing with
  | No_backing -> ()
  | Backed o ->
    if e.e_offset < 0 then
      note errs "map %d: negative object offset" m.map_id;
    if o.obj_dead then
      note errs "map %d: entry [%x,%x) backed by dead object %d" m.map_id
        e.e_start e.e_end o.obj_id
  | Submap sm ->
    if in_submap then
      note errs "map %d: nested sharing map %d" m.map_id sm.map_id;
    if sm.map_ref < 1 then
      note errs "map %d: sharing map %d has refcount %d" m.map_id sm.map_id
        sm.map_ref

let rec check_map_rec sys errs ~in_submap m =
  let last_end = ref min_int in
  List.iter
    (fun e ->
       if e.e_start < !last_end then
         note errs "map %d: overlapping/unsorted entries at %x" m.map_id
           e.e_start;
       last_end := e.e_end;
       check_entry sys errs ~in_submap m e)
    (Vm_map.entries m);
  (* Recurse into referenced structures. *)
  List.iter
    (fun e ->
       match e.e_backing with
       | No_backing -> ()
       | Backed o ->
         check_chain errs o;
         List.iter
           (fun o' -> check_object_structure sys errs o')
           (collect_objects [] o)
       | Submap sm -> check_map_rec sys errs ~in_submap:true sm)
    (Vm_map.entries m)

let check_map sys m =
  let errs = ref [] in
  check_map_rec sys errs ~in_submap:false m;
  List.rev !errs

let check_resident sys =
  let errs = ref [] in
  let res = sys.Vm_sys.resident in
  let counted =
    Resident.free_count res + Resident.active_count res
    + Resident.inactive_count res
  in
  if counted > Resident.total_pages res then
    note errs "queues hold %d pages of %d total" counted
      (Resident.total_pages res);
  (* Free pages belong to no object, are not wired, and no hardware
     mapping of any of their frames survives. *)
  let hw_per_page = Resident.multiple res in
  Resident.iter_free res (fun p ->
      (match p.pg_obj with
       | Some o ->
         note errs "free page pfn=%d still owned by object %d" p.pfn
           o.obj_id
       | None -> ());
      if p.pg_wire_count <> 0 then
        note errs "free page pfn=%d wired" p.pfn;
      for i = 0 to hw_per_page - 1 do
        let n = Pmap_domain.mapping_count sys.Vm_sys.domain ~pfn:(p.pfn + i) in
        if n > 0 then
          note errs "free frame %d retains %d hardware mappings"
            (p.pfn + i) n
      done);
  List.rev !errs

(* Every pv mapping must be confirmed by the owning pmap's
   pmap_extract — the two layers may never disagree. *)
let check_pv sys =
  let errs = ref [] in
  let phys = Machine.phys sys.Vm_sys.machine in
  let hw = Phys_mem.page_size phys in
  for pfn = 0 to Phys_mem.frame_count phys - 1 do
    List.iter
      (fun (asid, vpn) ->
         match Pmap_domain.find_pmap sys.Vm_sys.domain ~asid with
         | None -> note errs "frame %d mapped by destroyed pmap %d" pfn asid
         | Some p ->
           (match p.Pmap.extract (vpn * hw) with
            | Some pfn' when pfn' = pfn -> ()
            | Some pfn' ->
              note errs
                "pv says asid %d maps vpn %d -> frame %d, pmap says %d"
                asid vpn pfn pfn'
            | None ->
              note errs "pv entry (asid %d, vpn %d) unknown to its pmap"
                asid vpn))
      (Pmap_domain.mappings_of sys.Vm_sys.domain ~pfn)
  done;
  List.rev !errs

let check_all sys ~maps =
  List.concat_map (check_map sys) maps
  @ check_resident sys @ check_pv sys

let pp_object sys ppf o =
  let rec chain ppf o =
    Format.fprintf ppf "obj%d[%s%s%s ref=%d pages=%d size=%dK]" o.obj_id
      (if o.obj_temporary then "anon" else "pager")
      (if o.obj_cached then " cached" else "")
      (if o.obj_readonly then " ro" else "")
      o.obj_ref
      (List.length (Resident.object_pages o))
      (o.obj_size / 1024);
    match o.obj_shadow with
    | None -> ()
    | Some next ->
      Format.fprintf ppf " -> +%d " o.obj_shadow_offset;
      chain ppf next
  in
  ignore sys;
  chain ppf o

let pp_map sys ppf m =
  Format.fprintf ppf "map %d [%x..%x) ref=%d %s@\n" m.map_id m.map_low
    m.map_high m.map_ref
    (match m.map_pmap with
     | Some p -> Printf.sprintf "pmap asid=%d" p.Pmap.asid
     | None -> "(sharing map)");
  List.iter
    (fun e ->
       Format.fprintf ppf "  %08x-%08x %s/%s %-6s%s " e.e_start e.e_end
         (Prot.to_string e.e_prot)
         (Prot.to_string e.e_max_prot)
         (Inheritance.to_string e.e_inherit)
         (if e.e_needs_copy then " cow" else "");
       (match e.e_backing with
        | No_backing -> Format.fprintf ppf "(untouched)"
        | Backed o ->
          Format.fprintf ppf "@%d %a" e.e_offset (pp_object sys) o
        | Submap sm ->
          Format.fprintf ppf "@%d sharing-map %d (%d entries, ref=%d)"
            e.e_offset sm.map_id (Vm_map.entry_count sm) sm.map_ref);
       Format.fprintf ppf "@\n")
    (Vm_map.entries m)

let dump_map sys m = Format.asprintf "%a" (pp_map sys) m

let assert_ok sys ~maps =
  match check_all sys ~maps with
  | [] -> ()
  | errs ->
    failwith
      (spf "VM invariant violations:\n%s" (String.concat "\n" errs))
