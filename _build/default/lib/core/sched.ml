open Mach_hw

type t = {
  kernel : Kernel.t;
  ready : Kthread.t Queue.t;
  mutable all : Kthread.t list; (* newest first *)
}

let create kernel = { kernel; ready = Queue.create (); all = [] }

let spawn t ~task ?name steps =
  let th = Kthread.make ~task ?name steps in
  t.all <- th :: t.all;
  Queue.add th t.ready;
  th

let alive t =
  List.length
    (List.filter (fun th -> Kthread.status th <> Kthread.Terminated) t.all)

(* Pop ready threads, skipping those suspended or terminated while
   queued (they re-enter via resume + requeue below). *)
let rec next_ready t =
  match Queue.take_opt t.ready with
  | None -> None
  | Some th ->
    (match Kthread.status th with
     | Kthread.Ready -> Some th
     | Kthread.Suspended | Kthread.Terminated | Kthread.Running _ ->
       next_ready t)

(* Suspended threads that were resumed need requeueing; do it lazily at
   the start of each round. *)
let requeue_resumed t =
  List.iter
    (fun th ->
       if
         Kthread.status th = Kthread.Ready
         && not (Queue.fold (fun acc q -> acc || q == th) false t.ready)
       then Queue.add th t.ready)
    (List.rev t.all)

let step t =
  requeue_resumed t;
  let machine = Kernel.machine t.kernel in
  let dispatched = ref false in
  for cpu = 0 to Machine.cpu_count machine - 1 do
    match next_ready t with
    | None -> ()
    | Some th ->
      dispatched := true;
      Kernel.run_task t.kernel ~cpu (Kthread.task th);
      Kthread.run_one_step th ~cpu;
      if Kthread.status th = Kthread.Ready then Queue.add th t.ready
  done;
  !dispatched

let run t ?(max_rounds = 100_000) () =
  let rec loop n =
    if n > max_rounds then failwith "Sched.run: max rounds exceeded";
    if step t then loop (n + 1)
  in
  loop 0

let threads t = List.rev t.all
