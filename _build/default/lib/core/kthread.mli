(** Threads (Section 2): the basic unit of CPU utilization.

    "A thread is roughly equivalent to an independent program counter
    operating within a task.  All threads within a task share access to
    all task resources."  A simulated thread is a sequence of {e steps}
    (closures performing memory accesses and kernel calls); the
    {!Sched} scheduler interleaves steps of runnable threads over the
    machine's CPUs, activating each thread's task pmap as it is
    dispatched.

    A UNIX process is a task with a single thread. *)

type status =
  | Ready              (** waiting for a CPU *)
  | Running of int     (** executing on the given CPU *)
  | Suspended          (** thread_suspend was called *)
  | Terminated         (** all steps executed *)

type step = cpu:int -> unit
(** One quantum of work.  Runs with the thread's task current on [cpu];
    may touch memory (faulting as needed) and call kernel services. *)

type t

val make : task:Task.t -> ?name:string -> step list -> t
(** [make ~task steps] is a new thread of [task], ready to run.
    Normally created through {!Sched.spawn}. *)

val id : t -> int
val name : t -> string
val task : t -> Task.t
val status : t -> status

val steps_remaining : t -> int
(** Steps not yet executed. *)

val suspend : t -> unit
(** [thread_suspend]: the thread stops being scheduled after its current
    step.  Suspending a terminated thread is a no-op. *)

val resume : t -> unit
(** [thread_resume]: undo one {!suspend}. *)

val run_one_step : t -> cpu:int -> unit
(** Execute the thread's next step on [cpu] (scheduler internal: the
    caller must have activated the task on that CPU).  Terminates the
    thread after its last step. *)
