lib/core/vm_object.mli: Types Vm_sys
