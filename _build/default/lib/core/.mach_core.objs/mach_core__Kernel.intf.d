lib/core/kernel.mli: Mach_hw Mach_pmap Task Vm_sys
