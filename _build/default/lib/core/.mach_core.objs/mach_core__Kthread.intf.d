lib/core/kthread.mli: Task
