lib/core/vm_map.ml: Dlist Inheritance Kr List Mach_hw Mach_pmap Mach_util Pmap Pmap_domain Prot Resident Types Vm_object Vm_sys
