lib/core/task.ml: Arch Mach_hw Mach_pmap Machine Pmap Pmap_domain Types Vm_map Vm_sys
