lib/core/pager_ops.mli: Mach_hw Types Vm_sys
