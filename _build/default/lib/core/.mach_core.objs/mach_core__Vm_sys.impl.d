lib/core/vm_sys.ml: Arch Hashtbl Mach_hw Mach_pmap Machine Pmap_domain Resident Types
