lib/core/vm_sys.mli: Hashtbl Mach_hw Mach_pmap Resident Types
