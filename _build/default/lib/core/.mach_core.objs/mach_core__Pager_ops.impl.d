lib/core/pager_ops.ml: List Mach_hw Mach_pmap Pmap_domain Prot Resident Types Vm_object Vm_pageout Vm_sys
