lib/core/vm_fault.mli: Kr Types Vm_sys
