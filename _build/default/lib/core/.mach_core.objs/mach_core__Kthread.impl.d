lib/core/kthread.ml: List Printf Task
