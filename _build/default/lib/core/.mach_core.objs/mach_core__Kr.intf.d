lib/core/kr.mli: Format
