lib/core/vm_debug.mli: Format Types Vm_sys
