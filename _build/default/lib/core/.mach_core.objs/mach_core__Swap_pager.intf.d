lib/core/swap_pager.mli: Types Vm_sys
