lib/core/task.mli: Mach_pmap Types Vm_sys
