lib/core/page_io.ml: Bytes Mach_hw Mach_pmap Machine Phys_mem Pmap_domain Resident Types Vm_sys
