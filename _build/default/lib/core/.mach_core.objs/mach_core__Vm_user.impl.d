lib/core/vm_user.ml: Arch Bytes Kr Mach_hw Machine Phys_mem Resident Task Types Vm_fault Vm_map Vm_object Vm_sys
