lib/core/swap_pager.ml: Bytes Hashtbl Mach_hw Types Vm_sys
