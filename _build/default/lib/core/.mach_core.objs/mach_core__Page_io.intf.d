lib/core/page_io.mli: Bytes Types Vm_sys
