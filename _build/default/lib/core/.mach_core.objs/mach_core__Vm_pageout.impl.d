lib/core/vm_pageout.ml: Mach_hw Mach_pmap Machine Page_io Pmap_domain Resident Swap_pager Types Vm_sys
