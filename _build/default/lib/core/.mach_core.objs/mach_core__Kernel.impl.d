lib/core/kernel.ml: Arch Array Kr Mach_hw Mach_pmap Machine Pmap Pmap_domain Prot Task Types Vm_fault Vm_map Vm_pageout Vm_sys
