lib/core/inheritance.ml: Format
