lib/core/resident.mli: Mach_hw Types
