lib/core/sched.mli: Kernel Kthread Task
