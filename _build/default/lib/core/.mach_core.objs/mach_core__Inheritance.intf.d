lib/core/inheritance.mli: Format
