lib/core/types.ml: Bytes Dlist Inheritance Mach_hw Mach_pmap Mach_util Prot
