lib/core/vm_user.mli: Bytes Inheritance Kr Mach_hw Task Types Vm_map Vm_sys
