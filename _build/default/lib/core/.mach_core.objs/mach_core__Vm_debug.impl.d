lib/core/vm_debug.ml: Format Inheritance List Mach_hw Mach_pmap Machine Phys_mem Pmap Pmap_domain Printf Prot Resident String Types Vm_map Vm_sys
