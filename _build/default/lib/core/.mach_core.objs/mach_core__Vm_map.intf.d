lib/core/vm_map.mli: Inheritance Kr Mach_hw Mach_pmap Types Vm_sys
