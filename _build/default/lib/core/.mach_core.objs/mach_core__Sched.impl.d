lib/core/sched.ml: Kernel Kthread List Mach_hw Machine Queue
