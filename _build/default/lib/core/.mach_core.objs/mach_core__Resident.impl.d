lib/core/resident.ml: Dlist Hashtbl Mach_hw Mach_util Phys_mem Types
