lib/core/kr.ml: Format
