lib/core/vm_object.ml: Hashtbl List Mach_pmap Mach_util Pmap_domain Resident Types Vm_sys
