lib/core/vm_pageout.mli: Types Vm_sys
