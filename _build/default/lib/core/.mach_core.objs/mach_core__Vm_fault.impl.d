lib/core/vm_fault.ml: Kr Mach_hw Mach_pmap Machine Page_io Phys_mem Pmap Pmap_domain Prot Resident Types Vm_map Vm_object Vm_sys
