(** The page-fault handler.

    All virtual-memory information can be reconstructed at fault time from
    the machine-independent data structures; this module is where that
    happens.  A fault:

    + looks the address up in the task's address map (following one
      sharing-map level) and checks protection;
    + creates the backing anonymous object if the region was never
      touched;
    + on a write to a needs-copy entry, interposes a shadow object;
    + searches the shadow chain for the page; a miss at the bottom is
      filled from the bottom object's pager, or zero-filled;
    + a write to a page found below the first object copies it up
      (copy-on-write); a read maps it without write permission;
    + enters the mapping in the task's pmap and activates the page.

    Faults that merely re-enter a mapping the pmap discarded (a stolen
    SUN 3 context, an evicted RT PC alias, a TLB-only machine reload) are
    counted as fast reloads. *)

val fault :
  Vm_sys.t -> Types.vmap -> va:int -> write:bool ->
  (Types.page, Kr.t) result
(** [fault sys map ~va ~write] resolves a fault at [va] and returns the
    resident page now mapped there.  Errors: [Invalid_address] outside any
    entry, [Protection_failure] when the access exceeds the entry's
    current protection, [Memory_error] when a pager fails. *)

val wire : Vm_sys.t -> Types.vmap -> va:int -> (unit, Kr.t) result
(** [wire sys map ~va] faults the page in for write and wires it: it
    leaves the paging queues and becomes immune to pageout until
    {!unwire}. *)

val unwire : Vm_sys.t -> Types.vmap -> va:int -> (unit, Kr.t) result
(** [unwire sys map ~va] undoes one {!wire}, reactivating the page when
    the wire count reaches zero. *)
