type t =
  | Invalid_address
  | No_space
  | Protection_failure
  | Invalid_argument
  | Resource_shortage
  | Memory_error

let to_string = function
  | Invalid_address -> "KERN_INVALID_ADDRESS"
  | No_space -> "KERN_NO_SPACE"
  | Protection_failure -> "KERN_PROTECTION_FAILURE"
  | Invalid_argument -> "KERN_INVALID_ARGUMENT"
  | Resource_shortage -> "KERN_RESOURCE_SHORTAGE"
  | Memory_error -> "KERN_MEMORY_ERROR"

let pp ppf t = Format.pp_print_string ppf (to_string t)
