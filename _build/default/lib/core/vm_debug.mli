(** Consistency checking over the machine-independent VM structures.

    The paper notes that the object/locking rules are the complex part of
    Mach VM; this module makes the implicit invariants explicit and
    checkable, for use in tests (after randomised workloads) and when
    debugging:

    - address maps are sorted, page aligned, non-overlapping, inside
      their bounds, and their current protection never exceeds the
      maximum;
    - backing references point at live objects and live sharing maps, and
      sharing maps are never nested;
    - memory-object page lists agree with the object/offset hash and
      with each page's own identity; shadow chains are acyclic;
    - every page sits on exactly the queue its state says, free pages
      belong to no object, and no freed frame retains a hardware
      mapping;
    - every hardware mapping recorded by the pv layer is confirmed by the
      owning pmap's [pmap_extract]. *)

val check_map : Vm_sys.t -> Types.vmap -> string list
(** [check_map sys m] is the list of invariant violations found in [m]
    (and any sharing maps or objects it references); empty when
    healthy. *)

val check_resident : Vm_sys.t -> string list
(** [check_resident sys] checks the resident page table's queues and
    hash, and that free frames are unmapped. *)

val check_all : Vm_sys.t -> maps:Types.vmap list -> string list
(** [check_all sys ~maps] runs every check over the given root maps plus
    the global structures. *)

val assert_ok : Vm_sys.t -> maps:Types.vmap list -> unit
(** [assert_ok sys ~maps] raises [Failure] with a readable summary if any
    check fails; used as a test oracle. *)

val pp_map : Vm_sys.t -> Format.formatter -> Types.vmap -> unit
(** [pp_map sys ppf m] pretty-prints the address map: one line per entry
    with range, protections, inheritance, backing (object chain lengths,
    resident page counts) — the shape a kernel debugger would show. *)

val pp_object : Vm_sys.t -> Format.formatter -> Types.obj -> unit
(** [pp_object sys ppf o] prints one object and its shadow chain. *)

val dump_map : Vm_sys.t -> Types.vmap -> string
(** [dump_map sys m] is [pp_map] rendered to a string. *)
