lib/util/tablefmt.mli:
