lib/util/dlist.mli:
