(* Doubly-linked lists with externally held nodes.

   Each node records whether it is currently linked ([in_list]) so that
   double-removal and foreign-node insertion are caught by assertions
   rather than silently corrupting the list. *)

type 'a node = {
  value : 'a;
  mutable prev : 'a node option;
  mutable next : 'a node option;
  mutable in_list : bool;
}

type 'a t = {
  mutable head : 'a node option;
  mutable tail : 'a node option;
  mutable length : int;
}

let create () = { head = None; tail = None; length = 0 }

let length t = t.length

let is_empty t = t.length = 0

let value n = n.value

let linked n = n.in_list

let fresh_node v = { value = v; prev = None; next = None; in_list = true }

let push_front t v =
  let n = fresh_node v in
  (match t.head with
   | None -> t.tail <- Some n
   | Some h -> h.prev <- Some n; n.next <- Some h);
  t.head <- Some n;
  t.length <- t.length + 1;
  n

let push_back t v =
  let n = fresh_node v in
  (match t.tail with
   | None -> t.head <- Some n
   | Some l -> l.next <- Some n; n.prev <- Some l);
  t.tail <- Some n;
  t.length <- t.length + 1;
  n

let insert_before t pos v =
  assert pos.in_list;
  match pos.prev with
  | None ->
    push_front t v
  | Some p ->
    let n = fresh_node v in
    n.prev <- Some p;
    n.next <- Some pos;
    p.next <- Some n;
    pos.prev <- Some n;
    t.length <- t.length + 1;
    n

let insert_after t pos v =
  assert pos.in_list;
  match pos.next with
  | None ->
    push_back t v
  | Some s ->
    let n = fresh_node v in
    n.next <- Some s;
    n.prev <- Some pos;
    s.prev <- Some n;
    pos.next <- Some n;
    t.length <- t.length + 1;
    n

let remove t n =
  assert n.in_list;
  (match n.prev with
   | None -> t.head <- n.next
   | Some p -> p.next <- n.next);
  (match n.next with
   | None -> t.tail <- n.prev
   | Some s -> s.prev <- n.prev);
  n.prev <- None;
  n.next <- None;
  n.in_list <- false;
  t.length <- t.length - 1

let first t = t.head

let last t = t.tail

let next n = n.next

let prev n = n.prev

let pop_front t =
  match t.head with
  | None -> None
  | Some n -> remove t n; Some n.value

let pop_back t =
  match t.tail with
  | None -> None
  | Some n -> remove t n; Some n.value

let iter_nodes f t =
  let rec loop = function
    | None -> ()
    | Some n ->
      let succ = n.next in
      f n;
      loop succ
  in
  loop t.head

let iter f t = iter_nodes (fun n -> f n.value) t

let fold f acc t =
  let acc = ref acc in
  iter (fun v -> acc := f !acc v) t;
  !acc

let find_node p t =
  let rec loop = function
    | None -> None
    | Some n -> if p n.value then Some n else loop n.next
  in
  loop t.head

let find p t =
  match find_node p t with
  | None -> None
  | Some n -> Some n.value

let exists p t =
  match find p t with
  | None -> false
  | Some _ -> true

let to_list t = List.rev (fold (fun acc v -> v :: acc) [] t)
