type line =
  | Row of string list
  | Separator

type t = {
  title : string;
  columns : string list;
  mutable lines : line list; (* reversed *)
}

let create ~title ~columns = { title; columns; lines = [] }

let row t cells =
  let n_cols = List.length t.columns in
  let n = List.length cells in
  if n > n_cols then invalid_arg "Tablefmt.row: too many cells";
  let padded = cells @ List.init (n_cols - n) (fun _ -> "") in
  t.lines <- Row padded :: t.lines

let separator t = t.lines <- Separator :: t.lines

let to_string t =
  let rows =
    t.columns :: List.filter_map (function Row r -> Some r | Separator -> None)
                   (List.rev t.lines)
  in
  let n_cols = List.length t.columns in
  let widths = Array.make n_cols 0 in
  let note_widths r =
    List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) r
  in
  List.iter note_widths rows;
  let buf = Buffer.create 256 in
  let pad i c =
    let w = widths.(i) in
    c ^ String.make (w - String.length c) ' '
  in
  let emit_row r =
    Buffer.add_string buf "  ";
    Buffer.add_string buf (String.concat "  " (List.mapi pad r));
    Buffer.add_char buf '\n'
  in
  let total_width =
    Array.fold_left ( + ) 0 widths + (2 * (n_cols - 1)) + 2
  in
  let rule () =
    Buffer.add_string buf (String.make total_width '-');
    Buffer.add_char buf '\n'
  in
  Buffer.add_string buf t.title;
  Buffer.add_char buf '\n';
  rule ();
  emit_row t.columns;
  rule ();
  List.iter
    (function Row r -> emit_row r | Separator -> rule ())
    (List.rev t.lines);
  Buffer.contents buf

let print t =
  print_string (to_string t);
  print_newline ()
