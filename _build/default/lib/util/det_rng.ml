(* Splitmix64-style generator truncated to OCaml's 63-bit ints. *)

type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }

let golden = 0x9E3779B97F4A7C15L

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

let int t bound =
  assert (bound > 0);
  bits t mod bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let float t bound =
  let max_bits = float_of_int max_int in
  bound *. (float_of_int (bits t) /. max_bits)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let split t = { state = next_int64 t }
