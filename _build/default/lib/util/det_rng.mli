(** Deterministic pseudo-random number generation.

    Workload generators must be reproducible across runs so that paper
    tables regenerate identically; this is a small splitmix64-style PRNG
    with an explicit state, independent of [Random]'s global state. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] is a generator whose sequence is a pure function of
    [seed]. *)

val int : t -> int -> int
(** [int t bound] is a uniform integer in [\[0, bound)].  [bound] must be
    positive. *)

val bool : t -> bool
(** [bool t] is a uniform boolean. *)

val float : t -> float -> float
(** [float t bound] is a uniform float in [\[0, bound)]. *)

val shuffle : t -> 'a array -> unit
(** [shuffle t a] permutes [a] in place (Fisher-Yates). *)

val split : t -> t
(** [split t] is a new generator seeded from [t]'s stream, advancing [t];
    useful to give sub-workloads independent streams. *)
