(** Column-aligned plain-text tables.

    The benchmark harness prints each reproduced paper table as aligned
    rows ("Operation | Mach | UNIX | paper Mach | paper UNIX"); this module
    centralises the alignment and separator logic. *)

type t
(** A table under construction. *)

val create : title:string -> columns:string list -> t
(** [create ~title ~columns] starts a table with the given header. *)

val row : t -> string list -> unit
(** [row t cells] appends a data row.  Rows shorter than the header are
    padded with empty cells; longer rows are an error. *)

val separator : t -> unit
(** [separator t] appends a horizontal rule between row groups. *)

val to_string : t -> string
(** [to_string t] renders the table with columns padded to the widest
    cell. *)

val print : t -> unit
(** [print t] writes [to_string t] to standard output followed by a blank
    line. *)
