(** Doubly-linked lists with externally held nodes.

    The machine-independent VM keeps address-map entries and resident-page
    queues in doubly-linked lists so that insertion, removal and in-place
    splitting are O(1) given a node (Section 3.2 of the paper).  Nodes are
    first-class: callers store the node of an element and later remove or
    re-insert it without searching. *)

type 'a node
(** A list cell carrying one value.  A node belongs to at most one list. *)

type 'a t
(** A mutable doubly-linked list. *)

val create : unit -> 'a t
(** [create ()] is a fresh empty list. *)

val length : 'a t -> int
(** [length t] is the number of nodes currently linked into [t]. *)

val is_empty : 'a t -> bool
(** [is_empty t] is [length t = 0]. *)

val value : 'a node -> 'a
(** [value n] is the element carried by [n]. *)

val push_front : 'a t -> 'a -> 'a node
(** [push_front t v] links a new node carrying [v] at the head of [t]. *)

val push_back : 'a t -> 'a -> 'a node
(** [push_back t v] links a new node carrying [v] at the tail of [t]. *)

val insert_before : 'a t -> 'a node -> 'a -> 'a node
(** [insert_before t n v] links a new node carrying [v] immediately before
    [n], which must belong to [t]. *)

val insert_after : 'a t -> 'a node -> 'a -> 'a node
(** [insert_after t n v] links a new node carrying [v] immediately after
    [n], which must belong to [t]. *)

val remove : 'a t -> 'a node -> unit
(** [remove t n] unlinks [n] from [t].  Removing a node twice is an error
    detected by assertion. *)

val first : 'a t -> 'a node option
(** [first t] is the head node, if any. *)

val last : 'a t -> 'a node option
(** [last t] is the tail node, if any. *)

val next : 'a node -> 'a node option
(** [next n] is the node after [n] in its list. *)

val prev : 'a node -> 'a node option
(** [prev n] is the node before [n] in its list. *)

val pop_front : 'a t -> 'a option
(** [pop_front t] unlinks and returns the head value, if any. *)

val pop_back : 'a t -> 'a option
(** [pop_back t] unlinks and returns the tail value, if any. *)

val iter : ('a -> unit) -> 'a t -> unit
(** [iter f t] applies [f] to each element from head to tail. *)

val iter_nodes : ('a node -> unit) -> 'a t -> unit
(** [iter_nodes f t] applies [f] to each node from head to tail.  [f] may
    remove the node it is given. *)

val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
(** [fold f acc t] folds [f] over elements from head to tail. *)

val find : ('a -> bool) -> 'a t -> 'a option
(** [find p t] is the first element satisfying [p], searching from the
    head. *)

val find_node : ('a -> bool) -> 'a t -> 'a node option
(** [find_node p t] is the first node whose element satisfies [p]. *)

val to_list : 'a t -> 'a list
(** [to_list t] is the elements from head to tail. *)

val exists : ('a -> bool) -> 'a t -> bool
(** [exists p t] is [true] iff some element satisfies [p]. *)

val linked : 'a node -> bool
(** [linked n] is [true] while [n] belongs to some list. *)
