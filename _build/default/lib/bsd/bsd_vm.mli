(** A traditional UNIX (4.3bsd-style) virtual memory baseline.

    The comparator of Tables 7-1 and 7-2: simple paging support only.
    Processes have per-region demand-zero memory; [fork] eagerly copies
    every resident data page (no copy-on-write, except in the SunOS-style
    variant); [exec] loads program text by copying it through the buffer
    cache; file reads copy through the buffer cache rather than mapping
    memory objects.  It runs on the same simulated machines and pmap layer
    as Mach, so the measured differences are the VM design, not the
    substrate.

    Variants model the systems the paper measured against: 4.3bsd on the
    VAX, ACIS 4.2a on the RT PC, SunOS 3.2 on the SUN 3 (which does fork
    copy-on-write but pays extra per-page bookkeeping for its internal
    simulation of the VAX memory architecture, as the paper notes UNIX
    ports did). *)

type variant = {
  v_name : string;
  v_cow_fork : bool;       (** SunOS-style copy-on-write fork *)
  v_page_overhead : int;   (** extra cycles per page operation *)
}

val bsd43 : variant
(** Plain 4.3bsd: eager fork copy. *)

val acis42 : variant
(** ACIS 4.2a for the RT PC: eager fork copy, slightly higher per-page
    cost (shared segments bookkeeping). *)

val sunos32 : variant
(** SunOS 3.2: copy-on-write fork, but each page operation pays for the
    internally simulated VAX mapping structures. *)

val variant_for : Mach_hw.Arch.t -> variant
(** The comparator the paper used on that machine. *)

type t
(** A booted baseline kernel. *)

type proc
(** A UNIX process. *)

val create :
  Mach_hw.Machine.t -> fs:Mach_pagers.Simfs.t -> buffers:int ->
  ?variant:variant -> unit -> t
(** [create machine ~fs ~buffers ()] boots the baseline on [machine] with
    a [buffers]-block buffer cache over [fs].  Installs its own fault
    handler; a machine hosts either this or a Mach kernel, not both. *)

val machine : t -> Mach_hw.Machine.t
val bcache : t -> Buffer_cache.t

val create_proc : t -> ?name:string -> unit -> proc
val run_proc : t -> cpu:int -> proc -> unit
(** Make [proc] current on [cpu]. *)

val fork : t -> cpu:int -> proc -> proc
(** Copy the parent's address space: eagerly page by page, or
    copy-on-write in the SunOS variant. *)

val exit : t -> cpu:int -> proc -> unit
(** Free the process's memory. *)

val sbrk : t -> cpu:int -> proc -> size:int -> int
(** Allocate a demand-zero region, returning its base address. *)

val exec : t -> cpu:int -> proc -> text:string -> int
(** Load program text [text] (a file) by copying it through the buffer
    cache into fresh pages; returns the text base address. *)

val read_file : t -> cpu:int -> name:string -> offset:int -> len:int -> Bytes.t
(** UNIX [read()]: copy through the buffer cache (disk on misses), then
    to the caller. *)

val write_file : t -> cpu:int -> name:string -> offset:int -> data:Bytes.t -> unit

val resident_pages : proc -> int
(** Pages currently resident for the process. *)
