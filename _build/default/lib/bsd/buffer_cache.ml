open Mach_util
open Mach_pagers

type key = string * int (* file name, block index within the file *)

type t = {
  fs : Simfs.t;
  capacity : int;
  table : (key, Bytes.t * key Dlist.node) Hashtbl.t;
  lru : key Dlist.t; (* most recent at back *)
  mutable hits : int;
  mutable misses : int;
}

let create fs ~buffers =
  if buffers <= 0 then invalid_arg "Buffer_cache.create";
  { fs; capacity = buffers; table = Hashtbl.create (2 * buffers);
    lru = Dlist.create (); hits = 0; misses = 0 }

let buffers t = t.capacity

let block_size t = Simdisk.block_size (Simfs.disk t.fs)

let touch t key node =
  Dlist.remove t.lru node;
  let node' = Dlist.push_back t.lru key in
  node'

let evict_if_full t =
  if Hashtbl.length t.table >= t.capacity then
    match Dlist.pop_front t.lru with
    | Some victim -> Hashtbl.remove t.table victim
    | None -> ()

let insert t key data =
  evict_if_full t;
  let node = Dlist.push_back t.lru key in
  Hashtbl.replace t.table key (data, node)

(* Fetch one whole block through the cache. *)
let get_block t ~cpu ~name ~idx =
  let key = (name, idx) in
  match Hashtbl.find_opt t.table key with
  | Some (data, node) ->
    t.hits <- t.hits + 1;
    let node' = touch t key node in
    Hashtbl.replace t.table key (data, node');
    data
  | None ->
    t.misses <- t.misses + 1;
    let bs = block_size t in
    let data = Simfs.read t.fs ~cpu ~name ~offset:(idx * bs) ~len:bs in
    let data =
      if Bytes.length data = bs then data
      else begin
        (* short block at end of file: pad for the cache *)
        let b = Bytes.make bs '\000' in
        Bytes.blit data 0 b 0 (Bytes.length data);
        b
      end
    in
    insert t key data;
    data

let read t ~cpu ~name ~offset ~len =
  let size = Simfs.file_size t.fs ~name in
  if offset >= size || len <= 0 then Bytes.create 0
  else begin
    let len = min len (size - offset) in
    let bs = block_size t in
    let buf = Bytes.create len in
    let rec loop pos =
      if pos < len then begin
        let abs = offset + pos in
        let idx = abs / bs in
        let boff = abs mod bs in
        let chunk = min (bs - boff) (len - pos) in
        let data = get_block t ~cpu ~name ~idx in
        Bytes.blit data boff buf pos chunk;
        loop (pos + chunk)
      end
    in
    loop 0;
    buf
  end

let write t ~cpu ~name ~offset ~data =
  Simfs.write t.fs ~cpu ~name ~offset ~data;
  (* Keep cached copies coherent (write-through). *)
  let bs = block_size t in
  let len = Bytes.length data in
  let rec loop pos =
    if pos < len then begin
      let abs = offset + pos in
      let idx = abs / bs in
      let key = (name, idx) in
      (match Hashtbl.find_opt t.table key with
       | Some (cached, node) ->
         let boff = abs mod bs in
         let chunk = min (bs - boff) (len - pos) in
         Bytes.blit data pos cached boff chunk;
         let node' = touch t key node in
         Hashtbl.replace t.table key (cached, node')
       | None -> ());
      loop (pos + (bs - (abs mod bs)))
    end
  in
  loop 0

let hits t = t.hits
let misses t = t.misses

let reset_counters t =
  t.hits <- 0;
  t.misses <- 0

let flush t =
  Hashtbl.reset t.table;
  while Dlist.pop_front t.lru <> None do () done
