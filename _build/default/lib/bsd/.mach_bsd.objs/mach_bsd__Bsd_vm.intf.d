lib/bsd/bsd_vm.mli: Buffer_cache Bytes Mach_hw Mach_pagers
