lib/bsd/bsd_vm.ml: Arch Array Buffer_cache Bytes Hashtbl List Mach_hw Mach_pagers Mach_pmap Machine Phys_mem Pmap Pmap_domain Prot Queue Simfs
