lib/bsd/buffer_cache.ml: Bytes Dlist Hashtbl Mach_pagers Mach_util Simdisk Simfs
