lib/bsd/buffer_cache.mli: Bytes Mach_pagers
