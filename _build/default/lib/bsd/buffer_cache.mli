(** A traditional UNIX block buffer cache.

    4.3bsd reads files by copying disk blocks through a fixed pool of
    kernel buffers; the pool size (the "400 buffers" vs "generic
    configuration" of Table 7-2) bounds how much file data survives
    between runs.  Contrast with Mach, where all of free physical memory
    caches file pages via memory objects. *)

type t

val create : Mach_pagers.Simfs.t -> buffers:int -> t
(** [create fs ~buffers] caches up to [buffers] blocks of [fs], LRU
    replaced, write-through. *)

val buffers : t -> int

val read : t -> cpu:int -> name:string -> offset:int -> len:int -> Bytes.t
(** [read t ~cpu ~name ~offset ~len] reads through the cache: hit blocks
    cost nothing extra here (the caller charges the user-space copy), miss
    blocks are read from disk and cached. *)

val write : t -> cpu:int -> name:string -> offset:int -> data:Bytes.t -> unit
(** Write-through: updates the cache and the file system. *)

val hits : t -> int
val misses : t -> int
val reset_counters : t -> unit
val flush : t -> unit
(** Drop all cached blocks. *)
