type kind = Vax | Rt_pc | Sun3 | Ns32082 | Tlb_only

type cost = {
  mem_op : int;
  move_16b : int;
  tlb_fill : int;
  fault_overhead : int;
  pte_write : int;
  tlb_flush : int;
  ipi : int;
  context_switch : int;
  syscall : int;
  proc_work : int;
  disk_latency : int;
  disk_per_kb : int;
}

type t = {
  kind : kind;
  name : string;
  hw_page_size : int;
  user_va_limit : int;
  phys_limit : int option;
  tlb_entries : int;
  contexts : int option;
  pte_bytes : int;
  reports_rmw_as_read : bool;
  cycles_per_ms : int;
  cost : cost;
}

(* Calibration.
   ============
   Costs are abstract cycles; [cycles_per_ms] makes one cycle roughly one
   instruction time on each machine (uVAX II ~0.9 MIPS, RT PC ~2 MIPS,
   SUN 3/160 ~3 MIPS, VAX 8650 ~6 MIPS).  The per-architecture tweaks
   below were fitted against the *ratios* of Table 7-1, e.g. for the
   uVAX II:

     zero-fill per KB  = pages_per_KB * (fault_overhead
                         + page_bytes/16 * move_16b + enters)
                      ~= 2 * (200 + 32*6 + 6) cycles ~= 0.44 ms  (paper .58)
     Mach fork 256K    = proc_work + resident_pages * (pte + tlb_flush)
                      ~= 35000 + 64*(6+40)            ~= 42 ms   (paper 59)
     UNIX fork 256K    = proc_work + hw_pages * (copy + pte + overhead)
                      ~= 35000 + 512*(192+6+180)      ~= 250 ms  (paper 220)

   [proc_work] is the fixed process-machinery charge (proc table, u-area,
   wait) both operating systems pay per fork; it dominates the SUN 3 rows
   where both systems are copy-on-write.  EXPERIMENTS.md records the
   resulting paper-vs-measured tables.

   Disk timing is real time, so its cycle cost scales with the clock
   rate: roughly 3 ms effective latency per clustered operation and
   1.5 ms per KB transferred (a late-1980s winchester doing sequential
   clustered I/O). *)
let base_cost ~cycles_per_ms =
  {
    mem_op = 2;
    move_16b = 6;
    tlb_fill = 20;
    fault_overhead = 200;
    pte_write = 8;
    tlb_flush = 50;
    ipi = 400;
    context_switch = 150;
    syscall = 150;
    proc_work = 30_000;
    disk_latency = 3 * cycles_per_ms;
    disk_per_kb = (3 * cycles_per_ms) / 2;
  }

let gib = 1024 * 1024 * 1024
let mib = 1024 * 1024

let make ~kind ~name ~hw_page_size ~user_va_limit ?phys_limit ~tlb_entries
    ?contexts ~pte_bytes ?(reports_rmw_as_read = false) ~cycles_per_ms
    ?(tweak = fun c -> c) () =
  {
    kind;
    name;
    hw_page_size;
    user_va_limit;
    phys_limit;
    tlb_entries;
    contexts;
    pte_bytes;
    reports_rmw_as_read;
    cycles_per_ms;
    cost = tweak (base_cost ~cycles_per_ms);
  }

let uvax2 =
  make ~kind:Vax ~name:"uVAX II" ~hw_page_size:512 ~user_va_limit:(2 * gib)
    ~tlb_entries:64 ~pte_bytes:4 ~cycles_per_ms:900
    ~tweak:(fun c ->
        { c with move_16b = 6; fault_overhead = 200; pte_write = 6;
          tlb_flush = 40; syscall = 120; proc_work = 35_000 })
    ()

let vax8200 =
  make ~kind:Vax ~name:"VAX 8200" ~hw_page_size:512 ~user_va_limit:(2 * gib)
    ~tlb_entries:128 ~pte_bytes:4 ~cycles_per_ms:1200
    ~tweak:(fun c ->
        { c with move_16b = 4; fault_overhead = 180; pte_write = 6;
          proc_work = 35_000 })
    ()

let vax8650 =
  make ~kind:Vax ~name:"VAX 8650" ~hw_page_size:512 ~user_va_limit:(2 * gib)
    ~tlb_entries:512 ~pte_bytes:4 ~cycles_per_ms:6000
    ~tweak:(fun c -> { c with move_16b = 6 })
    ()

let rt_pc =
  make ~kind:Rt_pc ~name:"RT PC" ~hw_page_size:2048 ~user_va_limit:(4 * gib)
    ~tlb_entries:64 ~pte_bytes:16 ~cycles_per_ms:2000
    ~tweak:(fun c ->
        { c with move_16b = 12; fault_overhead = 220; tlb_flush = 60;
          proc_work = 60_000 })
    ()

let sun3_160 =
  make ~kind:Sun3 ~name:"SUN 3/160" ~hw_page_size:8192
    ~user_va_limit:(256 * mib) ~tlb_entries:0 ~contexts:8 ~pte_bytes:4
    ~cycles_per_ms:3000
    ~tweak:(fun c ->
        { c with move_16b = 10; fault_overhead = 200; tlb_flush = 20;
          proc_work = 190_000 })
    ()

let ns32082 =
  make ~kind:Ns32082 ~name:"NS32082" ~hw_page_size:512
    ~user_va_limit:(16 * mib) ~phys_limit:(32 * mib) ~tlb_entries:32
    ~pte_bytes:4 ~reports_rmw_as_read:true ~cycles_per_ms:1500 ()

let rp3_tlb =
  make ~kind:Tlb_only ~name:"RP3 (TLB only)" ~hw_page_size:4096
    ~user_va_limit:(4 * gib) ~tlb_entries:128 ~pte_bytes:0
    ~cycles_per_ms:2000 ()

let all = [ uvax2; vax8200; vax8650; rt_pc; sun3_160; ns32082; rp3_tlb ]

let cycles_to_ms t c = float_of_int c /. float_of_int t.cycles_per_ms

let pp ppf t = Format.pp_print_string ppf t.name
