(** Memory protection values.

    Each protection is a combination of read, write and execute permissions
    (Section 2.1 of the paper).  Both the machine-independent layer (current
    and maximum protection per address-map entry) and the hardware layer
    (per-mapping permissions) use this type.  Enforcement of execute depends
    on the simulated hardware: architectures without explicit execute
    permission treat execute as read. *)

type t = private { read : bool; write : bool; execute : bool }

val make : read:bool -> write:bool -> execute:bool -> t
(** [make ~read ~write ~execute] is the corresponding protection. *)

val none : t
(** No access. *)

val read_only : t
(** Read (and, on all simulated architectures, execute-as-read). *)

val read_write : t
(** Read and write. *)

val read_execute : t
(** Read and execute. *)

val all : t
(** Read, write and execute. *)

val is_none : t -> bool
(** [is_none p] is [true] iff [p] permits nothing. *)

val subset : t -> of_:t -> bool
(** [subset p ~of_:q] is [true] iff every permission in [p] is in [q]. *)

val inter : t -> t -> t
(** [inter p q] is the permissions present in both. *)

val union : t -> t -> t
(** [union p q] is the permissions present in either. *)

val remove_write : t -> t
(** [remove_write p] is [p] without write permission; used when entering
    copy-on-write mappings. *)

val allows : t -> write:bool -> bool
(** [allows p ~write] is [true] iff [p] permits the access: a write needs
    write permission, anything else needs read permission. *)

val equal : t -> t -> bool
(** Structural equality. *)

val pp : Format.formatter -> t -> unit
(** Prints as e.g. ["rw-"] or ["r-x"]. *)

val to_string : t -> string
(** [to_string p] is [Format.asprintf "%a" pp p]. *)
