type outcome = Mapped of { pfn : int; prot : Prot.t } | Missing

type t = { asid : int; lookup : int -> outcome; walk_cost : int }

let never ~asid = { asid; lookup = (fun _ -> Missing); walk_cost = 0 }
