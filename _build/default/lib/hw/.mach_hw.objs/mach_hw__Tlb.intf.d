lib/hw/tlb.mli: Prot
