lib/hw/translator.ml: Prot
