lib/hw/machine.ml: Arch Array Bytes List Phys_mem Prot Queue Tlb Translator
