lib/hw/machine.mli: Arch Bytes Phys_mem Tlb Translator
