lib/hw/tlb.ml: Hashtbl List Prot Queue
