lib/hw/prot.ml: Format
