lib/hw/prot.mli: Format
