lib/hw/translator.mli: Prot
