type frame = int

type t = {
  page_size : int;
  storage : Bytes.t option array; (* None marks an absent frame *)
}

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let create ~page_size ~frames ?(holes = []) () =
  if not (is_power_of_two page_size) then
    invalid_arg "Phys_mem.create: page size must be a power of two";
  if frames <= 0 then invalid_arg "Phys_mem.create: no frames";
  let in_hole f = List.exists (fun (lo, hi) -> f >= lo && f <= hi) holes in
  let storage =
    Array.init frames (fun f ->
        if in_hole f then None else Some (Bytes.make page_size '\000'))
  in
  { page_size; storage }

let page_size t = t.page_size

let frame_count t = Array.length t.storage

let frame_exists t f =
  f >= 0 && f < Array.length t.storage && t.storage.(f) <> None

let present_frames t =
  let acc = ref [] in
  for f = Array.length t.storage - 1 downto 0 do
    if t.storage.(f) <> None then acc := f :: !acc
  done;
  !acc

let bytes_of t f =
  match t.storage.(f) with
  | Some b -> b
  | None -> invalid_arg "Phys_mem: access to absent frame"

let read t f ~offset ~len =
  let b = bytes_of t f in
  if offset < 0 || len < 0 || offset + len > t.page_size then
    invalid_arg "Phys_mem.read: out of frame";
  Bytes.sub b offset len

let write t f ~offset data =
  let b = bytes_of t f in
  let len = Bytes.length data in
  if offset < 0 || offset + len > t.page_size then
    invalid_arg "Phys_mem.write: out of frame";
  Bytes.blit data 0 b offset len

let read_byte t f ~offset = Bytes.get (bytes_of t f) offset

let write_byte t f ~offset c = Bytes.set (bytes_of t f) offset c

let zero_frame t f = Bytes.fill (bytes_of t f) 0 t.page_size '\000'

let copy_frame t ~src ~dst =
  Bytes.blit (bytes_of t src) 0 (bytes_of t dst) 0 t.page_size

let frame_equal t a b = Bytes.equal (bytes_of t a) (bytes_of t b)
