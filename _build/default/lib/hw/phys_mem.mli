(** Simulated physical memory.

    Physical memory is an array of hardware page frames, each holding real
    byte contents, so that copy-on-write, zero fill and pager backing can be
    verified for data correctness and not just for cost counters.

    Frames can be declared *absent* to model machines like the SUN 3 whose
    physical address space has large holes (display memory addressable as
    high physical memory, Section 5.1); absent frames exist as addresses but
    have no storage and must never be allocated. *)

type t
(** A physical memory. *)

type frame = int
(** A physical frame number (pfn). *)

val create : page_size:int -> frames:int -> ?holes:(frame * frame) list -> unit -> t
(** [create ~page_size ~frames ~holes ()] is a memory of [frames] frames of
    [page_size] bytes.  Each [(lo, hi)] in [holes] marks frames [lo..hi]
    inclusive as absent.  [page_size] must be a power of two. *)

val page_size : t -> int
(** [page_size t] is the hardware page size in bytes. *)

val frame_count : t -> int
(** [frame_count t] is the number of frame numbers, including absent
    ones. *)

val frame_exists : t -> frame -> bool
(** [frame_exists t f] is [true] iff [f] is in range and backed by
    storage. *)

val present_frames : t -> frame list
(** [present_frames t] lists the frames backed by storage, ascending. *)

val read : t -> frame -> offset:int -> len:int -> Bytes.t
(** [read t f ~offset ~len] copies [len] bytes out of frame [f] starting at
    [offset].  The range must lie within the frame. *)

val write : t -> frame -> offset:int -> Bytes.t -> unit
(** [write t f ~offset data] copies [data] into frame [f] at [offset]. *)

val read_byte : t -> frame -> offset:int -> char
(** [read_byte t f ~offset] is the byte at [offset] in frame [f]. *)

val write_byte : t -> frame -> offset:int -> char -> unit
(** [write_byte t f ~offset c] stores [c] at [offset] in frame [f]. *)

val zero_frame : t -> frame -> unit
(** [zero_frame t f] fills frame [f] with zero bytes (the hardware
    [pmap_zero_page] operation of Table 3-3). *)

val copy_frame : t -> src:frame -> dst:frame -> unit
(** [copy_frame t ~src ~dst] copies the contents of [src] into [dst] (the
    hardware [pmap_copy_page] operation of Table 3-3). *)

val frame_equal : t -> frame -> frame -> bool
(** [frame_equal t a b] is [true] iff frames [a] and [b] hold identical
    bytes; used by tests. *)
