(** The hardware translation interface between the machine and a pmap.

    A CPU translates a virtual page number by consulting its TLB and, on a
    miss, walking whatever hardware-defined structure the active pmap
    maintains.  The machine knows nothing about those structures: it sees
    only this record, provided by the pmap layer when a pmap is activated
    on a CPU ([pmap_activate], Table 3-3).  This is the simulated analogue
    of the MMU's table-walk hardware. *)

type outcome =
  | Mapped of { pfn : int; prot : Prot.t }
      (** A valid translation with its hardware permissions. *)
  | Missing
      (** No translation; the access must fault to the kernel. *)

type t = {
  asid : int;
      (** Address-space identifier; unique per pmap, keys TLB entries. *)
  lookup : int -> outcome;
      (** [lookup vpn] walks the hardware structure for virtual page
          [vpn]. *)
  walk_cost : int;
      (** Cycles charged for one walk (0 for MMUs whose mapping RAM is the
          translation path itself, as on the SUN 3). *)
}

val never : asid:int -> t
(** [never ~asid] is a translator with no valid mappings (used by TLB-only
    machines, where every miss traps to software). *)
