(** Simulated architecture descriptors.

    The paper ports Mach to the VAX family, the IBM RT PC, the SUN 3 and
    NS32082-based multiprocessors (Encore MultiMax, Sequent Balance), plus a
    TLB-only machine (the IBM RP3 simulator).  An [Arch.t] captures what the
    pmap layer needs to know about each: hardware page size, address-space
    limits, TLB geometry, per-architecture quirks, and a cycle cost model
    used by the simulated machine to account time.

    Costs are expressed in abstract CPU cycles; [cycles_per_ms] converts
    them to milliseconds for paper-style tables.  The constants are
    calibrated so the *ratios* of the paper's measurements are reproduced;
    absolute values are documentation, not measurement. *)

type kind =
  | Vax        (** linear page tables per region, 512-byte pages *)
  | Rt_pc      (** hashed inverted page table, one mapping per physical page *)
  | Sun3       (** segment + page tables, 8 hardware contexts *)
  | Ns32082    (** two-level tables, 16 MB VA / 32 MB PA limits, r-m-w bug *)
  | Tlb_only   (** no hardware-defined memory structure; software TLB fill *)

type cost = {
  mem_op : int;          (** one memory touch that hits the TLB *)
  move_16b : int;        (** copying or zeroing 16 bytes of memory *)
  tlb_fill : int;        (** hardware translation-table walk on TLB miss *)
  fault_overhead : int;  (** trap, kernel entry and exit for a page fault *)
  pte_write : int;       (** creating or changing one hardware map entry *)
  tlb_flush : int;       (** flushing one local TLB *)
  ipi : int;             (** interrupting a remote CPU *)
  context_switch : int;  (** switching the active address space *)
  syscall : int;         (** kernel call entry and exit *)
  proc_work : int;       (** process creation/teardown machinery charged
                             once per fork (proc table, u-area, wait) *)
  disk_latency : int;    (** fixed latency of one disk operation *)
  disk_per_kb : int;     (** transfer cost per KB moved to or from disk *)
}

type t = {
  kind : kind;
  name : string;                    (** e.g. ["uVAX II"] *)
  hw_page_size : int;               (** hardware page size in bytes *)
  user_va_limit : int;              (** highest user virtual address + 1 *)
  phys_limit : int option;          (** max addressable physical bytes *)
  tlb_entries : int;                (** per-CPU TLB capacity *)
  contexts : int option;            (** hardware contexts (SUN 3: 8) *)
  pte_bytes : int;                  (** size of one hardware map entry *)
  reports_rmw_as_read : bool;       (** NS32082 bug: write faults on
                                        read-modify-write report as reads *)
  cycles_per_ms : int;              (** clock rate for ms conversion *)
  cost : cost;
}

val uvax2 : t
(** MicroVAX II: VAX architecture, ~1 MIPS. *)

val vax8200 : t
(** VAX 8200: VAX architecture, used for the file-reading rows of
    Table 7-1. *)

val vax8650 : t
(** VAX 8650: fast VAX used for the compilation rows of Table 7-2. *)

val rt_pc : t
(** IBM RT PC: inverted page table, 2 KB pages. *)

val sun3_160 : t
(** SUN 3/160: segment and page tables, 8 KB pages, 8 contexts, and a
    physical address hole where display memory lives. *)

val ns32082 : t
(** National NS32082 MMU as used by the Encore MultiMax and Sequent
    Balance: 16 MB virtual / 32 MB physical limits and the
    read-modify-write fault-reporting bug. *)

val rp3_tlb : t
(** TLB-only experimental machine (the IBM RP3 simulation of Section 5):
    every TLB miss traps to software. *)

val all : t list
(** All predefined architectures, in the order above. *)

val cycles_to_ms : t -> int -> float
(** [cycles_to_ms t c] converts a cycle count to milliseconds on [t]. *)

val pp : Format.formatter -> t -> unit
(** Prints the architecture name. *)
