type t = { read : bool; write : bool; execute : bool }

let make ~read ~write ~execute = { read; write; execute }

let none = { read = false; write = false; execute = false }
let read_only = { read = true; write = false; execute = false }
let read_write = { read = true; write = true; execute = false }
let read_execute = { read = true; write = false; execute = true }
let all = { read = true; write = true; execute = true }

let is_none p = not (p.read || p.write || p.execute)

let subset p ~of_ =
  (not p.read || of_.read)
  && (not p.write || of_.write)
  && (not p.execute || of_.execute)

let inter p q =
  { read = p.read && q.read;
    write = p.write && q.write;
    execute = p.execute && q.execute }

let union p q =
  { read = p.read || q.read;
    write = p.write || q.write;
    execute = p.execute || q.execute }

let remove_write p = { p with write = false }

let allows p ~write = if write then p.write else p.read

let equal p q = p = q

let pp ppf p =
  Format.fprintf ppf "%c%c%c"
    (if p.read then 'r' else '-')
    (if p.write then 'w' else '-')
    (if p.execute then 'x' else '-')

let to_string p = Format.asprintf "%a" pp p
