(** Network pagers: memory objects served by a pager on another machine.

    The paper (Section 6): "It is likewise possible to implement shared
    copy-on-reference or read/write data in a network or loosely coupled
    multiprocessor.  Tasks may map into their address spaces references
    to memory objects which can be implemented by pagers anywhere on the
    network."

    A {!server} exports files of its machine's file system; {!import}
    builds, for a {e client} kernel, a pager whose [pager_data_request]
    is an RPC to the server — pages cross the network only when first
    referenced (copy-on-reference), and dirty pages are written back the
    same way.  The server reads through its own resident page cache, so
    hot pages cost it no disk I/O. *)

type server
(** A memory server running on one node. *)

val serve :
  Netlink.t -> node:int -> Mach_core.Vm_sys.t -> Mach_pagers.Simfs.t ->
  server
(** [serve link ~node sys fs] exports [fs] (on machine [node], whose
    kernel state is [sys]) to the other nodes. *)

val import :
  Netlink.t -> node:int -> Mach_core.Vm_sys.t -> server -> name:string ->
  Mach_core.Types.pager
(** [import link ~node sys server ~name] is a pager usable by the kernel
    on machine [node] that serves [name] from the remote server.  Raises
    [Not_found] if the file does not exist remotely.  Pagers are memoized
    per (client node, server, name). *)

val map_remote :
  Netlink.t -> node:int -> Mach_core.Vm_sys.t -> Mach_core.Task.t ->
  server -> name:string -> ?copy:bool -> unit ->
  (int * int, Mach_core.Kr.t) result
(** [map_remote link ~node sys task server ~name ()] maps the remote file
    into [task]'s address space copy-on-reference, returning [(address,
    size)]. *)

val fetch_whole :
  Netlink.t -> node:int -> Mach_core.Vm_sys.t -> server -> name:string ->
  Bytes.t
(** [fetch_whole link ~node sys server ~name] transfers the entire file
    in one exchange — the eager alternative the copy-on-reference bench
    compares against. *)
