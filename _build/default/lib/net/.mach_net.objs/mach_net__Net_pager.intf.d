lib/net/net_pager.mli: Bytes Mach_core Mach_pagers Netlink
