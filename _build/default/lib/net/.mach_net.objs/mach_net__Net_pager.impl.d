lib/net/net_pager.ml: Bytes Hashtbl Kr Mach_core Mach_pagers Netlink Printf Simfs Types Vm_sys Vm_user Vnode_pager
