lib/net/netlink.mli: Mach_hw
