lib/net/netlink.ml: Arch Array Mach_hw Machine
