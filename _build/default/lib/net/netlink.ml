open Mach_hw

type t = {
  machines : Machine.t array;
  latency_us : int;
  mbit_per_s : int;
  mutable messages : int;
  mutable bytes_moved : int;
}

let create ?(latency_us = 1000) ?(mbit_per_s = 10) machines =
  if machines = [] then invalid_arg "Netlink.create: no machines";
  { machines = Array.of_list machines; latency_us; mbit_per_s;
    messages = 0; bytes_moved = 0 }

let node_count t = Array.length t.machines

(* Cycles a transfer of [bytes] costs on [machine]: latency plus wire
   time, both expressed through that machine's clock rate. *)
let transfer_cycles t machine bytes =
  let arch = Machine.arch machine in
  let per_ms = arch.Arch.cycles_per_ms in
  let latency = t.latency_us * per_ms / 1000 in
  (* wire time: bytes * 8 bits at mbit_per_s -> microseconds *)
  let wire_us = bytes * 8 / t.mbit_per_s in
  latency + (wire_us * per_ms / 1000)

let rpc t ~from_node ~from_cpu ~to_node ~to_cpu ~request_bytes ~reply_bytes f =
  let src = t.machines.(from_node) in
  let dst = t.machines.(to_node) in
  t.messages <- t.messages + 2;
  t.bytes_moved <- t.bytes_moved + request_bytes + reply_bytes;
  (* Request travels; server computes; reply travels.  The remote service
     time is measured on the remote clock and mirrored onto the caller,
     who blocks for it. *)
  Machine.charge src ~cpu:from_cpu
    (transfer_cycles t src (request_bytes + reply_bytes));
  Machine.charge dst ~cpu:to_cpu
    (transfer_cycles t dst (request_bytes + reply_bytes));
  let before = Machine.cycles dst ~cpu:to_cpu in
  let result = f () in
  let service = Machine.cycles dst ~cpu:to_cpu - before in
  let src_arch = Machine.arch src and dst_arch = Machine.arch dst in
  let mirrored =
    service * src_arch.Arch.cycles_per_ms / dst_arch.Arch.cycles_per_ms
  in
  Machine.charge src ~cpu:from_cpu mirrored;
  result

let messages t = t.messages

let bytes_moved t = t.bytes_moved

let reset_counters t =
  t.messages <- 0;
  t.bytes_moved <- 0
