(** A simulated network link between machines.

    Section 6: Mach's memory/communication integration extends
    transparently into a distributed environment — "tasks may map into
    their address spaces references to memory objects which can be
    implemented by pagers anywhere on the network".  This module provides
    the substrate: request/response exchanges between simulated machines,
    charging latency and per-byte transfer time to {e both} ends'
    clocks. *)

type t
(** A link between two or more machines. *)

val create :
  ?latency_us:int -> ?mbit_per_s:int -> Mach_hw.Machine.t list -> t
(** [create machines] links the machines.  Defaults model mid-1980s
    Ethernet: 1000 us latency per exchange, 10 Mbit/s. *)

val node_count : t -> int

val rpc :
  t -> from_node:int -> from_cpu:int -> to_node:int -> to_cpu:int ->
  request_bytes:int -> reply_bytes:int -> (unit -> 'a) -> 'a
(** [rpc t ~from_node ~from_cpu ~to_node ~to_cpu ~request_bytes
    ~reply_bytes f] performs [f] "on the remote node" and returns its
    result, charging both machines for the exchange.  The caller's clock
    also absorbs the remote service time so elapsed time composes the way
    a blocking RPC does. *)

val messages : t -> int
(** Exchanges performed so far. *)

val bytes_moved : t -> int
(** Total payload bytes carried (both directions). *)

val reset_counters : t -> unit
