type proc = int

type t = {
  os_name : string;
  machine : Mach_hw.Machine.t;
  proc_create : name:string -> proc;
  proc_fork : cpu:int -> proc -> proc;
  proc_exit : cpu:int -> proc -> unit;
  proc_run : cpu:int -> proc -> unit;
  alloc : cpu:int -> proc -> size:int -> int;
  touch : cpu:int -> proc -> addr:int -> size:int -> write:bool -> unit;
  exec : cpu:int -> proc -> text:string -> unit;
  read_file : cpu:int -> name:string -> offset:int -> len:int -> int;
  write_file : cpu:int -> name:string -> offset:int -> data:Bytes.t -> unit;
  install_file : name:string -> data:Bytes.t -> unit;
  elapsed_ms : unit -> float;
  reset : unit -> unit;
}

let make_proc i = i

let proc_id p = p
