(** The Mach implementation of the benchmark OS surface.

    Fork is copy-on-write via the address-map fork of Section 3; exec maps
    the program text as a memory object through the vnode pager, so the
    object cache makes repeated execs of the same program cheap; file
    reads go through memory objects and the resident page cache rather
    than a fixed buffer pool. *)

val make :
  Mach_core.Kernel.t -> fs:Mach_pagers.Simfs.t -> Os_iface.t
(** [make kernel ~fs] wraps a booted Mach kernel.  The kernel and [fs]
    must share the same machine. *)
