open Mach_util

type op =
  | Spawn of int
  | Fork of int * int
  | Exit of int
  | Alloc of int * int
  | Touch of int * int * bool
  | Exec of int * string
  | Read_file of string * int
  | Write_file of string * int

type t = {
  wl_files : (string * int) list;
  wl_ops : op list;
}

let kb = 1024

let slots = 6

let generate ~seed ~ops =
  let rng = Det_rng.create ~seed in
  let files =
    List.init 4 (fun i ->
        (Printf.sprintf "/wl/file%d" i, (4 + Det_rng.int rng 60) * kb))
  in
  let programs =
    List.init 2 (fun i ->
        (Printf.sprintf "/wl/prog%d" i, (64 + Det_rng.int rng 128) * kb))
  in
  let any_file () =
    fst (List.nth files (Det_rng.int rng (List.length files)))
  in
  let any_program () =
    fst (List.nth programs (Det_rng.int rng (List.length programs)))
  in
  let op () =
    let slot = Det_rng.int rng slots in
    match Det_rng.int rng 100 with
    | n when n < 10 -> Spawn slot
    | n when n < 18 -> Fork (slot, Det_rng.int rng slots)
    | n when n < 23 -> Exit slot
    | n when n < 38 -> Alloc (slot, (1 + Det_rng.int rng 16) * 4 * kb)
    | n when n < 70 -> Touch (slot, Det_rng.int rng 4, Det_rng.bool rng)
    | n when n < 78 -> Exec (slot, any_program ())
    | n when n < 92 -> Read_file (any_file (), (1 + Det_rng.int rng 32) * kb)
    | _ -> Write_file (any_file (), (1 + Det_rng.int rng 8) * kb)
  in
  { wl_files = files @ programs; wl_ops = List.init ops (fun _ -> op ()) }

let setup (os : Os_iface.t) t =
  List.iter
    (fun (name, size) ->
       os.Os_iface.install_file ~name ~data:(Bytes.make size 'w'))
    t.wl_files

type slot_state = {
  mutable proc : Os_iface.proc option;
  mutable regions : (int * int) list; (* base, size; newest first *)
}

let run (os : Os_iface.t) t =
  let cpu = 0 in
  let state = Array.init slots (fun _ -> { proc = None; regions = [] }) in
  let with_proc slot f =
    match state.(slot).proc with
    | Some p ->
      os.Os_iface.proc_run ~cpu p;
      f p
    | None -> ()
  in
  os.Os_iface.reset ();
  List.iter
    (fun op ->
       match op with
       | Spawn slot ->
         if state.(slot).proc = None then begin
           state.(slot).proc
           <- Some (os.Os_iface.proc_create
                      ~name:(Printf.sprintf "wl%d" slot));
           state.(slot).regions <- []
         end
       | Fork (parent, child) ->
         if parent <> child && state.(child).proc = None then
           with_proc parent (fun p ->
               state.(child).proc <- Some (os.Os_iface.proc_fork ~cpu p);
               state.(child).regions <- state.(parent).regions)
       | Exit slot ->
         with_proc slot (fun p ->
             os.Os_iface.proc_exit ~cpu p;
             state.(slot).proc <- None;
             state.(slot).regions <- [])
       | Alloc (slot, size) ->
         with_proc slot (fun p ->
             let base = os.Os_iface.alloc ~cpu p ~size in
             state.(slot).regions <- (base, size) :: state.(slot).regions)
       | Touch (slot, region, write) ->
         with_proc slot (fun p ->
             match List.nth_opt state.(slot).regions region with
             | Some (base, size) ->
               os.Os_iface.touch ~cpu p ~addr:base ~size ~write
             | None -> ())
       | Exec (slot, prog) ->
         with_proc slot (fun p -> os.Os_iface.exec ~cpu p ~text:prog)
       | Read_file (name, len) ->
         ignore (os.Os_iface.read_file ~cpu ~name ~offset:0 ~len)
       | Write_file (name, len) ->
         os.Os_iface.write_file ~cpu ~name ~offset:0
           ~data:(Bytes.make len 'x'))
    t.wl_ops;
  (* Clean up so repeated runs start equal. *)
  Array.iter
    (fun s ->
       match s.proc with
       | Some p ->
         os.Os_iface.proc_run ~cpu p;
         os.Os_iface.proc_exit ~cpu p;
         s.proc <- None
       | None -> ())
    state;
  os.Os_iface.elapsed_ms ()

let op_count t = List.length t.wl_ops
