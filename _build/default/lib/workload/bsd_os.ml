open Mach_hw
open Mach_bsd
open Mach_pagers

let make bsd ~fs =
  let machine = Bsd_vm.machine bsd in
  let procs : (int, Bsd_vm.proc) Hashtbl.t = Hashtbl.create 32 in
  let next = ref 0 in
  let register p =
    incr next;
    Hashtbl.add procs !next p;
    Os_iface.make_proc !next
  in
  let proc p = Hashtbl.find procs (Os_iface.proc_id p) in
  let page = Phys_mem.page_size (Machine.phys machine) in
  {
    Os_iface.os_name =
      (Bsd_vm.variant_for (Machine.arch machine)).Bsd_vm.v_name;
    machine;
    proc_create =
      (fun ~name -> register (Bsd_vm.create_proc bsd ~name ()));
    proc_fork = (fun ~cpu p -> register (Bsd_vm.fork bsd ~cpu (proc p)));
    proc_exit =
      (fun ~cpu p ->
         Bsd_vm.exit bsd ~cpu (proc p);
         Hashtbl.remove procs (Os_iface.proc_id p));
    proc_run = (fun ~cpu p -> Bsd_vm.run_proc bsd ~cpu (proc p));
    alloc = (fun ~cpu p ~size -> Bsd_vm.sbrk bsd ~cpu (proc p) ~size);
    touch =
      (fun ~cpu p ~addr ~size ~write ->
         Bsd_vm.run_proc bsd ~cpu (proc p);
         let rec loop va =
           if va < addr + size then begin
             Machine.touch machine ~cpu ~va ~write;
             loop (va + page)
           end
         in
         loop addr);
    exec =
      (fun ~cpu p ~text -> ignore (Bsd_vm.exec bsd ~cpu (proc p) ~text));
    read_file =
      (fun ~cpu ~name ~offset ~len ->
         Bytes.length (Bsd_vm.read_file bsd ~cpu ~name ~offset ~len));
    write_file =
      (fun ~cpu ~name ~offset ~data ->
         Bsd_vm.write_file bsd ~cpu ~name ~offset ~data);
    install_file = (fun ~name ~data -> Simfs.install_file fs ~name ~data);
    elapsed_ms = (fun () -> Machine.elapsed_ms machine);
    reset =
      (fun () ->
         Machine.reset_clocks machine;
         Simdisk.reset_counters (Simfs.disk fs);
         Buffer_cache.reset_counters (Bsd_vm.bcache bsd));
  }
