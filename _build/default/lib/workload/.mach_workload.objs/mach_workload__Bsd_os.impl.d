lib/workload/bsd_os.ml: Bsd_vm Buffer_cache Bytes Hashtbl Mach_bsd Mach_hw Mach_pagers Machine Os_iface Phys_mem Simdisk Simfs
