lib/workload/mach_os.mli: Mach_core Mach_pagers Os_iface
