lib/workload/workload.ml: Array Bytes Det_rng List Mach_util Os_iface Printf
