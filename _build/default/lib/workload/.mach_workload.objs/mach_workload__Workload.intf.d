lib/workload/workload.mli: Os_iface
