lib/workload/compile_workload.mli: Os_iface
