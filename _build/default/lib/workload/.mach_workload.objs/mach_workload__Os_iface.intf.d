lib/workload/os_iface.mli: Bytes Mach_hw
