lib/workload/compile_workload.ml: Bytes Os_iface Printf String
