lib/workload/mach_os.ml: Arch Bytes Hashtbl Kernel Kr Mach_core Mach_hw Mach_pagers Mach_pmap Machine Os_iface Simdisk Simfs Task Vm_sys Vm_user Vnode_pager
