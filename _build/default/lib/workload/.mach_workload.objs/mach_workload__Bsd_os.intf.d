lib/workload/bsd_os.mli: Mach_bsd Mach_pagers Os_iface
