lib/workload/os_iface.ml: Bytes Mach_hw
