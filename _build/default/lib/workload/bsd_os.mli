(** The traditional-UNIX implementation of the benchmark OS surface,
    backed by {!Mach_bsd.Bsd_vm}: eager (or SunOS-style COW) fork,
    buffer-cache file I/O, exec by copying text through the buffer
    cache. *)

val make :
  Mach_bsd.Bsd_vm.t -> fs:Mach_pagers.Simfs.t -> Os_iface.t
(** [make bsd ~fs] wraps a booted baseline kernel.  [fs] must be the file
    system [bsd] was created over. *)
