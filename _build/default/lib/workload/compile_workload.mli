(** The synthetic compilation workload behind Table 7-2.

    A compile of one program is modelled as UNIX make/cc would drive it:
    the shell forks; the child execs the compiler (whose text is one
    shared file — the reuse the object cache exploits), reads the source
    file, allocates and dirties a working set, writes the object file and
    exits.  Multi-pass compilers repeat this per pass with distinct pass
    binaries.

    The "13 programs" row uses small sources; the "Mach kernel" row is
    many more, larger, compilation units.  Everything is deterministic. *)

type config = {
  programs : int;          (** compilation units *)
  source_kb : int;         (** source file size per unit *)
  passes : int;            (** compiler passes (cpp, ccom, as, ...) *)
  pass_text_kb : int;      (** text size of each pass binary *)
  work_kb : int;           (** working set dirtied per pass *)
  output_kb : int;         (** object file written per unit *)
}

val thirteen_programs : config
(** The "13 programs" benchmark of Table 7-2. *)

val kernel_build : config
(** The "Mach kernel" build of Table 7-2 (scaled down proportionally so
    the simulation stays fast; the shape is what matters). *)

val fork_test : config
(** The small "compile fork test program" of Table 7-2 (SUN 3 row). *)

val setup : Os_iface.t -> config -> unit
(** Install the compiler pass binaries and all source files (uncharged). *)

val run : Os_iface.t -> config -> float
(** Run all compiles on CPU 0 and return elapsed milliseconds (the clock
    is reset first; file caches keep whatever state setup and prior runs
    left, as on a real machine). *)
