open Mach_hw
open Mach_core
open Mach_pagers

let make kernel ~fs =
  let machine = Kernel.machine kernel in
  let sys = Kernel.sys kernel in
  let tasks : (int, Task.t) Hashtbl.t = Hashtbl.create 32 in
  let next = ref 0 in
  let register task =
    incr next;
    Hashtbl.add tasks !next task;
    Os_iface.make_proc !next
  in
  let task p = Hashtbl.find tasks (Os_iface.proc_id p) in
  let ps = Kernel.page_size kernel in
  let touch ~cpu p ~addr ~size ~write =
    let t = task p in
    Kernel.run_task kernel ~cpu t;
    let rec loop va =
      if va < addr + size then begin
        Machine.touch machine ~cpu ~va ~write;
        loop (va + ps)
      end
    in
    loop addr
  in
  {
    Os_iface.os_name = "Mach";
    machine;
    proc_create = (fun ~name -> register (Kernel.create_task kernel ~name ()));
    proc_fork =
      (fun ~cpu p -> register (Kernel.fork_task kernel ~cpu (task p)));
    proc_exit =
      (fun ~cpu p ->
         Kernel.terminate_task kernel ~cpu (task p);
         Hashtbl.remove tasks (Os_iface.proc_id p));
    proc_run = (fun ~cpu p -> Kernel.run_task kernel ~cpu (task p));
    alloc =
      (fun ~cpu p ~size ->
         Mach_pmap.Pmap_domain.set_current_cpu kernel.Kernel.domain cpu;
         match Vm_user.allocate sys (task p) ~size ~anywhere:true () with
         | Ok addr -> addr
         | Error e -> failwith (Kr.to_string e));
    touch = (fun ~cpu p ~addr ~size ~write -> touch ~cpu p ~addr ~size ~write);
    exec =
      (fun ~cpu p ~text ->
         let t = task p in
         Kernel.run_task kernel ~cpu t;
         match Vnode_pager.map_file sys fs t ~name:text () with
         | Error e -> failwith (Kr.to_string e)
         | Ok (addr, size) ->
           (* Demand-page the whole text in, as running it would. *)
           touch ~cpu p ~addr ~size ~write:false);
    read_file =
      (fun ~cpu ~name ~offset ~len ->
         Mach_pmap.Pmap_domain.set_current_cpu kernel.Kernel.domain cpu;
         Vm_sys.charge sys (Vm_sys.cost sys).Arch.syscall;
         Bytes.length
           (Vnode_pager.read_through_object sys fs ~name ~offset ~len));
    write_file =
      (fun ~cpu ~name ~offset ~data ->
         Mach_pmap.Pmap_domain.set_current_cpu kernel.Kernel.domain cpu;
         Vm_sys.charge sys (Vm_sys.cost sys).Arch.syscall;
         Simfs.write fs ~cpu ~name ~offset ~data);
    install_file = (fun ~name ~data -> Simfs.install_file fs ~name ~data);
    elapsed_ms = (fun () -> Machine.elapsed_ms machine);
    reset =
      (fun () ->
         Machine.reset_clocks machine;
         Simdisk.reset_counters (Simfs.disk fs));
  }
