type config = {
  programs : int;
  source_kb : int;
  passes : int;
  pass_text_kb : int;
  work_kb : int;
  output_kb : int;
}

let thirteen_programs =
  { programs = 13; source_kb = 8; passes = 3; pass_text_kb = 256;
    work_kb = 128; output_kb = 8 }

(* The real kernel build was ~250 files; 60 units keeps the simulation
   quick while preserving the cache-pressure shape. *)
let kernel_build =
  { programs = 60; source_kb = 24; passes = 3; pass_text_kb = 512;
    work_kb = 192; output_kb = 16 }

let fork_test =
  { programs = 4; source_kb = 1; passes = 3; pass_text_kb = 256;
    work_kb = 64; output_kb = 2 }

let kb = 1024

let pass_binary i = Printf.sprintf "/bin/cc-pass%d" i

let source_file i = Printf.sprintf "/src/unit%03d.c" i

let object_file i = Printf.sprintf "/obj/unit%03d.o" i

(* Deterministic file contents so data integrity checks are possible. *)
let filler ~tag ~size =
  let b = Bytes.create size in
  let t = String.length tag in
  for i = 0 to size - 1 do
    Bytes.set b i tag.[i mod t]
  done;
  b

let setup (os : Os_iface.t) cfg =
  for p = 0 to cfg.passes - 1 do
    os.Os_iface.install_file ~name:(pass_binary p)
      ~data:(filler ~tag:(Printf.sprintf "PASS%d" p) ~size:(cfg.pass_text_kb * kb))
  done;
  for i = 0 to cfg.programs - 1 do
    os.Os_iface.install_file ~name:(source_file i)
      ~data:(filler ~tag:(Printf.sprintf "src%d" i) ~size:(cfg.source_kb * kb))
  done

let compile_one (os : Os_iface.t) cfg ~shell ~unit_idx =
  let cpu = 0 in
  for pass = 0 to cfg.passes - 1 do
    let child = os.Os_iface.proc_fork ~cpu shell in
    os.Os_iface.proc_run ~cpu child;
    os.Os_iface.exec ~cpu child ~text:(pass_binary pass);
    ignore
      (os.Os_iface.read_file ~cpu ~name:(source_file unit_idx) ~offset:0
         ~len:(cfg.source_kb * kb));
    let work = os.Os_iface.alloc ~cpu child ~size:(cfg.work_kb * kb) in
    os.Os_iface.touch ~cpu child ~addr:work ~size:(cfg.work_kb * kb)
      ~write:true;
    if pass = cfg.passes - 1 then
      os.Os_iface.write_file ~cpu ~name:(object_file unit_idx) ~offset:0
        ~data:(filler ~tag:"obj" ~size:(cfg.output_kb * kb));
    os.Os_iface.proc_exit ~cpu child
  done

let run (os : Os_iface.t) cfg =
  let cpu = 0 in
  let shell = os.Os_iface.proc_create ~name:"sh" in
  os.Os_iface.proc_run ~cpu shell;
  (* Give the shell a small dirty working set so fork has something to
     copy, as a real shell does. *)
  let sh_mem = os.Os_iface.alloc ~cpu shell ~size:(64 * kb) in
  os.Os_iface.touch ~cpu shell ~addr:sh_mem ~size:(64 * kb) ~write:true;
  os.Os_iface.reset ();
  for i = 0 to cfg.programs - 1 do
    compile_one os cfg ~shell ~unit_idx:i
  done;
  let ms = os.Os_iface.elapsed_ms () in
  os.Os_iface.proc_exit ~cpu shell;
  ms
