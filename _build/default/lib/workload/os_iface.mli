(** A common operating-system surface for benchmark workloads.

    Tables 7-1 and 7-2 compare the same operations under Mach and under
    traditional UNIX on identical hardware; this record is that common
    surface.  {!Mach_os.make} and {!Bsd_os.make} provide the two
    implementations over the same simulated machine and file system
    substrate, so measured differences come from the VM design. *)

type proc
(** An opaque process/task handle. *)

type t = {
  os_name : string;
  machine : Mach_hw.Machine.t;
  proc_create : name:string -> proc;
      (** a fresh process with an empty address space *)
  proc_fork : cpu:int -> proc -> proc;
      (** duplicate the address space (UNIX fork semantics) *)
  proc_exit : cpu:int -> proc -> unit;
  proc_run : cpu:int -> proc -> unit;
      (** schedule the process on a CPU (activates its pmap) *)
  alloc : cpu:int -> proc -> size:int -> int;
      (** allocate zero-filled memory, returning its base address *)
  touch : cpu:int -> proc -> addr:int -> size:int -> write:bool -> unit;
      (** access one byte in every page of the range through the MMU *)
  exec : cpu:int -> proc -> text:string -> unit;
      (** load and touch the program text stored in file [text] *)
  read_file : cpu:int -> name:string -> offset:int -> len:int -> int;
      (** UNIX read(): returns bytes read *)
  write_file : cpu:int -> name:string -> offset:int -> data:Bytes.t -> unit;
  install_file : name:string -> data:Bytes.t -> unit;
      (** benchmark setup: create a file without charging the clock *)
  elapsed_ms : unit -> float;
  reset : unit -> unit;
      (** zero clocks and counters between measurements (keeps caches
          warm — measuring cold vs warm is the benchmark's job) *)
}

val make_proc : int -> proc
(** Implementations wrap their internal process ids. *)

val proc_id : proc -> int
