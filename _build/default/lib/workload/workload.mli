(** Trace-driven workloads over the common OS surface.

    A workload is an explicit list of operations (spawn, fork, allocate,
    touch, file I/O, exec, exit) that can be generated deterministically
    from a seed and replayed against any {!Os_iface.t} — the same trace
    runs on Mach and on the baseline, so mixed-load comparisons beyond
    the paper's fixed benchmarks are possible and reproducible. *)

type op =
  | Spawn of int                       (** create process in slot *)
  | Fork of int * int                  (** fork slot -> child slot *)
  | Exit of int                        (** terminate the slot's process *)
  | Alloc of int * int                 (** slot, bytes *)
  | Touch of int * int * bool         (** slot, region index, write *)
  | Exec of int * string               (** slot, program file *)
  | Read_file of string * int          (** file, bytes *)
  | Write_file of string * int         (** file, bytes *)

type t = {
  wl_files : (string * int) list;  (** files to install before running *)
  wl_ops : op list;
}

val generate : seed:int -> ops:int -> t
(** [generate ~seed ~ops] is a reproducible mixed workload: the same seed
    always yields the same trace. *)

val setup : Os_iface.t -> t -> unit
(** Install the workload's files (uncharged). *)

val run : Os_iface.t -> t -> float
(** [run os t] replays the trace (clock reset first) and returns elapsed
    simulated milliseconds.  Operations on empty slots or missing regions
    are skipped, so any generated trace is safe on any OS. *)

val op_count : t -> int
