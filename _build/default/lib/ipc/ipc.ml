open Mach_hw
open Mach_core

type port = { p_id : int; p_name : string; p_queue : message Queue.t }

and item =
  | Inline of Bytes.t
  | Out_of_line of Vm_map.map_copy
  | Port_right of port

and message = {
  msg_tag : string;
  msg_ints : int list;
  msg_items : item list;
  msg_reply_to : port option;
}

let next_port_id = ref 0

let create_port ?(name = "port") () =
  incr next_port_id;
  { p_id = !next_port_id; p_name = name; p_queue = Queue.create () }

let port_name p = p.p_name

let pending p = Queue.length p.p_queue

let message ?(ints = []) ?(items = []) ?reply_to tag =
  { msg_tag = tag; msg_ints = ints; msg_items = items;
    msg_reply_to = reply_to }

let inline_bytes m =
  List.fold_left
    (fun acc item ->
       match item with
       | Inline b -> acc + Bytes.length b
       | Out_of_line _ | Port_right _ -> acc)
    0 m.msg_items

let charge_transfer sys m =
  let cost = Vm_sys.cost sys in
  Vm_sys.charge sys cost.Arch.syscall;
  let b = inline_bytes m in
  Vm_sys.charge sys (((b + 15) / 16) * cost.Arch.move_16b)

let send sys p m =
  charge_transfer sys m;
  Queue.add m p.p_queue

let receive sys p =
  match Queue.take_opt p.p_queue with
  | None -> None
  | Some m ->
    charge_transfer sys m;
    Some m

let send_region sys task p ~tag ~addr ~size ?(dealloc = false) () =
  match Vm_map.extract_copy sys (Task.map task) ~addr ~size with
  | Error _ as e -> e
  | Ok copy ->
    let r =
      if dealloc then
        Vm_map.deallocate_range sys (Task.map task) ~addr ~size
      else Ok ()
    in
    (match r with
     | Error _ as e ->
       Vm_map.discard_copy sys copy;
       e
     | Ok () ->
       send sys p (message tag ~items:[ Out_of_line copy ]);
       Ok ())

let receive_region sys task p =
  match receive sys p with
  | None -> Error Kr.Invalid_argument
  | Some m ->
    let rec first_ool = function
      | [] -> None
      | Out_of_line c :: _ -> Some c
      | (Inline _ | Port_right _) :: rest -> first_ool rest
    in
    (match first_ool m.msg_items with
     | None -> Error Kr.Invalid_argument
     | Some copy ->
       (match Vm_map.insert_copy sys (Task.map task) copy () with
        | Error _ as e -> e
        | Ok addr -> Ok (addr, Vm_map.copy_size copy)))

let discard_message sys m =
  List.iter
    (fun item ->
       match item with
       | Out_of_line c -> Vm_map.discard_copy sys c
       | Inline _ | Port_right _ -> ())
    m.msg_items
