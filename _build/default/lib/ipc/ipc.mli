(** Ports and messages (Section 2).

    A port is a communication channel — logically a queue for messages
    protected by the kernel; a message is a typed collection of data that
    may carry inline bytes, port rights, and {e out-of-line} memory.  The
    key to efficiency in Mach is that virtual memory management is
    integrated with communication: large amounts of data, including whole
    address spaces, are sent in a single message with the efficiency of
    simple memory remapping — the out-of-line item is a copy-on-write
    {!Mach_core.Vm_map.map_copy}, not a data copy.

    The simulation is single-threaded: [send] enqueues, [receive]
    dequeues; there is no blocking.  Costs are charged to the sending or
    receiving task's CPU clock. *)

type port
(** A kernel message queue. *)

type item =
  | Inline of Bytes.t
      (** data copied into and out of the message *)
  | Out_of_line of Mach_core.Vm_map.map_copy
      (** memory moved by reference, copy-on-write *)
  | Port_right of port
      (** a capability to another port *)

type message = {
  msg_tag : string;        (** operation name, e.g. ["pager_data_request"] *)
  msg_ints : int list;     (** small scalar arguments *)
  msg_items : item list;
  msg_reply_to : port option;
}

val create_port : ?name:string -> unit -> port
(** [create_port ()] is a fresh empty port. *)

val port_name : port -> string

val pending : port -> int
(** Messages queued and not yet received. *)

val message :
  ?ints:int list -> ?items:item list -> ?reply_to:port -> string -> message
(** [message tag] builds a message. *)

val send : Mach_core.Vm_sys.t -> port -> message -> unit
(** [send sys p m] enqueues [m] on [p], charging the kernel-call cost plus
    a copy cost for every inline byte.  Out-of-line items cost nothing
    per byte here — their price was paid (in reference manipulation) when
    the copy was extracted. *)

val receive : Mach_core.Vm_sys.t -> port -> message option
(** [receive sys p] dequeues the oldest message, charging the kernel-call
    cost plus inline copy costs. *)

val send_region :
  Mach_core.Vm_sys.t -> Mach_core.Task.t -> port -> tag:string ->
  addr:int -> size:int -> ?dealloc:bool -> unit ->
  (unit, Mach_core.Kr.t) result
(** [send_region sys task p ~tag ~addr ~size ()] sends [task]'s memory
    range as one out-of-line message: the range is extracted copy-on-write
    (and deallocated from the sender when [dealloc] is true, the move
    optimisation). *)

val receive_region :
  Mach_core.Vm_sys.t -> Mach_core.Task.t -> port ->
  (int * int, Mach_core.Kr.t) result
(** [receive_region sys task p] receives a message whose first item is
    out-of-line memory and maps it anywhere into [task]'s space, returning
    [(address, size)].  [Invalid_argument] if the queue is empty or the
    message has no out-of-line item. *)

val discard_message : Mach_core.Vm_sys.t -> message -> unit
(** Release any out-of-line memory of an unwanted message. *)
