lib/ipc/ipc.mli: Bytes Mach_core
