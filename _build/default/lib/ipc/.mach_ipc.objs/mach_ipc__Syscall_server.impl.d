lib/ipc/syscall_server.ml: Hashtbl Inheritance Ipc Kernel Kr Kthread List Mach_core Mach_hw Mach_pmap Printf Prot Task Vm_map Vm_sys Vm_user
