lib/ipc/ipc.ml: Arch Bytes Kr List Mach_core Mach_hw Queue Task Vm_map Vm_sys
