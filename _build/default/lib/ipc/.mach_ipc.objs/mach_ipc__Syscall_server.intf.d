lib/ipc/syscall_server.mli: Ipc Mach_core Mach_hw
