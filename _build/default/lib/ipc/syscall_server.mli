(** The kernel as a message server for the Table 2-1 operations.

    "Operations on objects other than messages are performed by sending
    messages to ports ...  All VM operations apply to a target task
    (represented by a port)."  This module gives every task a port and
    implements the virtual memory operations as a message protocol: a
    request message carries the operation name and scalar arguments; the
    reply carries a kern_return code and any results.  {!call} performs
    the send, lets the kernel task service its queue, and receives the
    reply — so the message path is really exercised, not short-circuited.

    Wire formats ([msg_tag], [msg_ints], items):
    - [vm_allocate]   ints [size; anywhere(0/1); addr_hint]  -> [kr; addr]
    - [vm_deallocate] ints [addr; size]                      -> [kr]
    - [vm_protect]    ints [addr; size; set_max; prot_bits]  -> [kr]
    - [vm_inherit]    ints [addr; size; inherit_code]        -> [kr]
    - [vm_copy]       ints [src; dst; size]                  -> [kr]
    - [vm_read]       ints [addr; size]                      -> [kr] + Inline data
    - [vm_write]      ints [addr] + Inline data              -> [kr]
    - [vm_regions]    ints []                -> [kr; n; (start end prot max inh shared cow)*]
    - [vm_statistics] ints []                -> [kr; page_size; total; free; active; inactive; faults; zero; cow; pager_reads; pageouts]

    Task lifecycle (the act of creating a task returns access rights to a
    port which represents the new object):
    - [task_fork]      ints []  -> [kr] + Port_right (the child's port)
    - [task_terminate] ints []  -> [kr]

    [prot_bits]: bit 0 read, bit 1 write, bit 2 execute.
    [inherit_code]: 0 shared, 1 copy, 2 none. *)

val task_create :
  Mach_core.Kernel.t -> ?name:string -> unit -> Ipc.port
(** [task_create kernel ()] creates a task and returns its port — the
    message-world equivalent of {!Mach_core.Kernel.create_task}. *)

val task_port : Mach_core.Vm_sys.t -> Mach_core.Task.t -> Ipc.port
(** [task_port sys task] is the port representing [task] (memoized; this
    is what task_create would hand back). *)

val thread_port : Mach_core.Kthread.t -> Ipc.port
(** [thread_port th] is the port representing [th]; "a thread can suspend
    another thread by sending a suspend message to that thread's thread
    port even if the requesting thread is on another node".  Understands
    [thread_suspend] and [thread_resume] (empty ints; reply [kr]). *)

val call : Mach_core.Vm_sys.t -> Ipc.port -> Ipc.message -> Ipc.message
(** [call sys port request] performs one kernel operation by message:
    enqueues [request] on the task port, services it, and returns the
    reply.  Unknown tags answer with [KERN_INVALID_ARGUMENT]. *)

val kr_of_reply : Ipc.message -> (unit, Mach_core.Kr.t) result
(** Decode the leading kern_return code of a reply. *)

val prot_bits : Mach_hw.Prot.t -> int
val prot_of_bits : int -> Mach_hw.Prot.t
val inherit_code : Mach_core.Inheritance.t -> int
val inherit_of_code : int -> Mach_core.Inheritance.t
