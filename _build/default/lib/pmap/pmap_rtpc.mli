(** IBM RT PC pmap: a single hashed inverted page table.

    The RT PC describes which virtual address maps to each physical page in
    one system-wide inverted table queried through a hash function, so a
    full 4 GB space costs no table memory proportional to its size — but
    each physical page can have {e at most one} valid mapping (Section
    5.1).  When tasks share a page, entering one task's mapping evicts the
    other's, producing the extra "alias" faults the paper measures; Mach in
    effect treats the inverted table as a large in-memory cache of the RT's
    TLB. *)

val make_domain : Backend.ctx -> Backend.factory
(** [make_domain ctx] is a factory whose pmaps share one inverted page
    table sized by the domain's physical memory. *)
