let make_domain (ctx : Backend.ctx) =
  let arch = Backend.arch ctx in
  let page = Backend.page_size ctx in
  let phys_limit =
    match arch.Mach_hw.Arch.phys_limit with
    | Some l -> l
    | None -> max_int
  in
  let pfn_ok pfn = pfn * page < phys_limit in
  {
    Backend.new_pmap =
      (fun () ->
         (* The two-level scheme has an always-present top-level table
            (1 KB for a 16 MB space with 64 KB second-level sections). *)
         Table_pmap.make ctx ~kind:Mach_hw.Arch.Ns32082
           ~va_limit:arch.Mach_hw.Arch.user_va_limit ~top_bytes:1024
           ~pfn_ok ());
    shared_map_bytes = (fun () -> 0);
  }
