(** TLB-only pmap (the IBM RP3 simulation of Section 5).

    "In principle, Mach needs no in-memory hardware-defined data structure
    to manage virtual memory.  Machines which provide only an easily
    manipulated TLB could be accommodated."  This pmap maintains no
    hardware tables at all: [pmap_enter] loads translations straight into
    the TLBs of the CPUs the pmap is active on, every TLB miss traps to the
    kernel, and the fault handler reconstructs the translation from
    machine-independent state (a fast reload, not a real page fault).

    A private software table is kept only so that [pmap_extract],
    [pmap_remove] and the pv layer can answer questions; the translation
    path never consults it. *)

val make_domain : Backend.ctx -> Backend.factory
(** [make_domain ctx] is a factory producing TLB-only pmaps.  Their
    [map_bytes] is always 0. *)
