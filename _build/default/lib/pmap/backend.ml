(* Shared context for pmap implementations within one domain.

   Holds what every architecture's pmap module needs: the machine (for
   cycle charging and TLB shootdowns), the physical-to-virtual tracking,
   asid allocation, and the CPU currently executing kernel code (set by the
   kernel on every entry, so pmap costs land on the right clock). *)

open Mach_hw

type ctx = {
  machine : Machine.t;
  pv : Pv.t;
  mutable next_asid : int;
  mutable cur_cpu : int;
  mutable urgent_mode : bool;
      (* Set by the domain around pageout-style operations: all shootdowns
         become time-critical (case 1 of Section 5.2) regardless of the
         machine's configured strategy. *)
}

(* Which CPUs a pmap is active on now, and which may still cache its
   translations (shootdown targets). *)
type presence = { active : bool array; ran_on : bool array }

let create machine =
  let frames = Phys_mem.frame_count (Machine.phys machine) in
  { machine; pv = Pv.create ~frames; next_asid = 1; cur_cpu = 0;
    urgent_mode = false }

let arch ctx = Machine.arch ctx.machine
let page_size ctx = (arch ctx).Arch.hw_page_size
let cost ctx = (arch ctx).Arch.cost
let charge ctx c = Machine.charge ctx.machine ~cpu:ctx.cur_cpu c

let fresh_asid ctx =
  let a = ctx.next_asid in
  ctx.next_asid <- a + 1;
  a

let fresh_presence ctx =
  let n = Machine.cpu_count ctx.machine in
  { active = Array.make n false; ran_on = Array.make n false }

let shoot_targets p =
  let acc = ref [] in
  for i = Array.length p.ran_on - 1 downto 0 do
    if p.ran_on.(i) then acc := i :: !acc
  done;
  !acc

let shoot ctx p req ~urgent =
  Machine.shootdown ctx.machine ~initiator:ctx.cur_cpu
    ~targets:(shoot_targets p) req ~urgent:(urgent || ctx.urgent_mode)

let shoot_page ctx p ~asid ~vpn =
  shoot ctx p (Machine.Flush_page { asid; vpn }) ~urgent:false

let shoot_asid ctx p ~asid =
  shoot ctx p (Machine.Flush_asid asid) ~urgent:false

let activate ctx p tr ~cpu =
  p.active.(cpu) <- true;
  p.ran_on.(cpu) <- true;
  Machine.set_translator ctx.machine ~cpu (Some tr)

let deactivate ctx p tr ~cpu =
  p.active.(cpu) <- false;
  if Machine.active_asid ctx.machine ~cpu = Some tr.Translator.asid then
    Machine.set_translator ctx.machine ~cpu None

let pv_insert ctx ~pfn ~asid ~vpn =
  Pv.insert ctx.pv ~pfn { Pv.pv_asid = asid; pv_vpn = vpn }

let pv_remove ctx ~pfn ~asid ~vpn =
  Pv.remove ctx.pv ~pfn { Pv.pv_asid = asid; pv_vpn = vpn }

(* Charge for zeroing or copying [bytes] of memory. *)
let move_cost ctx bytes = ((bytes + 15) / 16) * (cost ctx).Arch.move_16b

(* Above this many pages, range operations flush the whole address space
   rather than shooting page by page. *)
let flush_whole_space_threshold = 8

(* What each architecture module hands the domain: a pmap constructor plus
   an accounting of hardware structures shared by all pmaps (the RT PC's
   single inverted page table, the SUN 3's context mapping RAM). *)
type factory = {
  new_pmap : unit -> Pmap.t;
  shared_map_bytes : unit -> int;
}
