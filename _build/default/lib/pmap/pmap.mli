(** Physical maps: the machine-dependent interface of the paper.

    A [Pmap.t] is one hardware physical address map — "for a VAX, a pmap
    corresponds to a VAX page table; for the IBM RT PC, a pmap is a set of
    allocated segment registers" (Section 3.6).  The record's fields are
    the *Exported and Required PMAP Routines* of Table 3-3 plus the
    optional routines of Table 3-4; the machine-independent VM calls only
    these and never inspects hardware structures.

    Two properties the paper emphasises, and which implementations here
    honour, are:

    - a pmap is only a {e cache} of mappings: any non-wired mapping may be
      discarded at any time (to save space, to steal a SUN 3 context, to
      evict an RT PC inverted-table alias) because the machine-independent
      layer can reconstruct it at fault time;
    - page-level operations over {e all} maps of a physical page
      ([pmap_remove_all], [pmap_copy_on_write], modify/reference bits) are
      provided by the enclosing {!Pmap_domain}, which owns the
      physical-to-virtual tracking. *)

type stats = {
  mutable enters : int;          (** [pmap_enter] calls *)
  mutable removals : int;        (** mappings removed (all causes) *)
  mutable protect_ops : int;     (** [pmap_protect] range operations *)
  mutable alias_evictions : int; (** RT PC: mappings evicted because the
                                     inverted table allows one mapping per
                                     physical page (Section 5.1) *)
  mutable context_steals : int;  (** SUN 3: hardware contexts stolen,
                                     dropping all their mappings *)
  mutable cache_drops : int;     (** mappings discarded by the pmap on its
                                     own authority (cache behaviour) *)
}
(** Per-pmap operation counters, used by the Section 5.1 benches. *)

type t = {
  asid : int;
      (** Address-space identifier, unique within a domain. *)
  kind : Mach_hw.Arch.kind;
      (** The architecture this pmap belongs to. *)
  reference : unit -> unit;
      (** [pmap_reference]: add a reference; [destroy] only releases the
          structures when the last reference goes (several tasks may share
          one physical map). *)
  enter : va:int -> pfn:int -> prot:Mach_hw.Prot.t -> wired:bool -> unit;
      (** [pmap_enter]: make a virtual-to-physical mapping, replacing any
          previous mapping of the same page.  Called from the page-fault
          path. *)
  remove : start_va:int -> end_va:int -> unit;
      (** [pmap_remove]: remove all mappings in [\[start_va, end_va)].
          Used in memory deallocation. *)
  protect : start_va:int -> end_va:int -> prot:Mach_hw.Prot.t -> unit;
      (** [pmap_protect]: reduce permissions on a range.  Raising
          permissions is done by re-entering pages at fault time. *)
  extract : int -> int option;
      (** [pmap_extract]: convert virtual to physical, if mapped. *)
  access_check : int -> bool;
      (** [pmap_access]: report whether a virtual address is mapped. *)
  activate : cpu:int -> unit;
      (** [pmap_activate]: this pmap runs on [cpu] from now on; installs
          the hardware translator. *)
  deactivate : cpu:int -> unit;
      (** [pmap_deactivate]: the pmap is done on [cpu]. *)
  copy :
    (dst:t -> dst_start:int -> len:int -> src_start:int -> unit) option;
      (** [pmap_copy] (Table 3-4, optional): copy valid mappings to another
          pmap so the destination avoids initial faults.  [None] when the
          hardware gains nothing from it. *)
  pageable : (start_va:int -> end_va:int -> pageable:bool -> unit) option;
      (** [pmap_pageable] (Table 3-4, optional). *)
  resident_count : unit -> int;
      (** Number of mappings this pmap currently holds. *)
  map_bytes : unit -> int;
      (** Bytes of hardware-defined structures currently allocated; the
          Section 5.1 bench compares this across architectures. *)
  collect : unit -> unit;
      (** Garbage-collect mapping structures the hardware does not require
          right now (the paper: the machine-dependent part "may garbage
          collect non-important mapping information to save space"). *)
  destroy : unit -> unit;
      (** [pmap_destroy]: release one reference; on the last one, drop
          every mapping and release structures.  ([pmap_init] is the
          domain's construction; [pmap_update] is a no-op here because
          there is one pmap system per machine.) *)
  stats : stats;
}

val fresh_stats : unit -> stats
(** All-zero counters. *)

val enter_range :
  t -> start_va:int -> pfns:int list -> prot:Mach_hw.Prot.t -> page:int ->
  unit
(** [enter_range t ~start_va ~pfns ~prot ~page] enters consecutive pages
    starting at [start_va]; convenience used by tests and examples. *)
