(** NS32082 pmap (Encore MultiMax, Sequent Balance).

    Reproduces the MMU's shortcomings listed in Section 5.1: only 16 MB of
    virtual memory per page table, only 32 MB of addressable physical
    memory, and the chip bug that reports read-modify-write faults as read
    faults (modelled in the machine layer; the fault handler must cope). *)

val make_domain : Backend.ctx -> Backend.factory
(** [make_domain ctx] is a factory producing NS32082 pmaps.  Entering a
    mapping beyond the 16 MB virtual or 32 MB physical limit raises
    [Invalid_argument]. *)
