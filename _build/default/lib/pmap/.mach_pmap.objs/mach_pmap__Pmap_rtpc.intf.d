lib/pmap/pmap_rtpc.mli: Backend
