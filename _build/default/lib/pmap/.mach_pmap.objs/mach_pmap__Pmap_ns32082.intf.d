lib/pmap/pmap_ns32082.mli: Backend
