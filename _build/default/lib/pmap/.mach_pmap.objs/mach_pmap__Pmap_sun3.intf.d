lib/pmap/pmap_sun3.mli: Backend
