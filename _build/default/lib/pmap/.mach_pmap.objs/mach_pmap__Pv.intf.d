lib/pmap/pv.mli:
