lib/pmap/table_pmap.ml: Arch Array Backend Hashtbl List Mach_hw Pmap Prot Translator
