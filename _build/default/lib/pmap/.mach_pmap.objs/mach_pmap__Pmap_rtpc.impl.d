lib/pmap/pmap_rtpc.ml: Arch Array Backend Hashtbl List Mach_hw Machine Phys_mem Pmap Prot Translator
