lib/pmap/pmap_ns32082.ml: Backend Mach_hw Table_pmap
