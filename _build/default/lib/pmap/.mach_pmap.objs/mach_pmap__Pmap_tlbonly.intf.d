lib/pmap/pmap_tlbonly.mli: Backend
