lib/pmap/pmap_domain.mli: Mach_hw Pmap
