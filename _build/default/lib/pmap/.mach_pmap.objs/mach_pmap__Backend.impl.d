lib/pmap/backend.ml: Arch Array Mach_hw Machine Phys_mem Pmap Pv Translator
