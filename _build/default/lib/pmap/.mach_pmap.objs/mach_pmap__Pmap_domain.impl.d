lib/pmap/pmap_domain.ml: Arch Backend Fun Hashtbl List Mach_hw Machine Phys_mem Pmap Pmap_ns32082 Pmap_rtpc Pmap_sun3 Pmap_tlbonly Pmap_vax Prot Pv
