lib/pmap/pmap.ml: List Mach_hw
