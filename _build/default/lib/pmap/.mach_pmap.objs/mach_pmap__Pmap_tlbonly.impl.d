lib/pmap/pmap_tlbonly.ml: Arch Array Backend Hashtbl List Mach_hw Machine Pmap Prot Tlb Translator
