lib/pmap/pmap_sun3.ml: Arch Array Backend Hashtbl List Mach_hw Machine Pmap Prot Seq Translator
