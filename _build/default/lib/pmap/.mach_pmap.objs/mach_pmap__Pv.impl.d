lib/pmap/pv.ml: Array Bytes List
