lib/pmap/pmap_vax.ml: Backend Mach_hw Table_pmap
