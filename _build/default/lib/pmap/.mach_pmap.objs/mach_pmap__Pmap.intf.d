lib/pmap/pmap.mli: Mach_hw
