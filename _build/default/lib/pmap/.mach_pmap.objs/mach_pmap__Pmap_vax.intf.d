lib/pmap/pmap_vax.mli: Backend
