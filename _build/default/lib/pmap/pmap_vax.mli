(** VAX pmap: lazily-constructed linear page tables.

    A full 2 GB VAX user space needs 8 MB of linear page table, so (as the
    paper describes in Section 5.1) Mach keeps page tables in physical
    memory but constructs only the parts needed to map pages currently in
    use, creating and destroying them as necessary. *)

val make_domain : Backend.ctx -> Backend.factory
(** [make_domain ctx] is a factory producing VAX pmaps sharing the domain
    [ctx]. *)
