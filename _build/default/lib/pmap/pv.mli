(** Physical-to-virtual mapping tracking and per-frame attribute bits.

    The page-level pmap operations of Table 3-3 ([pmap_remove_all],
    [pmap_copy_on_write]) and the modify/reference-bit maintenance calls
    need to find every virtual mapping of a physical page.  Real pmap
    modules keep "pv lists" for this; here one [Pv.t] per pmap domain maps
    each frame to the (address space, virtual page) pairs currently mapping
    it, and carries the frame's referenced/modified bits, which the
    simulated MMU sets on every translated access. *)

type mapping = { pv_asid : int; pv_vpn : int }
(** One virtual mapping of a frame. *)

type t
(** Tracking state for one pmap domain. *)

val create : frames:int -> t
(** [create ~frames] covers physical frames [0 .. frames-1]. *)

val insert : t -> pfn:int -> mapping -> unit
(** [insert t ~pfn m] records that [m] maps [pfn].  Duplicate insertions
    are an error caught by assertion. *)

val remove : t -> pfn:int -> mapping -> unit
(** [remove t ~pfn m] forgets [m].  Removing an absent mapping is an
    error. *)

val mappings : t -> pfn:int -> mapping list
(** [mappings t ~pfn] is every current mapping of [pfn]. *)

val mapping_count : t -> pfn:int -> int
(** [mapping_count t ~pfn] is [List.length (mappings t ~pfn)]. *)

val set_referenced : t -> pfn:int -> unit
val set_modified : t -> pfn:int -> unit

val is_referenced : t -> pfn:int -> bool
(** Whether any access touched the frame since the last clear. *)

val is_modified : t -> pfn:int -> bool
(** Whether any write touched the frame since the last clear. *)

val clear_referenced : t -> pfn:int -> unit
val clear_modified : t -> pfn:int -> unit
