let make_domain (ctx : Backend.ctx) =
  let arch = Backend.arch ctx in
  {
    Backend.new_pmap =
      (fun () ->
         Table_pmap.make ctx ~kind:Mach_hw.Arch.Vax
           ~va_limit:arch.Mach_hw.Arch.user_va_limit ~top_bytes:0 ());
    shared_map_bytes = (fun () -> 0);
  }
