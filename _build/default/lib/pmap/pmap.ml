type stats = {
  mutable enters : int;
  mutable removals : int;
  mutable protect_ops : int;
  mutable alias_evictions : int;
  mutable context_steals : int;
  mutable cache_drops : int;
}

type t = {
  asid : int;
  kind : Mach_hw.Arch.kind;
  reference : unit -> unit;
  enter : va:int -> pfn:int -> prot:Mach_hw.Prot.t -> wired:bool -> unit;
  remove : start_va:int -> end_va:int -> unit;
  protect : start_va:int -> end_va:int -> prot:Mach_hw.Prot.t -> unit;
  extract : int -> int option;
  access_check : int -> bool;
  activate : cpu:int -> unit;
  deactivate : cpu:int -> unit;
  copy :
    (dst:t -> dst_start:int -> len:int -> src_start:int -> unit) option;
  pageable : (start_va:int -> end_va:int -> pageable:bool -> unit) option;
  resident_count : unit -> int;
  map_bytes : unit -> int;
  collect : unit -> unit;
  destroy : unit -> unit;
  stats : stats;
}

let fresh_stats () =
  { enters = 0; removals = 0; protect_ops = 0; alias_evictions = 0;
    context_steals = 0; cache_drops = 0 }

let enter_range t ~start_va ~pfns ~prot ~page =
  List.iteri
    (fun i pfn -> t.enter ~va:(start_va + (i * page)) ~pfn ~prot ~wired:false)
    pfns
