(** SUN 3 pmap: segment/page mapping RAM with 8 hardware contexts.

    The SUN 3 MMU translates through segment and page maps held in
    dedicated mapping RAM, organised as a small number of {e contexts}
    (8).  A task's mappings live only while it owns a context; when more
    than 8 tasks are active they compete, and stealing a context discards
    all of the victim's hardware mappings, which must then be rebuilt by
    page faults (Section 5.1) — the pmap-as-cache property makes this
    safe.  Translation through the mapping RAM costs no extra walk
    (walk_cost 0) and the machine is modelled without a separate TLB. *)

val make_domain : Backend.ctx -> Backend.factory
(** [make_domain ctx] is a factory whose pmaps share the 8 hardware
    contexts. *)
