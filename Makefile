.PHONY: all check test bench clean

all:
	dune build

check:
	dune build && dune runtest

test:
	dune runtest

bench:
	dune exec bench/main.exe

clean:
	dune clean
