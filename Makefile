.PHONY: all check test bench bench-smoke clean

all:
	dune build

check:
	dune build && dune runtest && sh tools/bench_smoke.sh

test:
	dune runtest

bench:
	dune exec bench/main.exe

bench-smoke:
	sh tools/bench_smoke.sh

clean:
	dune clean
