(** The simulated machine: CPUs, TLBs, physical memory and a cycle clock.

    Every memory access made by simulated software goes through a CPU's TLB
    and, on a miss, the active pmap's hardware translation walk; untranslated
    or under-privileged accesses trap to the kernel's fault handler, exactly
    the control flow the paper's VM system is built on.  Each CPU has its own
    cycle clock; total simulated time is the maximum over CPUs.

    TLB consistency is software's problem (none of the paper's
    multiprocessors could touch a remote TLB, Section 5.2), so the machine
    implements the paper's three strategies for propagating mapping changes:
    forcible interrupts, postponing until every CPU has taken a timer
    interrupt, and tolerated temporary inconsistency. *)

type t
(** A machine. *)

type fault = {
  fault_va : int;      (** faulting virtual address *)
  fault_write : bool;  (** whether hardware *reported* a write access; on
                           the NS32082 a read-modify-write access is
                           erroneously reported as a read (Section 5.1) *)
  fault_kind : [ `Invalid | `Protection ];
}
(** What the kernel's fault handler receives. *)

exception Memory_violation of { va : int; write : bool; reason : string }
(** Raised out of an access when the kernel's fault handler rejects it
    (e.g. access outside the task's address space or beyond its current
    protection). *)

exception Unresolved_fault of fault
(** Raised when a fault persists after the handler claims to have resolved
    it repeatedly; indicates a kernel bug, never user error. *)

type shootdown_strategy =
  | Immediate_ipi
      (** Case 1 of Section 5.2: forcibly interrupt every CPU that may hold
          the mapping so its TLB is flushed before the change is used. *)
  | Deferred_timer
      (** Case 2: queue the flush and have the initiator wait until all
          CPUs have taken a timer interrupt (and hence flushed). *)
  | Lazy_local
      (** Case 3: flush only the initiating CPU and tolerate temporary
          inconsistency; remote CPUs flush at their next timer tick. *)

type flush_request =
  | Flush_page of { asid : int; vpn : int }  (** one translation *)
  | Flush_range of { asid : int; lo_vpn : int; hi_vpn : int }
      (** a coalesced run of pages, [\[lo_vpn, hi_vpn)]; produced by the
          pmap layer's flush batching *)
  | Flush_asid of int                        (** one address space *)
  | Flush_all                                (** the whole TLB *)

type stats = {
  mutable faults : int;           (** faults delivered to the kernel *)
  mutable ipis : int;             (** cross-CPU interrupts sent *)
  mutable shootdowns : int;       (** shootdown operations initiated *)
  mutable deferred_flushes : int; (** flushes executed at timer ticks *)
  mutable stale_tlb_uses : int;   (** TLB hits on entries with a pending
                                      invalidation (Lazy_local windows) *)
  mutable disk_ops : int;
  mutable disk_bytes : int;
  mutable disk_errors : int;  (** simulated disk transfers that failed
                                  (fault injection) *)
  mutable disk_retries : int; (** failed transfers retried by the driver *)
  mutable disk_waits : int;   (** blocking waits on async completions *)
  mutable disk_wait_cycles : int;
      (** cycles spent blocked on async disk completions (the residue
          actually charged at wait time) *)
  mutable disk_overlap_cycles : int;
      (** device cycles hidden behind computation: per request,
          [service - residue] clamped at zero.  Always 0 in sync mode. *)
  mutable tlb_hit_count : int;    (** translations served from a TLB entry *)
  mutable tlb_miss_count : int;   (** translations that walked the
                                      hardware map (or had no TLB) *)
}

val create :
  arch:Arch.t -> memory_frames:int -> ?holes:(int * int) list ->
  ?cpus:int -> ?shootdown:shootdown_strategy -> ?tick_interval_ms:int ->
  unit -> t
(** [create ~arch ~memory_frames ()] builds a machine with
    [memory_frames] hardware page frames and [cpus] processors (default 1).
    [holes] marks absent physical frame ranges (SUN 3 display memory).
    [tick_interval_ms] is the timer-interrupt period used by the deferred
    shootdown strategy (default 10 ms). *)

val arch : t -> Arch.t
val phys : t -> Phys_mem.t
val cpu_count : t -> int
val stats : t -> stats

val shootdown_strategy : t -> shootdown_strategy
val set_shootdown_strategy : t -> shootdown_strategy -> unit

(** {1 Tracing}

    The machine owns the observability sink: every subsystem (pmap
    backends, fault handler, pageout daemon, pagers) reaches it through
    its machine, so installing one tracer instruments the whole kernel.
    The default is {!Mach_obs.Obs.null}, permanently disabled; each
    instrumentation site pays one branch when tracing is off. *)

val tracer : t -> Mach_obs.Obs.t
val set_tracer : t -> Mach_obs.Obs.t -> unit

val set_fault_handler : t -> (cpu:int -> fault -> unit) -> unit
(** [set_fault_handler t h] installs the kernel's page-fault handler.  [h]
    must either repair the mapping (after which the access is retried) or
    raise [Memory_violation]. *)

val set_on_translated : t -> (pfn:int -> write:bool -> unit) -> unit
(** [set_on_translated t f] installs the hook the pmap layer uses to
    maintain per-frame reference and modify bits: [f] is called for every
    successful user access with the frame touched. *)

(** {1 Clocks} *)

val charge : t -> cpu:int -> int -> unit
(** [charge t ~cpu c] advances CPU [cpu]'s clock by [c] cycles.  When a
    tracer is enabled the cycles are attributed to the innermost open
    category frame on that CPU ({!Mach_obs.Obs.attr_push}). *)

val charge_category : t -> cpu:int -> Mach_obs.Obs.category -> int -> unit
(** [charge_category t ~cpu cat c] is {!charge} with the cycles
    attributed to [cat] explicitly, bypassing the attribution stack;
    used for costs that belong to a fixed subsystem no matter who
    triggered them (disk service time, shootdown IPIs). *)

val with_category : t -> cpu:int -> Mach_obs.Obs.category -> (unit -> 'a) -> 'a
(** [with_category t ~cpu cat f] runs [f] with [cat] pushed on [cpu]'s
    attribution stack, so every {!charge} inside lands in [cat] unless a
    nested frame or explicit category overrides it.  Exception-safe; free
    when tracing is off. *)

val lock_stall : t -> cpu:int -> int -> unit
(** [lock_stall t ~cpu n] charges [n] cycles of contended-lock wait to
    [cpu], attributed to {!Mach_obs.Obs.Lock_wait} explicitly (a stall
    is wait time whatever kernel path suffered it).  A no-op when
    [n <= 0], so uncontended acquisitions are free. *)

val reset_epoch : t -> int
(** [reset_epoch t] counts how many times {!reset_clocks} has run.
    Subsystems holding absolute-cycle stamps (object lock release
    times) tag them with the epoch and treat stamps from an older epoch
    as expired, so a clock reset cannot manufacture phantom stalls. *)

val numa_domains : t -> int
(** How many contiguous NUMA domains the machine's physical memory is
    split into (default 1: flat).  Pure topology description consumed by
    the VM layer's page allocator. *)

val set_numa_domains : t -> int -> unit
(** Set the NUMA domain count; raises [Invalid_argument] below 1. *)

val domain_of_cpu : t -> cpu:int -> int
(** [domain_of_cpu t ~cpu] is the domain CPU [cpu] is local to: CPUs
    round-robin across domains ([cpu mod numa_domains]). *)

val add_reset_hook : t -> (unit -> unit) -> unit
(** [add_reset_hook t f] runs [f] at the end of every {!reset_clocks},
    after clocks and machine statistics are zeroed; subsystems keeping
    their own counters (the page allocator) register here so one reset
    clears the whole measurement window. *)

val cycles : t -> cpu:int -> int
(** [cycles t ~cpu] is that CPU's clock. *)

val max_cycles : t -> int
(** [max_cycles t] is the largest CPU clock: elapsed simulated time. *)

val elapsed_ms : t -> float
(** [elapsed_ms t] is [max_cycles] converted via the architecture's clock
    rate. *)

val reset_clocks : t -> unit
(** [reset_clocks t] zeroes every CPU clock and the statistics; benchmarks
    call this between measurements.  Attribution totals are zeroed with
    the clocks (open frames survive) so they keep summing to the clock. *)

val set_sampler : t -> every_ms:int -> (unit -> unit) -> unit
(** [set_sampler t ~every_ms f] arranges for [f] to run the first time
    any CPU clock crosses each successive [every_ms] boundary of
    simulated time (the vmstat-style periodic readout).  The trigger
    is re-armed past the current {!max_cycles} before [f] runs, so a
    sampler may itself charge cycles.  Costs one compare per charge
    while armed; raises [Invalid_argument] when [every_ms <= 0]. *)

val clear_sampler : t -> unit

val disk_inflight : t -> int
(** Async disk requests submitted but not yet complete at the current
    {!max_cycles}, summed over every queue; a queue-depth gauge for
    periodic samplers.  Always 0 in sync mode. *)

val charge_disk : t -> cpu:int -> write:bool -> bytes:int -> unit
(** [charge_disk t ~cpu ~write ~bytes] accounts one disk operation moving
    [bytes] bytes (latency plus per-KB transfer cost); [write] is the
    transfer direction, recorded on the trace event. *)

(** {1 Asynchronous disk queues}

    The async disk model (off by default) decouples a transfer's device
    time from the submitting CPU's clock.  A {!dqueue} is one device (or
    per-CPU) request queue with a virtual service clock: a request
    submitted at [now] starts at [max now free], completes [service]
    cycles later, and advances [free].  The submitter keeps computing;
    {!wait_disk} later charges only the residue still outstanding.  With
    [disk_async] off, {!submit_disk} is bit- and cycle-identical to
    {!charge_disk} and {!wait_disk} is a no-op, so the machinery is free
    when unused. *)

type dqueue
(** A disk request queue (virtual service clock). *)

val disk_async : t -> bool
val set_disk_async : t -> bool -> unit

val new_disk_queue : t -> dqueue
(** [new_disk_queue t] registers a fresh queue; {!reset_clocks} rewinds
    it along with the CPU clocks. *)

val disk_service_cycles : t -> bytes:int -> int
(** Device time for one transfer of [bytes]: fixed latency plus per-KB
    transfer cost. *)

val submit_disk :
  t -> dqueue -> cpu:int -> write:bool -> bytes:int -> extra:int ->
  int * int
(** [submit_disk t q ~cpu ~write ~bytes ~extra] enqueues one transfer and
    returns [(completion, service)]: the absolute cycle stamp at which it
    lands and its device service time ([extra] added for injected delays
    or wasted retry transfers).  Sync mode charges the whole cost here
    (exactly {!charge_disk}) and returns the post-charge clock, so a
    subsequent {!wait_disk} is free. *)

val wait_disk : t -> cpu:int -> completion:int -> service:int -> unit
(** [wait_disk t ~cpu ~completion ~service] blocks [cpu] until
    [completion], charging only the outstanding residue, and credits
    [service - residue] to [disk_overlap_cycles].  Pass [service = 0]
    when re-waiting a request whose overlap was already counted.  No-op
    in sync mode. *)

val account_disk : t -> cpu:int -> write:bool -> bytes:int -> cycles:int -> unit
(** [account_disk] bumps the op/byte counters and emits the [Disk_io]
    trace event without charging any CPU; used for async-mode wasted
    retry transfers whose cost is folded into the request's service
    time. *)

(** {1 Address translation and access} *)

val set_translator : t -> cpu:int -> Translator.t option -> unit
(** [set_translator t ~cpu tr] makes [tr] the active hardware map source on
    [cpu]; called by [pmap_activate]/[pmap_deactivate].  Charges a context
    switch when the translator changes. *)

val active_asid : t -> cpu:int -> int option
(** [active_asid t ~cpu] is the asid of the active translator, if any. *)

val translate : t -> cpu:int -> va:int -> write:bool -> int
(** [translate t ~cpu ~va ~write] resolves [va] to a physical frame number,
    faulting to the kernel as needed.  Raises [Memory_violation] if the
    kernel rejects the access. *)

val read : t -> cpu:int -> va:int -> len:int -> Bytes.t
(** [read t ~cpu ~va ~len] performs a user-mode read of [len] bytes at
    [va], faulting pages in as needed, and returns the data. *)

val write : t -> cpu:int -> va:int -> Bytes.t -> unit
(** [write t ~cpu ~va data] performs a user-mode write of [data] at
    [va]. *)

val read_byte : t -> cpu:int -> va:int -> char
val write_byte : t -> cpu:int -> va:int -> char -> unit

val touch : t -> cpu:int -> va:int -> write:bool -> unit
(** [touch t ~cpu ~va ~write] performs a one-byte access, the canonical way
    workloads fault a page in. *)

(** {1 TLB maintenance} *)

val tlb_fill : t -> cpu:int -> Tlb.entry -> unit
(** [tlb_fill t ~cpu e] loads a translation directly into a CPU's TLB; used
    by TLB-only architectures whose kernel reloads the TLB in the fault
    handler. *)

val flush_local : t -> cpu:int -> flush_request -> unit
(** [flush_local t ~cpu req] applies [req] to [cpu]'s TLB immediately,
    charging the flush cost. *)

val shootdown : t -> initiator:int -> targets:int list ->
  flush_request -> urgent:bool -> unit
(** [shootdown t ~initiator ~targets req ~urgent] propagates a mapping
    change.  The initiator's own TLB is always flushed immediately.
    [urgent] changes are propagated with IPIs regardless of strategy (the
    paper's case 1: "time critical and must be propagated at all costs");
    otherwise the machine's configured strategy applies. *)

val shootdown_batch : t -> initiator:int -> targets:int list ->
  flush_request list -> urgent:bool -> unit
(** [shootdown_batch t ~initiator ~targets reqs ~urgent] propagates a whole
    list of mapping changes in a single consistency exchange: each target
    CPU is interrupted once for the entire list (one IPI per target, not
    per request) and then applies every request.  Strategy semantics match
    {!shootdown} — immediate/urgent batches complete before returning,
    deferred batches wait out the timer tick, lazy batches only queue — so
    batching changes how many exchanges occur, never when consistency is
    restored.  The empty list is a no-op; a singleton behaves exactly like
    {!shootdown}. *)

val tick : t -> unit
(** [tick t] delivers a timer interrupt to every CPU: pending deferred
    flushes are applied (and charged).  Workloads call this periodically;
    the deferred strategy also waits on it internally. *)

val pending_flushes : t -> cpu:int -> int
(** [pending_flushes t ~cpu] is the number of queued, not-yet-applied
    flush requests on [cpu]; used by tests. *)

val tlb_contents : t -> cpu:int -> Tlb.entry list
(** [tlb_contents t ~cpu] is that CPU's current TLB contents, oldest
    first; used by tests cross-checking TLBs against page tables. *)

val tlb_hits : t -> int
(** Total TLB hits across CPUs (per-TLB counters; includes lookups made
    outside {!translate}). *)

val tlb_misses : t -> int
(** Total TLB misses across CPUs. *)
