type entry = { asid : int; vpn : int; pfn : int; prot : Prot.t }

(* Fully-associative with FIFO replacement.  Capacities are tiny (tens of
   entries), so a linear scan over a Queue mirror is adequate and keeps the
   replacement order explicit. *)
type t = {
  capacity : int;
  table : (int * int, entry) Hashtbl.t;
  order : (int * int) Queue.t;
  mutable hits : int;
  mutable misses : int;
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Tlb.create: negative capacity";
  { capacity; table = Hashtbl.create 64; order = Queue.create ();
    hits = 0; misses = 0 }

let capacity t = t.capacity

let lookup t ~asid ~vpn =
  match Hashtbl.find_opt t.table (asid, vpn) with
  | Some e -> t.hits <- t.hits + 1; Some e
  | None -> t.misses <- t.misses + 1; None

let rec evict_one t =
  match Queue.take_opt t.order with
  | None -> ()
  | Some key ->
    (* The queue may hold stale keys for entries already invalidated;
       skip them and evict the first live one. *)
    if Hashtbl.mem t.table key then Hashtbl.remove t.table key
    else evict_one t

(* Entries invalidated by page/asid leave dead keys behind in the FIFO
   queue.  Rebuild it (keeping the first occurrence of each live key, the
   position [evict_one] would act on) once it holds more dead weight than
   live entries, so the queue stays O(capacity). *)
let compact t =
  let seen = Hashtbl.create (Hashtbl.length t.table) in
  let live = Queue.create () in
  Queue.iter
    (fun key ->
       if Hashtbl.mem t.table key && not (Hashtbl.mem seen key) then begin
         Hashtbl.add seen key ();
         Queue.add key live
       end)
    t.order;
  Queue.clear t.order;
  Queue.transfer live t.order

let insert t e =
  if t.capacity = 0 then ()
  else begin
    let key = (e.asid, e.vpn) in
    if not (Hashtbl.mem t.table key) then begin
      if Hashtbl.length t.table >= t.capacity then evict_one t;
      if Queue.length t.order > 2 * t.capacity then compact t;
      Queue.add key t.order
    end;
    Hashtbl.replace t.table key e
  end

let invalidate_page t ~asid ~vpn = Hashtbl.remove t.table (asid, vpn)

let invalidate_range t ~asid ~lo_vpn ~hi_vpn =
  (* Walk whichever side is smaller: the span or the current contents. *)
  if hi_vpn - lo_vpn <= Hashtbl.length t.table then
    for vpn = lo_vpn to hi_vpn - 1 do
      Hashtbl.remove t.table (asid, vpn)
    done
  else begin
    let doomed =
      Hashtbl.fold
        (fun ((a, v) as key) _ acc ->
           if a = asid && v >= lo_vpn && v < hi_vpn then key :: acc else acc)
        t.table []
    in
    List.iter (Hashtbl.remove t.table) doomed
  end

let invalidate_asid t ~asid =
  let doomed =
    Hashtbl.fold
      (fun (a, v) _ acc -> if a = asid then (a, v) :: acc else acc)
      t.table []
  in
  List.iter (Hashtbl.remove t.table) doomed

let invalidate_all t =
  Hashtbl.reset t.table;
  Queue.clear t.order

let hits t = t.hits

let misses t = t.misses

let entries t =
  Queue.fold
    (fun acc key ->
       match Hashtbl.find_opt t.table key with
       | Some e -> e :: acc
       | None -> acc)
    [] t.order
  |> List.rev
