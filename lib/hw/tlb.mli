(** Per-CPU translation lookaside buffer.

    A small fully-associative cache of (asid, virtual page) to (frame,
    protection) mappings with FIFO replacement.  None of the
    multiprocessors the paper ran on kept TLBs consistent in hardware
    (Section 5.2), so invalidation is entirely software-driven: the pmap
    layer calls the flush operations below, possibly on remote CPUs via the
    machine's shootdown mechanism. *)

type t
(** One CPU's TLB. *)

type entry = { asid : int; vpn : int; pfn : int; prot : Prot.t }
(** A cached translation. *)

val create : capacity:int -> t
(** [create ~capacity] is an empty TLB holding at most [capacity] entries.
    A capacity of 0 means the machine has no TLB (every access walks the
    hardware maps, as on the SUN 3). *)

val capacity : t -> int
(** [capacity t] is the entry budget given at creation. *)

val lookup : t -> asid:int -> vpn:int -> entry option
(** [lookup t ~asid ~vpn] is the cached translation, if present.  Updates
    hit/miss statistics. *)

val insert : t -> entry -> unit
(** [insert t e] caches [e], evicting the oldest entry when full and
    replacing any existing entry for the same (asid, vpn). *)

val invalidate_page : t -> asid:int -> vpn:int -> unit
(** [invalidate_page t ~asid ~vpn] drops the entry for one page, if
    cached. *)

val invalidate_range : t -> asid:int -> lo_vpn:int -> hi_vpn:int -> unit
(** [invalidate_range t ~asid ~lo_vpn ~hi_vpn] drops every cached entry of
    [asid] with virtual page in [\[lo_vpn, hi_vpn)]; the batched-shootdown
    unit of invalidation. *)

val invalidate_asid : t -> asid:int -> unit
(** [invalidate_asid t ~asid] drops every entry of one address space. *)

val invalidate_all : t -> unit
(** [invalidate_all t] empties the TLB. *)

val hits : t -> int
(** Number of successful lookups so far. *)

val misses : t -> int
(** Number of failed lookups so far. *)

val entries : t -> entry list
(** Current contents, oldest first; used by tests. *)
