type fault = {
  fault_va : int;
  fault_write : bool;
  fault_kind : [ `Invalid | `Protection ];
}

exception Memory_violation of { va : int; write : bool; reason : string }
exception Unresolved_fault of fault

type shootdown_strategy = Immediate_ipi | Deferred_timer | Lazy_local

type flush_request =
  | Flush_page of { asid : int; vpn : int }
  | Flush_range of { asid : int; lo_vpn : int; hi_vpn : int }
  | Flush_asid of int
  | Flush_all

type stats = {
  mutable faults : int;
  mutable ipis : int;
  mutable shootdowns : int;
  mutable deferred_flushes : int;
  mutable stale_tlb_uses : int;
  mutable disk_ops : int;
  mutable disk_bytes : int;
  mutable disk_errors : int;
  mutable disk_retries : int;
  mutable disk_waits : int;
  mutable disk_wait_cycles : int;
  mutable disk_overlap_cycles : int;
  mutable tlb_hit_count : int;
  mutable tlb_miss_count : int;
}

(* One device (or per-CPU) request queue of the async disk model: a
   virtual service clock.  A request submitted at [now] starts service at
   [max now dq_free] and completes [service] cycles later; [dq_free]
   advances to that completion, so queued requests serialise on the
   device while the submitting CPU keeps computing. *)
type dqueue = {
  mutable dq_free : int;
  mutable dq_pending : int list; (* completion stamps, newest first *)
}

type cpu = {
  id : int;
  tlb : Tlb.t;
  mutable translator : Translator.t option;
  mutable clock : int;
  pending : flush_request Queue.t;
}

type t = {
  arch : Arch.t;
  phys : Phys_mem.t;
  cpus : cpu array;
  mutable shootdown_mode : shootdown_strategy;
  tick_interval : int;
  stats : stats;
  mutable fault_handler : (cpu:int -> fault -> unit) option;
  mutable on_translated : (pfn:int -> write:bool -> unit) option;
  mutable tracer : Mach_obs.Obs.t;
  mutable disk_async : bool;
  mutable disk_queues : dqueue list; (* every queue ever created, for reset *)
  (* vmstat sampler: a callback fired every [sample_every] cycles of
     simulated time.  [next_sample] is [max_int] when no sampler is
     installed, so the hot charge path pays one compare. *)
  mutable sampler : (unit -> unit) option;
  mutable sample_every : int;
  mutable next_sample : int;
  (* Bumped by [reset_clocks].  Absolute-cycle stamps held outside the
     machine (object lock release times) record the epoch they were
     taken in; a stamp from an older epoch is dead, so resets cannot
     manufacture phantom lock stalls. *)
  mutable reset_epoch : int;
  (* NUMA topology: the machine's physical memory is split into this
     many contiguous domains and CPUs round-robin across them.  Pure
     description — the VM layer's allocator reads it; nothing here
     charges differently. *)
  mutable numa_domains : int;
  (* Run after [reset_clocks] zeroes the clocks and stats, so subsystems
     holding their own counters (the page allocator) reset with the
     measurement window. *)
  mutable reset_hooks : (unit -> unit) list;
}

let fresh_stats () =
  { faults = 0; ipis = 0; shootdowns = 0; deferred_flushes = 0;
    stale_tlb_uses = 0; disk_ops = 0; disk_bytes = 0;
    disk_errors = 0; disk_retries = 0;
    disk_waits = 0; disk_wait_cycles = 0; disk_overlap_cycles = 0;
    tlb_hit_count = 0; tlb_miss_count = 0 }

let create ~arch ~memory_frames ?(holes = []) ?(cpus = 1)
    ?(shootdown = Immediate_ipi) ?(tick_interval_ms = 10) () =
  if cpus < 1 then invalid_arg "Machine.create: need at least one CPU";
  let phys =
    Phys_mem.create ~page_size:arch.Arch.hw_page_size ~frames:memory_frames
      ~holes ()
  in
  let mk_cpu id =
    { id; tlb = Tlb.create ~capacity:arch.Arch.tlb_entries;
      translator = None; clock = 0; pending = Queue.create () }
  in
  { arch; phys; cpus = Array.init cpus mk_cpu;
    shootdown_mode = shootdown;
    tick_interval = tick_interval_ms * arch.Arch.cycles_per_ms;
    stats = fresh_stats (); fault_handler = None; on_translated = None;
    tracer = Mach_obs.Obs.null;
    disk_async = false; disk_queues = [];
    sampler = None; sample_every = 0; next_sample = max_int;
    reset_epoch = 0; numa_domains = 1; reset_hooks = [] }

let arch t = t.arch
let phys t = t.phys
let cpu_count t = Array.length t.cpus
let stats t = t.stats

let shootdown_strategy t = t.shootdown_mode
let set_shootdown_strategy t s = t.shootdown_mode <- s

let tracer t = t.tracer
let set_tracer t tr = t.tracer <- tr

(* Instrumentation sites check [Obs.enabled] themselves before building
   the event, so disabled tracing costs one load-and-branch. *)
let traced t = Mach_obs.Obs.enabled t.tracer

let set_fault_handler t h = t.fault_handler <- Some h
let set_on_translated t f = t.on_translated <- Some f

let cpu_of t id =
  if id < 0 || id >= Array.length t.cpus then
    invalid_arg "Machine: bad CPU id";
  t.cpus.(id)

let cycles t ~cpu = (cpu_of t cpu).clock

let max_cycles t =
  Array.fold_left (fun acc c -> max acc c.clock) 0 t.cpus

let elapsed_ms t = Arch.cycles_to_ms t.arch (max_cycles t)

(* Fire the vmstat sampler for every interval boundary the clock just
   crossed.  The trigger advances before the callback runs, so charges
   the callback itself makes cannot recurse into it. *)
let run_sampler t =
  match t.sampler with
  | None -> t.next_sample <- max_int
  | Some f ->
    while max_cycles t >= t.next_sample do
      t.next_sample <- t.next_sample + t.sample_every
    done;
    f ()

(* Every clock mutation in this module funnels through [bump]/[bump_as]:
   the cycles are attributed to the tracer (innermost open category, or
   an explicit one) and the sampler trigger is checked.  With tracing
   off and no sampler this is two compares on top of the add — and the
   simulated clock itself is identical either way. *)
let bump t (c : cpu) n =
  c.clock <- c.clock + n;
  if Mach_obs.Obs.enabled t.tracer then
    Mach_obs.Obs.attr_charge t.tracer ~cpu:c.id n;
  if c.clock >= t.next_sample then run_sampler t

let bump_as t (c : cpu) cat n =
  c.clock <- c.clock + n;
  if Mach_obs.Obs.enabled t.tracer then
    Mach_obs.Obs.attr_charge_as t.tracer ~cpu:c.id cat n;
  if c.clock >= t.next_sample then run_sampler t

let charge t ~cpu c = bump t (cpu_of t cpu) c

let charge_category t ~cpu cat c = bump_as t (cpu_of t cpu) cat c

let reset_epoch t = t.reset_epoch

let numa_domains t = t.numa_domains

let set_numa_domains t d =
  if d < 1 then invalid_arg "Machine.set_numa_domains";
  t.numa_domains <- d

(* CPUs round-robin across domains: with D domains, CPU i is local to
   domain [i mod D] — the mapping both the allocator and workloads use. *)
let domain_of_cpu t ~cpu = cpu mod t.numa_domains

let add_reset_hook t f = t.reset_hooks <- f :: t.reset_hooks

(* A CPU stalled on a contended (simulated) lock: the wait is real
   simulated time, attributed to [Lock_wait] explicitly so it never
   masquerades as the work the caller was trying to do. *)
let lock_stall t ~cpu n =
  if n > 0 then bump_as t (cpu_of t cpu) Mach_obs.Obs.Lock_wait n

let with_category t ~cpu cat f =
  if Mach_obs.Obs.enabled t.tracer then begin
    Mach_obs.Obs.attr_push t.tracer ~cpu cat;
    match f () with
    | v ->
      Mach_obs.Obs.attr_pop t.tracer ~cpu;
      v
    | exception e ->
      Mach_obs.Obs.attr_pop t.tracer ~cpu;
      raise e
  end
  else f ()

let set_sampler t ~every_ms f =
  if every_ms <= 0 then invalid_arg "Machine.set_sampler";
  t.sampler <- Some f;
  t.sample_every <- every_ms * t.arch.Arch.cycles_per_ms;
  t.next_sample <- max_cycles t + t.sample_every

let clear_sampler t =
  t.sampler <- None;
  t.next_sample <- max_int

let reset_clocks t =
  Array.iter (fun c -> c.clock <- 0) t.cpus;
  (* Invalidate absolute-cycle lock stamps taken before the reset. *)
  t.reset_epoch <- t.reset_epoch + 1;
  (* Queue stamps are absolute cycle counts; stale ones would make a
     post-reset wait charge a huge phantom residue. *)
  List.iter (fun q -> q.dq_free <- 0; q.dq_pending <- []) t.disk_queues;
  (* Attribution totals must keep summing to the (zeroed) clocks. *)
  if Mach_obs.Obs.enabled t.tracer then
    Mach_obs.Obs.attr_reset_totals t.tracer;
  if t.sampler <> None then t.next_sample <- t.sample_every;
  let s = t.stats in
  s.faults <- 0; s.ipis <- 0; s.shootdowns <- 0; s.deferred_flushes <- 0;
  s.stale_tlb_uses <- 0; s.disk_ops <- 0; s.disk_bytes <- 0;
  s.disk_errors <- 0; s.disk_retries <- 0;
  s.disk_waits <- 0; s.disk_wait_cycles <- 0; s.disk_overlap_cycles <- 0;
  s.tlb_hit_count <- 0; s.tlb_miss_count <- 0;
  List.iter (fun f -> f ()) t.reset_hooks

let disk_service_cycles t ~bytes =
  let cost = t.arch.Arch.cost in
  let kb = (bytes + 1023) / 1024 in
  cost.Arch.disk_latency + (kb * cost.Arch.disk_per_kb)

let charge_disk t ~cpu ~write ~bytes =
  let cycles = disk_service_cycles t ~bytes in
  (* Device time is always [Disk_wait], whatever kernel path asked. *)
  charge_category t ~cpu Mach_obs.Obs.Disk_wait cycles;
  t.stats.disk_ops <- t.stats.disk_ops + 1;
  t.stats.disk_bytes <- t.stats.disk_bytes + bytes;
  if traced t then
    Mach_obs.Obs.record t.tracer ~ts:(cpu_of t cpu).clock ~cpu
      (Mach_obs.Obs.Disk_io { write; bytes; cycles })

(* --- Asynchronous disk queues ----------------------------------------- *)

let disk_async t = t.disk_async
let set_disk_async t on = t.disk_async <- on

let new_disk_queue t =
  let q = { dq_free = 0; dq_pending = [] } in
  t.disk_queues <- q :: t.disk_queues;
  q

(* Account a transfer's counters and trace event without charging any
   CPU: async-mode wasted retries fold their cost into the request's
   service time instead. *)
let account_disk t ~cpu ~write ~bytes ~cycles =
  t.stats.disk_ops <- t.stats.disk_ops + 1;
  t.stats.disk_bytes <- t.stats.disk_bytes + bytes;
  if traced t then
    Mach_obs.Obs.record t.tracer ~ts:(cpu_of t cpu).clock ~cpu
      (Mach_obs.Obs.Disk_io { write; bytes; cycles })

(* Submit one transfer.  Returns [(completion, service)] in absolute and
   relative cycles.  Sync mode ([disk_async = false]) is bit-identical to
   {!charge_disk}: the submitting CPU pays the whole cost up front and
   the completion stamp is its post-charge clock, so a later wait is
   free.  Async mode charges nothing here; the request occupies the
   queue's virtual service clock and the caller settles the residue with
   {!wait_disk}.  [extra] extends the service time (injected delays and
   wasted retry transfers). *)
let submit_disk t q ~cpu ~write ~bytes ~extra =
  let service = disk_service_cycles t ~bytes + extra in
  if not t.disk_async then begin
    charge_category t ~cpu Mach_obs.Obs.Disk_wait service;
    t.stats.disk_ops <- t.stats.disk_ops + 1;
    t.stats.disk_bytes <- t.stats.disk_bytes + bytes;
    if traced t then
      Mach_obs.Obs.record t.tracer ~ts:(cpu_of t cpu).clock ~cpu
        (Mach_obs.Obs.Disk_io { write; bytes; cycles = service });
    ((cpu_of t cpu).clock, service)
  end
  else begin
    let now = (cpu_of t cpu).clock in
    let start = max now q.dq_free in
    let completion = start + service in
    q.dq_free <- completion;
    q.dq_pending <-
      completion :: List.filter (fun c -> c > now) q.dq_pending;
    let depth = List.length q.dq_pending in
    t.stats.disk_ops <- t.stats.disk_ops + 1;
    t.stats.disk_bytes <- t.stats.disk_bytes + bytes;
    if traced t then begin
      Mach_obs.Obs.record t.tracer ~ts:now ~cpu
        (Mach_obs.Obs.Disk_io { write; bytes; cycles = service });
      Mach_obs.Obs.record t.tracer ~ts:now ~cpu
        (Mach_obs.Obs.Disk_submit
           { write; bytes; depth; latency = completion - now })
    end;
    (completion, service)
  end

(* Block until [completion]: charge only the cycles still outstanding.
   Whatever the CPU managed to do between submit and here is the overlap
   the async model buys; [service] is the request's full device time, so
   [service - residue] (clamped) is the saving.  Callers that share one
   request across several pages pass [service = 0] after the first wait
   so the overlap is counted once. *)
let wait_disk t ~cpu ~completion ~service =
  if t.disk_async then begin
    let c = cpu_of t cpu in
    let residue = max 0 (completion - c.clock) in
    if residue > 0 then bump_as t c Mach_obs.Obs.Disk_wait residue;
    t.stats.disk_waits <- t.stats.disk_waits + 1;
    t.stats.disk_wait_cycles <- t.stats.disk_wait_cycles + residue;
    let overlap = max 0 (service - residue) in
    t.stats.disk_overlap_cycles <- t.stats.disk_overlap_cycles + overlap;
    if traced t then
      Mach_obs.Obs.record t.tracer ~ts:c.clock ~cpu
        (Mach_obs.Obs.Disk_wait { cycles = residue; overlap })
  end

(* Requests still in flight across every queue, judged at the latest CPU
   clock; the vmstat sampler's queue-depth gauge. *)
let disk_inflight t =
  let now = max_cycles t in
  List.fold_left
    (fun acc q ->
       acc + List.length (List.filter (fun c -> c > now) q.dq_pending))
    0 t.disk_queues

(* --- TLB maintenance ------------------------------------------------- *)

let apply_flush c = function
  | Flush_page { asid; vpn } -> Tlb.invalidate_page c.tlb ~asid ~vpn
  | Flush_range { asid; lo_vpn; hi_vpn } ->
    Tlb.invalidate_range c.tlb ~asid ~lo_vpn ~hi_vpn
  | Flush_asid asid -> Tlb.invalidate_asid c.tlb ~asid
  | Flush_all -> Tlb.invalidate_all c.tlb

let flush_kind_of = function
  | Flush_page _ -> Mach_obs.Obs.Fl_page
  | Flush_range _ -> Mach_obs.Obs.Fl_range
  | Flush_asid _ -> Mach_obs.Obs.Fl_asid
  | Flush_all -> Mach_obs.Obs.Fl_all

let note_flush t c req ~deferred =
  if traced t then
    Mach_obs.Obs.record t.tracer ~ts:c.clock ~cpu:c.id
      (Mach_obs.Obs.Tlb_flush { kind = flush_kind_of req; deferred })

let flush_local t ~cpu req =
  let c = cpu_of t cpu in
  apply_flush c req;
  charge t ~cpu t.arch.Arch.cost.Arch.tlb_flush;
  note_flush t c req ~deferred:false

let drain_pending t c =
  if not (Queue.is_empty c.pending) then begin
    Queue.iter
      (fun req ->
         apply_flush c req;
         note_flush t c req ~deferred:true)
      c.pending;
    t.stats.deferred_flushes <- t.stats.deferred_flushes + Queue.length c.pending;
    Queue.clear c.pending;
    (* Deferred flush work is TLB-consistency cost wherever it lands. *)
    bump_as t c Mach_obs.Obs.Shootdown_ipi t.arch.Arch.cost.Arch.tlb_flush
  end

let tick t = Array.iter (fun c -> drain_pending t c) t.cpus

let pending_flushes t ~cpu = Queue.length (cpu_of t cpu).pending

(* Case 2: the initiator may not use the changed mapping until every CPU
   has taken a timer interrupt, so it waits out the rest of the current
   tick period, after which all pending flushes land. *)
let deferred_wait t ~initiator =
  let c = cpu_of t initiator in
  let remainder = t.tick_interval - (c.clock mod t.tick_interval) in
  bump_as t c Mach_obs.Obs.Shootdown_ipi remainder;
  tick t

let shootdown t ~initiator ~targets req ~urgent =
  with_category t ~cpu:initiator Mach_obs.Obs.Shootdown_ipi @@ fun () ->
  t.stats.shootdowns <- t.stats.shootdowns + 1;
  let start_clock = (cpu_of t initiator).clock in
  flush_local t ~cpu:initiator req;
  let remote = List.filter (fun id -> id <> initiator) targets in
  let note_shootdown () =
    if traced t then begin
      let c = cpu_of t initiator in
      Mach_obs.Obs.record t.tracer ~ts:c.clock ~cpu:initiator
        (Mach_obs.Obs.Shootdown
           { initiator; targets = List.length remote; urgent;
             cycles = c.clock - start_clock })
    end
  in
  if remote = [] then note_shootdown ()
  else if urgent || t.shootdown_mode = Immediate_ipi then begin
    List.iter
      (fun id ->
         let target = cpu_of t id in
         t.stats.ipis <- t.stats.ipis + 1;
         (* The initiator spins until the target acknowledges; both sides
            pay for the interrupt. *)
         charge t ~cpu:initiator t.arch.Arch.cost.Arch.ipi;
         bump_as t target Mach_obs.Obs.Shootdown_ipi t.arch.Arch.cost.Arch.ipi;
         apply_flush target req;
         note_flush t target req ~deferred:false;
         bump_as t target Mach_obs.Obs.Shootdown_ipi
           t.arch.Arch.cost.Arch.tlb_flush)
      remote;
    note_shootdown ()
  end
  else begin
    List.iter (fun id -> Queue.add req (cpu_of t id).pending) remote;
    (match t.shootdown_mode with
     | Deferred_timer -> deferred_wait t ~initiator
     | Lazy_local -> ()
     | Immediate_ipi -> assert false);
    note_shootdown ()
  end

(* One TLB-consistency exchange covering a whole list of flush requests.
   The point of batching: the initiator interrupts each target CPU once
   for the entire list instead of once per request, so the IPI cost
   scales with the number of target CPUs, not the number of pages
   touched.  When the change must be visible immediately (Immediate_ipi
   or urgent) each target still applies every request before the
   initiator proceeds; under Deferred_timer/Lazy_local the requests are
   queued exactly as unbatched shootdowns would queue them, so *when*
   consistency is restored never changes — only how many exchanges it
   takes. *)
let shootdown_batch t ~initiator ~targets reqs ~urgent =
  match reqs with
  | [] -> ()
  | [ req ] -> shootdown t ~initiator ~targets req ~urgent
  | reqs ->
    with_category t ~cpu:initiator Mach_obs.Obs.Shootdown_ipi @@ fun () ->
    t.stats.shootdowns <- t.stats.shootdowns + 1;
    let init = cpu_of t initiator in
    let start_clock = init.clock in
    let tlb_flush = t.arch.Arch.cost.Arch.tlb_flush in
    List.iter
      (fun req ->
         apply_flush init req;
         bump t init tlb_flush;
         note_flush t init req ~deferred:false)
      reqs;
    let remote = List.filter (fun id -> id <> initiator) targets in
    let note_batch () =
      if traced t then begin
        let span_pages =
          List.fold_left
            (fun acc -> function
               | Flush_page _ -> acc + 1
               | Flush_range { lo_vpn; hi_vpn; _ } -> acc + (hi_vpn - lo_vpn)
               | Flush_asid _ | Flush_all -> acc)
            0 reqs
        in
        Mach_obs.Obs.record t.tracer ~ts:init.clock ~cpu:initiator
          (Mach_obs.Obs.Shootdown_batch
             { initiator; targets = List.length remote;
               requests = List.length reqs; span_pages; urgent;
               cycles = init.clock - start_clock })
      end
    in
    if remote = [] then note_batch ()
    else if urgent || t.shootdown_mode = Immediate_ipi then begin
      List.iter
        (fun id ->
           let target = cpu_of t id in
           (* One interrupt delivers the whole request list; the target
              then pays a flush per request. *)
           t.stats.ipis <- t.stats.ipis + 1;
           bump t init t.arch.Arch.cost.Arch.ipi;
           bump_as t target Mach_obs.Obs.Shootdown_ipi
             t.arch.Arch.cost.Arch.ipi;
           List.iter
             (fun req ->
                apply_flush target req;
                note_flush t target req ~deferred:false;
                bump_as t target Mach_obs.Obs.Shootdown_ipi tlb_flush)
             reqs)
        remote;
      note_batch ()
    end
    else begin
      List.iter
        (fun id ->
           let pending = (cpu_of t id).pending in
           List.iter (fun req -> Queue.add req pending) reqs)
        remote;
      (match t.shootdown_mode with
       | Deferred_timer -> deferred_wait t ~initiator
       | Lazy_local -> ()
       | Immediate_ipi -> assert false);
      note_batch ()
    end

(* --- Translation and access ------------------------------------------ *)

let stale_hit c ~asid ~vpn =
  Queue.fold
    (fun acc req ->
       acc
       ||
       match req with
       | Flush_page p -> p.asid = asid && p.vpn = vpn
       | Flush_range r -> r.asid = asid && vpn >= r.lo_vpn && vpn < r.hi_vpn
       | Flush_asid a -> a = asid
       | Flush_all -> true)
    false c.pending

let set_translator t ~cpu tr =
  let c = cpu_of t cpu in
  let changed =
    match c.translator, tr with
    | None, None -> false
    | Some a, Some b -> a.Translator.asid <> b.Translator.asid
    | None, Some _ | Some _, None -> true
  in
  if changed then charge t ~cpu t.arch.Arch.cost.Arch.context_switch;
  c.translator <- tr

let active_asid t ~cpu =
  match (cpu_of t cpu).translator with
  | None -> None
  | Some tr -> Some tr.Translator.asid

let tlb_fill t ~cpu e = Tlb.insert (cpu_of t cpu).tlb e

let deliver_fault t ~cpu f =
  t.stats.faults <- t.stats.faults + 1;
  (* Everything the handler does — trap overhead included — counts as
     fault service unless a nested frame (pmap, disk, pager...) claims
     it.  The pop is exception-safe: the handler may raise
     [Memory_violation]. *)
  with_category t ~cpu Mach_obs.Obs.Fault_service @@ fun () ->
  charge t ~cpu t.arch.Arch.cost.Arch.fault_overhead;
  match t.fault_handler with
  | None ->
    raise (Memory_violation
             { va = f.fault_va; write = f.fault_write;
               reason = "no fault handler installed" })
  | Some h -> h ~cpu f

(* The NS32082 reports a write access that faults on a read-only page as a
   read fault (Section 5.1); the kernel has to recognise and repair this. *)
let reported_write t ~write ~kind =
  match kind with
  | `Protection when write && t.arch.Arch.reports_rmw_as_read -> false
  | `Protection | `Invalid -> write

(* Built only on trap paths, so the hot hit path allocates nothing. *)
let trap_fault t ~va ~write kind =
  { fault_va = va;
    fault_write = reported_write t ~write ~kind;
    fault_kind = kind }

let translate t ~cpu ~va ~write =
  if va < 0 then
    raise (Memory_violation { va; write; reason = "negative address" });
  let c = cpu_of t cpu in
  let cost = t.arch.Arch.cost in
  let vpn = va / t.arch.Arch.hw_page_size in
  let rec attempt retries =
    if retries > 16 then
      raise (Unresolved_fault (trap_fault t ~va ~write `Invalid));
    let cached =
      match c.translator with
      | None -> None
      | Some tr ->
        if Tlb.capacity c.tlb = 0 then None
        else Tlb.lookup c.tlb ~asid:tr.Translator.asid ~vpn
    in
    match cached, c.translator with
    | _, None ->
      raise (Memory_violation { va; write; reason = "no address space" })
    | Some e, Some tr ->
      t.stats.tlb_hit_count <- t.stats.tlb_hit_count + 1;
      if Prot.allows e.Tlb.prot ~write then begin
        if not (Queue.is_empty c.pending)
           && stale_hit c ~asid:tr.Translator.asid ~vpn then
          t.stats.stale_tlb_uses <- t.stats.stale_tlb_uses + 1;
        bump t c cost.Arch.mem_op;
        (match t.on_translated with
         | None -> ()
         | Some f -> f ~pfn:e.Tlb.pfn ~write);
        e.Tlb.pfn
      end
      else begin
        (* Protection faults drop the stale entry before trapping. *)
        Tlb.invalidate_page c.tlb ~asid:tr.Translator.asid ~vpn;
        deliver_fault t ~cpu (trap_fault t ~va ~write `Protection);
        attempt (retries + 1)
      end
    | None, Some tr ->
      t.stats.tlb_miss_count <- t.stats.tlb_miss_count + 1;
      bump t c tr.Translator.walk_cost;
      (match tr.Translator.lookup vpn with
       | Translator.Mapped { pfn; prot } ->
         if Tlb.capacity c.tlb > 0 then
           Tlb.insert c.tlb
             { Tlb.asid = tr.Translator.asid; vpn; pfn; prot };
         if Prot.allows prot ~write then begin
           bump t c cost.Arch.mem_op;
           (match t.on_translated with
            | None -> ()
            | Some f -> f ~pfn ~write);
           pfn
         end
         else begin
           deliver_fault t ~cpu (trap_fault t ~va ~write `Protection);
           attempt (retries + 1)
         end
       | Translator.Missing ->
         deliver_fault t ~cpu (trap_fault t ~va ~write `Invalid);
         attempt (retries + 1))
  in
  attempt 0

let move_cost t len =
  let cost = t.arch.Arch.cost in
  ((len + 15) / 16) * cost.Arch.move_16b

(* Split [va, va+len) into per-page runs and apply [f va offset_in_buffer
   run_len]. *)
let iter_page_runs t ~va ~len f =
  let page = t.arch.Arch.hw_page_size in
  let rec loop va done_ =
    if done_ < len then begin
      let in_page = page - (va mod page) in
      let run = min in_page (len - done_) in
      f va done_ run;
      loop (va + run) (done_ + run)
    end
  in
  if len < 0 then invalid_arg "Machine: negative length";
  loop va 0

let read t ~cpu ~va ~len =
  let buf = Bytes.create len in
  iter_page_runs t ~va ~len (fun va off run ->
      let pfn = translate t ~cpu ~va ~write:false in
      let page = t.arch.Arch.hw_page_size in
      let data = Phys_mem.read t.phys pfn ~offset:(va mod page) ~len:run in
      Bytes.blit data 0 buf off run;
      charge t ~cpu (move_cost t run));
  buf

let write t ~cpu ~va data =
  let len = Bytes.length data in
  iter_page_runs t ~va ~len (fun va off run ->
      let pfn = translate t ~cpu ~va ~write:true in
      let page = t.arch.Arch.hw_page_size in
      Phys_mem.write t.phys pfn ~offset:(va mod page)
        (Bytes.sub data off run);
      charge t ~cpu (move_cost t run))

let read_byte t ~cpu ~va =
  let pfn = translate t ~cpu ~va ~write:false in
  Phys_mem.read_byte t.phys pfn ~offset:(va mod t.arch.Arch.hw_page_size)

let write_byte t ~cpu ~va ch =
  let pfn = translate t ~cpu ~va ~write:true in
  Phys_mem.write_byte t.phys pfn ~offset:(va mod t.arch.Arch.hw_page_size) ch

let touch t ~cpu ~va ~write =
  if write then begin
    let current = read_byte t ~cpu ~va in
    write_byte t ~cpu ~va current
  end
  else ignore (read_byte t ~cpu ~va)

let tlb_contents t ~cpu = Tlb.entries (cpu_of t cpu).tlb

let tlb_hits t =
  Array.fold_left (fun acc c -> acc + Tlb.hits c.tlb) 0 t.cpus

let tlb_misses t =
  Array.fold_left (fun acc c -> acc + Tlb.misses c.tlb) 0 t.cpus
