open Mach_hw
open Mach_pmap
open Mach_pagers

type variant = {
  v_name : string;
  v_cow_fork : bool;
  v_page_overhead : int;
}

let bsd43 = { v_name = "4.3bsd"; v_cow_fork = false; v_page_overhead = 180 }

let acis42 =
  { v_name = "ACIS 4.2a"; v_cow_fork = false; v_page_overhead = 480 }

(* SunOS 3.2 forks copy-on-write, but every page operation updates its
   internally simulated VAX mapping structures on top of the real ones. *)
let sunos32 =
  { v_name = "SunOS 3.2"; v_cow_fork = true; v_page_overhead = 900 }

let variant_for (arch : Arch.t) =
  match arch.Arch.kind with
  | Arch.Sun3 -> sunos32
  | Arch.Rt_pc -> acis42
  | Arch.Vax | Arch.Ns32082 | Arch.Tlb_only -> bsd43

type region = { r_start : int; r_size : int }

type proc = {
  p_id : int;
  p_name : string;
  p_pmap : Pmap.t;
  mutable p_regions : region list;
  p_pages : (int, int) Hashtbl.t;   (* vpn -> frame *)
  p_swap : (int, Bytes.t) Hashtbl.t; (* vpn -> evicted contents *)
  mutable p_brk : int;
  mutable p_dead : bool;
}

type t = {
  machine : Machine.t;
  domain : Pmap_domain.t;
  variant : variant;
  fs : Simfs.t;
  cache : Buffer_cache.t;
  free_frames : int Queue.t;
  frame_refs : int array;
  alloc_order : (proc * int * int) Queue.t; (* proc, vpn, frame *)
  current : proc option array;
  page : int;
}

let next_proc_id = ref 0

let machine t = t.machine
let bcache t = t.cache

let charge t ~cpu c = Machine.charge t.machine ~cpu c
let cost t = (Machine.arch t.machine).Arch.cost
let move_cost t len = ((len + 15) / 16) * (cost t).Arch.move_16b

let overhead t ~cpu = charge t ~cpu t.variant.v_page_overhead

let in_region p va =
  List.exists
    (fun r -> va >= r.r_start && va < r.r_start + r.r_size)
    p.p_regions

let violation (f : Machine.fault) reason =
  raise
    (Machine.Memory_violation
       { va = f.Machine.fault_va; write = f.Machine.fault_write; reason })

(* Take a free frame, evicting the oldest single-referenced resident page
   to its owner's swap when none remain. *)
let alloc_frame t ~cpu =
  match Queue.take_opt t.free_frames with
  | Some f -> f
  | None ->
    let guard = ref (2 * Queue.length t.alloc_order) in
    let rec evict () =
      if !guard <= 0 then failwith "bsd_vm: out of memory";
      decr guard;
      match Queue.take_opt t.alloc_order with
      | None -> failwith "bsd_vm: out of memory"
      | Some (p, vpn, frame) ->
        let live =
          (not p.p_dead) && Hashtbl.find_opt p.p_pages vpn = Some frame
        in
        if not live then evict ()
        else if t.frame_refs.(frame) > 1 then begin
          Queue.add (p, vpn, frame) t.alloc_order;
          evict ()
        end
        else begin
          let data =
            Phys_mem.read (Machine.phys t.machine) frame ~offset:0
              ~len:t.page
          in
          Hashtbl.replace p.p_swap vpn data;
          Machine.charge_disk t.machine ~cpu ~write:true ~bytes:t.page;
          p.p_pmap.Pmap.remove ~start_va:(vpn * t.page)
            ~end_va:((vpn + 1) * t.page);
          Hashtbl.remove p.p_pages vpn;
          t.frame_refs.(frame) <- 0;
          frame
        end
    in
    evict ()

let grab_frame t ~cpu p ~vpn =
  let frame = alloc_frame t ~cpu in
  t.frame_refs.(frame) <- 1;
  Hashtbl.replace p.p_pages vpn frame;
  Queue.add (p, vpn, frame) t.alloc_order;
  frame

let enter t ~cpu:_ p ~vpn ~frame ~prot =
  p.p_pmap.Pmap.enter ~va:(vpn * t.page) ~pfn:frame ~prot ~wired:false

let effective_write t (f : Machine.fault) =
  f.Machine.fault_write
  || (f.Machine.fault_kind = `Protection
      && (Machine.arch t.machine).Arch.reports_rmw_as_read)

let handle_fault t ~cpu (f : Machine.fault) =
  Pmap_domain.set_current_cpu t.domain cpu;
  match t.current.(cpu) with
  | None -> violation f "no current process"
  | Some p ->
    let va = f.Machine.fault_va in
    if not (in_region p va) then violation f "segmentation violation";
    let vpn = va / t.page in
    let write = effective_write t f in
    overhead t ~cpu;
    (match Hashtbl.find_opt p.p_pages vpn with
     | Some frame ->
       if write && t.frame_refs.(frame) > 1 then begin
         (* copy-on-write copy (SunOS variant) *)
         let nf = alloc_frame t ~cpu in
         t.frame_refs.(nf) <- 1;
         t.frame_refs.(frame) <- t.frame_refs.(frame) - 1;
         Pmap_domain.copy_page t.domain ~src:frame ~dst:nf;
         Hashtbl.replace p.p_pages vpn nf;
         Queue.add (p, vpn, nf) t.alloc_order;
         enter t ~cpu p ~vpn ~frame:nf ~prot:Prot.read_write
       end
       else begin
         let prot =
           if t.frame_refs.(frame) > 1 then Prot.read_only
           else Prot.read_write
         in
         enter t ~cpu p ~vpn ~frame ~prot
       end
     | None ->
       (match Hashtbl.find_opt p.p_swap vpn with
        | Some data ->
          let frame = grab_frame t ~cpu p ~vpn in
          Machine.charge_disk t.machine ~cpu ~write:false ~bytes:t.page;
          Phys_mem.write (Machine.phys t.machine) frame ~offset:0 data;
          Hashtbl.remove p.p_swap vpn;
          enter t ~cpu p ~vpn ~frame ~prot:Prot.read_write
        | None ->
          let frame = grab_frame t ~cpu p ~vpn in
          Pmap_domain.zero_page t.domain ~pfn:frame;
          enter t ~cpu p ~vpn ~frame ~prot:Prot.read_write))

let create machine ~fs ~buffers ?variant () =
  let variant =
    match variant with
    | Some v -> v
    | None -> variant_for (Machine.arch machine)
  in
  let domain = Pmap_domain.create machine in
  let phys = Machine.phys machine in
  let t =
    {
      machine;
      domain;
      variant;
      fs;
      cache = Buffer_cache.create fs ~buffers;
      free_frames = Queue.create ();
      frame_refs = Array.make (Phys_mem.frame_count phys) 0;
      alloc_order = Queue.create ();
      current = Array.make (Machine.cpu_count machine) None;
      page = Phys_mem.page_size phys;
    }
  in
  List.iter (fun f -> Queue.add f t.free_frames) (Phys_mem.present_frames phys);
  Machine.set_fault_handler machine (fun ~cpu f -> handle_fault t ~cpu f);
  Machine.set_on_translated machine (fun ~pfn:_ ~write:_ -> ());
  t

let create_proc t ?(name = "proc") () =
  incr next_proc_id;
  {
    p_id = !next_proc_id;
    p_name = name;
    p_pmap = Pmap_domain.create_pmap t.domain;
    p_regions = [];
    p_pages = Hashtbl.create 64;
    p_swap = Hashtbl.create 16;
    p_brk = t.page;
    p_dead = false;
  }

let run_proc t ~cpu p =
  Pmap_domain.set_current_cpu t.domain cpu;
  (match t.current.(cpu) with
   | Some prev when prev == p -> ()
   | Some prev -> prev.p_pmap.Pmap.deactivate ~cpu
   | None -> ());
  t.current.(cpu) <- Some p;
  p.p_pmap.Pmap.activate ~cpu

let sbrk t ~cpu p ~size =
  charge t ~cpu (cost t).Arch.syscall;
  let size = (size + t.page - 1) / t.page * t.page in
  let base = p.p_brk in
  p.p_regions <- { r_start = base; r_size = size } :: p.p_regions;
  p.p_brk <- base + size;
  base

let fork t ~cpu parent =
  Pmap_domain.set_current_cpu t.domain cpu;
  charge t ~cpu (cost t).Arch.proc_work;
  let child = create_proc t ~name:(parent.p_name ^ "-child") () in
  child.p_regions <- parent.p_regions;
  child.p_brk <- parent.p_brk;
  Hashtbl.iter (fun vpn data -> Hashtbl.replace child.p_swap vpn data)
    parent.p_swap;
  if t.variant.v_cow_fork then
    Hashtbl.iter
      (fun vpn frame ->
         t.frame_refs.(frame) <- t.frame_refs.(frame) + 1;
         Hashtbl.replace child.p_pages vpn frame;
         Queue.add (child, vpn, frame) t.alloc_order;
         (* Both sides lose write permission until a copying fault. *)
         parent.p_pmap.Pmap.protect ~start_va:(vpn * t.page)
           ~end_va:((vpn + 1) * t.page) ~prot:Prot.read_only;
         enter t ~cpu child ~vpn ~frame ~prot:Prot.read_only;
         overhead t ~cpu)
      parent.p_pages
  else
    Hashtbl.iter
      (fun vpn frame ->
         let nf = alloc_frame t ~cpu in
         t.frame_refs.(nf) <- 1;
         Pmap_domain.copy_page t.domain ~src:frame ~dst:nf;
         Hashtbl.replace child.p_pages vpn nf;
         Queue.add (child, vpn, nf) t.alloc_order;
         enter t ~cpu child ~vpn ~frame:nf ~prot:Prot.read_write;
         overhead t ~cpu)
      parent.p_pages;
  child

let exit t ~cpu p =
  Pmap_domain.set_current_cpu t.domain cpu;
  p.p_dead <- true;
  Array.iteri
    (fun i cur ->
       match cur with
       | Some running when running == p ->
         p.p_pmap.Pmap.deactivate ~cpu:i;
         t.current.(i) <- None
       | Some _ | None -> ())
    t.current;
  Hashtbl.iter
    (fun _ frame ->
       t.frame_refs.(frame) <- t.frame_refs.(frame) - 1;
       if t.frame_refs.(frame) = 0 then Queue.add frame t.free_frames)
    p.p_pages;
  Hashtbl.reset p.p_pages;
  Hashtbl.reset p.p_swap;
  p.p_pmap.Pmap.destroy ()

let exec t ~cpu p ~text =
  charge t ~cpu (cost t).Arch.syscall;
  let size = Simfs.file_size t.fs ~name:text in
  let base = sbrk t ~cpu p ~size in
  let pages = (size + t.page - 1) / t.page in
  for i = 0 to pages - 1 do
    let vpn = (base / t.page) + i in
    let frame = grab_frame t ~cpu p ~vpn in
    let data =
      Buffer_cache.read t.cache ~cpu ~name:text ~offset:(i * t.page)
        ~len:t.page
    in
    Phys_mem.write (Machine.phys t.machine) frame ~offset:0
      (if Bytes.length data = t.page then data
       else begin
         let b = Bytes.make t.page '\000' in
         Bytes.blit data 0 b 0 (Bytes.length data);
         b
       end);
    charge t ~cpu (move_cost t t.page);
    enter t ~cpu p ~vpn ~frame ~prot:Prot.read_execute;
    overhead t ~cpu
  done;
  base

let read_file t ~cpu ~name ~offset ~len =
  charge t ~cpu (cost t).Arch.syscall;
  let data = Buffer_cache.read t.cache ~cpu ~name ~offset ~len in
  (* the copy from kernel buffers to the user buffer *)
  charge t ~cpu (move_cost t (Bytes.length data));
  data

let write_file t ~cpu ~name ~offset ~data =
  charge t ~cpu (cost t).Arch.syscall;
  charge t ~cpu (move_cost t (Bytes.length data));
  Buffer_cache.write t.cache ~cpu ~name ~offset ~data

let resident_pages p = Hashtbl.length p.p_pages
