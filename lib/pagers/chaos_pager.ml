open Mach_core
open Types
module Fail = Mach_fail.Fail
module Obs = Mach_obs.Obs

let emit_timeout sys ~offset =
  if Obs.enabled (Vm_sys.tracer sys) then
    Vm_sys.emit sys (Obs.Pager_timeout { offset; attempts = 1 })

let wrap sys inj ?(site = "pager") ?(deadline_cycles = 20_000) pager =
  let req_site = site ^ ".request" in
  let write_site = site ^ ".write" in
  {
    pager with
    pgr_request =
      (fun ~offset ~length ->
         match Fail.decide inj ~site:req_site with
         | Fail.Pass -> pager.pgr_request ~offset ~length
         | Fail.Fail -> Data_error
         | Fail.Drop ->
           (* No reply at all: the kernel waits out its deadline. *)
           Vm_sys.charge sys deadline_cycles;
           emit_timeout sys ~offset;
           Data_error
         | Fail.Delay c ->
           Vm_sys.charge sys c;
           pager.pgr_request ~offset ~length
         | Fail.Short n ->
           (* A truncated reply.  For a clustered request this is a
              truncated cluster: the kernel floors it to whole pages and,
              below one page, retries on the single-page path. *)
           (match pager.pgr_request ~offset ~length with
            | Data_provided d ->
              Data_provided (Bytes.sub d 0 (min n (Bytes.length d)))
            | reply -> reply)
         | Fail.Garbage ->
           (match pager.pgr_request ~offset ~length with
            | Data_provided d -> Data_provided (Fail.scramble d)
            | reply -> reply));
    pgr_write =
      (fun ~offset ~data ->
         match Fail.decide inj ~site:write_site with
         | Fail.Pass -> pager.pgr_write ~offset ~data
         | Fail.Delay c ->
           Vm_sys.charge sys c;
           pager.pgr_write ~offset ~data
         | Fail.Drop ->
           Vm_sys.charge sys deadline_cycles;
           emit_timeout sys ~offset;
           Write_error
         | Fail.Fail | Fail.Short _ | Fail.Garbage ->
           (* A short or corrupted write is a failed write: the kernel
              must keep the page dirty, never trust a partial ack. *)
           Write_error);
    (* Async submits consult the injector at submit time — before the
       wrapped pager is touched — so a chaos seed replays identically no
       matter when completions are later reaped.  [None] is the async
       path's only failure shape: the kernel falls back to the
       synchronous protocol, where this wrapper's [pgr_request]/
       [pgr_write] arms own the failure semantics. *)
    pgr_submit =
      (fun ~offset ~length ->
         match Fail.decide inj ~site:req_site with
         | Fail.Pass -> pager.pgr_submit ~offset ~length
         | Fail.Fail -> None
         | Fail.Drop ->
           (* The submit vanishes into the void; the kernel's synchronous
              fallback models the recovery. *)
           emit_timeout sys ~offset;
           None
         | Fail.Delay c ->
           (match pager.pgr_submit ~offset ~length with
            | Some tk ->
              Some { tk with tk_completion = tk.tk_completion + c;
                             tk_service = tk.tk_service + c }
            | None -> None)
         | Fail.Short n ->
           (match pager.pgr_submit ~offset ~length with
            | Some tk ->
              Some { tk with
                     tk_data =
                       Bytes.sub tk.tk_data 0 (min n (Bytes.length tk.tk_data)) }
            | None -> None)
         | Fail.Garbage ->
           (match pager.pgr_submit ~offset ~length with
            | Some tk -> Some { tk with tk_data = Fail.scramble tk.tk_data }
            | None -> None));
    pgr_submit_write =
      (fun ~offset ~data ->
         match Fail.decide inj ~site:write_site with
         | Fail.Pass -> pager.pgr_submit_write ~offset ~data
         | Fail.Delay c ->
           (match pager.pgr_submit_write ~offset ~data with
            | Some wt ->
              Some { wt_completion = wt.wt_completion + c;
                     wt_service = wt.wt_service + c }
            | None -> None)
         | Fail.Drop ->
           emit_timeout sys ~offset;
           None
         | Fail.Fail | Fail.Short _ | Fail.Garbage -> None);
  }

let map_wrapped sys task inj ?site ~pager ~size ?at ?copy () =
  Pager_map.map_object sys task
    ~resolve:(fun () -> (wrap sys inj ?site pager, size))
    ?at ?copy ()
