open Mach_hw
module Fail = Mach_fail.Fail

exception Io_error of { write : bool; block : int }

type t = {
  machine : Machine.t;
  block_size : int;
  blocks : (int, Bytes.t) Hashtbl.t;
  mutable reads : int;
  mutable writes : int;
  mutable errors : int;
  mutable retries : int;
  mutable fail : Fail.t option;
}

(* Internal bounded retry: a transient injected error costs a wasted
   transfer and a retry; only [max_attempts] consecutive failures
   surface as {!Io_error} to the caller. *)
let max_attempts = 3

let create machine ~block_size =
  if block_size <= 0 then invalid_arg "Simdisk.create";
  { machine; block_size; blocks = Hashtbl.create 256; reads = 0; writes = 0;
    errors = 0; retries = 0; fail = None }

let block_size t = t.block_size

let set_injector t inj = t.fail <- inj

let emit_error t ~cpu ~write =
  let tr = Machine.tracer t.machine in
  if Mach_obs.Obs.enabled tr then
    Mach_obs.Obs.record tr ~ts:(Machine.cycles t.machine ~cpu) ~cpu
      (Mach_obs.Obs.Io_error { write; bytes = t.block_size })

(* Consult the injector before a transfer.  Each attempt (including the
   failed ones) pays the full disk cost — the platter really did spin.
   Raises {!Io_error} when the retry budget is exhausted. *)
let admit t ~cpu ~write ~block =
  match t.fail with
  | None -> ()
  | Some inj ->
    let site = if write then "disk.write" else "disk.read" in
    let stats = Machine.stats t.machine in
    let rec attempt n =
      match Fail.decide inj ~site with
      | Fail.Pass -> ()
      | Fail.Delay c -> Machine.charge t.machine ~cpu c
      | Fail.Fail | Fail.Drop | Fail.Short _ | Fail.Garbage ->
        (* A disk has no short reads or garbage replies to offer; any
           non-pass, non-delay decision is a failed transfer. *)
        t.errors <- t.errors + 1;
        stats.Machine.disk_errors <- stats.Machine.disk_errors + 1;
        emit_error t ~cpu ~write;
        if n + 1 < max_attempts then begin
          t.retries <- t.retries + 1;
          stats.Machine.disk_retries <- stats.Machine.disk_retries + 1;
          (* the wasted transfer *)
          Machine.charge_disk t.machine ~cpu ~write ~bytes:t.block_size;
          attempt (n + 1)
        end
        else raise (Io_error { write; block })
    in
    attempt 0

(* A run of [count] consecutive blocks is one disk request: it pays the
   injector gauntlet and the fixed seek/rotational cost once, plus the
   per-byte transfer cost for the whole run.  [count = 1] is exactly the
   classical single-block operation (identical cost and accounting), so
   unclustered callers are unaffected. *)
let read_run t ~cpu ~first ~count =
  if count <= 0 then invalid_arg "Simdisk.read_run";
  admit t ~cpu ~write:false ~block:first;
  t.reads <- t.reads + count;
  Machine.charge_disk t.machine ~cpu ~write:false
    ~bytes:(count * t.block_size);
  let buf = Bytes.make (count * t.block_size) '\000' in
  for i = 0 to count - 1 do
    match Hashtbl.find_opt t.blocks (first + i) with
    | Some b -> Bytes.blit b 0 buf (i * t.block_size) t.block_size
    | None -> ()
  done;
  buf

let read t ~cpu ~block = read_run t ~cpu ~first:block ~count:1

let write_run t ~cpu ~first data =
  let len = Bytes.length data in
  if len = 0 || len mod t.block_size <> 0 then
    invalid_arg "Simdisk.write_run";
  let count = len / t.block_size in
  admit t ~cpu ~write:true ~block:first;
  t.writes <- t.writes + count;
  Machine.charge_disk t.machine ~cpu ~write:true ~bytes:len;
  for i = 0 to count - 1 do
    Hashtbl.replace t.blocks (first + i)
      (Bytes.sub data (i * t.block_size) t.block_size)
  done

let write t ~cpu ~block data =
  if Bytes.length data > t.block_size then invalid_arg "Simdisk.write";
  let b = Bytes.make t.block_size '\000' in
  Bytes.blit data 0 b 0 (Bytes.length data);
  write_run t ~cpu ~first:block b

let install t ~block data =
  if Bytes.length data > t.block_size then invalid_arg "Simdisk.install";
  let b = Bytes.make t.block_size '\000' in
  Bytes.blit data 0 b 0 (Bytes.length data);
  Hashtbl.replace t.blocks block b

let reads t = t.reads
let writes t = t.writes
let errors t = t.errors
let retries t = t.retries

let reset_counters t =
  t.reads <- 0;
  t.writes <- 0;
  t.errors <- 0;
  t.retries <- 0
