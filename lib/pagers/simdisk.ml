open Mach_hw

type t = {
  machine : Machine.t;
  block_size : int;
  blocks : (int, Bytes.t) Hashtbl.t;
  mutable reads : int;
  mutable writes : int;
}

let create machine ~block_size =
  if block_size <= 0 then invalid_arg "Simdisk.create";
  { machine; block_size; blocks = Hashtbl.create 256; reads = 0; writes = 0 }

let block_size t = t.block_size

let read t ~cpu ~block =
  t.reads <- t.reads + 1;
  Machine.charge_disk t.machine ~cpu ~write:false ~bytes:t.block_size;
  match Hashtbl.find_opt t.blocks block with
  | Some b -> Bytes.copy b
  | None -> Bytes.make t.block_size '\000'

let write t ~cpu ~block data =
  if Bytes.length data > t.block_size then invalid_arg "Simdisk.write";
  t.writes <- t.writes + 1;
  Machine.charge_disk t.machine ~cpu ~write:true ~bytes:t.block_size;
  let b = Bytes.make t.block_size '\000' in
  Bytes.blit data 0 b 0 (Bytes.length data);
  Hashtbl.replace t.blocks block b

let install t ~block data =
  if Bytes.length data > t.block_size then invalid_arg "Simdisk.install";
  let b = Bytes.make t.block_size '\000' in
  Bytes.blit data 0 b 0 (Bytes.length data);
  Hashtbl.replace t.blocks block b

let reads t = t.reads
let writes t = t.writes

let reset_counters t =
  t.reads <- 0;
  t.writes <- 0
