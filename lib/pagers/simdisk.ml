open Mach_hw
module Fail = Mach_fail.Fail

exception Io_error of { write : bool; block : int }

type t = {
  machine : Machine.t;
  block_size : int;
  blocks : (int, Bytes.t) Hashtbl.t;
  queues : Machine.dqueue array;
  mutable reads : int;
  mutable writes : int;
  mutable errors : int;
  mutable retries : int;
  mutable fail : Fail.t option;
}

(* A submitted transfer: the data is available immediately (host
   memory), the device is busy until [h_completion].  [h_service] is
   zeroed after the first wait so a handle waited twice cannot
   double-count its overlap. *)
type handle = {
  h_data : Bytes.t;
  h_completion : int;
  mutable h_service : int;
}

(* Internal bounded retry: a transient injected error costs a wasted
   transfer and a retry; only [max_attempts] consecutive failures
   surface as {!Io_error} to the caller. *)
let max_attempts = 3

let create ?(queues = 1) machine ~block_size =
  if block_size <= 0 || queues < 1 then invalid_arg "Simdisk.create";
  { machine; block_size; blocks = Hashtbl.create 256;
    queues = Array.init queues (fun _ -> Machine.new_disk_queue machine);
    reads = 0; writes = 0; errors = 0; retries = 0; fail = None }

let block_size t = t.block_size

let queue_count t = Array.length t.queues

let queue_for t ~cpu = t.queues.(cpu mod Array.length t.queues)

let set_injector t inj = t.fail <- inj

let emit_error t ~cpu ~write ~bytes =
  let tr = Machine.tracer t.machine in
  if Mach_obs.Obs.enabled tr then
    Mach_obs.Obs.record tr ~ts:(Machine.cycles t.machine ~cpu) ~cpu
      (Mach_obs.Obs.Io_error { write; bytes })

(* Consult the injector before a transfer of [bytes] (the whole run).
   Each failed attempt pays the full run cost — the platter really did
   spin the entire transfer past the head.  Sync mode charges the
   submitting CPU directly; async mode returns the accumulated extra
   device cycles so the caller folds them into the request's service
   time (injection always decided here, at submit, so replay
   fingerprints do not depend on when completions are reaped).  Raises
   {!Io_error} when the retry budget is exhausted. *)
let admit t ~cpu ~write ~block ~bytes =
  match t.fail with
  | None -> 0
  | Some inj ->
    let site = if write then "disk.write" else "disk.read" in
    let stats = Machine.stats t.machine in
    let async = Machine.disk_async t.machine in
    let extra = ref 0 in
    let rec attempt n =
      match Fail.decide inj ~site with
      | Fail.Pass -> ()
      | Fail.Delay c ->
        if async then extra := !extra + c
        else Machine.charge t.machine ~cpu c
      | Fail.Fail | Fail.Drop | Fail.Short _ | Fail.Garbage ->
        (* A disk has no short reads or garbage replies to offer; any
           non-pass, non-delay decision is a failed transfer. *)
        t.errors <- t.errors + 1;
        stats.Machine.disk_errors <- stats.Machine.disk_errors + 1;
        emit_error t ~cpu ~write ~bytes;
        if n + 1 < max_attempts then begin
          t.retries <- t.retries + 1;
          stats.Machine.disk_retries <- stats.Machine.disk_retries + 1;
          (* the wasted transfer, at the run's full length *)
          (if async then begin
             let c = Machine.disk_service_cycles t.machine ~bytes in
             extra := !extra + c;
             Machine.account_disk t.machine ~cpu ~write ~bytes ~cycles:c
           end
           else Machine.charge_disk t.machine ~cpu ~write ~bytes);
          attempt (n + 1)
        end
        else raise (Io_error { write; block })
    in
    attempt 0;
    !extra

(* A run of [count] consecutive blocks is one disk request: it pays the
   injector gauntlet and the fixed seek/rotational cost once, plus the
   per-byte transfer cost for the whole run.  [count = 1] is exactly the
   classical single-block operation (identical cost and accounting), so
   unclustered callers are unaffected. *)
let submit_read_run t ~cpu ~first ~count =
  if count <= 0 then invalid_arg "Simdisk.read_run";
  let bytes = count * t.block_size in
  let extra = admit t ~cpu ~write:false ~block:first ~bytes in
  t.reads <- t.reads + count;
  let completion, service =
    Machine.submit_disk t.machine (queue_for t ~cpu) ~cpu ~write:false
      ~bytes ~extra
  in
  let buf = Bytes.make bytes '\000' in
  for i = 0 to count - 1 do
    match Hashtbl.find_opt t.blocks (first + i) with
    | Some b -> Bytes.blit b 0 buf (i * t.block_size) t.block_size
    | None -> ()
  done;
  { h_data = buf; h_completion = completion; h_service = service }

let wait t ~cpu h =
  Machine.wait_disk t.machine ~cpu ~completion:h.h_completion
    ~service:h.h_service;
  h.h_service <- 0;
  h.h_data

let handle_data h = h.h_data
let handle_completion h = h.h_completion
let handle_service h = h.h_service

let read_run t ~cpu ~first ~count =
  wait t ~cpu (submit_read_run t ~cpu ~first ~count)

let read t ~cpu ~block = read_run t ~cpu ~first:block ~count:1

let submit_write_run t ~cpu ~first data =
  let len = Bytes.length data in
  if len = 0 || len mod t.block_size <> 0 then
    invalid_arg "Simdisk.write_run";
  let count = len / t.block_size in
  let extra = admit t ~cpu ~write:true ~block:first ~bytes:len in
  t.writes <- t.writes + count;
  let completion, service =
    Machine.submit_disk t.machine (queue_for t ~cpu) ~cpu ~write:true
      ~bytes:len ~extra
  in
  (* The store is updated at submit: the simulated device owns the data
     from here on, and any later read through this module already pays
     its own device time. *)
  for i = 0 to count - 1 do
    Hashtbl.replace t.blocks (first + i)
      (Bytes.sub data (i * t.block_size) t.block_size)
  done;
  { h_data = Bytes.empty; h_completion = completion; h_service = service }

let write_run t ~cpu ~first data =
  ignore (wait t ~cpu (submit_write_run t ~cpu ~first data) : Bytes.t)

let write t ~cpu ~block data =
  if Bytes.length data > t.block_size then invalid_arg "Simdisk.write";
  let b = Bytes.make t.block_size '\000' in
  Bytes.blit data 0 b 0 (Bytes.length data);
  write_run t ~cpu ~first:block b

let install t ~block data =
  if Bytes.length data > t.block_size then invalid_arg "Simdisk.install";
  let b = Bytes.make t.block_size '\000' in
  Bytes.blit data 0 b 0 (Bytes.length data);
  Hashtbl.replace t.blocks block b

let reads t = t.reads
let writes t = t.writes
let errors t = t.errors
let retries t = t.retries

let reset_counters t =
  t.reads <- 0;
  t.writes <- 0;
  t.errors <- 0;
  t.retries <- 0
