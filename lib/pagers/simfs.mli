(** A minimal file system over {!Simdisk}.

    Files are named byte sequences stored in disk blocks.  This is the
    substrate under both I/O paths the paper compares: the Mach inode
    pager (files as memory objects, {!Vnode_pager}) and the traditional
    buffer-cache read path ({!Mach_bsd.Buffer_cache} in the baseline).

    Population ([install_file]) writes the data without charging the
    clock, so benchmark setup is free; all reads and subsequent writes go
    through the disk cost model. *)

type t

val create : Mach_hw.Machine.t -> ?block_size:int -> ?queues:int -> unit -> t
(** [create machine ()] is an empty file system (default 4 KB blocks,
    one disk service queue; see {!Simdisk.create} for [?queues]). *)

val fs_id : t -> int
(** Unique id, used to key pager memoization. *)

val disk : t -> Simdisk.t

val install_file : t -> name:string -> data:Bytes.t -> unit
(** [install_file t ~name ~data] creates or replaces [name] with [data],
    bypassing the disk cost model (benchmark setup). *)

val exists : t -> name:string -> bool

val file_size : t -> name:string -> int
(** Raises [Not_found] for missing files. *)

val read : t -> cpu:int -> name:string -> offset:int -> len:int -> Bytes.t
(** [read t ~cpu ~name ~offset ~len] reads, charging disk cost per block
    touched.  Short reads at end of file return fewer bytes. *)

val write : t -> cpu:int -> name:string -> offset:int -> data:Bytes.t -> unit
(** [write t ~cpu ~name ~offset ~data] writes (extending the file as
    needed), charging disk cost per block touched. *)

val submit_read :
  t -> cpu:int -> name:string -> offset:int -> len:int ->
  Bytes.t * int * int
(** [submit_read] is {!read} through the asynchronous submit protocol:
    the data comes back immediately, together with the latest completion
    stamp and summed device service time over the runs submitted, and
    the CPU is not blocked for device time.  With the machine's async
    disk model off it charges exactly like {!read} and the stamps are
    already satisfied. *)

val submit_write :
  t -> cpu:int -> name:string -> offset:int -> data:Bytes.t -> int * int
(** [submit_write] is {!write} through the submit protocol; returns
    (completion stamp, summed service time). *)

val delete : t -> name:string -> unit

val files : t -> string list
