(** A simulated block device.

    Stores block contents in memory but charges every transfer to the
    machine's clock with the architecture's disk cost model (fixed latency
    per operation plus a per-KB transfer cost).  Both the Mach inode-pager
    equivalent and the BSD buffer cache sit on one of these, so their I/O
    costs are directly comparable.

    When the machine's asynchronous disk model is on
    ([Machine.set_disk_async]), every transfer can also be {e submitted}:
    the request enters one of the device's service queues, gets a virtual
    completion stamp, and the submitting CPU only pays the {e remaining}
    device time when it later {!wait}s — device time that elapsed while
    the CPU kept computing is overlap, tracked in [Machine.stats].  With
    the async model off, submit-then-wait degenerates to exactly the
    classical synchronous charge, cycle for cycle. *)

type t

exception Io_error of { write : bool; block : int }
(** A transfer failed even after the driver's internal retries; only
    possible when a fault injector is attached. *)

val create : ?queues:int -> Mach_hw.Machine.t -> block_size:int -> t
(** [create machine ~block_size] is an empty disk with one service queue;
    [?queues] (default 1) builds that many independent queues, and
    requests are spread over them by submitting CPU ([cpu mod queues]) so
    a multiprocessor can keep several spindles busy. *)

val set_injector : t -> Mach_fail.Fail.t option -> unit
(** [set_injector t (Some inj)] makes every transfer consult [inj] at
    site ["disk.read"]/["disk.write"]: [Delay] charges extra cycles and
    proceeds; any failure decision costs a wasted (charged) transfer of
    the {e full run length} and an internal retry, up to 3 attempts, then
    raises {!Io_error}.  Injection decisions are always consumed at
    submit time, so a chaos seed replays identically whether or not the
    async model is on.  Failed and retried transfers are counted in
    {!errors}/{!retries} and mirrored into [Machine.stats]
    ([disk_errors]/[disk_retries]); with no injector attached a transfer
    performs no extra work at all. *)

val block_size : t -> int

val queue_count : t -> int

val read : t -> cpu:int -> block:int -> Bytes.t
(** [read t ~cpu ~block] returns the block's contents (zeros if never
    written), charging disk cost to [cpu]. *)

val write : t -> cpu:int -> block:int -> Bytes.t -> unit
(** [write t ~cpu ~block data] stores [data] (at most one block),
    charging disk cost. *)

val read_run : t -> cpu:int -> first:int -> count:int -> Bytes.t
(** [read_run t ~cpu ~first ~count] reads [count] consecutive blocks as
    {e one} disk request: the fixed seek/rotational latency is paid once
    for the run, plus the per-KB transfer cost for all of it — this is
    what makes clustered pagein cheaper than [count] single reads.
    [count = 1] is exactly {!read}.  Counters account one read per
    block. *)

val write_run : t -> cpu:int -> first:int -> Bytes.t -> unit
(** [write_run t ~cpu ~first data] writes [data] (a non-empty whole
    number of blocks) across consecutive blocks starting at [first] as
    one disk request, with the same amortised cost model as
    {!read_run}. *)

(** {1 Asynchronous submit/wait} *)

type handle
(** An in-flight (or completed) transfer.  The data is available
    immediately — the simulation keeps it in host memory — but the
    simulated device is busy until the handle's completion stamp. *)

val submit_read_run : t -> cpu:int -> first:int -> count:int -> handle
(** Queue the run on the device and return without blocking.  With the
    async model off this charges synchronously (identical to
    {!read_run}) and returns an already-complete handle. *)

val submit_write_run : t -> cpu:int -> first:int -> Bytes.t -> handle
(** Queue a write run; the block store is updated at submit. *)

val wait : t -> cpu:int -> handle -> Bytes.t
(** Block the CPU until the transfer completes, charging only the
    {e remaining} cycles (zero if the device already finished), and
    return the data.  Waiting a handle twice charges nothing more and
    counts no further overlap. *)

val handle_data : handle -> Bytes.t
(** The transfer's data without waiting (empty for writes). *)

val handle_completion : handle -> int
(** Absolute cycle stamp at which the device finishes the transfer. *)

val handle_service : handle -> int
(** Device cycles the request occupies; zero once waited. *)

val install : t -> block:int -> Bytes.t -> unit
(** [install t ~block data] stores data without charging the clock or the
    operation counters; used to populate disks during benchmark setup. *)

val reads : t -> int
(** Blocks read (each block of a clustered run counts). *)

val writes : t -> int
(** Blocks written (each block of a clustered run counts). *)

val errors : t -> int
(** Injected transfer failures (each failed attempt counts). *)

val retries : t -> int
(** Failed transfers retried internally. *)

val reset_counters : t -> unit
