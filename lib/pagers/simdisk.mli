(** A simulated block device.

    Stores block contents in memory but charges every transfer to the
    machine's clock with the architecture's disk cost model (fixed latency
    per operation plus a per-KB transfer cost).  Both the Mach inode-pager
    equivalent and the BSD buffer cache sit on one of these, so their I/O
    costs are directly comparable. *)

type t

exception Io_error of { write : bool; block : int }
(** A transfer failed even after the driver's internal retries; only
    possible when a fault injector is attached. *)

val create : Mach_hw.Machine.t -> block_size:int -> t
(** [create machine ~block_size] is an empty disk. *)

val set_injector : t -> Mach_fail.Fail.t option -> unit
(** [set_injector t (Some inj)] makes every transfer consult [inj] at
    site ["disk.read"]/["disk.write"]: [Delay] charges extra cycles and
    proceeds; any failure decision costs a wasted (charged) transfer and
    an internal retry, up to 3 attempts, then raises {!Io_error}.
    Failed and retried transfers are counted in {!errors}/{!retries} and
    mirrored into [Machine.stats] ([disk_errors]/[disk_retries]); with
    no injector attached a transfer performs no extra work at all. *)

val block_size : t -> int

val read : t -> cpu:int -> block:int -> Bytes.t
(** [read t ~cpu ~block] returns the block's contents (zeros if never
    written), charging disk cost to [cpu]. *)

val write : t -> cpu:int -> block:int -> Bytes.t -> unit
(** [write t ~cpu ~block data] stores [data] (at most one block),
    charging disk cost. *)

val read_run : t -> cpu:int -> first:int -> count:int -> Bytes.t
(** [read_run t ~cpu ~first ~count] reads [count] consecutive blocks as
    {e one} disk request: the fixed seek/rotational latency is paid once
    for the run, plus the per-KB transfer cost for all of it — this is
    what makes clustered pagein cheaper than [count] single reads.
    [count = 1] is exactly {!read}.  Counters account one read per
    block. *)

val write_run : t -> cpu:int -> first:int -> Bytes.t -> unit
(** [write_run t ~cpu ~first data] writes [data] (a non-empty whole
    number of blocks) across consecutive blocks starting at [first] as
    one disk request, with the same amortised cost model as
    {!read_run}. *)

val install : t -> block:int -> Bytes.t -> unit
(** [install t ~block data] stores data without charging the clock or the
    operation counters; used to populate disks during benchmark setup. *)

val reads : t -> int
(** Blocks read (each block of a clustered run counts). *)

val writes : t -> int
(** Blocks written (each block of a clustered run counts). *)

val errors : t -> int
(** Injected transfer failures (each failed attempt counts). *)

val retries : t -> int
(** Failed transfers retried internally. *)

val reset_counters : t -> unit
