open Mach_core
open Mach_ipc
open Types

type handler = Ipc.message -> Ipc.message option

let counters : (int, int ref) Hashtbl.t = Hashtbl.create 16

(* Run the pager task on its queued messages until one reply lands on
   [reply_port].  [None] is the no-reply case — the pager dropped the
   request or span its queue past the kernel's deadline — which the
   caller must treat as a pager failure, never a crash: an external
   pager is untrusted code. *)
let dispatch_until_reply sys ~object_port ~reply_port ~handler =
  let guard = ref 0 in
  let rec loop () =
    match Ipc.receive sys reply_port with
    | Some reply -> Some reply
    | None ->
      incr guard;
      if !guard > 64 then None
      else
        (match Ipc.receive sys object_port with
         | None -> None
         | Some req ->
           (match handler req with
            | Some reply ->
              (match req.Ipc.msg_reply_to with
               | Some p -> Ipc.send sys p reply
               | None -> ())
            | None -> ());
           loop ())
  in
  loop ()

let make sys ~name ?(should_cache = false) ~handler () =
  let id = fresh_pager_id () in
  let object_port = Ipc.create_port ~name:(name ^ ".paging_object") () in
  let reply_port = Ipc.create_port ~name:(name ^ ".paging_object_request") () in
  let served = ref 0 in
  Hashtbl.add counters id served;
  let request ~offset ~length =
    Ipc.send sys object_port
      (Ipc.message "pager_data_request" ~ints:[ offset; length ]
         ~reply_to:reply_port);
    match dispatch_until_reply sys ~object_port ~reply_port ~handler with
    | None ->
      (* No reply within the deadline: report the timeout and fail the
         request so Pager_guard can retry or degrade. *)
      if Mach_obs.Obs.enabled (Vm_sys.tracer sys) then
        Vm_sys.emit sys
          (Mach_obs.Obs.Pager_timeout { offset; attempts = 1 });
      Data_error
    | Some reply ->
      incr served;
      (match reply.Ipc.msg_tag, reply.Ipc.msg_items with
       | "pager_data_provided", Ipc.Inline data :: _ -> Data_provided data
       | "pager_data_unavailable", _ -> Data_unavailable
       (* pager_error, or any protocol violation from a hostile pager:
          an error reply, never a kernel crash. *)
       | _, _ -> Data_error)
  in
  (* pager_init (Table 3-1): tell the new pager about its object and
     request port before any data traffic. *)
  Ipc.send sys object_port
    (Ipc.message "pager_init" ~reply_to:reply_port);
  (match Ipc.receive sys object_port with
   | Some req -> ignore (handler req)
   | None -> ());
  let write ~offset ~data =
    Ipc.send sys object_port
      (Ipc.message "pager_data_write" ~ints:[ offset ]
         ~items:[ Ipc.Inline data ]);
    (* Writes need no reply; let the pager absorb its queue.  A handler
       that raises is a crashed pager: the kernel keeps the page dirty. *)
    match Ipc.receive sys object_port with
    | Some req ->
      (match handler req with
       | Some { Ipc.msg_tag = ("pager_error" | "pager_write_error"); _ } ->
         Write_error
       | Some _ | None -> Write_completed
       | exception _ -> Write_error)
    | None -> Write_completed
  in
  {
    pgr_id = id;
    pgr_name = name;
    pgr_request = request;
    pgr_write = write;
    (* Message exchanges with an external pager task are synchronous
       dispatch loops; there is no device queue to overlap, so the async
       submit protocol always falls back to the message path. *)
    pgr_submit = Types.no_submit;
    pgr_submit_write = Types.no_submit_write;
    pgr_should_cache = ref should_cache;
  }

let trivial_store sys ~name () =
  let store : (int, Bytes.t) Hashtbl.t = Hashtbl.create 16 in
  let initialized = ref false in
  let handler (m : Ipc.message) =
    match m.Ipc.msg_tag, m.Ipc.msg_ints with
    | "pager_init", _ ->
      initialized := true;
      None
    | "pager_data_request", offset :: length :: _ ->
      (match Hashtbl.find_opt store offset with
       | Some data ->
         Some
           (Ipc.message "pager_data_provided" ~ints:[ offset ]
              ~items:[ Ipc.Inline (Bytes.sub data 0 (min length (Bytes.length data))) ])
       | None ->
         Some (Ipc.message "pager_data_unavailable" ~ints:[ offset; length ]))
    | "pager_data_write", offset :: _ ->
      (match m.Ipc.msg_items with
       | Ipc.Inline data :: _ ->
         (* Clustered pageouts hand over several pages in one message;
            store page-size chunks so later per-page requests find
            their piece (the range contract on [pgr_write]). *)
         let ps = sys.Vm_sys.page_size in
         let len = Bytes.length data in
         let pos = ref 0 in
         while !pos < len do
           let take = min ps (len - !pos) in
           Hashtbl.replace store (offset + !pos) (Bytes.sub data !pos take);
           pos := !pos + take
         done
       | _ -> ());
      None
    | tag, _ -> failwith ("trivial_store: unexpected message " ^ tag)
  in
  ignore initialized;
  (make sys ~name ~handler (), store)

let requests_served (p : pager) =
  match Hashtbl.find_opt counters p.pgr_id with
  | Some r -> !r
  | None -> 0
