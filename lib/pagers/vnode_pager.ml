open Mach_core
open Types

(* Memoized pager per (file system, file name): the paging_name identity
   that leads all mappings of a file to the same memory object. *)
let pagers : (int * string, pager) Hashtbl.t = Hashtbl.create 64

let make (sys : Vm_sys.t) fs ~name =
  let id = fresh_pager_id () in
  let cpu () = Vm_sys.current_cpu sys in
  {
    pgr_id = id;
    pgr_name = Printf.sprintf "vnode:%s" name;
    pgr_request =
      (fun ~offset ~length ->
         match Simfs.file_size fs ~name with
         | exception Not_found -> Data_unavailable
         | size ->
           if offset >= size then Data_unavailable
           else (
             (* An injected disk failure below Simfs surfaces as the
                protocol's error reply; the kernel's Pager_guard decides
                whether to retry. *)
             match
               Simfs.read fs ~cpu:(cpu ()) ~name ~offset
                 ~len:(min length (size - offset))
             with
             | data -> Data_provided data
             | exception Simdisk.Io_error _ -> Data_error));
    pgr_write =
      (fun ~offset ~data ->
         (* The inode pager never grows the file: a mapped page's tail
            beyond end of file is zero-fill memory, not file contents. *)
         match Simfs.file_size fs ~name with
         | exception Not_found -> Write_completed
         | size ->
           if offset >= size then Write_completed
           else
             let len = min (Bytes.length data) (size - offset) in
             (match
                Simfs.write fs ~cpu:(cpu ()) ~name ~offset
                  ~data:(Bytes.sub data 0 len)
              with
              | () -> Write_completed
              | exception Simdisk.Io_error _ -> Write_error));
    pgr_submit =
      (fun ~offset ~length ->
         (* Same clipping as [pgr_request], through the file system's
            submit path; any trouble (async disk off, injected failure)
            answers [None] and the kernel falls back to the guarded
            synchronous protocol. *)
         if not (Mach_hw.Machine.disk_async sys.Vm_sys.machine) then None
         else
           match Simfs.file_size fs ~name with
           | exception Not_found -> None
           | size ->
             if offset >= size then None
             else (
               match
                 Simfs.submit_read fs ~cpu:(cpu ()) ~name ~offset
                   ~len:(min length (size - offset))
               with
               | data, completion, service ->
                 Some { tk_data = data; tk_completion = completion;
                        tk_service = service }
               | exception Simdisk.Io_error _ -> None));
    pgr_submit_write =
      (fun ~offset ~data ->
         if not (Mach_hw.Machine.disk_async sys.Vm_sys.machine) then None
         else
           match Simfs.file_size fs ~name with
           | exception Not_found ->
             (* Nothing to write (see [pgr_write]): an already-complete
                ticket, no device time. *)
             Some { wt_completion = 0; wt_service = 0 }
           | size ->
             if offset >= size then Some { wt_completion = 0; wt_service = 0 }
             else
               let len = min (Bytes.length data) (size - offset) in
               (match
                  Simfs.submit_write fs ~cpu:(cpu ()) ~name ~offset
                    ~data:(Bytes.sub data 0 len)
                with
                | completion, service ->
                  Some { wt_completion = completion; wt_service = service }
                | exception Simdisk.Io_error _ -> None));
    pgr_should_cache = ref true;
  }

let for_file sys fs ~name =
  if not (Simfs.exists fs ~name) then raise Not_found;
  let key = (Simfs.fs_id fs, name) in
  match Hashtbl.find_opt pagers key with
  | Some p -> p
  | None ->
    let p = make sys fs ~name in
    Hashtbl.add pagers key p;
    p

let map_file sys fs task ~name ?at ?(copy = false) () =
  Pager_map.map_object sys task
    ~resolve:(fun () ->
      (for_file sys fs ~name, Simfs.file_size fs ~name))
    ?at ~copy ()

(* A read() through the file's memory object: hit resident pages for the
   price of a copy; fill missing pages from the pager and leave them
   resident (and the object cached), so the second read is cheap. *)
let read_through_object sys ?stream fs ~name ~offset ~len =
  let pager = for_file sys fs ~name in
  let size = Simfs.file_size fs ~name in
  let obj = Vm_object.create_with_pager sys pager ~size in
  let len = if offset >= size then 0 else min len (size - offset) in
  let ps = sys.Vm_sys.page_size in
  let buf = Bytes.create len in
  let rec loop pos =
    if pos < len then begin
      let abs = offset + pos in
      let page_off = abs - (abs mod ps) in
      let chunk = min (ps - (abs mod ps)) (len - pos) in
      let page =
        match Vm_object.lookup_resident sys obj ~offset:page_off with
        | Some p ->
          Vm_cluster.note_hit sys p;
          p
        | None ->
          (* Sequential reads ramp the reader's stream slot, so a
             streaming read() pulls whole clusters per disk request; the
             object (and its slots) persist in the object cache across
             reads.  Callers doing concurrent reads of one file pass
             distinct [?stream] keys so each ramps its own slot.
             Vm_cluster falls back to the guarded single-page path —
             retries, backoff, death — on any cluster trouble. *)
          (match Vm_cluster.pagein sys ?stream obj ~offset:page_off
                   ~limit:max_int
           with
           | `Data (p, _) ->
             Resident.enqueue sys.Vm_sys.resident p Q_active;
             p
           | `Absent | `Error ->
             (* A pager that fails for good degrades this read() to
                zeros rather than crashing the server path. *)
             let p = Vm_sys.grab_page ~color:(page_off / ps) sys in
             Resident.insert sys.Vm_sys.resident p ~obj ~offset:page_off;
             Page_io.zero sys p;
             sys.Vm_sys.stats.Vm_sys.pager_reads <-
               sys.Vm_sys.stats.Vm_sys.pager_reads + 1;
             Resident.enqueue sys.Vm_sys.resident p Q_active;
             p)
      in
      Bytes.blit (Page_io.copy_out sys page ~off:(abs mod ps) ~len:chunk) 0
        buf pos chunk;
      loop (pos + chunk)
    end
  in
  loop 0;
  Vm_object.deallocate sys obj;
  buf
