(** Fault-injecting interposition on any pager.

    [wrap] returns a pager with the same identity (id, name, caching
    flag) whose request/write paths first consult a {!Mach_fail.Fail}
    injector, modelling every way an external pager can misbehave under
    the Table 3-2 protocol: error replies ([Data_error]/[Write_error]),
    no reply within the deadline (the kernel's wait is charged in
    simulated cycles and [Obs.Pager_timeout] is emitted), latency
    spikes, and short or corrupted data.  Because the identity is
    preserved, object memoization ([Vm_object.create_with_pager]) and
    [Swap_pager.stored_bytes] keep working through the wrapper.

    [Vm_sys.pager_decorator] can be set to [wrap sys inj] so even the
    kernel-created default pager is exposed to injection. *)

val wrap :
  Mach_core.Vm_sys.t -> Mach_fail.Fail.t -> ?site:string ->
  ?deadline_cycles:int -> Mach_core.Types.pager -> Mach_core.Types.pager
(** [wrap sys inj pager] interposes [inj] on [pager].  Decisions are
    taken at [site ^ ".request"] and [site ^ ".write"] (default site
    ["pager"], giving the conventional ["pager.request"] /
    ["pager.write"] sites).  [Drop] charges [deadline_cycles] (default
    20_000) — the no-reply timeout — before failing the call. *)

val map_wrapped :
  Mach_core.Vm_sys.t -> Mach_core.Task.t -> Mach_fail.Fail.t ->
  ?site:string -> pager:Mach_core.Types.pager -> size:int ->
  ?at:int -> ?copy:bool -> unit ->
  (int * int, Mach_core.Kr.t) result
(** [map_wrapped sys task inj ~pager ~size ()] maps [wrap sys inj
    pager] into [task] through {!Pager_map.map_object} — the same
    plumbing the vnode and network pagers use. *)
