open Mach_core

let map_object sys task ~resolve ?at ?(copy = false) () =
  match resolve () with
  | exception Not_found -> Error Kr.Invalid_argument
  | (pager, size) ->
    let anywhere = at = None in
    (match
       Vm_user.allocate_with_pager sys task ~pager ~offset:0 ?at ~size
         ~anywhere ~copy ()
     with
     | Ok addr -> Ok (addr, size)
     | Error _ as e -> e)
