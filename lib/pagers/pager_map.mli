(** Shared plumbing for mapping a pager-backed object into a task.

    [Vnode_pager.map_file], [Net_pager.map_remote] and
    [Chaos_pager.map_wrapped] all follow the same shape: resolve a name
    to a (pager, size) pair — which may fail — then allocate a region
    backed by that pager.  This helper owns the error plumbing once. *)

val map_object :
  Mach_core.Vm_sys.t -> Mach_core.Task.t ->
  resolve:(unit -> Mach_core.Types.pager * int) ->
  ?at:int -> ?copy:bool -> unit ->
  (int * int, Mach_core.Kr.t) result
(** [map_object sys task ~resolve ()] calls [resolve ()] for the pager
    and the object size in bytes ([Not_found] becomes
    [Kr.Invalid_argument]), then maps the object at [at] (or anywhere)
    with [vm_allocate_with_pager], returning [(address, size)].
    [copy] maps it copy-on-write. *)
