(** The inode-pager equivalent: files as memory objects.

    "To implement a memory mapped file, virtual memory is created with its
    pager specified as the file system" (Section 3.3).  A vnode pager
    serves [pager_data_request] by reading file blocks (charged as disk
    I/O) and [pager_data_write] by writing them back; reads beyond end of
    file answer [Data_unavailable] (zero fill).

    Pagers are memoized per (file system, name) so every mapping of the
    same file reaches the {e same} memory object — which is what makes the
    object cache effective for shared program text. *)

val for_file :
  Mach_core.Vm_sys.t -> Simfs.t -> name:string -> Mach_core.Types.pager
(** [for_file sys fs ~name] is the pager for [name] (created on first
    use).  The pager requests caching ([pager_cache]), so its objects
    persist in the object cache after the last unmap.  Raises [Not_found]
    for a missing file. *)

val map_file :
  Mach_core.Vm_sys.t -> Simfs.t -> Mach_core.Task.t -> name:string ->
  ?at:int -> ?copy:bool -> unit -> (int * int, Mach_core.Kr.t) result
(** [map_file sys fs task ~name ()] maps the whole file into [task]'s
    space, returning [(address, size)].  [copy:true] maps it
    copy-on-write (private). *)

val read_through_object :
  Mach_core.Vm_sys.t -> ?stream:int * int -> Simfs.t -> name:string ->
  offset:int -> len:int -> Bytes.t
(** [read_through_object sys fs ~name ~offset ~len] performs a UNIX
    [read()] the Mach way: through the file's memory object and the
    resident page cache — pages already resident cost only the copy,
    missing pages are filled from the pager.  This is the path behind the
    Table 7-1 file-reading rows.  [stream] keys the read-ahead stream
    slot (see {!Mach_core.Vm_cluster.pagein}): concurrent readers of one
    file pass distinct keys to ramp independent windows; omitted, all
    callers share the anonymous slot, which is the old single-cursor
    behavior. *)
