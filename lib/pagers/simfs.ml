type inode = { mutable blocks : int array; mutable size : int }

type t = {
  id : int;
  disk : Simdisk.t;
  table : (string, inode) Hashtbl.t;
  mutable next_block : int;
}

let next_fs_id = ref 0

let create machine ?(block_size = 4096) ?(queues = 1) () =
  incr next_fs_id;
  { id = !next_fs_id;
    disk = Simdisk.create ~queues machine ~block_size;
    table = Hashtbl.create 64;
    next_block = 0 }

let fs_id t = t.id

let disk t = t.disk

let bs t = Simdisk.block_size t.disk

let alloc_block t =
  let b = t.next_block in
  t.next_block <- b + 1;
  b

let blocks_for t size = (size + bs t - 1) / bs t

(* Grow (or create) the inode to hold [size] bytes. *)
let ensure_inode t ~name ~size =
  let ino =
    match Hashtbl.find_opt t.table name with
    | Some ino -> ino
    | None ->
      let ino = { blocks = [||]; size = 0 } in
      Hashtbl.add t.table name ino;
      ino
  in
  let needed = blocks_for t size in
  if Array.length ino.blocks < needed then begin
    let extra =
      Array.init (needed - Array.length ino.blocks) (fun _ -> alloc_block t)
    in
    ino.blocks <- Array.append ino.blocks extra
  end;
  if size > ino.size then ino.size <- size;
  ino

let install_file t ~name ~data =
  Hashtbl.remove t.table name;
  let size = Bytes.length data in
  let ino = ensure_inode t ~name ~size in
  ino.size <- size;
  let block_size = bs t in
  Array.iteri
    (fun i b ->
       let off = i * block_size in
       let len = min block_size (size - off) in
       if len > 0 then Simdisk.install t.disk ~block:b (Bytes.sub data off len))
    ino.blocks

let exists t ~name = Hashtbl.mem t.table name

let file_size t ~name =
  match Hashtbl.find_opt t.table name with
  | Some ino -> ino.size
  | None -> raise Not_found

let read t ~cpu ~name ~offset ~len =
  match Hashtbl.find_opt t.table name with
  | None -> raise Not_found
  | Some ino ->
    if offset >= ino.size || len <= 0 then Bytes.create 0
    else begin
      let len = min len (ino.size - offset) in
      let buf = Bytes.create len in
      let block_size = bs t in
      (* Block-aligned whole-block spans are read as one disk request per
         physically consecutive run (inode blocks are usually allocated
         sequentially), so a clustered pager request pays the seek once.
         Single-block callers take the [run = 1] path at identical cost. *)
      let rec loop pos =
        if pos < len then begin
          let abs = offset + pos in
          let bidx = abs / block_size in
          let boff = abs mod block_size in
          if boff = 0 && len - pos >= block_size then begin
            let max_count = (len - pos) / block_size in
            let count = ref 1 in
            while
              !count < max_count
              && ino.blocks.(bidx + !count) = ino.blocks.(bidx) + !count
            do
              incr count
            done;
            let data =
              Simdisk.read_run t.disk ~cpu ~first:ino.blocks.(bidx)
                ~count:!count
            in
            Bytes.blit data 0 buf pos (!count * block_size);
            loop (pos + (!count * block_size))
          end
          else begin
            let chunk = min (block_size - boff) (len - pos) in
            let data = Simdisk.read t.disk ~cpu ~block:ino.blocks.(bidx) in
            Bytes.blit data boff buf pos chunk;
            loop (pos + chunk)
          end
        end
      in
      loop 0;
      buf
    end

let write t ~cpu ~name ~offset ~data =
  let len = Bytes.length data in
  let ino = ensure_inode t ~name ~size:(offset + len) in
  let block_size = bs t in
  (* Whole-block aligned spans over physically consecutive blocks go out
     as one clustered disk write; partial blocks read-modify-write
     individually, exactly as before. *)
  let rec loop pos =
    if pos < len then begin
      let abs = offset + pos in
      let bidx = abs / block_size in
      let boff = abs mod block_size in
      if boff = 0 && len - pos >= block_size then begin
        let max_count = (len - pos) / block_size in
        let count = ref 1 in
        while
          !count < max_count
          && ino.blocks.(bidx + !count) = ino.blocks.(bidx) + !count
        do
          incr count
        done;
        Simdisk.write_run t.disk ~cpu ~first:ino.blocks.(bidx)
          (Bytes.sub data pos (!count * block_size));
        loop (pos + (!count * block_size))
      end
      else begin
        let chunk = min (block_size - boff) (len - pos) in
        let block = ino.blocks.(bidx) in
        let current = Simdisk.read t.disk ~cpu ~block in
        Bytes.blit data pos current boff chunk;
        Simdisk.write t.disk ~cpu ~block current;
        loop (pos + chunk)
      end
    end
  in
  loop 0

(* Asynchronous variants: same run decomposition as [read]/[write], but
   each run is submitted to the device queue instead of waited on, and
   the aggregate (latest completion stamp, summed service time) is
   returned so the caller can block out the residue later.  With the
   async model off the submits charge synchronously, making these
   cost-identical to [read]/[write]. *)
let submit_read t ~cpu ~name ~offset ~len =
  match Hashtbl.find_opt t.table name with
  | None -> raise Not_found
  | Some ino ->
    if offset >= ino.size || len <= 0 then (Bytes.create 0, 0, 0)
    else begin
      let len = min len (ino.size - offset) in
      let buf = Bytes.create len in
      let block_size = bs t in
      let completion = ref 0 and service = ref 0 in
      let submit first count =
        let h = Simdisk.submit_read_run t.disk ~cpu ~first ~count in
        completion := max !completion (Simdisk.handle_completion h);
        service := !service + Simdisk.handle_service h;
        Simdisk.handle_data h
      in
      let rec loop pos =
        if pos < len then begin
          let abs = offset + pos in
          let bidx = abs / block_size in
          let boff = abs mod block_size in
          if boff = 0 && len - pos >= block_size then begin
            let max_count = (len - pos) / block_size in
            let count = ref 1 in
            while
              !count < max_count
              && ino.blocks.(bidx + !count) = ino.blocks.(bidx) + !count
            do
              incr count
            done;
            let data = submit ino.blocks.(bidx) !count in
            Bytes.blit data 0 buf pos (!count * block_size);
            loop (pos + (!count * block_size))
          end
          else begin
            let chunk = min (block_size - boff) (len - pos) in
            let data = submit ino.blocks.(bidx) 1 in
            Bytes.blit data boff buf pos chunk;
            loop (pos + chunk)
          end
        end
      in
      loop 0;
      (buf, !completion, !service)
    end

let submit_write t ~cpu ~name ~offset ~data =
  let len = Bytes.length data in
  let ino = ensure_inode t ~name ~size:(offset + len) in
  let block_size = bs t in
  let completion = ref 0 and service = ref 0 in
  let note h =
    completion := max !completion (Simdisk.handle_completion h);
    service := !service + Simdisk.handle_service h
  in
  let rec loop pos =
    if pos < len then begin
      let abs = offset + pos in
      let bidx = abs / block_size in
      let boff = abs mod block_size in
      if boff = 0 && len - pos >= block_size then begin
        let max_count = (len - pos) / block_size in
        let count = ref 1 in
        while
          !count < max_count
          && ino.blocks.(bidx + !count) = ino.blocks.(bidx) + !count
        do
          incr count
        done;
        note
          (Simdisk.submit_write_run t.disk ~cpu ~first:ino.blocks.(bidx)
             (Bytes.sub data pos (!count * block_size)));
        loop (pos + (!count * block_size))
      end
      else begin
        let chunk = min (block_size - boff) (len - pos) in
        let block = ino.blocks.(bidx) in
        let rh = Simdisk.submit_read_run t.disk ~cpu ~first:block ~count:1 in
        note rh;
        let current = Simdisk.handle_data rh in
        Bytes.blit data pos current boff chunk;
        note (Simdisk.submit_write_run t.disk ~cpu ~first:block current);
        loop (pos + chunk)
      end
    end
  in
  loop 0;
  (!completion, !service)

let delete t ~name = Hashtbl.remove t.table name

let files t = Hashtbl.fold (fun name _ acc -> name :: acc) t.table []
