(** Fixed-capacity ring buffer.

    The trace sink keeps the most recent [capacity] records; older ones
    are silently overwritten (and counted) rather than growing without
    bound.  A capacity of zero makes every push a no-op, which is what
    the null sink uses. *)

type 'a t

val create : capacity:int -> 'a t
(** [create ~capacity] holds at most [capacity] elements. *)

val capacity : 'a t -> int

val push : 'a t -> 'a -> unit
(** [push t x] appends [x], evicting the oldest element when full. *)

val length : 'a t -> int
(** Elements currently held. *)

val pushed : 'a t -> int
(** Total elements ever pushed, including those since overwritten. *)

val dropped : 'a t -> int
(** [pushed - length]: elements lost to wraparound. *)

val iter : ('a -> unit) -> 'a t -> unit
(** [iter f t] applies [f] oldest-first over the retained elements. *)

val to_list : 'a t -> 'a list
(** Retained elements, oldest first. *)

val clear : 'a t -> unit
(** Forget everything, including the pushed count. *)
