open Mach_util

let flush_kind_name = function
  | Obs.Fl_page -> "page"
  | Obs.Fl_range -> "range"
  | Obs.Fl_asid -> "asid"
  | Obs.Fl_all -> "all"

(* Payload fields shown in the trace viewer's args pane. *)
let args_of_event (ev : Obs.event) =
  match ev with
  | Obs.Fault_begin { va; write } ->
    [ ("va", Jout.Int va); ("write", Jout.Bool write) ]
  | Obs.Fault_end { va; resolution; cycles } ->
    [ ("va", Jout.Int va);
      ("resolution", Jout.Str (Obs.fault_resolution_name resolution));
      ("cycles", Jout.Int cycles) ]
  | Obs.Pagein { offset; bytes; cycles } ->
    [ ("offset", Jout.Int offset); ("bytes", Jout.Int bytes);
      ("cycles", Jout.Int cycles) ]
  | Obs.Pageout { offset; bytes; inactive_depth } ->
    [ ("offset", Jout.Int offset); ("bytes", Jout.Int bytes);
      ("inactive_depth", Jout.Int inactive_depth) ]
  | Obs.Shootdown { initiator; targets; urgent; cycles } ->
    [ ("initiator", Jout.Int initiator); ("targets", Jout.Int targets);
      ("urgent", Jout.Bool urgent); ("cycles", Jout.Int cycles) ]
  | Obs.Tlb_flush { kind; deferred } ->
    [ ("kind", Jout.Str (flush_kind_name kind));
      ("deferred", Jout.Bool deferred) ]
  | Obs.Pmap_enter { asid; va; pfn } ->
    [ ("asid", Jout.Int asid); ("va", Jout.Int va); ("pfn", Jout.Int pfn) ]
  | Obs.Pmap_remove { asid; start_va; end_va } ->
    [ ("asid", Jout.Int asid); ("start_va", Jout.Int start_va);
      ("end_va", Jout.Int end_va) ]
  | Obs.Pmap_protect { asid; start_va; end_va } ->
    [ ("asid", Jout.Int asid); ("start_va", Jout.Int start_va);
      ("end_va", Jout.Int end_va) ]
  | Obs.Object_shadow { depth } -> [ ("depth", Jout.Int depth) ]
  | Obs.Task_switch { task } -> [ ("task", Jout.Str task) ]
  | Obs.Disk_io { write; bytes; cycles } ->
    [ ("write", Jout.Bool write); ("bytes", Jout.Int bytes);
      ("cycles", Jout.Int cycles) ]
  | Obs.Shootdown_batch { initiator; targets; requests; span_pages; urgent;
                          cycles } ->
    [ ("initiator", Jout.Int initiator); ("targets", Jout.Int targets);
      ("requests", Jout.Int requests); ("span_pages", Jout.Int span_pages);
      ("urgent", Jout.Bool urgent); ("cycles", Jout.Int cycles) ]
  | Obs.Pager_retry { offset; attempt; backoff } ->
    [ ("offset", Jout.Int offset); ("attempt", Jout.Int attempt);
      ("backoff", Jout.Int backoff) ]
  | Obs.Pager_timeout { offset; attempts } ->
    [ ("offset", Jout.Int offset); ("attempts", Jout.Int attempts) ]
  | Obs.Pager_dead { pager; rescued } ->
    [ ("pager", Jout.Str pager); ("rescued", Jout.Int rescued) ]
  | Obs.Io_error { write; bytes } ->
    [ ("write", Jout.Bool write); ("bytes", Jout.Int bytes) ]
  | Obs.Prefetch { offset; pages; window } ->
    [ ("offset", Jout.Int offset); ("pages", Jout.Int pages);
      ("window", Jout.Int window) ]
  | Obs.Cluster_pageout { offset; pages } ->
    [ ("offset", Jout.Int offset); ("pages", Jout.Int pages) ]
  | Obs.Disk_submit { write; bytes; depth; latency } ->
    [ ("write", Jout.Bool write); ("bytes", Jout.Int bytes);
      ("depth", Jout.Int depth); ("latency", Jout.Int latency) ]
  | Obs.Disk_wait { cycles; overlap } ->
    [ ("cycles", Jout.Int cycles); ("overlap", Jout.Int overlap) ]
  | Obs.Lock_stall { obj; cycles } ->
    [ ("obj", Jout.Int obj); ("cycles", Jout.Int cycles) ]
  | Obs.Burst_enter { va; pages } ->
    [ ("va", Jout.Int va); ("pages", Jout.Int pages) ]
  | Obs.Alloc_wait { free; wanted; cycles } ->
    [ ("free", Jout.Int free); ("wanted", Jout.Int wanted);
      ("cycles", Jout.Int cycles) ]
  | Obs.Swap_full { used; capacity } ->
    [ ("used", Jout.Int used); ("capacity", Jout.Int capacity) ]
  | Obs.Oom_kill { task; resident } ->
    [ ("task", Jout.Str task); ("resident", Jout.Int resident) ]
  | Obs.Page_steal { victim; pfn } ->
    [ ("victim", Jout.Int victim); ("pfn", Jout.Int pfn) ]
  | Obs.Stream_reset { obj; offset } ->
    [ ("obj", Jout.Int obj); ("offset", Jout.Int offset) ]
  | Obs.Free_behind { obj; offset; pages } ->
    [ ("obj", Jout.Int obj); ("offset", Jout.Int offset);
      ("pages", Jout.Int pages) ]

let chrome_trace ?(cycles_per_us = 1.0) tr =
  let ts_of cycles = Jout.Float (float_of_int cycles /. cycles_per_us) in
  let events = ref [] in
  let cpus = Hashtbl.create 8 in
  let push e = events := e :: !events in
  Ring.iter
    (fun { Obs.ts; cpu; span; ev } ->
       Hashtbl.replace cpus cpu ();
       let args =
         let a = args_of_event ev in
         if span > 0 then ("span", Jout.Int span) :: a else a
       in
       let base ?(at = ts) name ph =
         [ ("name", Jout.Str name); ("cat", Jout.Str "vm");
           ("ph", Jout.Str ph); ("ts", ts_of at); ("pid", Jout.Int 0);
           ("tid", Jout.Int cpu); ("args", Jout.Obj args) ]
       in
       (* Flow arrows stitch a fault span's cycle-bearing children to
          the enclosing fault slice, so the viewer draws the causal
          chain (span id = flow id). *)
       let flow ph =
         if span > 0 then
           push
             (Jout.Obj
                ([ ("name", Jout.Str "fault-flow"); ("cat", Jout.Str "vm");
                   ("ph", Jout.Str ph); ("id", Jout.Int span);
                   ("ts", ts_of ts); ("pid", Jout.Int 0);
                   ("tid", Jout.Int cpu) ]
                 @ (if ph = "f" then [ ("bp", Jout.Str "e") ] else [])))
       in
       (* A cycle-bearing event is emitted as a complete slice covering
          the work it accounts, which nests inside the open fault
          slice on the same thread. *)
       let complete name cycles =
         flow "t";
         push (Jout.Obj (base ~at:(ts - cycles) name "X"
                         @ [ ("dur", ts_of cycles) ]))
       in
       match ev with
       | Obs.Fault_begin _ -> push (Jout.Obj (base "fault" "B")); flow "s"
       | Obs.Fault_end _ -> flow "f"; push (Jout.Obj (base "fault" "E"))
       | Obs.Pagein { cycles; _ } -> complete "pagein" cycles
       | Obs.Disk_io { cycles; _ } -> complete "disk_io" cycles
       | Obs.Disk_wait { cycles; _ } -> complete "disk_wait" cycles
       | Obs.Shootdown { cycles; _ } -> complete "shootdown" cycles
       | Obs.Shootdown_batch { cycles; _ } ->
         complete "shootdown_batch" cycles
       | _ ->
         (* Instant event, thread-scoped. *)
         push (Jout.Obj (base (Obs.kind_name ev) "i"
                         @ [ ("s", Jout.Str "t") ])))
    (Obs.ring tr);
  let metadata =
    Jout.Obj
      [ ("name", Jout.Str "process_name"); ("ph", Jout.Str "M");
        ("pid", Jout.Int 0); ("tid", Jout.Int 0);
        ("args", Jout.Obj [ ("name", Jout.Str "machsim") ]) ]
    :: Hashtbl.fold
         (fun cpu () acc ->
            Jout.Obj
              [ ("name", Jout.Str "thread_name"); ("ph", Jout.Str "M");
                ("pid", Jout.Int 0); ("tid", Jout.Int cpu);
                ("args",
                 Jout.Obj
                   [ ("name", Jout.Str (Printf.sprintf "cpu%d" cpu)) ]) ]
            :: acc)
         cpus []
  in
  Jout.Obj
    [ ("traceEvents", Jout.Arr (metadata @ List.rev !events));
      ("displayTimeUnit", Jout.Str "ms");
      ("otherData",
       Jout.Obj
         [ ("events_seen", Jout.Int (Obs.events_seen tr));
           ("events_dropped", Jout.Int (Ring.dropped (Obs.ring tr))) ]) ]

let write_chrome_trace ~path ?cycles_per_us tr =
  Jout.write_file path (chrome_trace ?cycles_per_us tr)

let hist_json h =
  let buckets = ref [] in
  Hist.iter_nonempty h (fun ~lo ~hi ~count ->
      buckets :=
        Jout.Obj
          [ ("lo", Jout.Int lo); ("hi", Jout.Int hi);
            ("count", Jout.Int count) ]
        :: !buckets);
  Jout.Obj
    [ ("count", Jout.Int (Hist.count h));
      ("sum", Jout.Int (Hist.sum h));
      ("mean", Jout.Float (Hist.mean h));
      ("min", Jout.Int (Hist.min_value h));
      ("max", Jout.Int (Hist.max_value h));
      ("p50", Jout.Int (Hist.p50 h));
      ("p95", Jout.Int (Hist.p95 h));
      ("p99", Jout.Int (Hist.p99 h));
      ("buckets", Jout.Arr (List.rev !buckets)) ]

let stats_json ?(extra = []) tr =
  let kind_counts =
    List.init Obs.kind_count (fun k ->
        (Obs.kind_name_of_index k, Jout.Int (Obs.count_index tr k)))
  in
  let fault_hists =
    List.map
      (fun r ->
         (Obs.fault_resolution_name r, hist_json (Obs.fault_latency tr r)))
      Obs.fault_resolutions
  in
  let fault_total =
    List.fold_left
      (fun acc r -> acc + Hist.count (Obs.fault_latency tr r))
      0 Obs.fault_resolutions
  in
  Jout.Obj
    ([ ("events", Jout.Obj kind_counts);
       ("events_seen", Jout.Int (Obs.events_seen tr));
       ("events_retained", Jout.Int (Ring.length (Obs.ring tr)));
       ("events_dropped", Jout.Int (Ring.dropped (Obs.ring tr)));
       ("open_faults", Jout.Int (Obs.open_faults tr));
       ("faults_total", Jout.Int fault_total);
       ("fault_latency", Jout.Obj fault_hists);
       ("shootdown_latency", hist_json (Obs.shootdown_latency tr));
       ("pagein_latency", hist_json (Obs.pagein_latency tr));
       ("disk_latency", hist_json (Obs.disk_latency tr));
       ("pageout_queue_depth", hist_json (Obs.pageout_depth tr));
       ("pagein_cluster_pages", hist_json (Obs.pagein_cluster tr));
       ("pageout_cluster_pages", hist_json (Obs.pageout_cluster tr));
       ("disk_queue_depth", hist_json (Obs.disk_queue_depth tr));
       ("disk_completion_latency", hist_json (Obs.disk_completion tr));
       ("disk_wait_residue", hist_json (Obs.disk_wait tr));
       ("lock_stall_cycles", hist_json (Obs.lock_stall tr));
       ("burst_pages", hist_json (Obs.burst_pages tr)) ]
     @ extra)

let write_stats ~path ?extra tr =
  Jout.write_file path (stats_json ?extra tr)

let summary_tables tr =
  let counts =
    Tablefmt.create ~title:"Trace: events by kind"
      ~columns:[ "event"; "count" ]
  in
  for k = 0 to Obs.kind_count - 1 do
    let n = Obs.count_index tr k in
    if n > 0 then
      Tablefmt.row counts [ Obs.kind_name_of_index k; string_of_int n ]
  done;
  let lat =
    Tablefmt.create
      ~title:"Trace: latency summaries (simulated cycles)"
      ~columns:[ "metric"; "count"; "mean"; "p50"; "p95"; "p99"; "max" ]
  in
  let hist_row name h =
    if Hist.count h > 0 then
      Tablefmt.row lat
        [ name; string_of_int (Hist.count h);
          Printf.sprintf "%.0f" (Hist.mean h);
          string_of_int (Hist.p50 h);
          string_of_int (Hist.p95 h);
          string_of_int (Hist.p99 h);
          string_of_int (Hist.max_value h) ]
  in
  List.iter
    (fun r ->
       hist_row
         ("fault: " ^ Obs.fault_resolution_name r)
         (Obs.fault_latency tr r))
    Obs.fault_resolutions;
  hist_row "shootdown" (Obs.shootdown_latency tr);
  hist_row "pagein" (Obs.pagein_latency tr);
  hist_row "disk io" (Obs.disk_latency tr);
  hist_row "pageout queue depth" (Obs.pageout_depth tr);
  hist_row "pagein cluster pages" (Obs.pagein_cluster tr);
  hist_row "pageout cluster pages" (Obs.pageout_cluster tr);
  hist_row "disk queue depth" (Obs.disk_queue_depth tr);
  hist_row "disk completion latency" (Obs.disk_completion tr);
  hist_row "disk wait residue" (Obs.disk_wait tr);
  hist_row "lock stall cycles" (Obs.lock_stall tr);
  hist_row "burst pages" (Obs.burst_pages tr);
  [ counts; lat ]

let print_summary tr = List.iter Tablefmt.print (summary_tables tr)

(* ------------------------------------------------------------------ *)
(* Cycle attribution: the profiler's JSON and table renderings.  Both
   take [clocks], the per-CPU cycle counters at export time, so every
   view can state whether attribution conserved the clock (it does
   exactly when the tracer was installed before the machine ran). *)

let attr_cpu_range ~clocks tr = max (Obs.attr_cpus tr) (Array.length clocks)

let clock_at clocks i = if i < Array.length clocks then clocks.(i) else 0

let attribution_conserved ~clocks tr =
  let n = attr_cpu_range ~clocks tr in
  let rec go i =
    i >= n
    || (Obs.attr_cpu_total tr ~cpu:i = clock_at clocks i && go (i + 1))
  in
  go 0

let span_json (s : Obs.span_info) =
  Jout.Obj
    [ ("id", Jout.Int s.Obs.sp_id); ("cpu", Jout.Int s.Obs.sp_cpu);
      ("va", Jout.Int s.Obs.sp_va);
      ("resolution", Jout.Str (Obs.fault_resolution_name s.Obs.sp_resolution));
      ("cycles", Jout.Int s.Obs.sp_cycles) ]

let attribution_json ~clocks tr =
  let n = attr_cpu_range ~clocks tr in
  let cat_fields total_of =
    List.map (fun c -> (Obs.category_name c, Jout.Int (total_of c)))
      Obs.categories
  in
  let per_cpu =
    List.init n (fun i ->
        let attributed = Obs.attr_cpu_total tr ~cpu:i in
        Jout.Obj
          [ ("cpu", Jout.Int i);
            ("clock", Jout.Int (clock_at clocks i));
            ("attributed", Jout.Int attributed);
            ("conserved", Jout.Bool (attributed = clock_at clocks i));
            ("categories",
             Jout.Obj (cat_fields (fun c -> Obs.attr_total tr ~cpu:i c))) ])
  in
  let grand =
    List.fold_left (fun a c -> a + Obs.attr_grand_total tr c) 0 Obs.categories
  in
  let clock_total = Array.fold_left ( + ) 0 clocks in
  Jout.Obj
    [ ("total", Jout.Int grand);
      ("clock_total", Jout.Int clock_total);
      ("conserved", Jout.Bool (attribution_conserved ~clocks tr));
      ("categories",
       Jout.Obj (cat_fields (fun c -> Obs.attr_grand_total tr c)));
      ("per_cpu", Jout.Arr per_cpu);
      ("top_spans", Jout.Arr (List.map span_json (Obs.top_spans tr))) ]

let profile_tables ~clocks tr =
  let n = attr_cpu_range ~clocks tr in
  let clock_total = Array.fold_left ( + ) 0 clocks in
  let share v =
    if clock_total = 0 then "-"
    else Printf.sprintf "%.1f%%" (100. *. float_of_int v
                                  /. float_of_int clock_total)
  in
  let cpu_cols = List.init n (Printf.sprintf "cpu%d") in
  let attr =
    Tablefmt.create ~title:"Profile: cycle attribution by subsystem"
      ~columns:(("category" :: cpu_cols) @ [ "total"; "share" ])
  in
  let by_weight =
    List.sort
      (fun a b ->
         compare (Obs.attr_grand_total tr b) (Obs.attr_grand_total tr a))
      Obs.categories
  in
  List.iter
    (fun c ->
       let tot = Obs.attr_grand_total tr c in
       if tot > 0 then
         Tablefmt.row attr
           ((Obs.category_name c
             :: List.init n (fun i ->
                    string_of_int (Obs.attr_total tr ~cpu:i c)))
            @ [ string_of_int tot; share tot ]))
    by_weight;
  Tablefmt.separator attr;
  let attributed_total =
    List.fold_left (fun a c -> a + Obs.attr_grand_total tr c) 0 Obs.categories
  in
  Tablefmt.row attr
    (("attributed"
      :: List.init n (fun i -> string_of_int (Obs.attr_cpu_total tr ~cpu:i)))
     @ [ string_of_int attributed_total; share attributed_total ]);
  Tablefmt.row attr
    (("cpu clock"
      :: List.init n (fun i -> string_of_int (clock_at clocks i)))
     @ [ string_of_int clock_total;
         (if clock_total = 0 then "-" else "100.0%") ]);
  let lat =
    Tablefmt.create ~title:"Profile: fault service time (cycles)"
      ~columns:[ "resolution"; "count"; "mean"; "p50"; "p95"; "p99"; "max" ]
  in
  List.iter
    (fun r ->
       let h = Obs.fault_latency tr r in
       if Hist.count h > 0 then
         Tablefmt.row lat
           [ Obs.fault_resolution_name r; string_of_int (Hist.count h);
             Printf.sprintf "%.0f" (Hist.mean h);
             string_of_int (Hist.p50 h); string_of_int (Hist.p95 h);
             string_of_int (Hist.p99 h);
             string_of_int (Hist.max_value h) ])
    Obs.fault_resolutions;
  let spans =
    Tablefmt.create ~title:"Profile: slowest fault spans"
      ~columns:[ "span"; "cpu"; "va"; "resolution"; "cycles" ]
  in
  List.iter
    (fun (s : Obs.span_info) ->
       Tablefmt.row spans
         [ string_of_int s.Obs.sp_id; string_of_int s.Obs.sp_cpu;
           Printf.sprintf "0x%x" s.Obs.sp_va;
           Obs.fault_resolution_name s.Obs.sp_resolution;
           string_of_int s.Obs.sp_cycles ])
    (Obs.top_spans tr);
  [ attr; lat; spans ]
