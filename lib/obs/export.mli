(** Exporters: Chrome/Perfetto trace JSON, stats JSON, human tables.

    The Chrome export follows the [trace_event] format, so a produced
    file loads directly in Perfetto (https://ui.perfetto.dev) or
    chrome://tracing: a top-level [traceEvents] array whose elements
    carry [name]/[ph]/[ts]/[pid]/[tid].  Fault service is emitted as
    B/E duration pairs per CPU track; everything else as instant
    events. *)

val chrome_trace : ?cycles_per_us:float -> Obs.t -> Jout.t
(** [chrome_trace tr] renders the retained ring as a Chrome trace
    document.  [cycles_per_us] converts simulated cycles to the format's
    microsecond timestamps (default 1.0: one cycle shown as one us). *)

val write_chrome_trace : path:string -> ?cycles_per_us:float -> Obs.t -> unit

val hist_json : Hist.t -> Jout.t
(** count/sum/mean/min/max, p50/p90/p99 and the non-empty buckets. *)

val stats_json : ?extra:(string * Jout.t) list -> Obs.t -> Jout.t
(** Machine-readable summary: per-kind event counts, drop accounting,
    fault-latency histograms split by resolution kind (their counts sum
    to the recorded [fault_end] total), shootdown/pagein/disk latency
    and pageout queue-depth histograms.  [extra] fields are appended at
    the top level, for callers folding in [Machine.stats] etc. *)

val write_stats :
  path:string -> ?extra:(string * Jout.t) list -> Obs.t -> unit

val summary_tables : Obs.t -> Mach_util.Tablefmt.t list
(** Human-readable rendering of the same aggregates: an event-count
    table and a latency-percentile table. *)

val print_summary : Obs.t -> unit

(** {1 Cycle attribution}

    All three take [clocks], the per-CPU cycle counters at export time
    ([Machine.cycles] per CPU), so every view can check the conservation
    invariant: with the tracer installed before the machine ran, each
    CPU's category totals sum exactly to its clock. *)

val attribution_conserved : clocks:int array -> Obs.t -> bool

val attribution_json : clocks:int array -> Obs.t -> Jout.t
(** Aggregate and per-CPU category totals, conservation flags, and the
    slowest fault spans; joined into the stats JSON under
    ["attribution"]. *)

val profile_tables : clocks:int array -> Obs.t -> Mach_util.Tablefmt.t list
(** The [machsim --profile] report: top-down attribution (per CPU and
    aggregate with percent-of-total), fault service-time percentiles,
    and the top-{!Obs.top_span_cap} fault spans by service time. *)
