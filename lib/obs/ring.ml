type 'a t = {
  data : 'a option array;
  mutable next : int; (* total pushes since creation/clear *)
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Ring.create: negative capacity";
  { data = Array.make capacity None; next = 0 }

let capacity t = Array.length t.data

let push t x =
  let cap = Array.length t.data in
  if cap > 0 then t.data.(t.next mod cap) <- Some x;
  t.next <- t.next + 1

let length t = min t.next (Array.length t.data)

let pushed t = t.next

let dropped t = t.next - length t

let iter f t =
  let cap = Array.length t.data in
  let n = length t in
  let first = t.next - n in
  for i = first to t.next - 1 do
    match t.data.(i mod cap) with
    | Some x -> f x
    | None -> assert false
  done

let to_list t =
  let acc = ref [] in
  iter (fun x -> acc := x :: !acc) t;
  List.rev !acc

let clear t =
  Array.fill t.data 0 (Array.length t.data) None;
  t.next <- 0
