(** Kernel-wide VM tracing: typed events, a ring-buffer sink, and online
    latency aggregates.

    Every interesting transition in the simulator — fault service,
    pageout, TLB shootdown, pmap mutation, disk transfer, task switch —
    can emit a typed {!event} timestamped in simulated cycles with the
    CPU it happened on.  Events land in a fixed-capacity {!Ring} (old
    events are dropped, never reallocated) and feed per-kind counters
    plus log2 {!Hist} latency histograms, so summaries survive even
    when the ring has wrapped.

    The whole layer is off by default: machines start with {!null}, a
    permanently disabled sink, and every instrumentation site is
    written as [if Obs.enabled tr then Obs.record tr ...] so the
    disabled cost is a single load-and-branch with no allocation. *)

type fault_resolution =
  | Fast_reload  (** re-entered a mapping the pmap had dropped *)
  | Zero_fill    (** no backing data anywhere: fresh zero page *)
  | Cow_copy     (** write fault copied a page up a shadow chain *)
  | Pagein       (** a pager supplied the data (disk, swap, network) *)
  | Fault_error  (** the fault was rejected (bad address/protection) *)
  | Memory_error (** the backing pager failed for good: the retry budget
                     was exhausted (or the object is degraded with the
                     error policy) and the task sees [KERN_MEMORY_ERROR] *)

val fault_resolutions : fault_resolution list
val fault_resolution_name : fault_resolution -> string

type flush_kind = Fl_page | Fl_range | Fl_asid | Fl_all

type event =
  | Fault_begin of { va : int; write : bool }
  | Fault_end of { va : int; resolution : fault_resolution; cycles : int }
      (** [cycles] is the fault service time: initiating CPU clock at
          [Fault_end] minus at [Fault_begin]. *)
  | Pagein of { offset : int; bytes : int; cycles : int }
      (** A pager satisfied a fault-time data request. *)
  | Pageout of { offset : int; bytes : int; inactive_depth : int }
      (** The daemon cleaned a dirty page; [inactive_depth] is the
          inactive-queue length at that moment (queue-depth gauge). *)
  | Shootdown of { initiator : int; targets : int; urgent : bool;
                   cycles : int }
      (** [cycles] is what the shootdown cost the initiating CPU. *)
  | Tlb_flush of { kind : flush_kind; deferred : bool }
  | Pmap_enter of { asid : int; va : int; pfn : int }
  | Pmap_remove of { asid : int; start_va : int; end_va : int }
  | Pmap_protect of { asid : int; start_va : int; end_va : int }
  | Object_shadow of { depth : int }
      (** A shadow object was interposed; [depth] is the new chain
          length. *)
  | Task_switch of { task : string }
  | Disk_io of { write : bool; bytes : int; cycles : int }
  | Shootdown_batch of { initiator : int; targets : int; requests : int;
                         span_pages : int; urgent : bool; cycles : int }
      (** One batched TLB-consistency exchange: [requests] flush requests
          delivered with a single IPI round; [span_pages] is the total
          number of pages the coalesced page/range requests cover. *)
  | Pager_retry of { offset : int; attempt : int; backoff : int }
      (** A pager request or write failed transiently; the kernel will
          retry after charging [backoff] cycles ([attempt] is 1-based). *)
  | Pager_timeout of { offset : int; attempts : int }
      (** A pager (or the network under it) never replied within the
          deadline; [attempts] RPC attempts were made. *)
  | Pager_dead of { pager : string; rescued : int }
      (** A pager crossed the consecutive-failure threshold and was
          declared dead; [rescued] dirty resident pages were written to
          the rescue (default) pager so no data is lost. *)
  | Io_error of { write : bool; bytes : int }
      (** A simulated disk transfer failed. *)
  | Prefetch of { offset : int; pages : int; window : int }
      (** Read-ahead brought in [pages] pages beyond the demand page at
          the cluster starting [offset]; [window] is the adaptive window
          the planner used.  Feeds the pagein cluster-size histogram
          (demand page included, so a recorded cluster is [pages + 1]). *)
  | Cluster_pageout of { offset : int; pages : int }
      (** The pageout path coalesced [pages] contiguous dirty pages into
          one pager write starting at [offset]. *)
  | Disk_submit of { write : bool; bytes : int; depth : int; latency : int }
      (** An async disk request was queued: [depth] requests are now in
          flight on its queue (this one included) and [latency] is the
          submit-to-completion time — service plus any queueing delay. *)
  | Disk_wait of { cycles : int; overlap : int }
      (** A CPU blocked on an async disk completion, charging [cycles]
          of residue; [overlap] is the device time it had already hidden
          behind computation ([service - residue], counted once per
          request). *)
  | Lock_stall of { obj : int; cycles : int }
      (** A CPU contended on memory object [obj]'s simulated
          reader/writer lock: [cycles] were charged waiting out the
          holder's critical section.  Uncontended acquisitions emit
          nothing (and cost nothing). *)
  | Burst_enter of { va : int; pages : int }
      (** A resident fault burst-mapped [pages] consecutive resident
          neighbours alongside the demand page at [va], all in one
          pmap batch (one shootdown exchange). *)
  | Alloc_wait of { free : int; wanted : int; cycles : int }
      (** An allocation found the free list down to the reserve and
          waited on the pageout daemon (allocation backpressure):
          [cycles] were charged to [Mem_wait], [free] pages were free
          when the wait began, [wanted] is the deficit to the target. *)
  | Swap_full of { used : int; capacity : int }
      (** A pageout write was refused because the swap partition is
          full ([used] of [capacity] bytes committed); the page stayed
          dirty and the system entered the memory-pressure state. *)
  | Oom_kill of { task : string; resident : int }
      (** The out-of-memory policy killed [task] — the largest
          anonymous-resident task — reclaiming its [resident] resident
          pages; the task sees [KERN_MEMORY_ERROR] from then on. *)
  | Page_steal of { victim : int; pfn : int }
      (** The shared free queues were dry, so the allocating CPU stole
          page [pfn] out of CPU [victim]'s per-CPU magazine. *)
  | Stream_reset of { obj : int; offset : int }
      (** A pager miss at [offset] on object [obj] matched no read-ahead
          stream and every slot belonged to a live reader, so the least
          recently used slot was recycled: more concurrent sequential
          streams than [Vm_sys.stream_slots]. *)
  | Free_behind of { obj : int; offset : int; pages : int }
      (** A stream ramped past [Vm_sys.free_behind_min] deactivated
          [pages] clean, unwired pages behind its cursor (the cluster it
          just read starts at [offset]) to the {e head} of the inactive
          queue, so a large streaming read reclaims its own wake instead
          of flushing the working set. *)

val kind_count : int
val kind_index : event -> int
val kind_name_of_index : int -> string
val kind_name : event -> string

type category =
  | User_compute    (** no kernel frame open: the workload itself *)
  | Fault_service   (** inside [vm_fault] (trap overhead included) *)
  | Pmap            (** machine-dependent map updates (enter/remove/protect) *)
  | Shootdown_ipi   (** TLB consistency: IPIs, remote/deferred flushes *)
  | Pager_wait      (** pager request/write paths, excluding device time *)
  | Retry_backoff   (** exponential backoff between pager retries *)
  | Disk_wait       (** disk service time and async completion residue *)
  | Zero_fill       (** zero-filling fresh pages *)
  | Cow_copy        (** copying pages up shadow chains on write faults *)
  | Pageout_daemon  (** page reclaim: scanning, cleaning, clustered writes *)
  | Lock_wait       (** stalls on contended memory-object locks *)
  | Mem_wait        (** allocation backpressure: a CPU waiting on the
                        pageout daemon for a free page *)
(** Where a CPU's cycles go, kernel-wide; see {!attr_push}. *)

val categories : category list
val category_count : int
val category_index : category -> int
val category_name : category -> string

type span_info = {
  sp_id : int;
  sp_cpu : int;
  sp_va : int;
  sp_resolution : fault_resolution;
  sp_cycles : int;
}
(** A completed fault span, kept for the profile report's top-N table. *)

val top_span_cap : int

type record = { ts : int; cpu : int; span : int; ev : event }
(** [span] is the innermost fault span open on [cpu] when the event was
    recorded (the span's own id on [Fault_begin]/[Fault_end]); 0 when
    no fault was in flight. *)

type t
(** A trace sink plus its aggregates. *)

val create : ?capacity:int -> unit -> t
(** [create ()] builds a sink (default ring capacity 65536), initially
    disabled. *)

val null : t
(** The shared, permanently disabled sink every machine starts with.
    Never enable it; install your own with [Machine.set_tracer]. *)

val enabled : t -> bool
(** The one branch instrumentation sites pay when tracing is off. *)

val set_enabled : t -> bool -> unit
(** Raises [Invalid_argument] when asked to enable {!null}. *)

val record : t -> ts:int -> cpu:int -> event -> unit
(** [record t ~ts ~cpu ev] unconditionally appends the event and updates
    counters/histograms.  Call only under an [enabled] check so disabled
    tracing stays free.

    Span bookkeeping happens here: [Fault_begin] opens a span with a
    fresh non-zero id, every event the same CPU records while the span
    is open carries it ([record.span]), [Fault_end] closes it and feeds
    the {!top_spans} table.  Records outside any fault have span 0. *)

(** {1 Cycle attribution}

    Every clock charge the machine makes while tracing is enabled lands
    in exactly one {!category}: the innermost frame of the charged CPU's
    attribution stack ([User_compute] when empty), or a category the
    charge site names explicitly (disk service time, shootdown IPIs).
    Kernel subsystems bracket their work with {!attr_push}/{!attr_pop}
    — nested frames attribute to the innermost — so the per-CPU totals
    partition the CPU's clock: for each CPU, the category totals sum
    exactly to its cycle count (when the tracer was installed before the
    machine ran).  Totals live outside the event ring and survive
    wraparound. *)

val attr_push : t -> cpu:int -> category -> unit
val attr_pop : t -> cpu:int -> unit
(** Bracket a stretch of kernel work on [cpu].  Pops on an empty stack
    are ignored. *)

val attr_charge : t -> cpu:int -> int -> unit
(** Attribute cycles to the innermost open frame ([User_compute] when
    none). *)

val attr_charge_as : t -> cpu:int -> category -> int -> unit
(** Attribute cycles to an explicit category, bypassing the stack. *)

val attr_total : t -> cpu:int -> category -> int

val attr_cpu_total : t -> cpu:int -> int
(** Sum over categories; equals the CPU's clock when the tracer was
    installed before the machine ran. *)

val attr_cpus : t -> int
(** Number of CPU slots with attribution state (max CPU seen + 1). *)

val attr_grand_total : t -> category -> int
(** Sum of a category's totals over every CPU. *)

val attr_depth : t -> cpu:int -> int
(** Open attribution frames on [cpu]; 0 when no kernel work is open. *)

val attr_reset_totals : t -> unit
(** Zero the cycle totals, keeping open frames and span state; paired
    with [Machine.reset_clocks] so totals keep summing to the clock. *)

val top_spans : t -> span_info list
(** Completed fault spans with the largest service time, biggest first
    (at most {!top_span_cap}). *)

val open_span : t -> cpu:int -> int
(** Innermost open fault span id on [cpu]; 0 when none. *)

(** {1 Reading back} *)

val ring : t -> record Ring.t
val events_seen : t -> int
(** Total events recorded (survives ring wraparound). *)

val count : t -> event -> int
(** Events recorded of the same kind as the witness event. *)

val count_index : t -> int -> int

val open_faults : t -> int
(** [Fault_begin]s minus [Fault_end]s; 0 whenever no fault is in
    flight. *)

val fault_latency : t -> fault_resolution -> Hist.t
(** Service-time histogram for faults resolved that way; its [count] is
    the number of such faults. *)

val shootdown_latency : t -> Hist.t
val pagein_latency : t -> Hist.t
val disk_latency : t -> Hist.t
val pageout_depth : t -> Hist.t
(** Inactive-queue depth observed at each pageout. *)

val pagein_cluster : t -> Hist.t
(** Pages per clustered pagein, demand page included (so single-page
    pageins do not feed it — its [count] is the number of clustered
    reads). *)

val pageout_cluster : t -> Hist.t
(** Pages per clustered pageout write. *)

val disk_queue_depth : t -> Hist.t
(** In-flight request count observed at each async disk submit. *)

val disk_completion : t -> Hist.t
(** Submit-to-completion latency of async disk requests, in cycles
    (service time plus queueing delay). *)

val disk_wait : t -> Hist.t
(** Residue charged at each blocking wait on an async completion; zero
    entries are fully overlapped requests. *)

val lock_stall : t -> Hist.t
(** Cycles charged per contended object-lock acquisition; its [count]
    is the number of stalls (uncontended acquisitions feed nothing). *)

val burst_pages : t -> Hist.t
(** Neighbour pages mapped per burst fault (demand page excluded); its
    [count] is the number of faults that burst at all. *)

val mem_wait : t -> Hist.t
(** Cycles charged per allocation backpressure wait; its [count] is the
    number of waits. *)

val reset : t -> unit
(** Drop all recorded events and aggregates; keeps the enabled flag. *)
