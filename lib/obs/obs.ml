type fault_resolution =
  | Fast_reload
  | Zero_fill
  | Cow_copy
  | Pagein
  | Fault_error
  | Memory_error

let fault_resolutions =
  [ Fast_reload; Zero_fill; Cow_copy; Pagein; Fault_error; Memory_error ]

let resolution_index = function
  | Fast_reload -> 0
  | Zero_fill -> 1
  | Cow_copy -> 2
  | Pagein -> 3
  | Fault_error -> 4
  | Memory_error -> 5

let fault_resolution_name = function
  | Fast_reload -> "fast_reload"
  | Zero_fill -> "zero_fill"
  | Cow_copy -> "cow_copy"
  | Pagein -> "pagein"
  | Fault_error -> "error"
  | Memory_error -> "memory_error"

type flush_kind = Fl_page | Fl_range | Fl_asid | Fl_all

type event =
  | Fault_begin of { va : int; write : bool }
  | Fault_end of { va : int; resolution : fault_resolution; cycles : int }
  | Pagein of { offset : int; bytes : int; cycles : int }
  | Pageout of { offset : int; bytes : int; inactive_depth : int }
  | Shootdown of { initiator : int; targets : int; urgent : bool;
                   cycles : int }
  | Tlb_flush of { kind : flush_kind; deferred : bool }
  | Pmap_enter of { asid : int; va : int; pfn : int }
  | Pmap_remove of { asid : int; start_va : int; end_va : int }
  | Pmap_protect of { asid : int; start_va : int; end_va : int }
  | Object_shadow of { depth : int }
  | Task_switch of { task : string }
  | Disk_io of { write : bool; bytes : int; cycles : int }
  | Shootdown_batch of { initiator : int; targets : int; requests : int;
                         span_pages : int; urgent : bool; cycles : int }
  | Pager_retry of { offset : int; attempt : int; backoff : int }
  | Pager_timeout of { offset : int; attempts : int }
  | Pager_dead of { pager : string; rescued : int }
  | Io_error of { write : bool; bytes : int }
  | Prefetch of { offset : int; pages : int; window : int }
      (* read-ahead beyond the demand page: [pages] prefetched at the
         cluster starting [offset], with the adaptive window at [window] *)
  | Cluster_pageout of { offset : int; pages : int }
  | Disk_submit of { write : bool; bytes : int; depth : int; latency : int }
      (* an async disk request was queued: [depth] requests now in
         flight on its queue, [latency] cycles until this one lands *)
  | Disk_wait of { cycles : int; overlap : int }
      (* a CPU blocked on an async completion: [cycles] residue charged,
         [overlap] device cycles it had already hidden behind work *)
  | Lock_stall of { obj : int; cycles : int }
      (* a CPU contended on a memory object's simulated lock: [cycles]
         charged waiting out the holder's critical section *)
  | Burst_enter of { va : int; pages : int }
      (* a resident fault burst-mapped [pages] consecutive resident
         neighbours alongside the demand page at [va] *)
  | Alloc_wait of { free : int; wanted : int; cycles : int }
      (* an allocation found the free list at the reserve and waited
         [cycles] on the pageout daemon; [free] pages were free at entry *)
  | Swap_full of { used : int; capacity : int }
      (* a pageout write was refused because the swap partition is full:
         [used] of [capacity] bytes committed *)
  | Oom_kill of { task : string; resident : int }
      (* the out-of-memory policy killed [task], reclaiming [resident]
         anonymous resident pages *)
  | Page_steal of { victim : int; pfn : int }
      (* the shared free queues were dry, so the allocating CPU stole
         page [pfn] out of CPU [victim]'s per-CPU magazine *)
  | Stream_reset of { obj : int; offset : int }
      (* every read-ahead stream slot of object [obj] was owned by a
         live reader, so the miss at [offset] recycled the least
         recently used one — concurrent streams exceed the slot array *)
  | Free_behind of { obj : int; offset : int; pages : int }
      (* a ramped stream deactivated [pages] clean pages behind its
         cursor (cluster start [offset]) to the head of the inactive
         queue, so the stream reclaims its own wake first *)

let kind_count = 29

let kind_index = function
  | Fault_begin _ -> 0
  | Fault_end _ -> 1
  | Pagein _ -> 2
  | Pageout _ -> 3
  | Shootdown _ -> 4
  | Tlb_flush _ -> 5
  | Pmap_enter _ -> 6
  | Pmap_remove _ -> 7
  | Pmap_protect _ -> 8
  | Object_shadow _ -> 9
  | Task_switch _ -> 10
  | Disk_io _ -> 11
  | Shootdown_batch _ -> 12
  | Pager_retry _ -> 13
  | Pager_timeout _ -> 14
  | Pager_dead _ -> 15
  | Io_error _ -> 16
  | Prefetch _ -> 17
  | Cluster_pageout _ -> 18
  | Disk_submit _ -> 19
  | Disk_wait _ -> 20
  | Lock_stall _ -> 21
  | Burst_enter _ -> 22
  | Alloc_wait _ -> 23
  | Swap_full _ -> 24
  | Oom_kill _ -> 25
  | Page_steal _ -> 26
  | Stream_reset _ -> 27
  | Free_behind _ -> 28

let kind_name_of_index = function
  | 0 -> "fault_begin"
  | 1 -> "fault_end"
  | 2 -> "pagein"
  | 3 -> "pageout"
  | 4 -> "shootdown"
  | 5 -> "tlb_flush"
  | 6 -> "pmap_enter"
  | 7 -> "pmap_remove"
  | 8 -> "pmap_protect"
  | 9 -> "object_shadow"
  | 10 -> "task_switch"
  | 11 -> "disk_io"
  | 12 -> "shootdown_batch"
  | 13 -> "pager_retry"
  | 14 -> "pager_timeout"
  | 15 -> "pager_dead"
  | 16 -> "io_error"
  | 17 -> "prefetch"
  | 18 -> "cluster_pageout"
  | 19 -> "disk_submit"
  | 20 -> "disk_wait"
  | 21 -> "lock_stall"
  | 22 -> "burst_enter"
  | 23 -> "alloc_wait"
  | 24 -> "swap_full"
  | 25 -> "oom_kill"
  | 26 -> "page_steal"
  | 27 -> "stream_reset"
  | 28 -> "free_behind"
  | _ -> invalid_arg "Obs.kind_name_of_index"

let kind_name ev = kind_name_of_index (kind_index ev)

(* --- Cycle attribution ------------------------------------------------ *)

(* Where a CPU's cycles go, kernel-wide.  Every clock charge lands in
   exactly one category: the innermost frame of the CPU's attribution
   stack (or [User_compute] when the stack is empty), unless the charge
   site names a category explicitly (disk service, shootdown IPIs).  The
   per-CPU x per-category totals therefore sum to the CPU's clock. *)
type category =
  | User_compute
  | Fault_service
  | Pmap
  | Shootdown_ipi
  | Pager_wait
  | Retry_backoff
  | Disk_wait
  | Zero_fill
  | Cow_copy
  | Pageout_daemon
  | Lock_wait
  | Mem_wait

let categories =
  [ User_compute; Fault_service; Pmap; Shootdown_ipi; Pager_wait;
    Retry_backoff; Disk_wait; Zero_fill; Cow_copy; Pageout_daemon;
    Lock_wait; Mem_wait ]

let category_count = 12

let category_index = function
  | User_compute -> 0
  | Fault_service -> 1
  | Pmap -> 2
  | Shootdown_ipi -> 3
  | Pager_wait -> 4
  | Retry_backoff -> 5
  | Disk_wait -> 6
  | Zero_fill -> 7
  | Cow_copy -> 8
  | Pageout_daemon -> 9
  | Lock_wait -> 10
  | Mem_wait -> 11

let category_name = function
  | User_compute -> "user_compute"
  | Fault_service -> "fault_service"
  | Pmap -> "pmap"
  | Shootdown_ipi -> "shootdown_ipi"
  | Pager_wait -> "pager_wait"
  | Retry_backoff -> "retry_backoff"
  | Disk_wait -> "disk_wait"
  | Zero_fill -> "zero_fill"
  | Cow_copy -> "cow_copy"
  | Pageout_daemon -> "pageout_daemon"
  | Lock_wait -> "lock_wait"
  | Mem_wait -> "mem_wait"

(* Per-CPU attribution state: a category stack (innermost frame last),
   per-category cycle totals, and the stack of open fault-span ids.
   Totals live outside the ring, so they survive wraparound. *)
type attr = {
  mutable at_stack : int array;  (* category indices *)
  mutable at_depth : int;
  at_totals : int array;         (* cycles per category_index *)
  mutable at_spans : int array;  (* open span ids *)
  mutable at_span_depth : int;
}

let attr_make () =
  { at_stack = Array.make 8 0; at_depth = 0;
    at_totals = Array.make category_count 0;
    at_spans = Array.make 8 0; at_span_depth = 0 }

(* A completed fault span, kept for the profile report's top-N table. *)
type span_info = {
  sp_id : int;
  sp_cpu : int;
  sp_va : int;
  sp_resolution : fault_resolution;
  sp_cycles : int;
}

let top_span_cap = 10

type record = { ts : int; cpu : int; span : int; ev : event }

type t = {
  mutable enabled : bool;
  is_null : bool;
  ring : record Ring.t;
  mutable attrs : attr array;    (* grown on first use per CPU *)
  mutable next_span : int;
  mutable top_spans : span_info list; (* largest service time first *)
  kind_counts : int array;
  fault_latency : Hist.t array; (* indexed by resolution_index *)
  shootdown_latency : Hist.t;
  pagein_latency : Hist.t;
  disk_latency : Hist.t;
  pageout_depth : Hist.t;
  pagein_cluster : Hist.t;  (* pages per clustered pagein (incl. demand) *)
  pageout_cluster : Hist.t; (* pages per clustered pageout write *)
  disk_queue_depth : Hist.t;   (* in-flight requests at each async submit *)
  disk_completion : Hist.t;    (* submit-to-completion latency, cycles *)
  disk_wait : Hist.t;          (* residue charged at each async wait *)
  lock_stall : Hist.t;         (* cycles charged per contended object lock *)
  burst_pages : Hist.t;        (* neighbours mapped per burst fault *)
  mem_wait : Hist.t;           (* cycles charged per allocation backpressure
                                  wait on the pageout daemon *)
  mutable open_faults : int;
}

let make ~capacity ~is_null =
  { enabled = false;
    is_null;
    ring = Ring.create ~capacity;
    attrs = [||];
    next_span = 1;
    top_spans = [];
    kind_counts = Array.make kind_count 0;
    fault_latency =
      Array.init (List.length fault_resolutions) (fun _ -> Hist.create ());
    shootdown_latency = Hist.create ();
    pagein_latency = Hist.create ();
    disk_latency = Hist.create ();
    pageout_depth = Hist.create ();
    pagein_cluster = Hist.create ();
    pageout_cluster = Hist.create ();
    disk_queue_depth = Hist.create ();
    disk_completion = Hist.create ();
    disk_wait = Hist.create ();
    lock_stall = Hist.create ();
    burst_pages = Hist.create ();
    mem_wait = Hist.create ();
    open_faults = 0 }

let create ?(capacity = 65536) () = make ~capacity ~is_null:false

let null = make ~capacity:0 ~is_null:true

let enabled t = t.enabled

let set_enabled t on =
  if on && t.is_null then
    invalid_arg "Obs.set_enabled: the null sink cannot be enabled";
  t.enabled <- on

let attr_of t cpu =
  let n = Array.length t.attrs in
  if cpu >= n then
    t.attrs <-
      Array.init (cpu + 1)
        (fun i -> if i < n then t.attrs.(i) else attr_make ());
  t.attrs.(cpu)

let attr_push t ~cpu cat =
  let a = attr_of t cpu in
  if a.at_depth = Array.length a.at_stack then begin
    let s = Array.make (2 * a.at_depth) 0 in
    Array.blit a.at_stack 0 s 0 a.at_depth;
    a.at_stack <- s
  end;
  a.at_stack.(a.at_depth) <- category_index cat;
  a.at_depth <- a.at_depth + 1

let attr_pop t ~cpu =
  let a = attr_of t cpu in
  if a.at_depth > 0 then a.at_depth <- a.at_depth - 1

let attr_charge t ~cpu c =
  let a = attr_of t cpu in
  let i = if a.at_depth = 0 then 0 else a.at_stack.(a.at_depth - 1) in
  a.at_totals.(i) <- a.at_totals.(i) + c

let attr_charge_as t ~cpu cat c =
  let a = attr_of t cpu in
  let i = category_index cat in
  a.at_totals.(i) <- a.at_totals.(i) + c

let attr_total t ~cpu cat =
  if cpu < Array.length t.attrs then
    t.attrs.(cpu).at_totals.(category_index cat)
  else 0

let attr_cpu_total t ~cpu =
  if cpu < Array.length t.attrs then
    Array.fold_left ( + ) 0 t.attrs.(cpu).at_totals
  else 0

let attr_cpus t = Array.length t.attrs

let attr_grand_total t cat =
  let i = category_index cat in
  Array.fold_left (fun acc a -> acc + a.at_totals.(i)) 0 t.attrs

let attr_depth t ~cpu =
  if cpu < Array.length t.attrs then t.attrs.(cpu).at_depth else 0

(* Zero the cycle totals without disturbing open category/span frames:
   a benchmark resetting clocks mid-run keeps the invariant that totals
   sum to the (freshly zeroed) clock. *)
let attr_reset_totals t =
  Array.iter (fun a -> Array.fill a.at_totals 0 category_count 0) t.attrs

let open_span t ~cpu =
  if cpu < Array.length t.attrs then begin
    let a = t.attrs.(cpu) in
    if a.at_span_depth > 0 then a.at_spans.(a.at_span_depth - 1) else 0
  end
  else 0

let top_spans t = t.top_spans

let note_top_span t sp =
  let rec insert = function
    | [] -> [ sp ]
    | x :: rest when sp.sp_cycles > x.sp_cycles -> sp :: x :: rest
    | x :: rest -> x :: insert rest
  in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  t.top_spans <- take top_span_cap (insert t.top_spans)

let record t ~ts ~cpu ev =
  (* Span bookkeeping: Fault_begin opens a span and tags itself with the
     fresh id; every event the same CPU emits while the span is open
     carries that id; Fault_end closes it (and feeds the top-N table).
     Nested faults (a fault taken inside fault service) stack. *)
  let a = attr_of t cpu in
  let span =
    match ev with
    | Fault_begin _ ->
      let id = t.next_span in
      t.next_span <- id + 1;
      if a.at_span_depth = Array.length a.at_spans then begin
        let s = Array.make (2 * a.at_span_depth) 0 in
        Array.blit a.at_spans 0 s 0 a.at_span_depth;
        a.at_spans <- s
      end;
      a.at_spans.(a.at_span_depth) <- id;
      a.at_span_depth <- a.at_span_depth + 1;
      id
    | Fault_end { va; resolution; cycles } ->
      let id =
        if a.at_span_depth > 0 then a.at_spans.(a.at_span_depth - 1) else 0
      in
      if a.at_span_depth > 0 then a.at_span_depth <- a.at_span_depth - 1;
      note_top_span t
        { sp_id = id; sp_cpu = cpu; sp_va = va;
          sp_resolution = resolution; sp_cycles = cycles };
      id
    | _ ->
      if a.at_span_depth > 0 then a.at_spans.(a.at_span_depth - 1) else 0
  in
  Ring.push t.ring { ts; cpu; span; ev };
  let k = kind_index ev in
  t.kind_counts.(k) <- t.kind_counts.(k) + 1;
  match ev with
  | Fault_begin _ -> t.open_faults <- t.open_faults + 1
  | Fault_end { resolution; cycles; _ } ->
    t.open_faults <- t.open_faults - 1;
    Hist.add t.fault_latency.(resolution_index resolution) cycles
  | Pagein { cycles; _ } -> Hist.add t.pagein_latency cycles
  | Pageout { inactive_depth; _ } -> Hist.add t.pageout_depth inactive_depth
  | Shootdown { cycles; _ } -> Hist.add t.shootdown_latency cycles
  | Shootdown_batch { cycles; _ } -> Hist.add t.shootdown_latency cycles
  | Disk_io { cycles; _ } -> Hist.add t.disk_latency cycles
  | Prefetch { pages; _ } -> Hist.add t.pagein_cluster (pages + 1)
  | Cluster_pageout { pages; _ } -> Hist.add t.pageout_cluster pages
  | Disk_submit { depth; latency; _ } ->
    Hist.add t.disk_queue_depth depth;
    Hist.add t.disk_completion latency
  | Disk_wait { cycles; _ } -> Hist.add t.disk_wait cycles
  | Lock_stall { cycles; _ } -> Hist.add t.lock_stall cycles
  | Burst_enter { pages; _ } -> Hist.add t.burst_pages pages
  | Alloc_wait { cycles; _ } -> Hist.add t.mem_wait cycles
  | Tlb_flush _ | Pmap_enter _ | Pmap_remove _ | Pmap_protect _
  | Object_shadow _ | Task_switch _
  | Pager_retry _ | Pager_timeout _ | Pager_dead _ | Io_error _
  | Swap_full _ | Oom_kill _ | Page_steal _ | Stream_reset _
  | Free_behind _ -> ()

let ring t = t.ring

let events_seen t = Ring.pushed t.ring

let count_index t k = t.kind_counts.(k)

let count t ev = count_index t (kind_index ev)

let open_faults t = t.open_faults

let fault_latency t r = t.fault_latency.(resolution_index r)
let shootdown_latency t = t.shootdown_latency
let pagein_latency t = t.pagein_latency
let disk_latency t = t.disk_latency
let pageout_depth t = t.pageout_depth
let pagein_cluster t = t.pagein_cluster
let pageout_cluster t = t.pageout_cluster
let disk_queue_depth t = t.disk_queue_depth
let disk_completion t = t.disk_completion
let disk_wait t = t.disk_wait
let lock_stall t = t.lock_stall
let burst_pages t = t.burst_pages
let mem_wait t = t.mem_wait

let reset t =
  Ring.clear t.ring;
  t.attrs <- [||];
  t.next_span <- 1;
  t.top_spans <- [];
  Array.fill t.kind_counts 0 kind_count 0;
  Array.iter Hist.clear t.fault_latency;
  Hist.clear t.shootdown_latency;
  Hist.clear t.pagein_latency;
  Hist.clear t.disk_latency;
  Hist.clear t.pageout_depth;
  Hist.clear t.pagein_cluster;
  Hist.clear t.pageout_cluster;
  Hist.clear t.disk_queue_depth;
  Hist.clear t.disk_completion;
  Hist.clear t.disk_wait;
  Hist.clear t.lock_stall;
  Hist.clear t.burst_pages;
  Hist.clear t.mem_wait;
  t.open_faults <- 0
