(** Log2-bucketed latency histograms.

    Bucket [0] counts values [<= 0]; bucket [i > 0] counts values in
    [[2^(i-1), 2^i)].  Sixty-three buckets cover the whole non-negative
    [int] range, so insertion is O(1), memory is constant, and
    percentiles are answered to within a factor of two — plenty for
    "did the fault path get slower" questions over simulated cycles. *)

type t

val create : unit -> t

val add : t -> int -> unit
(** [add t v] records one observation of [v] (cycles, depth, bytes...). *)

val count : t -> int
val sum : t -> int
val mean : t -> float
(** [mean t] is [0.] when empty. *)

val min_value : t -> int
(** Smallest observation; [0] when empty. *)

val max_value : t -> int
(** Largest observation; [0] when empty. *)

val percentile : t -> float -> int
(** [percentile t p] for [p] in [0..1] is an upper bound for the value
    below which a fraction [p] of observations fall: the top of the
    bucket where the cumulative count crosses [p * count], clamped to
    [max_value].  [0] when empty. *)

val p50 : t -> int
val p95 : t -> int
val p99 : t -> int
(** Convenience percentiles.  While the population is small (at most
    {!sample_cap} observations) these are answered exactly from a raw
    sample buffer; beyond that they fall back to {!percentile}'s bucket
    walk (within a factor of two).  [0] when empty. *)

val sample_cap : int
(** Observations kept verbatim for the exact small-sample path. *)

val bucket_count : int

val bucket_lo : int -> int
(** Inclusive lower bound of bucket [i]. *)

val bucket_hi : int -> int
(** Inclusive upper bound of bucket [i]. *)

val get_bucket : t -> int -> int
(** Observations in bucket [i]. *)

val iter_nonempty : t -> (lo:int -> hi:int -> count:int -> unit) -> unit
(** Visit non-empty buckets in increasing value order. *)

val clear : t -> unit
