(** Minimal JSON construction and serialisation.

    The exporters need to *write* well-formed JSON (Chrome traces,
    stats.json, BENCH_vm.json); nothing in the tree needs to parse it,
    so a small value type and printer avoid a dependency the container
    may not have. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_buffer : Buffer.t -> t -> unit

val to_string : t -> string
(** Compact (single-line) rendering. *)

val write_file : string -> t -> unit
(** [write_file path j] writes [to_string j] followed by a newline. *)
