let bucket_count = 63

(* Raw observations kept verbatim while the population is small, so the
   percentile accessors can answer exactly instead of to a power of
   two.  Once [count] exceeds the buffer the histogram silently falls
   back to bucket math — the buffer is never resized. *)
let sample_cap = 128

type t = {
  buckets : int array;
  samples : int array;
  mutable count : int;
  mutable sum : int;
  mutable min_v : int;
  mutable max_v : int;
}

let create () =
  { buckets = Array.make bucket_count 0;
    samples = Array.make sample_cap 0;
    count = 0; sum = 0;
    min_v = max_int; max_v = min_int }

(* Index of the bucket holding [v]: 0 for v <= 0, otherwise one more
   than the position of v's highest set bit, so 1 -> 1, 2..3 -> 2,
   4..7 -> 3, ... *)
let bucket_of v =
  if v <= 0 then 0
  else begin
    let rec bits acc v = if v = 0 then acc else bits (acc + 1) (v lsr 1) in
    min (bucket_count - 1) (bits 0 v)
  end

let bucket_lo i = if i <= 0 then 0 else 1 lsl (i - 1)
let bucket_hi i = if i <= 0 then 0 else (1 lsl i) - 1

let add t v =
  t.buckets.(bucket_of v) <- t.buckets.(bucket_of v) + 1;
  if t.count < sample_cap then t.samples.(t.count) <- v;
  t.count <- t.count + 1;
  t.sum <- t.sum + v;
  if v < t.min_v then t.min_v <- v;
  if v > t.max_v then t.max_v <- v

let count t = t.count
let sum t = t.sum
let mean t = if t.count = 0 then 0. else float_of_int t.sum /. float_of_int t.count
let min_value t = if t.count = 0 then 0 else t.min_v
let max_value t = if t.count = 0 then 0 else t.max_v

let get_bucket t i = t.buckets.(i)

let percentile t p =
  if t.count = 0 then 0
  else begin
    let target =
      let x = int_of_float (ceil (p *. float_of_int t.count)) in
      max 1 (min t.count x)
    in
    let rec walk i seen =
      if i >= bucket_count then t.max_v
      else begin
        let seen = seen + t.buckets.(i) in
        if seen >= target then min (bucket_hi i) t.max_v
        else walk (i + 1) seen
      end
    in
    walk 0 0
  end

(* Exact percentile over the retained raw samples; only valid while
   [count <= sample_cap]. *)
let percentile_exact t p =
  let sorted = Array.sub t.samples 0 t.count in
  Array.sort compare sorted;
  let target =
    let x = int_of_float (ceil (p *. float_of_int t.count)) in
    max 1 (min t.count x)
  in
  sorted.(target - 1)

let pct t p =
  if t.count = 0 then 0
  else if t.count <= sample_cap then percentile_exact t p
  else percentile t p

let p50 t = pct t 0.50
let p95 t = pct t 0.95
let p99 t = pct t 0.99

let iter_nonempty t f =
  for i = 0 to bucket_count - 1 do
    if t.buckets.(i) > 0 then
      f ~lo:(bucket_lo i) ~hi:(bucket_hi i) ~count:t.buckets.(i)
  done

let clear t =
  Array.fill t.buckets 0 bucket_count 0;
  t.count <- 0;
  t.sum <- 0;
  t.min_v <- max_int;
  t.max_v <- min_int
