open Mach_core
open Mach_pagers
open Types

type server = {
  srv_link : Netlink.t;
  srv_node : int;
  srv_sys : Vm_sys.t;
  srv_fs : Simfs.t;
  srv_id : int;
}

let next_server_id = ref 0

let serve link ~node sys fs =
  incr next_server_id;
  { srv_link = link; srv_node = node; srv_sys = sys; srv_fs = fs;
    srv_id = !next_server_id }

(* Memoized per (client node, server, file): repeated imports reach the
   same pager and hence the same client-side memory object. *)
let imports : (int * int * string, pager) Hashtbl.t = Hashtbl.create 32

let remote_size srv ~name = Simfs.file_size srv.srv_fs ~name

(* Serve a read on the server node, through its page cache. *)
let server_read srv ~name ~offset ~len =
  Vnode_pager.read_through_object srv.srv_sys srv.srv_fs ~name ~offset ~len

let emit_timeout (sys : Vm_sys.t) ~offset ~attempts =
  if Mach_obs.Obs.enabled (Vm_sys.tracer sys) then
    Vm_sys.emit sys (Mach_obs.Obs.Pager_timeout { offset; attempts })

let make_pager link ~node (client_sys : Vm_sys.t) srv ~name =
  let id = fresh_pager_id () in
  let client_cpu () = Vm_sys.current_cpu client_sys in
  let server_cpu = 0 in
  (* All exchanges run under Netlink's timeout/retry/backoff envelope;
     a request the network loses [rpc_attempts] times in a row becomes
     the protocol's error reply and Pager_guard takes it from there.
     Range requests batch naturally: a clustered pagein moves all its
     frames in one RPC ([reply_bytes = len]), paying the network's
     fixed per-message cost once, and the server side reads the range
     through its own (clustered) page cache. *)
  let rpc_attempts = 4 in
  {
    pgr_id = id;
    pgr_name = Printf.sprintf "net:%d:%s" srv.srv_node name;
    pgr_request =
      (fun ~offset ~length ->
         let size = remote_size srv ~name in
         if offset >= size then Data_unavailable
         else begin
           let len = min length (size - offset) in
           match
             Netlink.rpc_retry ~attempts:rpc_attempts link ~from_node:node
               ~from_cpu:(client_cpu ()) ~to_node:srv.srv_node
               ~to_cpu:server_cpu ~request_bytes:64 ~reply_bytes:len
               (fun () -> server_read srv ~name ~offset ~len)
           with
           | data -> Data_provided data
           | exception Netlink.Timeout ->
             emit_timeout client_sys ~offset ~attempts:rpc_attempts;
             Data_error
         end);
    pgr_write =
      (fun ~offset ~data ->
         match
           Netlink.rpc_retry ~attempts:rpc_attempts link ~from_node:node
             ~from_cpu:(client_cpu ()) ~to_node:srv.srv_node
             ~to_cpu:server_cpu ~request_bytes:(64 + Bytes.length data)
             ~reply_bytes:32
             (fun () ->
                Simfs.write srv.srv_fs ~cpu:server_cpu ~name ~offset ~data)
         with
         | () -> Write_completed
         | exception Netlink.Timeout ->
           emit_timeout client_sys ~offset ~attempts:rpc_attempts;
           Write_error
         | exception Simdisk.Io_error _ ->
           (* The server's own disk failed the write. *)
           Write_error);
    (* The RPC envelope blocks the client CPU for the full round trip;
       there is no client-visible device time to overlap, so async
       submits fall back to the synchronous RPC path. *)
    pgr_submit = Types.no_submit;
    pgr_submit_write = Types.no_submit_write;
    pgr_should_cache = ref true;
  }

let import link ~node client_sys srv ~name =
  if not (Simfs.exists srv.srv_fs ~name) then raise Not_found;
  let key = (node, srv.srv_id, name) in
  match Hashtbl.find_opt imports key with
  | Some p -> p
  | None ->
    let p = make_pager link ~node client_sys srv ~name in
    Hashtbl.add imports key p;
    p

let map_remote link ~node client_sys task srv ~name ?(copy = false) () =
  Pager_map.map_object client_sys task
    ~resolve:(fun () ->
      (import link ~node client_sys srv ~name, remote_size srv ~name))
    ~copy ()

let fetch_whole link ~node client_sys srv ~name =
  let size = remote_size srv ~name in
  Netlink.rpc_retry link ~from_node:node
    ~from_cpu:(Vm_sys.current_cpu client_sys) ~to_node:srv.srv_node
    ~to_cpu:0 ~request_bytes:64 ~reply_bytes:size
    (fun () -> server_read srv ~name ~offset:0 ~len:size)
