open Mach_hw
module Fail = Mach_fail.Fail

exception Timeout

type t = {
  machines : Machine.t array;
  latency_us : int;
  mbit_per_s : int;
  timeout_us : int;
  mutable messages : int;
  mutable bytes_moved : int;
  mutable drops : int;
  mutable timeouts : int;
  mutable retries : int;
  mutable fail : Fail.t option;
}

let create ?(latency_us = 1000) ?(mbit_per_s = 10) ?(timeout_us = 100_000)
    machines =
  if machines = [] then invalid_arg "Netlink.create: no machines";
  { machines = Array.of_list machines; latency_us; mbit_per_s; timeout_us;
    messages = 0; bytes_moved = 0; drops = 0; timeouts = 0; retries = 0;
    fail = None }

let node_count t = Array.length t.machines

let set_injector t inj = t.fail <- inj

(* Cycles a transfer of [bytes] costs on [machine]: latency plus wire
   time, both expressed through that machine's clock rate. *)
let transfer_cycles t machine bytes =
  let arch = Machine.arch machine in
  let per_ms = arch.Arch.cycles_per_ms in
  let latency = t.latency_us * per_ms / 1000 in
  (* wire time: bytes * 8 bits at mbit_per_s -> microseconds *)
  let wire_us = bytes * 8 / t.mbit_per_s in
  latency + (wire_us * per_ms / 1000)

let timeout_cycles t machine =
  let arch = Machine.arch machine in
  t.timeout_us * arch.Arch.cycles_per_ms / 1000

let rpc t ~from_node ~from_cpu ~to_node ~to_cpu ~request_bytes ~reply_bytes f =
  let src = t.machines.(from_node) in
  let dst = t.machines.(to_node) in
  (match t.fail with
   | None -> ()
   | Some inj ->
     (match Fail.decide inj ~site:"net.rpc" with
      | Fail.Pass -> ()
      | Fail.Delay c ->
        (* Congestion: both ends see the exchange stretched. *)
        Machine.charge src ~cpu:from_cpu c;
        Machine.charge dst ~cpu:to_cpu c
      | Fail.Fail | Fail.Drop | Fail.Short _ | Fail.Garbage ->
        (* The request (or a mangled packet the checksum rejects) never
           reaches the server: the caller pays for the send plus its
           full timeout window, the server computes nothing. *)
        t.messages <- t.messages + 1;
        t.bytes_moved <- t.bytes_moved + request_bytes;
        t.drops <- t.drops + 1;
        t.timeouts <- t.timeouts + 1;
        Machine.charge src ~cpu:from_cpu
          (transfer_cycles t src request_bytes + timeout_cycles t src);
        raise Timeout))
  ;
  t.messages <- t.messages + 2;
  t.bytes_moved <- t.bytes_moved + request_bytes + reply_bytes;
  (* Request travels; server computes; reply travels.  The remote service
     time is measured on the remote clock and mirrored onto the caller,
     who blocks for it. *)
  Machine.charge src ~cpu:from_cpu
    (transfer_cycles t src (request_bytes + reply_bytes));
  Machine.charge dst ~cpu:to_cpu
    (transfer_cycles t dst (request_bytes + reply_bytes));
  let before = Machine.cycles dst ~cpu:to_cpu in
  let result = f () in
  let service = Machine.cycles dst ~cpu:to_cpu - before in
  let src_arch = Machine.arch src and dst_arch = Machine.arch dst in
  let mirrored =
    service * src_arch.Arch.cycles_per_ms / dst_arch.Arch.cycles_per_ms
  in
  Machine.charge src ~cpu:from_cpu mirrored;
  result

(* Retry envelope: re-send a timed-out exchange with exponential backoff
   charged to the caller, in the style of every datagram RPC stack since
   Courier.  Exhausting [attempts] re-raises {!Timeout}. *)
let rpc_retry ?(attempts = 4) t ~from_node ~from_cpu ~to_node ~to_cpu
    ~request_bytes ~reply_bytes f =
  let src = t.machines.(from_node) in
  let base = timeout_cycles t src / 4 in
  let rec go n =
    match
      rpc t ~from_node ~from_cpu ~to_node ~to_cpu ~request_bytes
        ~reply_bytes f
    with
    | result -> result
    | exception Timeout ->
      if n + 1 >= attempts then raise Timeout
      else begin
        t.retries <- t.retries + 1;
        Machine.charge src ~cpu:from_cpu (base * (1 lsl n));
        go (n + 1)
      end
  in
  go 0

let messages t = t.messages

let bytes_moved t = t.bytes_moved

let drops t = t.drops
let timeouts t = t.timeouts
let retries t = t.retries

let reset_counters t =
  t.messages <- 0;
  t.bytes_moved <- 0;
  t.drops <- 0;
  t.timeouts <- 0;
  t.retries <- 0
