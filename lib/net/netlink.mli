(** A simulated network link between machines.

    Section 6: Mach's memory/communication integration extends
    transparently into a distributed environment — "tasks may map into
    their address spaces references to memory objects which can be
    implemented by pagers anywhere on the network".  This module provides
    the substrate: request/response exchanges between simulated machines,
    charging latency and per-byte transfer time to {e both} ends'
    clocks. *)

type t
(** A link between two or more machines. *)

exception Timeout
(** An exchange got no reply: the (injected) network dropped it and the
    caller waited out its timeout window. *)

val create :
  ?latency_us:int -> ?mbit_per_s:int -> ?timeout_us:int ->
  Mach_hw.Machine.t list -> t
(** [create machines] links the machines.  Defaults model mid-1980s
    Ethernet: 1000 us latency per exchange, 10 Mbit/s, and a 100 ms
    no-reply timeout. *)

val node_count : t -> int

val set_injector : t -> Mach_fail.Fail.t option -> unit
(** [set_injector t (Some inj)] makes every {!rpc} consult [inj] at site
    ["net.rpc"]: [Delay] charges extra cycles at both ends (congestion);
    any failure decision loses the request — the caller is charged the
    send plus the full timeout window and {!Timeout} is raised; the
    server side never runs.  A [Between]-windowed [Drop] rule models a
    transient partition. *)

val rpc :
  t -> from_node:int -> from_cpu:int -> to_node:int -> to_cpu:int ->
  request_bytes:int -> reply_bytes:int -> (unit -> 'a) -> 'a
(** [rpc t ~from_node ~from_cpu ~to_node ~to_cpu ~request_bytes
    ~reply_bytes f] performs [f] "on the remote node" and returns its
    result, charging both machines for the exchange.  The caller's clock
    also absorbs the remote service time so elapsed time composes the way
    a blocking RPC does. *)

val rpc_retry :
  ?attempts:int ->
  t -> from_node:int -> from_cpu:int -> to_node:int -> to_cpu:int ->
  request_bytes:int -> reply_bytes:int -> (unit -> 'a) -> 'a
(** [rpc_retry t ... f] is {!rpc} wrapped in a timeout/retry/backoff
    envelope: a {!Timeout} is retried (up to [attempts] total tries,
    default 4) after an exponential backoff charged to the caller;
    exhaustion re-raises {!Timeout}. *)

val messages : t -> int
(** Exchanges performed so far. *)

val bytes_moved : t -> int
(** Total payload bytes carried (both directions). *)

val drops : t -> int
(** Requests lost to injection. *)

val timeouts : t -> int
(** Timeout windows waited out by callers. *)

val retries : t -> int
(** Exchanges re-sent by {!rpc_retry}. *)

val reset_counters : t -> unit
