(* Generic pmap built from lazily-constructed linear page tables.

   The VAX keeps page tables in physical memory; the solution the paper
   chose "was to keep page tables in physical memory, but only to construct
   those parts of the table which were needed to actually map virtual to
   real addresses for pages currently in use" (Section 5.1).  The NS32082
   uses two-level tables with the same character plus hard virtual and
   physical address limits.  Both are instances of this module: a hash of
   page-table pages, each covering [ptes_per_page] consecutive virtual
   pages, created on first use and garbage collected when empty. *)

open Mach_hw

type pte = {
  mutable p_pfn : int;
  mutable p_prot : Prot.t;
  mutable p_valid : bool;
  mutable p_wired : bool;
}

type tpage = { ptes : pte array; mutable valid_count : int }

let make (ctx : Backend.ctx) ~kind ~va_limit ~top_bytes
    ?(pfn_ok = fun _ -> true) () =
  let asid = Backend.fresh_asid ctx in
  let stats = Pmap.fresh_stats () in
  let presence = Backend.fresh_presence ctx in
  let page = Backend.page_size ctx in
  let pte_bytes = (Backend.arch ctx).Arch.pte_bytes in
  let ptes_per_page = page / pte_bytes in
  let tables : (int, tpage) Hashtbl.t = Hashtbl.create 16 in
  let resident = ref 0 in

  let fresh_pte () =
    { p_pfn = 0; p_prot = Prot.none; p_valid = false; p_wired = false }
  in
  let find_pte vpn =
    match Hashtbl.find_opt tables (vpn / ptes_per_page) with
    | None -> None
    | Some tp -> Some tp.ptes.(vpn mod ptes_per_page)
  in
  let find_or_create_tpage vpn =
    let idx = vpn / ptes_per_page in
    match Hashtbl.find_opt tables idx with
    | Some tp -> tp
    | None ->
      (* Constructing a page-table page costs a page zero. *)
      Backend.charge ctx (Backend.move_cost ctx page);
      let tp =
        { ptes = Array.init ptes_per_page (fun _ -> fresh_pte ());
          valid_count = 0 }
      in
      Hashtbl.add tables idx tp;
      tp
  in

  (* Invalidate one pte; the caller decides how to flush. *)
  let invalidate_pte vpn pte =
    assert pte.p_valid;
    pte.p_valid <- false;
    Backend.pv_remove ctx ~pfn:pte.p_pfn ~asid ~vpn;
    Backend.charge ctx (Backend.cost ctx).Arch.pte_write;
    decr resident;
    stats.Pmap.removals <- stats.Pmap.removals + 1;
    let idx = vpn / ptes_per_page in
    match Hashtbl.find_opt tables idx with
    | None -> assert false
    | Some tp ->
      tp.valid_count <- tp.valid_count - 1;
      if tp.valid_count = 0 then Hashtbl.remove tables idx
  in

  let install vpn ~pfn ~prot ~wired =
    let tp = find_or_create_tpage vpn in
    let pte = tp.ptes.(vpn mod ptes_per_page) in
    assert (not pte.p_valid);
    pte.p_pfn <- pfn;
    pte.p_prot <- prot;
    pte.p_valid <- true;
    pte.p_wired <- wired;
    tp.valid_count <- tp.valid_count + 1;
    incr resident;
    Backend.pv_insert ctx ~pfn ~asid ~vpn
  in

  let enter ~va ~pfn ~prot ~wired =
    if va < 0 || va >= va_limit then
      invalid_arg "pmap_enter: virtual address beyond hardware limit";
    if not (pfn_ok pfn) then
      invalid_arg "pmap_enter: physical page beyond hardware limit";
    let vpn = va / page in
    (* TLBs need invalidating only when a previously valid translation
       changes; fresh entries cannot be cached anywhere. *)
    (match find_pte vpn with
     | Some pte when pte.p_valid && pte.p_pfn = pfn ->
       (* Same frame: update protection in place. *)
       pte.p_prot <- prot;
       pte.p_wired <- wired;
       Backend.shoot_page ctx presence ~asid ~vpn
     | Some pte when pte.p_valid ->
       invalidate_pte vpn pte;
       Backend.shoot_page ctx presence ~asid ~vpn;
       install vpn ~pfn ~prot ~wired
     | Some _ | None -> install vpn ~pfn ~prot ~wired);
    Backend.charge ctx (Backend.cost ctx).Arch.pte_write;
    stats.Pmap.enters <- stats.Pmap.enters + 1
  in

  (* Visit the valid ptes whose vpn lies in [lo, hi); [f vpn pte] may
     invalidate the pte.  Iterates existing table pages, not the raw
     virtual range, so sparse spaces stay cheap. *)
  let iter_valid_in_range lo hi f =
    let idxs =
      Hashtbl.fold
        (fun idx _ acc ->
           let first_vpn = idx * ptes_per_page in
           let last_vpn = first_vpn + ptes_per_page - 1 in
           if last_vpn >= lo && first_vpn < hi then idx :: acc else acc)
        tables []
      |> List.sort compare
    in
    let visit idx =
      match Hashtbl.find_opt tables idx with
      | None -> ()
      | Some tp ->
        for i = 0 to ptes_per_page - 1 do
          let vpn = (idx * ptes_per_page) + i in
          let pte = tp.ptes.(i) in
          if vpn >= lo && vpn < hi && pte.p_valid then f vpn pte
        done
    in
    List.iter visit idxs
  in

  (* The batch accumulator coalesces the per-page shootdowns into one
     exchange (and promotes to a whole-space flush past the threshold);
     with batching off each page goes out as its own shootdown. *)
  let range_op ~start_va ~end_va f =
    let lo = start_va / page in
    let hi = (end_va + page - 1) / page in
    Backend.batched ctx (fun () ->
        iter_valid_in_range lo hi (fun vpn pte ->
            f vpn pte;
            Backend.shoot_page ctx presence ~asid ~vpn))
  in

  let remove ~start_va ~end_va =
    range_op ~start_va ~end_va (fun vpn pte -> invalidate_pte vpn pte)
  in

  let protect ~start_va ~end_va ~prot =
    stats.Pmap.protect_ops <- stats.Pmap.protect_ops + 1;
    range_op ~start_va ~end_va (fun _vpn pte ->
        pte.p_prot <- Prot.inter pte.p_prot prot;
        Backend.charge ctx (Backend.cost ctx).Arch.pte_write)
  in

  let extract va =
    match find_pte (va / page) with
    | Some pte when pte.p_valid -> Some pte.p_pfn
    | Some _ | None -> None
  in

  let lookup vpn =
    match find_pte vpn with
    | Some pte when pte.p_valid ->
      Translator.Mapped { pfn = pte.p_pfn; prot = pte.p_prot }
    | Some _ | None -> Translator.Missing
  in
  let translator =
    { Translator.asid; lookup;
      walk_cost = (Backend.cost ctx).Arch.tlb_fill }
  in

  (* Drop every non-wired mapping: the pmap-as-cache behaviour. *)
  let collect () =
    let dropped = ref 0 in
    iter_valid_in_range 0 max_int (fun vpn pte ->
        if not pte.p_wired then begin
          invalidate_pte vpn pte;
          incr dropped
        end);
    stats.Pmap.cache_drops <- stats.Pmap.cache_drops + !dropped;
    if !dropped > 0 then Backend.shoot_asid ctx presence ~asid
  in

  let destroy () =
    iter_valid_in_range 0 max_int (fun vpn pte -> invalidate_pte vpn pte);
    Backend.shoot_asid ctx presence ~asid;
    Hashtbl.reset tables
  in

  let map_bytes () = top_bytes + (Hashtbl.length tables * page) in

  (* pmap_copy (Table 3-4, optional): duplicate valid mappings into a
     destination pmap so it avoids its initial faults.  Write permission
     is stripped — the typical caller is fork, where the child's data
     must stay copy-on-write until its first write fault. *)
  let copy ~dst ~dst_start ~len ~src_start =
    let lo = src_start / page in
    let hi = (src_start + len + page - 1) / page in
    iter_valid_in_range lo hi (fun vpn pte ->
        let va = dst_start + ((vpn * page) - src_start) in
        dst.Pmap.enter ~va ~pfn:pte.p_pfn
          ~prot:(Prot.remove_write pte.p_prot) ~wired:false)
  in

  {
    Pmap.asid;
    kind;
    (* real reference counting is installed by Pmap_domain *)
    reference = (fun () -> ());
    enter;
    remove;
    protect;
    extract;
    access_check = (fun va -> extract va <> None);
    activate = (fun ~cpu -> Backend.activate ctx presence translator ~cpu);
    deactivate =
      (fun ~cpu -> Backend.deactivate ctx presence translator ~cpu);
    copy = Some copy;
    pageable = None;
    resident_count = (fun () -> !resident);
    map_bytes;
    collect;
    destroy;
    stats;
  }
