type mapping = { pv_asid : int; pv_vpn : int }

type t = {
  lists : mapping list array;
  referenced : Bytes.t;
  modified : Bytes.t;
}

(* Arrays are indexed by frame number; mapping lists are short (a frame is
   rarely shared by more than a handful of address spaces). *)

let create ~frames =
  { lists = Array.make frames [];
    referenced = Bytes.make frames '\000';
    modified = Bytes.make frames '\000' }

(* Structural invariant checks cost an O(n) membership scan per insert;
   with every page of a large region entered one at a time that turns the
   pmap paths quadratic, so they are compiled out of normal builds. *)
let debug_checks = false

let insert t ~pfn m =
  if debug_checks then assert (not (List.mem m t.lists.(pfn)));
  t.lists.(pfn) <- m :: t.lists.(pfn)

let remove t ~pfn m =
  (* One traversal dropping the first occurrence; a missing mapping still
     asserts, without a separate membership scan. *)
  let rec drop = function
    | [] -> assert false
    | m' :: rest -> if m' = m then rest else m' :: drop rest
  in
  t.lists.(pfn) <- drop t.lists.(pfn)

let mappings t ~pfn = t.lists.(pfn)

let mapping_count t ~pfn = List.length t.lists.(pfn)

let set_referenced t ~pfn = Bytes.set t.referenced pfn '\001'
let set_modified t ~pfn = Bytes.set t.modified pfn '\001'

let is_referenced t ~pfn = Bytes.get t.referenced pfn = '\001'
let is_modified t ~pfn = Bytes.get t.modified pfn = '\001'

let clear_referenced t ~pfn = Bytes.set t.referenced pfn '\000'
let clear_modified t ~pfn = Bytes.set t.modified pfn '\000'
