open Mach_hw

(* One slot per physical frame: the (at most one) virtual mapping of that
   frame. *)
type slot = {
  mutable s_asid : int;
  mutable s_vpn : int;
  mutable s_prot : Prot.t;
  mutable s_wired : bool;
  mutable s_valid : bool;
}

(* Per-pmap bookkeeping the eviction path must reach from a foreign pmap. *)
type owner = {
  o_presence : Backend.presence;
  o_stats : Pmap.stats;
  o_vpns : (int, int) Hashtbl.t; (* vpn -> pfn, this pmap's live mappings *)
}

let make_domain (ctx : Backend.ctx) =
  let frames = Phys_mem.frame_count (Machine.phys ctx.machine) in
  let page = Backend.page_size ctx in
  let pte_bytes = (Backend.arch ctx).Arch.pte_bytes in
  let ipt =
    Array.init frames (fun _ ->
        { s_asid = 0; s_vpn = 0; s_prot = Prot.none; s_wired = false;
          s_valid = false })
  in
  (* The hash anchor table: (asid, vpn) -> pfn. *)
  let hash : (int * int, int) Hashtbl.t = Hashtbl.create 1024 in
  let owners : (int, owner) Hashtbl.t = Hashtbl.create 16 in

  (* Remove the mapping occupying [pfn], whoever owns it. *)
  let evict pfn =
    let s = ipt.(pfn) in
    assert s.s_valid;
    let o = Hashtbl.find owners s.s_asid in
    Hashtbl.remove hash (s.s_asid, s.s_vpn);
    Hashtbl.remove o.o_vpns s.s_vpn;
    Backend.pv_remove ctx ~pfn ~asid:s.s_asid ~vpn:s.s_vpn;
    Backend.charge ctx (Backend.cost ctx).Arch.pte_write;
    Backend.shoot_page ctx o.o_presence ~asid:s.s_asid ~vpn:s.s_vpn;
    o.o_stats.Pmap.removals <- o.o_stats.Pmap.removals + 1;
    s.s_valid <- false
  in

  let new_pmap () =
    let asid = Backend.fresh_asid ctx in
    let stats = Pmap.fresh_stats () in
    let presence = Backend.fresh_presence ctx in
    let own_vpns : (int, int) Hashtbl.t = Hashtbl.create 64 in
    Hashtbl.add owners asid
      { o_presence = presence; o_stats = stats; o_vpns = own_vpns };

    let enter ~va ~pfn ~prot ~wired =
      if pfn < 0 || pfn >= frames then
        invalid_arg "pmap_enter: no such physical page";
      let vpn = va / page in
      (* Drop any previous mapping this pmap had for the page... *)
      let had_mapping = Hashtbl.mem own_vpns vpn in
      (match Hashtbl.find_opt own_vpns vpn with
       | Some old_pfn when old_pfn = pfn ->
         () (* re-entering the same frame just updates protection below *)
       | Some old_pfn -> evict old_pfn
       | None -> ());
      (* ...and, inverted-table restriction, any foreign mapping of the
         frame itself. *)
      let s = ipt.(pfn) in
      if s.s_valid && not (s.s_asid = asid && s.s_vpn = vpn) then begin
        evict pfn;
        stats.Pmap.alias_evictions <- stats.Pmap.alias_evictions + 1
      end;
      if not s.s_valid then begin
        s.s_asid <- asid;
        s.s_vpn <- vpn;
        s.s_wired <- wired;
        s.s_valid <- true;
        Hashtbl.replace hash (asid, vpn) pfn;
        Hashtbl.replace own_vpns vpn pfn;
        Backend.pv_insert ctx ~pfn ~asid ~vpn
      end;
      s.s_prot <- prot;
      s.s_wired <- wired;
      Backend.charge ctx (Backend.cost ctx).Arch.pte_write;
      (* Only a pre-existing translation can be cached in a TLB. *)
      if had_mapping then Backend.shoot_page ctx presence ~asid ~vpn;
      stats.Pmap.enters <- stats.Pmap.enters + 1
    in

    (* Visit this pmap's mappings with vpn in [lo, hi). *)
    let in_range lo hi =
      Hashtbl.fold
        (fun vpn pfn acc ->
           if vpn >= lo && vpn < hi then (vpn, pfn) :: acc else acc)
        own_vpns []
    in

    let range_bounds ~start_va ~end_va =
      (start_va / page, (end_va + page - 1) / page)
    in

    let remove ~start_va ~end_va =
      let lo, hi = range_bounds ~start_va ~end_va in
      Backend.batched ctx (fun () ->
          List.iter (fun (_, pfn) -> evict pfn) (in_range lo hi))
    in

    let protect ~start_va ~end_va ~prot =
      stats.Pmap.protect_ops <- stats.Pmap.protect_ops + 1;
      let lo, hi = range_bounds ~start_va ~end_va in
      Backend.batched ctx (fun () ->
          List.iter
            (fun (vpn, pfn) ->
               let s = ipt.(pfn) in
               s.s_prot <- Prot.inter s.s_prot prot;
               Backend.charge ctx (Backend.cost ctx).Arch.pte_write;
               Backend.shoot_page ctx presence ~asid ~vpn)
            (in_range lo hi))
    in

    let extract va = Hashtbl.find_opt own_vpns (va / page) in

    let lookup vpn =
      match Hashtbl.find_opt hash (asid, vpn) with
      | Some pfn ->
        Translator.Mapped { pfn; prot = ipt.(pfn).s_prot }
      | None -> Translator.Missing
    in
    let translator =
      { Translator.asid; lookup;
        walk_cost = (Backend.cost ctx).Arch.tlb_fill }
    in

    let collect () =
      let victims =
        Hashtbl.fold
          (fun _ pfn acc ->
             if ipt.(pfn).s_wired then acc else pfn :: acc)
          own_vpns []
      in
      Backend.batched ctx (fun () -> List.iter evict victims);
      stats.Pmap.cache_drops <-
        stats.Pmap.cache_drops + List.length victims
    in

    let destroy () =
      let victims = Hashtbl.fold (fun _ pfn acc -> pfn :: acc) own_vpns [] in
      Backend.batched ctx (fun () -> List.iter evict victims);
      Hashtbl.remove owners asid
    in

    {
      Pmap.asid;
      (* real reference counting is installed by Pmap_domain *)
      reference = (fun () -> ());
      kind = Arch.Rt_pc;
      enter;
      remove;
      protect;
      extract;
      access_check = (fun va -> extract va <> None);
      activate = (fun ~cpu -> Backend.activate ctx presence translator ~cpu);
      deactivate =
        (fun ~cpu -> Backend.deactivate ctx presence translator ~cpu);
      copy = None;
      pageable = None;
      resident_count = (fun () -> Hashtbl.length own_vpns);
      map_bytes = (fun () -> 0);
      collect;
      destroy;
      stats;
    }
  in
  {
    Backend.new_pmap;
    (* The inverted table plus hash anchors scale with physical memory,
       never with address-space size. *)
    shared_map_bytes = (fun () -> 2 * frames * pte_bytes);
  }
