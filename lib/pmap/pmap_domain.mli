(** A pmap domain: all machine-dependent mapping state of one kernel.

    The domain owns the physical-to-virtual tracking and provides the
    page-level operations of Table 3-3 that act on {e every} mapping of a
    physical page — [pmap_remove_all], [pmap_copy_on_write], the
    modify/reference-bit calls, and [pmap_zero_page]/[pmap_copy_page] —
    plus pmap creation for the machine's architecture.

    Full information about which processors use which maps, and when maps
    must be correct, flows from machine-independent code: the kernel tells
    the domain which CPU is executing ({!set_current_cpu}) and whether an
    invalidation is time-critical ([urgent]). *)

type t
(** A domain, bound to one {!Mach_hw.Machine.t}. *)

val create : Mach_hw.Machine.t -> t
(** [create machine] builds the domain for [machine]'s architecture and
    installs the MMU hook that maintains per-frame reference and modify
    bits. *)

val machine : t -> Mach_hw.Machine.t
(** The underlying machine. *)

val create_pmap : t -> Pmap.t
(** [create_pmap t] is [pmap_create]: a fresh, empty physical map. *)

val find_pmap : t -> asid:int -> Pmap.t option
(** [find_pmap t ~asid] is the live pmap with that asid, if any. *)

val live_pmaps : t -> Pmap.t list
(** All pmaps created and not yet destroyed. *)

val set_current_cpu : t -> int -> unit
(** [set_current_cpu t cpu] records the CPU on which kernel code is
    executing; subsequent pmap costs are charged to its clock and it
    initiates any TLB shootdowns. *)

val current_cpu : t -> int
(** The CPU recorded by {!set_current_cpu} (initially 0). *)

val set_on_first_touch : t -> (pfn:int -> unit) -> unit
(** [set_on_first_touch t f] arranges for [f ~pfn] to run whenever a
    frame's referenced bit transitions from clear to set (i.e. on the
    first access since the bit was last cleared), before the bit is
    set.  The VM layer uses this to observe the first touch of pages it
    mapped speculatively (burst faulting): such pages never re-fault, so
    the fault path cannot see their first use.  The hook must not charge
    cycles — it runs on the translation fast path. *)

(** {1 Flush batching}

    Machine-independent code can bracket a burst of pmap mutations so all
    their TLB shootdowns are delivered as one batched exchange (a single
    IPI round per target CPU) when the outermost {!end_batch} runs.
    Batches nest; urgency and strategy semantics are unchanged — only the
    number of exchanges shrinks, never the time at which consistency is
    restored. *)

val begin_batch : t -> unit
val end_batch : t -> unit
(** Raises [Invalid_argument] without a matching {!begin_batch}. *)

val batched : t -> (unit -> 'a) -> 'a
(** [batched t f] runs [f] inside a batch, closing it on exceptions. *)

val set_batching : t -> bool -> unit
(** [set_batching t false] disables accumulation: open batches collect
    nothing and every shootdown is its own exchange.  Benchmarks use this
    to measure the unbatched baseline.  Default: enabled. *)

val batching : t -> bool

(** {1 Page-level operations (Table 3-3)} *)

val remove_all : t -> pfn:int -> urgent:bool -> unit
(** [pmap_remove_all]: remove the physical page from all maps.  Used by
    pageout; with [urgent:true] the invalidations are propagated with
    interrupts no matter the machine's shootdown strategy (the paper's
    case 1), otherwise the configured strategy applies. *)

val copy_on_write : t -> pfn:int -> unit
(** [pmap_copy_on_write]: remove write access to the page in all maps.
    Used by virtual copy of shared pages. *)

val is_modified : t -> pfn:int -> bool
(** Whether the frame was written since the last {!clear_modified}.  The
    simulated MMU sets the bit on every translated write. *)

val is_referenced : t -> pfn:int -> bool
(** Whether the frame was touched since the last {!clear_referenced}. *)

val clear_modified : t -> pfn:int -> unit
val clear_referenced : t -> pfn:int -> unit

val mapping_count : t -> pfn:int -> int
(** How many virtual mappings of the frame exist right now. *)

val mappings_of : t -> pfn:int -> (int * int) list
(** [mappings_of t ~pfn] lists the (asid, virtual page) pairs currently
    mapping the frame; used by consistency checkers. *)

val zero_page : t -> pfn:int -> unit
(** [pmap_zero_page]: zero-fill the frame, charging the architecture's
    copy cost to the current CPU. *)

val copy_page : t -> src:int -> dst:int -> unit
(** [pmap_copy_page]: copy frame [src] to frame [dst], charging cost. *)

(** {1 Accounting} *)

val shared_map_bytes : t -> int
(** Bytes of hardware mapping structures shared by all pmaps (the RT PC
    inverted table, SUN 3 mapping RAM); 0 where tables are per-pmap. *)

val total_map_bytes : t -> int
(** [shared_map_bytes] plus the sum of live pmaps' [map_bytes]. *)

val total_stats : t -> Pmap.stats
(** Sum of all live pmaps' counters. *)
