open Mach_hw

type t = {
  ctx : Backend.ctx;
  factory : Backend.factory;
  registry : (int, Pmap.t) Hashtbl.t;
  mutable on_first_touch : (pfn:int -> unit) option;
      (* fired when a frame's referenced bit transitions clear -> set;
         the VM layer uses it to observe the first touch of pages it
         mapped speculatively (burst faulting).  Charges nothing. *)
}

let create machine =
  let ctx = Backend.create machine in
  let factory =
    match (Machine.arch machine).Arch.kind with
    | Arch.Vax -> Pmap_vax.make_domain ctx
    | Arch.Rt_pc -> Pmap_rtpc.make_domain ctx
    | Arch.Sun3 -> Pmap_sun3.make_domain ctx
    | Arch.Ns32082 -> Pmap_ns32082.make_domain ctx
    | Arch.Tlb_only -> Pmap_tlbonly.make_domain ctx
  in
  let t =
    { ctx; factory; registry = Hashtbl.create 16; on_first_touch = None }
  in
  Machine.set_on_translated machine (fun ~pfn ~write ->
      let pv = ctx.Backend.pv in
      (match t.on_first_touch with
       | Some f when not (Pv.is_referenced pv ~pfn) -> f ~pfn
       | _ -> ());
      Pv.set_referenced pv ~pfn;
      if write then Pv.set_modified pv ~pfn);
  t

let set_on_first_touch t f = t.on_first_touch <- Some f

let machine t = t.ctx.Backend.machine

(* Wrap the mutation entry points with trace emission and cycle
   attribution.  Instrumenting here covers every architecture backend at
   once; the tracer is read through the machine on each call so enabling
   tracing mid-run works.  When tracing is off each wrapped call pays
   one branch.  The [Pmap] attribution frame brackets the backend call
   itself, so map-update costs land in the Pmap category wherever they
   were triggered from — except TLB-consistency work, which the machine
   charges as [Shootdown_ipi] explicitly. *)
let instrument t (p : Pmap.t) =
  let m = t.ctx.Backend.machine in
  let asid = p.Pmap.asid in
  let note ev =
    let tr = Machine.tracer m in
    if Mach_obs.Obs.enabled tr then begin
      let cpu = t.ctx.Backend.cur_cpu in
      Mach_obs.Obs.record tr ~ts:(Machine.cycles m ~cpu) ~cpu ev
    end
  in
  let in_pmap f =
    Machine.with_category m ~cpu:t.ctx.Backend.cur_cpu Mach_obs.Obs.Pmap f
  in
  { p with
    Pmap.enter =
      (fun ~va ~pfn ~prot ~wired ->
         in_pmap (fun () -> p.Pmap.enter ~va ~pfn ~prot ~wired);
         note (Mach_obs.Obs.Pmap_enter { asid; va; pfn }));
    remove =
      (fun ~start_va ~end_va ->
         in_pmap (fun () -> p.Pmap.remove ~start_va ~end_va);
         note (Mach_obs.Obs.Pmap_remove { asid; start_va; end_va }));
    protect =
      (fun ~start_va ~end_va ~prot ->
         in_pmap (fun () -> p.Pmap.protect ~start_va ~end_va ~prot);
         note (Mach_obs.Obs.Pmap_protect { asid; start_va; end_va })) }

let create_pmap t =
  let p = instrument t (t.factory.Backend.new_pmap ()) in
  (* Wrap with reference counting (pmap_reference/pmap_destroy of Table
     3-3) and keep the registry in step with the pmap's lifetime. *)
  let refs = ref 1 in
  let reference () = incr refs in
  let destroy () =
    assert (!refs > 0);
    decr refs;
    if !refs = 0 then begin
      p.Pmap.destroy ();
      Hashtbl.remove t.registry p.Pmap.asid
    end
  in
  let p = { p with Pmap.reference; destroy } in
  Hashtbl.add t.registry p.Pmap.asid p;
  p

let find_pmap t ~asid = Hashtbl.find_opt t.registry asid

let live_pmaps t = Hashtbl.fold (fun _ p acc -> p :: acc) t.registry []

let set_current_cpu t cpu = t.ctx.Backend.cur_cpu <- cpu

let current_cpu t = t.ctx.Backend.cur_cpu

let page_size t = Backend.page_size t.ctx

(* Apply [f pmap page_va] for every current mapping of [pfn]. *)
let for_all_mappings t ~pfn f =
  let page = page_size t in
  List.iter
    (fun { Pv.pv_asid; pv_vpn } ->
       match find_pmap t ~asid:pv_asid with
       | Some p -> f p (pv_vpn * page)
       | None -> assert false)
    (Pv.mappings t.ctx.Backend.pv ~pfn)

let begin_batch t = Backend.begin_batch t.ctx
let end_batch t = Backend.end_batch t.ctx
let batched t f = Backend.batched t.ctx f
let set_batching t on = Backend.set_batching t.ctx on
let batching t = Backend.batching t.ctx

(* The batch wraps every per-mapping removal, so a page mapped into many
   address spaces costs one consistency exchange rather than one per
   mapping.  Urgency is captured per accumulated flush, so restoring
   [urgent_mode] before the batch flushes is safe. *)
let remove_all t ~pfn ~urgent =
  let saved = t.ctx.Backend.urgent_mode in
  t.ctx.Backend.urgent_mode <- urgent;
  Fun.protect
    ~finally:(fun () -> t.ctx.Backend.urgent_mode <- saved)
    (fun () ->
       batched t (fun () ->
           for_all_mappings t ~pfn (fun p va ->
               p.Pmap.remove ~start_va:va ~end_va:(va + page_size t))))

let copy_on_write t ~pfn =
  let read_only_mask = Prot.remove_write Prot.all in
  batched t (fun () ->
      for_all_mappings t ~pfn (fun p va ->
          p.Pmap.protect ~start_va:va ~end_va:(va + page_size t)
            ~prot:read_only_mask))

let is_modified t ~pfn = Pv.is_modified t.ctx.Backend.pv ~pfn
let is_referenced t ~pfn = Pv.is_referenced t.ctx.Backend.pv ~pfn
let clear_modified t ~pfn = Pv.clear_modified t.ctx.Backend.pv ~pfn
let clear_referenced t ~pfn = Pv.clear_referenced t.ctx.Backend.pv ~pfn

let mapping_count t ~pfn = Pv.mapping_count t.ctx.Backend.pv ~pfn

let mappings_of t ~pfn =
  List.map
    (fun { Pv.pv_asid; pv_vpn } -> (pv_asid, pv_vpn))
    (Pv.mappings t.ctx.Backend.pv ~pfn)

let zero_page t ~pfn =
  Backend.charge t.ctx (Backend.move_cost t.ctx (page_size t));
  Phys_mem.zero_frame (Machine.phys (machine t)) pfn

let copy_page t ~src ~dst =
  Backend.charge t.ctx (Backend.move_cost t.ctx (page_size t));
  Phys_mem.copy_frame (Machine.phys (machine t)) ~src ~dst

let shared_map_bytes t = t.factory.Backend.shared_map_bytes ()

let total_map_bytes t =
  Hashtbl.fold
    (fun _ p acc -> acc + p.Pmap.map_bytes ())
    t.registry (shared_map_bytes t)

let total_stats t =
  let acc = Pmap.fresh_stats () in
  Hashtbl.iter
    (fun _ p ->
       let s = p.Pmap.stats in
       acc.Pmap.enters <- acc.Pmap.enters + s.Pmap.enters;
       acc.Pmap.removals <- acc.Pmap.removals + s.Pmap.removals;
       acc.Pmap.protect_ops <- acc.Pmap.protect_ops + s.Pmap.protect_ops;
       acc.Pmap.alias_evictions <-
         acc.Pmap.alias_evictions + s.Pmap.alias_evictions;
       acc.Pmap.context_steals <-
         acc.Pmap.context_steals + s.Pmap.context_steals;
       acc.Pmap.cache_drops <- acc.Pmap.cache_drops + s.Pmap.cache_drops)
    t.registry;
  acc
