(* Shared context for pmap implementations within one domain.

   Holds what every architecture's pmap module needs: the machine (for
   cycle charging and TLB shootdowns), the physical-to-virtual tracking,
   asid allocation, and the CPU currently executing kernel code (set by the
   kernel on every entry, so pmap costs land on the right clock). *)

open Mach_hw

(* Accumulator for flush batching.  While a batch is open (depth > 0),
   page and asid shootdowns are collected here instead of being issued
   one exchange at a time; the outermost [end_batch] turns the lot into
   a single [Machine.shootdown_batch] — one IPI round per target CPU for
   the whole operation. *)
type batch = {
  mutable depth : int;
  page_vpns : (int, int list ref) Hashtbl.t;  (* asid -> vpns collected *)
  whole_asids : (int, unit) Hashtbl.t;        (* asids flushed wholesale *)
  b_targets : bool array;                     (* union of presences *)
  mutable b_urgent : bool;                    (* OR of urgency at collect *)
}

type ctx = {
  machine : Machine.t;
  pv : Pv.t;
  mutable next_asid : int;
  mutable cur_cpu : int;
  mutable urgent_mode : bool;
      (* Set by the domain around pageout-style operations: all shootdowns
         become time-critical (case 1 of Section 5.2) regardless of the
         machine's configured strategy. *)
  mutable batching : bool;
      (* When false, open batches accumulate nothing and every shootdown
         goes out as its own exchange; the Section 5.2 benchmark uses this
         to measure the unbatched baseline. *)
  batch : batch;
}

(* Which CPUs a pmap is active on now, and which may still cache its
   translations (shootdown targets). *)
type presence = { active : bool array; ran_on : bool array }

let create machine =
  let frames = Phys_mem.frame_count (Machine.phys machine) in
  { machine; pv = Pv.create ~frames; next_asid = 1; cur_cpu = 0;
    urgent_mode = false; batching = true;
    batch =
      { depth = 0; page_vpns = Hashtbl.create 8;
        whole_asids = Hashtbl.create 8;
        b_targets = Array.make (Machine.cpu_count machine) false;
        b_urgent = false } }

let arch ctx = Machine.arch ctx.machine
let page_size ctx = (arch ctx).Arch.hw_page_size
let cost ctx = (arch ctx).Arch.cost
let charge ctx c = Machine.charge ctx.machine ~cpu:ctx.cur_cpu c

let fresh_asid ctx =
  let a = ctx.next_asid in
  ctx.next_asid <- a + 1;
  a

let fresh_presence ctx =
  let n = Machine.cpu_count ctx.machine in
  { active = Array.make n false; ran_on = Array.make n false }

let shoot_targets p =
  let acc = ref [] in
  for i = Array.length p.ran_on - 1 downto 0 do
    if p.ran_on.(i) then acc := i :: !acc
  done;
  !acc

let shoot ctx p req ~urgent =
  Machine.shootdown ctx.machine ~initiator:ctx.cur_cpu
    ~targets:(shoot_targets p) req ~urgent:(urgent || ctx.urgent_mode)

(* --- Flush batching --------------------------------------------------- *)

(* Above this many pages, a batched range operation flushes the whole
   address space rather than shooting page by page. *)
let flush_whole_space_threshold = 8

let set_batching ctx on = ctx.batching <- on
let batching ctx = ctx.batching

let accumulating ctx = ctx.batching && ctx.batch.depth > 0

let begin_batch ctx = ctx.batch.depth <- ctx.batch.depth + 1

let add_targets b p =
  Array.iteri (fun i on -> if on then b.b_targets.(i) <- true) p.ran_on

(* Turn one asid's collected pages into requests: dedupe, sort, coalesce
   adjacent pages into ranges; past the threshold flush the whole
   space. *)
let requests_of_asid ~asid vpns acc =
  let vpns = List.sort_uniq compare vpns in
  if List.length vpns > flush_whole_space_threshold then
    Machine.Flush_asid asid :: acc
  else
    let emit lo hi acc =
      if hi = lo + 1 then Machine.Flush_page { asid; vpn = lo } :: acc
      else Machine.Flush_range { asid; lo_vpn = lo; hi_vpn = hi } :: acc
    in
    let rec go lo hi acc = function
      | [] -> emit lo hi acc
      | v :: rest ->
        if v = hi then go lo (hi + 1) acc rest
        else go v (v + 1) (emit lo hi acc) rest
    in
    match vpns with
    | [] -> acc
    | v :: rest -> go v (v + 1) acc rest

let flush_batch ctx =
  let b = ctx.batch in
  let reqs =
    Hashtbl.fold
      (fun asid vpns acc ->
         if Hashtbl.mem b.whole_asids asid then acc
         else requests_of_asid ~asid !vpns acc)
      b.page_vpns
      (Hashtbl.fold
         (fun asid () acc -> Machine.Flush_asid asid :: acc)
         b.whole_asids [])
  in
  let targets = ref [] in
  for i = Array.length b.b_targets - 1 downto 0 do
    if b.b_targets.(i) then targets := i :: !targets
  done;
  let urgent = b.b_urgent in
  Hashtbl.reset b.page_vpns;
  Hashtbl.reset b.whole_asids;
  Array.fill b.b_targets 0 (Array.length b.b_targets) false;
  b.b_urgent <- false;
  if reqs <> [] then
    Machine.shootdown_batch ctx.machine ~initiator:ctx.cur_cpu
      ~targets:!targets reqs ~urgent

let end_batch ctx =
  let b = ctx.batch in
  if b.depth <= 0 then invalid_arg "Backend.end_batch: no open batch";
  b.depth <- b.depth - 1;
  if b.depth = 0 then flush_batch ctx

(* Run [f ()] inside a batch, closing it even on exceptions. *)
let batched ctx f =
  begin_batch ctx;
  Fun.protect ~finally:(fun () -> end_batch ctx) f

let shoot_page ctx p ~asid ~vpn =
  if accumulating ctx then begin
    let b = ctx.batch in
    (match Hashtbl.find_opt b.page_vpns asid with
     | Some l -> l := vpn :: !l
     | None -> Hashtbl.add b.page_vpns asid (ref [ vpn ]));
    add_targets b p;
    if ctx.urgent_mode then b.b_urgent <- true
  end
  else shoot ctx p (Machine.Flush_page { asid; vpn }) ~urgent:false

let shoot_asid ctx p ~asid =
  if accumulating ctx then begin
    let b = ctx.batch in
    Hashtbl.replace b.whole_asids asid ();
    add_targets b p;
    if ctx.urgent_mode then b.b_urgent <- true
  end
  else shoot ctx p (Machine.Flush_asid asid) ~urgent:false

let activate ctx p tr ~cpu =
  p.active.(cpu) <- true;
  p.ran_on.(cpu) <- true;
  Machine.set_translator ctx.machine ~cpu (Some tr)

let deactivate ctx p tr ~cpu =
  p.active.(cpu) <- false;
  if Machine.active_asid ctx.machine ~cpu = Some tr.Translator.asid then
    Machine.set_translator ctx.machine ~cpu None

let pv_insert ctx ~pfn ~asid ~vpn =
  Pv.insert ctx.pv ~pfn { Pv.pv_asid = asid; pv_vpn = vpn }

let pv_remove ctx ~pfn ~asid ~vpn =
  Pv.remove ctx.pv ~pfn { Pv.pv_asid = asid; pv_vpn = vpn }

(* Charge for zeroing or copying [bytes] of memory. *)
let move_cost ctx bytes = ((bytes + 15) / 16) * (cost ctx).Arch.move_16b

(* What each architecture module hands the domain: a pmap constructor plus
   an accounting of hardware structures shared by all pmaps (the RT PC's
   single inverted page table, the SUN 3's context mapping RAM). *)
type factory = {
  new_pmap : unit -> Pmap.t;
  shared_map_bytes : unit -> int;
}
