open Mach_hw

type mapping = { m_pfn : int; m_prot : Prot.t; m_wired : bool }

type context = {
  c_index : int;
  mutable c_owner : int option; (* asid *)
  c_table : (int, mapping) Hashtbl.t; (* vpn -> mapping *)
  mutable c_stamp : int; (* LRU clock *)
}

(* What the context-stealing path needs to reach about a foreign pmap. *)
type owner = {
  o_presence : Backend.presence;
  o_stats : Pmap.stats;
  mutable o_context : context option;
}

let make_domain (ctx : Backend.ctx) =
  let arch = Backend.arch ctx in
  let n_contexts =
    match arch.Arch.contexts with Some n -> n | None -> 8
  in
  let page = Backend.page_size ctx in
  let contexts =
    Array.init n_contexts (fun i ->
        { c_index = i; c_owner = None; c_table = Hashtbl.create 64;
          c_stamp = 0 })
  in
  let clock = ref 0 in
  let owners : (int, owner) Hashtbl.t = Hashtbl.create 16 in

  let release_context c =
    match c.c_owner with
    | None -> ()
    | Some victim_asid ->
      let victim = Hashtbl.find owners victim_asid in
      (* Everything the victim had mapped is gone; it will fault the
         mappings back in when it next runs. *)
      Hashtbl.iter
        (fun vpn m ->
           Backend.pv_remove ctx ~pfn:m.m_pfn ~asid:victim_asid ~vpn;
           victim.o_stats.Pmap.removals <-
             victim.o_stats.Pmap.removals + 1)
        c.c_table;
      Backend.shoot ctx victim.o_presence
        (Machine.Flush_asid victim_asid) ~urgent:false;
      Hashtbl.reset c.c_table;
      c.c_owner <- None;
      victim.o_context <- None
  in

  let new_pmap () =
    let asid = Backend.fresh_asid ctx in
    let stats = Pmap.fresh_stats () in
    let presence = Backend.fresh_presence ctx in
    let me = { o_presence = presence; o_stats = stats; o_context = None } in
    Hashtbl.add owners asid me;

    (* Find this pmap's context, grabbing a free one or stealing the
       least-recently-used. *)
    let my_context () =
      match me.o_context with
      | Some c -> incr clock; c.c_stamp <- !clock; c
      | None ->
        let free =
          Array.to_seq contexts
          |> Seq.filter (fun c -> c.c_owner = None)
          |> fun s -> Seq.uncons s
        in
        let c =
          match free with
          | Some (c, _) -> c
          | None ->
            let lru =
              Array.fold_left
                (fun best c ->
                   match best with
                   | None -> Some c
                   | Some b -> if c.c_stamp < b.c_stamp then Some c else best)
                None contexts
            in
            (match lru with
             | Some c ->
               release_context c;
               stats.Pmap.context_steals <- stats.Pmap.context_steals + 1;
               c
             | None -> assert false)
        in
        Backend.charge ctx (Backend.cost ctx).Arch.context_switch;
        c.c_owner <- Some asid;
        me.o_context <- Some c;
        incr clock;
        c.c_stamp <- !clock;
        c
    in

    let enter ~va ~pfn ~prot ~wired =
      if va < 0 || va >= arch.Arch.user_va_limit then
        invalid_arg "pmap_enter: virtual address beyond hardware limit";
      let vpn = va / page in
      let c = my_context () in
      let had_mapping = Hashtbl.mem c.c_table vpn in
      (match Hashtbl.find_opt c.c_table vpn with
       | Some old when old.m_pfn <> pfn ->
         Backend.pv_remove ctx ~pfn:old.m_pfn ~asid ~vpn;
         stats.Pmap.removals <- stats.Pmap.removals + 1;
         Backend.pv_insert ctx ~pfn ~asid ~vpn
       | Some _ -> ()
       | None -> Backend.pv_insert ctx ~pfn ~asid ~vpn);
      Hashtbl.replace c.c_table vpn
        { m_pfn = pfn; m_prot = prot; m_wired = wired };
      Backend.charge ctx (Backend.cost ctx).Arch.pte_write;
      if had_mapping then Backend.shoot_page ctx presence ~asid ~vpn;
      stats.Pmap.enters <- stats.Pmap.enters + 1
    in

    (* This pmap's live mappings with vpn in [lo, hi); empty when it holds
       no context. *)
    let in_range lo hi =
      match me.o_context with
      | None -> []
      | Some c ->
        Hashtbl.fold
          (fun vpn m acc ->
             if vpn >= lo && vpn < hi then (vpn, m) :: acc else acc)
          c.c_table []
    in

    let drop vpn m =
      match me.o_context with
      | None -> assert false
      | Some c ->
        Hashtbl.remove c.c_table vpn;
        Backend.pv_remove ctx ~pfn:m.m_pfn ~asid ~vpn;
        Backend.charge ctx (Backend.cost ctx).Arch.pte_write;
        Backend.shoot_page ctx presence ~asid ~vpn;
        stats.Pmap.removals <- stats.Pmap.removals + 1
    in

    let range_bounds ~start_va ~end_va =
      (start_va / page, (end_va + page - 1) / page)
    in

    let remove ~start_va ~end_va =
      let lo, hi = range_bounds ~start_va ~end_va in
      Backend.batched ctx (fun () ->
          List.iter (fun (vpn, m) -> drop vpn m) (in_range lo hi))
    in

    let protect ~start_va ~end_va ~prot =
      stats.Pmap.protect_ops <- stats.Pmap.protect_ops + 1;
      let lo, hi = range_bounds ~start_va ~end_va in
      Backend.batched ctx (fun () ->
          List.iter
            (fun (vpn, m) ->
               match me.o_context with
               | None -> ()
               | Some c ->
                 Hashtbl.replace c.c_table vpn
                   { m with m_prot = Prot.inter m.m_prot prot };
                 Backend.charge ctx (Backend.cost ctx).Arch.pte_write;
                 Backend.shoot_page ctx presence ~asid ~vpn)
            (in_range lo hi))
    in

    let extract va =
      match me.o_context with
      | None -> None
      | Some c ->
        (match Hashtbl.find_opt c.c_table (va / page) with
         | Some m -> Some m.m_pfn
         | None -> None)
    in

    let lookup vpn =
      match me.o_context with
      | None -> Translator.Missing
      | Some c ->
        (match Hashtbl.find_opt c.c_table vpn with
         | Some m -> Translator.Mapped { pfn = m.m_pfn; prot = m.m_prot }
         | None -> Translator.Missing)
    in
    (* The mapping RAM *is* the translation path: no walk cost. *)
    let translator = { Translator.asid; lookup; walk_cost = 0 } in

    let activate ~cpu =
      ignore (my_context ());
      Backend.activate ctx presence translator ~cpu
    in

    let collect () =
      let victims =
        List.filter (fun (_, m) -> not m.m_wired) (in_range 0 max_int)
      in
      Backend.batched ctx (fun () ->
          List.iter (fun (vpn, m) -> drop vpn m) victims);
      stats.Pmap.cache_drops <-
        stats.Pmap.cache_drops + List.length victims
    in

    let destroy () =
      (match me.o_context with
       | Some c ->
         Hashtbl.iter
           (fun vpn m -> Backend.pv_remove ctx ~pfn:m.m_pfn ~asid ~vpn)
           c.c_table;
         Hashtbl.reset c.c_table;
         c.c_owner <- None;
         me.o_context <- None
       | None -> ());
      Hashtbl.remove owners asid
    in

    {
      Pmap.asid;
      (* real reference counting is installed by Pmap_domain *)
      reference = (fun () -> ());
      kind = Arch.Sun3;
      enter;
      remove;
      protect;
      extract;
      access_check = (fun va -> extract va <> None);
      activate;
      deactivate =
        (fun ~cpu -> Backend.deactivate ctx presence translator ~cpu);
      copy = None;
      pageable = None;
      resident_count =
        (fun () ->
           match me.o_context with
           | None -> 0
           | Some c -> Hashtbl.length c.c_table);
      map_bytes = (fun () -> 0);
      collect;
      destroy;
      stats;
    }
  in
  {
    Backend.new_pmap;
    (* Fixed mapping RAM: segment map plus page-map groups per context. *)
    shared_map_bytes = (fun () -> n_contexts * 48 * 1024);
  }
