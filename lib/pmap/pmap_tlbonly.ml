open Mach_hw

type mapping = { m_pfn : int; m_prot : Prot.t; m_wired : bool }

let make_domain (ctx : Backend.ctx) =
  let page = Backend.page_size ctx in
  let new_pmap () =
    let asid = Backend.fresh_asid ctx in
    let stats = Pmap.fresh_stats () in
    let presence = Backend.fresh_presence ctx in
    (* Software-only shadow of the TLB contents; never used to translate. *)
    let soft : (int, mapping) Hashtbl.t = Hashtbl.create 64 in
    let translator = Translator.never ~asid in

    let fill_active_tlbs vpn m =
      Array.iteri
        (fun cpu active ->
           if active then
             Machine.tlb_fill ctx.machine ~cpu
               { Tlb.asid; vpn; pfn = m.m_pfn; prot = m.m_prot })
        presence.Backend.active
    in

    let enter ~va ~pfn ~prot ~wired =
      if va < 0 then invalid_arg "pmap_enter: negative address";
      let vpn = va / page in
      let m = { m_pfn = pfn; m_prot = prot; m_wired = wired } in
      let had_mapping = Hashtbl.mem soft vpn in
      (match Hashtbl.find_opt soft vpn with
       | Some old when old.m_pfn <> pfn ->
         Backend.pv_remove ctx ~pfn:old.m_pfn ~asid ~vpn;
         stats.Pmap.removals <- stats.Pmap.removals + 1;
         Backend.pv_insert ctx ~pfn ~asid ~vpn
       | Some _ -> ()
       | None -> Backend.pv_insert ctx ~pfn ~asid ~vpn);
      Hashtbl.replace soft vpn m;
      (* The flush must land before the refill below, so bypass any open
         batch (whose flush would otherwise wipe the fresh entries at
         [end_batch] and fault the page straight back). *)
      if had_mapping then
        Backend.shoot ctx presence (Machine.Flush_page { asid; vpn })
          ~urgent:false;
      fill_active_tlbs vpn m;
      Backend.charge ctx (Backend.cost ctx).Arch.pte_write;
      stats.Pmap.enters <- stats.Pmap.enters + 1
    in

    let in_range lo hi =
      Hashtbl.fold
        (fun vpn m acc ->
           if vpn >= lo && vpn < hi then (vpn, m) :: acc else acc)
        soft []
    in

    let drop vpn m =
      Hashtbl.remove soft vpn;
      Backend.pv_remove ctx ~pfn:m.m_pfn ~asid ~vpn;
      Backend.shoot_page ctx presence ~asid ~vpn;
      stats.Pmap.removals <- stats.Pmap.removals + 1
    in

    let range_bounds ~start_va ~end_va =
      (start_va / page, (end_va + page - 1) / page)
    in

    let remove ~start_va ~end_va =
      let lo, hi = range_bounds ~start_va ~end_va in
      Backend.batched ctx (fun () ->
          List.iter (fun (vpn, m) -> drop vpn m) (in_range lo hi))
    in

    let protect ~start_va ~end_va ~prot =
      stats.Pmap.protect_ops <- stats.Pmap.protect_ops + 1;
      let lo, hi = range_bounds ~start_va ~end_va in
      let updated =
        List.map
          (fun (vpn, m) ->
             let m = { m with m_prot = Prot.inter m.m_prot prot } in
             Hashtbl.replace soft vpn m;
             (vpn, m))
          (in_range lo hi)
      in
      Backend.batched ctx (fun () ->
          List.iter
            (fun (vpn, _) -> Backend.shoot_page ctx presence ~asid ~vpn)
            updated);
      (* Refill only after the batched flush has landed; refilling inside
         the batch would hand [end_batch] fresh entries to wipe. *)
      List.iter (fun (vpn, m) -> fill_active_tlbs vpn m) updated
    in

    let extract va =
      match Hashtbl.find_opt soft (va / page) with
      | Some m -> Some m.m_pfn
      | None -> None
    in

    let collect () =
      let victims =
        List.filter (fun (_, m) -> not m.m_wired) (in_range 0 max_int)
      in
      Backend.batched ctx (fun () ->
          List.iter (fun (vpn, m) -> drop vpn m) victims);
      stats.Pmap.cache_drops <-
        stats.Pmap.cache_drops + List.length victims
    in

    let destroy () =
      Backend.batched ctx (fun () ->
          List.iter (fun (vpn, m) -> drop vpn m) (in_range 0 max_int));
      Hashtbl.reset soft
    in

    {
      Pmap.asid;
      (* real reference counting is installed by Pmap_domain *)
      reference = (fun () -> ());
      kind = Arch.Tlb_only;
      enter;
      remove;
      protect;
      extract;
      access_check = (fun va -> extract va <> None);
      activate = (fun ~cpu -> Backend.activate ctx presence translator ~cpu);
      deactivate =
        (fun ~cpu -> Backend.deactivate ctx presence translator ~cpu);
      copy = None;
      pageable = None;
      resident_count = (fun () -> Hashtbl.length soft);
      map_bytes = (fun () -> 0);
      collect;
      destroy;
      stats;
    }
  in
  { Backend.new_pmap; shared_map_bytes = (fun () -> 0) }
