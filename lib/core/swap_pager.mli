(** The default pager.

    Memory with no pager is automatically zero filled, and page-out of
    anonymous memory goes to a default pager (Section 3.3; Mach's used
    4.3bsd file systems, eliminating separate paging partitions).  Here
    the backing store is an in-memory table whose transfers are charged as
    disk I/O, so evicted anonymous pages survive and cost what swap
    costs.

    Capacity is finite when the owning {!Vm_sys} configures a swap pool
    ([Vm_sys.set_swap_capacity]): every store commits new chunks against
    the shared pool and answers [Write_no_space] — all or nothing, no
    partial scatter — when a write does not fit. *)

val make : Vm_sys.t -> name:string -> Types.pager
(** [make sys ~name] is a fresh default-pager instance for one memory
    object.  Reads of never-written offsets answer [Data_unavailable]
    (zero fill). *)

val stored_bytes : Types.pager -> int
(** [stored_bytes p] is how much backing store [p] currently holds; 0 for
    pagers not made by this module.  Used by tests. *)

val release : Types.pager -> unit
(** [release p] drops [p]'s swap store and credits its chunks back to
    the shared pool.  Keyed by pager id (which decorators preserve), and
    a no-op for pagers not made by this module, so object termination
    calls it unconditionally. *)
