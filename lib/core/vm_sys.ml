open Mach_hw
open Mach_pmap

type stats = {
  mutable faults : int;
  mutable zero_fills : int;
  mutable cow_copies : int;
  mutable pager_reads : int;
  mutable pageouts : int;
  mutable reactivations : int;
  mutable shadows_created : int;
  mutable collapses : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable fast_reloads : int;
  mutable rmw_bug_upgrades : int;
  mutable pager_retries : int;
  mutable pager_failures : int;
  mutable pager_deaths : int;
  mutable rescued_pages : int;
  mutable pageout_failures : int;
  mutable memory_errors : int;
  mutable prefetch_issued : int;
  mutable prefetch_hits : int;
  mutable prefetch_wasted : int;
  mutable clustered_pageouts : int;
  mutable lock_stalls : int;
  mutable lock_stall_cycles : int;
  mutable burst_faults : int;
  mutable burst_mapped : int;
}

type t = {
  machine : Machine.t;
  domain : Pmap_domain.t;
  resident : Resident.t;
  page_size : int;
  mutable object_cache : Types.obj list;
  mutable object_cache_limit : int;
  mutable cache_enabled : bool;
  mutable collapse_enabled : bool;
  mutable pmap_prewarm_on_fork : bool;
  mutable pager_objects : (int, Types.obj) Hashtbl.t;
  mutable reclaim : (t -> wanted:int -> unit) option;
  mutable free_target : int;
  mutable pager_retry_limit : int;
  mutable pager_backoff_cycles : int;
  mutable pager_death_threshold : int;
  mutable pager_decorator : (Types.pager -> Types.pager) option;
  mutable cluster_max : int;
      (* upper bound on the read-ahead / pageout cluster, in pages;
         1 disables clustering entirely *)
  mutable burst_max : int;
      (* upper bound on pages a resident fault maps in one pass (demand
         page included); 1 maps only the demand page, 0 bypasses the
         burst machinery entirely (the pre-burst fault path) *)
  burst_pending : (int, Types.page) Hashtbl.t;
      (* pfn -> burst-mapped page whose first touch has not happened
         yet; resolved by the pmap layer's first-touch hook so the
         touch counts as a prefetch hit even though it never faults *)
  stats : stats;
}

exception Out_of_memory

let fresh_stats () =
  { faults = 0; zero_fills = 0; cow_copies = 0; pager_reads = 0;
    pageouts = 0; reactivations = 0; shadows_created = 0; collapses = 0;
    cache_hits = 0; cache_misses = 0; fast_reloads = 0;
    rmw_bug_upgrades = 0; pager_retries = 0; pager_failures = 0;
    pager_deaths = 0; rescued_pages = 0; pageout_failures = 0;
    memory_errors = 0; prefetch_issued = 0; prefetch_hits = 0;
    prefetch_wasted = 0; clustered_pageouts = 0;
    lock_stalls = 0; lock_stall_cycles = 0;
    burst_faults = 0; burst_mapped = 0 }

(* --- Burst-mapped page tracking --------------------------------------

   Burst faulting maps resident neighbour pages that were never demanded,
   so their first use cannot be seen by the fault path (they no longer
   fault).  Each burst-mapped page is registered here by frame number and
   its referenced bits are cleared; the pmap layer's first-touch hook
   reports the clear->set transition, at which point the touch counts as
   a prefetch hit and the page is promoted like any other prefetch hit.
   Pure bookkeeping: none of this charges cycles. *)

let burst_register t p =
  let m = Resident.multiple t.resident in
  for i = 0 to m - 1 do
    Hashtbl.replace t.burst_pending (p.Types.pfn + i) p
  done

let burst_forget t p =
  let m = Resident.multiple t.resident in
  for i = 0 to m - 1 do
    Hashtbl.remove t.burst_pending (p.Types.pfn + i)
  done

let note_first_touch t ~pfn =
  match Hashtbl.find_opt t.burst_pending pfn with
  | None -> ()
  | Some p ->
    burst_forget t p;
    if p.Types.pg_prefetched then begin
      p.Types.pg_prefetched <- false;
      t.stats.prefetch_hits <- t.stats.prefetch_hits + 1
    end;
    if p.Types.pg_queue = Types.Q_inactive && p.Types.pg_wire_count = 0 then
      Resident.enqueue t.resident p Types.Q_active

let create ~machine ~domain ~page_multiple ?(object_cache_limit = 64) () =
  let arch = Machine.arch machine in
  let frame_limit =
    match arch.Arch.phys_limit with
    | None -> max_int
    | Some bytes -> bytes / arch.Arch.hw_page_size
  in
  let resident =
    Resident.create ~phys:(Machine.phys machine) ~multiple:page_multiple
      ~frame_limit ()
  in
  let total = Resident.total_pages resident in
  let t = {
    machine;
    domain;
    resident;
    page_size = Resident.page_size resident;
    object_cache = [];
    object_cache_limit;
    cache_enabled = true;
    collapse_enabled = true;
    pmap_prewarm_on_fork = false;
    pager_objects = Hashtbl.create 64;
    reclaim = None;
    free_target = max 4 (total / 16);
    pager_retry_limit = 3;
    pager_backoff_cycles = 500;
    pager_death_threshold = 3;
    pager_decorator = None;
    cluster_max = 8;
    burst_max = 8;
    burst_pending = Hashtbl.create 64;
    stats = fresh_stats ();
  } in
  Pmap_domain.set_on_first_touch domain (fun ~pfn -> note_first_touch t ~pfn);
  t

let current_cpu t = Pmap_domain.current_cpu t.domain

let charge t c = Machine.charge t.machine ~cpu:(current_cpu t) c

let charge_cat t cat c =
  Machine.charge_category t.machine ~cpu:(current_cpu t) cat c

let with_cat t cat f =
  Machine.with_category t.machine ~cpu:(current_cpu t) cat f

let tracer t = Machine.tracer t.machine

let now t = Machine.cycles t.machine ~cpu:(current_cpu t)

let emit t ev =
  let tr = tracer t in
  if Mach_obs.Obs.enabled tr then begin
    let cpu = current_cpu t in
    Mach_obs.Obs.record tr ~ts:(Machine.cycles t.machine ~cpu) ~cpu ev
  end

let cost t = (Machine.arch t.machine).Arch.cost

let grab_page t =
  let try_reclaim wanted =
    match t.reclaim with
    | None -> ()
    | Some f -> f t ~wanted
  in
  if Resident.free_count t.resident < t.free_target then
    try_reclaim (t.free_target - Resident.free_count t.resident);
  match Resident.alloc t.resident with
  | Some p -> p
  | None ->
    try_reclaim 1;
    (match Resident.alloc t.resident with
     | Some p -> p
     | None -> raise Out_of_memory)
