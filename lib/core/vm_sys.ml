open Mach_hw
open Mach_pmap

type stats = {
  mutable faults : int;
  mutable zero_fills : int;
  mutable cow_copies : int;
  mutable pager_reads : int;
  mutable pageouts : int;
  mutable reactivations : int;
  mutable shadows_created : int;
  mutable collapses : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable fast_reloads : int;
  mutable rmw_bug_upgrades : int;
  mutable pager_retries : int;
  mutable pager_failures : int;
  mutable pager_deaths : int;
  mutable rescued_pages : int;
  mutable pageout_failures : int;
  mutable memory_errors : int;
  mutable prefetch_issued : int;
  mutable prefetch_hits : int;
  mutable prefetch_wasted : int;
  mutable clustered_pageouts : int;
  mutable lock_stalls : int;
  mutable lock_stall_cycles : int;
  mutable burst_faults : int;
  mutable burst_mapped : int;
  mutable alloc_waits : int;
  mutable alloc_wait_cycles : int;
  mutable swap_full_failures : int;
  mutable oom_kills : int;
  mutable stream_hits : int;
  mutable stream_resets : int;
  mutable free_behind_pages : int;
}

(* A task the out-of-memory policy may kill.  Registered by Task.create
   through closures so this module stays below Task in the dependency
   order; the ids are the task's, the map id identifies the address map
   so the task faulting right now can be exempted (killing it would pull
   the map out from under its own in-progress fault). *)
type oom_candidate = {
  oc_id : int;
  oc_name : string;
  oc_map_id : int;
  oc_resident : unit -> int;   (* anonymous resident pages right now *)
  oc_kill : unit -> unit;      (* reclaim everything and mark the task *)
}

type t = {
  machine : Machine.t;
  domain : Pmap_domain.t;
  resident : Resident.t;
  page_size : int;
  mutable object_cache : Types.obj list;
  mutable object_cache_limit : int;
  mutable cache_enabled : bool;
  mutable collapse_enabled : bool;
  mutable pmap_prewarm_on_fork : bool;
  mutable pager_objects : (int, Types.obj) Hashtbl.t;
  mutable reclaim : (t -> wanted:int -> unit) option;
  mutable free_target : int;
  mutable free_min : int;
      (* below this many free pages the system is under pressure:
         allocations start waiting on the daemon instead of merely
         triggering it *)
  mutable free_reserved : int;
      (* hard floor: only the pageout/cleaning path ([grab_page
         ~reserve:true]) may allocate out of the last [free_reserved]
         pages, so cleaning never deadlocks on needing a page *)
  mutable alloc_backoff_cycles : int;
      (* cycles one backpressure wait on the pageout daemon charges *)
  mutable pageout_requeue_limit : int;
      (* dirty-page requeues after failed writes before the daemon
         escalates to the pressure state instead of spinning *)
  mutable swap_capacity : int option;
      (* bytes of backing store the swap pool may commit; [None] is
         unbounded (the pre-pressure behaviour) *)
  mutable swap_used : int;     (* bytes currently committed to swap *)
  mutable mem_pressure : bool;
      (* set when pageout cannot make progress (swap full, or a page
         exceeded the requeue limit); cleared when a pageout write
         succeeds again or an OOM kill frees memory *)
  mutable oom_candidates : oom_candidate list;
  mutable oom_exempt_map : int option;
      (* map id currently being faulted on; its task is never selected *)
  mutable pager_retry_limit : int;
  mutable pager_backoff_cycles : int;
  mutable pager_death_threshold : int;
  mutable pager_decorator : (Types.pager -> Types.pager) option;
  mutable cluster_max : int;
      (* upper bound on the read-ahead / pageout cluster, in pages;
         1 disables clustering entirely *)
  mutable stream_slots : int;
      (* concurrent read-ahead streams tracked per object; 1 is the
         legacy single shared cursor *)
  mutable free_behind_min : int;
      (* deactivate the pages behind a stream's cursor once its window
         has ramped to at least this many pages; 0 disables free-behind
         entirely (the default: streaming never touches the queues) *)
  mutable stream_clock : int;
      (* monotonic last-use stamp source for stream-slot LRU; not the
         cycle clock, so [Machine.reset_clocks] cannot scramble it *)
  mutable burst_max : int;
      (* upper bound on pages a resident fault maps in one pass (demand
         page included); 1 maps only the demand page, 0 bypasses the
         burst machinery entirely (the pre-burst fault path) *)
  burst_pending : (int, Types.page) Hashtbl.t;
      (* pfn -> burst-mapped page whose first touch has not happened
         yet; resolved by the pmap layer's first-touch hook so the
         touch counts as a prefetch hit even though it never faults *)
  stats : stats;
}

exception Out_of_memory

let fresh_stats () =
  { faults = 0; zero_fills = 0; cow_copies = 0; pager_reads = 0;
    pageouts = 0; reactivations = 0; shadows_created = 0; collapses = 0;
    cache_hits = 0; cache_misses = 0; fast_reloads = 0;
    rmw_bug_upgrades = 0; pager_retries = 0; pager_failures = 0;
    pager_deaths = 0; rescued_pages = 0; pageout_failures = 0;
    memory_errors = 0; prefetch_issued = 0; prefetch_hits = 0;
    prefetch_wasted = 0; clustered_pageouts = 0;
    lock_stalls = 0; lock_stall_cycles = 0;
    burst_faults = 0; burst_mapped = 0;
    alloc_waits = 0; alloc_wait_cycles = 0;
    swap_full_failures = 0; oom_kills = 0;
    stream_hits = 0; stream_resets = 0; free_behind_pages = 0 }

(* --- Burst-mapped page tracking --------------------------------------

   Burst faulting maps resident neighbour pages that were never demanded,
   so their first use cannot be seen by the fault path (they no longer
   fault).  Each burst-mapped page is registered here by frame number and
   its referenced bits are cleared; the pmap layer's first-touch hook
   reports the clear->set transition, at which point the touch counts as
   a prefetch hit and the page is promoted like any other prefetch hit.
   Pure bookkeeping: none of this charges cycles. *)

let burst_register t p =
  let m = Resident.multiple t.resident in
  for i = 0 to m - 1 do
    Hashtbl.replace t.burst_pending (p.Types.pfn + i) p
  done

let burst_forget t p =
  let m = Resident.multiple t.resident in
  for i = 0 to m - 1 do
    Hashtbl.remove t.burst_pending (p.Types.pfn + i)
  done

let note_first_touch t ~pfn =
  match Hashtbl.find_opt t.burst_pending pfn with
  | None -> ()
  | Some p ->
    burst_forget t p;
    if p.Types.pg_prefetched then begin
      p.Types.pg_prefetched <- false;
      t.stats.prefetch_hits <- t.stats.prefetch_hits + 1
    end;
    if p.Types.pg_queue = Types.Q_inactive && p.Types.pg_wire_count = 0 then
      Resident.enqueue t.resident p Types.Q_active

let create ~machine ~domain ~page_multiple ?(object_cache_limit = 64) () =
  let arch = Machine.arch machine in
  let frame_limit =
    match arch.Arch.phys_limit with
    | None -> max_int
    | Some bytes -> bytes / arch.Arch.hw_page_size
  in
  let resident =
    Resident.create ~phys:(Machine.phys machine) ~multiple:page_multiple
      ~frame_limit ()
  in
  let total = Resident.total_pages resident in
  let t = {
    machine;
    domain;
    resident;
    page_size = Resident.page_size resident;
    object_cache = [];
    object_cache_limit;
    cache_enabled = true;
    collapse_enabled = true;
    pmap_prewarm_on_fork = false;
    pager_objects = Hashtbl.create 64;
    reclaim = None;
    free_target = max 4 (total / 16);
    free_min = max 2 (total / 32);
    free_reserved = max 2 (total / 64);
    alloc_backoff_cycles = 2000;
    pageout_requeue_limit = 3;
    swap_capacity = None;
    swap_used = 0;
    mem_pressure = false;
    oom_candidates = [];
    oom_exempt_map = None;
    pager_retry_limit = 3;
    pager_backoff_cycles = 500;
    pager_death_threshold = 3;
    pager_decorator = None;
    cluster_max = 8;
    stream_slots = 8;
    free_behind_min = 0;
    stream_clock = 0;
    burst_max = 8;
    burst_pending = Hashtbl.create 64;
    stats = fresh_stats ();
  } in
  Pmap_domain.set_on_first_touch domain (fun ~pfn -> note_first_touch t ~pfn);
  (* Simulation services for the page allocator: virtual time, queue-lock
     charges (stalls land in the same [lock_stalls] counters and
     [Lock_wait] category as memory-object locks, with obj = -1 marking
     an allocator queue), clock-reset epochs, and steal tracing.  The
     allocator's own counters reset with the clocks. *)
  Resident.set_hooks resident
    { Resident.hk_now = (fun ~cpu -> Machine.cycles machine ~cpu);
      hk_charge = (fun ~cpu n -> Machine.charge machine ~cpu n);
      hk_stall =
        (fun ~cpu n ->
           t.stats.lock_stalls <- t.stats.lock_stalls + 1;
           t.stats.lock_stall_cycles <- t.stats.lock_stall_cycles + n;
           Machine.lock_stall machine ~cpu n;
           let tr = Machine.tracer machine in
           if Mach_obs.Obs.enabled tr then
             Mach_obs.Obs.record tr ~ts:(Machine.cycles machine ~cpu) ~cpu
               (Mach_obs.Obs.Lock_stall { obj = -1; cycles = n }));
      hk_epoch = (fun () -> Machine.reset_epoch machine);
      hk_steal =
        (fun ~cpu ~victim ~page ->
           let tr = Machine.tracer machine in
           if Mach_obs.Obs.enabled tr then
             Mach_obs.Obs.record tr ~ts:(Machine.cycles machine ~cpu) ~cpu
               (Mach_obs.Obs.Page_steal { victim; pfn = page.Types.pfn })) };
  Machine.add_reset_hook machine (fun () -> Resident.reset_counters resident);
  t

(* Rebuild the page allocator to match the machine's topology: NUMA
   domains from [Machine.numa_domains], a magazine of [cache] pages per
   CPU, [colors] colored queues per domain.  Per-domain borrow
   thresholds re-derive from [free_min]: a domain is poor below its
   equal share. *)
let configure_allocator ?colors ?cache ?refill t =
  let domains = Machine.numa_domains t.machine in
  Resident.configure t.resident ?colors ~domains
    ~cpus:(Machine.cpu_count t.machine) ?cache ?refill ();
  Resident.set_free_min_share t.resident
    (if domains > 1 then max 1 (t.free_min / domains) else 0)

(* Declare or clear memory pressure.  Declaring it flushes the per-CPU
   magazines back to the shared queues: pages cached for one CPU must
   not strand below [free_min] while the daemon or another CPU's
   backpressure wait starves. *)
let set_mem_pressure t on =
  if on && not t.mem_pressure then Resident.drain_caches t.resident;
  t.mem_pressure <- on

let current_cpu t = Pmap_domain.current_cpu t.domain

let charge t c = Machine.charge t.machine ~cpu:(current_cpu t) c

let charge_cat t cat c =
  Machine.charge_category t.machine ~cpu:(current_cpu t) cat c

let with_cat t cat f =
  Machine.with_category t.machine ~cpu:(current_cpu t) cat f

let tracer t = Machine.tracer t.machine

let now t = Machine.cycles t.machine ~cpu:(current_cpu t)

let emit t ev =
  let tr = tracer t in
  if Mach_obs.Obs.enabled tr then begin
    let cpu = current_cpu t in
    Mach_obs.Obs.record tr ~ts:(Machine.cycles t.machine ~cpu) ~cpu ev
  end

let cost t = (Machine.arch t.machine).Arch.cost

(* --- Swap pool accounting --------------------------------------------

   One shared pool models the paging partition: every Swap_pager (the
   daemon's default pagers, rescue pagers) commits new chunks against it
   and credits it back when its object dies.  Unbounded by default, so
   nothing changes until a capacity is configured. *)

let set_swap_capacity t cap = t.swap_capacity <- cap

let swap_charge t bytes =
  match t.swap_capacity with
  | None -> true
  | Some cap ->
    if t.swap_used + bytes <= cap then begin
      t.swap_used <- t.swap_used + bytes;
      true
    end
    else false

let swap_release t bytes = t.swap_used <- max 0 (t.swap_used - bytes)

(* --- Out-of-memory policy --------------------------------------------

   Deterministic: the victim is the candidate with the most anonymous
   resident pages, ties broken by the smaller task id.  The task whose
   map is being faulted right now is exempt — killing it would free
   pages out from under its own in-progress fault. *)

let oom_register t c = t.oom_candidates <- c :: t.oom_candidates

let oom_unregister t ~id =
  t.oom_candidates <- List.filter (fun c -> c.oc_id <> id) t.oom_candidates

let oom_kill t =
  let viable =
    List.filter_map
      (fun c ->
         let exempt =
           match t.oom_exempt_map with
           | Some m -> c.oc_map_id = m
           | None -> false
         in
         if exempt then None
         else
           let r = c.oc_resident () in
           if r > 0 then Some (r, c) else None)
      t.oom_candidates
  in
  match viable with
  | [] -> false
  | first :: rest ->
    let resident, victim =
      List.fold_left
        (fun (rb, b) (r, c) ->
           if r > rb || (r = rb && c.oc_id < b.oc_id) then (r, c)
           else (rb, b))
        first rest
    in
    t.stats.oom_kills <- t.stats.oom_kills + 1;
    emit t (Mach_obs.Obs.Oom_kill { task = victim.oc_name; resident });
    oom_unregister t ~id:victim.oc_id;
    victim.oc_kill ();
    (* The kill freed memory (and possibly swap): pressure is relieved
       until pageout reports otherwise.  Magazines are flushed so every
       page the kill liberated is visible on the shared queues to
       whoever was starving. *)
    Resident.drain_caches t.resident;
    t.mem_pressure <- false;
    true

let grab_page ?(reserve = false) ?color t =
  let try_reclaim wanted =
    match t.reclaim with
    | None -> ()
    | Some f -> f t ~wanted
  in
  if Resident.free_count t.resident < t.free_target then
    try_reclaim (t.free_target - Resident.free_count t.resident);
  (* Only the pageout/cleaning path may dip into the reserve; ordinary
     allocations treat the free list as empty at [free_reserved].  The
     floor is global: magazine-cached pages count toward [free_count]
     and the allocator steals them back when the queues run dry, so the
     reserve cannot be hidden inside a magazine. *)
  let floor_pages = if reserve then 0 else t.free_reserved in
  let take () =
    if Resident.free_count t.resident > floor_pages then
      Resident.alloc ~cpu:(current_cpu t) ?color t.resident
    else None
  in
  match take () with
  | Some p -> p
  | None ->
    (* Allocation backpressure: wait on the pageout daemon on the
       virtual clocks instead of raising.  Each round reclaims toward
       the target and, when the free list is still at the floor, charges
       one backoff to [Mem_wait].  Two consecutive rounds without
       progress mean reclaim is stuck (everything dirty and the swap
       full, say): the OOM policy runs, and only when it finds no
       viable victim does the allocation fail for real. *)
    let stats = t.stats in
    let stalled = ref 0 in
    let result = ref None in
    while !result = None do
      let before = Resident.free_count t.resident in
      try_reclaim (max 1 (t.free_target - before));
      match take () with
      | Some p -> result := Some p
      | None ->
        (* The wait path is the one place a free-accounting leak would
           deadlock the system, so audit the hierarchy here: free_count
           must equal queued plus magazine-cached pages exactly. *)
        assert (Resident.check_conservation t.resident);
        let free = Resident.free_count t.resident in
        let backoff = t.alloc_backoff_cycles in
        stats.alloc_waits <- stats.alloc_waits + 1;
        stats.alloc_wait_cycles <- stats.alloc_wait_cycles + backoff;
        charge_cat t Mach_obs.Obs.Mem_wait backoff;
        if Mach_obs.Obs.enabled (tracer t) then
          emit t
            (Mach_obs.Obs.Alloc_wait
               { free; wanted = max 1 (t.free_target - free);
                 cycles = backoff });
        if free > before then stalled := 0 else incr stalled;
        (* Escalate when reclaim is demonstrably stuck: either the
           daemon itself reported it (swap full, a page over the
           requeue limit) or two waits in a row freed nothing. *)
        if t.mem_pressure || !stalled >= 2 then begin
          stalled := 0;
          if not (oom_kill t) then raise Out_of_memory
        end
    done;
    (match !result with Some p -> p | None -> assert false)
