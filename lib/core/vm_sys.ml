open Mach_hw
open Mach_pmap

type stats = {
  mutable faults : int;
  mutable zero_fills : int;
  mutable cow_copies : int;
  mutable pager_reads : int;
  mutable pageouts : int;
  mutable reactivations : int;
  mutable shadows_created : int;
  mutable collapses : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable fast_reloads : int;
  mutable rmw_bug_upgrades : int;
  mutable pager_retries : int;
  mutable pager_failures : int;
  mutable pager_deaths : int;
  mutable rescued_pages : int;
  mutable pageout_failures : int;
  mutable memory_errors : int;
  mutable prefetch_issued : int;
  mutable prefetch_hits : int;
  mutable prefetch_wasted : int;
  mutable clustered_pageouts : int;
}

type t = {
  machine : Machine.t;
  domain : Pmap_domain.t;
  resident : Resident.t;
  page_size : int;
  mutable object_cache : Types.obj list;
  mutable object_cache_limit : int;
  mutable cache_enabled : bool;
  mutable collapse_enabled : bool;
  mutable pmap_prewarm_on_fork : bool;
  mutable pager_objects : (int, Types.obj) Hashtbl.t;
  mutable reclaim : (t -> wanted:int -> unit) option;
  mutable free_target : int;
  mutable pager_retry_limit : int;
  mutable pager_backoff_cycles : int;
  mutable pager_death_threshold : int;
  mutable pager_decorator : (Types.pager -> Types.pager) option;
  mutable cluster_max : int;
      (* upper bound on the read-ahead / pageout cluster, in pages;
         1 disables clustering entirely *)
  stats : stats;
}

exception Out_of_memory

let fresh_stats () =
  { faults = 0; zero_fills = 0; cow_copies = 0; pager_reads = 0;
    pageouts = 0; reactivations = 0; shadows_created = 0; collapses = 0;
    cache_hits = 0; cache_misses = 0; fast_reloads = 0;
    rmw_bug_upgrades = 0; pager_retries = 0; pager_failures = 0;
    pager_deaths = 0; rescued_pages = 0; pageout_failures = 0;
    memory_errors = 0; prefetch_issued = 0; prefetch_hits = 0;
    prefetch_wasted = 0; clustered_pageouts = 0 }

let create ~machine ~domain ~page_multiple ?(object_cache_limit = 64) () =
  let arch = Machine.arch machine in
  let frame_limit =
    match arch.Arch.phys_limit with
    | None -> max_int
    | Some bytes -> bytes / arch.Arch.hw_page_size
  in
  let resident =
    Resident.create ~phys:(Machine.phys machine) ~multiple:page_multiple
      ~frame_limit ()
  in
  let total = Resident.total_pages resident in
  {
    machine;
    domain;
    resident;
    page_size = Resident.page_size resident;
    object_cache = [];
    object_cache_limit;
    cache_enabled = true;
    collapse_enabled = true;
    pmap_prewarm_on_fork = false;
    pager_objects = Hashtbl.create 64;
    reclaim = None;
    free_target = max 4 (total / 16);
    pager_retry_limit = 3;
    pager_backoff_cycles = 500;
    pager_death_threshold = 3;
    pager_decorator = None;
    cluster_max = 8;
    stats = fresh_stats ();
  }

let current_cpu t = Pmap_domain.current_cpu t.domain

let charge t c = Machine.charge t.machine ~cpu:(current_cpu t) c

let charge_cat t cat c =
  Machine.charge_category t.machine ~cpu:(current_cpu t) cat c

let with_cat t cat f =
  Machine.with_category t.machine ~cpu:(current_cpu t) cat f

let tracer t = Machine.tracer t.machine

let now t = Machine.cycles t.machine ~cpu:(current_cpu t)

let emit t ev =
  let tr = tracer t in
  if Mach_obs.Obs.enabled tr then begin
    let cpu = current_cpu t in
    Mach_obs.Obs.record tr ~ts:(Machine.cycles t.machine ~cpu) ~cpu ev
  end

let cost t = (Machine.arch t.machine).Arch.cost

let grab_page t =
  let try_reclaim wanted =
    match t.reclaim with
    | None -> ()
    | Some f -> f t ~wanted
  in
  if Resident.free_count t.resident < t.free_target then
    try_reclaim (t.free_target - Resident.free_count t.resident);
  match Resident.alloc t.resident with
  | Some p -> p
  | None ->
    try_reclaim 1;
    (match Resident.alloc t.resident with
     | Some p -> p
     | None -> raise Out_of_memory)
