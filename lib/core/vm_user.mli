(** The user-visible virtual memory operations of Table 2-1.

    All operations apply to a target task and specify addresses and sizes
    in bytes; regions must be aligned on system page boundaries (sizes are
    rounded up, addresses truncated, as in Mach).  Each call charges the
    architecture's system-call cost. *)

type statistics = {
  vs_page_size : int;
  vs_pages_total : int;
  vs_pages_free : int;
  vs_pages_active : int;
  vs_pages_inactive : int;
  vs_faults : int;
  vs_zero_fills : int;
  vs_cow_copies : int;
  vs_pager_reads : int;
  vs_pageouts : int;
  vs_reactivations : int;
  vs_object_cache_hits : int;
  vs_object_cache_misses : int;
  vs_pager_retries : int;
  vs_pager_deaths : int;
  vs_rescued_pages : int;
  vs_pageout_failures : int;
  vs_memory_errors : int;
  vs_prefetch_issued : int;
  vs_prefetch_hits : int;
  vs_prefetch_wasted : int;
  vs_stream_hits : int;
  vs_stream_resets : int;
  vs_free_behind_pages : int;
  vs_clustered_pageouts : int;
  vs_lock_stalls : int;
  vs_lock_stall_cycles : int;
  vs_burst_faults : int;
  vs_burst_mapped : int;
  vs_alloc_waits : int;
  vs_alloc_wait_cycles : int;
  vs_swap_full_failures : int;
  vs_oom_kills : int;
  vs_swap_used : int;
  vs_swap_capacity : int option;
  vs_shadows_created : int;
  vs_collapses : int;
  vs_fast_reloads : int;
  vs_rmw_bug_upgrades : int;
  vs_pager_failures : int;
  vs_color_hits : int;
  vs_color_misses : int;
  vs_pcpu_hits : int;
  vs_pcpu_refills : int;
  vs_numa_local : int;
  vs_numa_borrows : int;
  vs_page_steals : int;
}
(** What [vm_statistics] reports.  [vs_pager_retries] through
    [vs_memory_errors] are the failure counters: pager retries after
    transient errors, pagers declared dead, dirty pages rescued to the
    default pager at death, pageout writes that failed (page kept
    dirty), and faults that concluded [KERN_MEMORY_ERROR].  The
    clustering counters: pages brought in by read-ahead, how many of
    those were later referenced / reclaimed untouched, pager misses
    matched to an existing read-ahead stream slot, live stream slots
    recycled for a new reader, clean pages deactivated behind a ramped
    stream's cursor (free-behind), and multi-page pageout writes.  [vs_lock_stalls]/[vs_lock_stall_cycles]
    count contended memory-object lock acquisitions and the cycles lost
    to them (zero on one CPU); [vs_burst_faults]/[vs_burst_mapped] count
    resident faults that burst-mapped neighbour pages and how many
    neighbours they mapped.  The memory-pressure counters:
    [vs_alloc_waits]/[vs_alloc_wait_cycles] are allocations that had to
    wait on the pageout daemon and the cycles spent waiting,
    [vs_swap_full_failures] pageout writes refused by a full swap pool,
    [vs_oom_kills] tasks killed by the out-of-memory policy.
    [vs_swap_used] is the backing-store bytes occupied;
    [vs_swap_capacity] the configured limit ([None] = unbounded).
    [vs_shadows_created] through [vs_pager_failures] are the object
    machinery counters: shadow objects interposed by copy-on-write,
    shadow chains collapsed away, faults resolved from a still-resident
    page without pager traffic, read-modify-write protection upgrades,
    and pager requests that returned errors.  The allocator counters
    describe the colored per-CPU free-page allocator:
    [vs_color_hits]/[vs_color_misses] are allocations served from the
    requested color queue vs. widened to a neighbour,
    [vs_pcpu_hits]/[vs_pcpu_refills] per-CPU magazine hits and batch
    refill trips to the shared queues, [vs_numa_local]/[vs_numa_borrows]
    queue allocations satisfied by the faulting CPU's home NUMA domain
    vs. borrowed cross-domain, and [vs_page_steals] pages stolen from
    another CPU's magazine when the shared queues ran dry.  All are
    zero under the default single-queue configuration. *)

val allocate :
  Vm_sys.t -> Task.t -> ?at:int -> size:int -> anywhere:bool -> unit ->
  (int, Kr.t) result
(** [vm_allocate]: allocate and fill with zeros new virtual memory, either
    anywhere or at a specified address. *)

val allocate_with_pager :
  Vm_sys.t -> Task.t -> pager:Types.pager -> offset:int -> ?at:int ->
  size:int -> anywhere:bool -> ?copy:bool -> unit -> (int, Kr.t) result
(** [vm_allocate_with_pager] (Table 3-2): allocate a region backed by a
    memory object managed by [pager].  [offset] must be page aligned.
    [copy:true] maps it copy-on-write. *)

val deallocate :
  Vm_sys.t -> Task.t -> addr:int -> size:int -> (unit, Kr.t) result
(** [vm_deallocate]: make a range of addresses no longer valid. *)

val protect :
  Vm_sys.t -> Task.t -> addr:int -> size:int -> set_max:bool ->
  prot:Mach_hw.Prot.t -> (unit, Kr.t) result
(** [vm_protect]: set the protection attribute of an address range. *)

val inherit_ :
  Vm_sys.t -> Task.t -> addr:int -> size:int -> Inheritance.t ->
  (unit, Kr.t) result
(** [vm_inherit]: set the inheritance attribute of an address range. *)

val copy :
  Vm_sys.t -> Task.t -> src:int -> dst:int -> size:int ->
  (unit, Kr.t) result
(** [vm_copy]: virtually copy a range of memory from one address to
    another — object references and copy-on-write, never data.  The
    destination range is replaced. *)

val read :
  Vm_sys.t -> Task.t -> addr:int -> size:int -> (Bytes.t, Kr.t) result
(** [vm_read]: read the contents of a region of a task's address space
    (faulting pages in as needed). *)

val write :
  Vm_sys.t -> Task.t -> addr:int -> data:Bytes.t -> (unit, Kr.t) result
(** [vm_write]: write the contents of a region of a task's address
    space. *)

val regions : Vm_sys.t -> Task.t -> Vm_map.region_info list
(** [vm_regions]: describe the allocated regions of the task's space. *)

val statistics : Vm_sys.t -> statistics
(** [vm_statistics]: system-wide memory statistics. *)
