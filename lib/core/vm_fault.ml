open Mach_hw
open Types
open Mach_pmap
module Obs = Mach_obs.Obs

let zero_mach_page = Page_io.zero

let copy_mach_page sys ~src ~dst = Page_io.copy sys ~src ~dst

(* Enter every hardware frame of [p] at [page_va] in [pmap].  Batched so
   that on architectures whose pages are smaller than the machine page a
   re-enter's flushes go out as one exchange. *)
let enter_page (sys : Vm_sys.t) pmap ~page_va p ~prot =
  let phys = Machine.phys sys.Vm_sys.machine in
  let hw = Phys_mem.page_size phys in
  let m = Resident.multiple sys.Vm_sys.resident in
  Pmap_domain.batched sys.Vm_sys.domain (fun () ->
      for i = 0 to m - 1 do
        pmap.Pmap.enter ~va:(page_va + (i * hw)) ~pfn:(p.pfn + i) ~prot
          ~wired:(p.pg_wire_count > 0)
      done)

let activate_page (sys : Vm_sys.t) p =
  if p.pg_wire_count = 0 then
    Resident.enqueue sys.Vm_sys.resident p Q_active

(* Allocate a fresh page and give it an identity in [obj] at [offset]. *)
let new_page_in (sys : Vm_sys.t) obj ~offset =
  let p = Vm_sys.grab_page ~color:(offset / sys.Vm_sys.page_size) sys in
  Resident.insert sys.Vm_sys.resident p ~obj ~offset;
  p

(* Burst faulting: when the demand page was found resident in the first
   object, scan forward for consecutive neighbours that are also resident
   there and not yet mapped by this pmap, and map them in the same pass.
   They ride the demand page's flush batch, so the whole burst costs one
   consistency exchange instead of one fault (and one exchange) each.
   The scan stops at the first page that does not qualify — past the map
   entry's window, absent, busy, in transit, or already mapped here. *)
let collect_burst (sys : Vm_sys.t) pmap entry obj ~page_va ~offset =
  let ps = sys.Vm_sys.page_size in
  let lim = entry.e_offset + entry_size entry in
  let asid = pmap.Pmap.asid in
  let domain = sys.Vm_sys.domain in
  let rec loop i acc =
    if i >= sys.Vm_sys.burst_max then List.rev acc
    else begin
      let off = offset + (i * ps) in
      let va_n = page_va + (i * ps) in
      if off >= lim || va_n >= entry.e_end then List.rev acc
      else
        match Vm_object.lookup_resident sys obj ~offset:off with
        | Some q
          when (not q.pg_busy) && q.pg_inflight = None
               && not
                    (List.exists
                       (fun (a, _) -> a = asid)
                       (Pmap_domain.mappings_of domain ~pfn:q.pfn)) ->
          loop (i + 1) ((va_n, q) :: acc)
        | _ -> List.rev acc
    end
  in
  loop 1 []

let fault sys map ~va ~write =
  (* Attribution: the whole handler runs under a [Fault_service] frame
     (redundant under [Machine.deliver_fault], which pushes the same
     category, but syscall-path callers — wire, user copyin — reach
     here directly).  Narrower frames below re-attribute the interesting
     sub-costs: pager traffic, zero fills, COW copies. *)
  Vm_sys.with_cat sys Obs.Fault_service @@ fun () ->
  (* While this fault is in flight its map's task is exempt from the OOM
     policy: killing it would deallocate the very structures (entry,
     objects, source pages) this handler is holding.  Saved/restored so
     nested faults keep the innermost map exempt. *)
  let saved_exempt = sys.Vm_sys.oom_exempt_map in
  sys.Vm_sys.oom_exempt_map <- Some map.map_id;
  Fun.protect
    ~finally:(fun () -> sys.Vm_sys.oom_exempt_map <- saved_exempt)
  @@ fun () ->
  let stats = sys.Vm_sys.stats in
  stats.Vm_sys.faults <- stats.Vm_sys.faults + 1;
  (* Trace bracketing: one Fault_begin/Fault_end pair per invocation,
     the end event carrying the resolution kind and service time.  The
     [resolution]/[paged_in] cells cost a store on the untraced path;
     event construction and clock reads happen only when tracing. *)
  let tr = Vm_sys.tracer sys in
  let traced = Obs.enabled tr in
  let cpu = Vm_sys.current_cpu sys in
  let t0 = if traced then Machine.cycles sys.Vm_sys.machine ~cpu else 0 in
  if traced then Obs.record tr ~ts:t0 ~cpu (Obs.Fault_begin { va; write });
  let resolution = ref Obs.Fault_error in
  let paged_in = ref false in
  let conclude result =
    if traced then begin
      let t1 = Machine.cycles sys.Vm_sys.machine ~cpu in
      let resolution =
        match result with
        | Error Kr.Memory_error -> Obs.Memory_error
        | Error _ -> Obs.Fault_error
        | Ok _ -> if !paged_in then Obs.Pagein else !resolution
      in
      Obs.record tr ~ts:t1 ~cpu
        (Obs.Fault_end { va; resolution; cycles = t1 - t0 })
    end;
    result
  in
  match Vm_map.lookup_fault sys map ~va ~write with
  | Error _ as e -> conclude e
  | Ok fl ->
    let ps = sys.Vm_sys.page_size in
    let page_va = va - (va mod ps) in
    let entry = fl.Vm_map.fl_entry in
    (* Byte offset of the faulting page within the entry's window; stable
       across the backing rewrites below. *)
    let rel = fl.Vm_map.fl_offset - (va mod ps) - entry.e_offset in
    assert (rel mod ps = 0);
    (* Never-touched region: create its anonymous memory object now. *)
    let first_obj =
      match entry.e_backing with
      | Backed o -> o
      | No_backing ->
        let o = Vm_object.create_anonymous sys ~size:(entry_size entry) in
        entry.e_backing <- Backed o;
        entry.e_offset <- 0;
        o
      | Submap _ -> assert false (* lookup_fault resolved submaps *)
    in
    (* Write to a needs-copy entry — or to an object whose pager declared
       it read-only (pager_readonly, Table 3-2) — interpose a shadow
       object that will collect this map's modified pages (Section
       3.4). *)
    let first_obj =
      if write && (entry.e_needs_copy || first_obj.obj_readonly) then begin
        let s =
          Vm_object.shadow sys first_obj ~offset:entry.e_offset
            ~size:(entry_size entry)
        in
        entry.e_backing <- Backed s;
        entry.e_offset <- 0;
        entry.e_needs_copy <- false;
        s
      end
      else first_obj
    in
    let offset = entry.e_offset + rel in
    let pmap =
      match map.map_pmap with
      | Some p -> p
      | None -> invalid_arg "Vm_fault.fault: map has no pmap"
    in
    (* Protection for the hardware mapping: copy-on-write situations must
       trap the next write. *)
    let mapped_prot ~cow = if cow then Prot.remove_write fl.Vm_map.fl_prot
      else fl.Vm_map.fl_prot
    in
    let finish p ~prot =
      enter_page sys pmap ~page_va p ~prot;
      activate_page sys p;
      Ok p
    in
    (* When the authoritative entry lives in a sharing map, a page copied
       up into its shadow changes what every sharer should see, but their
       pmaps may still map the old page.  Invalidate all mappings of the
       source page so each sharer re-faults through the updated chain;
       tasks that reference the old object through their own entries
       (snapshot holders) re-fault to the same page and are unaffected. *)
    let shared_entry =
      match fl.Vm_map.fl_map.map_pmap with None -> true | Some _ -> false
    in
    let invalidate_shared_source src =
      if shared_entry then
        (* One batch across all hardware frames (each remove_all nests
           its own batch inside this one). *)
        Pmap_domain.batched sys.Vm_sys.domain (fun () ->
            let m = Resident.multiple sys.Vm_sys.resident in
            for i = 0 to m - 1 do
              Pmap_domain.remove_all sys.Vm_sys.domain ~pfn:(src.pfn + i)
                ~urgent:false
            done)
    in
    (* Walk the shadow chain.  At each level the resident page wins;
       failing that the object's *own* pager is asked (a shadow that has
       paged out to the default pager must answer from there, never from
       the object it shadows); only when the pager has nothing — or there
       is no pager — does the search descend.  Pager traffic goes through
       {!Vm_cluster}/{!Pager_guard}: sequential misses pull in a whole
       read-ahead cluster, transient failures are retried with backoff,
       and a pager that exhausts its budget surfaces KERN_MEMORY_ERROR
       here.  [lim] is the end of the map entry's window in the current
       object's offset space: the cluster may not spill past what this
       entry actually maps. *)
    let rec search obj off lim =
      match Vm_object.lookup_resident sys obj ~offset:off with
      | Some p ->
        Vm_cluster.note_hit sys p;
        `Found (obj, p)
      | None ->
        let tp =
          if traced then Machine.cycles sys.Vm_sys.machine ~cpu else 0
        in
        (match
           (* Pagein mutates the object's page list: a writer section.
              The lock is held across the pager wait, so on a shared
              object other CPUs faulting meanwhile stall behind the
              disk time — the contention mpfault measures. *)
           Vm_object.lock_write sys obj (fun () ->
               Vm_sys.with_cat sys Obs.Pager_wait (fun () ->
                   (* The stream-slot key: which reader this miss belongs
                      to.  Map id + entry start distinguishes concurrent
                      sequential readers of one shared object. *)
                   Vm_cluster.pagein sys
                     ~stream:(fl.Vm_map.fl_map.map_id, entry.e_start)
                     obj ~offset:off ~limit:lim))
         with
         | `Data (p, bytes) ->
           paged_in := true;
           if traced then begin
             let t1 = Machine.cycles sys.Vm_sys.machine ~cpu in
             Obs.record tr ~ts:t1 ~cpu
               (Obs.Pagein { offset = off; bytes; cycles = t1 - tp })
           end;
           `Found (obj, p)
         | `Error -> `Failed
         | `Absent ->
           (match obj.obj_shadow with
            | Some next ->
              search next
                (off + obj.obj_shadow_offset)
                (lim + obj.obj_shadow_offset)
            | None -> `Bottom))
    in
    (* Allocation backpressure almost never fails: grab_page waits on
       the daemon and falls back to the OOM policy first.  When it does
       raise — swap full and every candidate exempt or empty, i.e. this
       very task is the last one standing — the kernel survives and the
       fault concludes with a resource-shortage error the caller can
       surface. *)
    let no_memory (f : unit -> (Types.page, Kr.t) result) =
      try f () with Vm_sys.Out_of_memory -> Error Kr.Resource_shortage
    in
    conclude @@ no_memory @@ fun () ->
      (match search first_obj offset (entry.e_offset + entry_size entry) with
       | `Failed ->
         (* The backing pager failed for good (retry budget exhausted, or
            a dead pager with the error degrade policy).  The paper's
            contract holds: machine-independent state is intact, the
            task just cannot have this page. *)
         stats.Vm_sys.memory_errors <- stats.Vm_sys.memory_errors + 1;
         Error Kr.Memory_error
       | `Found (owner, p) when owner == first_obj ->
         (* Resident fast path: an optimistic, generation-validated read
            of the object — free unless a writer hold overlapped. *)
         Vm_object.lock_read sys owner;
         stats.Vm_sys.fast_reloads <- stats.Vm_sys.fast_reloads + 1;
         resolution := Obs.Fast_reload;
         let prot =
           mapped_prot ~cow:(entry.e_needs_copy || owner.obj_readonly)
         in
         let burst =
           if sys.Vm_sys.burst_max = 0 then []
           else collect_burst sys pmap entry first_obj ~page_va ~offset
         in
         if burst = [] then finish p ~prot
         else begin
           stats.Vm_sys.burst_faults <- stats.Vm_sys.burst_faults + 1;
           stats.Vm_sys.burst_mapped <-
             stats.Vm_sys.burst_mapped + List.length burst;
           let hw_frames = Resident.multiple sys.Vm_sys.resident in
           (* One outer batch: the demand page's enters and every
              neighbour's share a single consistency exchange. *)
           Pmap_domain.batched sys.Vm_sys.domain (fun () ->
               enter_page sys pmap ~page_va p ~prot;
               List.iter
                 (fun (va_n, q) ->
                    enter_page sys pmap ~page_va:va_n q ~prot;
                    if not q.pg_prefetched then begin
                      q.pg_prefetched <- true;
                      stats.Vm_sys.prefetch_issued <-
                        stats.Vm_sys.prefetch_issued + 1
                    end;
                    (* The page will never re-fault here, so its first
                       use must be seen as a referenced-bit transition:
                       clear the bits and register for the first-touch
                       hook. *)
                    for i = 0 to hw_frames - 1 do
                      Pmap_domain.clear_referenced sys.Vm_sys.domain
                        ~pfn:(q.pfn + i)
                    done;
                    Vm_sys.burst_register sys q)
                 burst);
           if traced then
             Vm_sys.emit sys
               (Obs.Burst_enter
                  { va = page_va; pages = 1 + List.length burst });
           activate_page sys p;
           Ok p
         end
       | `Found (_, src) ->
         if write then begin
           (* Copy the page up into the first object: a writer section
              on the object gaining the page. *)
           Vm_object.lock_write sys first_obj (fun () ->
               Vm_sys.with_cat sys Obs.Cow_copy (fun () ->
                   let p = new_page_in sys first_obj ~offset in
                   copy_mach_page sys ~src ~dst:p;
                   stats.Vm_sys.cow_copies <- stats.Vm_sys.cow_copies + 1;
                   resolution := Obs.Cow_copy;
                   invalidate_shared_source src;
                   Vm_object.collapse sys first_obj));
           (* The copy may have moved the page up; look it up afresh. *)
           (match Vm_object.lookup_resident sys first_obj ~offset with
            | Some p -> finish p ~prot:(mapped_prot ~cow:false)
            | None -> assert false)
         end
         else begin
           (* Map the lower object's page without write permission so a
              later write still faults and copies. *)
           resolution := Obs.Fast_reload;
           finish src ~prot:(mapped_prot ~cow:true)
         end
       | `Bottom ->
         (* Nothing anywhere in the chain: memory with no backing data is
            automatically zero filled, directly in the first object. *)
         let p =
           Vm_object.lock_write sys first_obj (fun () ->
               Vm_sys.with_cat sys Obs.Zero_fill (fun () ->
                   let p = new_page_in sys first_obj ~offset in
                   zero_mach_page sys p;
                   p))
         in
         stats.Vm_sys.zero_fills <- stats.Vm_sys.zero_fills + 1;
         resolution := Obs.Zero_fill;
         finish p
           ~prot:
             (mapped_prot
                ~cow:
                  ((entry.e_needs_copy && not write)
                   || first_obj.obj_readonly)))

let wire sys map ~va =
  match fault sys map ~va ~write:true with
  | Error _ as e -> e
  | Ok p ->
    p.pg_wire_count <- p.pg_wire_count + 1;
    Resident.enqueue sys.Vm_sys.resident p Q_none;
    Ok ()

let unwire sys map ~va =
  match Vm_map.resolve_object_at sys map ~va with
  | None -> Error Kr.Invalid_address
  | Some (o, offset) ->
    let offset = offset - (offset mod sys.Vm_sys.page_size) in
    (match Vm_object.chain_lookup sys o ~offset with
     | `Found (_, p, _) when p.pg_wire_count > 0 ->
       p.pg_wire_count <- p.pg_wire_count - 1;
       if p.pg_wire_count = 0 then
         Resident.enqueue sys.Vm_sys.resident p Q_active;
       Ok ()
     | `Found _ | `Absent _ -> Error Kr.Invalid_argument)
