open Mach_hw
open Types
open Mach_pmap

(* Visit the resident pages of [o] with offsets in [offset, offset+length),
   page aligned, in ascending offset order when probing.  Small ranges
   probe the resident hash per page offset — O(range) — and only ranges
   wider than the object's resident population fall back to walking the
   page list, so a clean/flush/lock request for a few pages of a huge
   object no longer visits every resident page. *)
let pages_in_range (sys : Vm_sys.t) o ~offset ~length f =
  let ps = sys.Vm_sys.page_size in
  let lo = offset - (offset mod ps) in
  let hi = offset + length in
  let span = (hi - lo + ps - 1) / ps in
  if span <= Mach_util.Dlist.length o.obj_pages then begin
    let off = ref lo in
    while !off < hi do
      (match Resident.lookup sys.Vm_sys.resident ~obj:o ~offset:!off with
       | Some p -> f p
       | None -> ());
      off := !off + ps
    done
  end
  else
    List.iter
      (fun p -> if p.pg_offset >= lo && p.pg_offset < hi then f p)
      (Resident.object_pages o)

let each_frame (sys : Vm_sys.t) p f =
  let m = Resident.multiple sys.Vm_sys.resident in
  for i = 0 to m - 1 do
    f (p.pfn + i)
  done

let is_dirty sys p =
  let m = Resident.multiple sys.Vm_sys.resident in
  let rec loop i =
    i < m
    && (Pmap_domain.is_modified sys.Vm_sys.domain ~pfn:(p.pfn + i)
        || loop (i + 1))
  in
  loop 0

let clean_request sys o ~offset ~length =
  let ps = sys.Vm_sys.page_size in
  let dirty = ref [] in
  pages_in_range sys o ~offset ~length (fun p ->
      if is_dirty sys p then dirty := p :: !dirty);
  let dirty =
    List.sort (fun a b -> compare a.pg_offset b.pg_offset) !dirty
  in
  let written = ref 0 in
  let clean_one p =
    (* Writing back races with writers: take write permission away
       first so the cleaned copy is coherent. *)
    each_frame sys p (fun pfn ->
        Pmap_domain.copy_on_write sys.Vm_sys.domain ~pfn);
    if Vm_pageout.clean_page sys p then incr written
  in
  (* Coalesce contiguous dirty pages into clustered writes (capped at
     [cluster_max]); a failed clustered write degrades to per-page
     cleaning, which owns the retry/failure accounting. *)
  let flush_run run =
    match List.rev run with
    | [] -> ()
    | [ p ] -> clean_one p
    | pages ->
      if Vm_pageout.write_cluster sys o pages then
        written := !written + List.length pages
      else List.iter clean_one pages
  in
  let rec group run = function
    | [] -> flush_run run
    | p :: rest ->
      (match run with
       | q :: _
         when p.pg_offset = q.pg_offset + ps
              && List.length run < sys.Vm_sys.cluster_max ->
         group (p :: run) rest
       | [] -> group [ p ] rest
       | _ ->
         flush_run run;
         group [ p ] rest)
  in
  group [] dirty;
  !written

let flush_request sys o ~offset ~length =
  let flushed = ref 0 in
  let victims = ref [] in
  pages_in_range sys o ~offset ~length (fun p -> victims := p :: !victims);
  List.iter
    (fun p ->
       Vm_object.free_page sys p;
       incr flushed)
    !victims;
  !flushed

let set_caching sys o should_cache =
  (match o.obj_pager with
   | Some pg -> pg.pgr_should_cache := should_cache
   | None -> ());
  if not should_cache then Vm_object.uncache sys o

let lock_request sys o ~offset ~length ~lock =
  pages_in_range sys o ~offset ~length (fun p ->
      if lock.Prot.read then
        (* Locking reads means no access at all: drop the mappings. *)
        each_frame sys p (fun pfn ->
            Pmap_domain.remove_all sys.Vm_sys.domain ~pfn ~urgent:false)
      else if lock.Prot.write then
        each_frame sys p (fun pfn ->
            Pmap_domain.copy_on_write sys.Vm_sys.domain ~pfn))

let readonly sys o =
  o.obj_readonly <- true;
  pages_in_range sys o ~offset:0 ~length:o.obj_size (fun p ->
      each_frame sys p (fun pfn ->
          Pmap_domain.copy_on_write sys.Vm_sys.domain ~pfn))

let is_readonly o = o.obj_readonly
