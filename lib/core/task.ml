open Mach_hw
open Mach_pmap

type t = {
  task_id : int;
  task_name : string;
  task_map : Types.vmap;
  task_pmap : Pmap.t;
  mutable task_dead : bool;
  mutable task_oom_killed : bool;
}

let next_id = ref 0

let addr_limits (sys : Vm_sys.t) =
  let arch = Machine.arch sys.Vm_sys.machine in
  (sys.Vm_sys.page_size, arch.Arch.user_va_limit)

(* Anonymous resident pages this task holds, the OOM victim metric: for
   each entry backed by temporary (anonymous) memory, the pages of its
   shadow chain down to the first object something else also references
   — those are what killing the task actually gives back. *)
let anon_resident t =
  let count_chain o =
    let rec loop acc (o : Types.obj) exclusive =
      if not o.Types.obj_temporary then acc
      else
        let acc =
          if exclusive then acc + Mach_util.Dlist.length o.Types.obj_pages
          else acc
        in
        match o.Types.obj_shadow with
        | Some next -> loop acc next (exclusive && next.Types.obj_ref = 1)
        | None -> acc
    in
    loop 0 o true
  in
  let total = ref 0 in
  Mach_util.Dlist.iter
    (fun (e : Types.entry) ->
       match e.Types.e_backing with
       | Types.Backed o -> total := !total + count_chain o
       | Types.No_backing | Types.Submap _ -> ())
    t.task_map.Types.map_entries;
  !total

let terminate sys t =
  if not t.task_dead then begin
    t.task_dead <- true;
    Vm_sys.oom_unregister sys ~id:t.task_id;
    Vm_map.deallocate sys t.task_map
  end

(* Register the task with the OOM policy.  Closures keep Vm_sys below
   Task in the dependency order; the kill path marks the task so later
   faults and Vm_user calls surface KERN_MEMORY_ERROR, then reclaims
   everything through the ordinary termination path (which frees the
   pages and releases the swap stores). *)
let oom_arm sys t =
  Vm_sys.oom_register sys
    {
      Vm_sys.oc_id = t.task_id;
      oc_name = t.task_name;
      oc_map_id = t.task_map.Types.map_id;
      oc_resident = (fun () -> if t.task_dead then 0 else anon_resident t);
      oc_kill =
        (fun () ->
           t.task_oom_killed <- true;
           terminate sys t);
    }

let create sys ?(name = "task") () =
  incr next_id;
  let low, high = addr_limits sys in
  let pmap = Pmap_domain.create_pmap sys.Vm_sys.domain in
  let t =
    {
      task_id = !next_id;
      task_name = name;
      task_map = Vm_map.create sys ~pmap:(Some pmap) ~low ~high;
      task_pmap = pmap;
      task_dead = false;
      task_oom_killed = false;
    }
  in
  oom_arm sys t;
  t

let fork sys parent =
  assert (not parent.task_dead);
  incr next_id;
  let pmap = Pmap_domain.create_pmap sys.Vm_sys.domain in
  let map = Vm_map.fork sys parent.task_map ~child_pmap:pmap in
  let t =
    {
      task_id = !next_id;
      task_name = parent.task_name ^ "-child";
      task_map = map;
      task_pmap = pmap;
      task_dead = false;
      task_oom_killed = false;
    }
  in
  oom_arm sys t;
  t

let map t = t.task_map

let pmap t = t.task_pmap
