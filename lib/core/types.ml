(* The four basic memory-management data structures of Section 3:

     1. the resident page table entry ([page]),
     2. the address map ([vmap] of [entry]),
     3. the memory object ([obj], with its pager),
     4. the pmap (machine-dependent; see {!Mach_pmap.Pmap}).

   They are mutually recursive in exactly the way the paper's C structures
   point at each other, so they live together in this module; all
   behaviour is in the Vm_* modules.  Machine-independent code is the
   authoritative owner of everything here. *)

open Mach_util
open Mach_hw

(* Which paging queue a resident page is on (Section 3.1: allocation
   queues are maintained for free, reclaimable and allocated pages). *)
type pageq =
  | Q_none      (* wired or in transit *)
  | Q_free
  | Q_active
  | Q_inactive  (* reclaimable *)

type page = {
  pfn : int;
      (* first hardware frame of this (machine-independent) page; a Mach
         page spans [page_multiple] consecutive hardware frames *)
  mutable pg_obj : obj option;          (* owning memory object *)
  mutable pg_offset : int;              (* byte offset within the object *)
  mutable pg_wire_count : int;
  mutable pg_busy : bool;               (* being filled or written back *)
  mutable pg_prefetched : bool;
      (* brought in by read-ahead, not yet referenced by a fault; cleared
         on first use (a prefetch hit) or reclaim (a wasted prefetch) *)
  mutable pg_inflight : inflight option;
      (* async disk transfer this page rides on (prefetch fill or
         clustered pageout); anyone reusing or relying on the page first
         waits out the completion stamp (Pager_guard.await_page) *)
  mutable pg_queue : pageq;
  mutable pg_queue_node : page Dlist.node option;
  mutable pg_obj_node : page Dlist.node option;
  mutable pg_requeues : int;
      (* consecutive pageout attempts on which this page's write failed
         and it was requeued still dirty; reset when a clean succeeds or
         the page is freed.  Crossing the requeue limit flips the system
         into the memory-pressure state instead of spinning forever *)
}

(* One async disk request, shared by every page of its cluster.  The
   first waiter charges the remaining cycles and claims the overlap;
   [if_waited] stops the sharers from double-counting it. *)
and inflight = {
  if_completion : int;        (* absolute cycle stamp when the I/O lands *)
  if_service : int;           (* device cycles the request occupies *)
  mutable if_waited : bool;
}

and obj = {
  obj_id : int;
  mutable obj_size : int;               (* bytes *)
  mutable obj_ref : int;                (* mapping + shadow references *)
  obj_pages : page Dlist.t;             (* the memory-object page list *)
  mutable obj_pager : pager option;
  mutable obj_shadow : obj option;
  mutable obj_shadow_offset : int;
      (* this object's offset 0 corresponds to [obj_shadow_offset] in the
         shadowed object *)
  mutable obj_temporary : bool;         (* anonymous kernel-managed memory *)
  mutable obj_can_persist : bool;       (* eligible for the object cache *)
  mutable obj_cached : bool;            (* ref 0 but retained in the cache *)
  mutable obj_readonly : bool;
      (* pager_readonly: the pager never accepts writes, so the kernel
         must interpose a shadow on any write attempt *)
  mutable obj_dead : bool;              (* terminated; must hold no pages *)
  obj_health : pager_health;            (* failure record for obj_pager *)
  mutable obj_rescue : pager option;
      (* default-pager stand-in created when obj_pager is declared dead;
         holds rescued dirty pages and takes over paging duty *)
  mutable obj_degrade : degrade_policy;
      (* what a fault sees when the pager is dead and the rescue pager
         has no copy of the page *)
  mutable obj_streams : stream array;
      (* adaptive read-ahead state, one slot per concurrent sequential
         reader (the DragonFly cluster_cache shape): sized lazily to
         [Vm_sys.stream_slots] on first pagein, [| |] until then so
         anonymous objects pay nothing.  A pager miss matches the slot
         whose cursor equals its offset; misses recycle the reader's own
         slot, an expired slot, or the least recently used one *)
  mutable obj_gen : int;
      (* generation counter, bumped by every exclusive (writer) critical
         section; the lock-free resident fast path validates it *)
  mutable obj_lock_free : int;
      (* absolute cycle stamp at which the last exclusive hold released;
         a CPU whose clock is behind it contends and stalls *)
  mutable obj_lock_epoch : int;
      (* Machine.reset_epoch when obj_lock_free was stamped; stamps from
         an older epoch are expired (the clocks were reset under them) *)
}

(* One read-ahead stream through a memory object.  The key (map id,
   entry start) names the reader so concurrent streams over one shared
   object cannot reset each other's ramp; the cursor/window pair is
   exactly the old per-object state, now per stream.  Stamps from an
   older [Machine.reset_clocks] epoch are expired, mirroring
   [obj_lock_epoch]: a recycled object or a fresh measurement interval
   never inherits a dead stream's cursor. *)
and stream = {
  mutable st_map : int;         (* map id of the reader; -1 anonymous *)
  mutable st_entry : int;       (* map entry start va; 0 anonymous *)
  mutable st_next : int;
      (* offset one byte past the last cluster this stream paged in; a
         miss exactly here is sequential access ([min_int] = never) *)
  mutable st_window : int;
      (* current window in pages: ramps 1->2->4->...->[cluster_max]
         while the stream stays sequential, resets on random *)
  mutable st_use : int;
      (* last-use stamp from [Vm_sys.stream_clock] (monotonic, not the
         cycle clock, so clock resets cannot scramble LRU order) *)
  mutable st_epoch : int;       (* Machine.reset_epoch at the last
                                   commit; older epochs are expired *)
}

(* The kernel's machine-independent record of how a pager has been
   behaving.  A pager that exhausts its retry budget [ph_consecutive]
   times in a row is declared dead (Pager_guard). *)
and pager_health = {
  mutable ph_failures : int;      (* request/write attempts that exhausted
                                     the retry budget, in total *)
  mutable ph_consecutive : int;   (* ... consecutively; reset on success *)
  mutable ph_dead : bool;
}

and degrade_policy =
  | Degrade_zero_fill   (* unrescued pages read as zeros; writes stick *)
  | Degrade_error       (* faults fail with KERN_MEMORY_ERROR *)

(* A pager instance manages one memory object (it is addressed through
   that object's paging_object port in real Mach).  The closures carry the
   kernel-to-pager calls of Table 3-1 that move data; the pager answers in
   the style of the pager-to-kernel calls of Table 3-2. *)
and pager = {
  pgr_id : int;
  pgr_name : string;
  pgr_request : offset:int -> length:int -> pager_reply;
      (* pager_data_request: the kernel wants [length] bytes at [offset].
         [length] may span several pages (a cluster); the pager may answer
         with fewer bytes than asked (a truncated cluster) and the kernel
         will fall back to single-page requests for the remainder.
         [Data_unavailable] for a range means the pager holds no data at
         [offset] itself, so the kernel may zero-fill / descend for the
         demand page without re-asking page by page. *)
  pgr_write : offset:int -> data:Bytes.t -> pager_write_reply;
      (* pager_data_write: the kernel cleans dirty pages; [data] may span
         several contiguous pages (a clustered pageout).  A pager that
         stores blobs keyed by offset must split the data at page
         boundaries or later single-page requests will miss it.
         [Write_error] means NO page of the range was cleaned; the kernel
         falls back to single-page writes. *)
  pgr_submit : offset:int -> length:int -> pager_ticket option;
      (* asynchronous pager_data_request: start the transfer and return
         its data plus a completion stamp without blocking the CPU for
         the device time.  [None] means this pager cannot submit (async
         disk off, no async path, failure at submit): the caller uses
         the synchronous protocol instead.  Strictly opportunistic —
         never retried, no health damage. *)
  pgr_submit_write : offset:int -> data:Bytes.t -> write_ticket option;
      (* asynchronous pager_data_write, same contract: [None] falls back
         to the synchronous [pgr_write] path. *)
  pgr_should_cache : bool ref;
      (* pager_cache: retain the object after its last unmap *)
}

(* Reply to an async submit: the data is available for filling frames
   immediately (the simulation holds it in host memory), but the device
   is busy until [tk_completion]; [tk_service] is the request's device
   time, the budget a waiter can have overlapped. *)
and pager_ticket = {
  tk_data : Bytes.t;
  tk_completion : int;
  tk_service : int;
}

and write_ticket = {
  wt_completion : int;
  wt_service : int;
}

and pager_reply =
  | Data_provided of Bytes.t   (* pager_data_provided *)
  | Data_unavailable           (* pager_data_unavailable: zero fill *)
  | Data_error                 (* pager_error: the request failed (I/O
                                  error, timeout, crashed pager); the
                                  kernel may retry *)

and pager_write_reply =
  | Write_completed
  | Write_error                (* the page was NOT cleaned; the kernel
                                  must keep it dirty *)
  | Write_no_space             (* the backing store is full: permanent
                                  until space is released, so retrying is
                                  pointless (no health damage); the page
                                  stays dirty and the kernel enters its
                                  memory-pressure state *)

and backing =
  | No_backing     (* allocated but never touched; object made at fault *)
  | Backed of obj
  | Submap of vmap (* a sharing map (Section 3.4) *)

and entry = {
  mutable e_start : int;                (* inclusive, page aligned *)
  mutable e_end : int;                  (* exclusive *)
  mutable e_backing : backing;
  mutable e_offset : int;               (* offset into backing at e_start *)
  mutable e_prot : Prot.t;              (* current protection *)
  mutable e_max_prot : Prot.t;          (* maximum protection *)
  mutable e_inherit : Inheritance.t;
  mutable e_needs_copy : bool;
      (* data must be shadowed before this entry's first write *)
  mutable e_wired : bool;
  mutable e_node : entry Dlist.node option; (* position in its map *)
}

and vmap = {
  map_id : int;
  map_entries : entry Dlist.t;          (* sorted, non-overlapping *)
  mutable map_hint : entry Dlist.node option; (* last-fault hint *)
  map_pmap : Mach_pmap.Pmap.t option;   (* None for sharing maps *)
  mutable map_ref : int;
  map_low : int;
  map_high : int;
}

let next_obj_id = ref 0
let next_map_id = ref 0
let next_pager_id = ref 0

let fresh_obj_id () = incr next_obj_id; !next_obj_id
let fresh_map_id () = incr next_map_id; !next_map_id
let fresh_pager_id () = incr next_pager_id; !next_pager_id

let fresh_health () = { ph_failures = 0; ph_consecutive = 0; ph_dead = false }

(* Defaults for pagers with no asynchronous path: every submit falls back
   to the synchronous protocol. *)
let no_submit ~offset:_ ~length:_ = None
let no_submit_write ~offset:_ ~data:_ = None

let entry_size e = e.e_end - e.e_start

let is_submap e = match e.e_backing with Submap _ -> true | Backed _ | No_backing -> false

(* Offset within the entry's backing for address [va]. *)
let entry_offset_of e va =
  assert (va >= e.e_start && va < e.e_end);
  e.e_offset + (va - e.e_start)
