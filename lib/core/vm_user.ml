open Mach_hw
open Types

type statistics = {
  vs_page_size : int;
  vs_pages_total : int;
  vs_pages_free : int;
  vs_pages_active : int;
  vs_pages_inactive : int;
  vs_faults : int;
  vs_zero_fills : int;
  vs_cow_copies : int;
  vs_pager_reads : int;
  vs_pageouts : int;
  vs_reactivations : int;
  vs_object_cache_hits : int;
  vs_object_cache_misses : int;
  vs_pager_retries : int;
  vs_pager_deaths : int;
  vs_rescued_pages : int;
  vs_pageout_failures : int;
  vs_memory_errors : int;
  vs_prefetch_issued : int;
  vs_prefetch_hits : int;
  vs_prefetch_wasted : int;
  vs_stream_hits : int;
  vs_stream_resets : int;
  vs_free_behind_pages : int;
  vs_clustered_pageouts : int;
  vs_lock_stalls : int;
  vs_lock_stall_cycles : int;
  vs_burst_faults : int;
  vs_burst_mapped : int;
  vs_alloc_waits : int;
  vs_alloc_wait_cycles : int;
  vs_swap_full_failures : int;
  vs_oom_kills : int;
  vs_swap_used : int;
  vs_swap_capacity : int option;
  vs_shadows_created : int;
  vs_collapses : int;
  vs_fast_reloads : int;
  vs_rmw_bug_upgrades : int;
  vs_pager_failures : int;
  vs_color_hits : int;
  vs_color_misses : int;
  vs_pcpu_hits : int;
  vs_pcpu_refills : int;
  vs_numa_local : int;
  vs_numa_borrows : int;
  vs_page_steals : int;
}

let syscall (sys : Vm_sys.t) = Vm_sys.charge sys (Vm_sys.cost sys).Arch.syscall

(* A task killed by the OOM policy has no address space left; every
   operation on it answers KERN_MEMORY_ERROR, the same code its faults
   report, so user programs see one consistent story. *)
let check_alive (task : Task.t) f =
  if task.Task.task_oom_killed then Error Kr.Memory_error else f ()

let allocate sys task ?at ~size ~anywhere () =
  syscall sys;
  check_alive task @@ fun () ->
  Vm_map.allocate sys (Task.map task) ?at ~size ~anywhere ()

let allocate_with_pager sys task ~pager ~offset ?at ~size ~anywhere
    ?(copy = false) () =
  syscall sys;
  check_alive task @@ fun () ->
  if offset < 0 || offset mod sys.Vm_sys.page_size <> 0 then
    Error Kr.Invalid_argument
  else begin
    let size = ((size + sys.Vm_sys.page_size - 1) / sys.Vm_sys.page_size)
               * sys.Vm_sys.page_size
    in
    let o = Vm_object.create_with_pager sys pager ~size:(offset + size) in
    match
      Vm_map.allocate_object sys (Task.map task) o ~offset ?at ~size
        ~anywhere ~copy ()
    with
    | Ok _ as r -> r
    | Error _ as e ->
      Vm_object.deallocate sys o;
      e
  end

let deallocate sys task ~addr ~size =
  syscall sys;
  check_alive task @@ fun () ->
  Vm_map.deallocate_range sys (Task.map task) ~addr ~size

let protect sys task ~addr ~size ~set_max ~prot =
  syscall sys;
  check_alive task @@ fun () ->
  Vm_map.protect sys (Task.map task) ~addr ~size ~set_max ~prot

let inherit_ sys task ~addr ~size inh =
  syscall sys;
  check_alive task @@ fun () ->
  Vm_map.set_inheritance sys (Task.map task) ~addr ~size inh

let copy sys task ~src ~dst ~size =
  syscall sys;
  check_alive task @@ fun () ->
  let map = Task.map task in
  match Vm_map.extract_copy sys map ~addr:src ~size with
  | Error _ as e -> e
  | Ok c ->
    (match Vm_map.deallocate_range sys map ~addr:dst ~size with
     | Error _ as e ->
       Vm_map.discard_copy sys c;
       e
     | Ok () ->
       (match Vm_map.insert_copy sys map c ~at:dst () with
        | Ok _ -> Ok ()
        | Error _ as e ->
          Vm_map.discard_copy sys c;
          e))

(* Kernel-mode data movement between a task's space and a buffer: fault
   each page in, then copy through physical memory, charging move cost. *)
let move sys task ~addr ~len ~f =
  let phys = Machine.phys sys.Vm_sys.machine in
  let hw = Phys_mem.page_size phys in
  let ps = sys.Vm_sys.page_size in
  let write = (match f with `Into_task _ -> true | `Out_of_task _ -> false) in
  let rec loop addr done_ =
    if done_ >= len then Ok ()
    else begin
      match Vm_fault.fault sys (Task.map task) ~va:addr ~write with
      | Error _ as e -> e
      | Ok page ->
        let in_page = ps - (addr mod ps) in
        let run = min in_page (len - done_) in
        (* Copy [run] bytes spanning hardware frames of this page. *)
        let rec frames off n =
          if n > 0 then begin
            let frame = page.pfn + (off / hw) in
            let foff = off mod hw in
            let chunk = min n (hw - foff) in
            let bufpos = done_ + (off - (addr mod ps)) in
            (match f with
             | `Out_of_task buf ->
               Bytes.blit
                 (Phys_mem.read phys frame ~offset:foff ~len:chunk)
                 0 buf bufpos chunk
             | `Into_task buf ->
               Phys_mem.write phys frame ~offset:foff
                 (Bytes.sub buf bufpos chunk));
            frames (off + chunk) (n - chunk)
          end
        in
        frames (addr mod ps) run;
        Vm_sys.charge sys
          (((run + 15) / 16) * (Vm_sys.cost sys).Arch.move_16b);
        loop (addr + run) (done_ + run)
    end
  in
  loop addr 0

let read sys task ~addr ~size =
  syscall sys;
  check_alive task @@ fun () ->
  if size < 0 then Error Kr.Invalid_argument
  else begin
    let buf = Bytes.create size in
    match move sys task ~addr ~len:size ~f:(`Out_of_task buf) with
    | Ok () -> Ok buf
    | Error _ as e -> e
  end

let write sys task ~addr ~data =
  syscall sys;
  check_alive task @@ fun () ->
  move sys task ~addr ~len:(Bytes.length data) ~f:(`Into_task data)

let regions sys task =
  syscall sys;
  Vm_map.regions (Task.map task)

let statistics (sys : Vm_sys.t) =
  let res = sys.Vm_sys.resident in
  let s = sys.Vm_sys.stats in
  {
    vs_page_size = sys.Vm_sys.page_size;
    vs_pages_total = Resident.total_pages res;
    vs_pages_free = Resident.free_count res;
    vs_pages_active = Resident.active_count res;
    vs_pages_inactive = Resident.inactive_count res;
    vs_faults = s.Vm_sys.faults;
    vs_zero_fills = s.Vm_sys.zero_fills;
    vs_cow_copies = s.Vm_sys.cow_copies;
    vs_pager_reads = s.Vm_sys.pager_reads;
    vs_pageouts = s.Vm_sys.pageouts;
    vs_reactivations = s.Vm_sys.reactivations;
    vs_object_cache_hits = s.Vm_sys.cache_hits;
    vs_object_cache_misses = s.Vm_sys.cache_misses;
    vs_pager_retries = s.Vm_sys.pager_retries;
    vs_pager_deaths = s.Vm_sys.pager_deaths;
    vs_rescued_pages = s.Vm_sys.rescued_pages;
    vs_pageout_failures = s.Vm_sys.pageout_failures;
    vs_memory_errors = s.Vm_sys.memory_errors;
    vs_prefetch_issued = s.Vm_sys.prefetch_issued;
    vs_prefetch_hits = s.Vm_sys.prefetch_hits;
    vs_prefetch_wasted = s.Vm_sys.prefetch_wasted;
    vs_stream_hits = s.Vm_sys.stream_hits;
    vs_stream_resets = s.Vm_sys.stream_resets;
    vs_free_behind_pages = s.Vm_sys.free_behind_pages;
    vs_clustered_pageouts = s.Vm_sys.clustered_pageouts;
    vs_lock_stalls = s.Vm_sys.lock_stalls;
    vs_lock_stall_cycles = s.Vm_sys.lock_stall_cycles;
    vs_burst_faults = s.Vm_sys.burst_faults;
    vs_burst_mapped = s.Vm_sys.burst_mapped;
    vs_alloc_waits = s.Vm_sys.alloc_waits;
    vs_alloc_wait_cycles = s.Vm_sys.alloc_wait_cycles;
    vs_swap_full_failures = s.Vm_sys.swap_full_failures;
    vs_oom_kills = s.Vm_sys.oom_kills;
    vs_swap_used = sys.Vm_sys.swap_used;
    vs_swap_capacity = sys.Vm_sys.swap_capacity;
    vs_shadows_created = s.Vm_sys.shadows_created;
    vs_collapses = s.Vm_sys.collapses;
    vs_fast_reloads = s.Vm_sys.fast_reloads;
    vs_rmw_bug_upgrades = s.Vm_sys.rmw_bug_upgrades;
    vs_pager_failures = s.Vm_sys.pager_failures;
    vs_color_hits = (Resident.counters res).Resident.color_hits;
    vs_color_misses = (Resident.counters res).Resident.color_misses;
    vs_pcpu_hits = (Resident.counters res).Resident.pcpu_hits;
    vs_pcpu_refills = (Resident.counters res).Resident.pcpu_refills;
    vs_numa_local = (Resident.counters res).Resident.numa_local;
    vs_numa_borrows = (Resident.counters res).Resident.numa_borrows;
    vs_page_steals = (Resident.counters res).Resident.page_steals;
  }
