(** Memory objects (Sections 3.3-3.5).

    A memory object is a repository for data, indexed by byte, that can be
    mapped into task address spaces.  All backing store is implemented by
    memory objects, so address maps never track backing storage
    themselves.  This module manages:

    - reference-counted creation and termination;
    - the object cache, which retains frequently used objects (text
      segments, files) after their last mapping reference disappears so
      reuse is inexpensive (Section 3.3);
    - shadow objects, which collect and remember the modified pages of a
      copy-on-write copy while relying on the original for everything
      unmodified (Section 3.4);
    - garbage collection of shadow chains: when an intermediate shadow is
      completely obscured or no longer shared it is collapsed away,
      preventing the long chains repeated fork/modify cycles would
      otherwise build (Section 3.5). *)

open Types

val create_anonymous : Vm_sys.t -> size:int -> obj
(** [create_anonymous sys ~size] is a temporary (internal) object with no
    pager: absent pages are zero filled on demand and the default pager
    takes its pageouts.  Reference count 1. *)

val create_with_pager : Vm_sys.t -> pager -> size:int -> obj
(** [create_with_pager sys pager ~size] is the object managed by [pager].
    If a live object already exists for this pager it is referenced and
    returned; if a cached one exists it is revived from the object cache
    (a cache hit, keeping its resident pages); otherwise a fresh object is
    created. *)

val reference : obj -> unit
(** [reference o] takes one more reference. *)

val deallocate : Vm_sys.t -> obj -> unit
(** [deallocate sys o] releases one reference.  When the last reference
    goes: persistent objects whose pager asked for caching enter the
    object cache (evicting the least recently used entry beyond the cache
    limit); anything else is terminated — its pages are freed (after
    removal from all pmaps) and its shadow reference released. *)

val shadow : Vm_sys.t -> obj -> offset:int -> size:int -> obj
(** [shadow sys o ~offset ~size] creates a shadow object of [size] bytes
    whose offset 0 corresponds to [offset] in [o].  The caller's reference
    to [o] is consumed by the new object's shadow link, so the caller must
    replace its own reference with the returned object (reference count
    1).  Used by the copy-on-write write-fault path. *)

val collapse : Vm_sys.t -> obj -> unit
(** [collapse sys o] repeatedly merges [o] with the object it shadows when
    that object is temporary, pager-less and referenced only by [o]:
    pages not obscured by [o] move up into it, obscured pages are freed,
    and the chain shortens by one.  Disabled when
    [sys.collapse_enabled] is false (ablation). *)

val chain_length : obj -> int
(** [chain_length o] is the number of objects from [o] to the bottom of
    its shadow chain, inclusive; the Section 3.5 bench reports this. *)

val chain_lookup :
  Vm_sys.t -> obj -> offset:int ->
  [ `Found of obj * page * int | `Absent of obj * int ]
(** [chain_lookup sys o ~offset] follows the shadow chain looking for the
    page at byte [offset] (page aligned): [`Found (owner, page,
    owner_offset)] when some object in the chain holds it resident,
    [`Absent (bottom, bottom_offset)] when no object does and data must
    come from [bottom]'s pager or be zero filled. *)

val lookup_resident : Vm_sys.t -> obj -> offset:int -> page option
(** [lookup_resident sys o ~offset] checks only [o] itself. *)

val free_page : Vm_sys.t -> page -> unit
(** [free_page sys p] removes every pmap mapping of [p] (urgently, so no
    stale TLB entry can reach the recycled frame) and returns it to the
    free list. *)

(** {1 Object locking}

    The simulator is single-threaded; object locks model the {e time} a
    multiprocessor would lose to contention.  Writer sections stamp the
    object with the cycle at which they released; a later acquisition by
    a CPU whose clock is behind the stamp stalls for the residue, charged
    to the [Lock_wait] attribution category.  On one CPU every stall is
    zero, so the layer is cycle-invisible sequentially. *)

val lock_write : Vm_sys.t -> obj -> (unit -> 'a) -> 'a
(** [lock_write sys o f] runs [f] as an exclusive (writer) critical
    section on [o]: stalls for any overlapping prior hold, then on the
    way out bumps [o]'s generation counter and stamps the release time.
    Pagein, shadow interposition, copy-on-write resolution and pageout
    cleaning run under this. *)

val lock_read : Vm_sys.t -> obj -> unit
(** [lock_read sys o] is the optimistic reader path: generation-validated
    and lock-free, it charges nothing when uncontended and only the
    retry residue when a writer hold overlaps in virtual time.  The
    resident-fault fast path uses this. *)

val uncache : Vm_sys.t -> obj -> unit
(** [uncache sys o] terminates [o] if it currently sits in the object
    cache; no-op otherwise.  Used when a pager withdraws its caching
    request. *)

val cached_count : Vm_sys.t -> int
(** Number of objects currently held by the object cache. *)

val drain_cache : Vm_sys.t -> unit
(** [drain_cache sys] terminates every cached object (used by tests and by
    the cache-ablation bench). *)
