open Mach_util
open Mach_hw
open Types

type t = {
  phys : Phys_mem.t;
  page_size : int;
  multiple : int;
  hash : (int * int, page) Hashtbl.t; (* (obj_id, offset) -> page *)
  free : page Dlist.t;
  active : page Dlist.t;
  inactive : page Dlist.t;
  mutable total : int;
}

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let create ~phys ~multiple ?(frame_limit = max_int) () =
  if not (is_power_of_two multiple) then
    invalid_arg "Resident.create: multiple must be a power of two";
  let t =
    {
      phys;
      page_size = multiple * Phys_mem.page_size phys;
      multiple;
      hash = Hashtbl.create 1024;
      free = Dlist.create ();
      active = Dlist.create ();
      inactive = Dlist.create ();
      total = 0;
    }
  in
  let frames = min frame_limit (Phys_mem.frame_count phys) in
  let groups = frames / multiple in
  for g = 0 to groups - 1 do
    let base = g * multiple in
    let usable = ref true in
    for i = 0 to multiple - 1 do
      if not (Phys_mem.frame_exists phys (base + i)) then usable := false
    done;
    if !usable then begin
      let p =
        {
          pfn = base;
          pg_obj = None;
          pg_offset = 0;
          pg_wire_count = 0;
          pg_busy = false;
          pg_prefetched = false;
          pg_inflight = None;
          pg_queue = Q_free;
          pg_queue_node = None;
          pg_obj_node = None;
          pg_requeues = 0;
        }
      in
      p.pg_queue_node <- Some (Dlist.push_back t.free p);
      t.total <- t.total + 1
    end
  done;
  t

let page_size t = t.page_size
let multiple t = t.multiple
let total_pages t = t.total
let free_count t = Dlist.length t.free
let active_count t = Dlist.length t.active
let inactive_count t = Dlist.length t.inactive

let queue_list t = function
  | Q_free -> Some t.free
  | Q_active -> Some t.active
  | Q_inactive -> Some t.inactive
  | Q_none -> None

let unlink_queue t p =
  match queue_list t p.pg_queue, p.pg_queue_node with
  | Some q, Some node -> Dlist.remove q node
  | None, None -> ()
  | Some _, None | None, Some _ -> assert false

let set_queue t p q =
  unlink_queue t p;
  p.pg_queue <- q;
  p.pg_queue_node <-
    (match queue_list t q with
     | None -> None
     | Some lst -> Some (Dlist.push_back lst p))

let alloc t =
  match Dlist.first t.free with
  | None -> None
  | Some node ->
    let p = Dlist.value node in
    set_queue t p Q_none;
    assert (p.pg_obj = None);
    Some p

let lookup t ~obj ~offset = Hashtbl.find_opt t.hash (obj.obj_id, offset)

let insert t p ~obj ~offset =
  assert (p.pg_obj = None);
  assert (offset mod t.page_size = 0);
  assert (not (Hashtbl.mem t.hash (obj.obj_id, offset)));
  p.pg_obj <- Some obj;
  p.pg_offset <- offset;
  p.pg_obj_node <- Some (Dlist.push_back obj.obj_pages p);
  Hashtbl.add t.hash (obj.obj_id, offset) p

let remove_from_object t p =
  match p.pg_obj, p.pg_obj_node with
  | Some obj, Some node ->
    Hashtbl.remove t.hash (obj.obj_id, p.pg_offset);
    Dlist.remove obj.obj_pages node;
    p.pg_obj <- None;
    p.pg_obj_node <- None;
    p.pg_offset <- 0
  | None, None -> ()
  | Some _, None | None, Some _ -> assert false

let free_page t p =
  remove_from_object t p;
  p.pg_busy <- false;
  p.pg_prefetched <- false;
  p.pg_inflight <- None;
  p.pg_wire_count <- 0;
  p.pg_requeues <- 0;
  set_queue t p Q_free

let enqueue t p q =
  assert (q <> Q_free);
  set_queue t p q

let take_pop t lst =
  match Dlist.first lst with
  | None -> None
  | Some node ->
    let p = Dlist.value node in
    set_queue t p Q_none;
    Some p

let take_inactive t = take_pop t t.inactive
let take_active t = take_pop t t.active

let iter_free t f = Dlist.iter f t.free

let object_pages o = Dlist.to_list o.obj_pages
