open Mach_util
open Mach_hw
open Types

(* The free "queue" is really a hierarchy (DragonFly's vm_page shape):
   free pages live on [domains * colors] colored queues — color =
   machine-independent frame number mod [colors], domain = contiguous
   slice of physical memory — with an optional per-CPU magazine in
   front.  The default configuration (one domain, one color, magazines
   off) is a single FIFO that replays the original allocator to the
   cycle: the direct path charges nothing and pops/pushes in the exact
   order the seed code did.  [configure] re-buckets the free pages when
   the topology changes; contention on the shared queues is simulated
   (opt-in) with the same release-stamp scheme as [Vm_object] locks. *)

type counters = {
  mutable color_hits : int;     (* allocations served at the preferred color *)
  mutable color_misses : int;   (* allocations that had to widen the search *)
  mutable pcpu_hits : int;      (* allocations served from a per-CPU magazine *)
  mutable pcpu_refills : int;   (* magazine refill trips to the shared queues *)
  mutable numa_local : int;     (* queue allocations from the CPU's own domain *)
  mutable numa_borrows : int;   (* queue allocations borrowed cross-domain *)
  mutable page_steals : int;    (* pages stolen out of another CPU's magazine *)
}

(* Simulation services, installed by [Vm_sys] (or a test harness): the
   allocator itself never sees the machine, so virtual time and events
   arrive through these closures.  All optional — with no hooks the
   allocator is pure bookkeeping. *)
type hooks = {
  hk_now : cpu:int -> int;          (* CPU's virtual clock, absolute cycles *)
  hk_charge : cpu:int -> int -> unit;       (* charge queue-lock hold time *)
  hk_stall : cpu:int -> int -> unit;        (* charge contended-lock residue *)
  hk_epoch : unit -> int;           (* clock-reset epoch, to expire stamps *)
  hk_steal : cpu:int -> victim:int -> page:Types.page -> unit;
}

type t = {
  phys : Phys_mem.t;
  page_size : int;
  multiple : int;
  span_groups : int; (* physical extent in page groups, for the domain split *)
  hash : (int * int, page) Hashtbl.t; (* (obj_id, offset) -> page *)
  active : page Dlist.t;
  inactive : page Dlist.t;
  mutable total : int;
  (* allocator topology *)
  mutable colors : int;       (* power of two; 1 = uncolored *)
  mutable domains : int;      (* NUMA domains; 1 = flat *)
  mutable cpus : int;         (* magazines allocated, CPU ids < cpus *)
  mutable cache_size : int;   (* magazine capacity; 0 = magazines off *)
  mutable refill_batch : int; (* pages per refill/drain trip *)
  mutable lock_sim : bool;    (* simulate contention on the shared queues *)
  mutable lock_hold : int;    (* cycles one queue critical section holds *)
  mutable free_min_share : int; (* per-domain poverty line: borrow below it *)
  mutable hooks : hooks option;
  (* free structure *)
  mutable queues : page Dlist.t array; (* index = domain * colors + color *)
  mutable qlock_free : int array;  (* per-queue lock release stamp, absolute *)
  mutable qlock_epoch : int array; (* epoch the stamp was taken in *)
  mutable dom_free : int array;    (* pages on each domain's queues *)
  mutable caches : page list array;  (* per-CPU magazine, LIFO *)
  mutable cache_count : int array;
  mutable free_total : int;   (* pages free anywhere: queues + magazines *)
  mutable rotor : int;        (* color spreader for hint-less allocations *)
  c : counters;
}

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let fresh_counters () =
  { color_hits = 0; color_misses = 0; pcpu_hits = 0; pcpu_refills = 0;
    numa_local = 0; numa_borrows = 0; page_steals = 0 }

(* --- Page -> home queue ----------------------------------------------- *)

let page_group t p = p.pfn / t.multiple

let page_domain t p =
  if t.domains = 1 then 0
  else min (t.domains - 1) (page_group t p * t.domains / t.span_groups)

let page_color t p = page_group t p land (t.colors - 1)

let qindex t p = (page_domain t p * t.colors) + page_color t p

let create ~phys ~multiple ?(frame_limit = max_int) () =
  if not (is_power_of_two multiple) then
    invalid_arg "Resident.create: multiple must be a power of two";
  let frames = min frame_limit (Phys_mem.frame_count phys) in
  let groups = frames / multiple in
  let t =
    {
      phys;
      page_size = multiple * Phys_mem.page_size phys;
      multiple;
      span_groups = max 1 groups;
      hash = Hashtbl.create 1024;
      active = Dlist.create ();
      inactive = Dlist.create ();
      total = 0;
      colors = 1;
      domains = 1;
      cpus = 1;
      cache_size = 0;
      refill_batch = 8;
      lock_sim = false;
      lock_hold = 60;
      free_min_share = 0;
      hooks = None;
      queues = [| Dlist.create () |];
      qlock_free = [| 0 |];
      qlock_epoch = [| -1 |];
      dom_free = [| 0 |];
      caches = [| [] |];
      cache_count = [| 0 |];
      free_total = 0;
      rotor = 0;
      c = fresh_counters ();
    }
  in
  for g = 0 to groups - 1 do
    let base = g * multiple in
    let usable = ref true in
    for i = 0 to multiple - 1 do
      if not (Phys_mem.frame_exists phys (base + i)) then usable := false
    done;
    if !usable then begin
      let p =
        {
          pfn = base;
          pg_obj = None;
          pg_offset = 0;
          pg_wire_count = 0;
          pg_busy = false;
          pg_prefetched = false;
          pg_inflight = None;
          pg_queue = Q_free;
          pg_queue_node = None;
          pg_obj_node = None;
          pg_requeues = 0;
        }
      in
      p.pg_queue_node <- Some (Dlist.push_back t.queues.(0) p);
      t.dom_free.(0) <- t.dom_free.(0) + 1;
      t.free_total <- t.free_total + 1;
      t.total <- t.total + 1
    end
  done;
  t

let page_size t = t.page_size
let multiple t = t.multiple
let total_pages t = t.total
let free_count t = t.free_total
let active_count t = Dlist.length t.active
let inactive_count t = Dlist.length t.inactive

let colors t = t.colors
let domains t = t.domains
let cache_size t = t.cache_size
let domain_free t d = t.dom_free.(d)
let cached_count t = Array.fold_left ( + ) 0 t.cache_count
let domain_of_cpu t ~cpu = if t.domains = 1 then 0 else cpu mod t.domains

let counters t = t.c

let reset_counters t =
  let c = t.c in
  c.color_hits <- 0; c.color_misses <- 0;
  c.pcpu_hits <- 0; c.pcpu_refills <- 0;
  c.numa_local <- 0; c.numa_borrows <- 0;
  c.page_steals <- 0

let set_hooks t h = t.hooks <- Some h

let set_lock_sim t ?hold on =
  t.lock_sim <- on;
  match hold with
  | Some h -> t.lock_hold <- max 0 h
  | None -> ()

let set_free_min_share t n = t.free_min_share <- max 0 n

(* --- Queue plumbing ---------------------------------------------------- *)

(* Pages in a magazine are [Q_free] with no queue node; they never meet
   [unlink_queue] (magazines are popped explicitly), so a node-less
   [Q_free] page arriving here is a double free. *)
let unlink_queue t p =
  match p.pg_queue, p.pg_queue_node with
  | Q_free, Some node ->
    let d = page_domain t p in
    Dlist.remove t.queues.(qindex t p) node;
    t.dom_free.(d) <- t.dom_free.(d) - 1;
    t.free_total <- t.free_total - 1
  | Q_active, Some node -> Dlist.remove t.active node
  | Q_inactive, Some node -> Dlist.remove t.inactive node
  | Q_none, None -> ()
  | _, _ -> assert false

let set_queue t p q =
  unlink_queue t p;
  p.pg_queue <- q;
  p.pg_queue_node <-
    (match q with
     | Q_none -> None
     | Q_active -> Some (Dlist.push_back t.active p)
     | Q_inactive -> Some (Dlist.push_back t.inactive p)
     | Q_free ->
       let d = page_domain t p in
       t.dom_free.(d) <- t.dom_free.(d) + 1;
       t.free_total <- t.free_total + 1;
       Some (Dlist.push_back t.queues.(qindex t p) p))

(* --- Magazines --------------------------------------------------------- *)

let cache_push t ~cpu p =
  p.pg_queue <- Q_free;
  p.pg_queue_node <- None;
  t.caches.(cpu) <- p :: t.caches.(cpu);
  t.cache_count.(cpu) <- t.cache_count.(cpu) + 1;
  t.free_total <- t.free_total + 1

let cache_pop t ~cpu =
  match t.caches.(cpu) with
  | [] -> None
  | p :: rest ->
    t.caches.(cpu) <- rest;
    t.cache_count.(cpu) <- t.cache_count.(cpu) - 1;
    t.free_total <- t.free_total - 1;
    p.pg_queue <- Q_none;
    Some p

(* --- Shared-queue lock simulation -------------------------------------- *)

(* Same scheme as [Vm_object] write locks: each queue keeps the absolute
   cycle its last critical section released at; an acquirer whose clock
   is behind that stamp pays the residue as a lock stall, then holds the
   queue for [lock_hold] cycles charged to its own clock.  Stamps from
   before a clock reset are expired by the epoch.  A single CPU can
   never trail its own release stamp, so the uncontended case charges
   only the hold. *)
let lock_acquire t ~cpu ~qi =
  if t.lock_sim then
    match t.hooks with
    | None -> ()
    | Some h ->
      let epoch = h.hk_epoch () in
      let now = h.hk_now ~cpu in
      let stamp = if t.qlock_epoch.(qi) = epoch then t.qlock_free.(qi) else 0 in
      let residue = stamp - now in
      if residue > 0 then h.hk_stall ~cpu residue;
      if t.lock_hold > 0 then h.hk_charge ~cpu t.lock_hold;
      t.qlock_free.(qi) <- max now stamp + t.lock_hold;
      t.qlock_epoch.(qi) <- epoch

(* --- Allocation -------------------------------------------------------- *)

(* Take one page off the shared queues for [cpu], preferring color
   [want]: local domain first, borrowing from the best-stocked other
   domain when the local one is empty or beneath its share of free_min;
   within the domain, a widening search from the preferred color.
   Returns [None] only when every queue everywhere is empty. *)
let queue_take t ~cpu ~want ~lock =
  let d0 = domain_of_cpu t ~cpu in
  let d =
    if t.domains = 1 then 0
    else begin
      let local = t.dom_free.(d0) in
      if local > 0 && local >= t.free_min_share then d0
      else begin
        (* Borrow from the richest domain (ties to the first scanned,
           i.e. the nearest neighbour upward) — which may still be the
           local one if nobody is better stocked. *)
        let best = ref d0 and best_n = ref local in
        for i = 1 to t.domains - 1 do
          let dd = (d0 + i) mod t.domains in
          if t.dom_free.(dd) > !best_n then begin
            best := dd;
            best_n := t.dom_free.(dd)
          end
        done;
        !best
      end
    end
  in
  if t.dom_free.(d) = 0 then None
  else begin
    (* The degenerate topology (one domain, one color) is the seed
       allocator; every hit would be trivially "local" and "matching",
       so the counters stay silent and zero there. *)
    if t.domains > 1 then
      if d = d0 then t.c.numa_local <- t.c.numa_local + 1
      else t.c.numa_borrows <- t.c.numa_borrows + 1;
    let mask = t.colors - 1 in
    let rec search i =
      let col = (want + i) land mask in
      let qi = (d * t.colors) + col in
      match Dlist.first t.queues.(qi) with
      | Some node ->
        if t.colors > 1 then
          if i = 0 then t.c.color_hits <- t.c.color_hits + 1
          else t.c.color_misses <- t.c.color_misses + 1;
        if lock then lock_acquire t ~cpu ~qi;
        let p = Dlist.value node in
        set_queue t p Q_none;
        p
      | None -> search (i + 1) (* terminates: dom_free.(d) > 0 *)
    in
    Some (search 0)
  end

(* Last resort when the shared queues are dry but magazines still hold
   pages (they are part of [free_count], so the watermark logic believes
   in them): raid another CPU's magazine. *)
let steal t ~cpu =
  let n = Array.length t.caches in
  let rec scan i =
    if i >= n then None
    else begin
      let v = (cpu + 1 + i) mod n in
      if v <> cpu && t.cache_count.(v) > 0 then begin
        match cache_pop t ~cpu:v with
        | Some p ->
          t.c.page_steals <- t.c.page_steals + 1;
          (match t.hooks with
           | Some h -> h.hk_steal ~cpu ~victim:v ~page:p
           | None -> ());
          Some p
        | None -> assert false
      end
      else scan (i + 1)
    end
  in
  scan 0

let alloc ?cpu ?color t =
  let cpu = match cpu with Some c when c >= 0 -> c | _ -> 0 in
  let mask = t.colors - 1 in
  let want =
    match color with
    | Some c -> c land mask
    | None ->
      let w = t.rotor land mask in
      t.rotor <- (w + 1) land mask;
      w
  in
  let mag = t.cache_size > 0 && cpu < Array.length t.caches in
  let p =
    if mag && t.cache_count.(cpu) > 0 then begin
      t.c.pcpu_hits <- t.c.pcpu_hits + 1;
      cache_pop t ~cpu
    end
    else if mag then begin
      (* Refill: one trip to the shared queues (one lock acquisition)
         buys a whole batch; the extras go into the magazine so the next
         refill_batch - 1 allocations never touch shared state. *)
      match queue_take t ~cpu ~want ~lock:true with
      | None -> steal t ~cpu
      | Some first ->
        t.c.pcpu_refills <- t.c.pcpu_refills + 1;
        let filled = ref true in
        for _ = 2 to t.refill_batch do
          if !filled then
            match queue_take t ~cpu ~want ~lock:false with
            | Some extra -> cache_push t ~cpu extra
            | None -> filled := false
        done;
        Some first
    end
    else
      match queue_take t ~cpu ~want ~lock:true with
      | Some p -> Some p
      | None -> steal t ~cpu
  in
  (match p with Some p -> assert (p.pg_obj = None) | None -> ());
  p

(* --- Object identity --------------------------------------------------- *)

let lookup t ~obj ~offset = Hashtbl.find_opt t.hash (obj.obj_id, offset)

let insert t p ~obj ~offset =
  assert (p.pg_obj = None);
  assert (offset mod t.page_size = 0);
  assert (not (Hashtbl.mem t.hash (obj.obj_id, offset)));
  p.pg_obj <- Some obj;
  p.pg_offset <- offset;
  p.pg_obj_node <- Some (Dlist.push_back obj.obj_pages p);
  Hashtbl.add t.hash (obj.obj_id, offset) p

let remove_from_object t p =
  match p.pg_obj, p.pg_obj_node with
  | Some obj, Some node ->
    Hashtbl.remove t.hash (obj.obj_id, p.pg_offset);
    Dlist.remove obj.obj_pages node;
    p.pg_obj <- None;
    p.pg_obj_node <- None;
    p.pg_offset <- 0
  | None, None -> ()
  | Some _, None | None, Some _ -> assert false

(* --- Freeing ----------------------------------------------------------- *)

let free_page ?cpu t p =
  remove_from_object t p;
  p.pg_busy <- false;
  p.pg_prefetched <- false;
  p.pg_inflight <- None;
  p.pg_wire_count <- 0;
  p.pg_requeues <- 0;
  let mag =
    match cpu with
    | Some c when t.cache_size > 0 && c >= 0 && c < Array.length t.caches ->
      Some c
    | _ -> None
  in
  match mag with
  | None ->
    if t.lock_sim then
      lock_acquire t
        ~cpu:(match cpu with Some c -> c | None -> 0)
        ~qi:(qindex t p);
    set_queue t p Q_free
  | Some c ->
    set_queue t p Q_none;
    if t.cache_count.(c) >= t.cache_size then begin
      (* Overflowing magazine: drain a batch back to the colored queues
         in one lock trip, then keep the just-freed (hottest) page. *)
      lock_acquire t ~cpu:c ~qi:(qindex t p);
      let n = min t.refill_batch t.cache_count.(c) in
      for _ = 1 to n do
        match cache_pop t ~cpu:c with
        | Some q -> set_queue t q Q_free
        | None -> ()
      done
    end;
    cache_push t ~cpu:c p

let enqueue t p q =
  assert (q <> Q_free);
  set_queue t p q

(* Free-behind: a page deactivated behind a streaming read goes to the
   *head* of the inactive queue — the next page the daemon reclaims —
   so the stream eats its own wake before anyone else's working set. *)
let enqueue_inactive_front t p =
  unlink_queue t p;
  p.pg_queue <- Q_inactive;
  p.pg_queue_node <- Some (Dlist.push_front t.inactive p)

let take_pop t lst =
  match Dlist.first lst with
  | None -> None
  | Some node ->
    let p = Dlist.value node in
    set_queue t p Q_none;
    Some p

let take_inactive t = take_pop t t.inactive
let take_active t = take_pop t t.active

let iter_free t f =
  Array.iter (fun q -> Dlist.iter f q) t.queues;
  Array.iter (fun mag -> List.iter f mag) t.caches

let object_pages o = Dlist.to_list o.obj_pages

(* --- Reconfiguration and pressure -------------------------------------- *)

let drain_caches t =
  Array.iteri
    (fun cpu _ ->
       let rec loop () =
         match cache_pop t ~cpu with
         | Some p ->
           set_queue t p Q_free;
           loop ()
         | None -> ()
       in
       loop ())
    t.caches

let configure t ?colors ?domains ?cpus ?cache ?refill () =
  let colors = match colors with Some c -> c | None -> t.colors in
  let domains = match domains with Some d -> d | None -> t.domains in
  let cpus = match cpus with Some n -> n | None -> t.cpus in
  let cache = match cache with Some n -> n | None -> t.cache_size in
  if not (is_power_of_two colors) then
    invalid_arg "Resident.configure: colors must be a power of two";
  if domains < 1 || cpus < 1 || cache < 0 then
    invalid_arg "Resident.configure: bad topology";
  (* Collect every free page — queues in index order, then magazines —
     and re-bucket under the new topology, preserving relative order. *)
  let pages = ref [] in
  Array.iter
    (fun q ->
       let rec loop () =
         match Dlist.first q with
         | None -> ()
         | Some node ->
           let p = Dlist.value node in
           set_queue t p Q_none;
           pages := p :: !pages;
           loop ()
       in
       loop ())
    t.queues;
  Array.iteri
    (fun cpu _ ->
       let rec loop () =
         match cache_pop t ~cpu with
         | Some p ->
           pages := p :: !pages;
           loop ()
         | None -> ()
       in
       loop ())
    t.caches;
  t.colors <- colors;
  t.domains <- domains;
  t.cpus <- cpus;
  t.cache_size <- cache;
  (match refill with Some r -> t.refill_batch <- max 1 r | None -> ());
  let nq = domains * colors in
  t.queues <- Array.init nq (fun _ -> Dlist.create ());
  t.qlock_free <- Array.make nq 0;
  t.qlock_epoch <- Array.make nq (-1);
  t.dom_free <- Array.make domains 0;
  t.caches <- Array.make cpus [];
  t.cache_count <- Array.make cpus 0;
  t.rotor <- 0;
  List.iter (fun p -> set_queue t p Q_free) (List.rev !pages)

(* --- Conservation ------------------------------------------------------ *)

let conservation_errors t =
  let errs = ref [] in
  let note fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  let queued = ref 0 in
  Array.iteri
    (fun qi q ->
       queued := !queued + Dlist.length q;
       Dlist.iter
         (fun p ->
            if p.pg_queue <> Q_free then
              note "queued page pfn=%d not marked free" p.pfn;
            if qindex t p <> qi then
              note "page pfn=%d on queue %d, home is %d" p.pfn qi
                (qindex t p))
         q)
    t.queues;
  let per_dom = Array.make t.domains 0 in
  Array.iteri
    (fun qi q -> per_dom.(qi / t.colors) <- per_dom.(qi / t.colors)
        + Dlist.length q)
    t.queues;
  Array.iteri
    (fun d n ->
       if t.dom_free.(d) <> n then
         note "domain %d free count %d, queues hold %d" d t.dom_free.(d) n)
    per_dom;
  let cached = ref 0 in
  Array.iteri
    (fun cpu mag ->
       if List.length mag <> t.cache_count.(cpu) then
         note "cpu %d magazine count %d, list holds %d" cpu
           t.cache_count.(cpu) (List.length mag);
       cached := !cached + t.cache_count.(cpu);
       List.iter
         (fun p ->
            if p.pg_queue <> Q_free || p.pg_queue_node <> None then
              note "cached page pfn=%d in inconsistent state" p.pfn;
            if p.pg_obj <> None then
              note "cached page pfn=%d still owned" p.pfn)
         mag)
    t.caches;
  if !queued + !cached <> t.free_total then
    note "free_count %d but queues hold %d and magazines %d" t.free_total
      !queued !cached;
  List.rev !errs

let check_conservation t = conservation_errors t = []
