open Types
open Mach_pmap

let make_obj ~size ~pager ~temporary ~can_persist =
  {
    obj_id = fresh_obj_id ();
    obj_size = size;
    obj_ref = 1;
    obj_pages = Mach_util.Dlist.create ();
    obj_pager = pager;
    obj_shadow = None;
    obj_shadow_offset = 0;
    obj_temporary = temporary;
    obj_can_persist = can_persist;
    obj_cached = false;
    obj_readonly = false;
    obj_dead = false;
    obj_health = fresh_health ();
    obj_rescue = None;
    obj_degrade = Degrade_zero_fill;
    obj_streams = [||];
    obj_gen = 0;
    obj_lock_free = 0;
    obj_lock_epoch = 0;
  }

(* --- Object locking, simulated on the virtual clock -------------------

   The simulator is single-threaded, so an object lock never excludes
   anyone; what it models is the *time* CPUs of a multiprocessor would
   lose to contention.  Every exclusive (writer) critical section stamps
   the object with the absolute cycle at which it released
   ([obj_lock_free]) and bumps the generation counter [obj_gen].  A later
   acquisition by a CPU whose own clock is still behind that stamp would,
   on real hardware, have found the lock held: it stalls for the residue
   and the cycles are attributed to [Lock_wait].  On a single CPU the
   acquiring clock can never be behind the stamp, so every stall is zero
   and the locking layer is cycle-invisible — exactly the uncontended
   fast path.

   Readers (the resident-fault fast path) are optimistic: they read
   [obj_gen], do the lookup with no lock traffic, and validate the
   generation afterwards.  Validation failure is indistinguishable here
   from overlapping a writer hold in virtual time, so [lock_read] charges
   the same residue a writer would have seen — the retry cost — and
   nothing when uncontended.

   Stamps are only meaningful within one [Machine.reset_clocks] epoch;
   a stamp from an older epoch is expired (the clocks it was measured
   against are gone). *)

let lock_stall_residue (sys : Vm_sys.t) o =
  if o.obj_lock_epoch = Mach_hw.Machine.reset_epoch sys.Vm_sys.machine then
    max 0 (o.obj_lock_free - Vm_sys.now sys)
  else 0

let charge_stall (sys : Vm_sys.t) o cycles =
  if cycles > 0 then begin
    sys.Vm_sys.stats.Vm_sys.lock_stalls <-
      sys.Vm_sys.stats.Vm_sys.lock_stalls + 1;
    sys.Vm_sys.stats.Vm_sys.lock_stall_cycles <-
      sys.Vm_sys.stats.Vm_sys.lock_stall_cycles + cycles;
    Mach_hw.Machine.lock_stall sys.Vm_sys.machine
      ~cpu:(Vm_sys.current_cpu sys) cycles;
    Vm_sys.emit sys (Mach_obs.Obs.Lock_stall { obj = o.obj_id; cycles })
  end

let lock_read sys o = charge_stall sys o (lock_stall_residue sys o)

let lock_write (sys : Vm_sys.t) o f =
  charge_stall sys o (lock_stall_residue sys o);
  Fun.protect
    ~finally:(fun () ->
      o.obj_gen <- o.obj_gen + 1;
      o.obj_lock_epoch <-
        Mach_hw.Machine.reset_epoch sys.Vm_sys.machine;
      o.obj_lock_free <- Vm_sys.now sys)
    f

let create_anonymous (_sys : Vm_sys.t) ~size =
  make_obj ~size ~pager:None ~temporary:true ~can_persist:false

let lookup_resident (sys : Vm_sys.t) o ~offset =
  Resident.lookup sys.Vm_sys.resident ~obj:o ~offset

let free_page (sys : Vm_sys.t) p =
  (* No pmap may retain a mapping to a frame about to be recycled; this is
     a time-critical invalidation (case 1 of Section 5.2). *)
  let free () =
    if p.pg_prefetched then
      sys.Vm_sys.stats.Vm_sys.prefetch_wasted <-
        sys.Vm_sys.stats.Vm_sys.prefetch_wasted + 1;
    Vm_sys.burst_forget sys p;
    Pmap_domain.remove_all sys.Vm_sys.domain ~pfn:p.pfn ~urgent:true;
    Pmap_domain.clear_modified sys.Vm_sys.domain ~pfn:p.pfn;
    Pmap_domain.clear_referenced sys.Vm_sys.domain ~pfn:p.pfn;
    Resident.free_page ~cpu:(Vm_sys.current_cpu sys) sys.Vm_sys.resident p
  in
  match p.pg_obj with
  | Some o -> lock_write sys o free
  | None -> free ()

let reference o =
  assert (not o.obj_dead);
  o.obj_ref <- o.obj_ref + 1

(* Termination: free all pages and drop the shadow reference. *)
let rec terminate sys o =
  assert (o.obj_ref = 0);
  assert (not o.obj_dead);
  o.obj_dead <- true;
  (* Read-ahead streams die with the object: the slot array carries
     reader cursors, and a recycled object id must never inherit them.
     (Cache *eviction* comes through here too; only [cache_revive]
     keeps streams alive, so a cached file's window survives between
     reads but never survives termination.) *)
  o.obj_streams <- [||];
  List.iter (fun p -> free_page sys p) (Resident.object_pages o);
  (* A dead object's swap chunks are garbage: credit them back to the
     swap pool ([Swap_pager.release] is a no-op for non-swap pagers). *)
  (match o.obj_pager with
   | Some pager ->
     Hashtbl.remove sys.Vm_sys.pager_objects pager.pgr_id;
     Swap_pager.release pager
   | None -> ());
  (match o.obj_rescue with
   | Some rescue -> Swap_pager.release rescue
   | None -> ());
  match o.obj_shadow with
  | None -> ()
  | Some backing ->
    o.obj_shadow <- None;
    deallocate sys backing

and cache_insert sys o =
  o.obj_cached <- true;
  sys.Vm_sys.object_cache <- o :: sys.Vm_sys.object_cache;
  (* Trim the cache to its limit, terminating the least recently used. *)
  let rec split n = function
    | [] -> ([], [])
    | x :: rest when n > 0 ->
      let keep, evict = split (n - 1) rest in
      (x :: keep, evict)
    | rest -> ([], rest)
  in
  let keep, evict =
    split sys.Vm_sys.object_cache_limit sys.Vm_sys.object_cache
  in
  sys.Vm_sys.object_cache <- keep;
  List.iter
    (fun victim ->
       victim.obj_cached <- false;
       terminate sys victim)
    evict

and deallocate sys o =
  assert (o.obj_ref > 0);
  o.obj_ref <- o.obj_ref - 1;
  if o.obj_ref = 0 then begin
    let cacheable =
      sys.Vm_sys.cache_enabled && o.obj_can_persist
      && (match o.obj_pager with
          | Some p -> !(p.pgr_should_cache)
          | None -> false)
    in
    if cacheable then cache_insert sys o else terminate sys o
  end

let cache_revive sys o =
  assert o.obj_cached;
  o.obj_cached <- false;
  o.obj_ref <- 1;
  sys.Vm_sys.object_cache <-
    List.filter (fun o' -> o'.obj_id <> o.obj_id) sys.Vm_sys.object_cache

let create_with_pager sys pager ~size =
  match Hashtbl.find_opt sys.Vm_sys.pager_objects pager.pgr_id with
  | Some o when o.obj_cached ->
    sys.Vm_sys.stats.Vm_sys.cache_hits <-
      sys.Vm_sys.stats.Vm_sys.cache_hits + 1;
    cache_revive sys o;
    o
  | Some o ->
    reference o;
    o
  | None ->
    sys.Vm_sys.stats.Vm_sys.cache_misses <-
      sys.Vm_sys.stats.Vm_sys.cache_misses + 1;
    let o =
      make_obj ~size ~pager:(Some pager) ~temporary:false ~can_persist:true
    in
    Hashtbl.add sys.Vm_sys.pager_objects pager.pgr_id o;
    o

let chain_length o =
  let rec loop acc o =
    match o.obj_shadow with
    | None -> acc
    | Some s -> loop (acc + 1) s
  in
  loop 1 o

let shadow sys o ~offset ~size =
  (* Interposing a shadow rewrites what faults on [o]'s range resolve to:
     an exclusive section on [o]. *)
  lock_write sys o (fun () ->
      let s =
        make_obj ~size ~pager:None ~temporary:true ~can_persist:false
      in
      s.obj_shadow <- Some o; (* consumes the caller's reference to [o] *)
      s.obj_shadow_offset <- offset;
      sys.Vm_sys.stats.Vm_sys.shadows_created <-
        sys.Vm_sys.stats.Vm_sys.shadows_created + 1;
      if Mach_obs.Obs.enabled (Vm_sys.tracer sys) then
        Vm_sys.emit sys
          (Mach_obs.Obs.Object_shadow { depth = chain_length s });
      s)

let chain_lookup sys o ~offset =
  assert (offset mod sys.Vm_sys.page_size = 0);
  let rec loop cur off =
    match lookup_resident sys cur ~offset:off with
    | Some p -> `Found (cur, p, off)
    | None ->
      (match cur.obj_shadow with
       | Some next -> loop next (off + cur.obj_shadow_offset)
       | None -> `Absent (cur, off))
  in
  loop o offset

(* Collapse (Section 3.5): while the object [o] shadows is a temporary,
   pager-less object referenced only by [o], merge it away.  Pages of the
   backing not obscured by [o] move up; obscured pages are freed.  When a
   level is blocked (the backing is shared or managed), the walk continues
   deeper: an intermediate shadow can absorb *its* backing even while it
   is itself still shared — this is what keeps the chains short while a
   parent task is alive between forks. *)
let rec collapse sys o =
  if not sys.Vm_sys.collapse_enabled then ()
  else begin
    let rec step () =
      match o.obj_shadow with
      | None -> ()
      | Some backing ->
        if
          backing.obj_ref = 1 && backing.obj_pager = None
          && backing.obj_temporary && not backing.obj_cached
        then begin
          List.iter
            (fun p ->
               let new_off = p.pg_offset - o.obj_shadow_offset in
               let visible =
                 new_off >= 0 && new_off < o.obj_size
                 && lookup_resident sys o ~offset:new_off = None
               in
               if visible then begin
                 Resident.remove_from_object sys.Vm_sys.resident p;
                 Resident.insert sys.Vm_sys.resident p ~obj:o
                   ~offset:new_off
               end
               else free_page sys p)
            (Resident.object_pages backing);
          o.obj_shadow <- backing.obj_shadow;
          o.obj_shadow_offset <-
            o.obj_shadow_offset + backing.obj_shadow_offset;
          backing.obj_shadow <- None;
          backing.obj_ref <- 0;
          backing.obj_dead <- true;
          (* The merged-away backing is dead without passing through
             [terminate]: drop its stream slots the same way, so a
             stale cursor cannot ride along if the record is reused. *)
          backing.obj_streams <- [||];
          sys.Vm_sys.stats.Vm_sys.collapses <-
            sys.Vm_sys.stats.Vm_sys.collapses + 1;
          step ()
        end
        else collapse sys backing
    in
    step ()
  end

let uncache sys o =
  if o.obj_cached then begin
    sys.Vm_sys.object_cache <-
      List.filter (fun o' -> o'.obj_id <> o.obj_id) sys.Vm_sys.object_cache;
    o.obj_cached <- false;
    terminate sys o
  end

let cached_count sys = List.length sys.Vm_sys.object_cache

let drain_cache sys =
  let victims = sys.Vm_sys.object_cache in
  sys.Vm_sys.object_cache <- [];
  List.iter
    (fun o ->
       o.obj_cached <- false;
       terminate sys o)
    victims
