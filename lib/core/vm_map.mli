(** Address maps (Section 3.2) and sharing maps (Section 3.4).

    An address map is a sorted doubly-linked list of entries, each mapping
    a contiguous range of virtual addresses onto a contiguous area of a
    memory object; different entries may not overlap.  A last-fault hint
    accelerates lookups.  All addresses within an entry share protection
    and inheritance attributes, so range operations may have to {e clip}
    entries at range boundaries.

    Read/write sharing is expressed by entries that point to a {e sharing
    map} (a map usable as a backing), so that map operations applying to
    all sharers are applied once, to the sharing map.  Sharing maps are
    never nested.

    Copy operations (fork with [Copy] inheritance, [vm_copy], out-of-line
    message transfer) never copy data: they take object references, mark
    both sides copy-on-write and write-protect resident pages through
    [pmap_copy_on_write]. *)

open Types

val create :
  Vm_sys.t -> pmap:Mach_pmap.Pmap.t option -> low:int -> high:int -> vmap
(** [create sys ~pmap ~low ~high] is an empty map covering [\[low, high)].
    Sharing maps pass [pmap:None]. *)

val reference : vmap -> unit
(** Take a reference (sharing maps are referenced by each sharer). *)

val deallocate : Vm_sys.t -> vmap -> unit
(** Release a reference; on the last one every entry is removed, backing
    references are released, and the pmap (if any) is destroyed. *)

val entry_count : vmap -> int
(** Number of entries (a typical UNIX process has about five). *)

val entries : vmap -> entry list
(** The entries in ascending address order (read-only use). *)

val find : vmap -> va:int -> entry option
(** [find m ~va] is the entry containing [va], using and updating the
    last-fault hint. *)

val beyond_steps : int ref
(** Nodes examined by the internal beyond-[va] scans (range operations).
    Both [find]'s hint and this scan's hint fast path keep the count at
    O(distance from the hint); exposed so tests can pin that down. *)

val resolve_object_at : Vm_sys.t -> vmap -> va:int -> (obj * int) option
(** [resolve_object_at sys m ~va] is the backing object and byte offset
    for [va], looking through a sharing map if needed; [None] if
    unallocated or never touched. *)

(** {1 Allocation} *)

val allocate :
  Vm_sys.t -> vmap -> ?at:int -> size:int -> anywhere:bool -> unit ->
  (int, Kr.t) result
(** [vm_allocate]: allocate [size] bytes of zero-filled memory, either
    [~anywhere:true] (first fit; [?at] is a mere hint) or at exactly [at].
    Sizes round up to the page size.  Returns the chosen address. *)

val allocate_object :
  Vm_sys.t -> vmap -> obj -> offset:int -> ?at:int -> size:int ->
  anywhere:bool -> ?prot:Mach_hw.Prot.t -> ?max_prot:Mach_hw.Prot.t ->
  ?copy:bool -> unit -> (int, Kr.t) result
(** [vm_allocate_with_pager]: map [size] bytes of [obj] starting at
    [offset].  The map takes over the caller's reference to [obj].
    [copy:true] maps it copy-on-write (the mapping never writes back). *)

val deallocate_range :
  Vm_sys.t -> vmap -> addr:int -> size:int -> (unit, Kr.t) result
(** [vm_deallocate]: make a range no longer valid, releasing backing
    references and removing hardware mappings.  Deallocating never-
    allocated space is allowed (it is a no-op there), as in Mach. *)

(** {1 Attributes} *)

val protect :
  Vm_sys.t -> vmap -> addr:int -> size:int -> set_max:bool ->
  prot:Mach_hw.Prot.t -> (unit, Kr.t) result
(** [vm_protect]: set current (or, with [set_max], maximum) protection.
    The maximum can only be lowered; lowering it below the current
    protection drags the current protection down.  Raising the current
    protection above the maximum fails with [Protection_failure]. *)

val set_inheritance :
  Vm_sys.t -> vmap -> addr:int -> size:int -> Inheritance.t ->
  (unit, Kr.t) result
(** [vm_inherit]: set the inheritance attribute of a range. *)

type region_info = {
  ri_start : int;
  ri_end : int;
  ri_prot : Mach_hw.Prot.t;
  ri_max_prot : Mach_hw.Prot.t;
  ri_inherit : Inheritance.t;
  ri_shared : bool;        (** backed by a sharing map *)
  ri_needs_copy : bool;    (** still copy-on-write *)
}

val regions : vmap -> region_info list
(** [vm_regions]: describe the allocated regions. *)

(** {1 Fork} *)

val fork : Vm_sys.t -> vmap -> child_pmap:Mach_pmap.Pmap.t -> vmap
(** [fork sys parent ~child_pmap] builds a child map according to each
    entry's inheritance: [Shared] entries are converted to point at a
    sharing map referenced by both; [Copy] entries are copied
    copy-on-write ([pmap_copy_on_write] on resident pages, both sides
    marked needs-copy); [None_] entries leave the child range
    unallocated. *)

(** {1 Fault-path lookup} *)

type fault_lookup = {
  fl_map : vmap;        (** the map holding the authoritative entry
                            (a sharing map, or the task map itself) *)
  fl_entry : entry;     (** that entry *)
  fl_offset : int;      (** byte offset in the entry's backing for the
                            faulting page *)
  fl_prot : Mach_hw.Prot.t; (** effective protection across levels *)
}

val lookup_fault :
  Vm_sys.t -> vmap -> va:int -> write:bool -> (fault_lookup, Kr.t) result
(** [lookup_fault sys m ~va ~write] resolves a page fault at [va]: finds
    the entry (following one sharing-map level), checks the access against
    the effective protection and returns where the backing object lives.
    Errors become [Memory_violation] for the faulting thread. *)

(** {1 Virtual copy (vm_copy, out-of-line messages)} *)

type map_copy
(** An extracted copy of an address range: object references held
    copy-on-write, not data.  Sending an entire address space in a message
    costs reference manipulation only. *)

val copy_size : map_copy -> int
(** Total bytes the copy represents. *)

val extract_copy :
  Vm_sys.t -> vmap -> addr:int -> size:int -> (map_copy, Kr.t) result
(** [extract_copy sys m ~addr ~size] captures [\[addr, addr+size)]
    copy-on-write: source entries are marked needs-copy and their resident
    pages write-protected everywhere. *)

val insert_copy :
  Vm_sys.t -> vmap -> map_copy -> ?at:int -> unit -> (int, Kr.t) result
(** [insert_copy sys m c ()] maps the copy into [m] (anywhere, or at
    [at] which must be free), consuming the copy's references.  Returns
    the base address. *)

val discard_copy : Vm_sys.t -> map_copy -> unit
(** Release a copy that will not be inserted (e.g. a destroyed
    message). *)

(** {1 Housekeeping} *)

val simplify : Vm_sys.t -> vmap -> unit
(** Merge adjacent entries that map contiguous areas of the same object
    with identical attributes (Mach's [vm_map_simplify]). *)
