(** Tasks (Section 2): the basic unit of resource allocation.

    A task owns a paged virtual address space (an address map plus its
    pmap).  The UNIX notion of a process is a task with a single thread;
    thread scheduling is out of scope here, but {!Kernel} tracks which
    task runs on which CPU.

    [fork] implements Mach's UNIX fork: the child's address map is built
    from the parent's inheritance values, copy by default, so the child is
    a copy-on-write copy of the parent. *)

type t = {
  task_id : int;
  task_name : string;
  task_map : Types.vmap;
  task_pmap : Mach_pmap.Pmap.t;
  mutable task_dead : bool;
  mutable task_oom_killed : bool;
      (** killed by the out-of-memory policy: the address space is gone
          and every fault or Vm_user call answers KERN_MEMORY_ERROR *)
}

val create : Vm_sys.t -> ?name:string -> unit -> t
(** [create sys ()] is a task with an empty address space covering one
    page above address 0 (so null dereferences fault) up to the
    architecture's user address limit.  The task is registered as an
    OOM candidate until terminated. *)

val anon_resident : t -> int
(** Anonymous resident pages the task holds — the OOM policy's victim
    metric: each anonymous entry's shadow chain counted down to the
    first object something else also references. *)

val fork : Vm_sys.t -> t -> t
(** [fork sys parent] builds the child task per the parent map's
    inheritance attributes. *)

val terminate : Vm_sys.t -> t -> unit
(** [terminate sys t] deallocates the address space (releasing every
    backing reference and destroying the pmap) and withdraws the task
    from the OOM candidate list. *)

val map : t -> Types.vmap
val pmap : t -> Mach_pmap.Pmap.t
