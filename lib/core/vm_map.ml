open Mach_util
open Mach_hw
open Types
open Mach_pmap

(* ---- alignment helpers ---------------------------------------------- *)

let page_trunc (sys : Vm_sys.t) addr = addr - (addr mod sys.Vm_sys.page_size)

let page_round (sys : Vm_sys.t) size =
  let ps = sys.Vm_sys.page_size in
  (size + ps - 1) / ps * ps

(* ---- construction ---------------------------------------------------- *)

let create (_sys : Vm_sys.t) ~pmap ~low ~high =
  {
    map_id = fresh_map_id ();
    map_entries = Dlist.create ();
    map_hint = None;
    map_pmap = pmap;
    map_ref = 1;
    map_low = low;
    map_high = high;
  }

let reference m = m.map_ref <- m.map_ref + 1

let entry_count m = Dlist.length m.map_entries

let entries m = Dlist.to_list m.map_entries

(* ---- entry search ---------------------------------------------------- *)

let contains e va = va >= e.e_start && va < e.e_end

(* The paper: fast lookup on faults is achieved by keeping last-fault
   hints, searching from the last entry found. *)
let find_node m ~va =
  let hit node =
    m.map_hint <- Some node;
    Some node
  in
  let scan_from start =
    let rec loop = function
      | None -> None
      | Some node ->
        let e = Dlist.value node in
        if contains e va then hit node
        else if e.e_start > va then None
        else loop (Dlist.next node)
    in
    loop start
  in
  match m.map_hint with
  | Some node when Dlist.linked node ->
    let e = Dlist.value node in
    if contains e va then hit node
    else if va >= e.e_end then scan_from (Dlist.next node)
    else scan_from (Dlist.first m.map_entries)
  | Some _ | None -> scan_from (Dlist.first m.map_entries)

let find m ~va =
  match find_node m ~va with
  | None -> None
  | Some node -> Some (Dlist.value node)

(* Steps taken by [first_node_beyond] scans; test instrumentation for
   the hint fast path. *)
let beyond_steps = ref 0

(* First entry whose end lies beyond [va] (i.e. containing or after).
   Mirrors the [find_node] fast path: when the last-fault hint sits
   at-or-before [va] the scan starts there instead of at the list head,
   so range operations near the hint are O(distance), not O(map). *)
let first_node_beyond m ~va =
  let rec loop = function
    | None -> None
    | Some node ->
      incr beyond_steps;
      if (Dlist.value node).e_end > va then Some node
      else loop (Dlist.next node)
  in
  let start =
    match m.map_hint with
    | Some node when Dlist.linked node && (Dlist.value node).e_start <= va ->
      Some node
    | Some _ | None -> Dlist.first m.map_entries
  in
  loop start

(* ---- backing reference management ------------------------------------ *)

let backing_ref = function
  | No_backing -> ()
  | Backed o -> Vm_object.reference o
  | Submap sm -> reference sm

let rec backing_unref sys = function
  | No_backing -> ()
  | Backed o -> Vm_object.deallocate sys o
  | Submap sm -> deallocate sys sm

(* ---- entry insertion and removal ------------------------------------- *)

and make_entry ~start_ ~end_ ~backing ~offset ~prot ~max_prot ~inherit_
    ~needs_copy =
  {
    e_start = start_;
    e_end = end_;
    e_backing = backing;
    e_offset = offset;
    e_prot = prot;
    e_max_prot = max_prot;
    e_inherit = inherit_;
    e_needs_copy = needs_copy;
    e_wired = false;
    e_node = None;
  }

and insert_entry m e =
  (* Keep the list sorted; ranges never overlap. *)
  let node =
    match first_node_beyond m ~va:e.e_start with
    | None -> Dlist.push_back m.map_entries e
    | Some node ->
      assert ((Dlist.value node).e_start >= e.e_end);
      Dlist.insert_before m.map_entries node e
  in
  e.e_node <- Some node

and remove_entry sys m node ~unmap =
  let e = Dlist.value node in
  (match m.map_hint with
   | Some h when h == node -> m.map_hint <- None
   | Some _ | None -> ());
  Dlist.remove m.map_entries node;
  e.e_node <- None;
  (match m.map_pmap with
   | Some pmap when unmap ->
     pmap.Pmap.remove ~start_va:e.e_start ~end_va:e.e_end
   | Some _ | None -> ());
  backing_unref sys e.e_backing

and deallocate sys m =
  assert (m.map_ref > 0);
  m.map_ref <- m.map_ref - 1;
  if m.map_ref = 0 then begin
    Dlist.iter_nodes (fun node -> remove_entry sys m node ~unmap:false) m.map_entries;
    match m.map_pmap with
    | Some pmap -> pmap.Pmap.destroy ()
    | None -> ()
  end

(* ---- clipping --------------------------------------------------------- *)

(* Split [e] so that it starts exactly at [addr]; the piece before [addr]
   becomes a new entry.  No-op when [addr] is outside (or at the start
   of) [e]. *)
let clip_start _sys m node addr =
  let e = Dlist.value node in
  if addr > e.e_start && addr < e.e_end then begin
    let left =
      make_entry ~start_:e.e_start ~end_:addr ~backing:e.e_backing
        ~offset:e.e_offset ~prot:e.e_prot ~max_prot:e.e_max_prot
        ~inherit_:e.e_inherit ~needs_copy:e.e_needs_copy
    in
    left.e_wired <- e.e_wired;
    backing_ref e.e_backing;
    e.e_offset <- e.e_offset + (addr - e.e_start);
    e.e_start <- addr;
    left.e_node <- Some (Dlist.insert_before m.map_entries node left)
  end

(* Split [e] so that it ends exactly at [addr]; the piece from [addr]
   onward becomes a new entry. *)
let clip_end _sys m node addr =
  let e = Dlist.value node in
  if addr > e.e_start && addr < e.e_end then begin
    let right =
      make_entry ~start_:addr ~end_:e.e_end ~backing:e.e_backing
        ~offset:(e.e_offset + (addr - e.e_start)) ~prot:e.e_prot
        ~max_prot:e.e_max_prot ~inherit_:e.e_inherit
        ~needs_copy:e.e_needs_copy
    in
    right.e_wired <- e.e_wired;
    backing_ref e.e_backing;
    e.e_end <- addr;
    right.e_node <- Some (Dlist.insert_after m.map_entries node right)
  end

(* Apply [f] to every entry node overlapping [lo, hi), clipped exactly to
   the range.  [f] may remove the node. *)
let iter_range_clipped sys m ~lo ~hi f =
  let rec loop node_opt =
    match node_opt with
    | None -> ()
    | Some node ->
      let e = Dlist.value node in
      if e.e_start >= hi then ()
      else begin
        clip_start sys m node lo;
        clip_end sys m node hi;
        let next = Dlist.next node in
        f node;
        loop next
      end
  in
  loop (first_node_beyond m ~va:lo)

(* ---- free-space search ------------------------------------------------ *)

let find_space m ~size ~hint_addr =
  let cursor = ref (max m.map_low hint_addr) in
  let result = ref None in
  let check_gap limit =
    if !result = None && !cursor + size <= limit then result := Some !cursor
  in
  Dlist.iter
    (fun e ->
       check_gap e.e_start;
       if e.e_end > !cursor then cursor := e.e_end)
    m.map_entries;
  check_gap m.map_high;
  !result

let range_free m ~lo ~hi =
  match first_node_beyond m ~va:lo with
  | None -> true
  | Some node -> (Dlist.value node).e_start >= hi

(* ---- allocation ------------------------------------------------------- *)

let default_max_prot = Prot.all

let alloc_common sys m ?at ~size ~anywhere ~backing ~offset ~prot ~max_prot
    ~needs_copy () =
  if size <= 0 then Error Kr.Invalid_argument
  else begin
    let size = page_round sys size in
    let place =
      if anywhere then begin
        let hint_addr =
          match at with Some a -> page_trunc sys a | None -> m.map_low
        in
        match find_space m ~size ~hint_addr with
        | Some addr -> Ok addr
        | None ->
          (* Retry from the bottom before giving up. *)
          (match find_space m ~size ~hint_addr:m.map_low with
           | Some addr -> Ok addr
           | None -> Error Kr.No_space)
      end
      else
        match at with
        | None -> Error Kr.Invalid_argument
        | Some a ->
          let a = page_trunc sys a in
          if a < m.map_low || a + size > m.map_high then
            Error Kr.Invalid_address
          else if range_free m ~lo:a ~hi:(a + size) then Ok a
          else Error Kr.No_space
    in
    match place with
    | Error _ as e -> e
    | Ok addr ->
      let e =
        make_entry ~start_:addr ~end_:(addr + size) ~backing ~offset ~prot
          ~max_prot ~inherit_:Inheritance.default ~needs_copy
      in
      insert_entry m e;
      Ok addr
  end

let allocate sys m ?at ~size ~anywhere () =
  alloc_common sys m ?at ~size ~anywhere ~backing:No_backing ~offset:0
    ~prot:Prot.read_write ~max_prot:default_max_prot ~needs_copy:false ()

(* Write-protect, in every pmap, the resident pages of [o] whose offsets
   lie in [lo, hi): the pmap_copy_on_write operation of Table 3-3 applied
   over a range. *)
let cow_protect sys o ~lo ~hi =
  List.iter
    (fun p ->
       if p.pg_offset >= lo && p.pg_offset < hi then
         Pmap_domain.copy_on_write sys.Vm_sys.domain ~pfn:p.pfn)
    (Resident.object_pages o)

let allocate_object sys m o ~offset ?at ~size ~anywhere
    ?(prot = Prot.read_write) ?(max_prot = default_max_prot)
    ?(copy = false) () =
  let r =
    alloc_common sys m ?at ~size ~anywhere ~backing:(Backed o) ~offset
      ~prot ~max_prot ~needs_copy:copy ()
  in
  (match r with
   | Ok _ when copy -> cow_protect sys o ~lo:offset ~hi:(offset + size)
   | Ok _ | Error _ -> ());
  r

let deallocate_range sys m ~addr ~size =
  if size < 0 then Error Kr.Invalid_argument
  else begin
    let lo = page_trunc sys addr in
    let hi = lo + page_round sys (size + (addr - lo)) in
    iter_range_clipped sys m ~lo ~hi (fun node ->
        remove_entry sys m node ~unmap:true);
    Ok ()
  end

(* ---- protection and inheritance -------------------------------------- *)

let pmap_protect_range m e prot =
  match m.map_pmap with
  | Some pmap ->
    pmap.Pmap.protect ~start_va:e.e_start ~end_va:e.e_end ~prot
  | None -> ()

let protect sys m ~addr ~size ~set_max ~prot =
  if size < 0 then Error Kr.Invalid_argument
  else begin
    let lo = page_trunc sys addr in
    let hi = lo + page_round sys (size + (addr - lo)) in
    (* Validate before mutating: raising current protection beyond the
       maximum fails as a whole. *)
    let ok = ref true in
    let rec validate node_opt =
      match node_opt with
      | None -> ()
      | Some node ->
        let e = Dlist.value node in
        if e.e_start < hi then begin
          if (not set_max) && not (Prot.subset prot ~of_:e.e_max_prot) then
            ok := false;
          validate (Dlist.next node)
        end
    in
    validate (first_node_beyond m ~va:lo);
    if not !ok then Error Kr.Protection_failure
    else begin
      iter_range_clipped sys m ~lo ~hi (fun node ->
          let e = Dlist.value node in
          if set_max then begin
            e.e_max_prot <- Prot.inter e.e_max_prot prot;
            if not (Prot.subset e.e_prot ~of_:e.e_max_prot) then begin
              e.e_prot <- Prot.inter e.e_prot e.e_max_prot;
              pmap_protect_range m e e.e_prot
            end
          end
          else begin
            e.e_prot <- prot;
            (* Hardware permissions only ever shrink here; raising takes
               effect lazily through faults. *)
            pmap_protect_range m e prot
          end);
      Ok ()
    end
  end

let set_inheritance sys m ~addr ~size inh =
  if size < 0 then Error Kr.Invalid_argument
  else begin
    let lo = page_trunc sys addr in
    let hi = lo + page_round sys (size + (addr - lo)) in
    iter_range_clipped sys m ~lo ~hi (fun node ->
        (Dlist.value node).e_inherit <- inh);
    Ok ()
  end

type region_info = {
  ri_start : int;
  ri_end : int;
  ri_prot : Prot.t;
  ri_max_prot : Prot.t;
  ri_inherit : Inheritance.t;
  ri_shared : bool;
  ri_needs_copy : bool;
}

let regions m =
  List.map
    (fun e ->
       {
         ri_start = e.e_start;
         ri_end = e.e_end;
         ri_prot = e.e_prot;
         ri_max_prot = e.e_max_prot;
         ri_inherit = e.e_inherit;
         ri_shared = is_submap e;
         ri_needs_copy = e.e_needs_copy;
       })
    (entries m)

(* ---- sharing maps ----------------------------------------------------- *)

(* Convert [e]'s backing into a sharing map holding the old backing, so
   that the region can be shared read/write across address maps. *)
let ensure_submap sys e =
  match e.e_backing with
  | Submap sm -> sm
  | (Backed _ | No_backing) as old ->
    let size = entry_size e in
    let sm = create sys ~pmap:None ~low:0 ~high:size in
    let sub =
      make_entry ~start_:0 ~end_:size ~backing:old ~offset:e.e_offset
        ~prot:e.e_prot ~max_prot:e.e_max_prot ~inherit_:e.e_inherit
        ~needs_copy:e.e_needs_copy
    in
    insert_entry sm sub;
    e.e_backing <- Submap sm; (* the old backing reference moved into sm *)
    e.e_offset <- 0;
    e.e_needs_copy <- false;
    sm

(* ---- copy-on-write copying ------------------------------------------- *)

(* Share [src]'s object copy-on-write; returns what the copy should be
   backed by.  [lo, hi) bounds the byte range of the object involved. *)
let cow_share_object sys o ~lo ~hi =
  Vm_object.reference o;
  cow_protect sys o ~lo ~hi;
  o

(* Build child-map entries for a parent entry with Copy inheritance,
   appending them to [push].  For plain entries one child entry results;
   for shared (sharing-map) entries, one per overlapping sub-entry, each
   marked copy-on-write on both sides. *)
let copy_entry_cow sys e push =
  match e.e_backing with
  | No_backing ->
    push
      (make_entry ~start_:e.e_start ~end_:e.e_end ~backing:No_backing
         ~offset:0 ~prot:e.e_prot ~max_prot:e.e_max_prot
         ~inherit_:e.e_inherit ~needs_copy:false)
  | Backed o ->
    let lo = e.e_offset and hi = e.e_offset + entry_size e in
    let o = cow_share_object sys o ~lo ~hi in
    e.e_needs_copy <- true;
    push
      (make_entry ~start_:e.e_start ~end_:e.e_end ~backing:(Backed o)
         ~offset:e.e_offset ~prot:e.e_prot ~max_prot:e.e_max_prot
         ~inherit_:e.e_inherit ~needs_copy:true)
  | Submap sm ->
    (* Copy each overlapping piece of the sharing map; sub-entries get
       clipped so needs-copy marks exactly the window. *)
    let win_lo = e.e_offset and win_hi = e.e_offset + entry_size e in
    iter_range_clipped sys sm ~lo:win_lo ~hi:win_hi (fun node ->
        let s = Dlist.value node in
        let child_start = e.e_start + (s.e_start - win_lo) in
        let child_end = child_start + entry_size s in
        match s.e_backing with
        | No_backing ->
          push
            (make_entry ~start_:child_start ~end_:child_end
               ~backing:No_backing ~offset:0 ~prot:e.e_prot
               ~max_prot:e.e_max_prot ~inherit_:e.e_inherit
               ~needs_copy:false)
        | Backed o ->
          let lo = s.e_offset and hi = s.e_offset + entry_size s in
          let o = cow_share_object sys o ~lo ~hi in
          s.e_needs_copy <- true;
          push
            (make_entry ~start_:child_start ~end_:child_end
               ~backing:(Backed o) ~offset:s.e_offset ~prot:e.e_prot
               ~max_prot:e.e_max_prot ~inherit_:e.e_inherit
               ~needs_copy:true)
        | Submap _ ->
          (* Sharing maps are never nested (Section 3.4). *)
          assert false)

let fork sys parent ~child_pmap =
  let child =
    create sys ~pmap:(Some child_pmap) ~low:parent.map_low
      ~high:parent.map_high
  in
  let push e = insert_entry child e in
  List.iter
    (fun e ->
       match e.e_inherit with
       | Inheritance.None_ -> ()
       | Inheritance.Shared ->
         let sm = ensure_submap sys e in
         reference sm;
         push
           (make_entry ~start_:e.e_start ~end_:e.e_end ~backing:(Submap sm)
              ~offset:e.e_offset ~prot:e.e_prot ~max_prot:e.e_max_prot
              ~inherit_:e.e_inherit ~needs_copy:false)
       | Inheritance.Copy -> copy_entry_cow sys e push)
    (entries parent);
  (* Optionally pre-load the child's pmap from the parent's via the
     Table 3-4 pmap_copy routine (write permission stripped, so
     copy-on-write semantics are untouched): the child then starts
     without reload faults on inherited pages. *)
  if sys.Vm_sys.pmap_prewarm_on_fork then begin
    match parent.map_pmap with
    | Some src ->
      (match src.Pmap.copy with
       | Some pmap_copy ->
         Dlist.iter
           (fun e ->
              pmap_copy ~dst:child_pmap ~dst_start:e.e_start
                ~len:(entry_size e) ~src_start:e.e_start)
           child.map_entries
       | None -> ())
    | None -> ()
  end;
  child

(* ---- fault-path lookup ------------------------------------------------ *)

type fault_lookup = {
  fl_map : vmap;
  fl_entry : entry;
  fl_offset : int;
  fl_prot : Prot.t;
}

let lookup_fault _sys m ~va ~write =
  match find m ~va with
  | None -> Error Kr.Invalid_address
  | Some e ->
    if not (Prot.allows e.e_prot ~write) then Error Kr.Protection_failure
    else begin
      match e.e_backing with
      | Backed _ | No_backing ->
        Ok
          { fl_map = m; fl_entry = e; fl_offset = entry_offset_of e va;
            fl_prot = e.e_prot }
      | Submap sm ->
        let off = entry_offset_of e va in
        (match find sm ~va:off with
         | None -> Error Kr.Invalid_address
         | Some s ->
           let prot = Prot.inter e.e_prot s.e_prot in
           if not (Prot.allows prot ~write) then
             Error Kr.Protection_failure
           else
             Ok
               { fl_map = sm; fl_entry = s;
                 fl_offset = entry_offset_of s off; fl_prot = prot })
    end

let resolve_object_at _sys m ~va =
  match find m ~va with
  | None -> None
  | Some e ->
    (match e.e_backing with
     | Backed o -> Some (o, entry_offset_of e va)
     | No_backing -> None
     | Submap sm ->
       let off = entry_offset_of e va in
       (match find sm ~va:off with
        | Some ({ e_backing = Backed o; _ } as s) ->
          Some (o, entry_offset_of s off)
        | Some _ | None -> None))

(* ---- virtual copies (vm_copy / out-of-line message data) -------------- *)

type copy_item = { ci_obj : obj option; ci_offset : int; ci_size : int }

type map_copy = { mc_items : copy_item list; mc_size : int }

let copy_size c = c.mc_size

let extract_copy sys m ~addr ~size =
  if size <= 0 then Error Kr.Invalid_argument
  else begin
    let lo = page_trunc sys addr in
    let hi = lo + page_round sys (size + (addr - lo)) in
    (* The whole range must be allocated. *)
    let covered = ref lo in
    let rec check node_opt =
      match node_opt with
      | None -> ()
      | Some node ->
        let e = Dlist.value node in
        if e.e_start <= !covered && e.e_end > !covered then begin
          covered := e.e_end;
          if !covered < hi then check (Dlist.next node)
        end
    in
    check (first_node_beyond m ~va:lo);
    if !covered < hi then Error Kr.Invalid_address
    else begin
      let items = ref [] in
      let push i = items := i :: !items in
      let capture_backed e =
        match e.e_backing with
        | No_backing ->
          push { ci_obj = None; ci_offset = 0; ci_size = entry_size e }
        | Backed o ->
          let olo = e.e_offset and ohi = e.e_offset + entry_size e in
          let o = cow_share_object sys o ~lo:olo ~hi:ohi in
          e.e_needs_copy <- true;
          push { ci_obj = Some o; ci_offset = olo; ci_size = entry_size e }
        | Submap _ -> assert false
      in
      iter_range_clipped sys m ~lo ~hi (fun node ->
          let e = Dlist.value node in
          match e.e_backing with
          | No_backing | Backed _ -> capture_backed e
          | Submap sm ->
            let win_lo = e.e_offset
            and win_hi = e.e_offset + entry_size e in
            iter_range_clipped sys sm ~lo:win_lo ~hi:win_hi
              (fun sub_node -> capture_backed (Dlist.value sub_node)));
      Ok { mc_items = List.rev !items; mc_size = hi - lo }
    end
  end

let insert_copy sys m c ?at () =
  let place =
    match at with
    | Some a ->
      let a = page_trunc sys a in
      if a < m.map_low || a + c.mc_size > m.map_high then
        Error Kr.Invalid_address
      else if range_free m ~lo:a ~hi:(a + c.mc_size) then Ok a
      else Error Kr.No_space
    | None ->
      (match find_space m ~size:c.mc_size ~hint_addr:m.map_low with
       | Some a -> Ok a
       | None -> Error Kr.No_space)
  in
  match place with
  | Error _ as e -> e
  | Ok base ->
    let cursor = ref base in
    List.iter
      (fun item ->
         let backing, offset, needs_copy =
           match item.ci_obj with
           | None -> (No_backing, 0, false)
           | Some o -> (Backed o, item.ci_offset, true)
         in
         let e =
           make_entry ~start_:!cursor ~end_:(!cursor + item.ci_size)
             ~backing ~offset ~prot:Prot.read_write
             ~max_prot:default_max_prot ~inherit_:Inheritance.default
             ~needs_copy
         in
         insert_entry m e;
         cursor := !cursor + item.ci_size)
      c.mc_items;
    Ok base

let discard_copy sys c =
  List.iter
    (fun item ->
       match item.ci_obj with
       | Some o -> Vm_object.deallocate sys o
       | None -> ())
    c.mc_items

(* ---- simplify --------------------------------------------------------- *)

let mergeable a b =
  a.e_end = b.e_start
  && Prot.equal a.e_prot b.e_prot
  && Prot.equal a.e_max_prot b.e_max_prot
  && Inheritance.equal a.e_inherit b.e_inherit
  && a.e_needs_copy = b.e_needs_copy
  && a.e_wired = b.e_wired
  &&
  match a.e_backing, b.e_backing with
  | Backed oa, Backed ob ->
    oa == ob && a.e_offset + entry_size a = b.e_offset
  | No_backing, No_backing -> true
  | Submap sa, Submap sb ->
    sa == sb && a.e_offset + entry_size a = b.e_offset
  | (Backed _ | No_backing | Submap _), _ -> false

let simplify sys m =
  let rec loop node_opt =
    match node_opt with
    | None -> ()
    | Some node ->
      (match Dlist.next node with
       | None -> ()
       | Some next_node ->
         let a = Dlist.value node and b = Dlist.value next_node in
         if mergeable a b then begin
           a.e_end <- b.e_end;
           remove_entry sys m next_node ~unmap:false;
           loop (Some node)
         end
         else loop (Some next_node))
  in
  loop (Dlist.first m.map_entries)
