open Types
open Mach_pmap
module Obs = Mach_obs.Obs

(* Dirty test over every hardware frame of a machine page.  Local copy of
   Vm_pageout.is_modified: this module sits below Vm_pageout in the
   dependency order. *)
let is_modified (sys : Vm_sys.t) p =
  let m = Resident.multiple sys.Vm_sys.resident in
  let rec loop i =
    i < m && (Pmap_domain.is_modified sys.Vm_sys.domain ~pfn:(p.pfn + i)
              || loop (i + 1))
  in
  loop 0

let pager_dead o = o.obj_health.ph_dead

(* Declare the object's pager dead and rescue every dirty resident page
   to a fresh default pager before any of them can be lost.  The rescue
   pager is deliberately NOT passed through [pager_decorator]: it is the
   kernel's last line of defence and must be reliable. *)
let declare_dead (sys : Vm_sys.t) o pager =
  let stats = sys.Vm_sys.stats in
  o.obj_health.ph_dead <- true;
  stats.Vm_sys.pager_deaths <- stats.Vm_sys.pager_deaths + 1;
  let rescue = Swap_pager.make sys ~name:(pager.pgr_name ^ "+rescue") in
  o.obj_rescue <- Some rescue;
  let rescued = ref 0 in
  List.iter
    (fun p ->
       if (not p.pg_busy) && is_modified sys p then
         match
           rescue.pgr_write ~offset:p.pg_offset
             ~data:(Page_io.contents sys p)
         with
         | Write_completed ->
           incr rescued;
           stats.Vm_sys.rescued_pages <- stats.Vm_sys.rescued_pages + 1
         | Write_error | Write_no_space -> ())
    (Resident.object_pages o);
  if Obs.enabled (Vm_sys.tracer sys) then
    Vm_sys.emit sys
      (Obs.Pager_dead { pager = pager.pgr_name; rescued = !rescued })

(* Run [attempt] with bounded retry and exponential backoff; account an
   exhausted budget against the object's health, possibly killing the
   pager.  [None] means the budget ran out. *)
let with_retries (sys : Vm_sys.t) o ~offset attempt =
  let stats = sys.Vm_sys.stats in
  let h = o.obj_health in
  let rec go n =
    match attempt () with
    | `Done v ->
      h.ph_consecutive <- 0;
      Some v
    | `Failed ->
      if n < sys.Vm_sys.pager_retry_limit then begin
        stats.Vm_sys.pager_retries <- stats.Vm_sys.pager_retries + 1;
        let backoff = sys.Vm_sys.pager_backoff_cycles * (1 lsl n) in
        if Obs.enabled (Vm_sys.tracer sys) then
          Vm_sys.emit sys
            (Obs.Pager_retry { offset; attempt = n + 1; backoff });
        Vm_sys.charge_cat sys Obs.Retry_backoff backoff;
        go (n + 1)
      end
      else begin
        stats.Vm_sys.pager_failures <- stats.Vm_sys.pager_failures + 1;
        h.ph_failures <- h.ph_failures + 1;
        h.ph_consecutive <- h.ph_consecutive + 1;
        if (not h.ph_dead)
           && h.ph_consecutive >= sys.Vm_sys.pager_death_threshold
        then
          (match o.obj_pager with
           | Some pg -> declare_dead sys o pg
           | None -> ());
        None
      end
  in
  go 0

(* A dead pager's object answers from the rescue pager; pages the rescue
   pager never received follow the degrade policy. *)
let degraded_request o ~offset ~length =
  let fallback () =
    match o.obj_degrade with
    | Degrade_zero_fill -> `Absent
    | Degrade_error -> `Error
  in
  match o.obj_rescue with
  | None -> fallback ()
  | Some r ->
    (match r.pgr_request ~offset ~length with
     | Data_provided d -> `Data d
     | Data_unavailable | Data_error -> fallback ())

let request sys o ~offset ~length =
  match o.obj_pager with
  | None -> `Absent
  | Some pager ->
    (* Attribution: everything from here to the pager's reply is pager
       time — except cycles a narrower frame or explicit category claims
       (disk service time, retry backoff). *)
    Vm_sys.with_cat sys Obs.Pager_wait @@ fun () ->
    if o.obj_health.ph_dead then degraded_request o ~offset ~length
    else begin
      match
        with_retries sys o ~offset (fun () ->
            match pager.pgr_request ~offset ~length with
            | Data_provided d -> `Done (`Data d)
            | Data_unavailable -> `Done `Absent
            | Data_error -> `Failed)
      with
      | Some reply -> reply
      | None -> `Error
    end

(* One-shot clustered read: no retries, no backoff, no health damage.
   Clustering is opportunistic — if anything goes wrong the caller falls
   back to the single-page [request] path, which owns the retry/backoff/
   death policy.  A [`Data] reply may be shorter than [length] (a
   truncated cluster); [`Absent] means the pager holds nothing at
   [offset] itself (see the contract on [pgr_request]). *)
let request_range (sys : Vm_sys.t) o ~offset ~length =
  match o.obj_pager with
  | None -> `Absent
  | Some pager ->
    Vm_sys.with_cat sys Obs.Pager_wait @@ fun () ->
    if o.obj_health.ph_dead then degraded_request o ~offset ~length
    else begin
      match pager.pgr_request ~offset ~length with
      | Data_provided d ->
        o.obj_health.ph_consecutive <- 0;
        `Data d
      | Data_unavailable -> `Absent
      | Data_error -> `Error
    end

(* One-shot asynchronous clustered read: the opportunistic counterpart
   of [request_range].  [None] covers every way the submit path can be
   unavailable — no pager, dead pager, async disk off, or a submit-time
   failure — and the caller uses the synchronous protocol instead.
   Like [request_range], success clears the consecutive-failure count. *)
let submit_range (sys : Vm_sys.t) o ~offset ~length =
  match o.obj_pager with
  | None -> None
  | Some pager ->
    if o.obj_health.ph_dead then None
    else begin
      Vm_sys.with_cat sys Obs.Pager_wait @@ fun () ->
      match pager.pgr_submit ~offset ~length with
      | Some tk ->
        o.obj_health.ph_consecutive <- 0;
        Some (tk.tk_data, tk.tk_completion, tk.tk_service)
      | None -> None
    end

let submit_write_range (sys : Vm_sys.t) o ~offset ~data =
  match o.obj_pager with
  | None -> None
  | Some pager ->
    if o.obj_health.ph_dead then None
    else begin
      Vm_sys.with_cat sys Obs.Pager_wait @@ fun () ->
      match pager.pgr_submit_write ~offset ~data with
      | Some wt ->
        o.obj_health.ph_consecutive <- 0;
        Some (wt.wt_completion, wt.wt_service)
      | None -> None
    end

(* Block until the async transfer a page rides on has landed, charging
   only the residue.  The inflight record is shared by every page of the
   cluster: the first waiter carries the full service budget into
   [Machine.wait_disk] (claiming the overlap), later waiters carry zero
   so nothing is double-counted.  Also lifts the busy bit this module's
   async paths set at submit. *)
let await_page (sys : Vm_sys.t) p =
  match p.pg_inflight with
  | None -> ()
  | Some io ->
    let m = sys.Vm_sys.machine in
    Mach_hw.Machine.wait_disk m ~cpu:(Vm_sys.current_cpu sys)
      ~completion:io.if_completion
      ~service:(if io.if_waited then 0 else io.if_service);
    io.if_waited <- true;
    p.pg_inflight <- None;
    p.pg_busy <- false

(* One-shot clustered write, same policy: a failure is reported without
   retries or health damage and the caller degrades to single-page
   [write] calls.  [`No_space] — the backing store is full — is
   permanent until space is released, so it is reported distinctly (no
   retries either, and no health damage: the pager is fine, the disk is
   full) and the caller escalates to the memory-pressure state. *)
let write_range (sys : Vm_sys.t) o ~offset ~data =
  match o.obj_pager with
  | None -> `Failed
  | Some pager ->
    Vm_sys.with_cat sys Obs.Pager_wait @@ fun () ->
    if o.obj_health.ph_dead then
      (match o.obj_rescue with
       | None -> `Failed
       | Some r ->
         (match r.pgr_write ~offset ~data with
          | Write_completed -> `Ok
          | Write_error -> `Failed
          | Write_no_space -> `No_space))
    else begin
      match pager.pgr_write ~offset ~data with
      | Write_completed ->
        o.obj_health.ph_consecutive <- 0;
        `Ok
      | Write_error -> `Failed
      | Write_no_space -> `No_space
    end

let write sys o ~offset ~data =
  match o.obj_pager with
  | None -> `Failed
  | Some pager ->
    Vm_sys.with_cat sys Obs.Pager_wait @@ fun () ->
    if o.obj_health.ph_dead then
      (match o.obj_rescue with
       | None -> `Failed
       | Some r ->
         (match r.pgr_write ~offset ~data with
          | Write_completed -> `Ok
          | Write_error -> `Failed
          | Write_no_space -> `No_space))
    else begin
      match
        with_retries sys o ~offset (fun () ->
            match pager.pgr_write ~offset ~data with
            | Write_completed -> `Done `Ok
            | Write_no_space -> `Done `No_space
            | Write_error -> `Failed)
      with
      | Some r -> r
      | None ->
        (* If the exhausted budget just killed the pager, [declare_dead]
           already rescued this page along with the rest; returning
           [`Failed] still makes the caller keep it dirty, so the rescue
           copy is refreshed by the next pageout pass. *)
        `Failed
    end
