(** The paging daemon (Sections 3.1 and 5.2).

    Maintains the allocation queues: active pages age into the inactive
    (reclaimable) queue with their reference bits cleared; inactive pages
    whose reference bit came back on get a second chance; the rest are
    evicted.  Eviction follows the paper's TLB-consistency discipline for
    pageout (case 2 of Section 5.2): mappings are first removed from every
    pmap, then the daemon waits until all referencing TLBs have flushed (a
    timer tick) before the frame is freed, so no CPU can touch a recycled
    frame through a stale translation.

    Dirty anonymous pages are written to the default pager; dirty
    pager-backed pages are written back through [pager_data_write]. *)

val install : Vm_sys.t -> unit
(** [install sys] registers the daemon as [sys]'s reclaim hook, invoked
    automatically when the free list runs low. *)

val run : Vm_sys.t -> wanted:int -> unit
(** [run sys ~wanted] tries to free [wanted] pages now. *)

val clean_page : Vm_sys.t -> Types.page -> bool
(** [clean_page sys p] writes [p] to its object's pager (attaching a
    default pager to anonymous objects, decorated by
    [Vm_sys.pager_decorator]) and clears its modify bits; used by the
    daemon and by [pager_clean_request].  [false] means the write failed
    after its retry budget ({!Pager_guard}): the page is still dirty and
    the caller must keep it resident. *)

val clean_cluster : Vm_sys.t -> Types.page -> bool
(** [clean_cluster sys p] cleans [p] together with its contiguous dirty
    neighbours in the same object (up to [Vm_sys.cluster_max] pages) as
    one clustered pager write, so the whole run pays a single seek.  The
    neighbours stay resident and clean on their queues.  Degrades to
    {!clean_page} — with its full retry policy — when there is nothing
    to coalesce, or when the one-shot clustered write fails. *)

val write_cluster : Vm_sys.t -> Types.obj -> Types.page list -> bool
(** [write_cluster sys o pages] issues one clustered write for [pages]
    (contiguous, ascending offsets, all in [o], length >= 2), revoking
    write permission first and clearing modify bits on success.
    [false] means nothing was written; the caller must degrade to
    per-page {!clean_page} calls.  Used by the daemon and by
    [pager_clean_request]. *)

val deactivate_some : Vm_sys.t -> count:int -> unit
(** [deactivate_some sys ~count] moves up to [count] pages from the active
    to the inactive queue, clearing their reference bits; normally called
    by {!run} but exposed for tests. *)
