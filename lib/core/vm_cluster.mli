(** Clustered pagein with per-stream adaptive read-ahead.

    The machine-independent half of the Table 7-1 fix: when a fault (or
    a file read through {!Vnode_pager.read_through_object}) misses on a
    pager-backed page, ask the pager for a whole cluster and keep the
    extra pages resident as prefetch.  The window ramps
    1→2→4→…→[Vm_sys.cluster_max] while access stays sequential and
    resets on random access; prefetched pages go on the {e inactive}
    queue so wrong guesses are reclaimed first.

    Window state lives in a small per-object array of {e stream slots}
    ([Vm_sys.stream_slots] of them), each keyed by the reading (map,
    entry), so several tasks streaming one shared object ramp
    independently instead of resetting each other through a single
    cursor.  A miss matches the slot whose cursor equals its offset
    ([Vm_sys.stats.stream_hits]); otherwise it reuses the reader's own
    slot, an expired one, or recycles the least recently used
    ([stream_resets]).  Slots expire with the [Machine.reset_clocks]
    epoch and die with their object.

    Once a stream has ramped to [Vm_sys.free_behind_min] pages (0
    disables, the default), the clean pages behind its cursor are
    deactivated to the {e head} of the inactive queue (free-behind), so
    a file larger than memory reclaims its own wake instead of flushing
    other tasks' working sets; dirty, wired, busy, in-flight pages and
    pages ahead of another live stream are left alone.

    Clustering never weakens the failure policy: the range request is
    one-shot, and any error or truncated reply falls back to the
    classical single-page {!Pager_guard.request} path.  The slot state
    is committed only after a successful issue, at the size actually
    issued — failed or clipped clusters cannot leave a phantom ramp —
    and a successful fallback read still advances the sequence point, so
    one bad cluster costs the ramp, not the ability to ramp again.

    With the machine's async disk model on
    ([Mach_hw.Machine.set_disk_async]), the demand page is read
    synchronously and the prefetch tail is {e submitted}
    ({!Pager_guard.submit_range}): tail pages are resident and filled
    immediately but stay busy until the device's completion stamp, and
    the first fault to touch one waits out only the remaining device
    time ({!note_hit} → {!Pager_guard.await_page}). *)

val pagein :
  Vm_sys.t -> ?stream:int * int -> Types.obj -> offset:int -> limit:int ->
  [ `Data of Types.page * int | `Absent | `Error ]
(** [pagein sys ~stream obj ~offset ~limit] services a pager miss at
    [offset] (page aligned) on behalf of the reader identified by
    [stream = (map id, entry start)] — the stream-slot key; the default
    [(-1, 0)] is the anonymous reader, so unkeyed callers share one
    slot exactly like the old per-object cursor.  [limit] bounds the
    cluster in this object's offset space (the map entry's window; pass
    [max_int] for none — object size always applies).  [`Data (p,
    bytes)] returns the resident, filled demand page and the total
    bytes the pager supplied (for the Pagein trace event); prefetched
    pages beyond the demand page are inserted into the object directly.
    [`Absent] and [`Error] mean what they mean for
    {!Pager_guard.request}. *)

val note_hit : Vm_sys.t -> Types.page -> unit
(** Tell the read-ahead machinery a resident-page lookup hit [p]; if
    the page was prefetched this counts a prefetch hit and promotes it
    to the active queue. *)
