(** Clustered pagein with per-object adaptive read-ahead.

    The machine-independent half of the Table 7-1 fix: when a fault (or
    a file read through {!Vnode_pager.read_through_object}) misses on a
    pager-backed page, ask the pager for a whole cluster and keep the
    extra pages resident as prefetch.  The window ramps
    1→2→4→…→[Vm_sys.cluster_max] while access stays sequential and
    resets on random access; prefetched pages go on the {e inactive}
    queue so wrong guesses are reclaimed first.

    Clustering never weakens the failure policy: the range request is
    one-shot, and any error or truncated reply falls back to the
    classical single-page {!Pager_guard.request} path.  The window state
    is committed only after a successful issue, at the size actually
    issued — failed or clipped clusters cannot leave a phantom ramp —
    and a successful fallback read still advances the sequence point, so
    one bad cluster costs the ramp, not the ability to ramp again.

    With the machine's async disk model on
    ([Mach_hw.Machine.set_disk_async]), the demand page is read
    synchronously and the prefetch tail is {e submitted}
    ({!Pager_guard.submit_range}): tail pages are resident and filled
    immediately but stay busy until the device's completion stamp, and
    the first fault to touch one waits out only the remaining device
    time ({!note_hit} → {!Pager_guard.await_page}). *)

val pagein :
  Vm_sys.t -> Types.obj -> offset:int -> limit:int ->
  [ `Data of Types.page * int | `Absent | `Error ]
(** [pagein sys obj ~offset ~limit] services a pager miss at [offset]
    (page aligned).  [limit] bounds the cluster in this object's offset
    space (the map entry's window; pass [max_int] for none — object
    size always applies).  [`Data (p, bytes)] returns the resident,
    filled demand page and the total bytes the pager supplied (for the
    Pagein trace event); prefetched pages beyond the demand page are
    inserted into the object directly.  [`Absent] and [`Error] mean
    what they mean for {!Pager_guard.request}. *)

val note_hit : Vm_sys.t -> Types.page -> unit
(** Tell the read-ahead machinery a resident-page lookup hit [p]; if
    the page was prefetched this counts a prefetch hit and promotes it
    to the active queue. *)
