(** The resident page table (Section 3.1).

    Physical memory is treated primarily as a cache for the contents of
    virtual memory objects.  This module keeps one {!Types.page} entry per
    machine-independent page, where a page is a boot-time power-of-two
    multiple of the hardware page size; each entry may simultaneously be
    linked into a memory-object page list, an allocation queue (free,
    active or inactive/reclaimable), and the object/offset hash bucket
    used for fast fault-time lookup.

    Free pages live on a configurable hierarchy rather than one global
    queue: [domains * colors] colored FIFOs (color = machine-independent
    frame number mod colors, domain = contiguous slice of physical
    memory) fronted by optional per-CPU magazines that refill and drain
    in batches.  The default — one domain, one color, magazines off — is
    a single FIFO identical to the classic allocator, and the direct
    path charges no cycles.  Contention on the shared queues can be
    simulated (opt-in) with the same release-stamp scheme as
    [Vm_object] locks, through hooks installed by the kernel.

    Byte offsets key the hash so the implementation is independent of any
    particular notion of physical page size. *)

type t
(** The resident page table for one kernel. *)

type counters = {
  mutable color_hits : int;
      (** allocations served at their preferred color *)
  mutable color_misses : int;
      (** allocations that widened the color search *)
  mutable pcpu_hits : int;
      (** allocations served from a per-CPU magazine *)
  mutable pcpu_refills : int;
      (** magazine refill trips to the shared queues *)
  mutable numa_local : int;
      (** shared-queue allocations from the CPU's own domain *)
  mutable numa_borrows : int;
      (** shared-queue allocations borrowed from another domain *)
  mutable page_steals : int;
      (** pages stolen out of another CPU's magazine *)
}

type hooks = {
  hk_now : cpu:int -> int;  (** the CPU's virtual clock, absolute cycles *)
  hk_charge : cpu:int -> int -> unit;
      (** charge queue-lock hold time to the CPU *)
  hk_stall : cpu:int -> int -> unit;
      (** charge a contended-lock residue (lock_wait) *)
  hk_epoch : unit -> int;
      (** current clock-reset epoch; stamps from older epochs are dead *)
  hk_steal : cpu:int -> victim:int -> page:Types.page -> unit;
      (** a magazine steal happened (tracing) *)
}
(** Simulation services, installed by [Vm_sys] (or a test harness); the
    allocator never sees the machine directly.  Without hooks it is pure
    bookkeeping. *)

val create :
  phys:Mach_hw.Phys_mem.t -> multiple:int -> ?frame_limit:int -> unit -> t
(** [create ~phys ~multiple ()] groups [phys]'s present hardware frames
    into machine-independent pages of [multiple] consecutive frames
    (aligned); incomplete or hole-straddling groups are unusable, as are
    frames at or beyond [frame_limit] (an architecture's physical address
    limit).  All usable pages start free.  [multiple] must be a power of
    two.  The allocator starts in the flat configuration: one domain,
    one color, magazines off. *)

val configure :
  t -> ?colors:int -> ?domains:int -> ?cpus:int -> ?cache:int ->
  ?refill:int -> unit -> unit
(** [configure t ~colors ~domains ~cpus ~cache ()] rebuilds the free
    hierarchy: [colors] colored queues (a power of two) per NUMA
    [domain], magazines of [cache] pages (0 = off) for CPU ids below
    [cpus], refill/drain trips moving [refill] pages (default 8).  Every
    free page is collected — queues in index order, then magazines — and
    re-bucketed onto its home queue under the new topology, preserving
    relative order; allocated pages are untouched.  Omitted parameters
    keep their current values. *)

val page_size : t -> int
(** Machine-independent page size in bytes. *)

val multiple : t -> int
(** Hardware frames per machine-independent page. *)

val total_pages : t -> int
(** Usable pages, free or not. *)

val free_count : t -> int
(** Free pages anywhere in the hierarchy: colored queues plus per-CPU
    magazines.  O(1). *)

val active_count : t -> int
val inactive_count : t -> int

val colors : t -> int
val domains : t -> int
val cache_size : t -> int
(** Current allocator topology. *)

val domain_free : t -> int -> int
(** [domain_free t d] is the number of pages on domain [d]'s colored
    queues (magazines excluded). *)

val cached_count : t -> int
(** Pages currently sitting in per-CPU magazines. *)

val domain_of_cpu : t -> cpu:int -> int
(** The domain CPU [cpu] allocates locally from ([cpu mod domains]). *)

val counters : t -> counters
(** Live allocator counters (see {!counters}); reset with
    {!reset_counters}. *)

val reset_counters : t -> unit

val set_hooks : t -> hooks -> unit
(** Install the simulation services used by the lock simulation and
    steal tracing. *)

val set_lock_sim : t -> ?hold:int -> bool -> unit
(** [set_lock_sim t on] enables/disables contention simulation on the
    shared queues; [hold] sets the per-critical-section hold time in
    cycles (default 60).  Off by default: the flat configuration must
    charge nothing. *)

val set_free_min_share : t -> int -> unit
(** A domain whose queued free count falls below this many pages is
    considered poor: local allocation borrows from the best-stocked
    other domain instead.  0 (the default) borrows only when the local
    domain is completely empty. *)

val alloc : ?cpu:int -> ?color:int -> t -> Types.page option
(** [alloc t] takes a free page ([None] when memory is exhausted): from
    [cpu]'s magazine when one is configured and stocked, else from the
    colored queues — local domain first, preferring [color] (any int;
    reduced mod colors) with a widening search on miss — refilling the
    magazine as a batch; when the queues are dry but magazines elsewhere
    still hold pages, one is stolen.  The page is on no queue and
    belongs to no object; its previous contents are whatever the last
    owner left (callers zero or overwrite as the fault logic dictates).
    Defaults: [cpu] 0, [color] from a round-robin rotor. *)

val lookup : t -> obj:Types.obj -> offset:int -> Types.page option
(** [lookup t ~obj ~offset] is the fault-path hash lookup by memory object
    and byte offset. *)

val insert : t -> Types.page -> obj:Types.obj -> offset:int -> unit
(** [insert t p ~obj ~offset] gives [p] its object/offset identity,
    linking it into [obj]'s page list and the hash.  [offset] must be
    page aligned and not already occupied. *)

val remove_from_object : t -> Types.page -> unit
(** [remove_from_object t p] strips [p]'s identity (hash and object list);
    the page remains allocated. *)

val free_page : ?cpu:int -> t -> Types.page -> unit
(** [free_page t p] removes [p] from its object (if any) and any queue
    and returns it to the free hierarchy: [cpu]'s magazine when one is
    configured (draining a batch back to the colored queues if it
    overflows), otherwise [p]'s home colored queue directly. *)

val enqueue : t -> Types.page -> Types.pageq -> unit
(** [enqueue t p q] moves [p] to queue [q] (removing it from its current
    queue).  [Q_free] must be reached via {!free_page} instead. *)

val enqueue_inactive_front : t -> Types.page -> unit
(** [enqueue_inactive_front t p] moves [p] to the {e head} of the
    inactive queue — the position {!take_inactive} pops next — used by
    free-behind so a streaming read's spent pages are reclaimed before
    anyone else's working set. *)

val take_inactive : t -> Types.page option
(** [take_inactive t] pops the oldest inactive page for the pageout
    daemon; the page ends up on no queue. *)

val take_active : t -> Types.page option
(** [take_active t] pops the oldest active page (used by the daemon to
    refill the inactive queue). *)

val iter_free : t -> (Types.page -> unit) -> unit
(** [iter_free t f] applies [f] to every free page — colored queues in
    index order, then magazine contents (without disturbing either);
    used by consistency checkers. *)

val drain_caches : t -> unit
(** Flush every per-CPU magazine back to the colored queues, so pages
    cached for one CPU cannot strand below [free_min] while another CPU
    waits on the daemon.  Called when memory pressure is declared and
    after an OOM kill. *)

val conservation_errors : t -> string list
(** Structural audit of the free hierarchy: [free_count] must equal the
    queue lengths plus magazine contents, per-domain counts must match,
    every queued page must sit on its home queue, and cached pages must
    be ownerless.  Empty list = consistent. *)

val check_conservation : t -> bool
(** [conservation_errors t = []]. *)

val object_pages : Types.obj -> Types.page list
(** [object_pages o] is [o]'s resident pages, in list order. *)
