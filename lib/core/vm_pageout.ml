open Mach_hw
open Types
open Mach_pmap

(* Per-frame attribute checks aggregated over a machine-independent page. *)
let any_frame (sys : Vm_sys.t) p f =
  let m = Resident.multiple sys.Vm_sys.resident in
  let rec loop i = i < m && (f (p.pfn + i) || loop (i + 1)) in
  loop 0

let each_frame (sys : Vm_sys.t) p f =
  let m = Resident.multiple sys.Vm_sys.resident in
  for i = 0 to m - 1 do
    f (p.pfn + i)
  done

let is_referenced sys p =
  any_frame sys p (fun pfn ->
      Pmap_domain.is_referenced sys.Vm_sys.domain ~pfn)

let is_modified sys p =
  any_frame sys p (fun pfn -> Pmap_domain.is_modified sys.Vm_sys.domain ~pfn)

let clear_referenced sys p =
  each_frame sys p (fun pfn ->
      Pmap_domain.clear_referenced sys.Vm_sys.domain ~pfn)

let clear_modified sys p =
  each_frame sys p (fun pfn ->
      Pmap_domain.clear_modified sys.Vm_sys.domain ~pfn)

let page_bytes = Page_io.contents

let deactivate_some (sys : Vm_sys.t) ~count =
  Vm_sys.with_cat sys Mach_obs.Obs.Pageout_daemon @@ fun () ->
  let rec loop n =
    if n > 0 then
      match Resident.take_active sys.Vm_sys.resident with
      | None -> ()
      | Some p ->
        clear_referenced sys p;
        Resident.enqueue sys.Vm_sys.resident p Q_inactive;
        loop (n - 1)
  in
  loop count

(* Anonymous objects get their default pager on first pageout, decorated
   by [pager_decorator] (the chaos hook). *)
let ensure_pager (sys : Vm_sys.t) o =
  match o.obj_pager with
  | Some _ -> ()
  | None ->
    let pg = Swap_pager.make sys ~name:"default-pager" in
    let pg =
      match sys.Vm_sys.pager_decorator with
      | Some wrap -> wrap pg
      | None -> pg
    in
    o.obj_pager <- Some pg

(* The backing store refused a pageout for lack of space: the write was
   not transient (retrying cannot help until space is released), so the
   system enters the memory-pressure state — allocation backpressure
   escalates to the OOM policy instead of waiting on a daemon that
   cannot progress. *)
let note_no_space (sys : Vm_sys.t) =
  sys.Vm_sys.stats.Vm_sys.swap_full_failures <-
    sys.Vm_sys.stats.Vm_sys.swap_full_failures + 1;
  Vm_sys.set_mem_pressure sys true;
  if Mach_obs.Obs.enabled (Vm_sys.tracer sys) then
    Vm_sys.emit sys
      (Mach_obs.Obs.Swap_full
         { used = sys.Vm_sys.swap_used;
           capacity =
             (match sys.Vm_sys.swap_capacity with
              | Some c -> c
              | None -> 0) })

(* Write a dirty page to its object's pager, attaching a default pager to
   anonymous objects on their first pageout.  Returns whether the page
   was actually cleaned; on [false] the page is still dirty and the
   caller must not free it. *)
let clean_page (sys : Vm_sys.t) p =
  match p.pg_obj with
  | None -> true
  | Some o ->
    (* Cleaning is a writer section on the owning object: faults on the
       same object stall behind it on a multiprocessor. *)
    Vm_object.lock_write sys o @@ fun () ->
    ensure_pager sys o;
    match
      Pager_guard.write sys o ~offset:p.pg_offset ~data:(page_bytes sys p)
    with
    | `Ok ->
      clear_modified sys p;
      p.pg_requeues <- 0;
      (* A successful write is progress: pressure, if any, has lifted. *)
      sys.Vm_sys.mem_pressure <- false;
      sys.Vm_sys.stats.Vm_sys.pageouts <-
        sys.Vm_sys.stats.Vm_sys.pageouts + 1;
      if Mach_obs.Obs.enabled (Vm_sys.tracer sys) then
        Vm_sys.emit sys
          (Mach_obs.Obs.Pageout
             { offset = p.pg_offset; bytes = sys.Vm_sys.page_size;
               inactive_depth =
                 Resident.inactive_count sys.Vm_sys.resident });
      true
    | `Failed ->
      sys.Vm_sys.stats.Vm_sys.pageout_failures <-
        sys.Vm_sys.stats.Vm_sys.pageout_failures + 1;
      false
    | `No_space ->
      note_no_space sys;
      false

(* One-shot clustered write of [pages] — contiguous, ascending, same
   object, length >= 2.  Write permission is revoked on every page first
   so the written copy is coherent and later writes re-fault and
   re-dirty.  On success the whole run is marked clean; on [false]
   nothing was written and the caller must degrade to per-page
   {!clean_page} calls (which own the retry/failure accounting). *)
let write_cluster (sys : Vm_sys.t) o pages =
  Vm_object.lock_write sys o @@ fun () ->
  ensure_pager sys o;
  let n = List.length pages in
  let start = (List.hd pages).pg_offset in
  List.iter
    (fun q ->
       each_frame sys q (fun pfn ->
           Pmap_domain.copy_on_write sys.Vm_sys.domain ~pfn))
    pages;
  let data = Bytes.concat Bytes.empty (List.map (page_bytes sys) pages) in
  let finish () =
    List.iter (clear_modified sys) pages;
    List.iter (fun q -> q.pg_requeues <- 0) pages;
    sys.Vm_sys.mem_pressure <- false;
    sys.Vm_sys.stats.Vm_sys.pageouts <-
      sys.Vm_sys.stats.Vm_sys.pageouts + n;
    sys.Vm_sys.stats.Vm_sys.clustered_pageouts <-
      sys.Vm_sys.stats.Vm_sys.clustered_pageouts + 1;
    if Mach_obs.Obs.enabled (Vm_sys.tracer sys) then begin
      Vm_sys.emit sys
        (Mach_obs.Obs.Cluster_pageout { offset = start; pages = n });
      Vm_sys.emit sys
        (Mach_obs.Obs.Pageout
           { offset = start; bytes = n * sys.Vm_sys.page_size;
             inactive_depth = Resident.inactive_count sys.Vm_sys.resident })
    end;
    true
  in
  (* With the async disk model on, submit the clustered write and let the
     device drain while the daemon keeps working.  Every page of the run
     rides the shared inflight record and stays busy until the transfer
     lands: the daemon reaps the completion ([Pager_guard.await_page])
     before any of these frames can be reused. *)
  if Machine.disk_async sys.Vm_sys.machine then begin
    match Pager_guard.submit_write_range sys o ~offset:start ~data with
    | Some (completion, service) ->
      let inflight =
        { if_completion = completion; if_service = service;
          if_waited = false }
      in
      List.iter
        (fun q ->
           q.pg_busy <- true;
           q.pg_inflight <- Some inflight)
        pages;
      finish ()
    | None ->
      (match Pager_guard.write_range sys o ~offset:start ~data with
       | `Ok -> finish ()
       | `Failed | `No_space ->
         (* Nothing was written; the per-page fallback owns the failure
            accounting (and the no-space escalation, page by page — one
            page may still fit where the cluster did not). *)
         false)
  end
  else
    match Pager_guard.write_range sys o ~offset:start ~data with
    | `Ok -> finish ()
    | `Failed | `No_space -> false

(* Clean [p] together with its contiguous dirty neighbours: grow the run
   left and right over resident, unwired, non-busy modified pages of the
   same object, up to [cluster_max], and issue one clustered write.  The
   neighbours stay on their queues — now clean, they are freed without
   I/O when the daemon reaches them.  Degrades to {!clean_page} when
   there is nothing to coalesce or the clustered write fails. *)
let clean_cluster (sys : Vm_sys.t) p =
  match p.pg_obj with
  | None -> true
  | Some o ->
    if sys.Vm_sys.cluster_max <= 1 then clean_page sys p
    else begin
      let ps = sys.Vm_sys.page_size in
      let eligible q =
        (not q.pg_busy) && q.pg_wire_count = 0 && is_modified sys q
      in
      let rec grow acc off step n =
        if n >= sys.Vm_sys.cluster_max || off < 0 then (acc, n)
        else
          match Resident.lookup sys.Vm_sys.resident ~obj:o ~offset:off with
          | Some q when eligible q -> grow (q :: acc) (off + step) step (n + 1)
          | _ -> (acc, n)
      in
      let before, n = grow [] (p.pg_offset - ps) (-ps) 1 in
      let after, n = grow [] (p.pg_offset + ps) ps n in
      if n < 2 then clean_page sys p
      else begin
        (* [before] was collected walking left, so prepending left it in
           ascending order already; [after] needs reversing. *)
        let run = before @ (p :: List.rev after) in
        if write_cluster sys o run then true else clean_page sys p
      end
    end

let run (sys : Vm_sys.t) ~wanted =
  (* Attribution: reclaim is daemon work no matter who triggered it (a
     fault-path [grab_page] included); pager writes and disk time inside
     re-attribute themselves via narrower frames. *)
  Vm_sys.with_cat sys Mach_obs.Obs.Pageout_daemon @@ fun () ->
  let res = sys.Vm_sys.resident in
  (* Keep the inactive queue stocked: roughly a third of what is in
     circulation, and at least what this call needs. *)
  let circulating = Resident.active_count res + Resident.inactive_count res in
  let want_inactive = max wanted (circulating / 3) in
  if Resident.inactive_count res < want_inactive then
    deactivate_some sys ~count:(want_inactive - Resident.inactive_count res);
  let freed = ref 0 in
  let examined = ref 0 in
  let budget = (2 * Resident.inactive_count res) + 8 in
  while
    !freed < wanted && !examined < budget
    &&
    match Resident.take_inactive res with
    | None -> false
    | Some p ->
      incr examined;
      (* Reap a completed (or nearly completed) async transfer before
         examining the page: charges only the residue and lifts the busy
         bit, so writeback and prefetch pages re-enter circulation
         instead of falling off the queues. *)
      if p.pg_inflight <> None && p.pg_wire_count = 0 then
        Pager_guard.await_page sys p;
      if p.pg_busy || p.pg_wire_count > 0 then
        (* Should not be queued at all; make it so. *)
        Resident.enqueue res p Q_none
      else if is_referenced sys p then begin
        (* Second chance. *)
        clear_referenced sys p;
        Resident.enqueue res p Q_active;
        sys.Vm_sys.stats.Vm_sys.reactivations <-
          sys.Vm_sys.stats.Vm_sys.reactivations + 1
      end
      else begin
        (* Remove all mappings first, then wait for every TLB to flush
           before recycling the frame (Section 5.2, case 2). *)
        each_frame sys p (fun pfn ->
            Pmap_domain.remove_all sys.Vm_sys.domain ~pfn ~urgent:false);
        Machine.tick sys.Vm_sys.machine;
        if is_modified sys p && not (clean_cluster sys p) then begin
          (* The pageout write failed after its retry budget: the data
             exists nowhere but this frame, so it must stay dirty and
             resident.  Requeue it at the back of the active queue — the
             backoff — so it ages through both queues again before the
             next write attempt.  Requeues are bounded: a page that
             keeps failing flips the system into the pressure state so
             allocation backpressure escalates to the OOM policy
             instead of spinning the daemon against a wall. *)
          p.pg_requeues <- p.pg_requeues + 1;
          if p.pg_requeues > sys.Vm_sys.pageout_requeue_limit then
            Vm_sys.set_mem_pressure sys true;
          Resident.enqueue res p Q_active
        end
        else if p.pg_inflight <> None then
          (* [clean_cluster] just submitted this page's writeback: put it
             back at the tail of the inactive queue so the transfer can
             drain while the daemon works on other pages; it is reaped
             and freed on the next encounter. *)
          Resident.enqueue res p Q_inactive
        else begin
          each_frame sys p (fun pfn ->
              Pmap_domain.clear_referenced sys.Vm_sys.domain ~pfn;
              Pmap_domain.clear_modified sys.Vm_sys.domain ~pfn);
          if p.pg_prefetched then
            sys.Vm_sys.stats.Vm_sys.prefetch_wasted <-
              sys.Vm_sys.stats.Vm_sys.prefetch_wasted + 1;
          Vm_sys.burst_forget sys p;
          Resident.free_page ~cpu:(Vm_sys.current_cpu sys) res p;
          incr freed
        end
      end;
      true
  do
    ()
  done

let install sys =
  sys.Vm_sys.reclaim <- Some (fun sys ~wanted -> run sys ~wanted)
