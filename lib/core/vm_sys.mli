(** Shared state of one kernel's virtual memory system.

    Everything the Vm_* modules need in common: the machine and pmap
    domain, the resident page table, the memory-object cache (Section
    3.3), tunables for the ablation benches (object cache and shadow
    collapse can be disabled), and machine-independent statistics. *)

type stats = {
  mutable faults : int;            (** vm_fault invocations *)
  mutable zero_fills : int;        (** pages zero-filled on demand *)
  mutable cow_copies : int;        (** pages copied by write faults *)
  mutable pager_reads : int;       (** pages filled from a pager *)
  mutable pageouts : int;          (** pages cleaned/evicted by the daemon *)
  mutable reactivations : int;     (** inactive pages saved by their
                                       reference bit (second chance) *)
  mutable shadows_created : int;   (** shadow objects created *)
  mutable collapses : int;         (** shadow objects collapsed away *)
  mutable cache_hits : int;        (** memory objects revived from cache *)
  mutable cache_misses : int;      (** objects (re)built from their pager *)
  mutable fast_reloads : int;      (** faults resolved purely by re-entering
                                       a mapping the pmap had dropped *)
  mutable rmw_bug_upgrades : int;  (** protection faults reported as reads
                                       by the NS32082 bug and upgraded to
                                       writes by the kernel workaround *)
  mutable pager_retries : int;     (** pager request/write attempts retried
                                       after a transient failure *)
  mutable pager_failures : int;    (** attempts that exhausted the retry
                                       budget *)
  mutable pager_deaths : int;      (** pagers declared dead after
                                       [pager_death_threshold] consecutive
                                       exhausted budgets *)
  mutable rescued_pages : int;     (** dirty resident pages written to a
                                       rescue (default) pager at death *)
  mutable pageout_failures : int;  (** pageout writes that failed; the page
                                       stayed dirty and was requeued *)
  mutable memory_errors : int;     (** faults concluded with
                                       [KERN_MEMORY_ERROR] *)
  mutable prefetch_issued : int;   (** pages brought in by read-ahead beyond
                                       the demand page *)
  mutable prefetch_hits : int;     (** prefetched pages later referenced by
                                       a fault or read *)
  mutable prefetch_wasted : int;   (** prefetched pages reclaimed before
                                       any reference *)
  mutable clustered_pageouts : int;(** multi-page writes issued by the
                                       pageout daemon / clean_request *)
  mutable lock_stalls : int;       (** contended memory-object lock
                                       acquisitions (multi-CPU only) *)
  mutable lock_stall_cycles : int; (** cycles spent in those stalls *)
  mutable burst_faults : int;      (** resident faults that mapped at least
                                       one neighbour beyond the demand
                                       page *)
  mutable burst_mapped : int;      (** neighbour pages mapped by bursts *)
  mutable alloc_waits : int;       (** allocation backpressure waits on the
                                       pageout daemon (free list at the
                                       reserve) *)
  mutable alloc_wait_cycles : int; (** cycles charged by those waits
                                       ([mem_wait] attribution) *)
  mutable swap_full_failures : int;(** pageout writes refused because the
                                       swap pool is full; the page stayed
                                       dirty and pressure was raised *)
  mutable oom_kills : int;         (** tasks killed by the out-of-memory
                                       policy *)
  mutable stream_hits : int;       (** pager misses matched to an existing
                                       read-ahead stream slot (sequential
                                       continuation) *)
  mutable stream_resets : int;     (** live stream slots recycled for a
                                       new reader (LRU victim taken while
                                       its cursor was still current) *)
  mutable free_behind_pages : int; (** clean pages deactivated behind a
                                       ramped stream's cursor *)
}

type oom_candidate = {
  oc_id : int;                     (** task id; deterministic tie-break *)
  oc_name : string;
  oc_map_id : int;                 (** the task's address map; exempt while
                                       a fault on it is in progress *)
  oc_resident : unit -> int;       (** anonymous resident pages right now *)
  oc_kill : unit -> unit;          (** reclaim everything, mark the task *)
}
(** A task the out-of-memory policy may kill, registered by [Task.create]
    as closures so this module stays below Task in the dependency
    order. *)

type t = {
  machine : Mach_hw.Machine.t;
  domain : Mach_pmap.Pmap_domain.t;
  resident : Resident.t;
  page_size : int;                 (** machine-independent page size *)
  mutable object_cache : Types.obj list;
      (** cached objects, most recently used first (all have [obj_cached]
          set and reference count 0) *)
  mutable object_cache_limit : int;
  mutable cache_enabled : bool;    (** ablation switch for the cache *)
  mutable collapse_enabled : bool; (** ablation switch for shadow-chain
                                       collapsing *)
  mutable pmap_prewarm_on_fork : bool;
      (** use the optional [pmap_copy] routine (Table 3-4) at fork to
          pre-load the child's pmap with (write-stripped) copies of the
          parent's mappings, trading enter work for avoided faults *)
  mutable pager_objects : (int, Types.obj) Hashtbl.t;
      (** live or cached object for each pager id, so re-mapping a file
          finds the existing object *)
  mutable reclaim : (t -> wanted:int -> unit) option;
      (** pageout hook, installed by {!Vm_pageout}; called when the free
          list runs low *)
  mutable free_target : int;       (** keep at least this many pages free;
                                       reclaim aims here *)
  mutable free_min : int;
      (** below this many free pages the system is under pressure:
          allocations start waiting on the daemon instead of merely
          triggering it (free_reserved <= free_min <= free_target) *)
  mutable free_reserved : int;
      (** hard floor: only [grab_page ~reserve:true] (the pageout/
          cleaning path) may allocate out of the last [free_reserved]
          pages, so cleaning never deadlocks on needing a page *)
  mutable alloc_backoff_cycles : int;
      (** cycles one backpressure wait on the pageout daemon charges *)
  mutable pageout_requeue_limit : int;
      (** failed-write requeues per dirty page before the daemon
          escalates to the pressure state instead of spinning *)
  mutable swap_capacity : int option;
      (** bytes the swap pool may commit; [None] is unbounded *)
  mutable swap_used : int;         (** bytes currently committed to swap *)
  mutable mem_pressure : bool;
      (** pageout cannot make progress (swap full, or a dirty page
          exceeded the requeue limit); cleared when a pageout write
          succeeds again or an OOM kill frees memory *)
  mutable oom_candidates : oom_candidate list;
  mutable oom_exempt_map : int option;
      (** map id currently being faulted on ({!Vm_fault} maintains it);
          its task is never selected as the OOM victim *)
  mutable pager_retry_limit : int;
      (** transient pager failures retried per request before giving up *)
  mutable pager_backoff_cycles : int;
      (** base of the exponential backoff charged between retries *)
  mutable pager_death_threshold : int;
      (** consecutive exhausted retry budgets before a pager is declared
          dead and its object degrades ({!Pager_guard}) *)
  mutable pager_decorator : (Types.pager -> Types.pager) option;
      (** interposition hook applied when the kernel itself creates a
          pager (the pageout daemon's default pager); [machsim --chaos]
          installs a fault-injecting wrapper here *)
  mutable cluster_max : int;
      (** upper bound on pagein read-ahead and pageout clustering, in
          pages; 1 disables clustering (every disk request is one page) *)
  mutable stream_slots : int;
      (** concurrent read-ahead streams tracked per object ({!Vm_cluster});
          1 is the legacy single shared cursor, which concurrent readers
          of a shared object permanently reset against each other *)
  mutable free_behind_min : int;
      (** once a stream's window has ramped to at least this many pages,
          the clean pages behind its cursor are deactivated to the head
          of the inactive queue (free-behind) so a streaming read larger
          than memory cannot flush the working set; 0 disables it *)
  mutable stream_clock : int;
      (** monotonic last-use stamp source for the stream-slot LRU; not
          the cycle clock, so {!Mach_hw.Machine.reset_clocks} cannot
          scramble the victim order *)
  mutable burst_max : int;
      (** upper bound on pages a resident fault maps in one pass, demand
          page included; 1 maps only the demand page, 0 bypasses the
          burst machinery entirely (the pre-burst fault path) *)
  burst_pending : (int, Types.page) Hashtbl.t;
      (** burst-mapped pages (keyed by hardware frame) whose first touch
          has not happened yet; resolved by the pmap layer's first-touch
          hook, installed by {!create} *)
  stats : stats;
}

exception Out_of_memory
(** Raised when a page is needed, backpressure made no progress, and the
    OOM policy found no viable victim (every candidate exempt or without
    resident pages). *)

val create :
  machine:Mach_hw.Machine.t -> domain:Mach_pmap.Pmap_domain.t ->
  page_multiple:int -> ?object_cache_limit:int -> unit -> t
(** [create ~machine ~domain ~page_multiple ()] builds the VM state; the
    machine-independent page size is [page_multiple] hardware pages.  The
    resident table honours the architecture's physical address limit. *)

val grab_page : ?reserve:bool -> ?color:int -> t -> Types.page
(** [grab_page t] allocates a free page, invoking the pageout hook if the
    free list is low.  Ordinary allocations never take the free list
    below [free_reserved]; at the floor they wait on the daemon
    (allocation backpressure: reclaim rounds interleaved with
    [alloc_backoff_cycles] charges to the [mem_wait] category) and
    escalate to the OOM policy when reclaim stalls, raising
    {!Out_of_memory} only when no victim remains.  [~reserve:true] — the
    pageout/cleaning path's privilege — may dip into the reserve down to
    an empty list.  The reserve floor is global: pages cached in per-CPU
    magazines still count as free and are stolen back when the shared
    queues run dry.  [color] is the preferred page color (any int;
    reduced mod the configured colors), typically the faulting page's
    index so consecutive virtual pages land in distinct cache bins.  The
    returned page is on no queue and in no object. *)

val configure_allocator :
  ?colors:int -> ?cache:int -> ?refill:int -> t -> unit
(** Rebuild the page allocator to match the machine's topology: NUMA
    domains from {!Mach_hw.Machine.numa_domains} (CPUs round-robin
    across them), a per-CPU magazine of [cache] pages (0 = off),
    [colors] colored queues per domain, [refill] pages per magazine
    refill/drain batch.  Free pages are re-bucketed; per-domain borrow
    thresholds re-derive from [free_min] (a domain is poor below its
    equal share).  Call after {!Mach_hw.Machine.set_numa_domains}. *)

val set_mem_pressure : t -> bool -> unit
(** Declare or clear the memory-pressure state ([mem_pressure]).
    Declaring it drains every per-CPU magazine back to the shared
    queues, so pages cached for one CPU cannot strand below [free_min]
    while the daemon or another CPU's backpressure wait starves. *)

val set_swap_capacity : t -> int option -> unit
(** Configure the shared swap pool: [Some bytes] bounds what every
    {!Swap_pager} together may commit; [None] (the default) is
    unbounded. *)

val swap_charge : t -> int -> bool
(** [swap_charge t bytes] commits [bytes] of new swap chunks against the
    pool; [false] (nothing committed) when that would exceed the
    capacity. *)

val swap_release : t -> int -> unit
(** Credit the pool back, e.g. when a swap store's object dies. *)

val oom_register : t -> oom_candidate -> unit
val oom_unregister : t -> id:int -> unit
(** Maintain the OOM candidate list (Task.create/terminate do). *)

val oom_kill : t -> bool
(** Run the out-of-memory policy once: kill the candidate with the most
    anonymous resident pages (ties to the smaller task id; the task
    whose map is in [oom_exempt_map] is never chosen), count it in
    [oom_kills], emit [Oom_kill], and clear [mem_pressure].  [false]
    when no viable victim exists. *)

val charge : t -> int -> unit
(** [charge t c] adds [c] cycles to the current CPU's clock. *)

val charge_cat : t -> Mach_obs.Obs.category -> int -> unit
(** [charge_cat t cat c] is {!charge} with the cycles attributed to
    [cat] explicitly ({!Mach_hw.Machine.charge_category}). *)

val with_cat : t -> Mach_obs.Obs.category -> (unit -> 'a) -> 'a
(** [with_cat t cat f] runs [f] under an attribution frame for [cat] on
    the current CPU ({!Mach_hw.Machine.with_category}); free when
    tracing is off. *)

val current_cpu : t -> int
(** CPU executing kernel code, as recorded in the pmap domain. *)

val tracer : t -> Mach_obs.Obs.t
(** The machine's trace sink ({!Mach_hw.Machine.tracer}). *)

val now : t -> int
(** Current CPU's clock, the timestamp trace events carry. *)

val emit : t -> Mach_obs.Obs.event -> unit
(** [emit t ev] records [ev] at the current CPU/time if tracing is
    enabled; one branch otherwise.  Hot paths that would compute event
    payloads eagerly should check [Obs.enabled (tracer t)] themselves. *)

val cost : t -> Mach_hw.Arch.cost
(** The architecture's cost table. *)

val fresh_stats : unit -> stats
(** All-zero counters. *)

val burst_register : t -> Types.page -> unit
(** [burst_register t p] records [p] as burst-mapped and awaiting its
    first touch; the pmap layer's first-touch hook resolves it.  The
    caller must clear the page's referenced bits so the next access is
    seen as a transition.  Pure bookkeeping, charges nothing. *)

val burst_forget : t -> Types.page -> unit
(** [burst_forget t p] drops any pending first-touch record for [p];
    called when the page is freed or repurposed before being touched. *)
