open Types

(* One swap store: its chunks plus the [Vm_sys.t] whose shared swap pool
   they are committed against, so [release] can credit the pool back
   when the owning object dies.  Registered by pager id, so
   [stored_bytes]/[release] answer for a pager without widening the
   pager record (and keep working when the pager is wrapped by a
   decorator — wrapping preserves [pgr_id]). *)
type store = {
  st_sys : Vm_sys.t;
  st_chunks : (int, Bytes.t) Hashtbl.t; (* offset -> page-size chunk *)
}

let stores : (int, store) Hashtbl.t = Hashtbl.create 16

let make (sys : Vm_sys.t) ~name =
  let id = fresh_pager_id () in
  let store : (int, Bytes.t) Hashtbl.t = Hashtbl.create 16 in
  Hashtbl.add stores id { st_sys = sys; st_chunks = store };
  let machine = sys.Vm_sys.machine in
  (* Each swap pager models its own paging partition with a private
     service queue, so swap traffic queues behind itself, not behind
     file-system transfers. *)
  let queue = Mach_hw.Machine.new_disk_queue machine in
  let cpu () = Vm_sys.current_cpu sys in
  let ps = sys.Vm_sys.page_size in
  (* Gather contiguous chunks from [offset] up; one disk transfer covers
     the whole gathered range, so a clustered request pays the seek once.
     No chunk at [offset] itself means the pager holds nothing there (the
     range contract). *)
  let gather ~offset ~length =
    match Hashtbl.find_opt store offset with
    | None -> None
    | Some _ ->
      let parts = ref [] and got = ref 0 in
      let rec loop () =
        if !got < length then
          match Hashtbl.find_opt store (offset + !got) with
          | None -> ()
          | Some d ->
            let take = min (Bytes.length d) (length - !got) in
            parts := Bytes.sub d 0 take :: !parts;
            got := !got + take;
            if take = Bytes.length d then loop ()
      in
      loop ();
      Some (Bytes.concat Bytes.empty (List.rev !parts), !got)
  in
  (* Bytes of [data] landing on offsets not yet stored: only new chunks
     commit pool space — rewriting a paged-out page in place is free. *)
  let new_bytes ~offset ~data =
    let len = Bytes.length data in
    let fresh = ref 0 and pos = ref 0 in
    while !pos < len do
      let take = min ps (len - !pos) in
      if not (Hashtbl.mem store (offset + !pos)) then fresh := !fresh + take;
      pos := !pos + take
    done;
    !fresh
  in
  let scatter ~offset ~data =
    (* Stored in page-size chunks so later single-page requests find
       their piece. *)
    let len = Bytes.length data in
    let pos = ref 0 in
    while !pos < len do
      let take = min ps (len - !pos) in
      Hashtbl.replace store (offset + !pos) (Bytes.sub data !pos take);
      pos := !pos + take
    done
  in
  (* All-or-nothing capacity check against the shared pool: either the
     whole (possibly clustered) write fits and is committed, or nothing
     is stored and the kernel hears [Write_no_space] — it may then fall
     back to single-page writes, which need less fresh space. *)
  let reserve ~offset ~data =
    Vm_sys.swap_charge sys (new_bytes ~offset ~data)
  in
  {
    pgr_id = id;
    pgr_name = name;
    pgr_request =
      (fun ~offset ~length ->
         match gather ~offset ~length with
         | None -> Data_unavailable
         | Some (data, got) ->
           Mach_hw.Machine.charge_disk machine ~cpu:(cpu ()) ~write:false
             ~bytes:got;
           Data_provided data);
    pgr_write =
      (fun ~offset ~data ->
         if not (reserve ~offset ~data) then Write_no_space
         else begin
           (* One disk charge for the whole (possibly clustered) write. *)
           Mach_hw.Machine.charge_disk machine ~cpu:(cpu ()) ~write:true
             ~bytes:(Bytes.length data);
           scatter ~offset ~data;
           Write_completed
         end);
    pgr_submit =
      (fun ~offset ~length ->
         if not (Mach_hw.Machine.disk_async machine) then None
         else
           match gather ~offset ~length with
           | None -> None
           | Some (data, got) ->
             let completion, service =
               Mach_hw.Machine.submit_disk machine queue ~cpu:(cpu ())
                 ~write:false ~bytes:got ~extra:0
             in
             Some { tk_data = data; tk_completion = completion;
                    tk_service = service });
    pgr_submit_write =
      (fun ~offset ~data ->
         if not (Mach_hw.Machine.disk_async machine) then None
         else if not (reserve ~offset ~data) then
           (* No space: fall back to the synchronous path, whose
              [Write_no_space] reply carries the escalation. *)
           None
         else begin
           let completion, service =
             Mach_hw.Machine.submit_disk machine queue ~cpu:(cpu ())
               ~write:true ~bytes:(Bytes.length data) ~extra:0
           in
           scatter ~offset ~data;
           Some { wt_completion = completion; wt_service = service }
         end);
    pgr_should_cache = ref false;
  }

let stored_bytes p =
  match Hashtbl.find_opt stores p.pgr_id with
  | None -> 0
  | Some s ->
    Hashtbl.fold (fun _ b acc -> acc + Bytes.length b) s.st_chunks 0

(* Drop a dead object's swap store and credit its chunks back to the
   pool.  Keyed by pager id; a no-op for pagers that are not swap
   pagers, so object termination can call it unconditionally. *)
let release p =
  match Hashtbl.find_opt stores p.pgr_id with
  | None -> ()
  | Some s ->
    let bytes =
      Hashtbl.fold (fun _ b acc -> acc + Bytes.length b) s.st_chunks 0
    in
    Vm_sys.swap_release s.st_sys bytes;
    Hashtbl.remove stores p.pgr_id
