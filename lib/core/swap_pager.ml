open Types

(* Registry of swap stores by pager id, so [stored_bytes] can answer for a
   pager without widening the pager record. *)
let stores : (int, (int, Bytes.t) Hashtbl.t) Hashtbl.t = Hashtbl.create 16

let make (sys : Vm_sys.t) ~name =
  let id = fresh_pager_id () in
  let store : (int, Bytes.t) Hashtbl.t = Hashtbl.create 16 in
  Hashtbl.add stores id store;
  let machine = sys.Vm_sys.machine in
  let cpu () = Vm_sys.current_cpu sys in
  {
    pgr_id = id;
    pgr_name = name;
    pgr_request =
      (fun ~offset ~length ->
         match Hashtbl.find_opt store offset with
         | Some data ->
           Mach_hw.Machine.charge_disk machine ~cpu:(cpu ()) ~write:false
             ~bytes:length;
           Data_provided (Bytes.sub data 0 (min length (Bytes.length data)))
         | None -> Data_unavailable);
    pgr_write =
      (fun ~offset ~data ->
         Mach_hw.Machine.charge_disk machine ~cpu:(cpu ()) ~write:true
           ~bytes:(Bytes.length data);
         Hashtbl.replace store offset (Bytes.copy data);
         Write_completed);
    pgr_should_cache = ref false;
  }

let stored_bytes p =
  match Hashtbl.find_opt stores p.pgr_id with
  | None -> 0
  | Some store -> Hashtbl.fold (fun _ b acc -> acc + Bytes.length b) store 0
