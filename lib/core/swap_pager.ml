open Types

(* Registry of swap stores by pager id, so [stored_bytes] can answer for a
   pager without widening the pager record. *)
let stores : (int, (int, Bytes.t) Hashtbl.t) Hashtbl.t = Hashtbl.create 16

let make (sys : Vm_sys.t) ~name =
  let id = fresh_pager_id () in
  let store : (int, Bytes.t) Hashtbl.t = Hashtbl.create 16 in
  Hashtbl.add stores id store;
  let machine = sys.Vm_sys.machine in
  (* Each swap pager models its own paging partition with a private
     service queue, so swap traffic queues behind itself, not behind
     file-system transfers. *)
  let queue = Mach_hw.Machine.new_disk_queue machine in
  let cpu () = Vm_sys.current_cpu sys in
  let ps = sys.Vm_sys.page_size in
  (* Gather contiguous chunks from [offset] up; one disk transfer covers
     the whole gathered range, so a clustered request pays the seek once.
     No chunk at [offset] itself means the pager holds nothing there (the
     range contract). *)
  let gather ~offset ~length =
    match Hashtbl.find_opt store offset with
    | None -> None
    | Some _ ->
      let parts = ref [] and got = ref 0 in
      let rec loop () =
        if !got < length then
          match Hashtbl.find_opt store (offset + !got) with
          | None -> ()
          | Some d ->
            let take = min (Bytes.length d) (length - !got) in
            parts := Bytes.sub d 0 take :: !parts;
            got := !got + take;
            if take = Bytes.length d then loop ()
      in
      loop ();
      Some (Bytes.concat Bytes.empty (List.rev !parts), !got)
  in
  let scatter ~offset ~data =
    (* Stored in page-size chunks so later single-page requests find
       their piece. *)
    let len = Bytes.length data in
    let pos = ref 0 in
    while !pos < len do
      let take = min ps (len - !pos) in
      Hashtbl.replace store (offset + !pos) (Bytes.sub data !pos take);
      pos := !pos + take
    done
  in
  {
    pgr_id = id;
    pgr_name = name;
    pgr_request =
      (fun ~offset ~length ->
         match gather ~offset ~length with
         | None -> Data_unavailable
         | Some (data, got) ->
           Mach_hw.Machine.charge_disk machine ~cpu:(cpu ()) ~write:false
             ~bytes:got;
           Data_provided data);
    pgr_write =
      (fun ~offset ~data ->
         (* One disk charge for the whole (possibly clustered) write. *)
         Mach_hw.Machine.charge_disk machine ~cpu:(cpu ()) ~write:true
           ~bytes:(Bytes.length data);
         scatter ~offset ~data;
         Write_completed);
    pgr_submit =
      (fun ~offset ~length ->
         if not (Mach_hw.Machine.disk_async machine) then None
         else
           match gather ~offset ~length with
           | None -> None
           | Some (data, got) ->
             let completion, service =
               Mach_hw.Machine.submit_disk machine queue ~cpu:(cpu ())
                 ~write:false ~bytes:got ~extra:0
             in
             Some { tk_data = data; tk_completion = completion;
                    tk_service = service });
    pgr_submit_write =
      (fun ~offset ~data ->
         if not (Mach_hw.Machine.disk_async machine) then None
         else begin
           let completion, service =
             Mach_hw.Machine.submit_disk machine queue ~cpu:(cpu ())
               ~write:true ~bytes:(Bytes.length data) ~extra:0
           in
           scatter ~offset ~data;
           Some { wt_completion = completion; wt_service = service }
         end);
    pgr_should_cache = ref false;
  }

let stored_bytes p =
  match Hashtbl.find_opt stores p.pgr_id with
  | None -> 0
  | Some store -> Hashtbl.fold (fun _ b acc -> acc + Bytes.length b) store 0
