open Types

(* Registry of swap stores by pager id, so [stored_bytes] can answer for a
   pager without widening the pager record. *)
let stores : (int, (int, Bytes.t) Hashtbl.t) Hashtbl.t = Hashtbl.create 16

let make (sys : Vm_sys.t) ~name =
  let id = fresh_pager_id () in
  let store : (int, Bytes.t) Hashtbl.t = Hashtbl.create 16 in
  Hashtbl.add stores id store;
  let machine = sys.Vm_sys.machine in
  let cpu () = Vm_sys.current_cpu sys in
  let ps = sys.Vm_sys.page_size in
  {
    pgr_id = id;
    pgr_name = name;
    pgr_request =
      (fun ~offset ~length ->
         (* Gather contiguous chunks from [offset] up; one disk charge
            covers the whole gathered range, so a clustered request pays
            the seek once.  No chunk at [offset] itself means the pager
            holds nothing there (the range contract). *)
         match Hashtbl.find_opt store offset with
         | None -> Data_unavailable
         | Some _ ->
           let parts = ref [] and got = ref 0 in
           let rec gather () =
             if !got < length then
               match Hashtbl.find_opt store (offset + !got) with
               | None -> ()
               | Some d ->
                 let take = min (Bytes.length d) (length - !got) in
                 parts := Bytes.sub d 0 take :: !parts;
                 got := !got + take;
                 if take = Bytes.length d then gather ()
           in
           gather ();
           Mach_hw.Machine.charge_disk machine ~cpu:(cpu ()) ~write:false
             ~bytes:!got;
           Data_provided (Bytes.concat Bytes.empty (List.rev !parts)));
    pgr_write =
      (fun ~offset ~data ->
         (* One disk charge for the whole (possibly clustered) write,
            stored in page-size chunks so later single-page requests
            find their piece. *)
         Mach_hw.Machine.charge_disk machine ~cpu:(cpu ()) ~write:true
           ~bytes:(Bytes.length data);
         let len = Bytes.length data in
         let pos = ref 0 in
         while !pos < len do
           let take = min ps (len - !pos) in
           Hashtbl.replace store (offset + !pos) (Bytes.sub data !pos take);
           pos := !pos + take
         done;
         Write_completed);
    pgr_should_cache = ref false;
  }

let stored_bytes p =
  match Hashtbl.find_opt stores p.pgr_id with
  | None -> 0
  | Some store -> Hashtbl.fold (fun _ b acc -> acc + Bytes.length b) store 0
