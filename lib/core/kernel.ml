open Mach_hw
open Mach_pmap

type t = {
  machine : Machine.t;
  domain : Pmap_domain.t;
  sys : Vm_sys.t;
  current : Task.t option array;
}

(* Decide whether a hardware fault is really a write.  On the NS32082 a
   read-modify-write access that faults for protection is reported as a
   read (Section 5.1); if the entry already permits reading, a protection
   fault reported as a read can only be the bug, so treat it as a write. *)
let effective_write t task (f : Machine.fault) =
  if f.Machine.fault_write then true
  else if
    f.Machine.fault_kind = `Protection
    && (Machine.arch t.machine).Arch.reports_rmw_as_read
  then begin
    match Vm_map.find (Task.map task) ~va:f.Machine.fault_va with
    | Some e when e.Types.e_prot.Prot.read ->
      t.sys.Vm_sys.stats.Vm_sys.rmw_bug_upgrades <-
        t.sys.Vm_sys.stats.Vm_sys.rmw_bug_upgrades + 1;
      true
    | Some _ | None -> false
  end
  else false

let handle_fault t ~cpu (f : Machine.fault) =
  Pmap_domain.set_current_cpu t.domain cpu;
  match t.current.(cpu) with
  | None ->
    raise
      (Machine.Memory_violation
         { va = f.Machine.fault_va; write = f.Machine.fault_write;
           reason = "fault with no current task" })
  | Some task when task.Task.task_oom_killed ->
    (* The OOM policy killed this task: its address space is gone, and
       every touch from here on is KERN_MEMORY_ERROR, end to end. *)
    t.sys.Vm_sys.stats.Vm_sys.memory_errors <-
      t.sys.Vm_sys.stats.Vm_sys.memory_errors + 1;
    raise
      (Machine.Memory_violation
         { va = f.Machine.fault_va; write = f.Machine.fault_write;
           reason = Kr.to_string Kr.Memory_error })
  | Some task ->
    let write = effective_write t task f in
    (match Vm_fault.fault t.sys (Task.map task) ~va:f.Machine.fault_va ~write with
     | Ok _ -> ()
     | Error kr ->
       raise
         (Machine.Memory_violation
            { va = f.Machine.fault_va; write; reason = Kr.to_string kr }))

let create ?(page_multiple = 1) ?object_cache_limit machine =
  let domain = Pmap_domain.create machine in
  let sys = Vm_sys.create ~machine ~domain ~page_multiple ?object_cache_limit () in
  Vm_pageout.install sys;
  let t =
    { machine; domain; sys;
      current = Array.make (Machine.cpu_count machine) None }
  in
  Machine.set_fault_handler machine (fun ~cpu f -> handle_fault t ~cpu f);
  t

let sys t = t.sys
let machine t = t.machine
let page_size t = t.sys.Vm_sys.page_size

let create_task t ?name () = Task.create t.sys ?name ()

let fork_task t ~cpu parent =
  Pmap_domain.set_current_cpu t.domain cpu;
  Vm_sys.charge t.sys (Vm_sys.cost t.sys).Arch.proc_work;
  Task.fork t.sys parent

let run_task t ~cpu task =
  Pmap_domain.set_current_cpu t.domain cpu;
  let switching =
    match t.current.(cpu) with
    | Some prev when prev == task -> false
    | Some prev ->
      (Task.pmap prev).Pmap.deactivate ~cpu;
      true
    | None -> true
  in
  t.current.(cpu) <- Some task;
  (Task.pmap task).Pmap.activate ~cpu;
  if switching && Mach_obs.Obs.enabled (Machine.tracer t.machine) then
    Mach_obs.Obs.record (Machine.tracer t.machine)
      ~ts:(Machine.cycles t.machine ~cpu) ~cpu
      (Mach_obs.Obs.Task_switch { task = task.Task.task_name })

let idle t ~cpu =
  (match t.current.(cpu) with
   | Some prev -> (Task.pmap prev).Pmap.deactivate ~cpu
   | None -> ());
  t.current.(cpu) <- None

let terminate_task t ~cpu task =
  Pmap_domain.set_current_cpu t.domain cpu;
  Array.iteri
    (fun i cur ->
       match cur with
       | Some running when running == task -> idle t ~cpu:i
       | Some _ | None -> ())
    t.current;
  Task.terminate t.sys task

let current_task t ~cpu = t.current.(cpu)

let elapsed_ms t = Machine.elapsed_ms t.machine

let reset_clocks t = Machine.reset_clocks t.machine
