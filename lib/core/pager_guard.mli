(** Fault-tolerant access to a memory object's pager.

    All pager traffic from the machine-independent layer goes through
    this module, which wraps the raw [pgr_request]/[pgr_write] calls in
    the kernel's failure policy:

    - transient failures ([Data_error]/[Write_error]) are retried up to
      [Vm_sys.pager_retry_limit] times with exponential backoff charged
      in simulated cycles (base [pager_backoff_cycles]), each retry
      emitting [Obs.Pager_retry];
    - a request that exhausts its budget counts against the object's
      {!Types.pager_health}; after [pager_death_threshold] consecutive
      exhausted budgets the pager is declared {e dead}
      ([Obs.Pager_dead]): every dirty resident page of the object is
      immediately written to a freshly created rescue pager (a
      {!Swap_pager}, i.e. the default pager) so no data can be lost;
    - once dead, requests are answered from the rescue pager, and pages
      it does not hold follow the object's {!Types.degrade_policy} —
      zero fill, or [KERN_MEMORY_ERROR] to the faulting task. *)

val request :
  Vm_sys.t -> Types.obj -> offset:int -> length:int ->
  [ `Data of Bytes.t | `Absent | `Error ]
(** [request sys obj ~offset ~length] asks the object's pager for data,
    applying retry/backoff/death policy.  [`Absent] means "no pager has
    this page" (descend the shadow chain or zero fill); [`Error] means
    the faulting task must see [KERN_MEMORY_ERROR].  Objects without a
    pager answer [`Absent]. *)

val request_range :
  Vm_sys.t -> Types.obj -> offset:int -> length:int ->
  [ `Data of Bytes.t | `Absent | `Error ]
(** [request_range] is the clustered-pagein variant of {!request}: one
    attempt, no retries, no health damage.  The reply may hold fewer
    bytes than [length] (a truncated cluster).  On [`Error] — or a reply
    shorter than one page — the caller must fall back to the single-page
    {!request} path, which owns the retry/backoff/death policy.
    [`Absent] means the pager holds nothing at [offset] itself, so the
    caller may descend/zero-fill the demand page directly. *)

val submit_range :
  Vm_sys.t -> Types.obj -> offset:int -> length:int ->
  (Bytes.t * int * int) option
(** [submit_range] is the asynchronous variant of {!request_range}: ask
    the pager to submit the transfer and return [(data, completion,
    service)] without blocking for device time.  [None] means the submit
    path is unavailable (no pager, dead pager, async disk off, or the
    pager declined) and the caller must use the synchronous protocol.
    One attempt, no retries, no health damage. *)

val submit_write_range :
  Vm_sys.t -> Types.obj -> offset:int -> data:Bytes.t ->
  (int * int) option
(** Asynchronous variant of {!write_range}: [(completion, service)] on
    submit, [None] to fall back to the synchronous path. *)

val await_page : Vm_sys.t -> Types.page -> unit
(** [await_page sys p] blocks the current CPU until the async transfer
    recorded in [p.pg_inflight] (if any) completes, charging only the
    remaining cycles, then clears the inflight record and the busy bit.
    The inflight record is shared across a cluster's pages; the overlap
    and residue are accounted once no matter how many sharers wait. *)

val write_range :
  Vm_sys.t -> Types.obj -> offset:int -> data:Bytes.t ->
  [ `Ok | `Failed | `No_space ]
(** [write_range] is the clustered-pageout variant of {!write}: one
    attempt, no retries, no health damage.  On [`Failed] nothing was
    written and the caller must degrade to per-page {!write} calls;
    [`No_space] means the backing store is full ([Write_no_space]) —
    also nothing written, also no health damage, but permanent until
    space is released: the caller should escalate to the
    memory-pressure state rather than retry. *)

val write :
  Vm_sys.t -> Types.obj -> offset:int -> data:Bytes.t ->
  [ `Ok | `Failed | `No_space ]
(** [write sys obj ~offset ~data] writes a page back to the object's
    pager (or its rescue pager once dead) with the same policy.  On
    [`Failed] the write exhausted its retry budget and the caller must
    keep the page dirty; [`No_space] reports a full backing store
    without burning retries or damaging the pager's health (the pager
    is fine, the disk is full). *)

val pager_dead : Types.obj -> bool
(** Whether the object's pager has been declared dead. *)
