(* Clustered pagein with per-stream adaptive read-ahead.

   Faults and file reads funnel their pager misses through {!pagein},
   which asks the object's pager for a multi-page cluster when the
   access pattern looks sequential.  The window state lives in a small
   fixed array of {e stream slots} on the object ([obj_streams], sized
   by [Vm_sys.stream_slots]) — the DragonFly vfs_cluster shape — so K
   tasks streaming one shared file each ramp their own window
   1 -> 2 -> 4 -> ... -> [Vm_sys.cluster_max] instead of interleaving
   their offsets through a single cursor and permanently resetting each
   other to one page.  A miss matches the slot whose cursor ([st_next])
   equals its offset; otherwise it takes the reader's own slot (keyed by
   map id and entry start), an expired slot, or recycles the least
   recently used one ([stream_resets]).

   The slot state is committed only after a successful issue: [plan]
   computes the candidate cluster without touching the slot, and each
   outcome path records exactly what it managed to read (so a cluster
   clipped to one page, or a failed range request, cannot leave a
   phantom ramp behind).  Slot stamps expire with the
   [Machine.reset_clocks] epoch, like object-lock stamps, so a recycled
   object or a fresh measurement interval never inherits a dead
   stream's cursor.

   Clustering is strictly opportunistic.  The range request is one-shot
   ({!Pager_guard.request_range}); on error or a reply shorter than one
   page we fall back to the single-page path, which owns the full
   retry/backoff/death policy.  Prefetched pages are filled from the
   same reply, marked [pg_prefetched] and enqueued on the *inactive*
   queue, so a wrong guess is the first thing the pageout daemon
   reclaims.

   Once a stream has ramped to [Vm_sys.free_behind_min] pages (0 = off,
   the default), the clean pages {e behind} its cursor are deactivated
   to the head of the inactive queue (free-behind): a file larger than
   memory then reclaims its own wake instead of flushing every other
   task's working set.  Dirty, wired, busy, in-flight pages — and pages
   another live stream has yet to reach — are skipped.

   With the asynchronous disk model on, only the demand page is read
   synchronously; the prefetch tail is submitted
   ({!Pager_guard.submit_range}) and its pages ride an {!Types.inflight}
   record: they are filled and resident immediately, but stay busy until
   the device's completion stamp, and the first toucher waits out the
   residue ({!Pager_guard.await_page} via {!note_hit}). *)

open Types
module Obs = Mach_obs.Obs

(* --- Stream slots ----------------------------------------------------- *)

let stream_epoch (sys : Vm_sys.t) =
  Mach_hw.Machine.reset_epoch sys.Vm_sys.machine

(* [st_epoch = -1] never equals a real epoch: the slot is invalid until
   its first commit. *)
let fresh_slot () =
  { st_map = -1; st_entry = 0; st_next = min_int; st_window = 1;
    st_use = 0; st_epoch = -1 }

(* The slot array is built lazily (and rebuilt when the knob changes),
   so objects that never see a pager miss — anonymous zero-fill memory,
   say — carry an empty array. *)
let slots_of (sys : Vm_sys.t) obj =
  let n = max 1 sys.Vm_sys.stream_slots in
  if Array.length obj.obj_streams <> n then
    obj.obj_streams <- Array.init n (fun _ -> fresh_slot ());
  obj.obj_streams

(* Pick the slot servicing the miss at [offset] for reader [stream].
   Returns the slot and whether it continues a sequential run.  Position
   first (the DragonFly rule: the cursor identifies the stream, whoever
   is driving it), then the reader's own keyed slot (a seek within one
   stream is not interference), then any expired slot, and only then the
   LRU victim — stealing a live reader's ramp, which is what
   [stream_resets] counts.  Selection is read-only on the slot: the key
   and cursor are written by the commit paths, after a successful
   issue. *)
let find_slot (sys : Vm_sys.t) obj ~stream:(map, ent) ~offset =
  let slots = slots_of sys obj in
  let epoch = stream_epoch sys in
  let valid st = st.st_epoch = epoch in
  let pick f =
    let r = ref None in
    Array.iter (fun st -> if !r = None && f st then r := Some st) slots;
    !r
  in
  match pick (fun st -> valid st && st.st_next = offset) with
  | Some st ->
    sys.Vm_sys.stats.Vm_sys.stream_hits <-
      sys.Vm_sys.stats.Vm_sys.stream_hits + 1;
    (st, true)
  | None ->
    let st =
      match
        pick (fun st -> valid st && st.st_map = map && st.st_entry = ent)
      with
      | Some st -> st
      | None ->
        (match pick (fun st -> not (valid st)) with
         | Some st -> st
         | None ->
           (* Every slot carries a live stream: evict the least recently
              used one.  More concurrent readers than slots. *)
           let lru = ref slots.(0) in
           Array.iter
             (fun st -> if st.st_use < !lru.st_use then lru := st)
             slots;
           sys.Vm_sys.stats.Vm_sys.stream_resets <-
             sys.Vm_sys.stats.Vm_sys.stream_resets + 1;
           Vm_sys.emit sys (Obs.Stream_reset { obj = obj.obj_id; offset });
           !lru)
    in
    (st, false)

(* Commit a successful issue to the slot: key, cursor, window, and the
   LRU/epoch stamps.  The use stamp comes from a monotonic counter, not
   the cycle clock, so [reset_clocks] cannot reorder victims. *)
let commit (sys : Vm_sys.t) st ~stream:(map, ent) ~next ~window =
  st.st_map <- map;
  st.st_entry <- ent;
  st.st_next <- next;
  st.st_window <- window;
  sys.Vm_sys.stream_clock <- sys.Vm_sys.stream_clock + 1;
  st.st_use <- sys.Vm_sys.stream_clock;
  st.st_epoch <- stream_epoch sys

(* A one-page read succeeded: remember where it ended so the next miss
   can be recognised as sequential, and collapse the window — a ramp is
   earned by issued clusters, not by plans. *)
let commit_single sys st ~stream ~offset ~ps =
  commit sys st ~stream ~next:(offset + ps) ~window:1

(* --- Free-behind ------------------------------------------------------ *)

let is_modified (sys : Vm_sys.t) p =
  let m = Resident.multiple sys.Vm_sys.resident in
  let rec loop i =
    i < m
    && (Mach_pmap.Pmap_domain.is_modified sys.Vm_sys.domain
          ~pfn:(p.pfn + i)
        || loop (i + 1))
  in
  loop 0

(* Deactivate the clean pages stream [st] has left behind the cluster it
   just read ([offset] is the cluster start; the walk covers [pages]
   page offsets below it).  Only streams ramped to at least
   [free_behind_min] qualify, so a random or barely-sequential reader
   never touches the queues.  Skipped: dirty pages (their data exists
   nowhere else yet), wired/busy/in-flight pages, pages not on the
   active queue (untouched prefetch is already inactive and already
   ordered), and pages some other live stream has yet to reach —
   free-behind eats this stream's own wake, never a sharer's future.
   Moved pages go to the head of the inactive queue with their
   referenced bits cleared, so the daemon reclaims them next instead of
   granting a second chance. *)
let free_behind (sys : Vm_sys.t) obj st ~offset ~pages =
  let fbmin = sys.Vm_sys.free_behind_min in
  if fbmin > 0 && st.st_window >= fbmin then begin
    let ps = sys.Vm_sys.page_size in
    let epoch = stream_epoch sys in
    let domain = sys.Vm_sys.domain in
    let m = Resident.multiple sys.Vm_sys.resident in
    let ahead_of_other_stream off =
      Array.exists
        (fun s -> s != st && s.st_epoch = epoch && s.st_next <= off)
        obj.obj_streams
    in
    let moved = ref 0 in
    for i = 1 to pages do
      let off = offset - (i * ps) in
      if off >= 0 then
        match Resident.lookup sys.Vm_sys.resident ~obj ~offset:off with
        | None -> ()
        | Some p ->
          if
            p.pg_queue = Q_active && p.pg_wire_count = 0
            && (not p.pg_busy) && p.pg_inflight = None
            && (not (ahead_of_other_stream off))
            && not (is_modified sys p)
          then begin
            for f = 0 to m - 1 do
              Mach_pmap.Pmap_domain.clear_referenced domain ~pfn:(p.pfn + f)
            done;
            Resident.enqueue_inactive_front sys.Vm_sys.resident p;
            incr moved
          end
    done;
    if !moved > 0 then begin
      sys.Vm_sys.stats.Vm_sys.free_behind_pages <-
        sys.Vm_sys.stats.Vm_sys.free_behind_pages + !moved;
      Vm_sys.emit sys
        (Obs.Free_behind { obj = obj.obj_id; offset; pages = !moved })
    end
  end

(* --- Cluster planning and issue --------------------------------------- *)

(* Pages to request at [offset], demand page included: clip the
   candidate window [w] (the slot's ramp, or 1 on a non-sequential
   miss) to [limit] (the map entry's window, in this object's offset
   space), to the object size, to the first already-resident page and
   to the free list's headroom (prefetch must never trigger reclaim).
   Pure: the slot is committed by the caller only once the cluster
   actually issues. *)
let plan (sys : Vm_sys.t) obj ~w ~offset ~limit =
  let ps = sys.Vm_sys.page_size in
  let bound = min limit obj.obj_size in
  let avail = bound - offset in
  if avail <= ps then 1
  else begin
    let n = min w ((avail + ps - 1) / ps) in
    let i = ref 1 in
    while
      !i < n
      && Resident.lookup sys.Vm_sys.resident ~obj
           ~offset:(offset + (!i * ps))
         = None
    do
      incr i
    done;
    let n = !i in
    (* Speculation gets only the pages above the free target: clipping
       there (not at [free_reserved]) means prefetch never even triggers
       reclaim, let alone touches the reserve — the reserve floor is
       enforced again at allocation time in [install_tail], where the
       free list may have dropped since this plan. *)
    let headroom =
      Resident.free_count sys.Vm_sys.resident - sys.Vm_sys.free_target
    in
    max 1 (min n (1 + max 0 headroom))
  end

(* The classical one-page pagein, exactly the pre-clustering fault path:
   guarded request with retries, then allocate/fill.  Returns the bytes
   a Pagein trace event should report.  Read-ahead bookkeeping belongs
   to the caller. *)
let single (sys : Vm_sys.t) obj ~offset =
  let ps = sys.Vm_sys.page_size in
  match Pager_guard.request sys obj ~offset ~length:ps with
  | `Data data ->
    let p = Vm_sys.grab_page ~color:(offset / ps) sys in
    Resident.insert sys.Vm_sys.resident p ~obj ~offset;
    p.pg_busy <- true;
    Page_io.fill sys p data;
    p.pg_busy <- false;
    sys.Vm_sys.stats.Vm_sys.pager_reads <-
      sys.Vm_sys.stats.Vm_sys.pager_reads + 1;
    `Data (p, ps)
  | `Absent -> `Absent
  | `Error -> `Error

(* Fill the [got] prefetch pages beyond the demand page from [data]
   (page [i] of [data] is object offset [tail_off + i*ps]).  [inflight]
   is the shared async transfer record, [None] on the synchronous path;
   async pages stay busy until awaited.  Returns how many pages were
   actually installed ([plan] skipped resident pages, but the demand
   grab may have run the reclaimer in between; re-check and never steal
   from the free target).  Allocation is raw [Resident.alloc] behind a
   hard [free_reserved] floor: prefetch must never wait, reclaim, OOM
   or dip into the reserve on behalf of speculation — pages that do not
   fit are simply dropped from the tail. *)
let install_tail (sys : Vm_sys.t) obj ~tail_off ~got ~data ~inflight =
  let ps = sys.Vm_sys.page_size in
  let issued = ref 0 in
  let alloc_above_reserve ~off =
    if Resident.free_count sys.Vm_sys.resident > sys.Vm_sys.free_reserved
    then
      Resident.alloc ~cpu:(Vm_sys.current_cpu sys) ~color:(off / ps)
        sys.Vm_sys.resident
    else None
  in
  for i = 0 to got - 1 do
    let off = tail_off + (i * ps) in
    if Resident.lookup sys.Vm_sys.resident ~obj ~offset:off = None then
      match alloc_above_reserve ~off with
      | None -> ()
      | Some p ->
        Resident.insert sys.Vm_sys.resident p ~obj ~offset:off;
        p.pg_busy <- true;
        Page_io.fill sys p (Bytes.sub data (i * ps) ps);
        (match inflight with
         | None -> p.pg_busy <- false
         | Some _ -> p.pg_inflight <- inflight);
        p.pg_prefetched <- true;
        Resident.enqueue sys.Vm_sys.resident p Q_inactive;
        incr issued
  done;
  !issued

let note_prefetch (sys : Vm_sys.t) ~offset ~issued ~window =
  if issued > 0 then begin
    let stats = sys.Vm_sys.stats in
    stats.Vm_sys.prefetch_issued <- stats.Vm_sys.prefetch_issued + issued;
    Vm_sys.emit sys (Obs.Prefetch { offset; pages = issued; window })
  end

(* Synchronous clustered pagein: one range request covers the demand
   page and the tail. *)
let pagein_sync (sys : Vm_sys.t) obj st ~stream ~offset ~n =
  let ps = sys.Vm_sys.page_size in
  let stats = sys.Vm_sys.stats in
  match Pager_guard.request_range sys obj ~offset ~length:(n * ps) with
  | `Data data when Bytes.length data >= ps ->
    let got = min n (Bytes.length data / ps) in
    (* Commit the ramp at the size actually issued: a cluster clipped by
       the object end, a resident page or free-list headroom must not
       ramp as if the full candidate window had been read. *)
    commit sys st ~stream ~next:(offset + (got * ps)) ~window:n;
    stats.Vm_sys.pager_reads <- stats.Vm_sys.pager_reads + 1;
    let demand = Vm_sys.grab_page ~color:(offset / ps) sys in
    Resident.insert sys.Vm_sys.resident demand ~obj ~offset;
    demand.pg_busy <- true;
    Page_io.fill sys demand (Bytes.sub data 0 ps);
    demand.pg_busy <- false;
    let issued =
      if got > 1 then
        install_tail sys obj ~tail_off:(offset + ps) ~got:(got - 1)
          ~data:(Bytes.sub data ps ((got - 1) * ps)) ~inflight:None
      else 0
    in
    note_prefetch sys ~offset ~issued ~window:n;
    free_behind sys obj st ~offset ~pages:got;
    `Data (demand, got * ps)
  | `Data _ (* truncated below one page *) | `Error ->
    (* Degrade to the single-page path, which owns retry/death — and
       still advance the sequence point on success, so one bad cluster
       costs the ramp, not the ability to ever ramp again. *)
    (match single sys obj ~offset with
     | `Data _ as r ->
       commit_single sys st ~stream ~offset ~ps;
       r
     | r -> r)
  | `Absent -> `Absent

(* Asynchronous clustered pagein: the demand page is read synchronously
   (keeping the guarded retry/death policy on the page the fault
   actually needs), then the tail is submitted and overlaps with
   whatever the CPU does next.  Submitting after the demand read keeps
   the demand transfer ahead of the tail in the device queue.  Pagers
   with no submit path still prefetch, just synchronously. *)
let pagein_async (sys : Vm_sys.t) obj st ~stream ~offset ~n =
  let ps = sys.Vm_sys.page_size in
  let stats = sys.Vm_sys.stats in
  match single sys obj ~offset with
  | (`Absent | `Error) as r -> r
  | `Data (demand, _) ->
    commit_single sys st ~stream ~offset ~ps;
    let tail_off = offset + ps in
    let tail_len = (n - 1) * ps in
    let finish ~got ~issued =
      if got > 0 then begin
        commit sys st ~stream ~next:(tail_off + (got * ps)) ~window:n;
        stats.Vm_sys.pager_reads <- stats.Vm_sys.pager_reads + 1
      end;
      note_prefetch sys ~offset ~issued ~window:st.st_window;
      if got > 0 then free_behind sys obj st ~offset ~pages:(got + 1);
      `Data (demand, ps + (got * ps))
    in
    (match Pager_guard.submit_range sys obj ~offset:tail_off
             ~length:tail_len with
     | Some (data, completion, service) when Bytes.length data >= ps ->
       let got = min (n - 1) (Bytes.length data / ps) in
       let inflight =
         Some { if_completion = completion; if_service = service;
                if_waited = false }
       in
       let issued = install_tail sys obj ~tail_off ~got ~data ~inflight in
       finish ~got ~issued
     | Some _ -> `Data (demand, ps)
     | None ->
       (* No async path (or async submit declined): synchronous tail. *)
       (match Pager_guard.request_range sys obj ~offset:tail_off
                ~length:tail_len with
        | `Data data when Bytes.length data >= ps ->
          let got = min (n - 1) (Bytes.length data / ps) in
          let issued =
            install_tail sys obj ~tail_off ~got ~data ~inflight:None
          in
          finish ~got ~issued
        | `Data _ | `Error | `Absent -> `Data (demand, ps)))

let pagein (sys : Vm_sys.t) ?(stream = (-1, 0)) obj ~offset ~limit =
  let ps = sys.Vm_sys.page_size in
  if sys.Vm_sys.cluster_max <= 1 then single sys obj ~offset
  else begin
    let st, seq = find_slot sys obj ~stream ~offset in
    let w =
      if seq then min sys.Vm_sys.cluster_max (st.st_window * 2) else 1
    in
    let n = plan sys obj ~w ~offset ~limit in
    if n = 1 then begin
      match single sys obj ~offset with
      | `Data _ as r ->
        commit_single sys st ~stream ~offset ~ps;
        r
      | r -> r
    end
    else if Mach_hw.Machine.disk_async sys.Vm_sys.machine then
      pagein_async sys obj st ~stream ~offset ~n
    else pagein_sync sys obj st ~stream ~offset ~n
  end

(* A resident-page hit on a prefetched page: the guess paid off.  Count
   it and promote the page from the inactive to the active queue.  If
   the page is still riding an async transfer, first wait out the
   residue — this is where a fault that outran the disk pays the
   remaining device time. *)
let note_hit (sys : Vm_sys.t) p =
  if p.pg_inflight <> None then Pager_guard.await_page sys p;
  if p.pg_prefetched then begin
    p.pg_prefetched <- false;
    sys.Vm_sys.stats.Vm_sys.prefetch_hits <-
      sys.Vm_sys.stats.Vm_sys.prefetch_hits + 1;
    if p.pg_wire_count = 0 && p.pg_queue = Q_inactive then
      Resident.enqueue sys.Vm_sys.resident p Q_active
  end
