(* Clustered pagein with per-object adaptive read-ahead.

   Faults and file reads funnel their pager misses through {!pagein},
   which asks the object's pager for a multi-page cluster when the
   access pattern looks sequential.  The window lives on the object
   ([obj_ra_next]/[obj_ra_window]): it ramps 1 -> 2 -> 4 -> ... ->
   [Vm_sys.cluster_max] while each miss lands exactly where the previous
   cluster ended, and collapses back to one page on a random access.

   Clustering is strictly opportunistic.  The range request is one-shot
   ({!Pager_guard.request_range}); on error or a reply shorter than one
   page we fall back to the single-page path, which owns the full
   retry/backoff/death policy.  Prefetched pages are filled from the
   same reply, marked [pg_prefetched] and enqueued on the *inactive*
   queue, so a wrong guess is the first thing the pageout daemon
   reclaims. *)

open Types
module Obs = Mach_obs.Obs

(* Pages to request at [offset], demand page included: ramp/reset the
   object's window, then clip to [limit] (the map entry's window, in
   this object's offset space), to the object size, to the first
   already-resident page and to the free list's headroom (prefetch must
   never trigger reclaim). *)
let plan (sys : Vm_sys.t) obj ~offset ~limit =
  let ps = sys.Vm_sys.page_size in
  let w =
    if obj.obj_ra_next = offset then
      min sys.Vm_sys.cluster_max (obj.obj_ra_window * 2)
    else 1
  in
  obj.obj_ra_window <- w;
  let bound = min limit obj.obj_size in
  let avail = bound - offset in
  if avail <= ps then 1
  else begin
    let n = min w ((avail + ps - 1) / ps) in
    let i = ref 1 in
    while
      !i < n
      && Resident.lookup sys.Vm_sys.resident ~obj
           ~offset:(offset + (!i * ps))
         = None
    do
      incr i
    done;
    let n = !i in
    let headroom =
      Resident.free_count sys.Vm_sys.resident - sys.Vm_sys.free_target
    in
    max 1 (min n (1 + max 0 headroom))
  end

(* The classical one-page pagein, exactly the pre-clustering fault path:
   guarded request with retries, then allocate/fill.  Returns the bytes
   a Pagein trace event should report. *)
let single (sys : Vm_sys.t) obj ~offset =
  let ps = sys.Vm_sys.page_size in
  match Pager_guard.request sys obj ~offset ~length:ps with
  | `Data data ->
    let p = Vm_sys.grab_page sys in
    Resident.insert sys.Vm_sys.resident p ~obj ~offset;
    p.pg_busy <- true;
    Page_io.fill sys p data;
    p.pg_busy <- false;
    sys.Vm_sys.stats.Vm_sys.pager_reads <-
      sys.Vm_sys.stats.Vm_sys.pager_reads + 1;
    `Data (p, ps)
  | `Absent -> `Absent
  | `Error -> `Error

let pagein (sys : Vm_sys.t) obj ~offset ~limit =
  let ps = sys.Vm_sys.page_size in
  let stats = sys.Vm_sys.stats in
  if sys.Vm_sys.cluster_max <= 1 then single sys obj ~offset
  else begin
    let n = plan sys obj ~offset ~limit in
    if n = 1 then begin
      match single sys obj ~offset with
      | `Data _ as r ->
        (* Remember where this read ended so the next miss can be
           recognised as sequential. *)
        obj.obj_ra_next <- offset + ps;
        r
      | r -> r
    end
    else begin
      match Pager_guard.request_range sys obj ~offset ~length:(n * ps) with
      | `Data data when Bytes.length data >= ps ->
        let got = min n (Bytes.length data / ps) in
        obj.obj_ra_next <- offset + (got * ps);
        stats.Vm_sys.pager_reads <- stats.Vm_sys.pager_reads + 1;
        let demand = Vm_sys.grab_page sys in
        Resident.insert sys.Vm_sys.resident demand ~obj ~offset;
        demand.pg_busy <- true;
        Page_io.fill sys demand (Bytes.sub data 0 ps);
        demand.pg_busy <- false;
        let issued = ref 0 in
        for i = 1 to got - 1 do
          let off = offset + (i * ps) in
          (* [plan] skipped resident pages, but the demand-page grab may
             have run the reclaimer in between; re-check and never steal
             from the free target. *)
          if Resident.lookup sys.Vm_sys.resident ~obj ~offset:off = None
          then
            match Resident.alloc sys.Vm_sys.resident with
            | None -> ()
            | Some p ->
              Resident.insert sys.Vm_sys.resident p ~obj ~offset:off;
              p.pg_busy <- true;
              Page_io.fill sys p (Bytes.sub data (i * ps) ps);
              p.pg_busy <- false;
              p.pg_prefetched <- true;
              Resident.enqueue sys.Vm_sys.resident p Q_inactive;
              incr issued
        done;
        if !issued > 0 then begin
          stats.Vm_sys.prefetch_issued <-
            stats.Vm_sys.prefetch_issued + !issued;
          Vm_sys.emit sys
            (Obs.Prefetch
               { offset; pages = !issued; window = obj.obj_ra_window })
        end;
        `Data (demand, got * ps)
      | `Data _ (* truncated below one page *) | `Error ->
        (* Degrade to the single-page path, which owns retry/death. *)
        single sys obj ~offset
      | `Absent -> `Absent
    end
  end

(* A resident-page hit on a prefetched page: the guess paid off.  Count
   it and promote the page from the inactive to the active queue. *)
let note_hit (sys : Vm_sys.t) p =
  if p.pg_prefetched then begin
    p.pg_prefetched <- false;
    sys.Vm_sys.stats.Vm_sys.prefetch_hits <-
      sys.Vm_sys.stats.Vm_sys.prefetch_hits + 1;
    if p.pg_wire_count = 0 && p.pg_queue = Q_inactive then
      Resident.enqueue sys.Vm_sys.resident p Q_active
  end
