(* Clustered pagein with per-object adaptive read-ahead.

   Faults and file reads funnel their pager misses through {!pagein},
   which asks the object's pager for a multi-page cluster when the
   access pattern looks sequential.  The window lives on the object
   ([obj_ra_next]/[obj_ra_window]): it ramps 1 -> 2 -> 4 -> ... ->
   [Vm_sys.cluster_max] while each miss lands exactly where the previous
   cluster ended, and collapses back to one page on a random access.

   The window state is committed only after a successful issue: [plan]
   computes the candidate cluster without touching the object, and each
   outcome path records exactly what it managed to read (so a cluster
   clipped to one page, or a failed range request, cannot leave a
   phantom ramp behind).

   Clustering is strictly opportunistic.  The range request is one-shot
   ({!Pager_guard.request_range}); on error or a reply shorter than one
   page we fall back to the single-page path, which owns the full
   retry/backoff/death policy.  Prefetched pages are filled from the
   same reply, marked [pg_prefetched] and enqueued on the *inactive*
   queue, so a wrong guess is the first thing the pageout daemon
   reclaims.

   With the asynchronous disk model on, only the demand page is read
   synchronously; the prefetch tail is submitted
   ({!Pager_guard.submit_range}) and its pages ride an {!Types.inflight}
   record: they are filled and resident immediately, but stay busy until
   the device's completion stamp, and the first toucher waits out the
   residue ({!Pager_guard.await_page} via {!note_hit}). *)

open Types
module Obs = Mach_obs.Obs

(* Pages to request at [offset], demand page included: ramp (or reset)
   the candidate window, then clip to [limit] (the map entry's window,
   in this object's offset space), to the object size, to the first
   already-resident page and to the free list's headroom (prefetch must
   never trigger reclaim).  Pure: the object's window state is committed
   by the caller only once the cluster actually issues. *)
let plan (sys : Vm_sys.t) obj ~offset ~limit =
  let ps = sys.Vm_sys.page_size in
  let w =
    if obj.obj_ra_next = offset then
      min sys.Vm_sys.cluster_max (obj.obj_ra_window * 2)
    else 1
  in
  let bound = min limit obj.obj_size in
  let avail = bound - offset in
  if avail <= ps then 1
  else begin
    let n = min w ((avail + ps - 1) / ps) in
    let i = ref 1 in
    while
      !i < n
      && Resident.lookup sys.Vm_sys.resident ~obj
           ~offset:(offset + (!i * ps))
         = None
    do
      incr i
    done;
    let n = !i in
    (* Speculation gets only the pages above the free target: clipping
       there (not at [free_reserved]) means prefetch never even triggers
       reclaim, let alone touches the reserve — the reserve floor is
       enforced again at allocation time in [install_tail], where the
       free list may have dropped since this plan. *)
    let headroom =
      Resident.free_count sys.Vm_sys.resident - sys.Vm_sys.free_target
    in
    max 1 (min n (1 + max 0 headroom))
  end

(* The classical one-page pagein, exactly the pre-clustering fault path:
   guarded request with retries, then allocate/fill.  Returns the bytes
   a Pagein trace event should report.  Read-ahead bookkeeping belongs
   to the caller. *)
let single (sys : Vm_sys.t) obj ~offset =
  let ps = sys.Vm_sys.page_size in
  match Pager_guard.request sys obj ~offset ~length:ps with
  | `Data data ->
    let p = Vm_sys.grab_page ~color:(offset / ps) sys in
    Resident.insert sys.Vm_sys.resident p ~obj ~offset;
    p.pg_busy <- true;
    Page_io.fill sys p data;
    p.pg_busy <- false;
    sys.Vm_sys.stats.Vm_sys.pager_reads <-
      sys.Vm_sys.stats.Vm_sys.pager_reads + 1;
    `Data (p, ps)
  | `Absent -> `Absent
  | `Error -> `Error

(* A one-page read succeeded: remember where it ended so the next miss
   can be recognised as sequential, and collapse the window — a ramp is
   earned by issued clusters, not by plans. *)
let commit_single obj ~offset ~ps =
  obj.obj_ra_next <- offset + ps;
  obj.obj_ra_window <- 1

(* Fill the [got] prefetch pages beyond the demand page from [data]
   (page [i] of [data] is object offset [tail_off + i*ps]).  [inflight]
   is the shared async transfer record, [None] on the synchronous path;
   async pages stay busy until awaited.  Returns how many pages were
   actually installed ([plan] skipped resident pages, but the demand
   grab may have run the reclaimer in between; re-check and never steal
   from the free target).  Allocation is raw [Resident.alloc] behind a
   hard [free_reserved] floor: prefetch must never wait, reclaim, OOM
   or dip into the reserve on behalf of speculation — pages that do not
   fit are simply dropped from the tail. *)
let install_tail (sys : Vm_sys.t) obj ~tail_off ~got ~data ~inflight =
  let ps = sys.Vm_sys.page_size in
  let issued = ref 0 in
  let alloc_above_reserve ~off =
    if Resident.free_count sys.Vm_sys.resident > sys.Vm_sys.free_reserved
    then
      Resident.alloc ~cpu:(Vm_sys.current_cpu sys) ~color:(off / ps)
        sys.Vm_sys.resident
    else None
  in
  for i = 0 to got - 1 do
    let off = tail_off + (i * ps) in
    if Resident.lookup sys.Vm_sys.resident ~obj ~offset:off = None then
      match alloc_above_reserve ~off with
      | None -> ()
      | Some p ->
        Resident.insert sys.Vm_sys.resident p ~obj ~offset:off;
        p.pg_busy <- true;
        Page_io.fill sys p (Bytes.sub data (i * ps) ps);
        (match inflight with
         | None -> p.pg_busy <- false
         | Some _ -> p.pg_inflight <- inflight);
        p.pg_prefetched <- true;
        Resident.enqueue sys.Vm_sys.resident p Q_inactive;
        incr issued
  done;
  !issued

let note_prefetch (sys : Vm_sys.t) obj ~offset ~issued =
  if issued > 0 then begin
    let stats = sys.Vm_sys.stats in
    stats.Vm_sys.prefetch_issued <- stats.Vm_sys.prefetch_issued + issued;
    Vm_sys.emit sys
      (Obs.Prefetch { offset; pages = issued; window = obj.obj_ra_window })
  end

(* Synchronous clustered pagein: one range request covers the demand
   page and the tail. *)
let pagein_sync (sys : Vm_sys.t) obj ~offset ~n =
  let ps = sys.Vm_sys.page_size in
  let stats = sys.Vm_sys.stats in
  match Pager_guard.request_range sys obj ~offset ~length:(n * ps) with
  | `Data data when Bytes.length data >= ps ->
    let got = min n (Bytes.length data / ps) in
    obj.obj_ra_next <- offset + (got * ps);
    (* Commit the ramp at the size actually issued: a cluster clipped by
       the object end, a resident page or free-list headroom must not
       ramp as if the full candidate window had been read. *)
    obj.obj_ra_window <- n;
    stats.Vm_sys.pager_reads <- stats.Vm_sys.pager_reads + 1;
    let demand = Vm_sys.grab_page ~color:(offset / ps) sys in
    Resident.insert sys.Vm_sys.resident demand ~obj ~offset;
    demand.pg_busy <- true;
    Page_io.fill sys demand (Bytes.sub data 0 ps);
    demand.pg_busy <- false;
    let issued =
      if got > 1 then
        install_tail sys obj ~tail_off:(offset + ps) ~got:(got - 1)
          ~data:(Bytes.sub data ps ((got - 1) * ps)) ~inflight:None
      else 0
    in
    note_prefetch sys obj ~offset ~issued;
    `Data (demand, got * ps)
  | `Data _ (* truncated below one page *) | `Error ->
    (* Degrade to the single-page path, which owns retry/death — and
       still advance the sequence point on success, so one bad cluster
       costs the ramp, not the ability to ever ramp again. *)
    (match single sys obj ~offset with
     | `Data _ as r ->
       commit_single obj ~offset ~ps;
       r
     | r -> r)
  | `Absent -> `Absent

(* Asynchronous clustered pagein: the demand page is read synchronously
   (keeping the guarded retry/death policy on the page the fault
   actually needs), then the tail is submitted and overlaps with
   whatever the CPU does next.  Submitting after the demand read keeps
   the demand transfer ahead of the tail in the device queue.  Pagers
   with no submit path still prefetch, just synchronously. *)
let pagein_async (sys : Vm_sys.t) obj ~offset ~n =
  let ps = sys.Vm_sys.page_size in
  let stats = sys.Vm_sys.stats in
  match single sys obj ~offset with
  | (`Absent | `Error) as r -> r
  | `Data (demand, _) ->
    commit_single obj ~offset ~ps;
    let tail_off = offset + ps in
    let tail_len = (n - 1) * ps in
    let finish ~got ~issued =
      if got > 0 then begin
        obj.obj_ra_next <- tail_off + (got * ps);
        obj.obj_ra_window <- n;
        stats.Vm_sys.pager_reads <- stats.Vm_sys.pager_reads + 1
      end;
      note_prefetch sys obj ~offset ~issued;
      `Data (demand, ps + (got * ps))
    in
    (match Pager_guard.submit_range sys obj ~offset:tail_off
             ~length:tail_len with
     | Some (data, completion, service) when Bytes.length data >= ps ->
       let got = min (n - 1) (Bytes.length data / ps) in
       let inflight =
         Some { if_completion = completion; if_service = service;
                if_waited = false }
       in
       let issued = install_tail sys obj ~tail_off ~got ~data ~inflight in
       finish ~got ~issued
     | Some _ -> `Data (demand, ps)
     | None ->
       (* No async path (or async submit declined): synchronous tail. *)
       (match Pager_guard.request_range sys obj ~offset:tail_off
                ~length:tail_len with
        | `Data data when Bytes.length data >= ps ->
          let got = min (n - 1) (Bytes.length data / ps) in
          let issued =
            install_tail sys obj ~tail_off ~got ~data ~inflight:None
          in
          finish ~got ~issued
        | `Data _ | `Error | `Absent -> `Data (demand, ps)))

let pagein (sys : Vm_sys.t) obj ~offset ~limit =
  let ps = sys.Vm_sys.page_size in
  if sys.Vm_sys.cluster_max <= 1 then single sys obj ~offset
  else begin
    let n = plan sys obj ~offset ~limit in
    if n = 1 then begin
      match single sys obj ~offset with
      | `Data _ as r ->
        commit_single obj ~offset ~ps;
        r
      | r -> r
    end
    else if Mach_hw.Machine.disk_async sys.Vm_sys.machine then
      pagein_async sys obj ~offset ~n
    else pagein_sync sys obj ~offset ~n
  end

(* A resident-page hit on a prefetched page: the guess paid off.  Count
   it and promote the page from the inactive to the active queue.  If
   the page is still riding an async transfer, first wait out the
   residue — this is where a fault that outran the disk pays the
   remaining device time. *)
let note_hit (sys : Vm_sys.t) p =
  if p.pg_inflight <> None then Pager_guard.await_page sys p;
  if p.pg_prefetched then begin
    p.pg_prefetched <- false;
    sys.Vm_sys.stats.Vm_sys.prefetch_hits <-
      sys.Vm_sys.stats.Vm_sys.prefetch_hits + 1;
    if p.pg_wire_count = 0 && p.pg_queue = Q_inactive then
      Resident.enqueue sys.Vm_sys.resident p Q_active
  end
