(** Deterministic, seeded fault injection for the paging hierarchy.

    The kernel's design bet (Section 1) is that all authoritative VM
    state is machine independent and everything below it — pmap, pagers,
    disks, network links — is reconstructible.  This module supplies the
    adversary that bet is made against: a pure decision engine that
    components ([Simdisk], [Netlink], the pager stack) consult at named
    {e sites} before performing an operation.  The engine owns no
    component state and performs no I/O; it only answers "what should go
    wrong this time?", so the same seed always replays the identical
    failure sequence.

    Each site has its own splitmix64 stream (derived from the master
    seed and the site name) and its own operation counter, so adding a
    new site, or reordering operations at one site, never perturbs the
    decisions taken at another. *)

type decision =
  | Pass               (** no injection; perform the operation normally *)
  | Fail               (** the operation fails with an error *)
  | Drop               (** no reply at all: the caller times out *)
  | Delay of int       (** latency spike: charge this many extra cycles,
                           then succeed *)
  | Short of int       (** serve only the first [n] bytes of the data *)
  | Garbage            (** serve deterministically corrupted data *)

type rule =
  | Always of decision
  | With_probability of float * decision
      (** trigger with the given probability, from the site's stream *)
  | Fail_n_then_recover of int * decision
      (** trigger on the first [n] operations at the site, then never *)
  | After of int * rule
      (** apply [rule] only from the [n]-th operation (0-based) onward *)
  | Between of int * int * rule
      (** apply [rule] only on operations [first..last] inclusive —
          e.g. a transient network partition *)

type plan = rule list
(** First rule that triggers wins; an empty plan always passes. *)

type event = { ev_site : string; ev_op : int; ev_decision : decision }
(** One non-[Pass] decision, in the order taken. *)

type t

val create : seed:int -> t
(** [create ~seed] is an injector whose every decision is a pure
    function of [seed], the site names, and the per-site operation
    order. *)

val seed : t -> int

val attach : t -> site:string -> plan -> unit
(** [attach t ~site plan] arms [site].  Re-attaching replaces the plan
    but keeps the site's stream and counter, so a plan swap mid-run is
    itself deterministic.  Sites never attached always decide [Pass]. *)

val decide : t -> site:string -> decision
(** [decide t ~site] takes (and records) the next decision at [site],
    advancing its operation counter. *)

val ops : t -> site:string -> int
(** Operations decided at [site] so far. *)

val injections : t -> int
(** Total non-[Pass] decisions taken across all sites. *)

val trace : t -> event list
(** Every non-[Pass] decision, in chronological order. *)

val decision_name : decision -> string

val fingerprint : t -> string
(** A short stable digest of {!trace} — two runs with the same seed and
    workload must produce the same fingerprint.  [machsim --chaos]
    prints it so replay identity can be checked with [diff]. *)

val scramble : Bytes.t -> Bytes.t
(** Deterministic corruption for [Garbage]: a fresh buffer with every
    byte xor'ed with [0xA5] (never the identity, never random). *)

(** {1 Canned profiles}

    Named (site, plan) sets for [machsim --chaos SEED[:PROFILE]] and the
    chaos bench/smoke.  Site names are the conventional ones the
    components use: ["disk.read"], ["disk.write"], ["net.rpc"],
    ["pager.request"], ["pager.write"]. *)

val profile : string -> (string * plan) list option
(** [profile name] is the plan set for a profile name, or [None].
    Known profiles: ["flaky"] (low-probability transient disk/pager/net
    errors and latency spikes), ["disk"] (disk errors + latency only),
    ["net"] (drops and a transient partition), ["pagerdeath"] (pager
    writes fail permanently after a warm-up, reads follow — drives the
    death/rescue path), ["lowmem"] (pageout writes fail or crawl and
    pageins stall — pairs with a small [--mem]/[--swap] configuration to
    drive backpressure, requeue escalation and the OOM policy). *)

val profile_names : string list

val parse_spec : string -> (int * string, string) result
(** [parse_spec "SEED[:PROFILE]"] parses the [--chaos] argument; the
    profile defaults to ["flaky"].  Errors mention the valid names. *)
