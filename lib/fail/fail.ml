(* Deterministic fault injection: a pure decision engine consulted by
   Simdisk / Netlink / the pager stack at named sites.  See fail.mli. *)

open Mach_util

type decision =
  | Pass
  | Fail
  | Drop
  | Delay of int
  | Short of int
  | Garbage

type rule =
  | Always of decision
  | With_probability of float * decision
  | Fail_n_then_recover of int * decision
  | After of int * rule
  | Between of int * int * rule

type plan = rule list

type event = { ev_site : string; ev_op : int; ev_decision : decision }

type site = {
  s_rng : Det_rng.t;
  mutable s_plan : plan;
  mutable s_ops : int;
}

type t = {
  seed : int;
  sites : (string, site) Hashtbl.t;
  mutable events : event list;  (* reverse chronological *)
  mutable injections : int;
}

(* FNV-1a so the per-site stream depends only on the seed and the site
   name, not on Hashtbl.hash internals. *)
let hash_name name =
  let h = ref 0x3bf29ce484222325 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x100000001b3)
    name;
  !h

let create ~seed = { seed; sites = Hashtbl.create 8; events = []; injections = 0 }

let seed t = t.seed

let site t name =
  match Hashtbl.find_opt t.sites name with
  | Some s -> s
  | None ->
    let s =
      { s_rng = Det_rng.create ~seed:(t.seed lxor hash_name name);
        s_plan = []; s_ops = 0 }
    in
    Hashtbl.add t.sites name s;
    s

let attach t ~site:name plan = (site t name).s_plan <- plan

(* Evaluate one rule at operation index [op].  Every
   [With_probability] in scope draws from the stream whether or not its
   window is active, so a rule triggering early never shifts the draws
   of later rules. *)
let rec eval rng ~op ~active = function
  | Always d -> if active then Some d else None
  | With_probability (p, d) ->
    let roll = Det_rng.float rng 1.0 in
    if active && roll < p then Some d else None
  | Fail_n_then_recover (n, d) -> if active && op < n then Some d else None
  | After (n, r) -> eval rng ~op ~active:(active && op >= n) r
  | Between (first, last, r) ->
    eval rng ~op ~active:(active && op >= first && op <= last) r

let decide t ~site:name =
  let s = site t name in
  let op = s.s_ops in
  s.s_ops <- op + 1;
  let taken =
    List.fold_left
      (fun acc rule ->
        (* evaluate every rule (to keep the stream in lockstep), first
           trigger wins *)
        match eval s.s_rng ~op ~active:true rule with
        | Some d when acc = None -> Some d
        | _ -> acc)
      None s.s_plan
  in
  match taken with
  | None | Some Pass -> Pass
  | Some d ->
    t.injections <- t.injections + 1;
    t.events <- { ev_site = name; ev_op = op; ev_decision = d } :: t.events;
    d

let ops t ~site:name = match Hashtbl.find_opt t.sites name with
  | Some s -> s.s_ops
  | None -> 0

let injections t = t.injections
let trace t = List.rev t.events

let decision_name = function
  | Pass -> "pass"
  | Fail -> "fail"
  | Drop -> "drop"
  | Delay c -> Printf.sprintf "delay(%d)" c
  | Short n -> Printf.sprintf "short(%d)" n
  | Garbage -> "garbage"

let fingerprint t =
  let h = ref 0x3bf29ce484222325 in
  let mix s =
    String.iter
      (fun c ->
        h := !h lxor Char.code c;
        h := !h * 0x100000001b3)
      s
  in
  List.iter
    (fun ev ->
      mix ev.ev_site;
      mix (string_of_int ev.ev_op);
      mix (decision_name ev.ev_decision))
    (trace t);
  Printf.sprintf "%d:%016x" t.injections (!h land max_int)

let scramble data =
  Bytes.map (fun c -> Char.chr (Char.code c lxor 0xA5)) data

(* Canned profiles ------------------------------------------------- *)

let profiles =
  [ ("flaky",
     [ ("disk.read", [ With_probability (0.03, Fail); With_probability (0.02, Delay 400) ]);
       ("disk.write", [ With_probability (0.03, Fail) ]);
       ("net.rpc", [ With_probability (0.04, Drop); With_probability (0.03, Delay 800) ]);
       ("pager.request",
        [ With_probability (0.04, Fail); With_probability (0.02, Drop);
          With_probability (0.01, Short 16) ]);
       ("pager.write", [ With_probability (0.04, Fail) ]) ]);
    ("disk",
     [ ("disk.read", [ With_probability (0.05, Fail); With_probability (0.05, Delay 600) ]);
       ("disk.write", [ With_probability (0.05, Fail) ]) ]);
    ("net",
     [ ("net.rpc",
        [ Between (40, 60, Always Drop);  (* transient partition *)
          With_probability (0.05, Drop);
          With_probability (0.05, Delay 1200) ]) ]);
    ("pagerdeath",
     [ ("pager.write", [ After (4, Always Fail) ]);
       ("pager.request", [ After (32, Always Fail) ]) ]);
    (* Memory-pressure companion: runs alongside a small --mem/--swap
       configuration and leans on the paths pressure exercises hardest —
       pageout writes fail or crawl (dirty pages bounce back to the
       active queue, driving the requeue-limit escalation), and pageins
       are occasionally slow, stretching the time allocations spend
       waiting on the daemon. *)
    ("lowmem",
     [ ("pager.write",
        [ With_probability (0.10, Fail); With_probability (0.05, Delay 900) ]);
       ("disk.write", [ With_probability (0.05, Delay 700) ]);
       ("disk.read", [ With_probability (0.03, Delay 500) ]);
       ("pager.request", [ With_probability (0.02, Fail) ]) ]) ]

let profile name = List.assoc_opt name profiles
let profile_names = List.map fst profiles

let parse_spec spec =
  let seed_str, prof =
    match String.index_opt spec ':' with
    | None -> (spec, "flaky")
    | Some i ->
      (String.sub spec 0 i, String.sub spec (i + 1) (String.length spec - i - 1))
  in
  match int_of_string_opt seed_str with
  | None -> Error (Printf.sprintf "invalid chaos seed %S (want SEED[:PROFILE])" seed_str)
  | Some seed ->
    if List.mem_assoc prof profiles then Ok (seed, prof)
    else
      Error
        (Printf.sprintf "unknown chaos profile %S (known: %s)" prof
           (String.concat ", " profile_names))
