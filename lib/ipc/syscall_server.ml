open Mach_hw
open Mach_core

(* ---- wire encodings ---------------------------------------------------- *)

let prot_bits p =
  (if Prot.allows p ~write:false then 1 else 0)
  lor (if Prot.allows p ~write:true then 2 else 0)
  lor (if p.Prot.execute then 4 else 0)

let prot_of_bits b =
  Prot.make ~read:(b land 1 <> 0) ~write:(b land 2 <> 0)
    ~execute:(b land 4 <> 0)

let inherit_code = function
  | Inheritance.Shared -> 0
  | Inheritance.Copy -> 1
  | Inheritance.None_ -> 2

let inherit_of_code = function
  | 0 -> Inheritance.Shared
  | 1 -> Inheritance.Copy
  | _ -> Inheritance.None_

let kr_code = function
  | Ok () -> 0
  | Error Kr.Invalid_address -> 1
  | Error Kr.No_space -> 2
  | Error Kr.Protection_failure -> 3
  | Error Kr.Invalid_argument -> 4
  | Error Kr.Resource_shortage -> 5
  | Error Kr.Memory_error -> 6

let kr_of_code = function
  | 0 -> Ok ()
  | 1 -> Error Kr.Invalid_address
  | 2 -> Error Kr.No_space
  | 3 -> Error Kr.Protection_failure
  | 4 -> Error Kr.Invalid_argument
  | 5 -> Error Kr.Resource_shortage
  | 6 -> Error Kr.Memory_error
  | code ->
    (* A code this decoder does not know is a protocol skew, not a value
       a correct peer can send; flag it rather than silently folding it
       into a known error. *)
    Logs.warn (fun m ->
        m "syscall_server: unknown kern_return code %d in reply" code);
    Error Kr.Invalid_argument

let kr_of_reply (m : Ipc.message) =
  match m.Ipc.msg_ints with
  | code :: _ -> kr_of_code code
  | [] -> Error Kr.Invalid_argument

(* ---- task ports --------------------------------------------------------- *)

(* Port for each task, and the task for each port id. *)
let ports : (int, Ipc.port) Hashtbl.t = Hashtbl.create 32
let owners : (string, Task.t) Hashtbl.t = Hashtbl.create 32

let task_port (_sys : Vm_sys.t) task =
  match Hashtbl.find_opt ports task.Task.task_id with
  | Some p -> p
  | None ->
    let name = Printf.sprintf "task-%d" task.Task.task_id in
    let p = Ipc.create_port ~name () in
    Hashtbl.add ports task.Task.task_id p;
    Hashtbl.add owners name task;
    p

(* Kernel handles are needed for fork/terminate arriving as messages;
   remember which kernel owns each task. *)
let kernels : (int, Kernel.t) Hashtbl.t = Hashtbl.create 16

let task_create kernel ?name () =
  let task = Kernel.create_task kernel ?name () in
  Hashtbl.replace kernels task.Task.task_id kernel;
  task_port (Kernel.sys kernel) task

let task_of_port p =
  match Hashtbl.find_opt owners (Ipc.port_name p) with
  | Some t -> t
  | None -> invalid_arg "Syscall_server: not a task port"

(* ---- thread ports --------------------------------------------------------- *)

let thread_ports : (int, Ipc.port) Hashtbl.t = Hashtbl.create 16
let thread_owners : (string, Kthread.t) Hashtbl.t = Hashtbl.create 16

let thread_port th =
  match Hashtbl.find_opt thread_ports (Kthread.id th) with
  | Some p -> p
  | None ->
    let name = Printf.sprintf "thread-%d" (Kthread.id th) in
    let p = Ipc.create_port ~name () in
    Hashtbl.add thread_ports (Kthread.id th) p;
    Hashtbl.add thread_owners name th;
    p

let serve_thread th (m : Ipc.message) =
  match m.Ipc.msg_tag with
  | "thread_suspend" ->
    Kthread.suspend th;
    Ipc.message "thread_suspend_reply" ~ints:[ 0 ]
  | "thread_resume" ->
    Kthread.resume th;
    Ipc.message "thread_resume_reply" ~ints:[ 0 ]
  | tag ->
    Ipc.message (tag ^ "_reply") ~ints:[ kr_code (Error Kr.Invalid_argument) ]

(* ---- the server --------------------------------------------------------- *)

let reply_simple tag r = Ipc.message (tag ^ "_reply") ~ints:[ kr_code r ]

let serve sys task (m : Ipc.message) =
  match m.Ipc.msg_tag, m.Ipc.msg_ints with
  | "vm_allocate", [ size; anywhere; hint ] ->
    (match
       Vm_user.allocate sys task
         ?at:(if hint = 0 then None else Some hint)
         ~size ~anywhere:(anywhere <> 0) ()
     with
     | Ok addr -> Ipc.message "vm_allocate_reply" ~ints:[ 0; addr ]
     | Error e ->
       Ipc.message "vm_allocate_reply" ~ints:[ kr_code (Error e); 0 ])
  | "vm_deallocate", [ addr; size ] ->
    reply_simple "vm_deallocate" (Vm_user.deallocate sys task ~addr ~size)
  | "vm_protect", [ addr; size; set_max; bits ] ->
    reply_simple "vm_protect"
      (Vm_user.protect sys task ~addr ~size ~set_max:(set_max <> 0)
         ~prot:(prot_of_bits bits))
  | "vm_inherit", [ addr; size; code ] ->
    reply_simple "vm_inherit"
      (Vm_user.inherit_ sys task ~addr ~size (inherit_of_code code))
  | "vm_copy", [ src; dst; size ] ->
    reply_simple "vm_copy" (Vm_user.copy sys task ~src ~dst ~size)
  | "vm_read", [ addr; size ] ->
    (match Vm_user.read sys task ~addr ~size with
     | Ok data ->
       Ipc.message "vm_read_reply" ~ints:[ 0 ] ~items:[ Ipc.Inline data ]
     | Error e -> Ipc.message "vm_read_reply" ~ints:[ kr_code (Error e) ])
  | "vm_write", [ addr ] ->
    (match m.Ipc.msg_items with
     | [ Ipc.Inline data ] ->
       reply_simple "vm_write" (Vm_user.write sys task ~addr ~data)
     | _ -> Ipc.message "vm_write_reply" ~ints:[ kr_code (Error Kr.Invalid_argument) ])
  | "vm_regions", [] ->
    let rows =
      List.concat_map
        (fun r ->
           [ r.Vm_map.ri_start; r.Vm_map.ri_end;
             prot_bits r.Vm_map.ri_prot; prot_bits r.Vm_map.ri_max_prot;
             inherit_code r.Vm_map.ri_inherit;
             (if r.Vm_map.ri_shared then 1 else 0);
             (if r.Vm_map.ri_needs_copy then 1 else 0) ])
        (Vm_user.regions sys task)
    in
    Ipc.message "vm_regions_reply"
      ~ints:(0 :: (List.length rows / 7) :: rows)
  | "vm_statistics", [] ->
    let s = Vm_user.statistics sys in
    Ipc.message "vm_statistics_reply"
      ~ints:
        [ 0; s.Vm_user.vs_page_size; s.Vm_user.vs_pages_total;
          s.Vm_user.vs_pages_free; s.Vm_user.vs_pages_active;
          s.Vm_user.vs_pages_inactive; s.Vm_user.vs_faults;
          s.Vm_user.vs_zero_fills; s.Vm_user.vs_cow_copies;
          s.Vm_user.vs_pager_reads; s.Vm_user.vs_pageouts;
          s.Vm_user.vs_pager_retries; s.Vm_user.vs_pager_deaths;
          s.Vm_user.vs_rescued_pages; s.Vm_user.vs_pageout_failures;
          s.Vm_user.vs_memory_errors ]
  | "task_fork", [] ->
    (match Hashtbl.find_opt kernels task.Task.task_id with
     | Some kernel ->
       let cpu = Mach_pmap.Pmap_domain.current_cpu kernel.Kernel.domain in
       let child = Kernel.fork_task kernel ~cpu task in
       Hashtbl.replace kernels child.Task.task_id kernel;
       Ipc.message "task_fork_reply" ~ints:[ 0 ]
         ~items:[ Ipc.Port_right (task_port sys child) ]
     | None ->
       Ipc.message "task_fork_reply"
         ~ints:[ kr_code (Error Kr.Invalid_argument) ])
  | "task_terminate", [] ->
    (match Hashtbl.find_opt kernels task.Task.task_id with
     | Some kernel ->
       let cpu = Mach_pmap.Pmap_domain.current_cpu kernel.Kernel.domain in
       Kernel.terminate_task kernel ~cpu task;
       Ipc.message "task_terminate_reply" ~ints:[ 0 ]
     | None ->
       Ipc.message "task_terminate_reply"
         ~ints:[ kr_code (Error Kr.Invalid_argument) ])
  | tag, _ ->
    Ipc.message (tag ^ "_reply")
      ~ints:[ kr_code (Error Kr.Invalid_argument) ]

let call sys port request =
  let reply_port = Ipc.create_port ~name:"reply" () in
  Ipc.send sys port { request with Ipc.msg_reply_to = Some reply_port };
  (* The kernel task services the queue, dispatching on what kind of
     object the port represents. *)
  (match Ipc.receive sys port with
   | Some m ->
     let reply =
       match Hashtbl.find_opt thread_owners (Ipc.port_name port) with
       | Some th -> serve_thread th m
       | None -> serve sys (task_of_port port) m
     in
     (match m.Ipc.msg_reply_to with
      | Some rp -> Ipc.send sys rp reply
      | None -> ())
   | None -> assert false);
  match Ipc.receive sys reply_port with
  | Some reply -> reply
  | None -> failwith "Syscall_server.call: no reply"
