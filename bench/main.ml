(* Benchmark harness: regenerates every table of the paper's evaluation
   (Tables 7-1 and 7-2) plus ablation benches for the qualitative claims
   of Sections 2, 3.3, 3.5, 5.1 and 5.2.  See DESIGN.md for the
   experiment index and EXPERIMENTS.md for paper-vs-measured records.

   Absolute milliseconds depend on the calibrated cost tables in
   Mach_hw.Arch; what must hold is the *shape*: who wins, by what rough
   factor, and where crossovers fall. *)

open Mach_hw
open Mach_core
open Mach_util
open Mach_workload

let kb = 1024
let mb = 1024 * 1024

let fmt_ms v =
  if v >= 10_000.0 then Printf.sprintf "%.1f s" (v /. 1000.0)
  else if v >= 10.0 then Printf.sprintf "%.0f ms" v
  else Printf.sprintf "%.2f ms" v

(* ------------------------------------------------------------------ *)
(* Measured-cell collector: every number printed in a paper table is    *)
(* also recorded here and written out as machine-readable JSON          *)
(* (BENCH_vm.json by default, or `-json PATH`).                         *)
(* ------------------------------------------------------------------ *)

module Jout = Mach_obs.Jout

let cells : Jout.t list ref = ref []

let record_cell ~name ~measured_ms ~paper_mach_ms ~paper_unix_ms =
  let num = function None -> Jout.Null | Some v -> Jout.Float v in
  cells :=
    Jout.Obj
      [ ("name", Jout.Str name);
        ("measured_ms", Jout.Float measured_ms);
        ("paper_mach_ms", num paper_mach_ms);
        ("paper_unix_ms", num paper_unix_ms) ]
    :: !cells

let write_cells path =
  Jout.write_file path (Jout.Obj [ ("cells", Jout.Arr (List.rev !cells)) ]);
  Printf.printf "wrote %d measured cells -> %s\n" (List.length !cells) path

(* ------------------------------------------------------------------ *)
(* Machine/OS construction helpers                                     *)
(* ------------------------------------------------------------------ *)

let frames_for arch ~mem_bytes = mem_bytes / arch.Arch.hw_page_size

let boot_mach ?(mem = 16 * mb) ?(cpus = 1) ?page_multiple arch =
  let machine =
    Machine.create ~arch ~memory_frames:(frames_for arch ~mem_bytes:mem)
      ~cpus ()
  in
  (* As on real Mach, the boot-time page size is at least 4 KB. *)
  let page_multiple =
    match page_multiple with
    | Some m -> m
    | None -> max 1 (4096 / arch.Arch.hw_page_size)
  in
  let kernel = Kernel.create ~page_multiple machine in
  let fs = Mach_pagers.Simfs.create machine () in
  let os = Mach_os.make kernel ~fs in
  (machine, kernel, fs, os)

let boot_bsd ?(mem = 16 * mb) ?(cpus = 1) ?(buffers = 400) arch =
  let machine =
    Machine.create ~arch ~memory_frames:(frames_for arch ~mem_bytes:mem)
      ~cpus ()
  in
  let fs = Mach_pagers.Simfs.create machine () in
  let bsd = Mach_bsd.Bsd_vm.create machine ~fs ~buffers () in
  let os = Bsd_os.make bsd ~fs in
  (machine, bsd, fs, os)

(* ------------------------------------------------------------------ *)
(* Table 7-1: zero fill and fork                                       *)
(* ------------------------------------------------------------------ *)

(* Zero-fill: allocate 64 KB, dirty every page, report ms per 1 KB. *)
let zero_fill_ms (os : Os_iface.t) =
  let cpu = 0 in
  let p = os.Os_iface.proc_create ~name:"zf" in
  os.Os_iface.proc_run ~cpu p;
  let size = 64 * kb in
  let addr = os.Os_iface.alloc ~cpu p ~size in
  os.Os_iface.reset ();
  os.Os_iface.touch ~cpu p ~addr ~size ~write:true;
  let ms = os.Os_iface.elapsed_ms () in
  os.Os_iface.proc_exit ~cpu p;
  ms /. 64.0

(* Fork with 256 KB dirty: fork and the child exits, as in the classic
   fork benchmark; Mach pays copy-on-write marking, traditional UNIX pays
   the full copy. *)
let fork_ms (os : Os_iface.t) =
  let cpu = 0 in
  let p = os.Os_iface.proc_create ~name:"fk" in
  os.Os_iface.proc_run ~cpu p;
  let size = 256 * kb in
  let addr = os.Os_iface.alloc ~cpu p ~size in
  os.Os_iface.touch ~cpu p ~addr ~size ~write:true;
  os.Os_iface.reset ();
  let child = os.Os_iface.proc_fork ~cpu p in
  os.Os_iface.proc_exit ~cpu child;
  let ms = os.Os_iface.elapsed_ms () in
  os.Os_iface.proc_exit ~cpu p;
  ms

let table7_1 () =
  let t =
    Tablefmt.create
      ~title:
        "Table 7-1 (VM operations): measured here vs paper (Mach / UNIX)"
      ~columns:[ "Operation"; "Mach"; "UNIX"; "paper Mach"; "paper UNIX" ]
  in
  let rows =
    [ (Arch.rt_pc, "RT PC", (".45ms", 0.45), (".58ms", 0.58), ("41ms", 41.),
       ("145ms", 145.));
      (Arch.uvax2, "uVAX II", (".58ms", 0.58), ("1.2ms", 1.2), ("59ms", 59.),
       ("220ms", 220.));
      (Arch.sun3_160, "SUN 3/160", (".23ms", 0.23), (".27ms", 0.27),
       ("68ms", 68.), ("89ms", 89.)) ]
  in
  List.iter
    (fun (arch, name, (pzf_ms, pzf_m), (pzf_us, pzf_u), (pfk_ms, pfk_m),
          (pfk_us, pfk_u)) ->
       let _, _, _, mach_os = boot_mach arch in
       let _, _, _, bsd_os = boot_bsd arch in
       let zf_m = zero_fill_ms mach_os and zf_u = zero_fill_ms bsd_os in
       let fk_m = fork_ms mach_os and fk_u = fork_ms bsd_os in
       let cell op os ~measured ~pm ~pu =
         record_cell
           ~name:(Printf.sprintf "table7_1/%s/%s/%s" op name os)
           ~measured_ms:measured ~paper_mach_ms:(Some pm)
           ~paper_unix_ms:(Some pu)
       in
       cell "zero_fill_1k" "mach" ~measured:zf_m ~pm:pzf_m ~pu:pzf_u;
       cell "zero_fill_1k" "unix" ~measured:zf_u ~pm:pzf_m ~pu:pzf_u;
       cell "fork_256k" "mach" ~measured:fk_m ~pm:pfk_m ~pu:pfk_u;
       cell "fork_256k" "unix" ~measured:fk_u ~pm:pfk_m ~pu:pfk_u;
       Tablefmt.row t
         [ "zero fill 1K (" ^ name ^ ")"; fmt_ms zf_m; fmt_ms zf_u; pzf_ms;
           pzf_us ];
       Tablefmt.row t
         [ "fork 256K (" ^ name ^ ")"; fmt_ms fk_m; fmt_ms fk_u; pfk_ms;
           pfk_us ])
    rows;
  Tablefmt.print t

(* ------------------------------------------------------------------ *)
(* Table 7-1: file reading on a VAX 8200                               *)
(* ------------------------------------------------------------------ *)

let file_read_pair (os : Os_iface.t) ~name ~size =
  let cpu = 0 in
  os.Os_iface.install_file ~name ~data:(Bytes.make size 'F');
  os.Os_iface.reset ();
  ignore (os.Os_iface.read_file ~cpu ~name ~offset:0 ~len:size);
  let first = os.Os_iface.elapsed_ms () in
  os.Os_iface.reset ();
  ignore (os.Os_iface.read_file ~cpu ~name ~offset:0 ~len:size);
  let second = os.Os_iface.elapsed_ms () in
  (first, second)

let table7_1_files () =
  let t =
    Tablefmt.create
      ~title:
        "Table 7-1 (file reading, VAX 8200): elapsed, first then second read"
      ~columns:[ "Operation"; "Mach"; "UNIX"; "paper Mach"; "paper UNIX" ]
  in
  let _, _, _, mach_os = boot_mach ~mem:(16 * mb) Arch.vax8200 in
  let _, _, _, bsd_os = boot_bsd ~mem:(16 * mb) ~buffers:400 Arch.vax8200 in
  let cells op ~m ~u ~pm ~pu =
    record_cell
      ~name:(Printf.sprintf "table7_1_files/%s/mach" op)
      ~measured_ms:m ~paper_mach_ms:(Some pm) ~paper_unix_ms:(Some pu);
    record_cell
      ~name:(Printf.sprintf "table7_1_files/%s/unix" op)
      ~measured_ms:u ~paper_mach_ms:(Some pm) ~paper_unix_ms:(Some pu)
  in
  let m1, m2 = file_read_pair mach_os ~name:"/big" ~size:(5 * mb / 2) in
  let u1, u2 = file_read_pair bsd_os ~name:"/big" ~size:(5 * mb / 2) in
  cells "read_2.5M_1st" ~m:m1 ~u:u1 ~pm:5200. ~pu:5000.;
  cells "read_2.5M_2nd" ~m:m2 ~u:u2 ~pm:1200. ~pu:5000.;
  Tablefmt.row t
    [ "read 2.5M file, 1st"; fmt_ms m1; fmt_ms u1; "5.2s"; "5.0s" ];
  Tablefmt.row t
    [ "read 2.5M file, 2nd"; fmt_ms m2; fmt_ms u2; "1.2s"; "5.0s" ];
  let m1, m2 = file_read_pair mach_os ~name:"/small" ~size:(50 * kb) in
  let u1, u2 = file_read_pair bsd_os ~name:"/small" ~size:(50 * kb) in
  cells "read_50K_1st" ~m:m1 ~u:u1 ~pm:200. ~pu:500.;
  cells "read_50K_2nd" ~m:m2 ~u:u2 ~pm:100. ~pu:200.;
  Tablefmt.row t
    [ "read 50K file, 1st"; fmt_ms m1; fmt_ms u1; "0.2s"; "0.5s" ];
  Tablefmt.row t
    [ "read 50K file, 2nd"; fmt_ms m2; fmt_ms u2; "0.1s"; "0.2s" ];
  Tablefmt.print t

(* ------------------------------------------------------------------ *)
(* Table 7-2: compilation                                              *)
(* ------------------------------------------------------------------ *)

let compile_run boot_os cfg =
  let os = boot_os () in
  Compile_workload.setup os cfg;
  Compile_workload.run os cfg

let table7_2 () =
  let t =
    Tablefmt.create ~title:"Table 7-2 (compilation): measured vs paper"
      ~columns:[ "Operation"; "Mach"; "UNIX"; "paper Mach"; "paper UNIX" ]
  in
  (* "400 buffers": both systems restricted; modelled as a small buffer
     pool for UNIX and tighter memory for Mach. *)
  let mach_400 () =
    let _, _, _, os = boot_mach ~mem:(2 * mb) Arch.vax8650 in
    os
  and bsd_400 () =
    let _, _, _, os = boot_bsd ~mem:(8 * mb) ~buffers:400 Arch.vax8650 in
    os
  and mach_gen () =
    let _, _, _, os = boot_mach ~mem:(32 * mb) Arch.vax8650 in
    os
  and bsd_gen () =
    let _, _, _, os = boot_bsd ~mem:(32 * mb) ~buffers:900 Arch.vax8650 in
    os
  in
  let cfg13 = Compile_workload.thirteen_programs in
  let cfgk = Compile_workload.kernel_build in
  let mach_sun () =
    let _, _, _, os = boot_mach Arch.sun3_160 in
    os
  and bsd_sun () =
    let _, _, _, os = boot_bsd Arch.sun3_160 in
    os
  in
  List.iter
    (fun (label, key, boot_m, boot_u, cfg, pm, pu, pms, pus) ->
       let m = compile_run boot_m cfg and u = compile_run boot_u cfg in
       record_cell
         ~name:(Printf.sprintf "table7_2/%s/mach" key)
         ~measured_ms:m ~paper_mach_ms:(Some pm) ~paper_unix_ms:(Some pu);
       record_cell
         ~name:(Printf.sprintf "table7_2/%s/unix" key)
         ~measured_ms:u ~paper_mach_ms:(Some pm) ~paper_unix_ms:(Some pu);
       Tablefmt.row t [ label; fmt_ms m; fmt_ms u; pms; pus ])
    [ ("13 programs (8650, 400 buffers)", "13_programs_400buf", mach_400,
       bsd_400, cfg13, 23_000., 28_000., "23s", "28s");
      ("kernel build (8650, 400 buffers)", "kernel_build_400buf", mach_400,
       bsd_400, cfgk, 1_198_000., 1_418_000., "19:58min", "23:38min");
      ("13 programs (8650, generic)", "13_programs_generic", mach_gen,
       bsd_gen, cfg13, 19_000., 76_000., "19s", "1:16min");
      ("kernel build (8650, generic)", "kernel_build_generic", mach_gen,
       bsd_gen, cfgk, 950_000., 2_050_000., "15:50min", "34:10min");
      ("compile fork test (SUN 3/160)", "fork_test_sun3", mach_sun, bsd_sun,
       Compile_workload.fork_test, 3_000., 6_000., "3s", "6s") ];
  Tablefmt.print t

(* ------------------------------------------------------------------ *)
(* Section 5.1: pmap architecture comparison                            *)
(* ------------------------------------------------------------------ *)

(* Fixed workload: 12 tasks, each with 192 KB dirty; one 256 KB file
   mapped into every task and read repeatedly round-robin (sharing =
   alias pressure on the RT PC; 12 > 8 contexts = steals on the SUN 3). *)
let pmap_arch_one arch =
  let mem = 12 * mb in
  let machine, kernel, fs, _os = boot_mach ~mem arch in
  let sys = Kernel.sys kernel in
  Mach_pagers.Simfs.install_file fs ~name:"/shared"
    ~data:(Bytes.make (256 * kb) 'S');
  let n_tasks = 12 in
  let tasks =
    List.init n_tasks (fun i ->
        Kernel.create_task kernel ~name:(Printf.sprintf "t%d" i) ())
  in
  let ps = Kernel.page_size kernel in
  let sweep task a limit write =
    Kernel.run_task kernel ~cpu:0 task;
    let rec loop va =
      if va < limit then begin
        Machine.touch machine ~cpu:0 ~va ~write;
        loop (va + ps)
      end
    in
    loop a
  in
  let privates =
    List.map
      (fun task ->
         Kernel.run_task kernel ~cpu:0 task;
         let addr =
           match
             Vm_user.allocate sys task ~size:(192 * kb) ~anywhere:true ()
           with
           | Ok a -> a
           | Error e -> failwith (Kr.to_string e)
         in
         sweep task addr (addr + (192 * kb)) true;
         (task, addr))
      tasks
  in
  let shareds =
    List.map
      (fun task ->
         Kernel.run_task kernel ~cpu:0 task;
         match
           Mach_pagers.Vnode_pager.map_file sys fs task ~name:"/shared" ()
         with
         | Ok (a, s) -> (task, a, s)
         | Error e -> failwith (Kr.to_string e))
      tasks
  in
  Machine.reset_clocks machine;
  (* Three round-robin sweeps over shared and private memory. *)
  for _round = 1 to 3 do
    List.iter (fun (task, a, s) -> sweep task a (a + s) false) shareds;
    List.iter
      (fun (task, addr) -> sweep task addr (addr + (192 * kb)) false)
      privates
  done;
  let pstats = Mach_pmap.Pmap_domain.total_stats kernel.Kernel.domain in
  let mstats = Machine.stats machine in
  (* The NS32082 cannot allocate beyond 16 MB of VA. *)
  let va_limit_hit =
    match
      Vm_user.allocate sys (List.hd tasks) ~at:(20 * mb) ~size:(64 * kb)
        ~anywhere:false ()
    with
    | Ok _ -> false
    | Error _ -> true
  in
  let usable_mem =
    Resident.total_pages sys.Vm_sys.resident * Kernel.page_size kernel
  in
  ( arch.Arch.name,
    mstats.Machine.faults,
    sys.Vm_sys.stats.Vm_sys.fast_reloads,
    pstats.Mach_pmap.Pmap.alias_evictions,
    pstats.Mach_pmap.Pmap.context_steals,
    Mach_pmap.Pmap_domain.total_map_bytes kernel.Kernel.domain,
    usable_mem,
    va_limit_hit,
    Machine.elapsed_ms machine )

let pmap_arch () =
  let t =
    Tablefmt.create
      ~title:
        "Section 5.1: the same VM workload over five memory architectures\n\
         (12 tasks x 192KB private + one 256KB file shared by all; 12MB \
         machine)"
      ~columns:
        [ "pmap"; "faults"; "reloads"; "alias evict"; "ctx steals";
          "map bytes"; "usable mem"; "VA>16M?"; "elapsed" ]
  in
  List.iter
    (fun arch ->
       let name, faults, reloads, aliases, steals, mapb, usable, vahit, ms
         =
         pmap_arch_one arch
       in
       Tablefmt.row t
         [ name; string_of_int faults; string_of_int reloads;
           string_of_int aliases; string_of_int steals;
           Printf.sprintf "%dK" (mapb / 1024);
           Printf.sprintf "%dM" (usable / mb);
           (if vahit then "blocked" else "ok"); fmt_ms ms ])
    [ Arch.uvax2; Arch.rt_pc; Arch.sun3_160; Arch.ns32082; Arch.rp3_tlb ];
  Tablefmt.print t

(* ------------------------------------------------------------------ *)
(* Section 5.2: TLB shootdown strategies                                *)
(* ------------------------------------------------------------------ *)

let shootdown_one ?(batched = true) strategy =
  let arch = Arch.ns32082 in
  let machine =
    Machine.create ~arch
      ~memory_frames:(frames_for arch ~mem_bytes:(8 * mb)) ~cpus:4
      ~shootdown:strategy ()
  in
  let kernel = Kernel.create machine in
  (* [batched:false] measures the pre-batching baseline: every page of a
     range operation goes out as its own consistency exchange. *)
  Mach_pmap.Pmap_domain.set_batching kernel.Kernel.domain batched;
  let sys = Kernel.sys kernel in
  let task = Kernel.create_task kernel ~name:"shared" () in
  let size = 128 * kb in
  for cpu = 0 to 3 do
    Kernel.run_task kernel ~cpu task
  done;
  let addr =
    match Vm_user.allocate sys task ~size ~anywhere:true () with
    | Ok a -> a
    | Error e -> failwith (Kr.to_string e)
  in
  let ps = Kernel.page_size kernel in
  for cpu = 0 to 3 do
    let rec sweep va =
      if va < addr + size then begin
        Machine.touch machine ~cpu ~va ~write:true;
        sweep (va + ps)
      end
    in
    sweep addr
  done;
  Machine.reset_clocks machine;
  for round = 1 to 30 do
    (* Readers warm their TLBs on a page each... *)
    let reader_va cpu =
      addr + ((((round * 7) + cpu) mod (size / ps)) * ps)
    in
    for cpu = 1 to 3 do
      Machine.touch machine ~cpu ~va:(reader_va cpu) ~write:false
    done;
    (* ...CPU 0 revokes write access... *)
    Mach_pmap.Pmap_domain.set_current_cpu kernel.Kernel.domain 0;
    (match
       Vm_user.protect sys task ~addr ~size ~set_max:false
         ~prot:Prot.read_only
     with
     | Ok () -> ()
     | Error e -> failwith (Kr.to_string e));
    (* ...and the readers touch the same pages again: under the lazy
       strategy these are served by stale TLB entries. *)
    for cpu = 1 to 3 do
      Machine.touch machine ~cpu ~va:(reader_va cpu) ~write:false
    done;
    (match
       Vm_user.protect sys task ~addr ~size ~set_max:false
         ~prot:Prot.read_write
     with
     | Ok () -> ()
     | Error e -> failwith (Kr.to_string e));
    if round mod 10 = 0 then Machine.tick machine
  done;
  let s = Machine.stats machine in
  ( s.Machine.ipis, s.Machine.deferred_flushes, s.Machine.stale_tlb_uses,
    Machine.elapsed_ms machine )

let shootdown () =
  let t =
    Tablefmt.create
      ~title:
        "Section 5.2: TLB consistency strategies on a 4-CPU NS32082\n\
         (30 rounds of protection change on 128KB shared by 4 CPUs;\n\
         per-page shootdowns vs batched flushes, one IPI round per \
         target)"
      ~columns:
        [ "strategy"; "batching"; "IPIs"; "deferred flushes";
          "stale TLB uses"; "elapsed" ]
  in
  List.iter
    (fun (name, key, strategy) ->
       List.iter
         (fun (mode, batched) ->
            let ipis, deferred, stale, ms =
              shootdown_one ~batched strategy
            in
            let cell metric v =
              record_cell
                ~name:(Printf.sprintf "shootdown/%s/%s/%s" key mode metric)
                ~measured_ms:v ~paper_mach_ms:None ~paper_unix_ms:None
            in
            cell "ipis" (float_of_int ipis);
            cell "deferred_flushes" (float_of_int deferred);
            cell "stale_tlb_uses" (float_of_int stale);
            cell "elapsed_ms" ms;
            Tablefmt.row t
              [ name; mode; string_of_int ipis; string_of_int deferred;
                string_of_int stale; fmt_ms ms ])
         [ ("unbatched", false); ("batched", true) ])
    [ ("interrupt all CPUs (case 1)", "immediate", Machine.Immediate_ipi);
      ("defer to timer interrupt (case 2)", "deferred",
       Machine.Deferred_timer);
      ("allow temporary inconsistency (case 3)", "lazy",
       Machine.Lazy_local) ];
  Tablefmt.print t

(* ------------------------------------------------------------------ *)
(* Section 3.5: shadow-object chains and collapsing                     *)
(* ------------------------------------------------------------------ *)

let shadow_one ~collapse =
  let arch = Arch.vax8200 in
  let machine, kernel, _fs, _os = boot_mach ~mem:(24 * mb) arch in
  let sys = Kernel.sys kernel in
  sys.Vm_sys.collapse_enabled <- collapse;
  let task0 = Kernel.create_task kernel ~name:"gen0" () in
  Kernel.run_task kernel ~cpu:0 task0;
  let size = 64 * kb in
  let addr =
    match Vm_user.allocate sys task0 ~size ~anywhere:true () with
    | Ok a -> a
    | Error e -> failwith (Kr.to_string e)
  in
  let ps = Kernel.page_size kernel in
  let dirty task limit =
    Kernel.run_task kernel ~cpu:0 task;
    let rec loop va =
      if va < limit then begin
        Machine.touch machine ~cpu:0 ~va ~write:true;
        loop (va + ps)
      end
    in
    loop addr
  in
  dirty task0 (addr + size);
  Machine.reset_clocks machine;
  (* Repeatedly fork, dirty half the pages in the child, drop the
     parent: the classic shadow-chain builder. *)
  let generations = 12 in
  let current = ref task0 in
  for _g = 1 to generations do
    let child = Kernel.fork_task kernel ~cpu:0 !current in
    dirty child (addr + (size / 2));
    Kernel.terminate_task kernel ~cpu:0 !current;
    current := child
  done;
  Kernel.run_task kernel ~cpu:0 !current;
  let chain =
    match Vm_map.resolve_object_at sys (Task.map !current) ~va:addr with
    | Some (o, _) -> Vm_object.chain_length o
    | None -> 0
  in
  let ms = Machine.elapsed_ms machine in
  let collapses = sys.Vm_sys.stats.Vm_sys.collapses in
  let resident =
    Resident.active_count sys.Vm_sys.resident
    + Resident.inactive_count sys.Vm_sys.resident
  in
  Kernel.terminate_task kernel ~cpu:0 !current;
  (chain, collapses, resident, ms)

let shadow () =
  let t =
    Tablefmt.create
      ~title:
        "Section 3.5: shadow-chain garbage collection\n\
         (12 generations of fork + dirty half of 64KB, parent dies each \
         time)"
      ~columns:
        [ "collapse"; "final chain"; "collapses"; "resident pages";
          "elapsed" ]
  in
  List.iter
    (fun flag ->
       let chain, collapses, resident, ms = shadow_one ~collapse:flag in
       Tablefmt.row t
         [ (if flag then "enabled" else "disabled (ablation)");
           string_of_int chain; string_of_int collapses;
           string_of_int resident; fmt_ms ms ])
    [ true; false ];
  Tablefmt.print t

(* ------------------------------------------------------------------ *)
(* Section 3.3: the memory-object cache                                 *)
(* ------------------------------------------------------------------ *)

let object_cache_one ~cache =
  let arch = Arch.vax8200 in
  let machine, kernel, fs, _os = boot_mach ~mem:(16 * mb) arch in
  let sys = Kernel.sys kernel in
  sys.Vm_sys.cache_enabled <- cache;
  Mach_pagers.Simfs.install_file fs ~name:"/bin/cc"
    ~data:(Bytes.make (256 * kb) 'T');
  let disk = Mach_pagers.Simfs.disk fs in
  Mach_pagers.Simdisk.reset_counters disk;
  Machine.reset_clocks machine;
  for _i = 1 to 10 do
    let task = Kernel.create_task kernel ~name:"exec" () in
    Kernel.run_task kernel ~cpu:0 task;
    (match
       Mach_pagers.Vnode_pager.map_file sys fs task ~name:"/bin/cc" ()
     with
     | Ok (a, s) ->
       let rec sweepv va =
         if va < a + s then begin
           Machine.touch machine ~cpu:0 ~va ~write:false;
           sweepv (va + Kernel.page_size kernel)
         end
       in
       sweepv a
     | Error e -> failwith (Kr.to_string e));
    Kernel.terminate_task kernel ~cpu:0 task
  done;
  ( Mach_pagers.Simdisk.reads disk,
    sys.Vm_sys.stats.Vm_sys.cache_hits,
    Machine.elapsed_ms machine )

let object_cache () =
  let t =
    Tablefmt.create
      ~title:
        "Section 3.3: object cache over 10 execs of the same 256KB text"
      ~columns:[ "object cache"; "disk reads"; "cache hits"; "elapsed" ]
  in
  List.iter
    (fun flag ->
       let reads, hits, ms = object_cache_one ~cache:flag in
       Tablefmt.row t
         [ (if flag then "enabled" else "disabled (ablation)");
           string_of_int reads; string_of_int hits; fmt_ms ms ])
    [ true; false ];
  Tablefmt.print t

(* ------------------------------------------------------------------ *)
(* Section 2: large messages by copy-on-write remapping                 *)
(* ------------------------------------------------------------------ *)

let ipc_one ~out_of_line ~size =
  let arch = Arch.vax8200 in
  let machine, kernel, _fs, _os = boot_mach ~mem:(24 * mb) arch in
  let sys = Kernel.sys kernel in
  let sender = Kernel.create_task kernel ~name:"sender" () in
  let receiver = Kernel.create_task kernel ~name:"receiver" () in
  Kernel.run_task kernel ~cpu:0 sender;
  let addr =
    match Vm_user.allocate sys sender ~size ~anywhere:true () with
    | Ok a -> a
    | Error e -> failwith (Kr.to_string e)
  in
  let ps = Kernel.page_size kernel in
  let rec dirty va =
    if va < addr + size then begin
      Machine.touch machine ~cpu:0 ~va ~write:true;
      dirty (va + ps)
    end
  in
  dirty addr;
  let port = Mach_ipc.Ipc.create_port ~name:"svc" () in
  Machine.reset_clocks machine;
  if out_of_line then begin
    (match
       Mach_ipc.Ipc.send_region sys sender port ~tag:"bulk" ~addr ~size ()
     with
     | Ok () -> ()
     | Error e -> failwith (Kr.to_string e));
    match Mach_ipc.Ipc.receive_region sys receiver port with
    | Ok (raddr, rsize) ->
      (* The receiver looks at the first byte of each page (faulting the
         COW mappings in lazily). *)
      Kernel.run_task kernel ~cpu:0 receiver;
      let rec peek va =
        if va < raddr + rsize then begin
          Machine.touch machine ~cpu:0 ~va ~write:false;
          peek (va + ps)
        end
      in
      peek raddr
    | Error e -> failwith (Kr.to_string e)
  end
  else begin
    (* Inline: read out of the sender, copy into the message, copy out in
       the receiver. *)
    let data =
      match Vm_user.read sys sender ~addr ~size with
      | Ok b -> b
      | Error e -> failwith (Kr.to_string e)
    in
    Mach_ipc.Ipc.send sys port
      (Mach_ipc.Ipc.message "bulk" ~items:[ Mach_ipc.Ipc.Inline data ]);
    match Mach_ipc.Ipc.receive sys port with
    | Some m ->
      Kernel.run_task kernel ~cpu:0 receiver;
      let raddr =
        match Vm_user.allocate sys receiver ~size ~anywhere:true () with
        | Ok a -> a
        | Error e -> failwith (Kr.to_string e)
      in
      (match m.Mach_ipc.Ipc.msg_items with
       | [ Mach_ipc.Ipc.Inline b ] ->
         (match Vm_user.write sys receiver ~addr:raddr ~data:b with
          | Ok () -> ()
          | Error e -> failwith (Kr.to_string e))
       | _ -> assert false)
    | None -> assert false
  end;
  Machine.elapsed_ms machine

let ipc () =
  let t =
    Tablefmt.create
      ~title:
        "Section 2: transferring memory in a message — inline copy vs\n\
         out-of-line copy-on-write remapping (receiver touches every page)"
      ~columns:[ "size"; "inline copy"; "out-of-line (COW)" ]
  in
  List.iter
    (fun size ->
       let inline_ms = ipc_one ~out_of_line:false ~size in
       let ool_ms = ipc_one ~out_of_line:true ~size in
       Tablefmt.row t
         [ Printf.sprintf "%dK" (size / kb); fmt_ms inline_ms;
           fmt_ms ool_ms ])
    [ 64 * kb; 256 * kb; 1 * mb; 4 * mb ];
  Tablefmt.print t

(* ------------------------------------------------------------------ *)
(* Mixed trace workload: Mach vs UNIX beyond the paper's fixed benches  *)
(* ------------------------------------------------------------------ *)

let mixed () =
  let t =
    Tablefmt.create
      ~title:
        "Mixed trace workload (reproducible random op mix; uVAX II, 8MB)"
      ~columns:[ "trace"; "ops"; "Mach"; "UNIX"; "ratio" ]
  in
  List.iter
    (fun seed ->
       let trace = Workload.generate ~seed ~ops:300 in
       let run_on os =
         Workload.setup os trace;
         Workload.run os trace
       in
       let _, _, _, mach_os = boot_mach ~mem:(8 * mb) Arch.uvax2 in
       let _, _, _, bsd_os = boot_bsd ~mem:(8 * mb) Arch.uvax2 in
       let m = run_on mach_os and u = run_on bsd_os in
       record_cell
         ~name:(Printf.sprintf "mixed/seed%d/mach" seed)
         ~measured_ms:m ~paper_mach_ms:None ~paper_unix_ms:None;
       record_cell
         ~name:(Printf.sprintf "mixed/seed%d/unix" seed)
         ~measured_ms:u ~paper_mach_ms:None ~paper_unix_ms:None;
       Tablefmt.row t
         [ Printf.sprintf "seed %d" seed;
           string_of_int (Workload.op_count trace); fmt_ms m; fmt_ms u;
           Printf.sprintf "%.2fx" (u /. m) ])
    [ 11; 12; 13 ];
  Tablefmt.print t

(* ------------------------------------------------------------------ *)
(* Table 3-4: the optional pmap_copy routine at fork                    *)
(* ------------------------------------------------------------------ *)

let prewarm_one ~prewarm =
  let machine, kernel, _fs, _os = boot_mach ~mem:(8 * mb) Arch.uvax2 in
  let sys = Kernel.sys kernel in
  sys.Vm_sys.pmap_prewarm_on_fork <- prewarm;
  let parent = Kernel.create_task kernel ~name:"p" () in
  Kernel.run_task kernel ~cpu:0 parent;
  let size = 256 * kb in
  let addr =
    match Vm_user.allocate sys parent ~size ~anywhere:true () with
    | Ok a -> a
    | Error e -> failwith (Kr.to_string e)
  in
  let ps = Kernel.page_size kernel in
  let rec dirty va =
    if va < addr + size then begin
      Machine.write_byte machine ~cpu:0 ~va 'p';
      dirty (va + ps)
    end
  in
  dirty addr;
  Machine.reset_clocks machine;
  let child = Kernel.fork_task kernel ~cpu:0 parent in
  Kernel.run_task kernel ~cpu:0 child;
  let rec sweep va =
    if va < addr + size then begin
      Machine.touch machine ~cpu:0 ~va ~write:false;
      sweep (va + ps)
    end
  in
  sweep addr;
  ((Machine.stats machine).Machine.faults, Machine.elapsed_ms machine)

let fork_prewarm () =
  let t =
    Tablefmt.create
      ~title:
        "Table 3-4 (optional pmap_copy): fork 256K + child reads it all\n\
         (uVAX II; prewarming the child's pmap trades enters for faults)"
      ~columns:[ "pmap_copy at fork"; "child faults"; "elapsed" ]
  in
  List.iter
    (fun flag ->
       let faults, ms = prewarm_one ~prewarm:flag in
       Tablefmt.row t
         [ (if flag then "used" else "not used (default)");
           string_of_int faults; fmt_ms ms ])
    [ false; true ];
  Tablefmt.print t

(* ------------------------------------------------------------------ *)
(* Section 6: copy-on-reference memory over the network                 *)
(* ------------------------------------------------------------------ *)

let net_one ~touch_fraction =
  let arch = Arch.vax8200 in
  let server_machine =
    Machine.create ~arch ~memory_frames:(frames_for arch ~mem_bytes:(8 * mb)) ()
  in
  let client_machine =
    Machine.create ~arch ~memory_frames:(frames_for arch ~mem_bytes:(8 * mb)) ()
  in
  let server_kernel = Kernel.create ~page_multiple:8 server_machine in
  let client_kernel = Kernel.create ~page_multiple:8 client_machine in
  let link = Mach_net.Netlink.create [ server_machine; client_machine ] in
  let server_fs = Mach_pagers.Simfs.create server_machine () in
  let size = 1 * mb in
  Mach_pagers.Simfs.install_file server_fs ~name:"/data"
    ~data:(Bytes.make size 'n');
  let server =
    Mach_net.Net_pager.serve link ~node:0 (Kernel.sys server_kernel)
      server_fs
  in
  let sys = Kernel.sys client_kernel in
  let task = Kernel.create_task client_kernel ~name:"client" () in
  Kernel.run_task client_kernel ~cpu:0 task;
  let addr, _ =
    match
      Mach_net.Net_pager.map_remote link ~node:1 sys task server
        ~name:"/data" ()
    with
    | Ok v -> v
    | Error e -> failwith (Kr.to_string e)
  in
  let ps = Kernel.page_size client_kernel in
  let pages = size / ps in
  let to_touch = max 1 (pages * touch_fraction / 100) in
  Machine.reset_clocks client_machine;
  Mach_net.Netlink.reset_counters link;
  (* Touch a spread of pages (copy-on-reference). *)
  for i = 0 to to_touch - 1 do
    let page = i * pages / to_touch in
    Machine.touch client_machine ~cpu:0 ~va:(addr + (page * ps))
      ~write:false
  done;
  let lazy_ms = Machine.elapsed_ms client_machine in
  let lazy_bytes = Mach_net.Netlink.bytes_moved link in
  (* Eager comparison: ship the whole file first. *)
  Machine.reset_clocks client_machine;
  Mach_net.Netlink.reset_counters link;
  ignore (Mach_net.Net_pager.fetch_whole link ~node:1 sys server ~name:"/data");
  let eager_ms = Machine.elapsed_ms client_machine in
  let eager_bytes = Mach_net.Netlink.bytes_moved link in
  (lazy_ms, lazy_bytes, eager_ms, eager_bytes)

let net_memory () =
  let t =
    Tablefmt.create
      ~title:
        "Section 6: remote memory object, copy-on-reference vs whole-file\n\
         transfer (1MB file on a 10 Mbit link)"
      ~columns:
        [ "pages touched"; "lazy time"; "lazy bytes"; "eager time";
          "eager bytes" ]
  in
  List.iter
    (fun pct ->
       let lazy_ms, lazy_b, eager_ms, eager_b = net_one ~touch_fraction:pct in
       Tablefmt.row t
         [ Printf.sprintf "%d%%" pct; fmt_ms lazy_ms;
           Printf.sprintf "%dK" (lazy_b / kb); fmt_ms eager_ms;
           Printf.sprintf "%dK" (eager_b / kb) ])
    [ 5; 25; 50; 100 ];
  Tablefmt.print t

(* ------------------------------------------------------------------ *)
(* Chaos: pager retry/backoff, death, and dirty-page rescue             *)
(* ------------------------------------------------------------------ *)

module Fail = Mach_fail.Fail

(* A deterministic disaster.  An external pager is wrapped in a seeded
   injector: its first two read requests fail transiently (bounded retry
   recovers), and every write fails permanently — so under memory
   pressure the pageout daemon burns its retry budget, declares the
   pager dead, and rescues the dirty pages through the default pager.
   The workload must finish with zero corrupt pages and zero
   task-visible memory errors; all counters are exact, seeded
   reproductions. *)
let chaos () =
  let machine, kernel, _fs, _os = boot_mach ~mem:(128 * kb) Arch.uvax2 in
  let sys = Kernel.sys kernel in
  let ps = Kernel.page_size kernel in
  let inj = Fail.create ~seed:1987 in
  Fail.attach inj ~site:"pager.request"
    [ Fail.Fail_n_then_recover (2, Fail.Fail) ];
  Fail.attach inj ~site:"pager.write" [ Fail.Always Fail.Fail ];
  let task = Kernel.create_task kernel ~name:"chaos" () in
  Kernel.run_task kernel ~cpu:0 task;
  let store : (int, Bytes.t) Hashtbl.t = Hashtbl.create 32 in
  let pager =
    {
      Types.pgr_id = Types.fresh_pager_id ();
      pgr_name = "victim";
      pgr_request =
        (fun ~offset ~length ->
           match Hashtbl.find_opt store offset with
           | Some d ->
             Types.Data_provided (Bytes.sub d 0 (min length (Bytes.length d)))
           | None -> Types.Data_unavailable);
      pgr_write =
        (fun ~offset ~data ->
           Hashtbl.replace store offset (Bytes.copy data);
           Types.Write_completed);
      pgr_submit = Types.no_submit;
      pgr_submit_write = Types.no_submit_write;
      pgr_should_cache = ref false;
    }
  in
  let n = 24 in
  let addr =
    match
      Mach_pagers.Chaos_pager.map_wrapped sys task inj ~pager ~size:(n * ps)
        ()
    with
    | Ok (a, _) -> a
    | Error e -> failwith (Kr.to_string e)
  in
  Machine.reset_clocks machine;
  let pattern i = Printf.sprintf "chaos-page-%02d" i in
  (* Dirty the whole region: the first faults also exercise the
     transient read-failure retries. *)
  for i = 0 to n - 1 do
    Machine.write machine ~cpu:0 ~va:(addr + (i * ps))
      (Bytes.of_string (pattern i))
  done;
  (* Memory pressure until the pager dies, then until everything is
     evicted through the rescue pager. *)
  for _ = 1 to 6 do
    Vm_pageout.deactivate_some sys ~count:64;
    Vm_pageout.run sys ~wanted:64
  done;
  (* Fault everything back in and verify. *)
  let corrupt = ref 0 in
  for i = 0 to n - 1 do
    let got =
      Bytes.to_string
        (Machine.read machine ~cpu:0 ~va:(addr + (i * ps))
           ~len:(String.length (pattern i)))
    in
    if got <> pattern i then incr corrupt
  done;
  let s = sys.Vm_sys.stats in
  let t =
    Tablefmt.create
      ~title:
        "Chaos: external pager with failing writes under memory pressure\n\
         (seeded injection; bounded retry, pager death, rescue via the\n\
         default pager — data must survive unharmed)"
      ~columns:[ "metric"; "value" ]
  in
  let cell metric v =
    record_cell
      ~name:(Printf.sprintf "chaos/%s" metric)
      ~measured_ms:(float_of_int v) ~paper_mach_ms:None ~paper_unix_ms:None;
    Tablefmt.row t [ metric; string_of_int v ]
  in
  cell "injections" (Fail.injections inj);
  cell "pager_retries" s.Vm_sys.pager_retries;
  cell "pager_failures" s.Vm_sys.pager_failures;
  cell "pager_deaths" s.Vm_sys.pager_deaths;
  cell "rescued_pages" s.Vm_sys.rescued_pages;
  cell "pageout_failures" s.Vm_sys.pageout_failures;
  cell "memory_errors" s.Vm_sys.memory_errors;
  cell "corrupt_pages" !corrupt;
  record_cell ~name:"chaos/elapsed_ms"
    ~measured_ms:(Machine.elapsed_ms machine) ~paper_mach_ms:None
    ~paper_unix_ms:None;
  Tablefmt.row t
    [ "elapsed"; fmt_ms (Machine.elapsed_ms machine) ];
  Tablefmt.print t;
  Printf.printf "chaos fingerprint: %s\n" (Fail.fingerprint inj)

(* ------------------------------------------------------------------ *)
(* Clustered paging: read-ahead window ablation                         *)
(* ------------------------------------------------------------------ *)

(* The pre-clustering read(): the exact loop read_through_object ran
   before clustered pagein existed — one guarded single-page request per
   miss, no window bookkeeping.  Recorded as the `legacy` reference cell:
   with [cluster_max = 1] the clustered path must cost exactly this
   (bench_smoke.sh asserts the two elapsed times are identical). *)
let legacy_read sys fs ~name ~offset ~len =
  Vm_sys.charge sys (Vm_sys.cost sys).Arch.syscall;
  let pager = Mach_pagers.Vnode_pager.for_file sys fs ~name in
  let size = Mach_pagers.Simfs.file_size fs ~name in
  let obj = Vm_object.create_with_pager sys pager ~size in
  let len = if offset >= size then 0 else min len (size - offset) in
  let ps = sys.Vm_sys.page_size in
  let rec loop pos =
    if pos < len then begin
      let abs = offset + pos in
      let page_off = abs - (abs mod ps) in
      let chunk = min (ps - (abs mod ps)) (len - pos) in
      let page =
        match Vm_object.lookup_resident sys obj ~offset:page_off with
        | Some p -> p
        | None ->
          let p = Vm_sys.grab_page sys in
          Resident.insert sys.Vm_sys.resident p ~obj ~offset:page_off;
          (match
             Pager_guard.request sys obj ~offset:page_off ~length:ps
           with
           | `Data data -> Page_io.fill sys p data
           | `Absent | `Error -> Page_io.zero sys p);
          sys.Vm_sys.stats.Vm_sys.pager_reads <-
            sys.Vm_sys.stats.Vm_sys.pager_reads + 1;
          Resident.enqueue sys.Vm_sys.resident p Q_active;
          p
      in
      ignore (Page_io.copy_out sys page ~off:(abs mod ps) ~len:chunk);
      loop (pos + chunk)
    end
  in
  loop 0;
  Vm_object.deallocate sys obj

let cluster () =
  let windows = [ 1; 2; 4; 8; 16; 32; 64 ] in
  let seq_size = 2 * mb in
  let rand_reads = 256 in
  let wb_size = mb in
  (* Sequential streaming read of a 2 MB file at window [w]: fresh boot,
     cold cache.  With [~async:true] the prefetch tail overlaps with the
     consuming CPU via the device queues.  Returns (elapsed, disk reqs,
     prefetch issued/hits, device overlap cycles). *)
  let seq_read ?(async = false) w =
    let machine, kernel, _, os = boot_mach ~mem:(16 * mb) Arch.vax8200 in
    Machine.set_disk_async machine async;
    let sys = Kernel.sys kernel in
    sys.Vm_sys.cluster_max <- w;
    os.Os_iface.install_file ~name:"/seq" ~data:(Bytes.make seq_size 'S');
    os.Os_iface.reset ();
    ignore (os.Os_iface.read_file ~cpu:0 ~name:"/seq" ~offset:0 ~len:seq_size);
    let ms = os.Os_iface.elapsed_ms () in
    let s = sys.Vm_sys.stats in
    (ms, s.Vm_sys.pager_reads, s.Vm_sys.prefetch_issued,
     s.Vm_sys.prefetch_hits,
     (Machine.stats machine).Machine.disk_overlap_cycles)
  in
  (* Page-granular 4 KB reads at seeded-random offsets: the window must
     stay collapsed, so elapsed is flat across [w] and read-ahead issues
     (nearly) nothing. *)
  let rand_read w =
    let _, kernel, _, os = boot_mach ~mem:(16 * mb) Arch.vax8200 in
    let sys = Kernel.sys kernel in
    sys.Vm_sys.cluster_max <- w;
    os.Os_iface.install_file ~name:"/rand" ~data:(Bytes.make seq_size 'R');
    let ps = sys.Vm_sys.page_size in
    let st = Random.State.make [| 0x5eed |] in
    os.Os_iface.reset ();
    for _ = 1 to rand_reads do
      let pg = Random.State.int st (seq_size / ps) in
      ignore
        (os.Os_iface.read_file ~cpu:0 ~name:"/rand" ~offset:(pg * ps) ~len:ps)
    done;
    (os.Os_iface.elapsed_ms (), sys.Vm_sys.stats.Vm_sys.prefetch_issued)
  in
  (* Writeback: dirty 1 MB of anonymous memory, then force the pageout
     daemon to push it all to the default pager.  Contiguous dirty pages
     coalesce into clustered writes of up to [w] pages. *)
  let writeback ?(async = false) w =
    let machine, kernel, _, _ = boot_mach ~mem:(16 * mb) Arch.vax8200 in
    Machine.set_disk_async machine async;
    let sys = Kernel.sys kernel in
    sys.Vm_sys.cluster_max <- w;
    let task = Kernel.create_task kernel ~name:"wb" () in
    Kernel.run_task kernel ~cpu:0 task;
    let addr =
      match Vm_user.allocate sys task ~size:wb_size ~anywhere:true () with
      | Ok a -> a
      | Error e -> failwith (Kr.to_string e)
    in
    let ps = sys.Vm_sys.page_size in
    let npages = wb_size / ps in
    for i = 0 to npages - 1 do
      Machine.touch machine ~cpu:0 ~va:(addr + (i * ps)) ~write:true
    done;
    Machine.reset_clocks machine;
    for _ = 1 to 4 do
      Vm_pageout.deactivate_some sys ~count:npages;
      Vm_pageout.run sys ~wanted:npages
    done;
    ( Machine.elapsed_ms machine,
      sys.Vm_sys.stats.Vm_sys.clustered_pageouts )
  in
  let t =
    Tablefmt.create
      ~title:
        "Clustered paging: 2M sequential read, 256 random 4K reads and 1M\n\
         anonymous writeback at each read-ahead window (cluster_max)"
      ~columns:
        [ "window"; "seq read"; "seq async"; "pager reqs"; "prefetch";
          "rand read"; "writeback"; "wb async"; "clustered writes" ]
  in
  let cell name ms =
    record_cell ~name:(Printf.sprintf "cluster/%s" name) ~measured_ms:ms
      ~paper_mach_ms:None ~paper_unix_ms:None
  in
  List.iter
    (fun w ->
       let seq_ms, reqs, issued, hits, _ = seq_read w in
       let aseq_ms, _, _, _, overlap = seq_read ~async:true w in
       let rand_ms, rand_issued = rand_read w in
       let wb_ms, cw = writeback w in
       let awb_ms, _ = writeback ~async:true w in
       cell (Printf.sprintf "seq_read_2M/w%d" w) seq_ms;
       cell (Printf.sprintf "seq_read_2M/w%d_async" w) aseq_ms;
       cell (Printf.sprintf "rand_read_256x4K/w%d" w) rand_ms;
       cell (Printf.sprintf "writeback_1M/w%d" w) wb_ms;
       cell (Printf.sprintf "writeback_1M/w%d_async" w) awb_ms;
       if w = 8 then begin
         cell "prefetch_issued/w8" (float_of_int issued);
         cell "prefetch_hits/w8" (float_of_int hits);
         cell "rand_prefetch_issued/w8" (float_of_int rand_issued);
         cell "clustered_pageouts/w8" (float_of_int cw);
         cell "disk_overlap_cycles/w8_async" (float_of_int overlap)
       end;
       Tablefmt.row t
         [ string_of_int w; fmt_ms seq_ms; fmt_ms aseq_ms; string_of_int reqs;
           Printf.sprintf "%d/%d" hits issued; fmt_ms rand_ms; fmt_ms wb_ms;
           fmt_ms awb_ms; string_of_int cw ])
    windows;
  (* The zero-overhead reference: the pre-clustering per-page loop on a
     fresh boot must cost exactly what the clustered path costs at w=1. *)
  let machine, kernel, fs, os = boot_mach ~mem:(16 * mb) Arch.vax8200 in
  let sys = Kernel.sys kernel in
  sys.Vm_sys.cluster_max <- 1;
  os.Os_iface.install_file ~name:"/seq" ~data:(Bytes.make seq_size 'S');
  os.Os_iface.reset ();
  legacy_read sys fs ~name:"/seq" ~offset:0 ~len:seq_size;
  let legacy_ms = Machine.elapsed_ms machine in
  cell "seq_read_2M/legacy" legacy_ms;
  Tablefmt.row t
    [ "legacy"; fmt_ms legacy_ms; "-"; "-"; "-"; "-"; "-"; "-"; "-" ];
  Tablefmt.print t;
  (* Attribution cells: instrumented re-runs of the w=8 streaming read.
     The Disk_wait share is the fraction of all cycles spent on device
     time or blocked on async completions; overlap means the async run's
     share must not exceed the sync run's.  Separate boots, so the
     untraced cells above are untouched; [os.reset] zeroes the clocks
     and the attribution totals together, so conservation is exact from
     that point even though the tracer arrived after the kernel booted. *)
  let attr_seq ~async =
    let machine, kernel, _, os = boot_mach ~mem:(16 * mb) Arch.vax8200 in
    let tr = Mach_obs.Obs.create ~capacity:(1 lsl 12) () in
    Mach_obs.Obs.set_enabled tr true;
    Machine.set_tracer machine tr;
    Machine.set_disk_async machine async;
    let sys = Kernel.sys kernel in
    sys.Vm_sys.cluster_max <- 8;
    os.Os_iface.install_file ~name:"/seq" ~data:(Bytes.make seq_size 'S');
    os.Os_iface.reset ();
    ignore (os.Os_iface.read_file ~cpu:0 ~name:"/seq" ~offset:0 ~len:seq_size);
    let total = Machine.max_cycles machine in
    let disk_wait =
      Mach_obs.Obs.attr_grand_total tr Mach_obs.Obs.Disk_wait
    in
    let conserved =
      Mach_obs.Obs.attr_cpu_total tr ~cpu:0 = Machine.cycles machine ~cpu:0
    in
    (float_of_int disk_wait /. float_of_int total, conserved)
  in
  let sync_frac, sync_ok = attr_seq ~async:false in
  let async_frac, async_ok = attr_seq ~async:true in
  cell "attr_disk_wait_frac/w8" sync_frac;
  cell "attr_disk_wait_frac/w8_async" async_frac;
  cell "attr_conserved/w8" (if sync_ok && async_ok then 1.0 else 0.0);
  Printf.printf
    "cluster attribution (w=8): disk_wait %.1f%% sync, %.1f%% async, \
     conservation %s\n\n"
    (100. *. sync_frac) (100. *. async_frac)
    (if sync_ok && async_ok then "ok" else "MISMATCH")

(* ------------------------------------------------------------------ *)
(* Multiprocessor fault scalability: object locks and burst faulting    *)
(* ------------------------------------------------------------------ *)

(* CPU counts the mpfault scaling sweep runs at; `-cpus N` trims the
   list to counts <= N (the smoke test passes 4 to stay cheap). *)
let mpfault_cpus = ref [ 1; 2; 4; 8; 16 ]

type mp_result = {
  mp_ms : float;              (* wall clock: max over the CPU clocks *)
  mp_faults : int;
  mp_stalls : int;            (* contended object-lock acquisitions *)
  mp_stall_share : float;     (* lock-stall cycles / sum of CPU clocks *)
  mp_burst_faults : int;
  mp_burst_mapped : int;
  mp_issued : int;            (* prefetch_issued (burst neighbours) *)
  mp_hits : int;              (* prefetch_hits (neighbours touched) *)
  mp_attr : (float * bool) option;
      (* traced runs only: (Lock_wait share of all cycles, per-CPU
         attribution sums equal the clocks) *)
  mp_numa_local : int;        (* queue allocations from the home domain *)
  mp_numa_borrows : int;      (* queue allocations borrowed cross-domain *)
  mp_steals : int;            (* pages stolen from another CPU's magazine *)
}

(* Free-page allocator variants for the ablation.  [`Seed] leaves the
   allocator exactly as booted — the scaling sweep and burst cells run
   there, so they are untouched by this table.  Every other variant
   turns on queue-lock contention simulation; [`Global] is the seed
   topology with that cost made visible (the column to beat), and the
   rest climb the hierarchy of the colored/per-CPU/NUMA allocator. *)
let apply_alloc_variant machine sys = function
  | `Seed -> ()
  | `Global -> Resident.set_lock_sim sys.Vm_sys.resident true
  | `Colored ->
    Vm_sys.configure_allocator ~colors:16 sys;
    Resident.set_lock_sim sys.Vm_sys.resident true
  | `Colored_pcpu ->
    Vm_sys.configure_allocator ~colors:16 ~cache:8 sys;
    Resident.set_lock_sim sys.Vm_sys.resident true
  | `Numa d ->
    Machine.set_numa_domains machine d;
    Vm_sys.configure_allocator ~colors:16 ~cache:8 sys;
    Resident.set_lock_sim sys.Vm_sys.resident true

(* One configuration: [cpus] processors each faulting an identical
   per-CPU stream against one shared object (disjoint 32-page stripes)
   or a private object per CPU, under burst limit [burst] (0 = the
   pre-burst fault path).  The stream is a round-robin zero-fill sweep
   of the stripe — writer sections, so they contend on the shared
   object — followed by [rounds] rounds of dropping the pmap mappings
   and re-touching every page (resident fast reloads, where bursting
   applies).  Per-CPU work is fixed, so wall-clock differences across
   CPU counts are contention, not extra work. *)
let mpfault_run ?(traced = false) ?(alloc = `Seed) ~cpus ~shared ~burst () =
  let stripe_pages = 32 in
  let rounds = 4 in
  let machine, kernel, _, _ = boot_mach ~mem:(32 * mb) ~cpus Arch.vax8200 in
  let sys = Kernel.sys kernel in
  sys.Vm_sys.burst_max <- burst;
  apply_alloc_variant machine sys alloc;
  let tr =
    if not traced then None
    else begin
      let tr = Mach_obs.Obs.create ~capacity:(1 lsl 12) () in
      Mach_obs.Obs.set_enabled tr true;
      Machine.set_tracer machine tr;
      Some tr
    end
  in
  let ps = Kernel.page_size kernel in
  let stripe = stripe_pages * ps in
  let domain = kernel.Kernel.domain in
  let alloc task size =
    match Vm_user.allocate sys task ~size ~anywhere:true () with
    | Ok a -> a
    | Error e -> failwith (Kr.to_string e)
  in
  let pmap_of task =
    match (Task.map task).Types.map_pmap with
    | Some p -> p
    | None -> assert false
  in
  (* stripes.(i): CPU i's address space and the base of its stripe. *)
  let stripes =
    if shared then begin
      let task = Kernel.create_task kernel ~name:"shared" () in
      for cpu = 0 to cpus - 1 do
        Kernel.run_task kernel ~cpu task
      done;
      let addr = alloc task (cpus * stripe) in
      Array.init cpus (fun i -> (pmap_of task, addr + (i * stripe)))
    end
    else
      Array.init cpus (fun i ->
          let task =
            Kernel.create_task kernel ~name:(Printf.sprintf "p%d" i) ()
          in
          Kernel.run_task kernel ~cpu:i task;
          (pmap_of task, alloc task stripe))
  in
  (* Measure from here: clocks, machine stats and attribution zeroed
     together, so the traced run's conservation check is exact. *)
  Machine.reset_clocks machine;
  let s = sys.Vm_sys.stats in
  let f0 = s.Vm_sys.faults in
  let sweep ~write =
    (* Page p on every CPU, then p+1: the interleave a multiprocessor
       would see, so critical sections overlap across the clocks. *)
    for p = 0 to stripe_pages - 1 do
      Array.iteri
        (fun cpu (_, base) ->
           Machine.touch machine ~cpu ~va:(base + (p * ps)) ~write)
        stripes
    done
  in
  sweep ~write:true;
  for _ = 1 to rounds do
    Array.iteri
      (fun cpu (pmap, base) ->
         Mach_pmap.Pmap_domain.set_current_cpu domain cpu;
         pmap.Mach_pmap.Pmap.remove ~start_va:base ~end_va:(base + stripe))
      stripes;
    sweep ~write:true
  done;
  let total_cycles = ref 0 in
  for cpu = 0 to Machine.cpu_count machine - 1 do
    total_cycles := !total_cycles + Machine.cycles machine ~cpu
  done;
  let attr =
    match tr with
    | None -> None
    | Some tr ->
      let lw = Mach_obs.Obs.attr_grand_total tr Mach_obs.Obs.Lock_wait in
      let conserved = ref true in
      for cpu = 0 to Machine.cpu_count machine - 1 do
        if
          Mach_obs.Obs.attr_cpu_total tr ~cpu
          <> Machine.cycles machine ~cpu
        then conserved := false
      done;
      Some (float_of_int lw /. float_of_int (max 1 !total_cycles),
            !conserved)
  in
  { mp_ms = Machine.elapsed_ms machine;
    mp_faults = s.Vm_sys.faults - f0;
    mp_stalls = s.Vm_sys.lock_stalls;
    mp_stall_share =
      float_of_int s.Vm_sys.lock_stall_cycles
      /. float_of_int (max 1 !total_cycles);
    mp_burst_faults = s.Vm_sys.burst_faults;
    mp_burst_mapped = s.Vm_sys.burst_mapped;
    mp_issued = s.Vm_sys.prefetch_issued;
    mp_hits = s.Vm_sys.prefetch_hits;
    mp_attr = attr;
    mp_numa_local =
      (Resident.counters sys.Vm_sys.resident).Resident.numa_local;
    mp_numa_borrows =
      (Resident.counters sys.Vm_sys.resident).Resident.numa_borrows;
    mp_steals =
      (Resident.counters sys.Vm_sys.resident).Resident.page_steals }

let mpfault () =
  let counts = !mpfault_cpus in
  let cell name v =
    record_cell ~name:("mpfault/" ^ name) ~measured_ms:v
      ~paper_mach_ms:None ~paper_unix_ms:None
  in
  let fps r = float_of_int r.mp_faults /. (r.mp_ms /. 1000.) in
  let t =
    Tablefmt.create
      ~title:
        "Multiprocessor fault scalability (VAX 8200): identical 32-page\n\
         fault streams per CPU against private objects vs stripes of one\n\
         shared object; object locks are free uncontended and charge\n\
         stalls to Lock_wait when writer sections overlap"
      ~columns:
        [ "CPUs"; "object"; "faults"; "faults/sec"; "lock stalls";
          "stall share"; "elapsed" ]
  in
  List.iter
    (fun cpus ->
       List.iter
         (fun shared ->
            let key = if shared then "shared" else "private" in
            let r = mpfault_run ~cpus ~shared ~burst:8 () in
            cell (Printf.sprintf "%s/c%d/faults_per_sec" key cpus) (fps r);
            cell (Printf.sprintf "%s/c%d/elapsed_ms" key cpus) r.mp_ms;
            cell
              (Printf.sprintf "%s/c%d/lock_stall_share" key cpus)
              r.mp_stall_share;
            Tablefmt.row t
              [ string_of_int cpus; key; string_of_int r.mp_faults;
                Printf.sprintf "%.0f" (fps r);
                string_of_int r.mp_stalls;
                Printf.sprintf "%.1f%%" (100. *. r.mp_stall_share);
                fmt_ms r.mp_ms ])
         [ false; true ])
    counts;
  Tablefmt.print t;
  (* Burst ablation at a fixed CPU count: burst=0 is the pre-burst
     fault path, burst=1 runs the burst machinery but maps only the
     demand page (it must match burst=0 to the cycle), larger limits
     amortize fault overhead and flush exchanges over neighbours. *)
  let bc = List.fold_left (fun a c -> if c <= 4 then max a c else a) 1 counts in
  let t2 =
    Tablefmt.create
      ~title:
        (Printf.sprintf
           "Burst faulting ablation (%d CPUs, private objects): neighbours\n\
            mapped per resident fault ride the demand page's flush batch"
           bc)
      ~columns:
        [ "burst"; "faults"; "burst faults"; "neighbours"; "hit rate";
          "elapsed" ]
  in
  List.iter
    (fun burst ->
       let name = if burst = 0 then "legacy" else Printf.sprintf "b%d" burst in
       let r = mpfault_run ~cpus:bc ~shared:false ~burst () in
       cell (Printf.sprintf "burst/%s/elapsed_ms" name) r.mp_ms;
       let hit_rate =
         if r.mp_issued = 0 then 0.
         else float_of_int r.mp_hits /. float_of_int r.mp_issued
       in
       if burst = 8 then begin
         cell "burst/b8/hit_rate" hit_rate;
         cell "burst/b8/mapped" (float_of_int r.mp_burst_mapped)
       end;
       Tablefmt.row t2
         [ name; string_of_int r.mp_faults;
           string_of_int r.mp_burst_faults;
           string_of_int r.mp_burst_mapped;
           Printf.sprintf "%d/%d" r.mp_hits r.mp_issued; fmt_ms r.mp_ms ])
    [ 0; 1; 2; 4; 8; 16 ];
  Tablefmt.print t2;
  (* Attribution: a traced re-run of the shared configuration.  Separate
     boot, so the untraced cells above are untouched. *)
  let r = mpfault_run ~traced:true ~cpus:bc ~shared:true ~burst:8 () in
  (match r.mp_attr with
   | None -> assert false
   | Some (lw_share, conserved) ->
     cell (Printf.sprintf "attr_lock_wait_share/c%d_shared" bc) lw_share;
     cell
       (Printf.sprintf "attr_conserved/c%d_shared" bc)
       (if conserved then 1.0 else 0.0);
     Printf.printf
       "mpfault attribution (%d CPUs, shared): lock_wait %.1f%% of all \
        cycles, conservation %s\n\n"
       bc (100. *. lw_share)
       (if conserved then "ok" else "MISMATCH"));
  (* Free-page allocator ablation: the same shared-object interleave,
     burst=8, but with queue-lock contention simulated.  "global" is
     the seed's single free queue with that cost made visible; colors
     split it 16 ways, magazines batch the lock traffic 8 pages per
     trip, and the NUMA split adds home-domain locality.  The scaling
     sweep above runs with the cost invisible ([`Seed]), so its cells
     are untouched by this table. *)
  let t3 =
    Tablefmt.create
      ~title:
        "Free-page allocator ablation (shared object, burst=8, queue-lock\n\
         contention simulated): one global queue vs 16 colored queues vs\n\
         colors + 8-page per-CPU magazines vs 2 NUMA domains on top"
      ~columns:
        [ "CPUs"; "allocator"; "faults/sec"; "stall share"; "steals";
          "local/borrowed"; "elapsed" ]
  in
  List.iter
    (fun cpus ->
       List.iter
         (fun (name, alloc) ->
            let r = mpfault_run ~cpus ~shared:true ~burst:8 ~alloc () in
            cell (Printf.sprintf "alloc/%s/c%d/faults_per_sec" name cpus)
              (fps r);
            cell (Printf.sprintf "alloc/%s/c%d/stall_share" name cpus)
              r.mp_stall_share;
            Tablefmt.row t3
              [ string_of_int cpus; name; Printf.sprintf "%.0f" (fps r);
                Printf.sprintf "%.1f%%" (100. *. r.mp_stall_share);
                string_of_int r.mp_steals;
                Printf.sprintf "%d/%d" r.mp_numa_local r.mp_numa_borrows;
                fmt_ms r.mp_ms ])
         [ ("global", `Global); ("colored", `Colored);
           ("colored_pcpu", `Colored_pcpu); ("numa2", `Numa 2) ])
    counts;
  Tablefmt.print t3;
  (* NUMA locality: private per-CPU objects under the 2-domain split.
     Each CPU's demand is small against its home domain's share, so
     nearly every allocation should stay local. *)
  List.iter
    (fun cpus ->
       let r =
         mpfault_run ~cpus ~shared:false ~burst:8 ~alloc:(`Numa 2) ()
       in
       let local_frac =
         float_of_int r.mp_numa_local
         /. float_of_int (max 1 (r.mp_numa_local + r.mp_numa_borrows))
       in
       cell
         (Printf.sprintf "alloc/numa2/private/c%d/local_frac" cpus)
         local_frac;
       Printf.printf
         "mpfault numa locality (%d CPUs, private, 2 domains): %.1f%% \
          local (%d local, %d borrowed)\n"
         cpus (100. *. local_frac) r.mp_numa_local r.mp_numa_borrows)
    counts;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Memory pressure: overcommit sweep against finite memory and swap     *)
(* ------------------------------------------------------------------ *)

(* 2 MB of memory and 2 MB of swap on the uVAX II: 512 VM pages
   resident, 512 more on the default pager.  The sweep scales total
   anonymous demand from 1x to 4x of physical memory across 8 tasks; at
   1x everything fits (the reserves and backpressure machinery must
   stay silent — those cells are the determinism guard), past 2x the
   dirty set exceeds memory + swap and the OOM policy has to kill to
   keep the kernel making progress. *)
let pressure_mem = 2 * mb

type pr_result = {
  pr_ms : float;
  pr_oom_kills : int;
  pr_alloc_waits : int;
  pr_pageouts : int;
  pr_swap_full : int;
  pr_survivors : int;
  pr_attr : (float * bool) option;
      (* traced runs only: (Mem_wait share of all cycles, per-CPU
         attribution sums equal the clocks) *)
}

let pressure_run ?(traced = false) ?(alloc = `Seed) ~factor () =
  let tasks_n = 8 in
  let machine, kernel, _, _ = boot_mach ~mem:pressure_mem Arch.uvax2 in
  let sys = Kernel.sys kernel in
  Vm_sys.set_swap_capacity sys (Some pressure_mem);
  apply_alloc_variant machine sys alloc;
  let tr =
    if not traced then None
    else begin
      let tr = Mach_obs.Obs.create ~capacity:(1 lsl 12) () in
      Mach_obs.Obs.set_enabled tr true;
      Machine.set_tracer machine tr;
      Some tr
    end
  in
  let ps = Kernel.page_size kernel in
  let total_pages = pressure_mem / ps in
  let per_task_pages = total_pages * factor / tasks_n in
  let size = per_task_pages * ps in
  let tasks =
    Array.init tasks_n (fun i ->
        Kernel.create_task kernel ~name:(Printf.sprintf "pr%d" i) ())
  in
  let addrs =
    Array.map
      (fun task ->
         Kernel.run_task kernel ~cpu:0 task;
         match Vm_user.allocate sys task ~size ~anywhere:true () with
         | Ok a -> a
         | Error e -> failwith (Kr.to_string e))
      tasks
  in
  (* Measure from here: clocks and attribution zeroed together, so the
     traced run's conservation check is exact. *)
  Machine.reset_clocks machine;
  let s = sys.Vm_sys.stats in
  let oom0 = s.Vm_sys.oom_kills and aw0 = s.Vm_sys.alloc_waits in
  let po0 = s.Vm_sys.pageouts and sf0 = s.Vm_sys.swap_full_failures in
  let alive = Array.make tasks_n true in
  (* Page p of every task, then p+1 — the round-robin interleave keeps
     all the working sets hot at once, so the daemon can never get ahead
     by evicting a task that is simply done.  A touch on a task the OOM
     policy killed mid-sweep answers KERN_MEMORY_ERROR; the workload
     notes the death and carries on, exactly like a user program. *)
  let sweep () =
    for p = 0 to per_task_pages - 1 do
      Array.iteri
        (fun i task ->
           if task.Task.task_oom_killed then alive.(i) <- false
           else if alive.(i) then begin
             Kernel.run_task kernel ~cpu:0 task;
             try
               Machine.touch machine ~cpu:0 ~va:(addrs.(i) + (p * ps))
                 ~write:true
             with Machine.Memory_violation _ -> alive.(i) <- false
           end)
        tasks
    done
  in
  (* Two passes: the second re-touches what the first paged out, so the
     dirty set keeps cycling through memory, swap and the reserves. *)
  sweep ();
  sweep ();
  let attr =
    match tr with
    | None -> None
    | Some tr ->
      let mw = Mach_obs.Obs.attr_grand_total tr Mach_obs.Obs.Mem_wait in
      let conserved =
        Mach_obs.Obs.attr_cpu_total tr ~cpu:0 = Machine.cycles machine ~cpu:0
      in
      Some
        (float_of_int mw /. float_of_int (max 1 (Machine.max_cycles machine)),
         conserved)
  in
  { pr_ms = Machine.elapsed_ms machine;
    pr_oom_kills = s.Vm_sys.oom_kills - oom0;
    pr_alloc_waits = s.Vm_sys.alloc_waits - aw0;
    pr_pageouts = s.Vm_sys.pageouts - po0;
    pr_swap_full = s.Vm_sys.swap_full_failures - sf0;
    pr_survivors =
      Array.fold_left (fun n t -> if t.Task.task_oom_killed then n else n + 1)
        0 tasks;
    pr_attr = attr }

let pressure () =
  let cell name v =
    record_cell ~name:("pressure/" ^ name) ~measured_ms:v
      ~paper_mach_ms:None ~paper_unix_ms:None
  in
  let t =
    Tablefmt.create
      ~title:
        "Memory pressure (uVAX II, 2 MB memory + 2 MB swap, 8 tasks):\n\
         anonymous demand swept from 1x to 4x of physical memory; past\n\
         memory + swap the OOM policy kills the largest task and the\n\
         kernel keeps serving the survivors"
      ~columns:
        [ "demand"; "pageouts"; "alloc waits"; "swap full"; "oom kills";
          "survivors"; "elapsed" ]
  in
  List.iter
    (fun factor ->
       let r = pressure_run ~factor () in
       let c name v = cell (Printf.sprintf "x%d/%s" factor name) v in
       c "elapsed_ms" r.pr_ms;
       c "oom_kills" (float_of_int r.pr_oom_kills);
       c "alloc_waits" (float_of_int r.pr_alloc_waits);
       c "pageouts" (float_of_int r.pr_pageouts);
       c "survivors" (float_of_int r.pr_survivors);
       Tablefmt.row t
         [ Printf.sprintf "%dx" factor; string_of_int r.pr_pageouts;
           string_of_int r.pr_alloc_waits; string_of_int r.pr_swap_full;
           string_of_int r.pr_oom_kills; string_of_int r.pr_survivors;
           fmt_ms r.pr_ms ])
    [ 1; 2; 3; 4 ];
  Tablefmt.print t;
  (* Attribution: a traced re-run of the 4x point.  Separate boot, so
     the untraced cells above are untouched; Mem_wait is the cycles
     allocations spent blocked on the pageout daemon, and conservation
     must stay exact with the new category in the ledger. *)
  let r = pressure_run ~traced:true ~factor:4 () in
  (match r.pr_attr with
   | None -> assert false
   | Some (mw_share, conserved) ->
     cell "attr_mem_wait_share/x4" mw_share;
     cell "attr_conserved/x4" (if conserved then 1.0 else 0.0);
     Printf.printf
       "pressure attribution (4x): mem_wait %.1f%% of all cycles, \
        conservation %s\n\n"
       (100. *. mw_share)
       (if conserved then "ok" else "MISMATCH"));
  (* Allocator ablation under pressure: the colored + per-CPU hierarchy
     must come through the reclaim/OOM gauntlet with the same policy
     outcome — magazines are drained when pressure is declared, so
     cached pages cannot strand below the watermarks and change who
     gets killed. *)
  let rs = pressure_run ~factor:3 () in
  let rc = pressure_run ~alloc:`Colored_pcpu ~factor:3 () in
  cell "alloc/colored_pcpu/x3/oom_kills" (float_of_int rc.pr_oom_kills);
  cell "alloc/colored_pcpu/x3/survivors" (float_of_int rc.pr_survivors);
  cell "alloc/colored_pcpu/x3/elapsed_ms" rc.pr_ms;
  Printf.printf
    "pressure allocator ablation (3x, colored+pcpu): %d oom kills / %d \
     survivors (seed: %d / %d)\n\n"
    rc.pr_oom_kills rc.pr_survivors rs.pr_oom_kills rs.pr_survivors

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks (wall-clock of the simulator itself)       *)
(* ------------------------------------------------------------------ *)

let bechamel_tests () =
  let open Bechamel in
  [ Test.make ~name:"table7_1:zero-fill-64K"
      (Staged.stage (fun () ->
           let _, _, _, os = boot_mach ~mem:(4 * mb) Arch.uvax2 in
           ignore (zero_fill_ms os)));
    Test.make ~name:"table7_1:fork-256K"
      (Staged.stage (fun () ->
           let _, _, _, os = boot_mach ~mem:(4 * mb) Arch.uvax2 in
           ignore (fork_ms os)));
    Test.make ~name:"table7_1_files:file-read-50K"
      (Staged.stage (fun () ->
           let _, _, _, os = boot_mach ~mem:(4 * mb) Arch.vax8200 in
           ignore (file_read_pair os ~name:"/f" ~size:(50 * kb))));
    Test.make ~name:"table7_2:fork-test-compile"
      (Staged.stage (fun () ->
           let _, _, _, os = boot_mach ~mem:(8 * mb) Arch.sun3_160 in
           Compile_workload.setup os Compile_workload.fork_test;
           ignore (Compile_workload.run os Compile_workload.fork_test)))
  ]

let run_bechamel () =
  let open Bechamel in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:50 ~quota:(Time.second 1.0) ~kde:None ()
  in
  let raw =
    Benchmark.all cfg [ instance ]
      (Test.make_grouped ~name:"mach-vm" (bechamel_tests ()))
  in
  let results =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:false
         ~predictors:[| Measure.run |])
      instance raw
  in
  Hashtbl.iter
    (fun name ols ->
       match Analyze.OLS.estimates ols with
       | Some [ est ] ->
         Printf.printf "%-45s %12.0f ns/run\n" name est
       | Some _ | None -> Printf.printf "%-45s (no estimate)\n" name)
    results

(* ------------------------------------------------------------------ *)
(* Concurrent streams: shared-object read-ahead interference            *)
(* ------------------------------------------------------------------ *)

(* Reader counts for the interference sweep; `-cpus N` trims the list
   the same way it trims mpfault's. *)
let streams_ks = ref [ 1; 2; 4; 8; 16; 32; 64 ]

(* K tasks stream disjoint 256 KB stripes of ONE shared file, one 4 KB
   chunk per reader per turn (round robin), each on its own CPU.  With a
   single shared cursor every reader's miss lands where no other
   reader's cluster ended, so the window resets to one page on every
   fault and nobody ever ramps; with per-(map,entry) stream slots each
   reader ramps 1->2->4->8 independently and per-reader cost stays flat
   in K until the readers outnumber the slots.  The fb configuration
   additionally deactivates each stream's wake (free-behind). *)
let streams () =
  let stripe_pages = 64 in
  let run ~k ~slots ~fb =
    let machine, kernel, fs, _os =
      boot_mach ~mem:(64 * mb) ~cpus:k Arch.vax8200
    in
    let sys = Kernel.sys kernel in
    sys.Vm_sys.stream_slots <- slots;
    sys.Vm_sys.free_behind_min <- fb;
    let ps = sys.Vm_sys.page_size in
    let stripe = stripe_pages * ps in
    Mach_pagers.Simfs.install_file fs ~name:"/shared"
      ~data:(Bytes.make (k * stripe) 'D');
    Machine.reset_clocks machine;
    for turn = 0 to stripe_pages - 1 do
      for r = 0 to k - 1 do
        Mach_pmap.Pmap_domain.set_current_cpu kernel.Kernel.domain r;
        Vm_sys.charge sys (Vm_sys.cost sys).Arch.syscall;
        ignore
          (Mach_pagers.Vnode_pager.read_through_object sys ~stream:(r, 0)
             fs ~name:"/shared"
             ~offset:((r * stripe) + (turn * ps))
             ~len:ps)
      done
    done;
    let s = sys.Vm_sys.stats in
    ( Machine.elapsed_ms machine, s.Vm_sys.pager_reads,
      s.Vm_sys.stream_hits, s.Vm_sys.stream_resets,
      s.Vm_sys.free_behind_pages )
  in
  let t =
    Tablefmt.create
      ~title:
        "Concurrent streams: K readers x 256K stripes of one shared file\n\
         (elapsed = slowest reader; slotted = 8 stream slots, unslotted =\n\
         the single shared cursor, fb = slotted + free-behind)"
      ~columns:
        [ "readers"; "slotted"; "unslotted"; "fb"; "pager reqs s/u";
          "hits"; "resets"; "fb pages" ]
  in
  let cell name ms =
    record_cell ~name:(Printf.sprintf "streams/%s" name) ~measured_ms:ms
      ~paper_mach_ms:None ~paper_unix_ms:None
  in
  List.iter
    (fun k ->
       let sl_ms, sl_reads, sl_hits, sl_resets, _ =
         run ~k ~slots:8 ~fb:0
       in
       let un_ms, un_reads, _, _, _ = run ~k ~slots:1 ~fb:0 in
       let fb_ms, _, _, _, fb_pages = run ~k ~slots:8 ~fb:4 in
       cell (Printf.sprintf "k%d/slotted" k) sl_ms;
       cell (Printf.sprintf "k%d/unslotted" k) un_ms;
       cell (Printf.sprintf "k%d/fb" k) fb_ms;
       if k = 8 then begin
         cell "stream_hits/k8_slotted" (float_of_int sl_hits);
         cell "stream_resets/k8_slotted" (float_of_int sl_resets);
         cell "pager_reads/k8_slotted" (float_of_int sl_reads);
         cell "pager_reads/k8_unslotted" (float_of_int un_reads);
         cell "free_behind_pages/k8_fb" (float_of_int fb_pages)
       end;
       Tablefmt.row t
         [ string_of_int k; fmt_ms sl_ms; fmt_ms un_ms; fmt_ms fb_ms;
           Printf.sprintf "%d/%d" sl_reads un_reads;
           string_of_int sl_hits; string_of_int sl_resets;
           string_of_int fb_pages ])
    !streams_ks;
  Tablefmt.print t

(* ------------------------------------------------------------------ *)
(* Driver                                                               *)
(* ------------------------------------------------------------------ *)

let experiments =
  [ ("table7_1", table7_1);
    ("table7_1_files", table7_1_files);
    ("table7_2", table7_2);
    ("pmap_arch", pmap_arch);
    ("shootdown", shootdown);
    ("shadow", shadow);
    ("object_cache", object_cache);
    ("ipc", ipc);
    ("fork_prewarm", fork_prewarm);
    ("mixed", mixed);
    ("net_memory", net_memory);
    ("chaos", chaos);
    ("cluster", cluster);
    ("streams", streams);
    ("mpfault", mpfault);
    ("pressure", pressure) ]

let usage () =
  print_endline
    "usage: main.exe [-e EXPERIMENT] [-cpus N] [-json PATH] | raw";
  print_endline
    "  measured cells are written as JSON (default BENCH_vm.json)";
  print_endline
    "  -cpus N limits the mpfault and streams sweeps to CPU counts <= N";
  print_endline "experiments:";
  List.iter (fun (n, _) -> print_endline ("  " ^ n)) experiments

let () =
  let rec parse json exps = function
    | [] -> (json, List.rev exps)
    | "-json" :: path :: rest -> parse (Some path) exps rest
    | "-e" :: name :: rest -> parse json (name :: exps) rest
    | "-cpus" :: n :: rest ->
      (match int_of_string_opt n with
       | Some n when n >= 1 ->
         let trim l =
           let kept = List.filter (fun c -> c <= n) !l in
           l := (if kept = [] then [ n ] else kept)
         in
         trim mpfault_cpus;
         trim streams_ks
       | _ ->
         usage ();
         exit 1);
      parse json exps rest
    | "raw" :: rest -> parse json ("raw" :: exps) rest
    | _ ->
      usage ();
      exit 1
  in
  let json, exps = parse None [] (List.tl (Array.to_list Sys.argv)) in
  (match exps with
   | [ "raw" ] -> run_bechamel ()
   | [] ->
     List.iter
       (fun (name, f) ->
          Printf.printf "=== %s ===\n%!" name;
          f ())
       experiments
   | names ->
     List.iter
       (fun name ->
          match List.assoc_opt name experiments with
          | Some f -> f ()
          | None ->
            usage ();
            exit 1)
       names);
  match (!cells, json) with
  | [], None -> ()
  | _, _ ->
    write_cells (match json with Some p -> p | None -> "BENCH_vm.json")
