(* Object locking and burst faulting.

   The contracts under test: the lock layer is cycle-invisible on one
   CPU and burst=1 (machinery on, demand page only) is byte- and
   cycle-identical to burst=0 (the pre-burst fault path); bursting at
   any width is invisible to data; burst-mapped neighbours are counted
   as prefetch and their first touch as a hit even though they never
   fault; and multi-CPU lock stalls are deterministic — replay-identical
   across runs, with or without chaos injection — and conserved in the
   cycle attribution. *)

open Mach_hw
open Mach_core
open Mach_pagers
module Fail = Mach_fail.Fail
module Obs = Mach_obs.Obs

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.fail (Kr.to_string e)

(* uVAX II, 512 B hardware pages, multiple 8 => 4 KB system pages. *)
let boot ?(frames = 2048) ?(cpus = 1) () =
  let machine =
    Machine.create ~arch:Arch.uvax2 ~memory_frames:frames ~cpus ()
  in
  let kernel = Kernel.create ~page_multiple:8 machine in
  (machine, kernel, Kernel.sys kernel)

let pmap_of task =
  match (Task.map task).Types.map_pmap with
  | Some p -> p
  | None -> assert false

(* ---- burst accounting ---------------------------------------------------- *)

(* Zero-fill 32 pages, drop every mapping, touch the region again
   sequentially: with burst=8 that second sweep is 4 faults, each
   mapping 7 neighbours, and every neighbour's first touch counts as a
   prefetch hit (none of them fault). *)
let test_burst_counts () =
  let machine, kernel, sys = boot () in
  sys.Vm_sys.burst_max <- 8;
  let task = Kernel.create_task kernel () in
  Kernel.run_task kernel ~cpu:0 task;
  let ps = sys.Vm_sys.page_size in
  let n = 32 in
  let addr = ok (Vm_user.allocate sys task ~size:(n * ps) ~anywhere:true ()) in
  for i = 0 to n - 1 do
    Machine.write_byte machine ~cpu:0 ~va:(addr + (i * ps)) 'b'
  done;
  let pmap = pmap_of task in
  pmap.Mach_pmap.Pmap.remove ~start_va:addr ~end_va:(addr + (n * ps));
  let s = sys.Vm_sys.stats in
  let f0 = s.Vm_sys.faults in
  for i = 0 to n - 1 do
    Machine.touch machine ~cpu:0 ~va:(addr + (i * ps)) ~write:true
  done;
  Alcotest.(check int) "faults in the sweep" 4 (s.Vm_sys.faults - f0);
  Alcotest.(check int) "burst faults" 4 s.Vm_sys.burst_faults;
  Alcotest.(check int) "neighbours mapped" 28 s.Vm_sys.burst_mapped;
  Alcotest.(check int) "counted as prefetch" 28 s.Vm_sys.prefetch_issued;
  Alcotest.(check int) "first touches are hits" 28 s.Vm_sys.prefetch_hits;
  Alcotest.(check int) "no stalls on one CPU" 0 s.Vm_sys.lock_stalls

(* ---- qcheck: burst transparency ------------------------------------------- *)

(* Random streams of reads, writes and pmap drops over a 16-page
   region, replayed under two burst limits; ends with a full read of
   the region.  Returns the bytes read, the CPU clock and the fault
   count. *)
let burst_run ops burst =
  let machine, kernel, sys = boot () in
  sys.Vm_sys.burst_max <- burst;
  let task = Kernel.create_task kernel () in
  Kernel.run_task kernel ~cpu:0 task;
  let ps = sys.Vm_sys.page_size in
  let n = 16 in
  let addr = ok (Vm_user.allocate sys task ~size:(n * ps) ~anywhere:true ()) in
  let pmap = pmap_of task in
  List.iter
    (fun (i, kind) ->
       match kind with
       | 0 -> Machine.touch machine ~cpu:0 ~va:(addr + (i * ps)) ~write:false
       | 1 ->
         Machine.write_byte machine ~cpu:0 ~va:(addr + (i * ps))
           (Char.chr (0x40 + i))
       | _ ->
         pmap.Mach_pmap.Pmap.remove ~start_va:(addr + (i * ps))
           ~end_va:(addr + (n * ps)))
    ops;
  let bytes =
    Bytes.to_string (Machine.read machine ~cpu:0 ~va:addr ~len:(n * ps))
  in
  (bytes, Machine.cycles machine ~cpu:0, sys.Vm_sys.stats.Vm_sys.faults)

let ops_gen =
  QCheck2.Gen.(
    list_size (int_range 1 24) (pair (int_range 0 15) (int_range 0 2)))

(* burst=1 runs the burst machinery but collects no neighbours: it must
   be indistinguishable from the pre-burst fault path, to the cycle. *)
let burst1_is_legacy =
  QCheck2.Test.make ~name:"burst=1 byte- and cycle-identical to burst=0"
    ~count:40 ops_gen
    (fun ops -> burst_run ops 0 = burst_run ops 1)

(* Bursting any width must be invisible to data and never add faults. *)
let burst_transparent =
  QCheck2.Test.make ~name:"burst=8 byte-identical, never more faults"
    ~count:40 ops_gen
    (fun ops ->
       let b0, _, f0 = burst_run ops 0 in
       let b8, _, f8 = burst_run ops 8 in
       b0 = b8 && f8 <= f0)

(* ---- 4-CPU contention: deterministic and conserved ------------------------ *)

(* Four CPUs zero-fill disjoint stripes of one shared object in a
   round-robin interleave (writer sections overlap on the virtual
   clocks), then twice drop their stripe's mappings and re-touch it.
   With [chaos_seed] the default pager is chaos-wrapped and memory is
   pressured, so pageout and pagein churn through the injector too. *)
let contention_run ?chaos_seed ?(frames = 4096) () =
  let machine, kernel, sys = boot ~frames ~cpus:4 () in
  let tr = Obs.create ~capacity:(1 lsl 12) () in
  Obs.set_enabled tr true;
  Machine.set_tracer machine tr;
  let fp =
    match chaos_seed with
    | None -> None
    | Some seed ->
      let inj = Fail.create ~seed in
      List.iter
        (fun (site, plan) -> Fail.attach inj ~site plan)
        (Option.value ~default:[] (Fail.profile "flaky"));
      sys.Vm_sys.pager_decorator <- Some (Chaos_pager.wrap sys inj);
      Some (fun () -> Fail.fingerprint inj)
  in
  let task = Kernel.create_task kernel () in
  for cpu = 0 to 3 do
    Kernel.run_task kernel ~cpu task
  done;
  let ps = sys.Vm_sys.page_size in
  let stripe_pages = 32 in
  let stripe = stripe_pages * ps in
  let addr = ok (Vm_user.allocate sys task ~size:(4 * stripe) ~anywhere:true ()) in
  let pmap = pmap_of task in
  (* Clocks, attribution and lock stamps zeroed together: conservation
     is exact from here, and stamps from before the reset are expired. *)
  Machine.reset_clocks machine;
  let sweep () =
    for p = 0 to stripe_pages - 1 do
      for cpu = 0 to 3 do
        Machine.touch machine ~cpu
          ~va:(addr + (cpu * stripe) + (p * ps))
          ~write:true
      done
    done
  in
  sweep ();
  for _ = 1 to 2 do
    for cpu = 0 to 3 do
      Mach_pmap.Pmap_domain.set_current_cpu kernel.Kernel.domain cpu;
      pmap.Mach_pmap.Pmap.remove
        ~start_va:(addr + (cpu * stripe))
        ~end_va:(addr + ((cpu + 1) * stripe))
    done;
    sweep ()
  done;
  let clocks = List.init 4 (fun cpu -> Machine.cycles machine ~cpu) in
  let conserved =
    List.for_all
      (fun cpu -> Obs.attr_cpu_total tr ~cpu = Machine.cycles machine ~cpu)
      [ 0; 1; 2; 3 ]
  in
  let s = sys.Vm_sys.stats in
  ( s.Vm_sys.lock_stalls, s.Vm_sys.lock_stall_cycles, clocks, conserved,
    Obs.attr_grand_total tr Obs.Lock_wait,
    match fp with None -> "" | Some f -> f () )

let test_contention_deterministic () =
  let stalls1, cyc1, clocks1, conserved1, attr1, _ = contention_run () in
  let stalls2, cyc2, clocks2, _, _, _ = contention_run () in
  Alcotest.(check bool) "locks contended" true (stalls1 > 0);
  Alcotest.(check int) "replay-identical stalls" stalls1 stalls2;
  Alcotest.(check int) "replay-identical stall cycles" cyc1 cyc2;
  Alcotest.(check (list int)) "replay-identical clocks" clocks1 clocks2;
  Alcotest.(check bool) "attribution conserved per CPU" true conserved1;
  Alcotest.(check int) "Lock_wait attribution equals the stat" cyc1 attr1

let test_contention_chaos_replay () =
  let run () = contention_run ~chaos_seed:9 ~frames:1280 () in
  let stalls1, cyc1, clocks1, conserved1, _, fp1 = run () in
  let stalls2, cyc2, clocks2, _, _, fp2 = run () in
  Alcotest.(check bool) "locks contended under chaos" true (stalls1 > 0);
  Alcotest.(check int) "replay-identical stalls" stalls1 stalls2;
  Alcotest.(check int) "replay-identical stall cycles" cyc1 cyc2;
  Alcotest.(check (list int)) "replay-identical clocks" clocks1 clocks2;
  Alcotest.(check string) "chaos fingerprint stable" fp1 fp2;
  Alcotest.(check bool) "attribution conserved under chaos" true conserved1

let () =
  Alcotest.run "mpfault"
    [ ( "burst",
        [ Alcotest.test_case "neighbour accounting" `Quick test_burst_counts ]
      );
      ( "contention",
        [ Alcotest.test_case "4-CPU stalls replay identically" `Quick
            test_contention_deterministic;
          Alcotest.test_case "replay holds under chaos" `Quick
            test_contention_chaos_replay ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ burst1_is_legacy; burst_transparent ] ) ]
