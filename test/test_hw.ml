(* Tests for mach_hw: protections, physical memory, TLB and the machine's
   translation/fault/shootdown behaviour. *)

open Mach_hw

(* ---- Prot -------------------------------------------------------------- *)

let prot_gen =
  QCheck2.Gen.(
    map3
      (fun r w x -> Prot.make ~read:r ~write:w ~execute:x)
      bool bool bool)

let prot_qcheck name f = QCheck2.Test.make ~name ~count:200 prot_gen f

let prot_pair_qcheck name f =
  QCheck2.Test.make ~name ~count:200 (QCheck2.Gen.pair prot_gen prot_gen) f

let test_prot_constants () =
  Alcotest.(check bool) "none is none" true (Prot.is_none Prot.none);
  Alcotest.(check bool) "rw not none" false (Prot.is_none Prot.read_write);
  Alcotest.(check string) "pp all" "rwx" (Prot.to_string Prot.all);
  Alcotest.(check string) "pp ro" "r--" (Prot.to_string Prot.read_only);
  Alcotest.(check string) "pp rx" "r-x" (Prot.to_string Prot.read_execute)

let test_prot_allows () =
  Alcotest.(check bool) "ro allows read" true
    (Prot.allows Prot.read_only ~write:false);
  Alcotest.(check bool) "ro rejects write" false
    (Prot.allows Prot.read_only ~write:true);
  Alcotest.(check bool) "rw allows write" true
    (Prot.allows Prot.read_write ~write:true);
  Alcotest.(check bool) "none rejects read" false
    (Prot.allows Prot.none ~write:false)

let test_prot_remove_write () =
  Alcotest.(check bool) "no write" false
    (Prot.allows (Prot.remove_write Prot.all) ~write:true);
  Alcotest.(check bool) "keeps read" true
    (Prot.allows (Prot.remove_write Prot.all) ~write:false)

let prot_lattice_tests =
  [ prot_pair_qcheck "inter is subset of both" (fun (p, q) ->
        Prot.subset (Prot.inter p q) ~of_:p
        && Prot.subset (Prot.inter p q) ~of_:q);
    prot_pair_qcheck "union contains both" (fun (p, q) ->
        Prot.subset p ~of_:(Prot.union p q)
        && Prot.subset q ~of_:(Prot.union p q));
    prot_qcheck "subset reflexive" (fun p -> Prot.subset p ~of_:p);
    prot_qcheck "none subset of all" (fun p ->
        Prot.subset Prot.none ~of_:p && Prot.subset p ~of_:Prot.all);
    prot_pair_qcheck "inter commutative" (fun (p, q) ->
        Prot.equal (Prot.inter p q) (Prot.inter q p));
    prot_qcheck "remove_write idempotent" (fun p ->
        Prot.equal
          (Prot.remove_write (Prot.remove_write p))
          (Prot.remove_write p)) ]

(* ---- Phys_mem ----------------------------------------------------------- *)

let test_phys_rw () =
  let m = Phys_mem.create ~page_size:512 ~frames:8 () in
  Phys_mem.write m 3 ~offset:100 (Bytes.of_string "hello");
  Alcotest.(check string) "read back" "hello"
    (Bytes.to_string (Phys_mem.read m 3 ~offset:100 ~len:5));
  Alcotest.(check char) "byte" 'e' (Phys_mem.read_byte m 3 ~offset:101)

let test_phys_zero_copy () =
  let m = Phys_mem.create ~page_size:128 ~frames:4 () in
  Phys_mem.write m 0 ~offset:0 (Bytes.make 128 'z');
  Phys_mem.copy_frame m ~src:0 ~dst:1;
  Alcotest.(check bool) "copied" true (Phys_mem.frame_equal m 0 1);
  Phys_mem.zero_frame m 0;
  Alcotest.(check char) "zeroed" '\000' (Phys_mem.read_byte m 0 ~offset:50);
  Alcotest.(check bool) "now differ" false (Phys_mem.frame_equal m 0 1)

let test_phys_holes () =
  let m = Phys_mem.create ~page_size:512 ~frames:10 ~holes:[ (4, 6) ] () in
  Alcotest.(check bool) "3 exists" true (Phys_mem.frame_exists m 3);
  Alcotest.(check bool) "5 absent" false (Phys_mem.frame_exists m 5);
  Alcotest.(check int) "present count" 7
    (List.length (Phys_mem.present_frames m));
  Alcotest.check_raises "access hole"
    (Invalid_argument "Phys_mem: access to absent frame") (fun () ->
        ignore (Phys_mem.read m 5 ~offset:0 ~len:1))

let test_phys_bounds () =
  let m = Phys_mem.create ~page_size:64 ~frames:2 () in
  Alcotest.check_raises "overrun"
    (Invalid_argument "Phys_mem.read: out of frame") (fun () ->
        ignore (Phys_mem.read m 0 ~offset:60 ~len:8))

let test_phys_bad_page_size () =
  Alcotest.check_raises "not a power of two"
    (Invalid_argument "Phys_mem.create: page size must be a power of two")
    (fun () -> ignore (Phys_mem.create ~page_size:100 ~frames:2 ()))

(* ---- Tlb ----------------------------------------------------------------- *)

let entry ~asid ~vpn ~pfn = { Tlb.asid; vpn; pfn; prot = Prot.read_write }

let test_tlb_hit_miss () =
  let t = Tlb.create ~capacity:4 in
  Alcotest.(check bool) "miss" true (Tlb.lookup t ~asid:1 ~vpn:5 = None);
  Tlb.insert t (entry ~asid:1 ~vpn:5 ~pfn:9);
  (match Tlb.lookup t ~asid:1 ~vpn:5 with
   | Some e -> Alcotest.(check int) "pfn" 9 e.Tlb.pfn
   | None -> Alcotest.fail "expected hit");
  Alcotest.(check int) "hits" 1 (Tlb.hits t);
  Alcotest.(check int) "misses" 1 (Tlb.misses t)

let test_tlb_fifo_eviction () =
  let t = Tlb.create ~capacity:2 in
  Tlb.insert t (entry ~asid:1 ~vpn:1 ~pfn:1);
  Tlb.insert t (entry ~asid:1 ~vpn:2 ~pfn:2);
  Tlb.insert t (entry ~asid:1 ~vpn:3 ~pfn:3);
  Alcotest.(check bool) "oldest gone" true (Tlb.lookup t ~asid:1 ~vpn:1 = None);
  Alcotest.(check bool) "newest present" true
    (Tlb.lookup t ~asid:1 ~vpn:3 <> None)

let test_tlb_replace_same_key () =
  let t = Tlb.create ~capacity:2 in
  Tlb.insert t (entry ~asid:1 ~vpn:1 ~pfn:1);
  Tlb.insert t (entry ~asid:1 ~vpn:1 ~pfn:42);
  (match Tlb.lookup t ~asid:1 ~vpn:1 with
   | Some e -> Alcotest.(check int) "updated" 42 e.Tlb.pfn
   | None -> Alcotest.fail "expected hit");
  Alcotest.(check int) "one entry" 1 (List.length (Tlb.entries t))

let test_tlb_invalidate () =
  let t = Tlb.create ~capacity:8 in
  Tlb.insert t (entry ~asid:1 ~vpn:1 ~pfn:1);
  Tlb.insert t (entry ~asid:1 ~vpn:2 ~pfn:2);
  Tlb.insert t (entry ~asid:2 ~vpn:1 ~pfn:3);
  Tlb.invalidate_page t ~asid:1 ~vpn:1;
  Alcotest.(check bool) "page gone" true (Tlb.lookup t ~asid:1 ~vpn:1 = None);
  Tlb.invalidate_asid t ~asid:1;
  Alcotest.(check bool) "asid gone" true (Tlb.lookup t ~asid:1 ~vpn:2 = None);
  Alcotest.(check bool) "other asid stays" true
    (Tlb.lookup t ~asid:2 ~vpn:1 <> None);
  Tlb.invalidate_all t;
  Alcotest.(check int) "empty" 0 (List.length (Tlb.entries t))

let test_tlb_zero_capacity () =
  let t = Tlb.create ~capacity:0 in
  Tlb.insert t (entry ~asid:1 ~vpn:1 ~pfn:1);
  Alcotest.(check bool) "never caches" true (Tlb.lookup t ~asid:1 ~vpn:1 = None)

(* ---- Machine ------------------------------------------------------------ *)

(* A tiny translator over a mutable mapping table. *)
let make_translator ~asid table =
  { Translator.asid;
    lookup =
      (fun vpn ->
         match Hashtbl.find_opt table vpn with
         | Some (pfn, prot) -> Translator.Mapped { pfn; prot }
         | None -> Translator.Missing);
    walk_cost = 10 }

let test_machine ?(cpus = 1) () =
  Machine.create ~arch:Arch.uvax2 ~memory_frames:64 ~cpus ()

let test_machine_translate_and_data () =
  let m = test_machine () in
  let table = Hashtbl.create 8 in
  Hashtbl.replace table 0 (7, Prot.read_write);
  Hashtbl.replace table 1 (3, Prot.read_write);
  Machine.set_translator m ~cpu:0 (Some (make_translator ~asid:1 table));
  (* Write spanning the page boundary at 512. *)
  Machine.write m ~cpu:0 ~va:508 (Bytes.of_string "ABCDEFGH");
  Alcotest.(check string) "spanning read" "ABCDEFGH"
    (Bytes.to_string (Machine.read m ~cpu:0 ~va:508 ~len:8));
  (* Data physically landed in frames 7 then 3. *)
  Alcotest.(check string) "frame 7 tail" "ABCD"
    (Bytes.to_string (Phys_mem.read (Machine.phys m) 7 ~offset:508 ~len:4));
  Alcotest.(check string) "frame 3 head" "EFGH"
    (Bytes.to_string (Phys_mem.read (Machine.phys m) 3 ~offset:0 ~len:4))

let test_machine_fault_handler_repairs () =
  let m = test_machine () in
  let table = Hashtbl.create 8 in
  Machine.set_translator m ~cpu:0 (Some (make_translator ~asid:1 table));
  let faults = ref 0 in
  Machine.set_fault_handler m (fun ~cpu:_ f ->
      incr faults;
      Hashtbl.replace table (f.Machine.fault_va / 512) (5, Prot.read_write));
  Machine.write_byte m ~cpu:0 ~va:100 'x';
  Alcotest.(check int) "one fault" 1 !faults;
  Alcotest.(check char) "then works" 'x' (Machine.read_byte m ~cpu:0 ~va:100);
  Alcotest.(check int) "no more faults" 1 !faults

let test_machine_violation_without_handler () =
  let m = test_machine () in
  Machine.set_translator m ~cpu:0
    (Some (make_translator ~asid:1 (Hashtbl.create 1)));
  (try
     ignore (Machine.read_byte m ~cpu:0 ~va:0);
     Alcotest.fail "expected violation"
   with Machine.Memory_violation _ -> ())

let test_machine_unresolved_fault () =
  let m = test_machine () in
  Machine.set_translator m ~cpu:0
    (Some (make_translator ~asid:1 (Hashtbl.create 1)));
  (* A handler that claims success but fixes nothing must not loop
     forever. *)
  Machine.set_fault_handler m (fun ~cpu:_ _ -> ());
  (try
     ignore (Machine.read_byte m ~cpu:0 ~va:0);
     Alcotest.fail "expected Unresolved_fault"
   with Machine.Unresolved_fault _ -> ())

let test_machine_protection_fault_on_write () =
  let m = test_machine () in
  let table = Hashtbl.create 8 in
  Hashtbl.replace table 0 (2, Prot.read_only);
  Machine.set_translator m ~cpu:0 (Some (make_translator ~asid:1 table));
  let upgraded = ref false in
  Machine.set_fault_handler m (fun ~cpu:_ f ->
      Alcotest.(check bool) "protection kind" true
        (f.Machine.fault_kind = `Protection);
      upgraded := true;
      Hashtbl.replace table 0 (2, Prot.read_write));
  ignore (Machine.read_byte m ~cpu:0 ~va:8);
  Alcotest.(check bool) "read ok without fault" false !upgraded;
  Machine.write_byte m ~cpu:0 ~va:8 'w';
  Alcotest.(check bool) "write faulted and repaired" true !upgraded

let test_machine_clock_charging () =
  let m = test_machine ~cpus:2 () in
  Machine.charge m ~cpu:0 100;
  Machine.charge m ~cpu:1 250;
  Alcotest.(check int) "cpu0" 100 (Machine.cycles m ~cpu:0);
  Alcotest.(check int) "cpu1" 250 (Machine.cycles m ~cpu:1);
  Alcotest.(check int) "max" 250 (Machine.max_cycles m);
  Machine.reset_clocks m;
  Alcotest.(check int) "reset" 0 (Machine.max_cycles m)

let test_machine_disk_charge () =
  let m = test_machine () in
  Machine.charge_disk m ~cpu:0 ~write:false ~bytes:4096;
  let s = Machine.stats m in
  Alcotest.(check int) "ops" 1 s.Machine.disk_ops;
  Alcotest.(check int) "bytes" 4096 s.Machine.disk_bytes;
  Alcotest.(check bool) "charged" true (Machine.cycles m ~cpu:0 > 0)

let shootdown_setup strategy =
  let m =
    Machine.create ~arch:Arch.uvax2 ~memory_frames:64 ~cpus:2
      ~shootdown:strategy ()
  in
  let table = Hashtbl.create 8 in
  Hashtbl.replace table 0 (7, Prot.read_write);
  let tr = make_translator ~asid:1 table in
  Machine.set_translator m ~cpu:0 (Some tr);
  Machine.set_translator m ~cpu:1 (Some tr);
  (* Warm both TLBs. *)
  ignore (Machine.read_byte m ~cpu:0 ~va:0);
  ignore (Machine.read_byte m ~cpu:1 ~va:0);
  (m, table)

let test_shootdown_immediate () =
  let m, table = shootdown_setup Machine.Immediate_ipi in
  Hashtbl.remove table 0;
  Machine.shootdown m ~initiator:0 ~targets:[ 0; 1 ]
    (Machine.Flush_page { asid = 1; vpn = 0 }) ~urgent:false;
  Alcotest.(check int) "one IPI" 1 (Machine.stats m).Machine.ipis;
  (* CPU 1's TLB entry is gone: the next access faults. *)
  Machine.set_fault_handler m (fun ~cpu:_ _ ->
      Hashtbl.replace table 0 (7, Prot.read_write));
  ignore (Machine.read_byte m ~cpu:1 ~va:0);
  Alcotest.(check int) "faulted" 1 (Machine.stats m).Machine.faults

let test_shootdown_deferred_waits () =
  let m, _table = shootdown_setup Machine.Deferred_timer in
  let before = Machine.cycles m ~cpu:0 in
  Machine.shootdown m ~initiator:0 ~targets:[ 0; 1 ] (Machine.Flush_asid 1)
    ~urgent:false;
  Alcotest.(check int) "no IPIs" 0 (Machine.stats m).Machine.ipis;
  Alcotest.(check bool) "initiator waited for the tick" true
    (Machine.cycles m ~cpu:0 - before > 1000);
  Alcotest.(check int) "flush applied at tick" 0
    (Machine.pending_flushes m ~cpu:1)

let test_shootdown_lazy_stale () =
  let m, _table = shootdown_setup Machine.Lazy_local in
  Machine.shootdown m ~initiator:0 ~targets:[ 0; 1 ]
    (Machine.Flush_page { asid = 1; vpn = 0 }) ~urgent:false;
  Alcotest.(check int) "pending on remote" 1
    (Machine.pending_flushes m ~cpu:1);
  (* CPU 1 still hits its stale entry; the machine counts it. *)
  ignore (Machine.read_byte m ~cpu:1 ~va:0);
  Alcotest.(check int) "stale use counted" 1
    (Machine.stats m).Machine.stale_tlb_uses;
  Machine.tick m;
  Alcotest.(check int) "drained" 0 (Machine.pending_flushes m ~cpu:1);
  Alcotest.(check bool) "deferred flush counted" true
    ((Machine.stats m).Machine.deferred_flushes >= 1)

let test_shootdown_urgent_overrides_lazy () =
  let m, _table = shootdown_setup Machine.Lazy_local in
  Machine.shootdown m ~initiator:0 ~targets:[ 0; 1 ]
    (Machine.Flush_page { asid = 1; vpn = 0 }) ~urgent:true;
  Alcotest.(check int) "IPI despite lazy strategy" 1
    (Machine.stats m).Machine.ipis;
  Alcotest.(check int) "nothing pending" 0 (Machine.pending_flushes m ~cpu:1)

let test_rmw_bug_reporting () =
  (* On the NS32082, a write that protection-faults is reported as a
     read. *)
  let m = Machine.create ~arch:Arch.ns32082 ~memory_frames:64 () in
  let table = Hashtbl.create 8 in
  Hashtbl.replace table 0 (1, Prot.read_only);
  Machine.set_translator m ~cpu:0 (Some (make_translator ~asid:1 table));
  let reported = ref None in
  Machine.set_fault_handler m (fun ~cpu:_ f ->
      reported := Some f.Machine.fault_write;
      Hashtbl.replace table 0 (1, Prot.read_write));
  Machine.write_byte m ~cpu:0 ~va:4 'w';
  Alcotest.(check (option bool)) "write reported as read" (Some false)
    !reported

let test_no_address_space () =
  let m = test_machine () in
  (try
     ignore (Machine.read_byte m ~cpu:0 ~va:0);
     Alcotest.fail "expected violation"
   with Machine.Memory_violation { reason; _ } ->
     Alcotest.(check string) "reason" "no address space" reason)

let test_tlb_used_on_second_access () =
  let m = test_machine () in
  let table = Hashtbl.create 8 in
  Hashtbl.replace table 0 (7, Prot.read_write);
  Machine.set_translator m ~cpu:0 (Some (make_translator ~asid:1 table));
  ignore (Machine.read_byte m ~cpu:0 ~va:0);
  let misses = Machine.tlb_misses m in
  ignore (Machine.read_byte m ~cpu:0 ~va:4);
  Alcotest.(check int) "no new misses" misses (Machine.tlb_misses m);
  Alcotest.(check bool) "hit recorded" true (Machine.tlb_hits m >= 1)

(* ---- Arch sanity ---------------------------------------------------------- *)

let test_arch_catalogue () =
  Alcotest.(check int) "seven architectures" 7 (List.length Arch.all);
  let names = List.map (fun a -> a.Arch.name) Arch.all in
  Alcotest.(check int) "unique names" (List.length names)
    (List.length (List.sort_uniq compare names));
  List.iter
    (fun a ->
       let p = a.Arch.hw_page_size in
       Alcotest.(check bool) (a.Arch.name ^ ": page power of two") true
         (p > 0 && p land (p - 1) = 0);
       Alcotest.(check bool) (a.Arch.name ^ ": positive clock") true
         (a.Arch.cycles_per_ms > 0);
       let c = a.Arch.cost in
       Alcotest.(check bool) (a.Arch.name ^ ": sane costs") true
         (c.Arch.mem_op > 0 && c.Arch.move_16b > 0
          && c.Arch.fault_overhead > 0 && c.Arch.disk_latency > 0))
    Arch.all

let test_cycles_to_ms () =
  Alcotest.(check (float 0.001)) "1 ms on uVAX II" 1.0
    (Arch.cycles_to_ms Arch.uvax2 Arch.uvax2.Arch.cycles_per_ms);
  Alcotest.(check (float 0.001)) "half ms" 0.5
    (Arch.cycles_to_ms Arch.vax8650 (Arch.vax8650.Arch.cycles_per_ms / 2))

let test_machine_zero_len_access () =
  let m = test_machine () in
  let table = Hashtbl.create 4 in
  Hashtbl.replace table 0 (1, Prot.read_write);
  Machine.set_translator m ~cpu:0 (Some (make_translator ~asid:1 table));
  Alcotest.(check int) "empty read" 0
    (Bytes.length (Machine.read m ~cpu:0 ~va:0 ~len:0));
  Machine.write m ~cpu:0 ~va:0 (Bytes.create 0)

let () =
  Alcotest.run "mach_hw"
    [ ( "prot",
        [ Alcotest.test_case "constants" `Quick test_prot_constants;
          Alcotest.test_case "allows" `Quick test_prot_allows;
          Alcotest.test_case "remove_write" `Quick test_prot_remove_write ]
        @ List.map QCheck_alcotest.to_alcotest prot_lattice_tests );
      ( "phys_mem",
        [ Alcotest.test_case "read/write" `Quick test_phys_rw;
          Alcotest.test_case "zero/copy frames" `Quick test_phys_zero_copy;
          Alcotest.test_case "holes" `Quick test_phys_holes;
          Alcotest.test_case "bounds" `Quick test_phys_bounds;
          Alcotest.test_case "bad page size" `Quick test_phys_bad_page_size ]
      );
      ( "tlb",
        [ Alcotest.test_case "hit/miss" `Quick test_tlb_hit_miss;
          Alcotest.test_case "fifo eviction" `Quick test_tlb_fifo_eviction;
          Alcotest.test_case "replace same key" `Quick
            test_tlb_replace_same_key;
          Alcotest.test_case "invalidate" `Quick test_tlb_invalidate;
          Alcotest.test_case "zero capacity" `Quick test_tlb_zero_capacity ]
      );
      ( "machine",
        [ Alcotest.test_case "translate + data" `Quick
            test_machine_translate_and_data;
          Alcotest.test_case "fault handler repairs" `Quick
            test_machine_fault_handler_repairs;
          Alcotest.test_case "violation without handler" `Quick
            test_machine_violation_without_handler;
          Alcotest.test_case "unresolved fault detected" `Quick
            test_machine_unresolved_fault;
          Alcotest.test_case "protection fault on write" `Quick
            test_machine_protection_fault_on_write;
          Alcotest.test_case "clock charging" `Quick
            test_machine_clock_charging;
          Alcotest.test_case "disk charge" `Quick test_machine_disk_charge;
          Alcotest.test_case "no address space" `Quick test_no_address_space;
          Alcotest.test_case "TLB used on second access" `Quick
            test_tlb_used_on_second_access;
          Alcotest.test_case "rmw bug reporting" `Quick test_rmw_bug_reporting
        ] );
      ( "arch",
        [ Alcotest.test_case "catalogue" `Quick test_arch_catalogue;
          Alcotest.test_case "cycles_to_ms" `Quick test_cycles_to_ms;
          Alcotest.test_case "zero-length access" `Quick
            test_machine_zero_len_access ] );
      ( "shootdown",
        [ Alcotest.test_case "immediate IPI" `Quick test_shootdown_immediate;
          Alcotest.test_case "deferred waits for tick" `Quick
            test_shootdown_deferred_waits;
          Alcotest.test_case "lazy leaves stale entries" `Quick
            test_shootdown_lazy_stale;
          Alcotest.test_case "urgent overrides lazy" `Quick
            test_shootdown_urgent_overrides_lazy ] ) ]
