(* Tests for memory-pressure resilience: the free-page reserves,
   allocation backpressure against the pageout daemon, swap exhaustion,
   the OOM policy's victim choice and its KERN_MEMORY_ERROR surface, and
   the KERN_NO_SPACE paths of the address map. *)

open Mach_hw
open Mach_core

let boot ?(frames = 256) ?(cpus = 1) () =
  (* 256 frames x 512 B, multiple 8 => 16 machine-independent pages. *)
  let machine = Machine.create ~arch:Arch.uvax2 ~memory_frames:frames ~cpus () in
  let kernel = Kernel.create ~page_multiple:8 machine in
  (machine, kernel, Kernel.sys kernel)

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.fail (Kr.to_string e)

(* ---- watermarks and the reserve floor --------------------------------- *)

let test_reserve_floor () =
  let _machine, _kernel, sys = boot () in
  Alcotest.(check bool) "watermarks ordered" true
    (sys.Vm_sys.free_reserved <= sys.Vm_sys.free_min
     && sys.Vm_sys.free_min <= sys.Vm_sys.free_target);
  let free0 = Resident.free_count sys.Vm_sys.resident in
  (* No tasks exist, so nothing is reclaimable and no OOM victim is
     registered: normal allocations must hand out exactly the pages
     above the reserve, then fail rather than touch it. *)
  for _ = 1 to free0 - sys.Vm_sys.free_reserved do
    ignore (Vm_sys.grab_page sys)
  done;
  Alcotest.(check int) "stopped at the reserve" sys.Vm_sys.free_reserved
    (Resident.free_count sys.Vm_sys.resident);
  (match Vm_sys.grab_page sys with
   | _ -> Alcotest.fail "normal allocation dipped into the reserve"
   | exception Vm_sys.Out_of_memory -> ());
  Alcotest.(check bool) "the wait was counted" true
    (sys.Vm_sys.stats.Vm_sys.alloc_waits >= 1);
  (* The pageout/cleaning path may drain the reserve to zero... *)
  for _ = 1 to sys.Vm_sys.free_reserved do
    ignore (Vm_sys.grab_page ~reserve:true sys)
  done;
  Alcotest.(check int) "reserve drained" 0
    (Resident.free_count sys.Vm_sys.resident);
  (* ...but not conjure pages that do not exist. *)
  match Vm_sys.grab_page ~reserve:true sys with
  | _ -> Alcotest.fail "allocated from an empty machine"
  | exception Vm_sys.Out_of_memory -> ()

(* ---- swap exhaustion and requeue escalation --------------------------- *)

let test_swap_exhaustion_escalates () =
  let _machine, kernel, sys = boot () in
  let machine = Kernel.machine kernel in
  let task = Kernel.create_task kernel ~name:"dirty" () in
  Kernel.run_task kernel ~cpu:0 task;
  let ps = sys.Vm_sys.page_size in
  let a = ok (Vm_user.allocate sys task ~size:(4 * ps) ~anywhere:true ()) in
  for i = 0 to 3 do
    Machine.write_byte machine ~cpu:0 ~va:(a + (i * ps)) 'd'
  done;
  (* A zero-byte swap pool: every pageout write is refused, the page
     stays dirty and bounces, and each bounce past the requeue limit
     re-asserts the pressure state. *)
  Vm_sys.set_swap_capacity sys (Some 0);
  let p =
    match Vm_map.resolve_object_at sys (Task.map task) ~va:a with
    | Some (o, _) -> Option.get (Vm_object.lookup_resident sys o ~offset:0)
    | None -> Alcotest.fail "no object"
  in
  for _ = 1 to 2 + sys.Vm_sys.pageout_requeue_limit do
    Vm_pageout.deactivate_some sys ~count:16;
    Vm_pageout.run sys ~wanted:16
  done;
  Alcotest.(check bool) "swap-full failures counted" true
    (sys.Vm_sys.stats.Vm_sys.swap_full_failures >= 1);
  Alcotest.(check bool) "pressure state entered" true sys.Vm_sys.mem_pressure;
  Alcotest.(check bool) "requeues accumulated" true
    (p.Types.pg_requeues >= 1);
  (* Give the pool room again: the next daemon pass cleans the page,
     resets its requeue count and clears the pressure state. *)
  Vm_sys.set_swap_capacity sys (Some (64 * ps));
  Vm_pageout.deactivate_some sys ~count:16;
  Vm_pageout.run sys ~wanted:16;
  Alcotest.(check bool) "pageout succeeded" true
    (sys.Vm_sys.stats.Vm_sys.pageouts >= 1);
  Alcotest.(check bool) "pressure cleared" false sys.Vm_sys.mem_pressure;
  Alcotest.(check int) "requeue count reset" 0 p.Types.pg_requeues

(* ---- swap accounting --------------------------------------------------- *)

let test_swap_released_at_terminate () =
  let _machine, kernel, sys = boot () in
  let machine = Kernel.machine kernel in
  let task = Kernel.create_task kernel ~name:"swapper" () in
  Kernel.run_task kernel ~cpu:0 task;
  let ps = sys.Vm_sys.page_size in
  Vm_sys.set_swap_capacity sys (Some (64 * ps));
  (* Dirty more than memory, so eviction pushes pages to the pool. *)
  let size = (Resident.free_count sys.Vm_sys.resident + 16) * ps in
  let a = ok (Vm_user.allocate sys task ~size ~anywhere:true ()) in
  for i = 0 to (size / ps) - 1 do
    Machine.write_byte machine ~cpu:0 ~va:(a + (i * ps)) 'd'
  done;
  Alcotest.(check bool) "swap pool in use" true (sys.Vm_sys.swap_used > 0);
  Kernel.terminate_task kernel ~cpu:0 task;
  Alcotest.(check int) "pool credited back at termination" 0
    sys.Vm_sys.swap_used

(* ---- the OOM policy ---------------------------------------------------- *)

let test_oom_kills_largest_spares_faulter () =
  let machine, kernel, sys = boot ~cpus:2 () in
  let ps = sys.Vm_sys.page_size in
  (* Nearly no swap: once memory fills with dirty anonymous pages the
     daemon cannot clean and the OOM policy is the only way forward. *)
  Vm_sys.set_swap_capacity sys (Some (2 * ps));
  (* The hog dirties most of memory first — everything above the free
     target, so its own setup never even triggers reclaim... *)
  let hog_pages =
    Resident.free_count sys.Vm_sys.resident - sys.Vm_sys.free_target - 2
  in
  let hog = Kernel.create_task kernel ~name:"hog" () in
  Kernel.run_task kernel ~cpu:1 hog;
  let ha =
    ok (Vm_user.allocate sys hog ~size:(hog_pages * ps) ~anywhere:true ())
  in
  for i = 0 to hog_pages - 1 do
    Machine.write_byte machine ~cpu:1 ~va:(ha + (i * ps)) 'H'
  done;
  Alcotest.(check bool) "hog is the big anonymous holder" true
    (Task.anon_resident hog >= 10);
  (* ...then a small task needs memory.  Its faults are exempt from
     victim choice, so the policy must kill the hog, not the faulter. *)
  let small = Kernel.create_task kernel ~name:"small" () in
  Kernel.run_task kernel ~cpu:0 small;
  let sa = ok (Vm_user.allocate sys small ~size:(8 * ps) ~anywhere:true ()) in
  for i = 0 to 7 do
    Machine.write_byte machine ~cpu:0 ~va:(sa + (i * ps))
      (Char.chr (Char.code 'a' + i))
  done;
  Alcotest.(check int) "exactly one kill" 1 sys.Vm_sys.stats.Vm_sys.oom_kills;
  Alcotest.(check bool) "the hog was the victim" true
    hog.Task.task_oom_killed;
  Alcotest.(check bool) "the faulter survived" false
    small.Task.task_oom_killed;
  (* The survivor's data is intact and the kernel still serves it. *)
  for i = 0 to 7 do
    Alcotest.(check char)
      (Printf.sprintf "survivor page %d" i)
      (Char.chr (Char.code 'a' + i))
      (Machine.read_byte machine ~cpu:0 ~va:(sa + (i * ps)))
  done;
  (* The corpse answers KERN_MEMORY_ERROR end to end: through Vm_user... *)
  (match Vm_user.write sys hog ~addr:ha ~data:(Bytes.of_string "x") with
   | Error Kr.Memory_error -> ()
   | Ok () -> Alcotest.fail "write to an OOM-killed task succeeded"
   | Error e -> Alcotest.fail ("expected KERN_MEMORY_ERROR, got " ^ Kr.to_string e));
  (match Vm_user.allocate sys hog ~size:ps ~anywhere:true () with
   | Error Kr.Memory_error -> ()
   | Ok _ -> Alcotest.fail "allocate on an OOM-killed task succeeded"
   | Error e -> Alcotest.fail ("expected KERN_MEMORY_ERROR, got " ^ Kr.to_string e));
  (* ...and through the hardware fault path: the hog is still current on
     CPU 1, and its next touch traps with the same code. *)
  (match Machine.touch machine ~cpu:1 ~va:ha ~write:true with
   | () -> Alcotest.fail "touch on an OOM-killed task succeeded"
   | exception Machine.Memory_violation { reason; _ } ->
     Alcotest.(check string) "fault reason" (Kr.to_string Kr.Memory_error)
       reason);
  (* Statistics surface the episode. *)
  let st = Vm_user.statistics sys in
  Alcotest.(check int) "vs_oom_kills" 1 st.Vm_user.vs_oom_kills;
  Alcotest.(check bool) "vs_swap_full_failures" true
    (st.Vm_user.vs_swap_full_failures >= 1);
  Alcotest.(check (option int)) "vs_swap_capacity" (Some (2 * ps))
    st.Vm_user.vs_swap_capacity

(* ---- KERN_NO_SPACE from the address map -------------------------------- *)

let test_map_no_space () =
  let _machine, kernel, sys = boot () in
  let task = Kernel.create_task kernel ~name:"mapper" () in
  Kernel.run_task kernel ~cpu:0 task;
  let ps = sys.Vm_sys.page_size in
  let a = ok (Vm_user.allocate sys task ~size:(4 * ps) ~anywhere:true ()) in
  (* A fixed-address allocation over an occupied range. *)
  (match Vm_user.allocate sys task ~at:a ~size:ps ~anywhere:false () with
   | Error Kr.No_space -> ()
   | Ok _ -> Alcotest.fail "overlapping fixed allocation succeeded"
   | Error e -> Alcotest.fail ("expected KERN_NO_SPACE, got " ^ Kr.to_string e));
  (* find_space exhaustion: no hole can hold the whole user space. *)
  let arch = Machine.arch (Kernel.machine kernel) in
  (match
     Vm_user.allocate sys task ~size:arch.Arch.user_va_limit ~anywhere:true ()
   with
   | Error Kr.No_space -> ()
   | Ok _ -> Alcotest.fail "impossible allocation succeeded"
   | Error e -> Alcotest.fail ("expected KERN_NO_SPACE, got " ^ Kr.to_string e));
  (* insert_copy into an occupied range. *)
  let c = ok (Vm_map.extract_copy sys (Task.map task) ~addr:a ~size:ps) in
  (match Vm_map.insert_copy sys (Task.map task) c ~at:a () with
   | Error Kr.No_space -> Vm_map.discard_copy sys c
   | Ok _ -> Alcotest.fail "insert_copy over an occupied range succeeded"
   | Error e -> Alcotest.fail ("expected KERN_NO_SPACE, got " ^ Kr.to_string e))

(* KERN_NO_SPACE survives the syscall wire format: the code crosses the
   message boundary and decodes back to the same value. *)
let test_no_space_over_ipc () =
  let _machine, kernel, sys = boot () in
  let task = Kernel.create_task kernel ~name:"wire" () in
  Kernel.run_task kernel ~cpu:0 task;
  let ps = sys.Vm_sys.page_size in
  let port = Mach_ipc.Syscall_server.task_port sys task in
  let reply =
    Mach_ipc.Syscall_server.call sys port
      (Mach_ipc.Ipc.message "vm_allocate" ~ints:[ 4 * ps; 1; 0 ])
  in
  let a =
    match reply.Mach_ipc.Ipc.msg_ints with
    | [ 0; addr ] -> addr
    | _ -> Alcotest.fail "vm_allocate over IPC failed"
  in
  let reply =
    Mach_ipc.Syscall_server.call sys port
      (Mach_ipc.Ipc.message "vm_allocate" ~ints:[ ps; 0; a ])
  in
  (match Mach_ipc.Syscall_server.kr_of_reply reply with
   | Error Kr.No_space -> ()
   | Ok () -> Alcotest.fail "overlapping allocation succeeded over IPC"
   | Error e ->
     Alcotest.fail ("expected KERN_NO_SPACE over IPC, got " ^ Kr.to_string e));
  (* The wire code for KERN_NO_SPACE is pinned: a peer built against
     this protocol reads 2, and 2 only, as no-space. *)
  match reply.Mach_ipc.Ipc.msg_ints with
  | 2 :: _ -> ()
  | ints ->
    Alcotest.fail
      (Printf.sprintf "KERN_NO_SPACE no longer rides wire code 2 (got %s)"
         (String.concat "," (List.map string_of_int ints)))

let () =
  Alcotest.run "pressure"
    [ ("reserves",
       [ Alcotest.test_case "grab_page honours the reserve floor" `Quick
           test_reserve_floor ]);
      ("swap",
       [ Alcotest.test_case "exhaustion escalates to the pressure state"
           `Quick test_swap_exhaustion_escalates;
         Alcotest.test_case "pool credited back at task termination" `Quick
           test_swap_released_at_terminate ]);
      ("oom",
       [ Alcotest.test_case "kills the largest task, spares the faulter"
           `Quick test_oom_kills_largest_spares_faulter ]);
      ("no_space",
       [ Alcotest.test_case "map allocation paths report KERN_NO_SPACE"
           `Quick test_map_no_space;
         Alcotest.test_case "KERN_NO_SPACE decodes across the syscall wire"
           `Quick test_no_space_over_ipc ]) ]
