(* Randomised whole-system stress: a deterministic PRNG drives a mixed
   workload (allocate, touch, fork, protect, deallocate, terminate,
   pageout pressure) over several tasks, with the Vm_debug invariant
   checker run between phases and a tracked set of values verified at the
   end.  Exercises interactions no unit test reaches. *)

open Mach_hw
open Mach_core
open Mach_util


(* A region is either private to its task lineage (copy-on-write across
   forks, so each task tracks its own expectations) or shared (writes are
   visible to every task holding the region, so expectations live in a
   table common to the sharing group). *)
type region = {
  r_base : int;
  r_size : int;
  r_shared : (int, char) Hashtbl.t option; (* Some = group expectations *)
}

type live_task = {
  lt_task : Task.t;
  mutable lt_regions : region list;
  (* expected byte at the base of each written page of private regions *)
  lt_expect : (int, char) Hashtbl.t;
}

let run_stress ?(cpus = 1) ?(traced = false) ~seed ~ops ~frames ~arch
    ~page_multiple () =
  let machine = Machine.create ~arch ~memory_frames:frames ~cpus () in
  let tracer =
    if traced then begin
      let tr = Mach_obs.Obs.create ~capacity:4096 () in
      Mach_obs.Obs.set_enabled tr true;
      Machine.set_tracer machine tr;
      Some tr
    end
    else None
  in
  let kernel = Kernel.create ~page_multiple machine in
  let sys = Kernel.sys kernel in
  let rng = Det_rng.create ~seed in
  let tasks : live_task list ref = ref [] in
  let spawn () =
    let t = Kernel.create_task kernel () in
    let lt =
      { lt_task = t; lt_regions = []; lt_expect = Hashtbl.create 16 }
    in
    tasks := lt :: !tasks;
    lt
  in
  let pick_task () =
    match !tasks with
    | [] -> spawn ()
    | ts -> List.nth ts (Det_rng.int rng (List.length ts))
  in
  let ps = Kernel.page_size kernel in
  let letter () = Char.chr (Char.code 'a' + Det_rng.int rng 26) in
  let all_maps () = List.map (fun lt -> Task.map lt.lt_task) !tasks in
  let expect_table lt r =
    match r.r_shared with Some t -> t | None -> lt.lt_expect
  in
  for op_idx = 1 to ops do
    let cpu = op_idx mod cpus in
    let lt = pick_task () in
    Kernel.run_task kernel ~cpu lt.lt_task;
    match Det_rng.int rng 100 with
    | n when n < 25 -> (
        (* allocate a small private region *)
        let size = (1 + Det_rng.int rng 4) * ps in
        match Vm_user.allocate sys lt.lt_task ~size ~anywhere:true () with
        | Ok base ->
          lt.lt_regions <-
            { r_base = base; r_size = size; r_shared = None }
            :: lt.lt_regions
        | Error _ -> ())
    | n when n < 32 -> (
        (* make a private region shared-inheritance for future forks *)
        match
          List.filter (fun r -> r.r_shared = None) lt.lt_regions
        with
        | [] -> ()
        | rs ->
          let r = List.nth rs (Det_rng.int rng (List.length rs)) in
          (match
             Vm_user.inherit_ sys lt.lt_task ~addr:r.r_base ~size:r.r_size
               Inheritance.Shared
           with
           | Ok () ->
             (* expectations move to a fresh group table *)
             let group = Hashtbl.create 8 in
             Hashtbl.iter
               (fun va c ->
                  if va >= r.r_base && va < r.r_base + r.r_size then begin
                    Hashtbl.replace group va c;
                    Hashtbl.remove lt.lt_expect va
                  end)
               (Hashtbl.copy lt.lt_expect);
             lt.lt_regions <-
               List.map
                 (fun r' ->
                    if r' == r then { r with r_shared = Some group }
                    else r')
                 lt.lt_regions
           | Error _ -> ()))
    | n when n < 62 -> (
        (* write a page in some region and remember what we wrote *)
        match lt.lt_regions with
        | [] -> ()
        | rs ->
          let r = List.nth rs (Det_rng.int rng (List.length rs)) in
          let page = Det_rng.int rng (r.r_size / ps) in
          let va = r.r_base + (page * ps) in
          let c = letter () in
          Machine.write_byte machine ~cpu ~va c;
          Hashtbl.replace (expect_table lt r) va c)
    | n when n < 72 -> (
        (* read back a tracked page of some region right now *)
        match lt.lt_regions with
        | [] -> ()
        | rs ->
          let r = List.nth rs (Det_rng.int rng (List.length rs)) in
          let table = expect_table lt r in
          let vas = Hashtbl.fold (fun va _ acc -> va :: acc) table [] in
          (match vas with
           | [] -> ()
           | _ ->
             let va = List.nth vas (Det_rng.int rng (List.length vas)) in
             let expected = Hashtbl.find table va in
             let got = Machine.read_byte machine ~cpu ~va in
             if got <> expected then
               Alcotest.failf "stress: read %c expected %c at 0x%x" got
                 expected va))
    | n when n < 82 ->
      (* fork: private regions copy, shared regions share their group *)
      if List.length !tasks < 8 then begin
        let child = Kernel.fork_task kernel ~cpu lt.lt_task in
        let clt =
          { lt_task = child; lt_regions = lt.lt_regions;
            lt_expect = Hashtbl.copy lt.lt_expect }
        in
        tasks := clt :: !tasks
      end
    | n when n < 88 -> (
        (* protect a region read-only, then restore (should not lose
           data) *)
        match lt.lt_regions with
        | [] -> ()
        | r :: _ ->
          (match
             Vm_user.protect sys lt.lt_task ~addr:r.r_base ~size:r.r_size
               ~set_max:false ~prot:Prot.read_only
           with
           | Ok () | Error _ -> ());
          (match
             Vm_user.protect sys lt.lt_task ~addr:r.r_base ~size:r.r_size
               ~set_max:false ~prot:Prot.read_write
           with
           | Ok () | Error _ -> ()))
    | n when n < 93 -> (
        (* deallocate a whole region (this task's view only) *)
        match lt.lt_regions with
        | [] -> ()
        | r :: rest ->
          (match
             Vm_user.deallocate sys lt.lt_task ~addr:r.r_base ~size:r.r_size
           with
           | Ok () | Error _ -> ());
          lt.lt_regions <- rest;
          if r.r_shared = None then
            Hashtbl.iter
              (fun va _ ->
                 if va >= r.r_base && va < r.r_base + r.r_size then
                   Hashtbl.remove lt.lt_expect va)
              (Hashtbl.copy lt.lt_expect))
    | n when n < 96 ->
      (* pageout pressure *)
      Vm_pageout.deactivate_some sys ~count:8;
      Vm_pageout.run sys ~wanted:4
    | _ ->
      (* terminate a task (keep at least one) *)
      if List.length !tasks > 1 then begin
        Kernel.terminate_task kernel ~cpu lt.lt_task;
        tasks := List.filter (fun x -> not (x == lt)) !tasks
      end
  done;
  (* Invariants hold at the end... *)
  Vm_debug.assert_ok sys ~maps:(all_maps ());
  (* ...and every tracked byte reads back as last written: private bytes
     per task, shared bytes through every task still holding the
     region. *)
  List.iter
    (fun lt ->
       Kernel.run_task kernel ~cpu:0 lt.lt_task;
       Hashtbl.iter
         (fun va expected ->
            let got = Machine.read_byte machine ~cpu:0 ~va in
            if got <> expected then
              Alcotest.failf "final check: read %c expected %c at 0x%x" got
                expected va)
         lt.lt_expect;
       List.iter
         (fun r ->
            match r.r_shared with
            | None -> ()
            | Some table ->
              Hashtbl.iter
                (fun va expected ->
                   let got = Machine.read_byte machine ~cpu:0 ~va in
                   if got <> expected then
                     Alcotest.failf
                       "final shared check: read %c expected %c at 0x%x" got
                       expected va)
                table)
         lt.lt_regions)
    !tasks;
  List.iter (fun lt -> Kernel.terminate_task kernel ~cpu:0 lt.lt_task) !tasks;
  (* When traced, the event stream must be internally consistent: every
     fault bracketed, and the per-resolution latency counts covering
     every fault the machine saw. *)
  match tracer with
  | None -> ()
  | Some tr ->
    let open Mach_obs in
    Alcotest.(check bool) "trace recorded events" true
      (Obs.events_seen tr > 0);
    Alcotest.(check int) "balanced fault begin/end"
      (Obs.count tr (Obs.Fault_begin { va = 0; write = false }))
      (Obs.count tr
         (Obs.Fault_end
            { va = 0; resolution = Obs.Fault_error; cycles = 0 }));
    Alcotest.(check int) "no fault left open" 0 (Obs.open_faults tr);
    let hist_total =
      List.fold_left
        (fun acc r -> acc + Hist.count (Obs.fault_latency tr r))
        0 Obs.fault_resolutions
    in
    Alcotest.(check int) "fault histograms cover all faults"
      (Machine.stats machine).Machine.faults hist_total

let stress_case ?cpus ?traced name ~seed ~arch ~page_multiple ~frames =
  Alcotest.test_case name `Slow (fun () ->
      run_stress ?cpus ?traced ~seed ~ops:400 ~frames ~arch ~page_multiple ())

let test_invariants_detect_breakage () =
  (* Sanity of the checker itself: a deliberately corrupted map is
     reported. *)
  let machine = Machine.create ~arch:Arch.uvax2 ~memory_frames:256 () in
  let kernel = Kernel.create ~page_multiple:8 machine in
  let sys = Kernel.sys kernel in
  let t = Kernel.create_task kernel () in
  Kernel.run_task kernel ~cpu:0 t;
  (match Vm_user.allocate sys t ~size:8192 ~anywhere:true () with
   | Ok a ->
     Machine.write_byte machine ~cpu:0 ~va:a 'x';
     (* Corrupt: shrink max below current without fixing current. *)
     (match Vm_map.find (Task.map t) ~va:a with
      | Some e -> e.Types.e_max_prot <- Prot.none
      | None -> Alcotest.fail "entry missing");
     (match Vm_debug.check_map sys (Task.map t) with
      | [] -> Alcotest.fail "checker missed the corruption"
      | _ -> ())
   | Error e -> Alcotest.fail (Kr.to_string e))

let test_dump_is_readable () =
  let machine = Machine.create ~arch:Arch.uvax2 ~memory_frames:512 () in
  let kernel = Kernel.create ~page_multiple:8 machine in
  let sys = Kernel.sys kernel in
  let t = Kernel.create_task kernel () in
  Kernel.run_task kernel ~cpu:0 t;
  (match Vm_user.allocate sys t ~size:8192 ~anywhere:true () with
   | Ok a ->
     Machine.write_byte machine ~cpu:0 ~va:a 'd';
     ignore (Kernel.fork_task kernel ~cpu:0 t);
     let dump = Vm_debug.dump_map sys (Task.map t) in
     let contains needle =
       let n = String.length needle and h = String.length dump in
       let rec loop i =
         i + n <= h && (String.sub dump i n = needle || loop (i + 1))
       in
       loop 0
     in
     Alcotest.(check bool) "shows protections" true (contains "rw-/rwx");
     Alcotest.(check bool) "shows cow" true (contains "cow");
     Alcotest.(check bool) "shows the object" true (contains "obj")
   | Error e -> Alcotest.fail (Kr.to_string e))

let () =
  Alcotest.run "stress"
    [ ( "random workloads",
        [ stress_case "uVAX II, 4K pages, ample memory" ~seed:1
            ~arch:Arch.uvax2 ~page_multiple:8 ~frames:4096;
          stress_case "uVAX II, tight memory (pageout)" ~seed:2
            ~arch:Arch.uvax2 ~page_multiple:8 ~frames:512;
          stress_case "RT PC (alias evictions)" ~seed:3 ~arch:Arch.rt_pc
            ~page_multiple:2 ~frames:1024;
          stress_case "SUN 3 (context steals)" ~seed:4 ~arch:Arch.sun3_160
            ~page_multiple:1 ~frames:512;
          stress_case "NS32082 (rmw bug)" ~seed:5 ~arch:Arch.ns32082
            ~page_multiple:8 ~frames:4096;
          stress_case "RP3 TLB-only (reload storms)" ~seed:6
            ~arch:Arch.rp3_tlb ~page_multiple:1 ~frames:1024;
          stress_case "hardware page == mach page" ~seed:7 ~arch:Arch.uvax2
            ~page_multiple:1 ~frames:2048;
          stress_case "two CPUs, migrating tasks" ~seed:8 ~cpus:2
            ~arch:Arch.uvax2 ~page_multiple:8 ~frames:4096;
          stress_case "four CPUs on the NS32082" ~seed:9 ~cpus:4
            ~arch:Arch.ns32082 ~page_multiple:8 ~frames:4096;
          stress_case "uVAX II with tracing (observability)" ~seed:10
            ~traced:true ~arch:Arch.uvax2 ~page_multiple:8 ~frames:1024 ] );
      ( "checker",
        [ Alcotest.test_case "detects corruption" `Quick
            test_invariants_detect_breakage;
          Alcotest.test_case "dump is readable" `Quick
            test_dump_is_readable ] ) ]
