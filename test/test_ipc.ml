(* Tests for ports and messages: queueing, inline data, out-of-line
   copy-on-write transfer and its isolation guarantees. *)

open Mach_hw
open Mach_core
open Mach_ipc

let kb = 1024

let boot () =
  let machine = Machine.create ~arch:Arch.vax8200 ~memory_frames:8192 () in
  let kernel = Kernel.create ~page_multiple:8 machine in
  (machine, kernel, Kernel.sys kernel)

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.fail (Kr.to_string e)

let new_task kernel ~cpu =
  let t = Kernel.create_task kernel () in
  Kernel.run_task kernel ~cpu t;
  t

let test_port_fifo () =
  let _, _, sys = boot () in
  let p = Ipc.create_port ~name:"q" () in
  Ipc.send sys p (Ipc.message "first");
  Ipc.send sys p (Ipc.message "second");
  Alcotest.(check int) "queued" 2 (Ipc.pending p);
  (match Ipc.receive sys p with
   | Some m -> Alcotest.(check string) "fifo order" "first" m.Ipc.msg_tag
   | None -> Alcotest.fail "expected message");
  (match Ipc.receive sys p with
   | Some m -> Alcotest.(check string) "then second" "second" m.Ipc.msg_tag
   | None -> Alcotest.fail "expected message");
  Alcotest.(check bool) "empty" true (Ipc.receive sys p = None)

let test_message_fields () =
  let _, _, sys = boot () in
  let p = Ipc.create_port () in
  let reply = Ipc.create_port ~name:"reply" () in
  Ipc.send sys p
    (Ipc.message "op" ~ints:[ 1; 2; 3 ]
       ~items:[ Ipc.Inline (Bytes.of_string "payload") ]
       ~reply_to:reply);
  (match Ipc.receive sys p with
   | Some m ->
     Alcotest.(check (list int)) "ints" [ 1; 2; 3 ] m.Ipc.msg_ints;
     (match m.Ipc.msg_items with
      | [ Ipc.Inline b ] ->
        Alcotest.(check string) "inline" "payload" (Bytes.to_string b)
      | _ -> Alcotest.fail "bad items");
     (match m.Ipc.msg_reply_to with
      | Some r -> Alcotest.(check string) "reply port" "reply" (Ipc.port_name r)
      | None -> Alcotest.fail "no reply port")
   | None -> Alcotest.fail "expected message")

let test_inline_costs_per_byte () =
  let machine, _, sys = boot () in
  let p = Ipc.create_port () in
  Machine.reset_clocks machine;
  Ipc.send sys p (Ipc.message "small" ~items:[ Ipc.Inline (Bytes.create 64) ]);
  let small = Machine.max_cycles machine in
  Machine.reset_clocks machine;
  Ipc.send sys p
    (Ipc.message "big" ~items:[ Ipc.Inline (Bytes.create (256 * kb)) ]);
  let big = Machine.max_cycles machine in
  Alcotest.(check bool) "bytes cost" true (big > 10 * small)

let test_ool_transfer_data () =
  let machine, kernel, sys = boot () in
  let sender = new_task kernel ~cpu:0 in
  let receiver = Kernel.create_task kernel () in
  let a = ok (Vm_user.allocate sys sender ~size:(16 * kb) ~anywhere:true ()) in
  Machine.write machine ~cpu:0 ~va:a (Bytes.of_string "bulk contents");
  Machine.write machine ~cpu:0 ~va:(a + (12 * kb)) (Bytes.of_string "tail");
  let p = Ipc.create_port () in
  ok (Ipc.send_region sys sender p ~tag:"bulk" ~addr:a ~size:(16 * kb) ());
  let raddr, rsize = ok (Ipc.receive_region sys receiver p) in
  Alcotest.(check int) "size" (16 * kb) rsize;
  Kernel.run_task kernel ~cpu:0 receiver;
  Alcotest.(check string) "head" "bulk contents"
    (Bytes.to_string (Machine.read machine ~cpu:0 ~va:raddr ~len:13));
  Alcotest.(check string) "tail" "tail"
    (Bytes.to_string
       (Machine.read machine ~cpu:0 ~va:(raddr + (12 * kb)) ~len:4))

let test_ool_is_cow_isolated () =
  let machine, kernel, sys = boot () in
  let sender = new_task kernel ~cpu:0 in
  let receiver = Kernel.create_task kernel () in
  let a = ok (Vm_user.allocate sys sender ~size:(4 * kb) ~anywhere:true ()) in
  Machine.write machine ~cpu:0 ~va:a (Bytes.of_string "shared?");
  let p = Ipc.create_port () in
  ok (Ipc.send_region sys sender p ~tag:"x" ~addr:a ~size:(4 * kb) ());
  let raddr, _ = ok (Ipc.receive_region sys receiver p) in
  (* Receiver edits; sender must not see it, and vice versa. *)
  Kernel.run_task kernel ~cpu:0 receiver;
  Machine.write machine ~cpu:0 ~va:raddr (Bytes.of_string "mine!!!");
  Kernel.run_task kernel ~cpu:0 sender;
  Alcotest.(check string) "sender intact" "shared?"
    (Bytes.to_string (Machine.read machine ~cpu:0 ~va:a ~len:7));
  Machine.write machine ~cpu:0 ~va:a (Bytes.of_string "edited!");
  Kernel.run_task kernel ~cpu:0 receiver;
  Alcotest.(check string) "receiver intact" "mine!!!"
    (Bytes.to_string (Machine.read machine ~cpu:0 ~va:raddr ~len:7))

let test_ool_with_dealloc_moves () =
  let machine, kernel, sys = boot () in
  let sender = new_task kernel ~cpu:0 in
  let receiver = Kernel.create_task kernel () in
  let a = ok (Vm_user.allocate sys sender ~size:(4 * kb) ~anywhere:true ()) in
  Machine.write machine ~cpu:0 ~va:a (Bytes.of_string "moved");
  let p = Ipc.create_port () in
  ok
    (Ipc.send_region sys sender p ~tag:"mv" ~addr:a ~size:(4 * kb)
       ~dealloc:true ());
  (* The sender's range is gone. *)
  (try
     ignore (Machine.read_byte machine ~cpu:0 ~va:a);
     Alcotest.fail "sender range should be deallocated"
   with Machine.Memory_violation _ -> ());
  let raddr, _ = ok (Ipc.receive_region sys receiver p) in
  Kernel.run_task kernel ~cpu:0 receiver;
  Alcotest.(check string) "data arrived" "moved"
    (Bytes.to_string (Machine.read machine ~cpu:0 ~va:raddr ~len:5))

let test_ool_copy_cheaper_than_inline () =
  let machine, kernel, sys = boot () in
  let sender = new_task kernel ~cpu:0 in
  let size = 1024 * kb in
  let a = ok (Vm_user.allocate sys sender ~size ~anywhere:true ()) in
  let ps = Kernel.page_size kernel in
  let rec dirty va =
    if va < a + size then begin
      Machine.write_byte machine ~cpu:0 ~va 'd';
      dirty (va + ps)
    end
  in
  dirty a;
  let p = Ipc.create_port () in
  Machine.reset_clocks machine;
  ok (Ipc.send_region sys sender p ~tag:"fast" ~addr:a ~size ());
  let ool = Machine.max_cycles machine in
  Machine.reset_clocks machine;
  let data = ok (Vm_user.read sys sender ~addr:a ~size) in
  Ipc.send sys p (Ipc.message "slow" ~items:[ Ipc.Inline data ]);
  let inline = Machine.max_cycles machine in
  Alcotest.(check bool) "remap beats copy by 10x" true (inline > 10 * ool)

let test_discard_releases_references () =
  let machine, kernel, sys = boot () in
  let sender = new_task kernel ~cpu:0 in
  let a = ok (Vm_user.allocate sys sender ~size:(4 * kb) ~anywhere:true ()) in
  Machine.write_byte machine ~cpu:0 ~va:a 'x';
  let o =
    match Vm_map.resolve_object_at sys (Task.map sender) ~va:a with
    | Some (o, _) -> o
    | None -> Alcotest.fail "no object"
  in
  let p = Ipc.create_port () in
  ok (Ipc.send_region sys sender p ~tag:"dropme" ~addr:a ~size:(4 * kb) ());
  Alcotest.(check int) "message holds a ref" 2 o.Types.obj_ref;
  (match Ipc.receive sys p with
   | Some m -> Ipc.discard_message sys m
   | None -> Alcotest.fail "expected message");
  Alcotest.(check int) "released" 1 o.Types.obj_ref

let test_receive_region_without_ool_fails () =
  let _, kernel, sys = boot () in
  let receiver = Kernel.create_task kernel () in
  let p = Ipc.create_port () in
  Ipc.send sys p (Ipc.message "plain");
  (match Ipc.receive_region sys receiver p with
   | Error Kr.Invalid_argument -> ()
   | Error e -> Alcotest.fail (Kr.to_string e)
   | Ok _ -> Alcotest.fail "expected failure")

(* ---- the kernel as a message server (Table 2-1 over ports) --------------- *)

let call_ok sys port msg =
  let reply = Syscall_server.call sys port msg in
  (match Syscall_server.kr_of_reply reply with
   | Ok () -> ()
   | Error e -> Alcotest.fail (Kr.to_string e));
  reply

let test_msg_vm_allocate_and_touch () =
  let machine, kernel, sys = boot () in
  let task = new_task kernel ~cpu:0 in
  let port = Syscall_server.task_port sys task in
  let reply =
    call_ok sys port
      (Ipc.message "vm_allocate" ~ints:[ 16 * kb; 1; 0 ])
  in
  let addr = List.nth reply.Ipc.msg_ints 1 in
  Machine.write machine ~cpu:0 ~va:addr (Bytes.of_string "via messages");
  Alcotest.(check string) "memory usable" "via messages"
    (Bytes.to_string (Machine.read machine ~cpu:0 ~va:addr ~len:12))

let test_msg_read_write_roundtrip () =
  let _, kernel, sys = boot () in
  let task = new_task kernel ~cpu:0 in
  let port = Syscall_server.task_port sys task in
  let reply =
    call_ok sys port (Ipc.message "vm_allocate" ~ints:[ 8 * kb; 1; 0 ])
  in
  let addr = List.nth reply.Ipc.msg_ints 1 in
  ignore
    (call_ok sys port
       (Ipc.message "vm_write" ~ints:[ addr ]
          ~items:[ Ipc.Inline (Bytes.of_string "remote write") ]));
  let reply =
    call_ok sys port (Ipc.message "vm_read" ~ints:[ addr; 12 ])
  in
  (match reply.Ipc.msg_items with
   | [ Ipc.Inline b ] ->
     Alcotest.(check string) "roundtrip" "remote write" (Bytes.to_string b)
   | _ -> Alcotest.fail "expected inline data")

let test_msg_protect_enforced () =
  let machine, kernel, sys = boot () in
  let task = new_task kernel ~cpu:0 in
  let port = Syscall_server.task_port sys task in
  let reply =
    call_ok sys port (Ipc.message "vm_allocate" ~ints:[ 4 * kb; 1; 0 ])
  in
  let addr = List.nth reply.Ipc.msg_ints 1 in
  Machine.write_byte machine ~cpu:0 ~va:addr 'x';
  let ro = Syscall_server.prot_bits Mach_hw.Prot.read_only in
  ignore
    (call_ok sys port
       (Ipc.message "vm_protect" ~ints:[ addr; 4 * kb; 0; ro ]));
  (try
     Machine.write_byte machine ~cpu:0 ~va:addr 'y';
     Alcotest.fail "write should fail"
   with Machine.Memory_violation _ -> ())

let test_msg_regions_and_statistics () =
  let _, kernel, sys = boot () in
  let task = new_task kernel ~cpu:0 in
  let port = Syscall_server.task_port sys task in
  ignore (call_ok sys port (Ipc.message "vm_allocate" ~ints:[ 4 * kb; 1; 0 ]));
  ignore (call_ok sys port (Ipc.message "vm_allocate" ~ints:[ 8 * kb; 1; 0 ]));
  let reply = call_ok sys port (Ipc.message "vm_regions") in
  (match reply.Ipc.msg_ints with
   | _kr :: n :: rest ->
     Alcotest.(check int) "two regions" 2 n;
     Alcotest.(check int) "7 ints per region" (7 * n) (List.length rest)
   | _ -> Alcotest.fail "bad reply");
  let reply = call_ok sys port (Ipc.message "vm_statistics") in
  Alcotest.(check int) "16 fields" 16 (List.length reply.Ipc.msg_ints);
  (* kr, then 10 paging fields, then the 5 failure counters — all zero on
     a freshly booted kernel with a healthy pager. *)
  let failure_counters =
    match reply.Ipc.msg_ints with
    | _kr :: rest -> List.filteri (fun i _ -> i >= 10) rest
    | [] -> []
  in
  Alcotest.(check (list int))
    "no failures on a healthy kernel" [ 0; 0; 0; 0; 0 ] failure_counters

let test_msg_errors_travel_back () =
  let _, kernel, sys = boot () in
  let task = new_task kernel ~cpu:0 in
  let port = Syscall_server.task_port sys task in
  let reply =
    Syscall_server.call sys port
      (Ipc.message "vm_protect" ~ints:[ 4096; 4096; 0;
                                        Syscall_server.prot_bits Mach_hw.Prot.all ])
  in
  (* protect on unallocated space succeeds as a no-op in Mach; use a bad
     request instead: unknown operation. *)
  ignore reply;
  let reply = Syscall_server.call sys port (Ipc.message "vm_frobnicate") in
  (match Syscall_server.kr_of_reply reply with
   | Error Kr.Invalid_argument -> ()
   | Ok () | Error _ -> Alcotest.fail "expected invalid argument")

let test_msg_vm_copy () =
  let machine, kernel, sys = boot () in
  let task = new_task kernel ~cpu:0 in
  let port = Syscall_server.task_port sys task in
  let addr_of r = List.nth r.Ipc.msg_ints 1 in
  let src = addr_of (call_ok sys port (Ipc.message "vm_allocate" ~ints:[ 4 * kb; 1; 0 ])) in
  let dst = addr_of (call_ok sys port (Ipc.message "vm_allocate" ~ints:[ 4 * kb; 1; 0 ])) in
  Machine.write machine ~cpu:0 ~va:src (Bytes.of_string "payload");
  ignore (call_ok sys port (Ipc.message "vm_copy" ~ints:[ src; dst; 4 * kb ]));
  Alcotest.(check string) "copied" "payload"
    (Bytes.to_string (Machine.read machine ~cpu:0 ~va:dst ~len:7))

let test_task_lifecycle_by_message () =
  (* "The act of creating a task ... returns access rights to a port
     which represents the new object and can be used to manipulate
     it." *)
  let machine, kernel, sys = boot () in
  let port = Syscall_server.task_create kernel ~name:"msg-task" () in
  let reply =
    call_ok sys port (Ipc.message "vm_allocate" ~ints:[ 8 * kb; 1; 0 ])
  in
  let addr = List.nth reply.Ipc.msg_ints 1 in
  ignore
    (call_ok sys port
       (Ipc.message "vm_write" ~ints:[ addr ]
          ~items:[ Ipc.Inline (Bytes.of_string "inherit me") ]));
  (* Fork by message: the child arrives as a port capability. *)
  let reply = call_ok sys port (Ipc.message "task_fork") in
  let child_port =
    match reply.Ipc.msg_items with
    | [ Ipc.Port_right p ] -> p
    | _ -> Alcotest.fail "expected the child's port capability"
  in
  let reply =
    call_ok sys child_port (Ipc.message "vm_read" ~ints:[ addr; 10 ])
  in
  (match reply.Ipc.msg_items with
   | [ Ipc.Inline b ] ->
     Alcotest.(check string) "child inherited" "inherit me"
       (Bytes.to_string b)
   | _ -> Alcotest.fail "expected data");
  (* Child writes; parent unaffected (all through messages). *)
  ignore
    (call_ok sys child_port
       (Ipc.message "vm_write" ~ints:[ addr ]
          ~items:[ Ipc.Inline (Bytes.of_string "child-data") ]));
  let reply = call_ok sys port (Ipc.message "vm_read" ~ints:[ addr; 10 ]) in
  (match reply.Ipc.msg_items with
   | [ Ipc.Inline b ] ->
     Alcotest.(check string) "parent isolated" "inherit me"
       (Bytes.to_string b)
   | _ -> Alcotest.fail "expected data");
  ignore (call_ok sys child_port (Ipc.message "task_terminate"));
  ignore machine

let test_port_capability_in_message () =
  (* A message can carry a capability for another port; the receiver
     replies through it. *)
  let _, _, sys = boot () in
  let service = Ipc.create_port ~name:"service" () in
  let own_reply = Ipc.create_port ~name:"client-reply" () in
  Ipc.send sys service
    (Ipc.message "request" ~items:[ Ipc.Port_right own_reply ]);
  (match Ipc.receive sys service with
   | Some m ->
     (match m.Ipc.msg_items with
      | [ Ipc.Port_right p ] -> Ipc.send sys p (Ipc.message "response")
      | _ -> Alcotest.fail "expected port capability")
   | None -> Alcotest.fail "expected request");
  (match Ipc.receive sys own_reply with
   | Some m -> Alcotest.(check string) "routed" "response" m.Ipc.msg_tag
   | None -> Alcotest.fail "expected routed reply")

let test_prot_bits_roundtrip () =
  List.iter
    (fun p ->
       Alcotest.(check string) "roundtrip" (Mach_hw.Prot.to_string p)
         (Mach_hw.Prot.to_string
            (Syscall_server.prot_of_bits (Syscall_server.prot_bits p))))
    [ Mach_hw.Prot.none; Mach_hw.Prot.read_only; Mach_hw.Prot.read_write;
      Mach_hw.Prot.read_execute; Mach_hw.Prot.all ]

let () =
  Alcotest.run "mach_ipc"
    [ ( "ports",
        [ Alcotest.test_case "fifo" `Quick test_port_fifo;
          Alcotest.test_case "message fields" `Quick test_message_fields;
          Alcotest.test_case "inline costs per byte" `Quick
            test_inline_costs_per_byte ] );
      ( "out-of-line",
        [ Alcotest.test_case "data transfer" `Quick test_ool_transfer_data;
          Alcotest.test_case "cow isolation" `Quick test_ool_is_cow_isolated;
          Alcotest.test_case "move with dealloc" `Quick
            test_ool_with_dealloc_moves;
          Alcotest.test_case "remap beats copy" `Quick
            test_ool_copy_cheaper_than_inline;
          Alcotest.test_case "discard releases refs" `Quick
            test_discard_releases_references;
          Alcotest.test_case "receive without ool fails" `Quick
            test_receive_region_without_ool_fails ] );
      ( "kernel as server",
        [ Alcotest.test_case "vm_allocate by message" `Quick
            test_msg_vm_allocate_and_touch;
          Alcotest.test_case "vm_read/vm_write roundtrip" `Quick
            test_msg_read_write_roundtrip;
          Alcotest.test_case "vm_protect enforced" `Quick
            test_msg_protect_enforced;
          Alcotest.test_case "vm_regions + vm_statistics" `Quick
            test_msg_regions_and_statistics;
          Alcotest.test_case "errors travel back" `Quick
            test_msg_errors_travel_back;
          Alcotest.test_case "vm_copy" `Quick test_msg_vm_copy;
          Alcotest.test_case "prot bits roundtrip" `Quick
            test_prot_bits_roundtrip;
          Alcotest.test_case "task lifecycle by message" `Quick
            test_task_lifecycle_by_message;
          Alcotest.test_case "port capability in message" `Quick
            test_port_capability_in_message ] ) ]
