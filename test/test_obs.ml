(* Observability layer: histograms, the ring sink, the disabled path,
   and an end-to-end fork+touch run whose trace must be balanced and
   whose Chrome export must be well-formed trace_event JSON. *)

open Mach_hw
open Mach_core
open Mach_obs

(* ---- Hist -------------------------------------------------------------- *)

let test_hist_bucketing () =
  let h = Hist.create () in
  List.iter (Hist.add h) [ 0; 1; 2; 3; 4; 7; 8; 1000 ];
  Alcotest.(check int) "count" 8 (Hist.count h);
  Alcotest.(check int) "sum" 1025 (Hist.sum h);
  Alcotest.(check int) "min" 0 (Hist.min_value h);
  Alcotest.(check int) "max" 1000 (Hist.max_value h);
  (* v <= 0 lands in bucket 0; [2^(i-1), 2^i) in bucket i. *)
  Alcotest.(check int) "bucket 0 (v=0)" 1 (Hist.get_bucket h 0);
  Alcotest.(check int) "bucket 1 (v=1)" 1 (Hist.get_bucket h 1);
  Alcotest.(check int) "bucket 2 (2..3)" 2 (Hist.get_bucket h 2);
  Alcotest.(check int) "bucket 3 (4..7)" 2 (Hist.get_bucket h 3);
  Alcotest.(check int) "bucket 4 (8..15)" 1 (Hist.get_bucket h 4);
  Alcotest.(check int) "bucket 10 (512..1023)" 1 (Hist.get_bucket h 10)

let test_hist_percentiles () =
  let h = Hist.create () in
  (* 100 observations of 10 and one outlier of 10_000. *)
  for _ = 1 to 100 do
    Hist.add h 10
  done;
  Hist.add h 10_000;
  (* p50/p90 fall in the bucket holding 10: [8, 15]. *)
  Alcotest.(check bool) "p50 bounds 10" true
    (Hist.percentile h 0.5 >= 10 && Hist.percentile h 0.5 <= 15);
  Alcotest.(check bool) "p90 bounds 10" true
    (Hist.percentile h 0.9 >= 10 && Hist.percentile h 0.9 <= 15);
  (* p100 is clamped to the largest observation. *)
  Alcotest.(check int) "p100 = max" 10_000 (Hist.percentile h 1.0);
  Alcotest.(check int) "empty percentile" 0
    (Hist.percentile (Hist.create ()) 0.5)

(* ---- Ring -------------------------------------------------------------- *)

let test_ring_wraparound () =
  let r = Ring.create ~capacity:8 in
  for i = 0 to 19 do
    Ring.push r i
  done;
  Alcotest.(check int) "length" 8 (Ring.length r);
  Alcotest.(check int) "pushed" 20 (Ring.pushed r);
  Alcotest.(check int) "dropped" 12 (Ring.dropped r);
  Alcotest.(check (list int)) "retains newest, oldest first"
    [ 12; 13; 14; 15; 16; 17; 18; 19 ]
    (Ring.to_list r);
  Ring.clear r;
  Alcotest.(check int) "cleared" 0 (Ring.length r);
  (* Zero capacity: every push is a no-op (the null sink's ring). *)
  let z = Ring.create ~capacity:0 in
  Ring.push z 42;
  Alcotest.(check int) "zero-capacity stays empty" 0 (Ring.length z)

(* ---- disabled sink ----------------------------------------------------- *)

let test_disabled_sink () =
  Alcotest.(check bool) "null disabled" false (Obs.enabled Obs.null);
  Alcotest.check_raises "null cannot be enabled"
    (Invalid_argument "Obs.set_enabled: the null sink cannot be enabled")
    (fun () -> Obs.set_enabled Obs.null true);
  (* A fresh machine runs a faulting workload with the default null
     tracer installed: nothing may be recorded anywhere. *)
  let machine = Machine.create ~arch:Arch.uvax2 ~memory_frames:512 () in
  let kernel = Kernel.create ~page_multiple:8 machine in
  let sys = Kernel.sys kernel in
  let t = Kernel.create_task kernel () in
  Kernel.run_task kernel ~cpu:0 t;
  (match Vm_user.allocate sys t ~size:16384 ~anywhere:true () with
   | Ok a -> Machine.write_byte machine ~cpu:0 ~va:a 'x'
   | Error e -> Alcotest.fail (Kr.to_string e));
  let tr = Machine.tracer machine in
  Alcotest.(check int) "no events seen" 0 (Obs.events_seen tr);
  Alcotest.(check int) "ring empty" 0 (Ring.length (Obs.ring tr));
  List.iter
    (fun r ->
       Alcotest.(check int)
         ("no latency samples: " ^ Obs.fault_resolution_name r)
         0
         (Hist.count (Obs.fault_latency tr r)))
    Obs.fault_resolutions

(* ---- a minimal JSON syntax checker ------------------------------------- *)

(* Enough of a parser to prove the exporter emits well-formed JSON; it
   validates structure without building a document. *)
let json_ok (s : string) : bool =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let fail = ref false in
  let expect c =
    if peek () = Some c then incr pos else fail := true
  in
  let rec value () =
    if !fail then ()
    else begin
      skip_ws ();
      match peek () with
      | Some '{' -> obj ()
      | Some '[' -> arr ()
      | Some '"' -> string_lit ()
      | Some ('-' | '0' .. '9') -> number ()
      | Some 't' -> literal "true"
      | Some 'f' -> literal "false"
      | Some 'n' -> literal "null"
      | _ -> fail := true
    end
  and literal lit =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then pos := !pos + l
    else fail := true
  and number () =
    let start = !pos in
    while
      !pos < n
      &&
      match s.[!pos] with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    do
      incr pos
    done;
    if !pos = start then fail := true
  and string_lit () =
    expect '"';
    let closed = ref false in
    while (not !closed) && not !fail do
      if !pos >= n then fail := true
      else begin
        let c = s.[!pos] in
        incr pos;
        if c = '\\' then begin
          if !pos >= n then fail := true else incr pos
        end
        else if c = '"' then closed := true
      end
    done
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then incr pos
    else begin
      let more = ref true in
      while !more && not !fail do
        value ();
        skip_ws ();
        match peek () with
        | Some ',' -> incr pos
        | Some ']' ->
          incr pos;
          more := false
        | _ -> fail := true
      done
    end
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then incr pos
    else begin
      let more = ref true in
      while !more && not !fail do
        skip_ws ();
        string_lit ();
        skip_ws ();
        expect ':';
        value ();
        skip_ws ();
        match peek () with
        | Some ',' -> incr pos
        | Some '}' ->
          incr pos;
          more := false
        | _ -> fail := true
      done
    end
  in
  value ();
  skip_ws ();
  (not !fail) && !pos = n

let test_json_checker_sanity () =
  Alcotest.(check bool) "accepts object" true
    (json_ok {|{"a": [1, 2.5, -3e4], "b": "x\"y", "c": null}|});
  Alcotest.(check bool) "rejects trailing junk" false (json_ok "{} x");
  Alcotest.(check bool) "rejects unclosed" false (json_ok {|{"a": 1|})

(* ---- end to end -------------------------------------------------------- *)

let lookup name = function
  | Jout.Obj fields -> List.assoc_opt name fields
  | _ -> None

let test_end_to_end () =
  let machine = Machine.create ~arch:Arch.uvax2 ~memory_frames:2048 () in
  let tr = Obs.create ~capacity:8192 () in
  Obs.set_enabled tr true;
  Machine.set_tracer machine tr;
  let kernel = Kernel.create ~page_multiple:8 machine in
  let sys = Kernel.sys kernel in
  let ps = Kernel.page_size kernel in
  (* Fork + touch: zero fills in the parent, COW copies in the child. *)
  let parent = Kernel.create_task kernel ~name:"parent" () in
  Kernel.run_task kernel ~cpu:0 parent;
  let size = 16 * ps in
  let addr =
    match Vm_user.allocate sys parent ~size ~anywhere:true () with
    | Ok a -> a
    | Error e -> Alcotest.fail (Kr.to_string e)
  in
  let sweep () =
    let rec loop va =
      if va < addr + size then begin
        Machine.write_byte machine ~cpu:0 ~va 'e';
        loop (va + ps)
      end
    in
    loop addr
  in
  sweep ();
  let child = Kernel.fork_task kernel ~cpu:0 parent in
  Kernel.run_task kernel ~cpu:0 child;
  sweep ();
  (* Balanced bracketing and full latency coverage. *)
  let begins = Obs.count tr (Obs.Fault_begin { va = 0; write = false }) in
  let ends =
    Obs.count tr
      (Obs.Fault_end { va = 0; resolution = Obs.Fault_error; cycles = 0 })
  in
  Alcotest.(check bool) "faults happened" true (begins > 0);
  Alcotest.(check int) "begin/end balanced" begins ends;
  Alcotest.(check int) "no open faults" 0 (Obs.open_faults tr);
  let hist_total =
    List.fold_left
      (fun acc r -> acc + Hist.count (Obs.fault_latency tr r))
      0 Obs.fault_resolutions
  in
  Alcotest.(check int) "hist counts sum to machine faults"
    (Machine.stats machine).Machine.faults hist_total;
  Alcotest.(check bool) "saw zero fills" true
    (Hist.count (Obs.fault_latency tr Obs.Zero_fill) > 0);
  Alcotest.(check bool) "saw cow copies" true
    (Hist.count (Obs.fault_latency tr Obs.Cow_copy) > 0);
  (* The Chrome export is well-formed and every event carries the
     trace_event essentials. *)
  let doc = Export.chrome_trace ~cycles_per_us:1.0 tr in
  Alcotest.(check bool) "chrome trace is valid JSON" true
    (json_ok (Jout.to_string doc));
  let events =
    match lookup "traceEvents" doc with
    | Some (Jout.Arr evs) -> evs
    | _ -> Alcotest.fail "no traceEvents array"
  in
  Alcotest.(check bool) "trace has events" true (List.length events > 0);
  let b = ref 0 and e = ref 0 in
  List.iter
    (fun ev ->
       let is_meta = lookup "ph" ev = Some (Jout.Str "M") in
       List.iter
         (fun field ->
            if lookup field ev = None then
              Alcotest.failf "event missing %s: %s" field
                (Jout.to_string ev))
         (* Metadata records carry no timestamp in the trace_event
            format; every real event must. *)
         ([ "name"; "ph"; "pid"; "tid" ] @ if is_meta then [] else [ "ts" ]);
       match lookup "ph" ev with
       | Some (Jout.Str "B") -> incr b
       | Some (Jout.Str "E") -> incr e
       | _ -> ())
    events;
  Alcotest.(check int) "B/E pairs balanced in export" !b !e;
  (* stats_json agrees with itself. *)
  let stats = Export.stats_json tr in
  Alcotest.(check bool) "stats is valid JSON" true
    (json_ok (Jout.to_string stats));
  (match lookup "faults_total" stats with
   | Some (Jout.Int n) -> Alcotest.(check int) "faults_total" hist_total n
   | _ -> Alcotest.fail "stats missing faults_total");
  Kernel.terminate_task kernel ~cpu:0 child;
  Kernel.terminate_task kernel ~cpu:0 parent

let () =
  Alcotest.run "obs"
    [ ( "hist",
        [ Alcotest.test_case "log2 bucketing" `Quick test_hist_bucketing;
          Alcotest.test_case "percentiles" `Quick test_hist_percentiles ] );
      ( "ring",
        [ Alcotest.test_case "wraparound" `Quick test_ring_wraparound ] );
      ( "disabled",
        [ Alcotest.test_case "null sink records nothing" `Quick
            test_disabled_sink ] );
      ( "export",
        [ Alcotest.test_case "json checker sanity" `Quick
            test_json_checker_sanity;
          Alcotest.test_case "fork+touch end to end" `Quick
            test_end_to_end ] ) ]
